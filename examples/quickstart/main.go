// Quickstart: build a small web-link graph, run PageRank on the
// asynchronous GraphABCD engine, and print the most important pages.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"

	"graphabcd"
)

func main() {
	// A tiny "web": pages 0-6 linking to each other. Page 3 is a hub that
	// everything points at; page 6 dangles.
	edges := []graphabcd.Edge{
		{Src: 0, Dst: 3, Weight: 1}, {Src: 1, Dst: 3, Weight: 1},
		{Src: 2, Dst: 3, Weight: 1}, {Src: 3, Dst: 4, Weight: 1},
		{Src: 4, Dst: 0, Weight: 1}, {Src: 4, Dst: 5, Weight: 1},
		{Src: 5, Dst: 3, Weight: 1}, {Src: 5, Dst: 6, Weight: 1},
		{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 2, Weight: 1},
	}
	g, err := graphabcd.NewGraph(7, edges)
	if err != nil {
		log.Fatal(err)
	}

	// The default configuration is the paper's asynchronous barrierless
	// engine with cyclic block selection; switch Policy to
	// graphabcd.Priority for Gauss-Southwell scheduling.
	cfg := graphabcd.DefaultConfig(2 /* vertices per BCD block */)
	cfg.Policy = graphabcd.Priority

	res, err := graphabcd.RunPageRank(g, cfg)
	if err != nil {
		log.Fatal(err)
	}

	type page struct {
		id   int
		rank float64
	}
	pages := make([]page, len(res.Values))
	for v, r := range res.Values {
		pages[v] = page{v, r}
	}
	sort.Slice(pages, func(a, b int) bool { return pages[a].rank > pages[b].rank })

	fmt.Printf("converged in %.1f epoch-equivalents (%d block updates)\n",
		res.Stats.Epochs, res.Stats.BlockUpdates)
	for _, p := range pages {
		fmt.Printf("page %d: rank %.4f\n", p.id, p.rank)
	}
}
