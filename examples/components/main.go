// Components: connected components and community detection on a social
// graph, plus a demonstration of attaching the HARPv2 accelerator model
// to see the bus/PE behaviour the paper's Figs. 8-9 study.
//
// Run with: go run ./examples/components
package main

import (
	"fmt"
	"log"
	"sort"

	"graphabcd"
)

func main() {
	// A power-law social graph, symmetrized so components are undirected.
	base, err := graphabcd.RMAT(graphabcd.DefaultRMAT(12, 8, 99))
	if err != nil {
		log.Fatal(err)
	}
	var edges []graphabcd.Edge
	for _, e := range base.Edges() {
		edges = append(edges,
			graphabcd.Edge{Src: e.Src, Dst: e.Dst, Weight: 1},
			graphabcd.Edge{Src: e.Dst, Dst: e.Src, Weight: 1})
	}
	g, err := graphabcd.NewGraph(base.NumVertices(), edges)
	if err != nil {
		log.Fatal(err)
	}

	// Connected components with the accelerator model attached.
	sim, err := graphabcd.NewSimulator(graphabcd.DefaultHARPv2())
	if err != nil {
		log.Fatal(err)
	}
	cfg := graphabcd.DefaultConfig(64)
	cfg.Epsilon = 0
	cfg.Sim = sim
	cc, err := graphabcd.RunCC(g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	sizes := map[uint64]int{}
	for _, l := range cc.Values {
		sizes[l]++
	}
	var counts []int
	for _, c := range sizes {
		counts = append(counts, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	fmt.Printf("%d components; largest: %v\n", len(sizes), counts[:min(3, len(counts))])
	fmt.Printf("modeled accelerator: %.2f ms makespan, %.0f%% bus utilization, %d bytes streamed\n",
		cc.Stats.SimTimeNs/1e6, 100*sim.BusUtilization(), sim.BusBytes())

	// Community detection by label propagation inside the giant component.
	lpCfg := graphabcd.DefaultConfig(64)
	lpCfg.MaxEpochs = 30
	lp, err := graphabcd.RunLabelProp(g, lpCfg)
	if err != nil {
		log.Fatal(err)
	}
	communities := map[uint64]int{}
	for _, l := range lp.Values {
		communities[l]++
	}
	fmt.Printf("label propagation found %d communities in %.1f epochs\n",
		len(communities), lp.Stats.Epochs)
}
