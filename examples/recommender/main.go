// Recommender: train a collaborative-filtering model on a synthetic
// MovieLens-like rating graph (the workload of the paper's Fig. 5) and
// produce recommendations for one user.
//
// Run with: go run ./examples/recommender
package main

import (
	"fmt"
	"log"
	"sort"

	"graphabcd"
)

func main() {
	// 400 users rate 120 movies; ratings follow a planted rank-8 taste
	// model, so a rank-8 factorization can fit them well.
	rg, err := graphabcd.Rating(graphabcd.DefaultRating(400, 120, 12000, 2024))
	if err != nil {
		log.Fatal(err)
	}
	params := graphabcd.CF{Rank: 8, LearnRate: 0.3, Lambda: 0.01, Seed: 1}

	cfg := graphabcd.DefaultConfig(32)
	cfg.Policy = graphabcd.Priority
	cfg.MaxEpochs = 30 // CF iterates until its budget

	res, err := graphabcd.RunCF(rg.Graph, params, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d factors in %.1f epochs, RMSE %.3f\n",
		len(res.Values), res.Stats.Epochs, params.RMSE(rg.Graph, res.Values))

	// Recommend for user 0: score every movie by the dot product of
	// factor vectors, skipping movies the user already rated.
	user := uint32(0)
	rated := map[uint32]bool{}
	g := rg.Graph
	for i := g.OutOffset(int(user)); i < g.OutOffset(int(user)+1); i++ {
		rated[g.OutDst(i)] = true
	}
	type rec struct {
		movie uint32
		score float64
	}
	var recs []rec
	for item := 0; item < rg.Items; item++ {
		mv := rg.ItemVertex(item)
		if rated[mv] {
			continue
		}
		score := dot(res.Values[user], res.Values[mv])
		recs = append(recs, rec{mv, score})
	}
	sort.Slice(recs, func(a, b int) bool { return recs[a].score > recs[b].score })
	fmt.Printf("user %d rated %d movies; top recommendations:\n", user, len(rated))
	for i := 0; i < 5 && i < len(recs); i++ {
		fmt.Printf("  movie %d: predicted rating %.2f\n", recs[i].movie-uint32(rg.Users), recs[i].score)
	}
}

func dot(a, b []float32) float64 {
	s := 0.0
	for k := range a {
		s += float64(a[k]) * float64(b[k])
	}
	return s
}
