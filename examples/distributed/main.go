// Distributed: scale PageRank out across a simulated four-node cluster —
// the deployment the paper's asynchronous, barrierless design targets.
// Each node owns a quarter of the vertex blocks and runs its own workers;
// state-based updates cross nodes as messages with 500µs of injected
// network latency, and the run still converges to the same ranks.
//
// Run with: go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"graphabcd"
)

func main() {
	g, err := graphabcd.RMAT(graphabcd.DefaultRMAT(12, 8, 2026))
	if err != nil {
		log.Fatal(err)
	}

	// Single-node reference.
	single, err := graphabcd.RunDistributedPageRank(g, graphabcd.ClusterConfig{
		Nodes: 1, BlockSize: 64, WorkersPerNode: 4, Epsilon: 1e-12,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Four nodes, messages delayed by 500µs each way.
	multi, err := graphabcd.RunDistributedPageRank(g, graphabcd.ClusterConfig{
		Nodes: 4, BlockSize: 64, WorkersPerNode: 1, Epsilon: 1e-12,
		NetDelay: 500 * time.Microsecond, BatchSize: 128,
	})
	if err != nil {
		log.Fatal(err)
	}

	worst := 0.0
	for v := range single.Values {
		if d := math.Abs(single.Values[v] - multi.Values[v]); d > worst {
			worst = d
		}
	}
	fmt.Printf("graph: %s\n", g)
	fmt.Printf("single node : %.1f epochs, %d local writes\n",
		single.Stats.Epochs, single.Stats.LocalWrites)
	fmt.Printf("four nodes  : %.1f epochs, %d messages in %d batches (%.0f%% of writes remote)\n",
		multi.Stats.Epochs, multi.Stats.MessagesSent, multi.Stats.BatchesSent,
		100*float64(multi.Stats.MessagesSent)/float64(multi.Stats.ScatterWrites))
	fmt.Printf("max rank disagreement: %.2g (asynchronous BCD: delay never changes the fixpoint)\n", worst)
}
