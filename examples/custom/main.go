// Custom: implement a new algorithm against the public Program interface —
// personalized PageRank (random walks teleport back to a seed set instead
// of uniformly), the standard recommendation/trust primitive — and run it
// on the asynchronous engine with a convergence-curve hook.
//
// Run with: go run ./examples/custom
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"graphabcd"
)

// PersonalizedPR is PageRank whose teleport mass concentrates on a seed
// set: x_v = (1-d)*seed_v + d * sum over in-edges of x_src/outdeg(src).
type PersonalizedPR struct {
	Damping float64
	Seeds   map[uint32]float64 // teleport distribution, sums to 1
}

func (p PersonalizedPR) Name() string                    { return "personalized-pagerank" }
func (p PersonalizedPR) Codec() graphabcd.Codec[float64] { return graphabcd.F64Codec{} }
func (p PersonalizedPR) NewAccum() float64               { return 0 }
func (p PersonalizedPR) ResetAccum(acc *float64)         { *acc = 0 }
func (p PersonalizedPR) Delta(old, new float64) float64  { return math.Abs(new - old) }

func (p PersonalizedPR) Init(v uint32, _ *graphabcd.Graph) float64 {
	return (1 - p.Damping) * p.Seeds[v]
}

func (p PersonalizedPR) InitEdge(src uint32, g *graphabcd.Graph) float64 {
	return p.ScatterValue(src, p.Init(src, g), g)
}

func (p PersonalizedPR) EdgeGather(acc *float64, _ float64, _ float32, src float64) {
	*acc += src
}

func (p PersonalizedPR) Apply(v uint32, _ float64, acc *float64, _ int64, _ *graphabcd.Graph) float64 {
	return (1-p.Damping)*p.Seeds[v] + p.Damping**acc
}

func (p PersonalizedPR) ScatterValue(v uint32, val float64, g *graphabcd.Graph) float64 {
	if deg := g.OutDegree(v); deg > 0 {
		return val / float64(deg)
	}
	return val
}

func main() {
	// A citation-style graph; we ask which vertices are most relevant to
	// the neighbourhood of two seed vertices.
	g, err := graphabcd.RMAT(graphabcd.DefaultRMAT(11, 8, 321))
	if err != nil {
		log.Fatal(err)
	}
	prog := PersonalizedPR{
		Damping: 0.85,
		Seeds:   map[uint32]float64{17: 0.5, 412: 0.5},
	}

	cfg := graphabcd.DefaultConfig(64)
	cfg.Policy = graphabcd.Priority
	cfg.Epsilon = 1e-12
	cfg.OnEpoch = func(epoch int) {
		if epoch%8 == 0 {
			fmt.Printf("  ...epoch %d\n", epoch)
		}
	}

	res, err := graphabcd.Run[float64, float64](g, prog, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converged in %.1f epochs over %s\n", res.Stats.Epochs, g)

	type scored struct {
		v uint32
		x float64
	}
	all := make([]scored, 0, len(res.Values))
	for v, x := range res.Values {
		all = append(all, scored{uint32(v), x})
	}
	sort.Slice(all, func(a, b int) bool { return all[a].x > all[b].x })
	fmt.Println("most relevant to the seed set:")
	for i := 0; i < 8 && i < len(all); i++ {
		fmt.Printf("  vertex %-6d score %.5f\n", all[i].v, all[i].x)
	}
}
