// Shortestpath: single-source shortest paths on a weighted road-like grid
// with Gauss-Southwell priority scheduling — the Δ-stepping-flavoured
// configuration the paper recommends for SSSP — and a comparison of the
// work done under priority vs cyclic block selection.
//
// Run with: go run ./examples/shortestpath
package main

import (
	"fmt"
	"log"
	"math"

	"graphabcd"
)

func main() {
	// A 100x100 road grid with integer travel times 1-9.
	const rows, cols = 100, 100
	g, err := graphabcd.Grid(rows, cols, 9, 7)
	if err != nil {
		log.Fatal(err)
	}
	source := uint32(0) // top-left corner

	run := func(policy graphabcd.Policy) *graphabcd.Result[float64] {
		cfg := graphabcd.DefaultConfig(64)
		cfg.Policy = policy
		cfg.Epsilon = 0 // monotone relaxation converges exactly
		res, err := graphabcd.RunSSSP(g, source, cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	prio := run(graphabcd.Priority)
	cyc := run(graphabcd.Cyclic)

	// Both must agree exactly: asynchronous relaxation is monotone.
	for v := range prio.Values {
		if prio.Values[v] != cyc.Values[v] {
			log.Fatalf("policy changed the answer at vertex %d", v)
		}
	}

	corner := uint32(rows*cols - 1)
	fmt.Printf("distance corner-to-corner: %.0f\n", prio.Values[corner])
	fmt.Printf("priority scheduling: %.1f epochs, %d edges relaxed\n",
		prio.Stats.Epochs, prio.Stats.EdgesTraversed)
	fmt.Printf("cyclic   scheduling: %.1f epochs, %d edges relaxed\n",
		cyc.Stats.Epochs, cyc.Stats.EdgesTraversed)

	// Farthest reachable vertex.
	far, farD := uint32(0), 0.0
	for v, d := range prio.Values {
		if !math.IsInf(d, 1) && d > farD {
			far, farD = uint32(v), d
		}
	}
	fmt.Printf("farthest vertex: %d (row %d, col %d) at distance %.0f\n",
		far, far/cols, far%cols, farD)
}
