// Benchmarks regenerating every table and figure of the paper's
// evaluation (Sec. V) on shrunken dataset analogs, plus microbenchmarks
// of the engine's hot paths. Each BenchmarkTable*/BenchmarkFig* target
// drives the same harness as cmd/experiments and reports the experiment's
// headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation at benchmark scale; run
// cmd/experiments with a smaller -shrink for paper-scale numbers.
package graphabcd

import (
	"testing"

	"graphabcd/internal/accel"
	"graphabcd/internal/bcd"
	"graphabcd/internal/core"
	"graphabcd/internal/exp"
	"graphabcd/internal/gen"
	"graphabcd/internal/metrics"
	"graphabcd/internal/sched"
)

// benchOpt shrinks the analogs so a full -bench=. pass stays in minutes.
func benchOpt() exp.Options { return exp.Options{Shrink: 5, Threads: 2} }

func BenchmarkTableI_Generators(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Table1(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 7 {
			b.Fatal("missing datasets")
		}
	}
}

func BenchmarkFig4_Convergence(b *testing.B) {
	var norm float64
	for i := 0; i < b.N; i++ {
		rows, err := exp.Fig4(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		// Headline: best normalized convergence across the sweep.
		norm = 1.0
		for _, r := range rows {
			if r.NormBSP < norm {
				norm = r.NormBSP
			}
		}
	}
	b.ReportMetric(norm, "best-norm-bsp")
}

func BenchmarkTableII_Comparison(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		rows, err := exp.Table2(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		var abcd, gm []float64
		for _, r := range rows {
			abcd = append(abcd, r.ABCDSeconds)
			gm = append(gm, r.GMSeconds)
		}
		speedup = metrics.Geomean(ratios(gm, abcd))
	}
	b.ReportMetric(speedup, "geomean-speedup-vs-graphmat")
}

func BenchmarkTableIII_Iterations(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows, err := exp.Table3(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		var prio, gm []float64
		for _, r := range rows {
			if r.App == "pr" {
				prio = append(prio, r.Priority)
				gm = append(gm, r.GraphMat)
			}
		}
		ratio = metrics.Geomean(ratios(gm, prio))
	}
	b.ReportMetric(ratio, "pr-iter-reduction-vs-graphmat")
}

func BenchmarkFig5_CFRMSE(b *testing.B) {
	var rmse float64
	for i := 0; i < b.N; i++ {
		pts, err := exp.Fig5(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if p.System == "priority" {
				rmse = p.RMSE // last priority sample = largest budget
			}
		}
	}
	b.ReportMetric(rmse, "final-priority-rmse")
}

func BenchmarkFig6_HWAccel(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		rows, err := exp.Fig6(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		s := make([]float64, len(rows))
		for j, r := range rows {
			s[j] = r.Speedup
		}
		speedup = metrics.Geomean(s)
	}
	b.ReportMetric(speedup, "accel-speedup")
}

func BenchmarkFig7_AsyncBreakdown(b *testing.B) {
	var barrierRatio, bspRatio float64
	for i := 0; i < b.N; i++ {
		rows, err := exp.Fig7(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		var async, barrier, bsp []float64
		for _, r := range rows {
			async = append(async, r.Async)
			barrier = append(barrier, r.Barrier)
			bsp = append(bsp, r.BSP)
		}
		barrierRatio = metrics.Geomean(ratios(barrier, async))
		bspRatio = metrics.Geomean(ratios(bsp, async))
	}
	b.ReportMetric(barrierRatio, "barrier-over-async")
	b.ReportMetric(bspRatio, "bsp-over-async")
}

func BenchmarkFig8_PEUtil(b *testing.B) {
	var utilAt16 float64
	for i := 0; i < b.N; i++ {
		rows, err := exp.Fig8(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.NumPEs == 16 {
				utilAt16 = r.AsyncUtil
			}
		}
	}
	b.ReportMetric(100*utilAt16, "async-util-16pe-%")
}

func BenchmarkFig9_Memory(b *testing.B) {
	var busUtil float64
	for i := 0; i < b.N; i++ {
		traffic, utils, err := exp.Fig9(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		if len(traffic) == 0 {
			b.Fatal("no traffic rows")
		}
		busUtil = utils[len(utils)-1].BusUtilPct
	}
	b.ReportMetric(busUtil, "bus-util-16pe-%")
}

func BenchmarkFig10_Scalability(b *testing.B) {
	var hybridSpeedup float64
	for i := 0; i < b.N; i++ {
		rows, err := exp.Fig10(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Vary == "pes" && r.Count == 1 {
				hybridSpeedup = r.Speedup
			}
		}
	}
	b.ReportMetric(hybridSpeedup, "hybrid-speedup-1pe")
}

func BenchmarkAblationOperator(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationOperator(benchOpt()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationStaleness(b *testing.B) {
	var jacobiPenalty float64
	for i := 0; i < b.N; i++ {
		rows, err := exp.AblationStaleness(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		jacobiPenalty = rows[len(rows)-1].Epochs / rows[0].Epochs
	}
	b.ReportMetric(jacobiPenalty, "deep-queue-epoch-penalty")
}

func BenchmarkAblationPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationPolicy(benchOpt()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScaleOut(b *testing.B) {
	var epochRatio float64
	for i := 0; i < b.N; i++ {
		rows, err := exp.ScaleOut(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		epochRatio = rows[len(rows)-1].Epochs / rows[0].Epochs
	}
	b.ReportMetric(epochRatio, "16node-over-1node-epochs")
}

func BenchmarkAblationStorage(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows, err := exp.AblationStorage(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		byName := map[string]exp.StorageRow{}
		for _, r := range rows {
			byName[r.Backend] = r
		}
		ratio = float64(byName["out-of-core"].StorageBytes) / float64(byName["compressed"].StorageBytes)
	}
	b.ReportMetric(ratio, "compression-ratio")
}

func BenchmarkTableIV_Resources(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reports, err := exp.Table4(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		if len(reports) != 3 {
			b.Fatal("missing reports")
		}
	}
}

// --- engine microbenchmarks -------------------------------------------

func benchGraph(b *testing.B) *Graph {
	b.Helper()
	g, err := gen.RMAT(gen.DefaultRMAT(12, 8, 5))
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkEnginePageRank measures end-to-end PR throughput (the per-
// iteration cost side of Equation 1).
func BenchmarkEnginePageRank(b *testing.B) {
	g := benchGraph(b)
	cfg := core.Config{BlockSize: 256, Mode: core.Async, Policy: sched.Cyclic,
		NumPEs: 2, NumScatter: 1, Epsilon: 1e-10}
	b.ResetTimer()
	var edges int64
	for i := 0; i < b.N; i++ {
		res, err := core.Run[float64, float64](g, bcd.PageRank{}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		edges = res.Stats.EdgesTraversed
	}
	b.ReportMetric(float64(edges*int64(b.N))/b.Elapsed().Seconds()/1e6, "MTEPS")
}

// BenchmarkEngineSSSPPriority measures the priority scheduler under the
// monotone relaxation workload.
func BenchmarkEngineSSSPPriority(b *testing.B) {
	cfgG := gen.DefaultRMAT(12, 8, 6)
	cfgG.MaxWeight = 64
	g, err := gen.RMAT(cfgG)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.Config{BlockSize: 256, Mode: core.Async, Policy: sched.Priority,
		NumPEs: 2, NumScatter: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run[float64, float64](g, bcd.SSSP{Source: 0}, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGraphBuild measures the dual CSC/CSR construction.
func BenchmarkGraphBuild(b *testing.B) {
	g := benchGraph(b)
	edges := g.Edges()
	n := g.NumVertices()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewGraph(n, edges); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(edges)) * 12)
}

// BenchmarkReductionUnit compares the paper's tag-matched dataflow GATHER
// reduction (Sec. IV-C) against a naive stalling pipeline on a hub-heavy
// stream, reporting the modeled cycles-per-edge of each.
func BenchmarkReductionUnit(b *testing.B) {
	const n, lat = 8192, 6
	in := make([]accel.Contribution, n)
	for i := range in {
		in[i] = accel.Contribution{Tag: uint32(i % 4), Value: 1}
	}
	counts := map[uint32]int{0: n / 4, 1: n / 4, 2: n / 4, 3: n / 4}
	sum := func(a, c float64) float64 { return a + c }
	var naiveCycles, dfCycles int64
	for i := 0; i < b.N; i++ {
		_, naiveCycles = accel.NaiveReduce(in, counts, sum, lat)
		_, dfCycles, _ = accel.DataflowReduce(in, counts, sum, lat)
	}
	b.ReportMetric(float64(naiveCycles)/n, "naive-cycles/edge")
	b.ReportMetric(float64(dfCycles)/n, "dataflow-cycles/edge")
}

// BenchmarkGraphMatPageRank gives the baseline's raw sweep throughput for
// comparison against BenchmarkEnginePageRank.
func BenchmarkGraphMatPageRank(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runGraphMatPR(g); err != nil {
			b.Fatal(err)
		}
	}
}

func ratios(num, den []float64) []float64 {
	out := make([]float64, 0, len(num))
	for i := range num {
		if den[i] > 0 {
			out = append(out, num[i]/den[i])
		}
	}
	return out
}
