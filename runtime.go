package graphabcd

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"graphabcd/internal/telemetry"
)

// JobSpec describes one analytics job: which algorithm, over which graph,
// under which engine configuration. Build one with NewJobSpec and the
// WithXxx functional options; the zero value is not runnable.
//
// A JobSpec is the unit both front ends share: the CLI builds one from
// flags, the HTTP serving layer (internal/serve) builds one from a JSON
// request, and both hand it to a Runtime.
type JobSpec struct {
	// Algorithm names a registered AlgorithmSpec ("pagerank", "sssp",
	// "ppr", ... — see Algorithms). Aliases such as "pr" resolve too.
	Algorithm string
	// Graph is the graph to run over.
	Graph *Graph
	// Config is the engine configuration. A zero BlockSize is defaulted
	// to the |V|/256 heuristic; the rest is validated by Config.Validate
	// at the Runtime boundary, before any goroutine starts.
	Config Config
	// Cluster, when non-nil, runs the job on the in-process distributed
	// engine across Cluster.Nodes nodes instead of the single-node
	// engine. Validated once at the Runtime boundary — the regression
	// the ad-hoc RunDistributed* helpers historically left to the
	// engine's interior.
	Cluster *ClusterConfig

	// Source is the source vertex for traversal algorithms (sssp, bfs).
	// HasSource distinguishes an explicit source 0 from an unset one.
	Source    uint32
	HasSource bool
	// Seeds is the personalization set for seeded algorithms (ppr).
	Seeds []uint32
	// Damping overrides the damping factor for pagerank/ppr variants;
	// 0 means the algorithm default (0.85).
	Damping float64
	// CF, when non-nil, overrides the collaborative-filtering
	// hyperparameters.
	CF *CF
	// Schedule, when non-nil, deterministically replays a recorded block
	// schedule (core.ReplaySchedule) instead of running live; the
	// residual trace lands in JobResult.Residuals.
	Schedule []uint32

	configSet bool
}

// JobOption configures a JobSpec, in the functional-option style of
// Load/Save's WithFormat.
type JobOption func(*JobSpec)

// WithConfig sets the engine configuration (replacing the default one).
func WithConfig(cfg Config) JobOption {
	return func(s *JobSpec) { s.Config = cfg; s.configSet = true }
}

// WithSource sets the source vertex for traversal algorithms.
func WithSource(v uint32) JobOption {
	return func(s *JobSpec) { s.Source = v; s.HasSource = true }
}

// WithSeeds sets the personalization seed set for seeded algorithms.
func WithSeeds(seeds ...uint32) JobOption {
	return func(s *JobSpec) { s.Seeds = append([]uint32(nil), seeds...) }
}

// WithDamping overrides the damping factor for pagerank/ppr.
func WithDamping(d float64) JobOption {
	return func(s *JobSpec) { s.Damping = d }
}

// WithClusterConfig runs the job on the in-process distributed engine.
func WithClusterConfig(cfg ClusterConfig) JobOption {
	return func(s *JobSpec) { c := cfg; s.Cluster = &c }
}

// WithCFParams overrides the collaborative-filtering hyperparameters.
func WithCFParams(p CF) JobOption {
	return func(s *JobSpec) { c := p; s.CF = &c }
}

// WithSchedule replays a recorded block schedule deterministically.
func WithSchedule(schedule []uint32) JobOption {
	return func(s *JobSpec) { s.Schedule = schedule }
}

// NewJobSpec assembles a JobSpec for algorithm over g. Without
// WithConfig the spec runs under DefaultConfig with the |V|/256 block
// heuristic.
func NewJobSpec(algorithm string, g *Graph, opts ...JobOption) JobSpec {
	s := JobSpec{Algorithm: algorithm, Graph: g}
	for _, o := range opts {
		o(&s)
	}
	return s
}

// JobResult is the type-erased result of one job. Exactly one of Float /
// Uint / Vectors is populated, matching the algorithm's value kind
// (AlgorithmSpec.Values).
type JobResult struct {
	// Algorithm is the canonical (non-alias) algorithm name.
	Algorithm string
	// Float holds float64-valued results (pagerank, ppr, sssp, ...).
	Float []float64
	// Uint holds uint64-valued results (bfs, cc, labelprop, kcore).
	Uint []uint64
	// Vectors holds vector-valued results (cf factors).
	Vectors [][]float32
	// Residuals is the per-epoch residual trace of a schedule replay
	// (JobSpec.Schedule); nil for live runs.
	Residuals []float64
	// Stats summarizes the run.
	Stats Stats
	// Cluster carries the distributed-run statistics when the job ran
	// under WithClusterConfig; nil otherwise.
	Cluster *ClusterStats
}

// EventType classifies a runtime Event.
type EventType string

// Event types emitted by Runtime and Handle event streams.
const (
	// EventEpoch reports convergence progress: one more epoch-equivalent
	// of vertex updates completed.
	EventEpoch EventType = "epoch"
	// EventDone reports successful completion.
	EventDone EventType = "done"
	// EventFailed reports completion with an error.
	EventFailed EventType = "failed"
)

// Event is one observation from a running job: convergence progress or
// terminal state. The serving layer streams these over SSE.
type Event struct {
	// Job is the job id the event belongs to.
	Job string
	// Type classifies the event.
	Type EventType
	// Epoch is the completed epoch count (EventEpoch, EventDone).
	Epoch int
	// Residual is the pending gradient mass at the event (EventEpoch).
	Residual float64
	// ActiveBlocks is the active-list size at the event (EventEpoch).
	ActiveBlocks int
	// Err carries the failure message (EventFailed).
	Err string
}

// Runtime executes JobSpecs. It is the one execution surface the CLI,
// the deprecated Run* helpers, and the HTTP serving layer all share:
// Run validates the spec once (algorithm lookup, graph presence, core
// and cluster Config.Validate) before any goroutine starts, dispatches
// through the algorithm registry, and returns a Handle the caller polls,
// waits on, or streams events from. Events is the merged event stream of
// every job started on the runtime; per-job streams hang off the Handle.
type Runtime interface {
	Run(ctx context.Context, spec JobSpec) (*Handle, error)
	Events() <-chan Event
}

// Handle tracks one running job.
type Handle struct {
	id     string
	algo   string
	cancel context.CancelFunc
	done   chan struct{}
	events chan Event

	mu  sync.Mutex
	res *JobResult
	err error
}

// ID returns the job id ("job-<n>" unless the runtime assigned one).
func (h *Handle) ID() string { return h.id }

// Algorithm returns the canonical algorithm name the job resolved to.
func (h *Handle) Algorithm() string { return h.algo }

// Done is closed when the job reaches a terminal state.
func (h *Handle) Done() <-chan struct{} { return h.done }

// Events returns the job's event stream. The channel is closed after the
// terminal EventDone/EventFailed. Slow consumers lose intermediate
// EventEpoch events (the stream never blocks the engine); terminal
// events are always delivered.
func (h *Handle) Events() <-chan Event { return h.events }

// Cancel stops the job; the engine drains gracefully and the partial
// result is returned with Stats.Converged == false.
func (h *Handle) Cancel() { h.cancel() }

// Result returns the job's result once Done is closed; before that it
// returns nil and no error.
func (h *Handle) Result() (*JobResult, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.res, h.err
}

// Wait blocks until the job completes or ctx is cancelled. Cancelling
// ctx does not cancel the job itself — use Cancel for that.
func (h *Handle) Wait(ctx context.Context) (*JobResult, error) {
	select {
	case <-h.done:
		return h.Result()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (h *Handle) finish(res *JobResult, err error) {
	h.mu.Lock()
	h.res, h.err = res, err
	h.mu.Unlock()
	close(h.done)
}

// localRuntime is the in-process Runtime over the algorithm registry.
type localRuntime struct {
	seq    atomic.Int64
	events chan Event
}

// NewRuntime returns the in-process Runtime: jobs run on this process's
// engines (single-node, or the in-process cluster engine under
// WithClusterConfig).
func NewRuntime() Runtime {
	return &localRuntime{events: make(chan Event, 256)}
}

// Events implements Runtime. The merged stream is never closed and drops
// EventEpoch entries rather than block a job; terminal events may also
// be dropped if nothing drains the channel — per-job Handle streams are
// the lossless-terminal surface.
func (r *localRuntime) Events() <-chan Event { return r.events }

func (r *localRuntime) publish(ev Event) {
	select {
	case r.events <- ev:
	default:
	}
}

// Run implements Runtime. The spec is validated synchronously — an
// unknown algorithm, a missing graph, an out-of-range source or seed,
// or an invalid core/cluster Config is reported here, before any
// goroutine starts. The returned Handle's job is already running.
func (r *localRuntime) Run(ctx context.Context, spec JobSpec) (*Handle, error) {
	alg, err := LookupAlgorithm(spec.Algorithm)
	if err != nil {
		return nil, err
	}
	spec.Algorithm = alg.Name // canonicalize aliases for results and logs
	if !spec.configSet {
		bs := 0
		if spec.Graph != nil {
			bs = defaultBlockSize(spec.Graph)
		}
		spec.Config = DefaultConfig(bs)
	}
	if spec.Config.BlockSize == 0 && spec.Graph != nil {
		spec.Config.BlockSize = defaultBlockSize(spec.Graph)
	}
	if err := validateSpec(alg, &spec); err != nil {
		return nil, err
	}

	id := fmt.Sprintf("job-%d", r.seq.Add(1))
	jctx, cancel := context.WithCancel(ctx)
	h := &Handle{
		id:     id,
		algo:   alg.Name,
		cancel: cancel,
		done:   make(chan struct{}),
		events: make(chan Event, 64),
	}

	// Progress events ride the engine's epoch hook: the scheduler calls
	// it once per |V| vertex updates, and the hook samples the job's
	// telemetry registry for the residual/active-list convergence pair.
	// Setting OnEpoch also makes the engine record the convergence
	// series, so the registry always has a fresh sample here.
	reg := spec.Config.Telemetry
	if reg == nil {
		reg = telemetry.New(telemetry.Options{})
		spec.Config.Telemetry = reg
	}
	prevOnEpoch := spec.Config.OnEpoch
	spec.Config.OnEpoch = func(epoch int) {
		if prevOnEpoch != nil {
			prevOnEpoch(epoch)
		}
		snap := reg.Snapshot()
		ev := Event{
			Job:          id,
			Type:         EventEpoch,
			Epoch:        epoch,
			Residual:     snap.Residual,
			ActiveBlocks: snap.ActiveBlocks,
		}
		select {
		case h.events <- ev:
		default: // slow consumer: drop progress, never block the scheduler
		}
		r.publish(ev)
	}

	go func() {
		defer cancel()
		var (
			res *JobResult
			err error
		)
		if spec.Cluster != nil {
			res, err = alg.runDist(jctx, &spec)
		} else {
			res, err = alg.run(jctx, &spec)
		}
		var term Event
		if err != nil {
			term = Event{Job: id, Type: EventFailed, Err: err.Error()}
		} else {
			term = Event{Job: id, Type: EventDone, Epoch: int(res.Stats.Epochs)}
		}
		h.finish(res, err)
		// The terminal event is always delivered: the engine has joined
		// its goroutines so no epoch event can race this send, and if an
		// absent consumer let the buffer fill, stale progress events are
		// dropped to make room rather than blocking the job goroutine.
		for delivered := false; !delivered; {
			select {
			case h.events <- term:
				delivered = true
			default:
				select {
				case <-h.events:
				default:
				}
			}
		}
		close(h.events)
		r.publish(term)
	}()
	return h, nil
}

// validateSpec is the Runtime boundary's one-stop validation: algorithm
// requirements, graph presence, parameter ranges, and both Config
// layers. Everything downstream may assume a well-formed spec.
func validateSpec(alg *AlgorithmSpec, spec *JobSpec) error {
	if spec.Graph == nil {
		return fmt.Errorf("graphabcd: %s: JobSpec.Graph is nil; load or build a graph first", alg.Name)
	}
	n := spec.Graph.NumVertices()
	if alg.NeedsSource && !spec.HasSource {
		return fmt.Errorf("graphabcd: %s requires a source vertex; add WithSource", alg.Name)
	}
	if spec.HasSource && int(spec.Source) >= n {
		return fmt.Errorf("graphabcd: source vertex %d outside graph with %d vertices", spec.Source, n)
	}
	if alg.NeedsSeeds && len(spec.Seeds) == 0 {
		return fmt.Errorf("graphabcd: %s requires seed vertices; add WithSeeds", alg.Name)
	}
	for _, s := range spec.Seeds {
		if int(s) >= n {
			return fmt.Errorf("graphabcd: seed vertex %d outside graph with %d vertices", s, n)
		}
	}
	if spec.Damping < 0 || spec.Damping >= 1 {
		return fmt.Errorf("graphabcd: damping %g outside [0, 1); 0 means the 0.85 default", spec.Damping)
	}
	if spec.Schedule != nil && spec.Cluster != nil {
		return fmt.Errorf("graphabcd: schedule replay is single-process only; drop WithClusterConfig")
	}
	if spec.Cluster != nil {
		if !alg.Distributed {
			return fmt.Errorf("graphabcd: %s does not support distributed execution (pick pagerank, sssp, bfs, or cc)", alg.Name)
		}
		if err := spec.Cluster.Validate(); err != nil {
			return err
		}
		return nil
	}
	return spec.Config.Validate()
}

func defaultBlockSize(g *Graph) int {
	bs := g.NumVertices() / 256
	if bs < 16 {
		bs = 16
	}
	return bs
}

// defaultRuntime backs the deprecated Run* helpers.
var defaultRuntime = sync.OnceValue(NewRuntime)

// runJob executes spec synchronously on the default runtime.
func runJob(ctx context.Context, spec JobSpec) (*JobResult, error) {
	h, err := defaultRuntime().Run(ctx, spec)
	if err != nil {
		return nil, err
	}
	<-h.Done()
	return h.Result()
}

// clusterSpecConfig converts the distributed wrapper arguments into the
// cluster side of a JobSpec. The cluster engine reads engine knobs from
// ClusterConfig directly, so Config stays default.
func clusterSpec(algorithm string, g *Graph, ccfg ClusterConfig, opts ...JobOption) JobSpec {
	opts = append([]JobOption{WithClusterConfig(ccfg)}, opts...)
	return NewJobSpec(algorithm, g, opts...)
}
