package graphabcd

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"graphabcd/internal/bcd"
	"graphabcd/internal/cluster"
	"graphabcd/internal/core"
)

// ValueKind identifies which JobResult value array an algorithm fills.
type ValueKind int

// Value kinds.
const (
	// FloatValues populates JobResult.Float.
	FloatValues ValueKind = iota
	// UintValues populates JobResult.Uint.
	UintValues
	// VectorValues populates JobResult.Vectors.
	VectorValues
)

// String names the kind for API discovery documents.
func (k ValueKind) String() string {
	switch k {
	case FloatValues:
		return "float64"
	case UintValues:
		return "uint64"
	case VectorValues:
		return "[]float32"
	}
	return fmt.Sprintf("valuekind(%d)", int(k))
}

// ParamSpec documents one algorithm parameter for API discovery
// (GET /v1/algorithms in the serving layer).
type ParamSpec struct {
	// Name is the JSON/query parameter name.
	Name string `json:"name"`
	// Type is the parameter's JSON type ("integer", "number", "[]integer").
	Type string `json:"type"`
	// Required marks parameters without which the job is rejected.
	Required bool `json:"required"`
	// Doc is a one-line description.
	Doc string `json:"doc"`
}

// AlgorithmSpec is one registry entry: the canonical name, what the
// algorithm needs from a JobSpec, and the type-erased program factories
// the Runtime dispatches through. The CLI's -algo flag, the deprecated
// Run* helpers, and the HTTP layer's "algorithm" field all resolve here.
type AlgorithmSpec struct {
	// Name is the canonical algorithm name.
	Name string
	// Aliases are accepted alternate spellings ("pr" for "pagerank").
	Aliases []string
	// Description is a one-line summary for listings.
	Description string
	// Values is the result value kind.
	Values ValueKind
	// NeedsSource marks algorithms requiring WithSource (sssp, bfs).
	NeedsSource bool
	// NeedsSeeds marks algorithms requiring WithSeeds (ppr).
	NeedsSeeds bool
	// Distributed marks algorithms runnable under WithClusterConfig.
	Distributed bool
	// DefaultMaxEpochs is the epoch budget the serving layer applies when
	// the request sets none — non-convergent workloads (labelprop, cf)
	// must be bounded to be servable. 0 means run to convergence.
	DefaultMaxEpochs float64
	// Params documents the algorithm-specific parameters.
	Params []ParamSpec

	run     func(ctx context.Context, spec *JobSpec) (*JobResult, error)
	runDist func(ctx context.Context, spec *JobSpec) (*JobResult, error)
}

var (
	paramSource = ParamSpec{Name: "source", Type: "integer", Required: true, Doc: "source vertex id"}
	paramSeeds  = ParamSpec{Name: "seeds", Type: "[]integer", Required: true, Doc: "personalization seed vertex ids"}
	paramDamp   = ParamSpec{Name: "damping", Type: "number", Doc: "damping factor in [0,1); 0 means 0.85"}
)

// registry maps canonical names AND aliases to specs. Built once at
// package init; read-only afterwards, so lookups need no lock.
var registry = buildRegistry()

func buildRegistry() map[string]*AlgorithmSpec {
	specs := []*AlgorithmSpec{
		{
			Name: "pagerank", Aliases: []string{"pr"},
			Description: "damped PageRank over the whole graph",
			Values:      FloatValues, Distributed: true,
			Params: []ParamSpec{paramDamp},
			run: func(ctx context.Context, spec *JobSpec) (*JobResult, error) {
				return runFloat(ctx, spec, bcd.PageRank{Damping: spec.Damping})
			},
			runDist: func(ctx context.Context, spec *JobSpec) (*JobResult, error) {
				return runDistFloat(ctx, spec, bcd.PageRank{Damping: spec.Damping})
			},
		},
		{
			Name:        "ppr",
			Description: "personalized PageRank from a seed set",
			Values:      FloatValues, NeedsSeeds: true,
			Params: []ParamSpec{paramSeeds, paramDamp},
			run: func(ctx context.Context, spec *JobSpec) (*JobResult, error) {
				prog, err := bcd.NewPPR(spec.Damping, spec.Seeds)
				if err != nil {
					return nil, err
				}
				return runFloat(ctx, spec, prog)
			},
		},
		{
			Name: "pagerank-delta", Aliases: []string{"prdelta"},
			Description: "operation-based PageRank (atomic delta accumulation)",
			Values:      FloatValues,
			Params:      []ParamSpec{paramDamp},
			run: func(ctx context.Context, spec *JobSpec) (*JobResult, error) {
				return runFloat(ctx, spec, bcd.PageRankDelta{Damping: spec.Damping})
			},
		},
		{
			Name:        "sssp",
			Description: "single-source shortest path (weighted relaxation)",
			Values:      FloatValues, NeedsSource: true, Distributed: true,
			Params: []ParamSpec{paramSource},
			run: func(ctx context.Context, spec *JobSpec) (*JobResult, error) {
				return runFloat(ctx, spec, bcd.SSSP{Source: spec.Source})
			},
			runDist: func(ctx context.Context, spec *JobSpec) (*JobResult, error) {
				return runDistFloat(ctx, spec, bcd.SSSP{Source: spec.Source})
			},
		},
		{
			Name:        "bfs",
			Description: "breadth-first levels from a source",
			Values:      UintValues, NeedsSource: true, Distributed: true,
			Params: []ParamSpec{paramSource},
			run: func(ctx context.Context, spec *JobSpec) (*JobResult, error) {
				return runUint[uint64](ctx, spec, bcd.BFS{Source: spec.Source})
			},
			runDist: func(ctx context.Context, spec *JobSpec) (*JobResult, error) {
				return runDistUint[uint64](ctx, spec, bcd.BFS{Source: spec.Source})
			},
		},
		{
			Name:        "cc",
			Description: "connected components by min-label propagation",
			Values:      UintValues, Distributed: true,
			run: func(ctx context.Context, spec *JobSpec) (*JobResult, error) {
				return runUint[uint64](ctx, spec, bcd.CC{})
			},
			runDist: func(ctx context.Context, spec *JobSpec) (*JobResult, error) {
				return runDistUint[uint64](ctx, spec, bcd.CC{})
			},
		},
		{
			Name: "labelprop", Aliases: []string{"lp"},
			Description: "weighted majority label propagation",
			Values:      UintValues, DefaultMaxEpochs: 50,
			run: func(ctx context.Context, spec *JobSpec) (*JobResult, error) {
				return runUint[bcd.LPAccum](ctx, spec, bcd.LabelProp{})
			},
		},
		{
			Name:        "kcore",
			Description: "coreness by the monotone h-index fixpoint (symmetric graphs)",
			Values:      UintValues,
			run: func(ctx context.Context, spec *JobSpec) (*JobResult, error) {
				return runUint[bcd.KCoreAccum](ctx, spec, bcd.KCore{})
			},
		},
		{
			Name:        "cf",
			Description: "collaborative filtering by low-rank factorization",
			Values:      VectorValues, DefaultMaxEpochs: 20,
			Params: []ParamSpec{
				{Name: "rank", Type: "integer", Doc: "factor dimension (default 8)"},
			},
			run: func(ctx context.Context, spec *JobSpec) (*JobResult, error) {
				params := bcd.CF{Rank: 8, LearnRate: 0.3, Lambda: 0.01, Seed: 7}
				if spec.CF != nil {
					params = *spec.CF
				}
				res, err := runCoreOrReplay[[]float32, []float64](ctx, spec, params)
				if err != nil {
					return nil, err
				}
				out := &JobResult{Algorithm: "cf", Vectors: res.Values, Stats: res.Stats}
				out.Residuals = res.Residuals
				return out, nil
			},
		},
	}
	m := make(map[string]*AlgorithmSpec, 2*len(specs))
	for _, s := range specs {
		m[s.Name] = s
		for _, a := range s.Aliases {
			m[a] = s
		}
	}
	return m
}

// LookupAlgorithm resolves a name or alias to its registry entry,
// wrapping ErrUnknownAlgorithm (use errors.Is) when nothing matches.
func LookupAlgorithm(name string) (*AlgorithmSpec, error) {
	if s, ok := registry[strings.ToLower(strings.TrimSpace(name))]; ok {
		return s, nil
	}
	return nil, fmt.Errorf("%w: %q (known: %s)", ErrUnknownAlgorithm, name, strings.Join(algorithmNames(), ", "))
}

// Algorithms lists every registered algorithm, sorted by canonical name.
func Algorithms() []*AlgorithmSpec {
	seen := make(map[string]bool, len(registry))
	out := make([]*AlgorithmSpec, 0, len(registry))
	for _, s := range registry {
		if !seen[s.Name] {
			seen[s.Name] = true
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func algorithmNames() []string {
	specs := Algorithms()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// replayResult pairs a core result with the replay residual trace.
type coreRun[V any] struct {
	Values    []V
	Stats     Stats
	Residuals []float64
}

// runCoreOrReplay executes one single-node run: live through
// core.RunContext, or a deterministic replay when the spec carries a
// recorded schedule.
func runCoreOrReplay[V, M any](ctx context.Context, spec *JobSpec, prog bcd.Program[V, M]) (*coreRun[V], error) {
	if spec.Schedule == nil {
		res, err := core.RunContext[V, M](ctx, spec.Graph, prog, spec.Config)
		if err != nil {
			return nil, err
		}
		return &coreRun[V]{Values: res.Values, Stats: res.Stats}, nil
	}
	rr, err := core.ReplaySchedule[V, M](ctx, spec.Graph, prog, spec.Config, spec.Schedule)
	if err != nil {
		return nil, err
	}
	return &coreRun[V]{Values: rr.Result.Values, Stats: rr.Result.Stats, Residuals: rr.Residuals}, nil
}

func runFloat[M any](ctx context.Context, spec *JobSpec, prog bcd.Program[float64, M]) (*JobResult, error) {
	res, err := runCoreOrReplay[float64, M](ctx, spec, prog)
	if err != nil {
		return nil, err
	}
	return &JobResult{Algorithm: spec.Algorithm, Float: res.Values, Stats: res.Stats, Residuals: res.Residuals}, nil
}

func runUint[M any](ctx context.Context, spec *JobSpec, prog bcd.Program[uint64, M]) (*JobResult, error) {
	res, err := runCoreOrReplay[uint64, M](ctx, spec, prog)
	if err != nil {
		return nil, err
	}
	return &JobResult{Algorithm: spec.Algorithm, Uint: res.Values, Stats: res.Stats, Residuals: res.Residuals}, nil
}

func runDistFloat[M any](ctx context.Context, spec *JobSpec, prog bcd.Program[float64, M]) (*JobResult, error) {
	res, err := cluster.Run[float64, M](ctx, spec.Graph, prog, *spec.Cluster)
	if err != nil {
		return nil, err
	}
	cs := res.Stats
	return &JobResult{Algorithm: spec.Algorithm, Float: res.Values, Stats: cs.Stats, Cluster: &cs}, nil
}

func runDistUint[M any](ctx context.Context, spec *JobSpec, prog bcd.Program[uint64, M]) (*JobResult, error) {
	res, err := cluster.Run[uint64, M](ctx, spec.Graph, prog, *spec.Cluster)
	if err != nil {
		return nil, err
	}
	cs := res.Stats
	return &JobResult{Algorithm: spec.Algorithm, Uint: res.Values, Stats: cs.Stats, Cluster: &cs}, nil
}
