package graphabcd

import "errors"

// Typed sentinel errors shared by the facade, the Runtime, and the
// serving layer (internal/serve). HTTP handlers map these to status
// codes with errors.Is instead of matching message strings.
var (
	// ErrUnknownAlgorithm reports a JobSpec.Algorithm that no registered
	// AlgorithmSpec claims (see Algorithms for the registry listing).
	ErrUnknownAlgorithm = errors.New("graphabcd: unknown algorithm")

	// ErrGraphNotFound reports a graph name the serving layer's pool
	// cannot resolve to a loaded graph or an on-disk snapshot.
	ErrGraphNotFound = errors.New("graphabcd: graph not found")

	// ErrOverloaded reports an admission-control rejection: the job
	// queue is full or a tenant exhausted its token bucket. The request
	// was not enqueued; retry with backoff.
	ErrOverloaded = errors.New("graphabcd: overloaded")

	// ErrJobNotFound reports a job id the serving layer does not know.
	ErrJobNotFound = errors.New("graphabcd: job not found")
)
