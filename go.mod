module graphabcd

go 1.24
