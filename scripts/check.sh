#!/usr/bin/env bash
# Pre-PR gate: formatting, vet, the abcdlint concurrency/hot-path rules,
# build, and the full test suite under the race detector. Every step must
# pass; run from anywhere inside the repository.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt needed:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== abcdlint"
go run ./cmd/abcdlint ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

echo "All checks passed."
