#!/usr/bin/env bash
# Pre-PR gate: formatting, vet, the abcdlint concurrency/hot-path rules,
# build, and the full test suite under the race detector. Every step must
# pass; run from anywhere inside the repository.
#
#   scripts/check.sh            full gate
#   scripts/check.sh --smoke    fast subset: build + graph snapshot
#                               round-trip / Load-Save format tests
set -euo pipefail

cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--smoke" ]]; then
    echo "== go build"
    go build ./...
    echo "== snapshot round-trip smoke"
    go test -count=1 -run 'Snapshot|LoadSaveFormats|BuilderEquivalence' \
        ./internal/graph ./internal/edgestore
    echo "== wire frame round-trip smoke"
    go test -count=1 -run 'Frame|Envelope' \
        ./internal/cluster ./internal/cluster/tcp
    echo "== checkpoint round-trip + resume smoke"
    go test -count=1 -run 'Checkpoint|Resume|Schedule' \
        ./internal/checkpoint ./internal/core
    echo "== observability smoke (loopback dist run, /metrics + /healthz probed live)"
    tmpd=$(mktemp -d -t graphabcd_obs_XXXXXX)
    trap 'rm -rf "$tmpd"' EXIT
    go build -o "$tmpd/graphabcd" ./cmd/graphabcd
    "$tmpd/graphabcd" -algo cc -dataset WT -shrink 6 -nodes 2 \
        -listen 127.0.0.1:0 -telemetry -metrics-addr 127.0.0.1:0 \
        -log-level info -log-format json -timeout 2m \
        >"$tmpd/coord.log" 2>"$tmpd/coord.err" &
    coord=$!
    # The coordinator prints the metrics URL, then its control address,
    # then blocks waiting for the joiner — probe the endpoints in that
    # window, while the process is demonstrably mid-run.
    for _ in $(seq 1 200); do
        grep -q '^coordinating' "$tmpd/coord.log" 2>/dev/null && break
        sleep 0.05
    done
    murl=$(sed -n 's|^metrics: \(http://[^/]*\)/metrics.*|\1|p' "$tmpd/coord.log")
    addr=$(sed -n 's/^coordinating .* nodes on \([^ ]*\).*/\1/p' "$tmpd/coord.log")
    if [[ -z "$murl" || -z "$addr" ]]; then
        echo "coordinator never announced its endpoints:" >&2
        cat "$tmpd/coord.log" "$tmpd/coord.err" >&2
        exit 1
    fi
    curl -fsS "$murl/healthz" | grep -qx 'ok'
    curl -fsS "$murl/metrics" | grep -q '^graphabcd_counter_total{name="block_updates"}'
    curl -fsS "$murl/metrics" | grep -q '^# TYPE graphabcd_cluster_nodes gauge'
    # Not ready yet: the cluster has not assembled.
    if curl -fsS "$murl/readyz" >/dev/null 2>&1; then
        echo "/readyz reported ready before the cluster assembled" >&2
        exit 1
    fi
    "$tmpd/graphabcd" -join "$addr" -timeout 2m >"$tmpd/join.log" 2>&1
    wait "$coord"
    grep -q '^components:' "$tmpd/coord.log"
    grep -q '"event":"cluster.start"' "$tmpd/coord.err"
    grep -q 'join run complete' "$tmpd/join.log"
    echo "== serving layer smoke (graphabcdd: job over HTTP, cache hit on resubmit)"
    srvd="$tmpd/srv"
    mkdir -p "$srvd/graphs"
    "$tmpd/graphabcd" -algo pr -dataset WT -shrink 2 -max-epochs 1 \
        -save-graph "$srvd/graphs/wt.gabs" >/dev/null
    go build -o "$tmpd/graphabcdd" ./cmd/graphabcdd
    "$tmpd/graphabcdd" -addr 127.0.0.1:0 -graphs "$srvd/graphs" -preload wt \
        -log-level warn >"$srvd/server.log" 2>&1 &
    srv=$!
    for _ in $(seq 1 200); do
        grep -q '^graphabcdd serving' "$srvd/server.log" 2>/dev/null && break
        sleep 0.05
    done
    base=$(sed -n 's|^graphabcdd serving on \(http://[^ ]*\).*|\1|p' "$srvd/server.log")
    if [[ -z "$base" ]]; then
        echo "graphabcdd never announced its URL:" >&2
        cat "$srvd/server.log" >&2
        exit 1
    fi
    curl -fsS "$base/readyz" | grep -qx 'ok'
    cold=$(curl -fsS -X POST "$base/v1/jobs" -d '{"algorithm":"pagerank","graph":"wt"}')
    id=$(sed -n 's/.*"id":"\([^"]*\)".*/\1/p' <<<"$cold")
    body=""
    for _ in $(seq 1 200); do
        body=$(curl -fsS "$base/v1/jobs/$id?values=false")
        grep -q '"state":"done"' <<<"$body" && break
        sleep 0.05
    done
    grep -q '"state":"done"' <<<"$body"
    grep -q '"converged":true' <<<"$body"
    cold_ms=$(sed -n 's/.*"elapsed_ms":\([0-9.eE+-]*\).*/\1/p' <<<"$body")
    # Same request again: must answer from the result cache, at least 100x
    # faster than the cold run, in the submit response itself.
    warm=$(curl -fsS -X POST "$base/v1/jobs" -d '{"algorithm":"pagerank","graph":"wt"}')
    grep -q '"cached":true' <<<"$warm"
    warm_ms=$(sed -n 's/.*"elapsed_ms":\([0-9.eE+-]*\).*/\1/p' <<<"$warm")
    awk -v c="$cold_ms" -v w="$warm_ms" 'BEGIN {
        if (w + 0 <= 0) w = 0.0001
        if (c + 0 < 100 * w) {
            printf "cache hit not >=100x faster than cold run: cold=%sms warm=%sms\n", c, w
            exit 1
        }
    }'
    curl -fsS "$base/metrics" | grep -q '^graphabcdd_cache_hits_total 1$'
    kill -TERM "$srv"
    wait "$srv"
    grep -q 'graphabcdd stopped' "$srvd/server.log"
    echo "Smoke checks passed."
    exit 0
fi

echo "== gofmt"
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt needed:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== abcdlint self-check (-rules list)"
# The rule registry drives the SARIF tool.driver.rules table and the docs;
# a rule that vanishes from the listing is a wiring bug, catch it here.
rules=$(go run ./cmd/abcdlint -rules list)
for r in atomicword hotalloc hotpath locksafe errcheck goroutine ctxloop publish boundalloc; do
    if ! grep -q "^$r " <<<"$rules"; then
        echo "abcdlint -rules list is missing rule '$r'" >&2
        exit 1
    fi
done

echo "== abcdlint (JSON report, baseline-gated)"
# Machine-readable report for CI artifacts; the run fails only on findings
# not grandfathered by lint_baseline.json, so the gate catches regressions
# without blocking on accepted debt.
if ! go run ./cmd/abcdlint -format json -baseline lint_baseline.json ./... >lint_report.json; then
    echo "abcdlint found fresh findings (report in lint_report.json):" >&2
    go run ./cmd/abcdlint -baseline lint_baseline.json ./... >&2 || true
    exit 1
fi

echo "== go build"
go build ./...

echo "== go test -race -short"
# -short gates the internal/exp experiment sweeps: race instrumentation
# slows those numeric kernels ~35x, past go test's per-package timeout.
# Every package still builds and runs its concurrency-relevant tests
# under the detector; the full sweeps run race-free in the tier-1 step.
go test -race -short ./...

echo "== go test (full, no detector)"
go test -count=1 ./...

echo "== fuzz corpora seeds (no -fuzz; replays the checked-in seeds)"
go test -count=1 -run 'Fuzz' \
    ./internal/checkpoint ./internal/cluster ./internal/cluster/tcp \
    ./internal/edgestore ./internal/graph ./internal/word

echo "== chaos suite (seeded fault injection, race detector)"
go test -race -count=1 -timeout 90s ./internal/chaos

echo "== socket chaos suite (TCP transport + mangling proxy, race detector)"
# Full suite, not -short: this is the gate for the PageRank equivalence
# run through the 20% drop / 10% dup / corrupting proxy and the slow
# distributed loopback + two-process runs.
go test -race -count=1 -timeout 600s ./internal/cluster/tcp ./internal/chaos/netproxy

echo "== bench smoke (tier-1 perf set, 1 iteration, small shrink)"
./scripts/bench.sh --smoke

echo "All checks passed."
