#!/usr/bin/env bash
# Performance snapshot: runs the tier-1 benchmark set (PageRank / SSSP / CC
# on the LJ and WT Table-I analogs, the telemetry-overhead pair, and the
# ingestion set: graph-build MEPS for the counting-sort vs the seed sort
# builder, plus text-parse and snapshot-load wall time) and writes one
# machine-readable BENCH_<date>.json with MTEPS / MEPS and wall time per
# benchmark.
#
# Usage:
#   scripts/bench.sh            full run (shrink 4, scale 18, benchtime 10x, count 3)
#   scripts/bench.sh --smoke    quick correctness pass (shrink 6, scale 12, 1x,
#                               count 1), writes to a temp file; wired into check.sh
#
# Environment overrides:
#   GRAPHABCD_BENCH_SHRINK  dataset scale-down exponent (default per mode)
#   GRAPHABCD_BENCH_SCALE   R-MAT scale for the Build/Load set (default per mode)
#   BENCH_TIME              go test -benchtime value (default per mode)
#   BENCH_COUNT             go test -count value (default per mode)
#   BENCH_OUT               output path (default BENCH_<yyyymmdd>.json)
set -euo pipefail

cd "$(dirname "$0")/.."

mode=full
if [[ "${1:-}" == "--smoke" ]]; then
    mode=smoke
fi

if [[ "$mode" == "smoke" ]]; then
    shrink="${GRAPHABCD_BENCH_SHRINK:-6}"
    scale="${GRAPHABCD_BENCH_SCALE:-12}"
    benchtime="${BENCH_TIME:-1x}"
    count="${BENCH_COUNT:-1}"
    out="${BENCH_OUT:-$(mktemp -t bench_smoke_XXXXXX.json)}"
else
    shrink="${GRAPHABCD_BENCH_SHRINK:-4}"
    scale="${GRAPHABCD_BENCH_SCALE:-18}"
    benchtime="${BENCH_TIME:-10x}"
    count="${BENCH_COUNT:-3}"
    out="${BENCH_OUT:-BENCH_$(date +%Y%m%d).json}"
fi

raw=$(mktemp -t bench_raw_XXXXXX.txt)
trap 'rm -f "$raw"' EXIT

echo "== bench (mode=$mode shrink=$shrink scale=$scale benchtime=$benchtime count=$count)"
GRAPHABCD_BENCH_SHRINK="$shrink" GRAPHABCD_BENCH_SCALE="$scale" go test -run '^$' \
    -bench 'BenchmarkPerf|BenchmarkEngineTelemetry' \
    -benchtime "$benchtime" -count "$count" . | tee "$raw"

# Fold the benchmark lines into JSON. Lines look like:
#   BenchmarkPerfPR_LJ-8   2   8013301 ns/op   30.39 MTEPS
#   BenchmarkPerfBuildCounting-8   5   212993764 ns/op   19.69 MEPS
# Repeated -count runs of the same benchmark are averaged.
awk -v mode="$mode" -v shrink="$shrink" -v scale="$scale" -v benchtime="$benchtime" \
    -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)          # strip -GOMAXPROCS suffix
    iters = $2
    ns = 0; mteps = 0; meps = 0
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "MTEPS") mteps = $i
        if ($(i+1) == "MEPS") meps = $i
        if ($(i+1) == "us/round" && $i + 0 > us_round) us_round = $i
        if ($(i+1) == "lat-us/round" && $i + 0 > lat_us_round) lat_us_round = $i
    }
    seen[name]++
    sum_ns[name] += ns
    sum_mteps[name] += mteps
    sum_meps[name] += meps
    sum_iters[name] += iters
    if (!(name in order)) { order[name] = ++n; names[n] = name }
}
END {
    if (n == 0) { print "bench.sh: no benchmark lines parsed" > "/dev/stderr"; exit 1 }
    printf "{\n"
    printf "  \"date\": \"%s\",\n", date
    printf "  \"mode\": \"%s\",\n", mode
    printf "  \"shrink\": %d,\n", shrink
    printf "  \"scale\": %d,\n", scale
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"benchmarks\": [\n"
    for (i = 1; i <= n; i++) {
        name = names[i]
        k = seen[name]
        printf "    {\"name\": \"%s\", \"runs\": %d, \"iterations\": %d, \"ns_per_op\": %.0f, \"wall_seconds\": %.6f, \"mteps\": %.2f, \"meps\": %.2f}%s\n", \
            name, k, sum_iters[name], sum_ns[name] / k, \
            sum_ns[name] / k / 1e9, sum_mteps[name] / k, sum_meps[name] / k, \
            (i < n ? "," : "")
    }
    printf "  ],\n"
    # Telemetry-aggregation overhead (acceptance bar: <= 2% full-tier).
    # Self-measured by BenchmarkPerfDistStatsCost: the coordinator times
    # its own fStats rounds (ClusterStats.NoteRound); steady-state
    # overhead is the per-round compute cost divided by the 500ms default
    # cadence. The round latency (compute plus the waits for joiner
    # replies, which are goroutine scheduling latency on an
    # oversubscribed core while the workers keep running) is recorded
    # alongside for transparency. Repeated -count runs fold by max —
    # the worst observed per-round mean.
    if (us_round + 0 > 0) {
        printf "  \"dist_stats_us_per_round\": %.1f,\n", us_round
        printf "  \"dist_stats_round_latency_us\": %.1f,\n", lat_us_round
        printf "  \"dist_stats_overhead_pct\": %.2f\n", us_round / 500000 * 100
    } else
        printf "  \"dist_stats_overhead_pct\": null\n"
    printf "}\n"
}' "$raw" > "$out"

echo "wrote $out"
