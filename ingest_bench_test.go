package graphabcd

import (
	"bytes"
	"os"
	"runtime"
	"strconv"
	"testing"

	"graphabcd/internal/graph"
)

// ingestScale is the R-MAT scale for the BenchmarkPerfBuild*/Load* set.
// The acceptance target is scale 18 (262k vertices, 4.2M edges);
// scripts/bench.sh --smoke drops it via GRAPHABCD_BENCH_SCALE so the
// check gate stays fast.
func ingestScale() int {
	if s := os.Getenv("GRAPHABCD_BENCH_SCALE"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n >= 0 && n <= 26 {
			return n
		}
	}
	return 18
}

// ingestEdges generates a Graph500-style R-MAT edge list (a=0.57 b=c=0.19)
// with a local splitmix64 stream, independent of internal/gen so the
// build benchmarks measure construction only.
func ingestEdges(scale int) []graph.Edge {
	n := 1 << scale
	m := 16 * n
	s := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	edges := make([]graph.Edge, m)
	for i := range edges {
		src, dst := 0, 0
		for bit := 0; bit < scale; bit++ {
			p := float64(next()>>11) / (1 << 53)
			switch {
			case p < 0.57:
			case p < 0.76:
				dst |= 1 << bit
			case p < 0.95:
				src |= 1 << bit
			default:
				src |= 1 << bit
				dst |= 1 << bit
			}
		}
		edges[i] = graph.Edge{Src: uint32(src), Dst: uint32(dst), Weight: 1}
	}
	return edges
}

// benchBuild measures one builder over the scale-configured R-MAT edge
// list, reporting construction throughput in MEPS (million edges/s).
func benchBuild(b *testing.B, build func(n int, edges []graph.Edge) (*graph.Graph, error)) {
	scale := ingestScale()
	edges := ingestEdges(scale)
	n := 1 << scale
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := build(n, edges); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)*float64(len(edges))/b.Elapsed().Seconds()/1e6, "MEPS")
}

// BenchmarkPerfBuildCounting is the parallel counting-sort builder
// (graph.FromEdges) on an R-MAT scale-18 edge list.
func BenchmarkPerfBuildCounting(b *testing.B) { benchBuild(b, graph.FromEdges) }

// BenchmarkPerfBuildCounting1T is the counting-sort builder pinned to
// GOMAXPROCS=1: the acceptance claim is that the linear construction
// beats the seed comparison sort even without parallelism.
func BenchmarkPerfBuildCounting1T(b *testing.B) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	benchBuild(b, graph.FromEdges)
}

// BenchmarkPerfBuildSort is the seed sort-based builder
// (graph.FromEdgesSort), the baseline the counting sort replaces.
func BenchmarkPerfBuildSort(b *testing.B) { benchBuild(b, graph.FromEdgesSort) }

// ingestGraph builds the benchmark graph once per process.
func ingestGraph(b *testing.B) *graph.Graph {
	b.Helper()
	scale := ingestScale()
	g, err := graph.FromEdges(1<<scale, ingestEdges(scale))
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkPerfLoadText measures the full text ingestion path — chunked
// parallel parse plus counting-sort build — from an in-memory edge list.
func BenchmarkPerfLoadText(b *testing.B) {
	g := ingestGraph(b)
	var text bytes.Buffer
	if err := graph.WriteEdgeList(&text, g); err != nil {
		b.Fatal(err)
	}
	data := text.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g2, err := graph.ReadEdgeList(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		if g2.NumEdges() != g.NumEdges() {
			b.Fatalf("parsed %d edges, want %d", g2.NumEdges(), g.NumEdges())
		}
	}
	b.ReportMetric(float64(b.N)*float64(g.NumEdges())/b.Elapsed().Seconds()/1e6, "MEPS")
}

// BenchmarkPerfLoadSnapshot measures reloading the same graph from the
// plain binary snapshot — the O(m) path that skips parse and sort. The
// acceptance target is >= 5x the BenchmarkPerfLoadText wall time.
func BenchmarkPerfLoadSnapshot(b *testing.B) {
	g := ingestGraph(b)
	var snap bytes.Buffer
	if err := graph.WriteSnapshot(&snap, g); err != nil {
		b.Fatal(err)
	}
	data := snap.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g2, err := graph.ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		if g2.NumEdges() != g.NumEdges() {
			b.Fatalf("loaded %d edges, want %d", g2.NumEdges(), g.NumEdges())
		}
	}
	b.ReportMetric(float64(b.N)*float64(g.NumEdges())/b.Elapsed().Seconds()/1e6, "MEPS")
}
