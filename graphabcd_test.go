package graphabcd

import (
	"bytes"
	"math"
	"testing"
)

// ring builds 0->1->...->n-1->0 with unit weights.
func ring(t *testing.T, n int) *Graph {
	t.Helper()
	edges := make([]Edge, n)
	for v := 0; v < n; v++ {
		edges[v] = Edge{Src: uint32(v), Dst: uint32((v + 1) % n), Weight: 1}
	}
	g, err := NewGraph(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFacadePageRank(t *testing.T) {
	g := ring(t, 64)
	res, err := RunPageRank(g, DefaultConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Converged {
		t.Fatal("did not converge")
	}
	for v, x := range res.Values {
		if math.Abs(x-1.0/64) > 1e-6 {
			t.Fatalf("ring rank[%d] = %g, want uniform", v, x)
		}
	}
}

func TestFacadeTraversals(t *testing.T) {
	g := ring(t, 16)
	cfg := DefaultConfig(4)
	sp, err := RunSSSP(g, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Values[5] != 5 {
		t.Fatalf("dist[5] = %g", sp.Values[5])
	}
	bfs, err := RunBFS(g, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bfs.Values[7] != 7 {
		t.Fatalf("level[7] = %d", bfs.Values[7])
	}
	cc, err := RunCC(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for v, l := range cc.Values {
		if l != 0 {
			t.Fatalf("label[%d] = %d, want 0 (single ring)", v, l)
		}
	}
	cfg.MaxEpochs = 10
	if _, err := RunLabelProp(g, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeCF(t *testing.T) {
	rg, err := Rating(DefaultRating(40, 20, 300, 3))
	if err != nil {
		t.Fatal(err)
	}
	params := CF{Rank: 8, LearnRate: 0.3, Lambda: 0.01}
	cfg := DefaultConfig(16)
	cfg.MaxEpochs = 30
	res, err := RunCF(rg.Graph, params, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rmse := params.RMSE(rg.Graph, res.Values); rmse > 2.5 {
		t.Fatalf("RMSE = %g, CF did not learn", rmse)
	}
}

func TestFacadeGenerators(t *testing.T) {
	if g, err := RMAT(DefaultRMAT(6, 4, 1)); err != nil || g.NumVertices() != 64 {
		t.Fatalf("RMAT: %v", err)
	}
	if g, err := Uniform(10, 20, 4, 1); err != nil || g.NumEdges() != 20 {
		t.Fatalf("Uniform: %v", err)
	}
	if g, err := Grid(3, 3, 0, 1); err != nil || g.NumVertices() != 9 {
		t.Fatalf("Grid: %v", err)
	}
}

func TestFacadeSimulatorAndIO(t *testing.T) {
	g := ring(t, 32)
	sim, err := NewSimulator(DefaultHARPv2())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(8)
	cfg.Sim = sim
	res, err := RunPageRank(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SimTimeNs <= 0 {
		t.Fatal("simulator not driven")
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatal("edge list round trip lost edges")
	}
}

// Run with an explicitly instantiated custom program exercises the generic
// facade path.
func TestFacadeGenericRun(t *testing.T) {
	g := ring(t, 16)
	res, err := Run[float64, float64](g, PageRank{Damping: 0.5}, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Converged {
		t.Fatal("not converged")
	}
}
