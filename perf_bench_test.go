package graphabcd

import (
	"io"
	"os"
	"strconv"
	"testing"

	"graphabcd/internal/bcd"
	"graphabcd/internal/core"
	"graphabcd/internal/gen"
	"graphabcd/internal/sched"
	"graphabcd/internal/telemetry"
)

// perfShrink is the dataset scale-down exponent for the BenchmarkPerf*
// set. scripts/bench.sh overrides it per tier via GRAPHABCD_BENCH_SHRINK.
func perfShrink() int {
	if s := os.Getenv("GRAPHABCD_BENCH_SHRINK"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n >= 0 {
			return n
		}
	}
	return 4
}

// perfGraph builds one Table-I analog at the configured shrink.
func perfGraph(b *testing.B, name string, weighted bool) *Graph {
	b.Helper()
	d, err := gen.Lookup(name)
	if err != nil {
		b.Fatal(err)
	}
	g, err := d.BuildSocial(perfShrink(), weighted)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func perfConfig(g *Graph) core.Config {
	return core.Config{
		BlockSize:  max(16, g.NumVertices()/256),
		Mode:       core.Async,
		Policy:     sched.Priority,
		NumPEs:     4,
		NumScatter: 2,
		Epsilon:    1e-9,
	}
}

// benchPR/benchSSSP/benchCC run one algorithm to convergence per
// iteration and report MTEPS — the tier-1 performance set scripts/bench.sh
// snapshots into BENCH_<date>.json.
func benchPR(b *testing.B, dataset string) {
	g := perfGraph(b, dataset, false)
	cfg := perfConfig(g)
	b.ResetTimer()
	var edges int64
	for i := 0; i < b.N; i++ {
		res, err := core.Run[float64, float64](g, bcd.PageRank{}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		edges += res.Stats.EdgesTraversed
	}
	b.ReportMetric(float64(edges)/b.Elapsed().Seconds()/1e6, "MTEPS")
}

func benchSSSP(b *testing.B, dataset string) {
	g := perfGraph(b, dataset, true)
	cfg := perfConfig(g)
	b.ResetTimer()
	var edges int64
	for i := 0; i < b.N; i++ {
		res, err := core.Run[float64, float64](g, bcd.SSSP{Source: 0}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		edges += res.Stats.EdgesTraversed
	}
	b.ReportMetric(float64(edges)/b.Elapsed().Seconds()/1e6, "MTEPS")
}

func benchCC(b *testing.B, dataset string) {
	g := perfGraph(b, dataset, false)
	cfg := perfConfig(g)
	b.ResetTimer()
	var edges int64
	for i := 0; i < b.N; i++ {
		res, err := core.Run[uint64, uint64](g, bcd.CC{}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		edges += res.Stats.EdgesTraversed
	}
	b.ReportMetric(float64(edges)/b.Elapsed().Seconds()/1e6, "MTEPS")
}

func BenchmarkPerfPR_LJ(b *testing.B)   { benchPR(b, "LJ") }
func BenchmarkPerfPR_WT(b *testing.B)   { benchPR(b, "WT") }
func BenchmarkPerfSSSP_LJ(b *testing.B) { benchSSSP(b, "LJ") }
func BenchmarkPerfSSSP_WT(b *testing.B) { benchSSSP(b, "WT") }
func BenchmarkPerfCC_LJ(b *testing.B)   { benchCC(b, "LJ") }
func BenchmarkPerfCC_WT(b *testing.B)   { benchCC(b, "WT") }

// --- telemetry overhead --------------------------------------------------
//
// The acceptance bar for the observability layer (DESIGN.md §9): with no
// registry the engine pays only its own sharded counter adds (~0 relative
// to the old false-sharing counter struct); with histograms and a sampled
// tracer enabled the PR wall time stays within 5%.

func benchTelemetry(b *testing.B, reg func() *telemetry.Registry) {
	g := perfGraph(b, "LJ", false)
	cfg := perfConfig(g)
	b.ResetTimer()
	var edges int64
	for i := 0; i < b.N; i++ {
		cfg.Telemetry = reg()
		res, err := core.Run[float64, float64](g, bcd.PageRank{}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		edges += res.Stats.EdgesTraversed
	}
	b.ReportMetric(float64(edges)/b.Elapsed().Seconds()/1e6, "MTEPS")
}

func BenchmarkEngineTelemetryOff(b *testing.B) {
	benchTelemetry(b, func() *telemetry.Registry { return nil })
}

func BenchmarkEngineTelemetryHist(b *testing.B) {
	benchTelemetry(b, func() *telemetry.Registry {
		return telemetry.New(telemetry.Options{Histograms: true})
	})
}

func BenchmarkEngineTelemetryTrace(b *testing.B) {
	var tracers []*telemetry.Tracer
	defer func() {
		for _, t := range tracers {
			_ = t.Close()
		}
	}()
	benchTelemetry(b, func() *telemetry.Registry {
		t := telemetry.NewTracer(io.Discard, 16)
		tracers = append(tracers, t)
		return telemetry.New(telemetry.Options{Histograms: true, Tracer: t})
	})
}
