package graphabcd

import (
	"context"
	"io"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"graphabcd/internal/bcd"
	"graphabcd/internal/cluster/tcp"
	"graphabcd/internal/core"
	"graphabcd/internal/gen"
	"graphabcd/internal/graph"
	"graphabcd/internal/sched"
	"graphabcd/internal/telemetry"
)

// perfShrink is the dataset scale-down exponent for the BenchmarkPerf*
// set. scripts/bench.sh overrides it per tier via GRAPHABCD_BENCH_SHRINK.
func perfShrink() int {
	if s := os.Getenv("GRAPHABCD_BENCH_SHRINK"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n >= 0 {
			return n
		}
	}
	return 4
}

// perfGraph builds one Table-I analog at the configured shrink.
func perfGraph(b *testing.B, name string, weighted bool) *Graph {
	b.Helper()
	d, err := gen.Lookup(name)
	if err != nil {
		b.Fatal(err)
	}
	g, err := d.BuildSocial(perfShrink(), weighted)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func perfConfig(g *Graph) core.Config {
	return core.Config{
		BlockSize:  max(16, g.NumVertices()/256),
		Mode:       core.Async,
		Policy:     sched.Priority,
		NumPEs:     4,
		NumScatter: 2,
		Epsilon:    1e-9,
	}
}

// benchPR/benchSSSP/benchCC run one algorithm to convergence per
// iteration and report MTEPS — the tier-1 performance set scripts/bench.sh
// snapshots into BENCH_<date>.json.
func benchPR(b *testing.B, dataset string) {
	g := perfGraph(b, dataset, false)
	cfg := perfConfig(g)
	b.ResetTimer()
	var edges int64
	for i := 0; i < b.N; i++ {
		res, err := core.Run[float64, float64](g, bcd.PageRank{}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		edges += res.Stats.EdgesTraversed
	}
	b.ReportMetric(float64(edges)/b.Elapsed().Seconds()/1e6, "MTEPS")
}

func benchSSSP(b *testing.B, dataset string) {
	g := perfGraph(b, dataset, true)
	cfg := perfConfig(g)
	b.ResetTimer()
	var edges int64
	for i := 0; i < b.N; i++ {
		res, err := core.Run[float64, float64](g, bcd.SSSP{Source: 0}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		edges += res.Stats.EdgesTraversed
	}
	b.ReportMetric(float64(edges)/b.Elapsed().Seconds()/1e6, "MTEPS")
}

func benchCC(b *testing.B, dataset string) {
	g := perfGraph(b, dataset, false)
	cfg := perfConfig(g)
	b.ResetTimer()
	var edges int64
	for i := 0; i < b.N; i++ {
		res, err := core.Run[uint64, uint64](g, bcd.CC{}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		edges += res.Stats.EdgesTraversed
	}
	b.ReportMetric(float64(edges)/b.Elapsed().Seconds()/1e6, "MTEPS")
}

func BenchmarkPerfPR_LJ(b *testing.B)   { benchPR(b, "LJ") }
func BenchmarkPerfPR_WT(b *testing.B)   { benchPR(b, "WT") }
func BenchmarkPerfSSSP_LJ(b *testing.B) { benchSSSP(b, "LJ") }
func BenchmarkPerfSSSP_WT(b *testing.B) { benchSSSP(b, "WT") }
func BenchmarkPerfCC_LJ(b *testing.B)   { benchCC(b, "LJ") }
func BenchmarkPerfCC_WT(b *testing.B)   { benchCC(b, "WT") }

// --- telemetry overhead --------------------------------------------------
//
// The acceptance bar for the observability layer (DESIGN.md §9): with no
// registry the engine pays only its own sharded counter adds (~0 relative
// to the old false-sharing counter struct); with histograms and a sampled
// tracer enabled the PR wall time stays within 5%.

func benchTelemetry(b *testing.B, reg func() *telemetry.Registry) {
	g := perfGraph(b, "LJ", false)
	cfg := perfConfig(g)
	b.ResetTimer()
	var edges int64
	for i := 0; i < b.N; i++ {
		cfg.Telemetry = reg()
		res, err := core.Run[float64, float64](g, bcd.PageRank{}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		edges += res.Stats.EdgesTraversed
	}
	b.ReportMetric(float64(edges)/b.Elapsed().Seconds()/1e6, "MTEPS")
}

func BenchmarkEngineTelemetryOff(b *testing.B) {
	benchTelemetry(b, func() *telemetry.Registry { return nil })
}

func BenchmarkEngineTelemetryHist(b *testing.B) {
	benchTelemetry(b, func() *telemetry.Registry {
		return telemetry.New(telemetry.Options{Histograms: true})
	})
}

// --- cluster aggregation overhead ----------------------------------------
//
// The acceptance bar for the fStats plane (DESIGN.md §13): interleaving
// telemetry aggregation rounds on the control lane costs at most 2% of a
// two-node loopback run's wall time at the default 500ms cadence.
//
// The cost is SELF-measured, not differenced: the coordinator times
// every aggregation round (ClusterStats.NoteRound) and the benchmark
// reports the mean per-round compute cost (us/round) and wall span
// (lat-us/round); steady-state overhead is the compute cost divided by
// the cadence (scripts/bench.sh derives the pct at the 500ms default).
// An off-vs-on wall-time pair cannot resolve the effect — an async
// run's time-to-convergence varies ±30% with scheduler luck, hundreds
// of times what a round costs, and no sample count fixes a signal that
// far under the noise floor. The work/span split matters because a
// round's wall span is scheduling-dominated when cores are
// oversubscribed: the reply wait is the joiner's control goroutine
// preempting a busy worker — on this harness's single core,
// milliseconds of waiting around microseconds of actual work — and
// while the coordinator waits, its workers keep the core, so the wait
// steals no throughput (which is exactly why differencing measures
// zero). The 20ms benchmark cadence exists to sample several such
// worst-case mid-run rounds per run.

func distStatsRun(b *testing.B, g *Graph, snap string, sink *telemetry.ClusterStats) time.Duration {
	b.Helper()
	coordReg := telemetry.New(telemetry.Options{Histograms: true})
	joinReg := telemetry.New(telemetry.Options{Histograms: true})
	cfg := tcp.DistConfig{
		Nodes: 2, Algo: "pr",
		BlockSize:      max(16, g.NumVertices()/256),
		WorkersPerNode: 2, BatchSize: 64,
		Epsilon:    1e-9,
		Telemetry:  coordReg,
		Cluster:    sink,
		StatsEvery: 20 * time.Millisecond,
	}
	ctrl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	joinCh := make(chan error, 1)
	go func() {
		joinCh <- tcp.Join(ctx, ctrl.Addr().String(), tcp.Options{Telemetry: joinReg})
	}()
	start := time.Now()
	if _, err := tcp.Serve(ctx, ctrl, snap, cfg); err != nil {
		b.Fatal(err)
	}
	wall := time.Since(start)
	if err := <-joinCh; err != nil {
		b.Fatal(err)
	}
	_ = ctrl.Close()
	return wall
}

func BenchmarkPerfDistStatsCost(b *testing.B) {
	g := perfGraph(b, "LJ", false)
	snap := filepath.Join(b.TempDir(), "graph.gabs")
	if err := graph.SaveFormat(snap, g, graph.FormatSnapshot); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var workTime, spanTime time.Duration
	var rounds int64
	for i := 0; i < b.N; i++ {
		sink := telemetry.NewClusterStats()
		_ = distStatsRun(b, g, snap, sink)
		r, w, s := sink.RoundCost()
		rounds += r
		workTime += w
		spanTime += s
	}
	b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
	if rounds > 0 {
		b.ReportMetric(float64(workTime.Nanoseconds())/float64(rounds)/1e3, "us/round")
		b.ReportMetric(float64(spanTime.Nanoseconds())/float64(rounds)/1e3, "lat-us/round")
	}
}

func BenchmarkEngineTelemetryTrace(b *testing.B) {
	var tracers []*telemetry.Tracer
	defer func() {
		for _, t := range tracers {
			_ = t.Close()
		}
	}()
	benchTelemetry(b, func() *telemetry.Registry {
		t := telemetry.NewTracer(io.Discard, 16)
		tracers = append(tracers, t)
		return telemetry.New(telemetry.Options{Histograms: true, Tracer: t})
	})
}
