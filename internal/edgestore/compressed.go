package edgestore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sync"

	"graphabcd/internal/graph"
)

// Compressed format (little-endian):
//
//	magic "GABC" | version u32 | n u64 | m u64 | flags u32
//	vertexOffsets [n+1]u64   (byte offset of each vertex's data region)
//	per vertex: delta-varint sources (ascending within the vertex),
//	            then raw f32 weights unless FlagUnweighted.
//
// Delta-varint exploits the CSC layout's (dst, src) sort order: within a
// vertex's slot range the sources ascend, so most gaps fit one byte on
// skewed graphs.
const (
	compMagic      = "GABC"
	compVersion    = 1
	flagUnweighted = 1
)

// WriteCompressed writes g's static edge structure in the compressed
// out-of-core format.
func WriteCompressed(g *graph.Graph, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()

	n := g.NumVertices()
	unweighted := true
	for _, w := range g.InWeightsRange(0, int64(g.NumEdges())) {
		if w != 1 {
			unweighted = false
			break
		}
	}

	// First pass: compute per-vertex encoded sizes.
	offsets := make([]uint64, n+1)
	var varint [binary.MaxVarintLen64]byte
	pos := uint64(0)
	for v := 0; v < n; v++ {
		offsets[v] = pos
		prev := uint32(0)
		for s := g.InOffset(v); s < g.InOffset(v+1); s++ {
			src := g.InSrc(s)
			pos += uint64(binary.PutUvarint(varint[:], uint64(src-prev)))
			prev = src
		}
		if !unweighted {
			pos += 4 * uint64(g.InOffset(v+1)-g.InOffset(v))
		}
	}
	offsets[n] = pos

	bw := bufio.NewWriterSize(f, 1<<20)
	var hdr [4 + 4 + 8 + 8 + 4]byte
	copy(hdr[:4], compMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], compVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(n))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(g.NumEdges()))
	if unweighted {
		binary.LittleEndian.PutUint32(hdr[24:28], flagUnweighted)
	}
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var u64 [8]byte
	for _, off := range offsets {
		binary.LittleEndian.PutUint64(u64[:], off)
		if _, err := bw.Write(u64[:]); err != nil {
			return err
		}
	}
	// Second pass: emit the data regions.
	for v := 0; v < n; v++ {
		prev := uint32(0)
		for s := g.InOffset(v); s < g.InOffset(v+1); s++ {
			src := g.InSrc(s)
			k := binary.PutUvarint(varint[:], uint64(src-prev))
			if _, err := bw.Write(varint[:k]); err != nil {
				return err
			}
			prev = src
		}
		if !unweighted {
			var b4 [4]byte
			for s := g.InOffset(v); s < g.InOffset(v+1); s++ {
				binary.LittleEndian.PutUint32(b4[:], f32bits(g.InWeight(s)))
				if _, err := bw.Write(b4[:]); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// OpenCompressed opens a compressed edge file for the given graph.
func OpenCompressed(g *graph.Graph, path string) (_ Source, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() {
		if err != nil {
			_ = f.Close() // the validation error supersedes the close error
		}
	}()
	var hdr [4 + 4 + 8 + 8 + 4]byte
	if _, err = io.ReadFull(f, hdr[:]); err != nil {
		return nil, err
	}
	if string(hdr[:4]) != compMagic {
		return nil, fmt.Errorf("edgestore: bad compressed magic %q", hdr[:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != compVersion {
		return nil, fmt.Errorf("edgestore: unsupported compressed version %d", v)
	}
	n := int(binary.LittleEndian.Uint64(hdr[8:16]))
	m := int(binary.LittleEndian.Uint64(hdr[16:24]))
	if n != g.NumVertices() || m != g.NumEdges() {
		return nil, fmt.Errorf("edgestore: compressed file is for V=%d E=%d, graph has V=%d E=%d",
			n, m, g.NumVertices(), g.NumEdges())
	}
	unweighted := binary.LittleEndian.Uint32(hdr[24:28])&flagUnweighted != 0

	// Size the offset table from the graph we already hold, not the decoded
	// header count: the two are equal (checked above), but deriving the
	// allocation from validated state keeps a hostile header from ever
	// naming the size.
	nv := g.NumVertices()
	offRaw := make([]byte, 8*(nv+1))
	if _, err = io.ReadFull(f, offRaw); err != nil {
		return nil, err
	}
	offsets := make([]uint64, nv+1)
	for i := range offsets {
		offsets[i] = binary.LittleEndian.Uint64(offRaw[8*i:])
		if i > 0 && offsets[i] < offsets[i-1] {
			return nil, fmt.Errorf("edgestore: corrupt offset table at vertex %d", i)
		}
	}
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	dataStart := int64(len(hdr)) + int64(len(offRaw))
	if int64(offsets[nv]) != fi.Size()-dataStart {
		return nil, fmt.Errorf("edgestore: data region is %d bytes, offsets claim %d",
			fi.Size()-dataStart, offsets[n])
	}
	return &compSource{
		g: g, f: f, size: fi.Size(),
		dataStart:  dataStart,
		offsets:    offsets,
		unweighted: unweighted,
	}, nil
}

type compSource struct {
	g          *graph.Graph
	f          *os.File
	size       int64
	dataStart  int64
	offsets    []uint64
	unweighted bool
	pool       sync.Pool // *compBuf
}

type compBuf struct {
	raw []byte
	src []uint32
	w   []float32
}

func (s *compSource) Block(vlo, vhi int, slo, shi int64) ([]uint32, []float32, func(), error) {
	if err := validateRange(s.g, vlo, vhi, slo, shi); err != nil {
		return nil, nil, nil, err
	}
	n := int(shi - slo)
	rawLen := int(s.offsets[vhi] - s.offsets[vlo])
	bb, _ := s.pool.Get().(*compBuf)
	if bb == nil {
		bb = &compBuf{}
	}
	if cap(bb.raw) < rawLen {
		bb.raw = make([]byte, rawLen) //abcdlint:ignore hotpath -- grow-once: pooled buffer, reallocates only when a larger block class first appears
	}
	if cap(bb.src) < n {
		bb.src = make([]uint32, n) //abcdlint:ignore hotpath -- grow-once: pooled buffer, reallocates only when a larger block class first appears
		bb.w = make([]float32, n)
	}
	raw := bb.raw[:rawLen]
	src, w := bb.src[:n], bb.w[:n]
	if rawLen > 0 {
		if _, err := s.f.ReadAt(raw, s.dataStart+int64(s.offsets[vlo])); err != nil {
			return nil, nil, nil, fmt.Errorf("edgestore: compressed read: %w", err) //abcdlint:ignore hotpath -- error path: formats only when the file is unreadable and the run is failing
		}
	}
	idx := 0
	for v := vlo; v < vhi; v++ {
		deg := int(s.g.InOffset(v+1) - s.g.InOffset(v))
		prev := uint32(0)
		for i := 0; i < deg; i++ {
			delta, k := binary.Uvarint(raw)
			if k <= 0 {
				return nil, nil, nil, fmt.Errorf("edgestore: corrupt varint at vertex %d", v) //abcdlint:ignore hotpath -- error path: formats only on corrupt input
			}
			raw = raw[k:]
			prev += uint32(delta)
			src[idx+i] = prev
		}
		if s.unweighted {
			for i := 0; i < deg; i++ {
				w[idx+i] = 1
			}
		} else {
			if len(raw) < 4*deg {
				return nil, nil, nil, fmt.Errorf("edgestore: truncated weights at vertex %d", v) //abcdlint:ignore hotpath -- error path: formats only on corrupt input
			}
			for i := 0; i < deg; i++ {
				w[idx+i] = f32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
			}
			raw = raw[4*deg:]
		}
		idx += deg
	}
	return src, w, func() { s.pool.Put(bb) }, nil
}

func (s *compSource) Bytes() int64 { return s.size }

func (s *compSource) Close() error { return s.f.Close() }

func f32bits(f float32) uint32     { return math.Float32bits(f) }
func f32frombits(b uint32) float32 { return math.Float32frombits(b) }
