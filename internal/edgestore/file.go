package edgestore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"

	"graphabcd/internal/graph"
)

// File format (little-endian):
//
//	magic "GABE" | version u32 | n u64 | m u64
//	src   [m]u32
//	w     [m]f32 (bit pattern)
const (
	fileMagic   = "GABE"
	fileVersion = 1
	headerBytes = 4 + 4 + 8 + 8
)

// WriteFile spills g's static edge structure to path in the raw
// out-of-core format.
func WriteFile(g *graph.Graph, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	bw := bufio.NewWriterSize(f, 1<<20)
	if err := writeHeader(bw, g); err != nil {
		return err
	}
	m := int64(g.NumEdges())
	var le = binary.LittleEndian
	var buf [4]byte
	srcs := g.InSrcs(0, m)
	for _, s := range srcs {
		le.PutUint32(buf[:], s)
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	for _, w := range g.InWeightsRange(0, m) {
		le.PutUint32(buf[:], f32bits(w))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeHeader(w io.Writer, g *graph.Graph) error {
	var hdr [headerBytes]byte
	copy(hdr[:4], fileMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], fileVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(g.NumVertices()))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(g.NumEdges()))
	_, err := w.Write(hdr[:])
	return err
}

func readHeader(f *os.File, g *graph.Graph) error {
	var hdr [headerBytes]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return err
	}
	if string(hdr[:4]) != fileMagic {
		return fmt.Errorf("edgestore: bad magic %q", hdr[:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != fileVersion {
		return fmt.Errorf("edgestore: unsupported version %d", v)
	}
	n := binary.LittleEndian.Uint64(hdr[8:16])
	m := binary.LittleEndian.Uint64(hdr[16:24])
	if int(n) != g.NumVertices() || int(m) != g.NumEdges() {
		return fmt.Errorf("edgestore: file is for V=%d E=%d, graph has V=%d E=%d",
			n, m, g.NumVertices(), g.NumEdges())
	}
	return nil
}

// OpenFile opens a raw out-of-core edge file written by WriteFile for the
// given graph. Each Block call issues one sequential positioned read per
// array.
func OpenFile(g *graph.Graph, path string) (_ Source, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() {
		if err != nil {
			_ = f.Close() // the validation error supersedes the close error
		}
	}()
	if err = readHeader(f, g); err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	m := int64(g.NumEdges())
	return &fileSource{g: g, f: f, size: fi.Size(),
		srcOff: headerBytes, wOff: headerBytes + 4*m}, nil
}

// fileSource preads vertex-aligned slot ranges out of any file that
// stores the inSrc and inW arrays as contiguous little-endian u32 runs —
// the raw GABE edge file and the plain graph snapshot both qualify, at
// different base offsets.
type fileSource struct {
	g      *graph.Graph
	f      *os.File
	size   int64
	srcOff int64     // file offset of inSrc[0]
	wOff   int64     // file offset of inW[0]
	pool   sync.Pool // *blockBuf
}

type blockBuf struct {
	raw []byte
	src []uint32
	w   []float32
}

func (s *fileSource) Block(vlo, vhi int, slo, shi int64) ([]uint32, []float32, func(), error) {
	if err := validateRange(s.g, vlo, vhi, slo, shi); err != nil {
		return nil, nil, nil, err
	}
	n := int(shi - slo)
	bb, _ := s.pool.Get().(*blockBuf)
	if bb == nil {
		bb = &blockBuf{}
	}
	if cap(bb.raw) < 4*n {
		bb.raw = make([]byte, 4*n) //abcdlint:ignore hotpath -- grow-once: pooled buffer, reallocates only when a larger block class first appears
		bb.src = make([]uint32, n)
		bb.w = make([]float32, n) //abcdlint:ignore hotpath -- grow-once: pooled buffer, see above
	}
	bb.src, bb.w = bb.src[:n], bb.w[:n]

	if err := s.readU32s(s.srcOff+4*slo, bb.raw[:4*n], bb.src); err != nil {
		return nil, nil, nil, err
	}
	if err := s.readF32s(s.wOff+4*slo, bb.raw[:4*n], bb.w); err != nil {
		return nil, nil, nil, err
	}
	return bb.src, bb.w, func() { s.pool.Put(bb) }, nil
}

func (s *fileSource) readU32s(off int64, raw []byte, out []uint32) error {
	if _, err := s.f.ReadAt(raw, off); err != nil {
		return fmt.Errorf("edgestore: read at %d: %w", off, err) //abcdlint:ignore hotpath -- error path: formats only when the file is unreadable and the run is failing
	}
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(raw[4*i:])
	}
	return nil
}

func (s *fileSource) readF32s(off int64, raw []byte, out []float32) error {
	if _, err := s.f.ReadAt(raw, off); err != nil {
		return fmt.Errorf("edgestore: read at %d: %w", off, err) //abcdlint:ignore hotpath -- error path: formats only when the file is unreadable and the run is failing
	}
	for i := range out {
		out[i] = f32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return nil
}

func (s *fileSource) Bytes() int64 { return s.size }

func (s *fileSource) Close() error { return s.f.Close() }
