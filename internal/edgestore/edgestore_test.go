package edgestore

import (
	"os"
	"path/filepath"
	"testing"

	"graphabcd/internal/gen"
	"graphabcd/internal/graph"
)

func testGraph(t *testing.T, weighted bool) *graph.Graph {
	t.Helper()
	cfg := gen.DefaultRMAT(9, 6, 77)
	if weighted {
		cfg.MaxWeight = 16
	}
	g, err := gen.RMAT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// checkSource verifies that a source reproduces the graph's arrays for
// every block of the given partition sizes.
func checkSource(t *testing.T, g *graph.Graph, s Source) {
	t.Helper()
	for _, bs := range []int{1, 7, 64, g.NumVertices()} {
		p, err := graph.NewPartition(g, bs)
		if err != nil {
			t.Fatal(err)
		}
		for b := 0; b < p.NumBlocks(); b++ {
			vlo, vhi := p.VertexRange(b)
			slo, shi := p.EdgeRange(b)
			src, w, release, err := s.Block(vlo, vhi, slo, shi)
			if err != nil {
				t.Fatalf("block %d (bs %d): %v", b, bs, err)
			}
			wantSrc := g.InSrcs(slo, shi)
			wantW := g.InWeightsRange(slo, shi)
			for i := range wantSrc {
				if src[i] != wantSrc[i] {
					t.Fatalf("block %d slot %d: src %d, want %d", b, i, src[i], wantSrc[i])
				}
				if w[i] != wantW[i] {
					t.Fatalf("block %d slot %d: w %g, want %g", b, i, w[i], wantW[i])
				}
			}
			release()
		}
	}
}

func TestInMemorySource(t *testing.T) {
	g := testGraph(t, true)
	s := InMemory(g)
	defer s.Close()
	checkSource(t, g, s)
	if s.Bytes() != int64(g.NumEdges())*8 {
		t.Fatalf("Bytes = %d", s.Bytes())
	}
}

func TestFileSourceRoundTrip(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		g := testGraph(t, weighted)
		path := filepath.Join(t.TempDir(), "edges.bin")
		if err := WriteFile(g, path); err != nil {
			t.Fatal(err)
		}
		s, err := OpenFile(g, path)
		if err != nil {
			t.Fatal(err)
		}
		checkSource(t, g, s)
		if s.Bytes() != headerBytes+int64(g.NumEdges())*8 {
			t.Fatalf("Bytes = %d", s.Bytes())
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCompressedSourceRoundTrip(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		g := testGraph(t, weighted)
		path := filepath.Join(t.TempDir(), "edges.gabc")
		if err := WriteCompressed(g, path); err != nil {
			t.Fatal(err)
		}
		s, err := OpenCompressed(g, path)
		if err != nil {
			t.Fatal(err)
		}
		checkSource(t, g, s)
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCompressedIsSmaller(t *testing.T) {
	g := testGraph(t, false) // unweighted: weights elided entirely
	dir := t.TempDir()
	raw, comp := filepath.Join(dir, "raw"), filepath.Join(dir, "comp")
	if err := WriteFile(g, raw); err != nil {
		t.Fatal(err)
	}
	if err := WriteCompressed(g, comp); err != nil {
		t.Fatal(err)
	}
	ri, _ := os.Stat(raw)
	ci, _ := os.Stat(comp)
	// Unweighted skewed graph: varint deltas + elided weights should cut
	// the file well below half of the raw 8 B/edge.
	if ci.Size() >= ri.Size()/2 {
		t.Fatalf("compressed %d vs raw %d: expected < half", ci.Size(), ri.Size())
	}
	t.Logf("compression: %d -> %d bytes (%.1fx)", ri.Size(), ci.Size(), float64(ri.Size())/float64(ci.Size()))
}

func TestOpenRejectsMismatchedGraph(t *testing.T) {
	g := testGraph(t, false)
	other := testGraph(t, true) // same shape? different weights only
	small, err := gen.Uniform(16, 32, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	raw, comp := filepath.Join(dir, "raw"), filepath.Join(dir, "comp")
	if err := WriteFile(g, raw); err != nil {
		t.Fatal(err)
	}
	if err := WriteCompressed(g, comp); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(small, raw); err == nil {
		t.Fatal("OpenFile accepted a mismatched graph")
	}
	if _, err := OpenCompressed(small, comp); err == nil {
		t.Fatal("OpenCompressed accepted a mismatched graph")
	}
	_ = other
	// Corrupt magic.
	if err := os.WriteFile(raw, []byte("XXXXjunkjunkjunkjunkjunk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(g, raw); err == nil {
		t.Fatal("OpenFile accepted corrupt magic")
	}
}

func TestBlockRangeValidation(t *testing.T) {
	g := testGraph(t, false)
	s := InMemory(g)
	// Find a vertex with in-edges so the misalignment is detectable.
	v := 0
	for g.InOffset(v+1) == g.InOffset(v) {
		v++
	}
	if _, _, _, err := s.Block(0, v, 0, g.InOffset(v+1)); err == nil {
		t.Fatal("misaligned range accepted")
	}
	if _, _, _, err := s.Block(-1, 1, 0, g.InOffset(1)); err == nil {
		t.Fatal("negative vertex accepted")
	}
}
