package edgestore

import (
	"fmt"
	"io"
	"os"

	"graphabcd/internal/graph"
)

// OpenSnapshot opens a plain (uncompressed) graph snapshot written by
// graph.WriteSnapshot as an out-of-core edge source for g. The snapshot's
// fixed section layout stores inSrc and inW as contiguous little-endian
// arrays at offsets computable from (V, E), so the one file serves both
// as the reloadable graph image and as the pread-backed edge store — no
// separate GABE spill needed.
//
// The snapshot must describe the same graph: V and E are checked against
// g. Compressed snapshots ("GABZ") are not preadable; load them into
// memory or re-save with graph.FormatSnapshot.
func OpenSnapshot(g *graph.Graph, path string) (_ Source, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() {
		if err != nil {
			_ = f.Close() // the validation error supersedes the close error
		}
	}()
	var hdr [24]byte
	if _, err = io.ReadFull(f, hdr[:]); err != nil {
		return nil, fmt.Errorf("edgestore: snapshot header: %w", err)
	}
	n, m, compressed, err := graph.ParseSnapshotHeader(hdr[:])
	if err != nil {
		return nil, fmt.Errorf("edgestore: %w", err)
	}
	if compressed {
		return nil, fmt.Errorf("edgestore: %s is a compressed snapshot; only plain snapshots support positioned reads", path)
	}
	if int(n) != g.NumVertices() || int(m) != g.NumEdges() {
		return nil, fmt.Errorf("edgestore: snapshot is for V=%d E=%d, graph has V=%d E=%d",
			n, m, g.NumVertices(), g.NumEdges())
	}
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	srcOff, wOff := graph.SnapshotEdgeSections(g.NumVertices(), g.NumEdges())
	if fi.Size() < wOff+4*m {
		return nil, fmt.Errorf("edgestore: snapshot %s truncated: %d bytes, need at least %d",
			path, fi.Size(), wOff+4*m)
	}
	return &fileSource{g: g, f: f, size: fi.Size(), srcOff: srcOff, wOff: wOff}, nil
}
