package edgestore

import (
	"os"
	"path/filepath"
	"testing"

	"graphabcd/internal/gen"
)

// FuzzOpenCompressed: arbitrary file bytes must never panic the compressed
// reader — they either fail to open or fail cleanly on the first Block.
func FuzzOpenCompressed(f *testing.F) {
	g, err := gen.Uniform(16, 48, 4, 1)
	if err != nil {
		f.Fatal(err)
	}
	// Seed with a valid file and a few mutations of it.
	dir := f.TempDir()
	valid := filepath.Join(dir, "valid")
	if err := WriteCompressed(g, valid); err != nil {
		f.Fatal(err)
	}
	data, err := os.ReadFile(valid)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	if len(data) > 40 {
		trunc := data[:40]
		f.Add(trunc)
		flipped := append([]byte(nil), data...)
		flipped[30] ^= 0xff
		f.Add(flipped)
	}
	f.Add([]byte("GABC"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, in []byte) {
		path := filepath.Join(t.TempDir(), "fuzz")
		if err := os.WriteFile(path, in, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := OpenCompressed(g, path)
		if err != nil {
			return
		}
		defer s.Close()
		// Reading any vertex-aligned block must not panic; errors are fine.
		n := g.NumVertices()
		_, _, release, err := s.Block(0, n, g.InOffset(0), g.InOffset(n))
		if err == nil {
			release()
		}
	})
}
