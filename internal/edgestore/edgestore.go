// Package edgestore abstracts where the static edge structure (source ids
// and weights of each in-edge slot) lives during GATHER streaming. The
// paper partitions graphs partly to enable out-of-core processing
// (Sec. III-A) and points at compressed representations as a way to cut
// memory traffic (Sec. VI-C); this package provides both:
//
//   - InMemory: zero-copy views into the Graph's arrays (the default);
//   - File: the edge structure spilled to a binary file, each block's
//     range read back with one sequential pread — possible only because
//     the pull-push layout makes every block's in-edges one contiguous
//     range;
//   - Compressed: the same file-backed layout with per-vertex
//     delta-varint source encoding (Ligra+-style), exploiting the
//     ascending-source order within each vertex's slot range.
//
// Only the static structure moves out of core; the per-edge value caches
// are mutable and stay in memory.
package edgestore

import (
	"fmt"

	"graphabcd/internal/graph"
)

// Source supplies the static in-edge arrays for vertex-aligned CSC slot
// ranges. Implementations must be safe for concurrent use.
type Source interface {
	// Block returns the source ids and weights of the slot range
	// [slo, shi), which must span whole vertices [vlo, vhi) (as every
	// partition block does). The slices are valid until release is
	// called; they may alias pooled buffers.
	Block(vlo, vhi int, slo, shi int64) (src []uint32, w []float32, release func(), err error)
	// Bytes reports the backing storage footprint.
	Bytes() int64
	// Close releases the source's resources.
	Close() error
}

// InMemory returns the default zero-copy source over g's arrays.
func InMemory(g *graph.Graph) Source { return memSource{g: g} }

type memSource struct{ g *graph.Graph }

func (m memSource) Block(vlo, vhi int, slo, shi int64) ([]uint32, []float32, func(), error) {
	if err := validateRange(m.g, vlo, vhi, slo, shi); err != nil {
		return nil, nil, nil, err
	}
	return m.g.InSrcs(slo, shi), m.g.InWeightsRange(slo, shi), func() {}, nil
}

func (m memSource) Bytes() int64 { return int64(m.g.NumEdges()) * 8 }

func (m memSource) Close() error { return nil }

// validateRange checks a Block request against the graph's offsets.
func validateRange(g *graph.Graph, vlo, vhi int, slo, shi int64) error {
	if vlo < 0 || vhi > g.NumVertices() || vlo > vhi {
		return fmt.Errorf("edgestore: vertex range [%d,%d) invalid", vlo, vhi) //abcdlint:ignore hotpath -- error path: formats only on an engine bug, never in a healthy sweep
	}
	if slo != g.InOffset(vlo) || shi != g.InOffset(vhi) {
		return fmt.Errorf("edgestore: slot range [%d,%d) not aligned to vertices [%d,%d)", slo, shi, vlo, vhi) //abcdlint:ignore hotpath -- error path: formats only on an engine bug, never in a healthy sweep
	}
	return nil
}
