package edgestore

import (
	"path/filepath"
	"strings"
	"testing"

	"graphabcd/internal/graph"
)

func TestSnapshotSource(t *testing.T) {
	g := testGraph(t, true)
	path := filepath.Join(t.TempDir(), "g.gabs")
	if err := graph.SaveFormat(path, g, graph.FormatSnapshot); err != nil {
		t.Fatal(err)
	}
	s, err := OpenSnapshot(g, path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Bytes() <= 0 {
		t.Fatalf("Bytes() = %d, want > 0", s.Bytes())
	}
	checkSource(t, g, s)
}

func TestSnapshotSourceRejects(t *testing.T) {
	g := testGraph(t, false)
	dir := t.TempDir()

	comp := filepath.Join(dir, "g.gabz")
	if err := graph.SaveFormat(comp, g, graph.FormatSnapshotCompressed); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSnapshot(g, comp); err == nil || !strings.Contains(err.Error(), "compressed") {
		t.Fatalf("want compressed-snapshot rejection, got %v", err)
	}

	other, err := graph.FromEdges(3, []graph.Edge{{Src: 0, Dst: 1, Weight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	mismatch := filepath.Join(dir, "other.gabs")
	if err := graph.SaveFormat(mismatch, other, graph.FormatSnapshot); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSnapshot(g, mismatch); err == nil || !strings.Contains(err.Error(), "graph has") {
		t.Fatalf("want size-mismatch rejection, got %v", err)
	}
}
