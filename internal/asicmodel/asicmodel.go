// Package asicmodel is an analytic performance model of Graphicionado
// (Ham et al., MICRO 2016), the ASIC implementation of GraphMat's
// execution model and the paper's hardware baseline.
//
// The paper itself does not run Graphicionado: it takes the published
// numbers and projects them down from 68 GB/s to GraphABCD's 12.8 GB/s
// budget, arguing both systems are memory-bandwidth-bound (Sec. V-A,
// footnote 6). This package implements that projection methodology: an
// iteration-accurate work count (Graphicionado executes exactly
// GraphMat's sweeps — same algorithm design options, hence the shared
// convergence column in Table III) pushed through a roofline of pipeline
// throughput vs. memory bandwidth.
//
// Graphicionado's push pipeline keeps all vertex values in a 64-256 MB
// on-chip eDRAM scratchpad (its Table IV contrast with GraphABCD's small
// streaming buffers), so off-chip traffic is dominated by edge reads.
package asicmodel

import (
	"fmt"
	"time"
)

// Config describes the modeled ASIC.
type Config struct {
	// ClockGHz is the accelerator clock (Graphicionado: 1 GHz).
	ClockGHz float64
	// Streams is the number of parallel processing streams (8).
	Streams int
	// EdgesPerCycle is the per-stream edge throughput (1).
	EdgesPerCycle float64
	// BandwidthGBps is the memory bandwidth budget. The paper projects
	// Graphicionado's 4xDDR4-2133 68 GB/s down to 12.8 GB/s.
	BandwidthGBps float64
	// BytesPerEdge is the off-chip payload per traversed edge (dst id +
	// weight in Graphicionado's compact edge stream).
	BytesPerEdge int64
	// VertexBytes is the per-vertex scratchpad footprint.
	VertexBytes int64
}

// DefaultGraphicionado returns the projected configuration the paper
// compares against: Graphicionado's pipeline under GraphABCD's 12.8 GB/s.
func DefaultGraphicionado() Config {
	return Config{
		ClockGHz:      1,
		Streams:       8,
		EdgesPerCycle: 1,
		BandwidthGBps: 12.8,
		BytesPerEdge:  8,
		VertexBytes:   8,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.ClockGHz <= 0:
		return fmt.Errorf("asicmodel: ClockGHz must be positive, got %g", c.ClockGHz)
	case c.Streams <= 0:
		return fmt.Errorf("asicmodel: Streams must be positive, got %d", c.Streams)
	case c.EdgesPerCycle <= 0:
		return fmt.Errorf("asicmodel: EdgesPerCycle must be positive, got %g", c.EdgesPerCycle)
	case c.BandwidthGBps <= 0:
		return fmt.Errorf("asicmodel: BandwidthGBps must be positive, got %g", c.BandwidthGBps)
	case c.BytesPerEdge <= 0:
		return fmt.Errorf("asicmodel: BytesPerEdge must be positive, got %d", c.BytesPerEdge)
	case c.VertexBytes <= 0:
		return fmt.Errorf("asicmodel: VertexBytes must be positive, got %d", c.VertexBytes)
	}
	return nil
}

// EdgesPerSecond returns the roofline throughput: the lesser of pipeline
// rate and bandwidth-fed rate.
func (c Config) EdgesPerSecond() float64 {
	pipeline := c.ClockGHz * 1e9 * float64(c.Streams) * c.EdgesPerCycle
	memory := c.BandwidthGBps * 1e9 / float64(c.BytesPerEdge)
	if memory < pipeline {
		return memory
	}
	return pipeline
}

// ProjectRuntime converts a total traversed-edge count (e.g. GraphMat's
// EdgesTraversed over the full run, since Graphicionado executes the same
// sweeps) into projected execution time.
func (c Config) ProjectRuntime(edgesTraversed int64) time.Duration {
	if edgesTraversed <= 0 {
		return 0
	}
	sec := float64(edgesTraversed) / c.EdgesPerSecond()
	return time.Duration(sec * float64(time.Second))
}

// ScratchpadBytes returns the on-chip vertex store Graphicionado needs for
// a graph with n vertices — the quantity the paper contrasts (64-256 MB)
// with GraphABCD's 2.69 MB of streaming buffers.
func (c Config) ScratchpadBytes(numVertices int) int64 {
	return int64(numVertices) * c.VertexBytes
}
