package asicmodel

import (
	"math"
	"testing"
	"time"
)

func TestDefaultValidates(t *testing.T) {
	if err := DefaultGraphicionado().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.ClockGHz = 0 },
		func(c *Config) { c.Streams = 0 },
		func(c *Config) { c.EdgesPerCycle = -1 },
		func(c *Config) { c.BandwidthGBps = 0 },
		func(c *Config) { c.BytesPerEdge = 0 },
		func(c *Config) { c.VertexBytes = -1 },
	}
	for i, m := range mutations {
		cfg := DefaultGraphicionado()
		m(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestRooflineSelectsBindingResource(t *testing.T) {
	// Default: pipeline 8 Ge/s, memory 12.8e9/8 = 1.6 Ge/s -> memory-bound,
	// exactly the paper's premise.
	c := DefaultGraphicionado()
	if got := c.EdgesPerSecond(); math.Abs(got-1.6e9) > 1 {
		t.Fatalf("projected throughput = %g, want 1.6e9", got)
	}
	// Give it the original 68 GB/s: memory 8.5 Ge/s > pipeline 8 Ge/s ->
	// pipeline-bound.
	c.BandwidthGBps = 68
	if got := c.EdgesPerSecond(); math.Abs(got-8e9) > 1 {
		t.Fatalf("unprojected throughput = %g, want 8e9", got)
	}
}

func TestProjectRuntime(t *testing.T) {
	c := DefaultGraphicionado()
	// 1.6e9 edges at 1.6 Ge/s = 1 second.
	if got := c.ProjectRuntime(1_600_000_000); got != time.Second {
		t.Fatalf("runtime = %v, want 1s", got)
	}
	if c.ProjectRuntime(0) != 0 || c.ProjectRuntime(-5) != 0 {
		t.Fatal("non-positive edge counts must project to 0")
	}
}

func TestScratchpad(t *testing.T) {
	c := DefaultGraphicionado()
	// LiveJournal-scale: 4.85M vertices * 8B = 38.8 MB, in the 64-256MB
	// ballpark once Graphicionado's duplicated property arrays are counted.
	if got := c.ScratchpadBytes(4_850_000); got != 38_800_000 {
		t.Fatalf("scratchpad = %d", got)
	}
}
