package exp

import (
	"math"
	"testing"
)

func TestAblationOperator(t *testing.T) {
	rows, err := AblationOperator(testOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 { // 4 operators x 4 graphs
		t.Fatalf("want 16 rows, got %d", len(rows))
	}
	byOp := map[string]OperatorRow{}
	for _, r := range rows {
		if r.Graph == "LJ" {
			byOp[r.Operator] = r
		}
	}
	ga := byOp["pull-push(GA offload)"]
	if ga.RandomBytes != 0 {
		t.Fatal("GA-offload pull-push must have zero random traffic")
	}
	// The paper's two arguments: GA-offload moves less than GAS-offload
	// (|E|+|V| < 2|E|) and avoids the random traffic of pull and push.
	if ga.BusBytes >= byOp["pull-push(GAS offload)"].BusBytes {
		t.Fatal("GA offload should move fewer bytes than GAS offload")
	}
	if byOp["pull"].RandomBytes == 0 || byOp["push"].RandomBytes <= byOp["pull"].RandomBytes {
		t.Fatal("pull/push random-traffic ordering wrong")
	}
}

func TestAblationStaleness(t *testing.T) {
	rows, err := AblationStaleness(testOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 4 {
		t.Fatalf("want >= 4 depths, got %d", len(rows))
	}
	first, last := rows[0], rows[len(rows)-1]
	if first.QueueDepth >= last.QueueDepth {
		t.Fatal("depths not increasing")
	}
	// The staleness bound is the knob: the deepest queue must cost
	// materially more epochs than the shallowest.
	if last.Epochs <= first.Epochs*1.1 {
		t.Fatalf("deep queues should converge slower: depth %d -> %.1f epochs vs depth %d -> %.1f",
			first.QueueDepth, first.Epochs, last.QueueDepth, last.Epochs)
	}
}

func TestAblationPolicy(t *testing.T) {
	rows, err := AblationPolicy(testOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 { // 3 policies x 2 apps x 2 graphs
		t.Fatalf("want 12 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Epochs <= 0 {
			t.Fatalf("row %+v has no work", r)
		}
	}
}

func TestScaleOut(t *testing.T) {
	skipIfShort(t) // cluster-under-race coverage lives in internal/cluster and internal/chaos
	// On a single-core host the goroutine interleaving adds large
	// run-to-run variance to epoch counts; take the minimum over three
	// runs per node count (the achievable convergence) before asserting
	// the shape.
	minEpochs := map[int]float64{}
	var rows []ScaleOutRow
	for trial := 0; trial < 3; trial++ {
		var err error
		rows, err = ScaleOut(testOpt())
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			if cur, ok := minEpochs[r.Nodes]; !ok || r.Epochs < cur {
				minEpochs[r.Nodes] = r.Epochs
			}
			if !r.Converged {
				t.Fatalf("%d nodes did not converge", r.Nodes)
			}
			if r.Nodes == 1 && r.MessagesSent != 0 {
				t.Fatalf("single node sent %d messages", r.MessagesSent)
			}
			if r.Nodes > 1 && r.MessagesSent == 0 {
				t.Fatalf("%d nodes exchanged no messages", r.Nodes)
			}
		}
	}
	if len(rows) != 5 {
		t.Fatalf("want 5 node counts, got %d", len(rows))
	}
	// The epoch-ratio guardrails below are timing-shape assertions: they
	// hold when goroutines genuinely run concurrently. Under the race
	// detector's order-of-magnitude slowdown and serialization the
	// staleness window balloons and the ratios lose meaning, so -race
	// runs keep only the structural checks above.
	if !raceDetectorEnabled {
		base := minEpochs[1]
		minMulti, maxMulti := math.Inf(1), 0.0
		for nodes, e := range minEpochs {
			if nodes == 1 {
				continue
			}
			// Crossing onto the network pays a bounded one-hop staleness
			// penalty; it must stay bounded relative to the single node.
			// Single-core scheduling variance is large at test scale, so the
			// bound is deliberately loose — the paper-shape record lives in
			// EXPERIMENTS.md, not this guardrail.
			if e > base*6 {
				t.Fatalf("%d nodes: epochs %.1f vs single-node %.1f — penalty unbounded", nodes, e, base)
			}
			minMulti = math.Min(minMulti, e)
			maxMulti = math.Max(maxMulti, e)
		}
		// ...and must not grow with cluster size (the actual scale-out claim).
		if maxMulti > minMulti*3 {
			t.Fatalf("multi-node epochs vary %.1f..%.1f — penalty grows with scale", minMulti, maxMulti)
		}
	}
	// Remote traffic share grows with node count.
	if rows[len(rows)-1].RemotePct <= rows[1].RemotePct {
		t.Fatalf("remote share should grow: %v", rows)
	}
}

func TestAblationStorage(t *testing.T) {
	rows, err := AblationStorage(testOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("want 3 backends, got %d", len(rows))
	}
	byName := map[string]StorageRow{}
	for _, r := range rows {
		if r.Epochs <= 0 {
			t.Fatalf("backend %s did no work", r.Backend)
		}
		byName[r.Backend] = r
	}
	// The compressed file must be materially smaller than the raw spill.
	if byName["compressed"].StorageBytes >= byName["out-of-core"].StorageBytes/2 {
		t.Fatalf("compressed %d vs raw %d: expected < half",
			byName["compressed"].StorageBytes, byName["out-of-core"].StorageBytes)
	}
	// All backends compute the same algorithm: epoch counts comparable.
	for _, r := range rows {
		if r.Epochs > byName["in-memory"].Epochs*2 {
			t.Fatalf("backend %s epochs %.1f diverge from in-memory %.1f",
				r.Backend, r.Epochs, byName["in-memory"].Epochs)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.threads() < 1 {
		t.Fatal("threads default must be positive")
	}
	if o.pes() < 1 || o.scatter() < 1 {
		t.Fatal("worker split must be positive")
	}
	if o.pes()+o.scatter() < o.threads() {
		t.Fatalf("split %d+%d loses threads vs %d", o.pes(), o.scatter(), o.threads())
	}
	if o.out() == nil {
		t.Fatal("out() must never be nil")
	}
}
