package exp

import (
	"bytes"
	"strings"
	"testing"

	"graphabcd/internal/metrics"
)

// testOpt shrinks every dataset aggressively so the whole harness runs in
// seconds on one core while preserving the qualitative shapes.
func testOpt() Options {
	return Options{Shrink: 5, Threads: 2}
}

// skipIfShort gates the heavier experiment sweeps out of -short runs.
// scripts/check.sh runs the blanket race-detector pass with -short
// because instrumentation slows these numeric sweeps ~35x, pushing the
// package past go test's timeout; a representative subset (Table1, Fig6,
// Fig8, the ablations) still runs under race for concurrency coverage,
// and plain `go test ./...` always runs everything.
func skipIfShort(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep skipped in -short mode")
	}
}

func TestTable1(t *testing.T) {
	var buf bytes.Buffer
	opt := testOpt()
	opt.Out = &buf
	rows, err := Table1(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("want 7 datasets, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Vertices == 0 || r.Edges == 0 {
			t.Fatalf("dataset %s empty", r.Name)
		}
	}
	if !strings.Contains(buf.String(), "NF") {
		t.Fatal("table output missing NF row")
	}
}

func TestFig4Shapes(t *testing.T) {
	skipIfShort(t)
	rows, err := Fig4(testOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	// Claim 1: small asynchronous blocks converge in fewer epochs than
	// BSP — check the smallest block size per (app, graph).
	type key struct{ app, g string }
	smallest := map[key]Fig4Row{}
	for _, r := range rows {
		k := key{r.App, r.Graph}
		if cur, ok := smallest[k]; !ok || r.BlockSize < cur.BlockSize {
			if r.Policy == "priority" {
				smallest[k] = r
			}
		}
	}
	beat := 0
	for k, r := range smallest {
		if r.NormBSP < 1 {
			beat++
		} else {
			t.Logf("%v: smallest priority block norm %.2f (>= BSP)", k, r.NormBSP)
		}
	}
	if beat < len(smallest)-1 { // allow one noisy exception
		t.Fatalf("small blocks beat BSP on only %d/%d app-graph pairs", beat, len(smallest))
	}
	// Claim 2: priority converges at least as fast as cyclic on average.
	var prio, cyc []float64
	index := map[string]float64{}
	for _, r := range rows {
		if r.Policy == "cyclic" {
			index[r.App+r.Graph+itoa(r.BlockSize)] = r.Epochs
		}
	}
	for _, r := range rows {
		if r.Policy == "priority" {
			if c, ok := index[r.App+r.Graph+itoa(r.BlockSize)]; ok {
				prio = append(prio, r.Epochs)
				cyc = append(cyc, c)
			}
		}
	}
	// At laptop scale the Gauss-Southwell advantage is modest and graph-
	// dependent (clear on the sparse WT analog, parity on the dense PS
	// analog); require priority not to be materially worse overall.
	if g := geomeanRatio(prio, cyc); g >= 1.05 {
		t.Fatalf("priority/cyclic epoch geomean ratio = %.3f, want <= ~1", g)
	}
}

func itoa(v int) string {
	var buf [12]byte
	i := len(buf)
	if v == 0 {
		return "0"
	}
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func TestTable3Shapes(t *testing.T) {
	skipIfShort(t)
	rows, err := Table3(testOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("want 8 rows, got %d", len(rows))
	}
	var prPrio, prGM, ssspPrio, ssspGM []float64
	for _, r := range rows {
		if r.Priority <= 0 || r.Cyclic <= 0 || r.GraphMat <= 0 {
			t.Fatalf("row %+v has empty counts", r)
		}
		switch r.App {
		case "pr":
			prPrio = append(prPrio, r.Priority)
			prGM = append(prGM, r.GraphMat)
		case "sssp":
			ssspPrio = append(ssspPrio, r.Priority)
			ssspGM = append(ssspGM, r.GraphMat)
		}
	}
	// PR: GraphABCD needs fewer iterations than GraphMat. The paper reports
	// ~4x on million-vertex graphs; at this scale our gap tracks the
	// Gauss-Seidel-vs-Jacobi bound (~1.2-1.5x, growing with graph size —
	// see EXPERIMENTS.md), so assert the direction with a modest margin.
	if g := geomeanRatio(prGM, prPrio); g < 1.15 {
		t.Fatalf("PR GraphMat/GraphABCD iteration ratio = %.2f, want > 1.15", g)
	}
	// SSSP: GraphMat's active filter makes it competitive. Note the
	// metric nuance: our epoch-equivalents count only processed (active)
	// blocks, while GraphMat's count is full sweeps, so the two scales
	// differ; require the ratio to stay within a sane band rather than
	// reproduce the paper's exact 1.5-1.8x in GraphMat's favour.
	if g := geomeanRatio(ssspGM, ssspPrio); g > 2.5 {
		t.Fatalf("SSSP GraphMat/GraphABCD ratio = %.2f, outside the sane band", g)
	}
}

func TestFig5Shapes(t *testing.T) {
	skipIfShort(t)
	pts, err := Fig5(testOpt())
	if err != nil {
		t.Fatal(err)
	}
	last := map[string]Fig5Point{}
	first := map[string]Fig5Point{}
	for _, p := range pts {
		if _, ok := first[p.System]; !ok {
			first[p.System] = p
		}
		last[p.System] = p
	}
	for sys := range last {
		if last[sys].RMSE >= first[sys].RMSE {
			t.Fatalf("%s RMSE did not decrease: %.3f -> %.3f", sys, first[sys].RMSE, last[sys].RMSE)
		}
	}
	// GraphABCD at ~20 epochs should reach lower RMSE than GraphMat at 20
	// sweeps (the smaller block size converges faster).
	var abcd20, gm20 float64
	for _, p := range pts {
		if p.System == "priority" && p.Epochs >= 18 && p.Epochs <= 25 && abcd20 == 0 {
			abcd20 = p.RMSE
		}
		if p.System == "graphmat" && p.Epochs == 20 {
			gm20 = p.RMSE
		}
	}
	if abcd20 == 0 || gm20 == 0 {
		t.Fatal("missing 20-iteration samples")
	}
	if abcd20 >= gm20*1.02 {
		t.Fatalf("GraphABCD RMSE at ~20 iters (%.4f) should beat GraphMat's (%.4f)", abcd20, gm20)
	}
}

func TestTable2Shapes(t *testing.T) {
	skipIfShort(t)
	rows, err := Table2(testOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("want 11 rows, got %d", len(rows))
	}
	var abcdM, gmM []float64
	for _, r := range rows {
		if r.ABCDSeconds <= 0 || r.GMSeconds <= 0 {
			t.Fatalf("row %+v has empty wall timings", r)
		}
		if r.ABCDModelSec <= 0 || r.GMModelSec <= 0 {
			t.Fatalf("row %+v has empty model timings", r)
		}
		if r.ASICSeconds <= 0 {
			t.Fatalf("row %+v missing ASIC projection", r)
		}
		abcdM = append(abcdM, r.ABCDModelSec)
		gmM = append(gmM, r.GMModelSec)
	}
	// Modeled on the paper's platform, GraphABCD must beat GraphMat
	// (paper headline: 2.0x geo-mean).
	if g := geomeanRatio(gmM, abcdM); g < 1.0 {
		t.Fatalf("modeled geomean speedup vs GraphMat = %.2fx, want >= 1", g)
	}
}

func TestFig6Shapes(t *testing.T) {
	rows, err := Fig6(testOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("want 7 rows, got %d", len(rows))
	}
	speedups := make([]float64, 0, len(rows))
	for _, r := range rows {
		if r.AccelSec <= 0 || r.SoftSec <= 0 {
			t.Fatalf("row %+v has empty model times", r)
		}
		speedups = append(speedups, r.Speedup)
	}
	g := metrics.Geomean(speedups)
	// Paper: 1.2-9.2x, 3.4x average. The cost model is calibrated to that
	// regime; accept a broad band.
	if g < 1.2 || g > 9.5 {
		t.Fatalf("hardware-acceleration geomean speedup %.2fx outside the paper's band", g)
	}
}

func TestFig7Shapes(t *testing.T) {
	skipIfShort(t)
	rows, err := Fig7(testOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("want 7 rows, got %d", len(rows))
	}
	var async, barrier, bsp []float64
	for _, r := range rows {
		if r.Async <= 0 || r.Barrier <= 0 || r.BSP <= 0 || r.AsyncHybrid <= 0 {
			t.Fatalf("row %+v has empty times", r)
		}
		async = append(async, r.Async)
		barrier = append(barrier, r.Barrier)
		bsp = append(bsp, r.BSP)
	}
	// Async must beat Barrier (stall removal) and BSP (stalls+convergence).
	if g := geomeanRatio(barrier, async); g < 1.05 {
		t.Fatalf("barrier/async time ratio %.2f, want > 1", g)
	}
	if g := geomeanRatio(bsp, async); g < 1.1 {
		t.Fatalf("bsp/async time ratio %.2f, want >> 1", g)
	}
}

func TestFig8Shapes(t *testing.T) {
	rows, err := Fig8(testOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("want 5 points, got %d", len(rows))
	}
	// Utilization falls as PEs are added (bandwidth starvation) and async
	// sustains at least the utilization of barrier execution at scale.
	if rows[0].AsyncUtil <= rows[len(rows)-1].AsyncUtil {
		t.Fatalf("async utilization should fall with PE count: %.2f -> %.2f",
			rows[0].AsyncUtil, rows[len(rows)-1].AsyncUtil)
	}
	var asyncAtScale, barrierAtScale float64
	for _, r := range rows {
		if r.NumPEs == 16 {
			asyncAtScale, barrierAtScale = r.AsyncUtil, r.BarrierUtil
		}
	}
	if asyncAtScale < barrierAtScale*0.95 {
		t.Fatalf("async utilization (%.3f) should be >= barrier's (%.3f) at 16 PEs",
			asyncAtScale, barrierAtScale)
	}
}

func TestFig9Shapes(t *testing.T) {
	skipIfShort(t)
	traffic, utils, err := Fig9(testOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(traffic) != 3 || len(utils) != 5 {
		t.Fatalf("got %d traffic rows, %d util points", len(traffic), len(utils))
	}
	for _, r := range traffic {
		// Reads dominate writes (|E| vs |V|).
		if r.SeqReadBytes <= r.SeqWriteBytes {
			t.Fatalf("%s/%s: seq reads (%d) must dominate writes (%d)",
				r.App, r.Graph, r.SeqReadBytes, r.SeqWriteBytes)
		}
	}
	// Bus utilization saturates with PE count: 16-PE run must be at least
	// as utilized as the 1-PE run, and high in absolute terms.
	if utils[len(utils)-1].BusUtilPct < utils[0].BusUtilPct {
		t.Fatalf("bus utilization should not fall with PEs: %v", utils)
	}
	if utils[len(utils)-1].BusUtilPct < 60 {
		t.Fatalf("bus utilization at 16 PEs = %.1f%%, want saturated", utils[len(utils)-1].BusUtilPct)
	}
}

func TestFig10Shapes(t *testing.T) {
	skipIfShort(t)
	rows, err := Fig10(testOpt())
	if err != nil {
		t.Fatal(err)
	}
	var pes, threads []Fig10Row
	for _, r := range rows {
		switch r.Vary {
		case "pes":
			pes = append(pes, r)
		case "threads":
			threads = append(threads, r)
		}
	}
	if len(pes) != 5 || len(threads) != 5 {
		t.Fatalf("got %d pes rows, %d thread rows", len(pes), len(threads))
	}
	// More PEs => faster (plain runs).
	if pes[0].Plain <= pes[len(pes)-1].Plain {
		t.Fatalf("plain time should fall with PE count: 1 PE %.4fs vs 16 PE %.4fs",
			pes[0].Plain, pes[len(pes)-1].Plain)
	}
	// Hybrid flattens PE sensitivity: at 1 PE hybrid must win clearly.
	if pes[0].Speedup < 1.1 {
		t.Fatalf("hybrid speedup at 1 PE = %.2fx, want > 1.1x", pes[0].Speedup)
	}
}

func TestTable4(t *testing.T) {
	skipIfShort(t)
	// Table4's on-chip vs shared contrast is a property of realistic graph
	// sizes; run it closer to the full analogs (it only builds partitions,
	// no engine runs, so this stays fast).
	opt := testOpt()
	opt.Shrink = 1
	reports, err := Table4(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("want 3 reports, got %d", len(reports))
	}
	for _, r := range reports {
		if r.TotalOnChipBytes <= 0 || r.SharedBufferBytes <= 0 {
			t.Fatalf("report %+v empty", r)
		}
		// The headline contrast: on-chip streaming buffers are tiny
		// relative to the shared host buffer holding the graph.
		if r.TotalOnChipBytes >= r.SharedBufferBytes {
			t.Fatalf("%s: on-chip %d should be well below shared %d",
				r.Algorithm, r.TotalOnChipBytes, r.SharedBufferBytes)
		}
	}
}
