package exp

import (
	"os"
	"path/filepath"

	"graphabcd/internal/bcd"
	"graphabcd/internal/core"
	"graphabcd/internal/edgestore"
	"graphabcd/internal/metrics"
	"graphabcd/internal/sched"
)

// StorageRow is one edge-storage backend's footprint and runtime.
type StorageRow struct {
	Backend      string
	StorageBytes int64
	WallSeconds  float64
	Epochs       float64
}

// AblationStorage runs PageRank on the LJ analog with the three edge
// storage backends: in-memory (default), out-of-core raw file, and the
// compressed file format (the compact representation direction of
// Sec. VI-C). Because the pull-push layout makes each block's edges one
// contiguous range, out-of-core execution costs one sequential read per
// block task; the compressed format trades decode CPU for bytes.
func AblationStorage(opt Options) ([]StorageRow, error) {
	g, err := opt.socialGraph("LJ", false)
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "graphabcd-storage")
	if err != nil {
		return nil, err
	}
	defer func() { _ = os.RemoveAll(dir) }() // best-effort temp cleanup
	rawPath := filepath.Join(dir, "edges.bin")
	compPath := filepath.Join(dir, "edges.gabc")
	if err := edgestore.WriteFile(g, rawPath); err != nil {
		return nil, err
	}
	if err := edgestore.WriteCompressed(g, compPath); err != nil {
		return nil, err
	}

	backends := []struct {
		name string
		open func() (edgestore.Source, error)
	}{
		{"in-memory", func() (edgestore.Source, error) { return edgestore.InMemory(g), nil }},
		{"out-of-core", func() (edgestore.Source, error) { return edgestore.OpenFile(g, rawPath) }},
		{"compressed", func() (edgestore.Source, error) { return edgestore.OpenCompressed(g, compPath) }},
	}
	var rows []StorageRow
	tab := metrics.NewTable(opt.out(), "backend", "storage-bytes", "wall", "epochs")
	for _, b := range backends {
		src, err := b.open()
		if err != nil {
			return nil, err
		}
		cfg := opt.engineConfig(defaultBlock(g), core.Async, sched.Cyclic, false, prEps(g), 0)
		cfg.Edges = src
		res, err := core.Run[float64, float64](g, bcd.PageRank{}, cfg)
		if cerr := src.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, err
		}
		row := StorageRow{Backend: b.name, StorageBytes: src.Bytes(),
			WallSeconds: res.Stats.WallTime.Seconds(), Epochs: res.Stats.Epochs}
		rows = append(rows, row)
		tab.Row(row.Backend, row.StorageBytes, metrics.FormatDuration(row.WallSeconds), row.Epochs)
	}
	return rows, tab.Flush()
}
