package exp

import (
	"graphabcd/internal/bcd"
	"graphabcd/internal/core"
	"graphabcd/internal/metrics"
	"graphabcd/internal/sched"
)

// This file holds the ablations of GraphABCD's individual design choices
// that DESIGN.md calls out, beyond the paper's own figures: the vertex
// operator's traffic consequences (Sec. IV-A2), the bounded-staleness
// queue depth (Sec. III-D's convergence condition made measurable), and
// the full block-selection policy spectrum including randomized BCD.

// OperatorRow is the modeled CPU-accelerator traffic of one vertex
// operator choice, per the accounting of Sec. IV-A2.
type OperatorRow struct {
	Operator    string
	Graph       string
	BusBytes    int64   // total CPU<->accelerator traffic
	RandomBytes int64   // portion that is random-access
	RandomPct   float64 // RandomBytes / BusBytes
}

// AblationOperator reproduces the paper's pull vs push vs pull-push
// traffic argument analytically for each social analog, with PageRank's
// byte widths (8 B values, 12 B streamed edges):
//
//   - pull: streams |E| edges but GATHER reads V[src] randomly per edge;
//   - push: streams |E| edges, SCATTER random-reads V[dst] and
//     random-writes updates per edge;
//   - pull-push with GATHER-APPLY offloaded (GraphABCD): |E| sequential
//     edge reads + |V| sequential value writes, zero random accelerator
//     traffic — the paper's justification for its memory layout;
//   - pull-push with SCATTER also offloaded: 2|E| traffic, the
//     alternative Sec. IV-A2 rejects.
func AblationOperator(opt Options) ([]OperatorRow, error) {
	const valueBytes, edgeBytes = 8, 12
	var rows []OperatorRow
	tab := metrics.NewTable(opt.out(), "operator", "graph", "bus-bytes", "random-bytes", "random-pct")
	for _, gname := range []string{"WT", "PS", "LJ", "TW"} {
		g, err := opt.socialGraph(gname, false)
		if err != nil {
			return nil, err
		}
		e, v := int64(g.NumEdges()), int64(g.NumVertices())
		for _, c := range []struct {
			name        string
			seq, random int64
		}{
			{"pull", e * edgeBytes, e * valueBytes},
			{"push", e * edgeBytes, 2 * e * valueBytes},
			{"pull-push(GA offload)", e*edgeBytes + v*valueBytes, 0},
			{"pull-push(GAS offload)", 2 * e * edgeBytes, 0},
		} {
			row := OperatorRow{Operator: c.name, Graph: gname,
				BusBytes: c.seq + c.random, RandomBytes: c.random}
			if row.BusBytes > 0 {
				row.RandomPct = 100 * float64(row.RandomBytes) / float64(row.BusBytes)
			}
			rows = append(rows, row)
			tab.Row(row.Operator, row.Graph, row.BusBytes, row.RandomBytes, fmtf("%.0f%%", row.RandomPct))
		}
	}
	return rows, tab.Flush()
}

// StalenessRow is one point of the queue-depth (staleness bound) sweep.
type StalenessRow struct {
	QueueDepth int
	Epochs     float64
}

// AblationStaleness sweeps the engine's task-queue depth — the bounded
// delay of asynchronous BCD (Sec. III-D) — on PageRank over the LJ
// analog. Shallow queues keep gathers close behind scatters
// (Gauss-Seidel-like freshness, fast convergence); deep queues let the
// gather pipeline run on stale caches and converge like Jacobi.
func AblationStaleness(opt Options) ([]StalenessRow, error) {
	g, err := opt.socialGraph("LJ", false)
	if err != nil {
		return nil, err
	}
	var rows []StalenessRow
	tab := metrics.NewTable(opt.out(), "queue-depth", "epochs")
	nb := (g.NumVertices() + defaultBlock(g) - 1) / defaultBlock(g)
	for _, depth := range []int{1, 2, 8, 32, nb} {
		cfg := opt.engineConfig(defaultBlock(g), core.Async, sched.Cyclic, false, prEps(g), 0)
		cfg.QueueDepth = depth
		res, err := core.Run[float64, float64](g, bcd.PageRank{}, cfg)
		if err != nil {
			return nil, err
		}
		row := StalenessRow{QueueDepth: depth, Epochs: res.Stats.Epochs}
		rows = append(rows, row)
		tab.Row(depth, row.Epochs)
	}
	return rows, tab.Flush()
}

// PolicyRow is one (policy, app, graph) epoch count.
type PolicyRow struct {
	Policy string
	App    string
	Graph  string
	Epochs float64
}

// AblationPolicy compares the full block-selection spectrum — cyclic,
// randomized BCD, and Gauss-Southwell priority — on PR and SSSP,
// extending the paper's two-policy comparison with the classic randomized
// rule from the BCD literature it cites.
func AblationPolicy(opt Options) ([]PolicyRow, error) {
	var rows []PolicyRow
	tab := metrics.NewTable(opt.out(), "policy", "app", "graph", "epochs")
	for _, app := range []string{"pr", "sssp"} {
		for _, gname := range []string{"WT", "LJ"} {
			g, err := opt.socialGraph(gname, app == "sssp")
			if err != nil {
				return nil, err
			}
			for _, policy := range []sched.Policy{sched.Cyclic, sched.Random, sched.Priority} {
				st, err := runSocialApp(app, g, opt.engineConfig(defaultBlock(g), core.Async, policy, false, appEps(app, g), 0))
				if err != nil {
					return nil, err
				}
				row := PolicyRow{Policy: policy.String(), App: app, Graph: gname, Epochs: st.Epochs}
				rows = append(rows, row)
				tab.Row(row.Policy, row.App, row.Graph, row.Epochs)
			}
		}
	}
	return rows, tab.Flush()
}
