package exp

import (
	"graphabcd/internal/accel"
	"graphabcd/internal/bcd"
	"graphabcd/internal/core"
	"graphabcd/internal/gen"
	"graphabcd/internal/graph"
	"graphabcd/internal/metrics"
	"graphabcd/internal/sched"
)

// Table1Row describes one generated dataset analog against its paper
// original.
type Table1Row struct {
	Name     string
	Kind     string
	Vertices int
	Edges    int
	Paper    string
}

// Table1 generates every catalog analog at the configured shrink and
// reports its size next to the paper's Table I original.
func Table1(opt Options) ([]Table1Row, error) {
	var rows []Table1Row
	tab := metrics.NewTable(opt.out(), "name", "kind", "vertices", "edges", "paper-original")
	for _, d := range gen.Catalog {
		var row Table1Row
		switch d.Kind {
		case gen.Social:
			g, err := d.BuildSocial(opt.Shrink, false)
			if err != nil {
				return nil, err
			}
			row = Table1Row{Name: d.Name, Kind: "social", Vertices: g.NumVertices(), Edges: g.NumEdges(), Paper: d.Paper}
		case gen.RatingKind:
			rg, err := d.BuildRating(opt.Shrink)
			if err != nil {
				return nil, err
			}
			row = Table1Row{Name: d.Name, Kind: "rating", Vertices: rg.Graph.NumVertices(), Edges: rg.Graph.NumEdges(), Paper: d.Paper}
		}
		rows = append(rows, row)
		tab.Row(row.Name, row.Kind, row.Vertices, row.Edges, row.Paper)
	}
	return rows, tab.Flush()
}

// Fig8Row is one point of the PE utilization study.
type Fig8Row struct {
	NumPEs      int
	AsyncUtil   float64 // mean PE busy fraction, async engine
	BarrierUtil float64 // same under the Barrier engine
}

// Fig8 reproduces the PE utilization figure on the LJ analog (PageRank):
// utilization vs PE count for async and synchronized execution. Paper's
// claims: async improves PE utilization 1.6-2.4x over synchronized
// execution, and utilization drops sharply past 8 PEs as the 12.8 GB/s
// bus saturates and PEs starve.
func Fig8(opt Options) ([]Fig8Row, error) {
	g, err := opt.socialGraph("LJ", false)
	if err != nil {
		return nil, err
	}
	var rows []Fig8Row
	tab := metrics.NewTable(opt.out(), "pes", "async-util", "barrier-util")
	for _, pes := range []int{1, 2, 4, 8, 16} {
		util := func(mode core.Mode) (float64, error) {
			sim, err := newSim(pes, 14)
			if err != nil {
				return 0, err
			}
			cfg := opt.engineConfig(defaultBlock(g), mode, sched.Cyclic, false, prEps(g), 0)
			cfg.NumPEs, cfg.NumScatter = pes, 14
			cfg.Sim = sim
			if _, err := core.Run[float64, float64](g, bcd.PageRank{}, cfg); err != nil {
				return 0, err
			}
			return sim.PEUtilization(), nil
		}
		async, err := util(core.Async)
		if err != nil {
			return nil, err
		}
		barrier, err := util(core.Barrier)
		if err != nil {
			return nil, err
		}
		row := Fig8Row{NumPEs: pes, AsyncUtil: async, BarrierUtil: barrier}
		rows = append(rows, row)
		tab.Row(pes, fmtf("%.1f%%", 100*async), fmtf("%.1f%%", 100*barrier))
	}
	return rows, tab.Flush()
}

// Fig9Traffic is the per-application traffic breakdown of Fig. 9(a).
type Fig9Traffic struct {
	App           string
	Graph         string
	SeqReadBytes  int64 // accelerator edge-block streams (|E|-proportional)
	SeqWriteBytes int64 // accelerator vertex write-backs (|V|-proportional)
	RandWriteB    int64 // host-side SCATTER writes (not on the bus)
	BusUtilPct    float64
}

// Fig9Util is one point of Fig. 9(b): bus utilization vs PE count.
type Fig9Util struct {
	NumPEs     int
	BusUtilPct float64
}

// Fig9 reproduces the memory-system study. Paper's claims: all
// CPU-accelerator traffic is sequential with reads dominating (|E| reads
// vs |V| writes), bus utilization reaches 98%/99%/80% for PR/SSSP/CF, and
// utilization saturates at ~8 PEs (the system is bandwidth-bound).
func Fig9(opt Options) ([]Fig9Traffic, []Fig9Util, error) {
	var traffic []Fig9Traffic
	tab := metrics.NewTable(opt.out(), "app", "graph", "seq-read", "seq-write", "rand-write(host)", "bus-util")
	runOne := func(app, gname string, g *graph.Graph, exec func(cfg core.Config) error) error {
		sim, err := newSim(16, 14)
		if err != nil {
			return err
		}
		cfg := opt.engineConfig(defaultBlock(g), core.Async, sched.Cyclic, false, 0, 0)
		cfg.NumPEs, cfg.NumScatter = 16, 14
		cfg.Sim = sim
		if err := exec(cfg); err != nil {
			return err
		}
		row := Fig9Traffic{App: app, Graph: gname,
			SeqReadBytes:  sim.TrafficBytes(accel.SeqRead),
			SeqWriteBytes: sim.TrafficBytes(accel.SeqWrite),
			RandWriteB:    sim.TrafficBytes(accel.RandWrite),
			BusUtilPct:    100 * sim.BusUtilization()}
		traffic = append(traffic, row)
		tab.Row(app, gname, row.SeqReadBytes, row.SeqWriteBytes, row.RandWriteB, fmtf("%.1f%%", row.BusUtilPct))
		return nil
	}
	for _, app := range []string{"pr", "sssp"} {
		g, err := opt.socialGraph("LJ", app == "sssp")
		if err != nil {
			return nil, nil, err
		}
		app := app
		if err := runOne(app, "LJ", g, func(cfg core.Config) error {
			cfg.Epsilon = appEps(app, g)
			_, err := runSocialApp(app, g, cfg)
			return err
		}); err != nil {
			return nil, nil, err
		}
	}
	rg, err := opt.ratingGraph("NF")
	if err != nil {
		return nil, nil, err
	}
	if err := runOne("cf", "NF", rg.Graph, func(cfg core.Config) error {
		cfg.Epsilon = 1e-9
		cfg.MaxEpochs = cfEngineBudget
		_, err := core.Run[[]float32, []float64](rg.Graph, cfParams(), cfg)
		return err
	}); err != nil {
		return nil, nil, err
	}

	// (b) bus utilization vs PE count, PR on LJ, 14 CPU threads fixed.
	g, err := opt.socialGraph("LJ", false)
	if err != nil {
		return nil, nil, err
	}
	var utils []Fig9Util
	tab2 := metrics.NewTable(opt.out(), "pes", "bus-util")
	for _, pes := range []int{1, 2, 4, 8, 16} {
		sim, err := newSim(pes, 14)
		if err != nil {
			return nil, nil, err
		}
		cfg := opt.engineConfig(defaultBlock(g), core.Async, sched.Cyclic, false, prEps(g), 0)
		cfg.NumPEs, cfg.NumScatter = pes, 14
		cfg.Sim = sim
		if _, err := core.Run[float64, float64](g, bcd.PageRank{}, cfg); err != nil {
			return nil, nil, err
		}
		u := Fig9Util{NumPEs: pes, BusUtilPct: 100 * sim.BusUtilization()}
		utils = append(utils, u)
		tab2.Row(pes, fmtf("%.1f%%", u.BusUtilPct))
	}
	if err := tab.Flush(); err != nil {
		return nil, nil, err
	}
	return traffic, utils, tab2.Flush()
}

// Fig10Row is one point of the scalability study on LJ.
type Fig10Row struct {
	Vary    string // "pes" or "threads"
	Count   int
	Plain   float64 // modeled seconds without hybrid execution
	Hybrid  float64 // modeled seconds with hybrid execution
	Speedup float64 // Plain / Hybrid
}

// Fig10 reproduces the scalability study on LJ (PageRank). Paper's
// claims: execution time falls linearly with PE count until ~8 PEs (then
// bandwidth-bound); without hybrid execution the system is much more
// sensitive to PE count than to CPU thread count; hybrid execution
// flattens the PE-count sensitivity because CPU threads back-fill as
// weaker PEs.
func Fig10(opt Options) ([]Fig10Row, error) {
	g, err := opt.socialGraph("LJ", false)
	if err != nil {
		return nil, err
	}
	var rows []Fig10Row
	tab := metrics.NewTable(opt.out(), "vary", "count", "plain(s)", "hybrid(s)", "hybrid-speedup")
	measure := func(pes, threads int, hybrid bool) (float64, error) {
		sim, err := newSim(pes, threads)
		if err != nil {
			return 0, err
		}
		cfg := opt.engineConfig(defaultBlock(g), core.Async, sched.Cyclic, hybrid, prEps(g), 0)
		cfg.NumPEs, cfg.NumScatter = pes, threads
		cfg.Sim = sim
		res, err := core.Run[float64, float64](g, bcd.PageRank{}, cfg)
		if err != nil {
			return 0, err
		}
		return res.Stats.SimTimeNs / 1e9, nil
	}
	add := func(vary string, count, pes, threads int) error {
		plain, err := measure(pes, threads, false)
		if err != nil {
			return err
		}
		hybrid, err := measure(pes, threads, true)
		if err != nil {
			return err
		}
		row := Fig10Row{Vary: vary, Count: count, Plain: plain, Hybrid: hybrid, Speedup: plain / hybrid}
		rows = append(rows, row)
		tab.Row(vary, count, metrics.FormatDuration(plain), metrics.FormatDuration(hybrid), fmtf("%.2fx", row.Speedup))
		return nil
	}
	for _, pes := range []int{1, 2, 4, 8, 16} {
		if err := add("pes", pes, pes, 14); err != nil {
			return nil, err
		}
	}
	for _, threads := range []int{1, 2, 4, 8, 14} {
		if err := add("threads", threads, 16, threads); err != nil {
			return nil, err
		}
	}
	return rows, tab.Flush()
}

// Table4 reports the accelerator-model resource footprint per algorithm —
// the substitute for the paper's FPGA utilization table (see
// accel.ResourceReport). Paper context: GraphABCD needs only 2.69 MB of
// FPGA BRAM plus 35 MB of shared LLC because pull-push streams edge
// blocks, vs Graphicionado's 64-256 MB vertex scratchpad.
func Table4(opt Options) ([]accel.ResourceReport, error) {
	var reports []accel.ResourceReport
	tab := metrics.NewTable(opt.out(), "report")
	addSocial := func(app string, weighted bool, valueWords int) error {
		g, err := opt.socialGraph("LJ", weighted)
		if err != nil {
			return err
		}
		r := accel.Resources(app, 16, defaultBlock(g),
			int64(valueWords)*8, int64(valueWords)*8+4, g.NumVertices(), int64(g.NumEdges()))
		reports = append(reports, r)
		tab.Row(r.String())
		return nil
	}
	if err := addSocial("pagerank", false, 1); err != nil {
		return nil, err
	}
	if err := addSocial("sssp", true, 1); err != nil {
		return nil, err
	}
	rg, err := opt.ratingGraph("NF")
	if err != nil {
		return nil, err
	}
	words := int64(cfParams().Codec().Words())
	r := accel.Resources("cf", 16, defaultBlock(rg.Graph), words*8, words*8+4,
		rg.Graph.NumVertices(), int64(rg.Graph.NumEdges()))
	reports = append(reports, r)
	tab.Row(r.String())
	return reports, tab.Flush()
}
