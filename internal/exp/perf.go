package exp

import (
	"graphabcd/internal/accel"
	"graphabcd/internal/asicmodel"
	"graphabcd/internal/core"
	"graphabcd/internal/graph"
	"graphabcd/internal/graphmat"
	"graphabcd/internal/metrics"
	"graphabcd/internal/sched"
)

// cfEngineBudget and cfGraphMatBudget are the Fig. 5 operating points the
// paper compares (GraphABCD at 20 iterations reaches better RMSE than
// GraphMat at 60), reused by Table II's CF rows.
const (
	cfEngineBudget   = 20
	cfGraphMatBudget = 60
)

// Table2Row is one row of Table II: execution time and throughput of
// GraphABCD, GraphMat, and the projected Graphicionado ASIC.
type Table2Row struct {
	App   string
	Graph string

	// Measured wall times on the test host (both frameworks on the same
	// CPU, so this reflects the executed-work ratio only).
	ABCDSeconds float64 // best of {cyclic,priority} x {hybrid on,off}
	GMSeconds   float64

	// Modeled times on the paper's platform: GraphABCD on the 16-PE /
	// 12.8 GB/s accelerator model, GraphMat on the host CPU sweep model.
	// These carry the platform asymmetry the paper's Table II measures.
	ABCDModelSec float64
	GMModelSec   float64

	ASICSeconds  float64 // Graphicionado projection (paper reports LJ/TW/NF)
	ABCDMTEPS    float64
	GMMTEPS      float64
	ABCDBestConf string
}

// Table2 reproduces the headline comparison. Paper's claims: GraphABCD
// beats GraphMat 2.1-2.5x on PR and 2.5-3.3x on CF, ties or loses
// slightly on SSSP (0.76-1.14x), for a 2.0x geo-mean; GraphMat's raw
// MTEPS can exceed GraphABCD's (its host has 58 GB/s vs the accelerator's
// 12.8 GB/s) — the win comes from convergence rate; and GraphABCD beats
// the bandwidth-normalized Graphicionado by 4.3x/2.3x/4.8x on PR/SSSP/CF.
//
// In this CPU-only reproduction both systems run on the same host, so the
// executed-work ratio (epochs) drives the time ratio; the bandwidth
// asymmetry of the paper is reproduced by Fig. 6's cost model instead.
func Table2(opt Options) ([]Table2Row, error) {
	var rows []Table2Row
	tab := metrics.NewTable(opt.out(), "app", "graph", "abcd-wall", "gm-wall",
		"abcd-model", "gm-model", "asic-model", "abcd-MTEPS", "gm-MTEPS", "best-conf")
	asic := asicmodel.DefaultGraphicionado()

	addRow := func(row Table2Row) {
		rows = append(rows, row)
		tab.Row(row.App, row.Graph,
			metrics.FormatDuration(row.ABCDSeconds), metrics.FormatDuration(row.GMSeconds),
			metrics.FormatDuration(row.ABCDModelSec), metrics.FormatDuration(row.GMModelSec),
			metrics.FormatDuration(row.ASICSeconds), row.ABCDMTEPS, row.GMMTEPS, row.ABCDBestConf)
	}

	for _, app := range []string{"pr", "sssp"} {
		for _, gname := range []string{"WT", "PS", "LJ", "TW"} {
			g, err := opt.socialGraph(gname, app == "sssp")
			if err != nil {
				return nil, err
			}
			best, bestConf, bestMTEPS, err := bestEngineSocial(app, g, opt)
			if err != nil {
				return nil, err
			}
			abcdModel, err := modelSocial(app, g, opt)
			if err != nil {
				return nil, err
			}
			gmStats, err := graphMatSocialStats(app, g, opt)
			if err != nil {
				return nil, err
			}
			addRow(Table2Row{
				App: app, Graph: gname,
				ABCDSeconds:  best,
				GMSeconds:    gmStats.WallTime.Seconds(),
				ABCDModelSec: abcdModel,
				GMModelSec:   gmModelSeconds(app, gmStats.EdgesTraversed),
				ASICSeconds:  asic.ProjectRuntime(gmStats.EdgesTraversed).Seconds(),
				ABCDMTEPS:    bestMTEPS,
				GMMTEPS:      gmStats.MTEPS(),
				ABCDBestConf: bestConf,
			})
		}
	}

	params := cfParams()
	for _, gname := range []string{"SAC", "MOL", "NF"} {
		rg, err := opt.ratingGraph(gname)
		if err != nil {
			return nil, err
		}
		best, bestConf, bestMTEPS, err := bestEngineCF(rg.Graph, opt)
		if err != nil {
			return nil, err
		}
		abcdModel, err := modelCF(rg.Graph, opt)
		if err != nil {
			return nil, err
		}
		gmProg := graphmat.NewCF(graphmat.CF{Rank: params.Rank, LearnRate: params.LearnRate, Lambda: params.Lambda, Seed: params.Seed})
		gmRes, err := graphmat.Run[[]float32, graphmat.CFMsg](rg.Graph, gmProg,
			graphmat.Config{Threads: opt.threads(), MaxIters: cfGraphMatBudget})
		if err != nil {
			return nil, err
		}
		addRow(Table2Row{
			App: "cf", Graph: gname,
			ABCDSeconds:  best,
			GMSeconds:    gmRes.Stats.WallTime.Seconds(),
			ABCDModelSec: abcdModel,
			GMModelSec:   gmModelSeconds("cf", gmRes.Stats.EdgesTraversed),
			ASICSeconds:  asic.ProjectRuntime(gmRes.Stats.EdgesTraversed).Seconds(),
			ABCDMTEPS:    bestMTEPS,
			GMMTEPS:      gmRes.Stats.MTEPS(),
			ABCDBestConf: bestConf,
		})
	}

	// Geo-mean speedups over GraphMat; the modeled ratio carries the
	// paper's platform asymmetry and is its headline 2.0x.
	var abcdW, gmW, abcdM, gmM []float64
	for _, r := range rows {
		abcdW = append(abcdW, r.ABCDSeconds)
		gmW = append(gmW, r.GMSeconds)
		abcdM = append(abcdM, r.ABCDModelSec)
		gmM = append(gmM, r.GMModelSec)
	}
	tab.Row("geomean-speedup", "", fmtf("wall %.2fx", geomeanRatio(gmW, abcdW)), "",
		fmtf("model %.2fx", geomeanRatio(gmM, abcdM)), "", "", "", "", "")
	return rows, tab.Flush()
}

// modelSocial runs the app once with the HARPv2 model attached and returns
// the modeled makespan in seconds.
func modelSocial(app string, g *graph.Graph, opt Options) (float64, error) {
	sim, err := newSim(16, 14)
	if err != nil {
		return 0, err
	}
	cfg := opt.engineConfig(defaultBlock(g), core.Async, sched.Cyclic, false, appEps(app, g), 0)
	cfg.NumPEs, cfg.NumScatter = 16, 14
	cfg.Sim = sim
	st, err := runSocialApp(app, g, cfg)
	if err != nil {
		return 0, err
	}
	return st.SimTimeNs / 1e9, nil
}

// modelCF is modelSocial for collaborative filtering.
func modelCF(g *graph.Graph, opt Options) (float64, error) {
	sim, err := newSim(16, 14)
	if err != nil {
		return 0, err
	}
	cfg := opt.engineConfig(defaultBlock(g), core.Async, sched.Cyclic, false, 1e-9, cfEngineBudget)
	cfg.NumPEs, cfg.NumScatter = 16, 14
	cfg.Sim = sim
	res, err := core.Run[[]float32, []float64](g, cfParams(), cfg)
	if err != nil {
		return 0, err
	}
	return res.Stats.SimTimeNs / 1e9, nil
}

// gmModelSeconds models GraphMat's runtime on the paper's 14-thread host.
// The per-edge cost depends on the workload's access pattern, calibrated
// from the paper's own Table II MTES column: PR runs dense sequential
// SpMV sweeps (CPUSweepNsPerEdge); SSSP's active-filtered sweeps gather
// from random sources, the same cost class as the software random gather
// (CPUGatherNsPerEdge); CF moves rank-8 factor payloads per edge, which
// the paper's measurements put at ~2.6x the PR per-edge cost.
func gmModelSeconds(app string, edgesTraversed int64) float64 {
	hw := accel.DefaultHARPv2()
	var perEdge float64
	switch app {
	case "sssp":
		perEdge = hw.CPUGatherNsPerEdge
	case "cf":
		perEdge = 2.6 * hw.CPUSweepNsPerEdge
	default:
		perEdge = hw.CPUSweepNsPerEdge
	}
	return float64(edgesTraversed) * perEdge / float64(hw.CPUThreads) / 1e9
}

// bestEngineSocial runs the four GraphABCD configurations (policy x
// hybrid) and returns the best wall time, its label, and its MTEPS.
func bestEngineSocial(app string, g *graph.Graph, opt Options) (float64, string, float64, error) {
	best, conf, mteps := 0.0, "", 0.0
	for _, policy := range []sched.Policy{sched.Cyclic, sched.Priority} {
		for _, hybrid := range []bool{false, true} {
			cfg := opt.engineConfig(defaultBlock(g), core.Async, policy, hybrid, appEps(app, g), 0)
			st, err := runSocialApp(app, g, cfg)
			if err != nil {
				return 0, "", 0, err
			}
			if sec := st.WallTime.Seconds(); conf == "" || sec < best {
				best, mteps = sec, st.MTEPS()
				conf = policy.String()
				if hybrid {
					conf += "+hybrid"
				}
			}
		}
	}
	return best, conf, mteps, nil
}

// bestEngineCF is bestEngineSocial for collaborative filtering.
func bestEngineCF(g *graph.Graph, opt Options) (float64, string, float64, error) {
	params := cfParams()
	best, conf, mteps := 0.0, "", 0.0
	for _, policy := range []sched.Policy{sched.Cyclic, sched.Priority} {
		for _, hybrid := range []bool{false, true} {
			cfg := opt.engineConfig(defaultBlock(g), core.Async, policy, hybrid, 1e-9, cfEngineBudget)
			res, err := core.Run[[]float32, []float64](g, params, cfg)
			if err != nil {
				return 0, "", 0, err
			}
			if sec := res.Stats.WallTime.Seconds(); conf == "" || sec < best {
				best, mteps = sec, res.Stats.MTEPS()
				conf = policy.String()
				if hybrid {
					conf += "+hybrid"
				}
			}
		}
	}
	return best, conf, mteps, nil
}

// graphMatSocialStats runs GraphMat's pr or sssp and returns full stats.
func graphMatSocialStats(app string, g *graph.Graph, opt Options) (graphmat.Stats, error) {
	cfg := graphmat.Config{Threads: opt.threads()}
	switch app {
	case "pr":
		res, err := graphmat.Run[float64, float64](g, graphmat.PageRank{Eps: prEps(g)}, cfg)
		if err != nil {
			return graphmat.Stats{}, err
		}
		return res.Stats, nil
	case "sssp":
		res, err := graphmat.Run[float64, float64](g, graphmat.SSSP{Source: pickSource(g)}, cfg)
		if err != nil {
			return graphmat.Stats{}, err
		}
		return res.Stats, nil
	}
	return graphmat.Stats{}, fmtErr("unknown app %q", app)
}

// Fig6Row compares accelerator-modeled GraphABCD against the all-software
// cost model for the same executed work.
type Fig6Row struct {
	App        string
	Graph      string
	AccelSec   float64 // accelerator-model makespan
	SoftSec    float64 // software cost model on the same work
	Speedup    float64 // SoftSec / AccelSec
	BusUtilPct float64
}

// Fig6 reproduces the hardware-acceleration study. The paper measures
// FPGA-accelerated GraphABCD 1.2-9.2x (3.4x average) faster than the
// fused software GraphABCD. Both sides here come from the same calibrated
// cost model (Sec. 2 of DESIGN.md): the accelerated run streams edges at
// the 12.8 GB/s bus, the software run pays the host's random-access
// gather cost on the same work.
func Fig6(opt Options) ([]Fig6Row, error) {
	var rows []Fig6Row
	tab := metrics.NewTable(opt.out(), "app", "graph", "accel(s)", "soft(s)", "speedup", "bus-util")
	run := func(app, gname string, g *graph.Graph, prog func(cfg core.Config) (core.Stats, error)) error {
		sim, err := newSim(16, 14)
		if err != nil {
			return err
		}
		cfg := opt.engineConfig(defaultBlock(g), core.Async, sched.Cyclic, false, 0, 0)
		cfg.NumPEs, cfg.NumScatter = 16, 14 // drive the full modeled platform
		cfg.Sim = sim
		st, err := prog(cfg)
		if err != nil {
			return err
		}
		hw := sim.Config()
		accelSec := st.SimTimeNs / 1e9
		softSec := (float64(st.EdgesTraversed)*hw.CPUGatherNsPerEdge +
			float64(st.ScatterWrites)*hw.ScatterNsPerEdge) / float64(hw.CPUThreads) / 1e9
		row := Fig6Row{App: app, Graph: gname, AccelSec: accelSec, SoftSec: softSec,
			Speedup: softSec / accelSec, BusUtilPct: 100 * sim.BusUtilization()}
		rows = append(rows, row)
		tab.Row(row.App, row.Graph, metrics.FormatDuration(row.AccelSec),
			metrics.FormatDuration(row.SoftSec), fmtf("%.2fx", row.Speedup), fmtf("%.0f%%", row.BusUtilPct))
		return nil
	}
	for _, app := range []string{"pr", "sssp"} {
		for _, gname := range []string{"WT", "PS", "LJ"} {
			g, err := opt.socialGraph(gname, app == "sssp")
			if err != nil {
				return nil, err
			}
			app := app
			if err := run(app, gname, g, func(cfg core.Config) (core.Stats, error) {
				cfg.Epsilon = appEps(app, g)
				return runSocialApp(app, g, cfg)
			}); err != nil {
				return nil, err
			}
		}
	}
	rg, err := opt.ratingGraph("NF")
	if err != nil {
		return nil, err
	}
	if err := run("cf", "NF", rg.Graph, func(cfg core.Config) (core.Stats, error) {
		cfg.Epsilon = 1e-9
		cfg.MaxEpochs = cfEngineBudget
		res, err := core.Run[[]float32, []float64](rg.Graph, cfParams(), cfg)
		if err != nil {
			return core.Stats{}, err
		}
		return res.Stats, nil
	}); err != nil {
		return nil, err
	}
	return rows, tab.Flush()
}

// Fig7Row is one application/graph group of the speedup breakdown. Times
// are the accelerator model's makespans on the 16-PE / 14-thread HARPv2
// configuration, so the synchronization stalls of Barrier/BSP appear even
// on a single-core test host.
type Fig7Row struct {
	App   string
	Graph string
	// Modeled seconds per execution mode.
	Async       float64
	AsyncHybrid float64
	Barrier     float64
	BSP         float64
	// Epoch counts, to separate convergence effects from stall effects.
	AsyncEpochs   float64
	BarrierEpochs float64
	BSPEpochs     float64
}

// Fig7 reproduces the asynchrony ablation. Paper's claims: Async beats
// Barrier 1.9-4.2x (pure synchronization overhead — their convergence
// rates are similar); BSP is 1.4-15.2x slower than Async, mostly from the
// |V| block size's worse convergence; hybrid execution adds up to 66%
// (24% average).
func Fig7(opt Options) ([]Fig7Row, error) {
	var rows []Fig7Row
	tab := metrics.NewTable(opt.out(), "app", "graph", "async(s)", "hybrid(s)", "barrier(s)", "bsp(s)", "async-ep", "barrier-ep", "bsp-ep")
	add := func(app, gname string, run func(cfg core.Config) (core.Stats, error), eps float64, budget float64) error {
		mk := func(mode core.Mode, hybrid bool) (core.Stats, error) {
			sim, err := newSim(16, 14)
			if err != nil {
				return core.Stats{}, err
			}
			cfg := opt.engineConfig(0, mode, sched.Cyclic, hybrid, eps, budget)
			cfg.NumPEs, cfg.NumScatter = 16, 14
			cfg.Sim = sim
			if mode != core.BSP {
				cfg.BlockSize = 1024 // fixed mid-range block, as in the paper
			}
			return run(cfg)
		}
		async, err := mk(core.Async, false)
		if err != nil {
			return err
		}
		hybrid, err := mk(core.Async, true)
		if err != nil {
			return err
		}
		barrier, err := mk(core.Barrier, false)
		if err != nil {
			return err
		}
		bsp, err := mk(core.BSP, false)
		if err != nil {
			return err
		}
		row := Fig7Row{App: app, Graph: gname,
			Async: async.SimTimeNs / 1e9, AsyncHybrid: hybrid.SimTimeNs / 1e9,
			Barrier: barrier.SimTimeNs / 1e9, BSP: bsp.SimTimeNs / 1e9,
			AsyncEpochs: async.Epochs, BarrierEpochs: barrier.Epochs, BSPEpochs: bsp.Epochs}
		rows = append(rows, row)
		tab.Row(app, gname, metrics.FormatDuration(row.Async), metrics.FormatDuration(row.AsyncHybrid),
			metrics.FormatDuration(row.Barrier), metrics.FormatDuration(row.BSP),
			row.AsyncEpochs, row.BarrierEpochs, row.BSPEpochs)
		return nil
	}
	for _, app := range []string{"pr", "sssp"} {
		for _, gname := range []string{"WT", "PS", "LJ"} {
			g, err := opt.socialGraph(gname, app == "sssp")
			if err != nil {
				return nil, err
			}
			app := app
			if err := add(app, gname, func(cfg core.Config) (core.Stats, error) {
				return runSocialApp(app, g, cfg)
			}, appEps(app, g), 0); err != nil {
				return nil, err
			}
		}
	}
	rg, err := opt.ratingGraph("SAC")
	if err != nil {
		return nil, err
	}
	if err := add("cf", "SAC", func(cfg core.Config) (core.Stats, error) {
		res, err := core.Run[[]float32, []float64](rg.Graph, cfParams(), cfg)
		if err != nil {
			return core.Stats{}, err
		}
		return res.Stats, nil
	}, 1e-9, cfEngineBudget); err != nil {
		return nil, err
	}
	return rows, tab.Flush()
}
