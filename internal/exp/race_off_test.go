//go:build !race

package exp

const raceDetectorEnabled = false
