// Package exp is the experiment harness that regenerates every table and
// figure of the paper's evaluation (Sec. V). Each experiment function
// returns its rows as data (for tests and benchmarks) and renders the
// paper-style table to Options.Out.
//
// Absolute numbers differ from the paper — the datasets are scaled-down
// synthetic analogs and the accelerator is a cost model — but each
// function's doc comment states the paper's qualitative claim, and the
// package tests assert those shapes hold.
package exp

import (
	"fmt"
	"io"
	"runtime"

	"graphabcd/internal/accel"
	"graphabcd/internal/bcd"
	"graphabcd/internal/core"
	"graphabcd/internal/gen"
	"graphabcd/internal/graph"
	"graphabcd/internal/sched"
)

// Options configures a harness run.
type Options struct {
	// Shrink scales every dataset down by 2^Shrink from its Table-I
	// analog size. 0 reproduces the full analogs; benchmarks use 3-5.
	Shrink int
	// Threads caps host parallelism (engine PEs + scatter workers).
	// 0 means GOMAXPROCS.
	Threads int
	// Out receives the rendered tables; nil discards them.
	Out io.Writer
}

func (o Options) out() io.Writer {
	if o.Out == nil {
		return io.Discard
	}
	return o.Out
}

func (o Options) threads() int {
	if o.Threads > 0 {
		return o.Threads
	}
	return runtime.GOMAXPROCS(0)
}

// pes/scatter split host threads ~2:1 between gather-apply and scatter,
// mirroring the paper's 16 PE / 14 thread asymmetry.
func (o Options) pes() int { return max(1, o.threads()*2/3) }

func (o Options) scatter() int { return max(1, o.threads()-o.pes()) }

// socialGraph builds a Table-I social analog, cached per (name, weighted).
func (o Options) socialGraph(name string, weighted bool) (*graph.Graph, error) {
	d, err := gen.Lookup(name)
	if err != nil {
		return nil, err
	}
	return d.BuildSocial(o.Shrink, weighted)
}

// ratingGraph builds a Table-I rating analog.
func (o Options) ratingGraph(name string) (*gen.RatingGraph, error) {
	d, err := gen.Lookup(name)
	if err != nil {
		return nil, err
	}
	return d.BuildRating(o.Shrink)
}

// pickSource returns the max-out-degree vertex — a deterministic source
// inside the giant component for SSSP/BFS runs.
func pickSource(g *graph.Graph) uint32 {
	best, bestDeg := uint32(0), int32(-1)
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.OutDegree(uint32(v)); d > bestDeg {
			best, bestDeg = uint32(v), d
		}
	}
	return best
}

// engineConfig assembles a core.Config with the harness defaults.
func (o Options) engineConfig(blockSize int, mode core.Mode, policy sched.Policy, hybrid bool, eps, maxEpochs float64) core.Config {
	return core.Config{
		BlockSize:  blockSize,
		Mode:       mode,
		Policy:     policy,
		NumPEs:     o.pes(),
		NumScatter: o.scatter(),
		Hybrid:     hybrid,
		Epsilon:    eps,
		MaxEpochs:  maxEpochs,
		Seed:       1,
	}
}

// defaultBlock picks the harness's default block size: |V|/256 bounded to
// [16, 4096]. This keeps the block count well above the PE count (so the
// decoupled pipeline can fill all 16 modeled PEs) while staying in the
// convergence/overhead regime the paper's Fig. 4 identifies.
func defaultBlock(g *graph.Graph) int {
	b := g.NumVertices() / 256
	if b < 16 {
		b = 16
	}
	if b > 4096 {
		b = 4096
	}
	return b
}

// prEps is the harness-wide PageRank activation threshold. Scaled runs
// have rank mass ~1/|V| per vertex, so the threshold scales too.
func prEps(g *graph.Graph) float64 {
	n := g.NumVertices()
	if n == 0 {
		return 1e-12
	}
	return 1e-7 / float64(n)
}

// cfParams returns the CF hyper-parameters used across every experiment,
// shared by GraphABCD and GraphMat for apples-to-apples comparisons.
func cfParams() bcd.CF { return bcd.CF{Rank: 8, LearnRate: 0.3, Lambda: 0.01, Seed: 7} }

// newSim builds a HARPv2-model simulator with the given PE count.
func newSim(pes, cpus int) (*accel.Simulator, error) {
	cfg := accel.DefaultHARPv2()
	cfg.NumPEs = pes
	cfg.CPUThreads = cpus
	return accel.New(cfg)
}

func fmtf(f string, args ...any) string { return fmt.Sprintf(f, args...) }
