package exp

import (
	"graphabcd/internal/bcd"
	"graphabcd/internal/core"
	"graphabcd/internal/graph"
	"graphabcd/internal/graphmat"
	"graphabcd/internal/metrics"
	"graphabcd/internal/sched"
)

// Fig4Row is one bar of Fig. 4: the epoch count of (algorithm, graph,
// policy, block size), normalized to the BSP epoch count of the same
// (algorithm, graph).
type Fig4Row struct {
	App       string
	Graph     string
	Policy    string
	BlockSize int
	Epochs    float64
	NormBSP   float64 // Epochs / BSP epochs; < 1 means faster convergence
}

// Fig4 reproduces the convergence-rate study: PR and SSSP on PS, WT and
// LJ, cyclic vs priority scheduling, block sizes 8..32768, normalized to
// BSP. Paper's claims: smaller blocks converge in fewer epochs (1.2-5x),
// priority beats cyclic (up to 5x), and the priority advantage grows as
// blocks shrink.
func Fig4(opt Options) ([]Fig4Row, error) {
	var rows []Fig4Row
	tab := metrics.NewTable(opt.out(), "app", "graph", "policy", "block", "epochs", "norm-bsp")
	for _, gname := range []string{"PS", "WT", "LJ"} {
		for _, app := range []string{"pr", "sssp"} {
			g, err := opt.socialGraph(gname, app == "sssp")
			if err != nil {
				return nil, err
			}
			run := func(cfg core.Config) (float64, error) {
				st, err := runSocialApp(app, g, cfg)
				if err != nil {
					return 0, err
				}
				return st.Epochs, nil
			}
			bspEpochs, err := run(opt.engineConfig(0, core.BSP, sched.Cyclic, false, appEps(app, g), 0))
			if err != nil {
				return nil, err
			}
			for _, block := range fig4Blocks(g) {
				for _, policy := range []sched.Policy{sched.Cyclic, sched.Priority} {
					epochs, err := run(opt.engineConfig(block, core.Async, policy, false, appEps(app, g), 0))
					if err != nil {
						return nil, err
					}
					row := Fig4Row{
						App: app, Graph: gname, Policy: policy.String(),
						BlockSize: block, Epochs: epochs, NormBSP: epochs / bspEpochs,
					}
					rows = append(rows, row)
					tab.Row(row.App, row.Graph, row.Policy, row.BlockSize, row.Epochs, row.NormBSP)
				}
			}
		}
	}
	return rows, tab.Flush()
}

// fig4Blocks mirrors the paper's 8..32768 sweep, clipped to the graph.
func fig4Blocks(g *graph.Graph) []int {
	var out []int
	for b := 8; b <= 32768 && b < g.NumVertices(); b *= 4 {
		out = append(out, b)
	}
	return out
}

func appEps(app string, g *graph.Graph) float64 {
	if app == "pr" {
		return prEps(g)
	}
	return 0 // monotone traversal apps converge exactly
}

// runSocialApp executes pr or sssp under cfg and returns the stats.
func runSocialApp(app string, g *graph.Graph, cfg core.Config) (core.Stats, error) {
	switch app {
	case "pr":
		res, err := core.Run[float64, float64](g, bcd.PageRank{}, cfg)
		if err != nil {
			return core.Stats{}, err
		}
		return res.Stats, nil
	case "sssp":
		res, err := core.Run[float64, float64](g, bcd.SSSP{Source: pickSource(g)}, cfg)
		if err != nil {
			return core.Stats{}, err
		}
		return res.Stats, nil
	}
	return core.Stats{}, fmtErr("unknown app %q", app)
}

// Table3Row is one row of Table III: iteration counts of GraphABCD's
// priority and cyclic scheduling vs GraphMat (whose count Graphicionado
// shares).
type Table3Row struct {
	App      string
	Graph    string
	Priority float64
	Cyclic   float64
	GraphMat float64
}

// Table3 reproduces the convergence-rate table. Paper's claims: on PR,
// GraphABCD needs ~72-76% fewer iterations than GraphMat; on SSSP,
// GraphMat's active-vertex filtering effectively shrinks its block size
// and GraphABCD takes ~1.5-1.8x more iterations; priority cuts 11-38%
// (PR) and 8-12% (SSSP) vs cyclic.
func Table3(opt Options) ([]Table3Row, error) {
	var rows []Table3Row
	tab := metrics.NewTable(opt.out(), "app", "graph", "priority", "cyclic", "graphmat")
	for _, app := range []string{"pr", "sssp"} {
		for _, gname := range []string{"WT", "PS", "LJ", "TW"} {
			g, err := opt.socialGraph(gname, app == "sssp")
			if err != nil {
				return nil, err
			}
			block := defaultBlock(g)
			eps := appEps(app, g)
			prio, err := runSocialApp(app, g, opt.engineConfig(block, core.Async, sched.Priority, false, eps, 0))
			if err != nil {
				return nil, err
			}
			cyc, err := runSocialApp(app, g, opt.engineConfig(block, core.Async, sched.Cyclic, false, eps, 0))
			if err != nil {
				return nil, err
			}
			gmIters, err := runGraphMatSocial(app, g, opt)
			if err != nil {
				return nil, err
			}
			row := Table3Row{App: app, Graph: gname, Priority: prio.Epochs, Cyclic: cyc.Epochs, GraphMat: gmIters}
			rows = append(rows, row)
			tab.Row(row.App, row.Graph, row.Priority, row.Cyclic, row.GraphMat)
		}
	}
	return rows, tab.Flush()
}

// runGraphMatSocial returns GraphMat's sweep count for pr or sssp on g.
func runGraphMatSocial(app string, g *graph.Graph, opt Options) (float64, error) {
	cfg := graphmat.Config{Threads: opt.threads()}
	switch app {
	case "pr":
		res, err := graphmat.Run[float64, float64](g, graphmat.PageRank{Eps: prEps(g)}, cfg)
		if err != nil {
			return 0, err
		}
		return float64(res.Stats.Iterations), nil
	case "sssp":
		res, err := graphmat.Run[float64, float64](g, graphmat.SSSP{Source: pickSource(g)}, cfg)
		if err != nil {
			return 0, err
		}
		return float64(res.Stats.Iterations), nil
	}
	return 0, fmtErr("unknown app %q", app)
}

// Fig5Point is one sample of a Fig. 5 RMSE curve.
type Fig5Point struct {
	System string // "priority", "cyclic", "graphmat"
	Epochs float64
	RMSE   float64
}

// Fig5 reproduces the CF convergence figure on the Netflix analog: RMSE
// versus iterations for GraphABCD priority, GraphABCD cyclic, and
// GraphMat. Paper's claim: GraphABCD reaches better RMSE in far fewer
// iterations (20 iters at RMSE 1.04 vs GraphMat's 60 at 1.34 on real
// Netflix), because its block size is much smaller than GraphMat's |V|;
// priority scheduling reduces RMSE ~10% faster than cyclic.
func Fig5(opt Options) ([]Fig5Point, error) {
	rg, err := opt.ratingGraph("NF")
	if err != nil {
		return nil, err
	}
	params := cfParams()
	budgets := []float64{1, 2, 4, 8, 12, 16, 20, 30, 45, 60}
	var pts []Fig5Point
	tab := metrics.NewTable(opt.out(), "system", "iters", "rmse")
	for _, policy := range []sched.Policy{sched.Priority, sched.Cyclic} {
		for _, b := range budgets {
			cfg := opt.engineConfig(defaultBlock(rg.Graph), core.Async, policy, false, 1e-9, b)
			res, err := core.Run[[]float32, []float64](rg.Graph, params, cfg)
			if err != nil {
				return nil, err
			}
			p := Fig5Point{System: policy.String(), Epochs: res.Stats.Epochs, RMSE: params.RMSE(rg.Graph, res.Values)}
			pts = append(pts, p)
			tab.Row(p.System, p.Epochs, p.RMSE)
		}
	}
	gmProg := graphmat.NewCF(graphmat.CF{Rank: params.Rank, LearnRate: params.LearnRate, Lambda: params.Lambda, Seed: params.Seed})
	for _, b := range budgets {
		res, err := graphmat.Run[[]float32, graphmat.CFMsg](rg.Graph, gmProg,
			graphmat.Config{Threads: opt.threads(), MaxIters: int(b)})
		if err != nil {
			return nil, err
		}
		p := Fig5Point{System: "graphmat", Epochs: float64(res.Stats.Iterations), RMSE: params.RMSE(rg.Graph, res.Values)}
		pts = append(pts, p)
		tab.Row(p.System, p.Epochs, p.RMSE)
	}
	return pts, tab.Flush()
}

// fmtErr keeps error formatting local without importing fmt twice.
func fmtErr(f string, args ...any) error { return &expError{msg: fmtf(f, args...)} }

type expError struct{ msg string }

func (e *expError) Error() string { return "exp: " + e.msg }

// geomeanRatio returns the geometric mean of num[i]/den[i].
func geomeanRatio(num, den []float64) float64 {
	r := make([]float64, 0, len(num))
	for i := range num {
		if den[i] > 0 {
			r = append(r, num[i]/den[i])
		}
	}
	return metrics.Geomean(r)
}
