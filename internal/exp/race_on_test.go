//go:build race

package exp

// raceDetectorEnabled reports whether this test binary was built with
// -race. The detector slows and serializes goroutines by an order of
// magnitude, which legitimately inflates bounded-staleness effects;
// timing-shape assertions consult this to stay meaningful.
const raceDetectorEnabled = true
