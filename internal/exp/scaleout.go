package exp

import (
	"context"

	"graphabcd/internal/bcd"
	"graphabcd/internal/cluster"
	"graphabcd/internal/metrics"
)

// ScaleOutRow is one point of the distributed scale-out study.
type ScaleOutRow struct {
	Nodes        int
	Epochs       float64
	MessagesSent int64
	BatchesSent  int64
	RemotePct    float64 // share of scatter writes that crossed nodes
	Converged    bool
}

// ScaleOut exercises the paper's title claim beyond its single-FPGA
// prototype: partition the blocks across 1..16 nodes exchanging
// state-based updates over message channels, and verify that the
// convergence rate is preserved as the system scales out (asynchronous
// BCD's bounded-delay guarantee, Sec. III-D). PageRank on the LJ analog.
//
// No artificial latency is injected here: on the scaled-down analogs a
// fixed wall-clock delay would correspond to tens of epochs of staleness
// (work per epoch shrinks with the graph, network latency does not), a
// scale artifact. Latency tolerance itself is verified separately in the
// cluster package's tests.
//
// The total worker budget is held constant (16 workers split across the
// nodes), so the sweep isolates the effect of *partitioning and
// messaging* on convergence: more total workers would also raise the
// re-processing rate per unit of propagated information, an orthogonal
// effect the block-size study (Fig. 4) already covers.
//
// Expected shape: crossing from one node to two pays a one-time
// convergence penalty (~2x epochs — remote updates are one message hop
// staler than direct stores), after which epochs stay flat from 2 to 16
// nodes: the penalty is bounded by the delay bound, not by the cluster
// size, which is exactly what asynchronous BCD guarantees. The remote
// share of scatter traffic rises toward (nodes-1)/nodes.
func ScaleOut(opt Options) ([]ScaleOutRow, error) {
	g, err := opt.socialGraph("LJ", false)
	if err != nil {
		return nil, err
	}
	const totalWorkers = 16
	var rows []ScaleOutRow
	tab := metrics.NewTable(opt.out(), "nodes", "epochs", "messages", "batches", "remote-writes", "converged")
	for _, nodes := range []int{1, 2, 4, 8, 16} {
		cfg := cluster.Config{
			Nodes:          nodes,
			BlockSize:      defaultBlock(g),
			WorkersPerNode: max(1, totalWorkers/nodes),
			Epsilon:        prEps(g),
			BatchSize:      64,
		}
		res, err := cluster.Run[float64, float64](context.Background(), g, bcd.PageRank{}, cfg)
		if err != nil {
			return nil, err
		}
		row := ScaleOutRow{
			Nodes:        nodes,
			Epochs:       res.Stats.Epochs,
			MessagesSent: res.Stats.MessagesSent,
			BatchesSent:  res.Stats.BatchesSent,
			Converged:    res.Stats.Converged,
		}
		if total := res.Stats.ScatterWrites; total > 0 {
			row.RemotePct = 100 * float64(res.Stats.MessagesSent) / float64(total)
		}
		rows = append(rows, row)
		tab.Row(nodes, row.Epochs, row.MessagesSent, row.BatchesSent, fmtf("%.1f%%", row.RemotePct), row.Converged)
	}
	return rows, tab.Flush()
}
