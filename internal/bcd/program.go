// Package bcd defines the Block Coordinate Descent view of iterative graph
// algorithms (Sec. III of the paper) and implements the paper's algorithm
// library: PageRank, SSSP, BFS, Connected Components, Label Propagation and
// Collaborative Filtering.
//
// Each algorithm is a Program in pull-push GAS form (Fig. 3c): the GATHER
// stage folds the cached source values stored on a vertex's in-edges into
// an accumulator, APPLY produces the new vertex value, and SCATTER copies
// the (possibly re-scaled) new value onto the vertex's out-edge slots.
// Programs carry no mutable state of their own, so one Program value can be
// shared by every engine worker.
package bcd

import (
	"graphabcd/internal/graph"
	"graphabcd/internal/word"
)

// Program defines one iterative graph algorithm over vertex values of type
// V with gather accumulators of type M. Implementations must be stateless
// (safe for concurrent use by many workers).
//
// Value ownership: the engine passes V arguments as scratch buffers that
// are only valid for the duration of the call; implementations must not
// retain them. Apply and ScatterValue may return freshly allocated values.
type Program[V, M any] interface {
	// Name identifies the algorithm in logs and reports.
	Name() string

	// Codec describes how vertex values (and the per-edge cached source
	// values, which share the type) are stored in atomic word arrays.
	Codec() word.Codec[V]

	// Init returns the initial value of vertex v.
	Init(v uint32, g *graph.Graph) V

	// InitEdge returns the initial cached value of the in-edge slot whose
	// source is src — normally the scatter image of Init(src).
	InitEdge(src uint32, g *graph.Graph) V

	// NewAccum allocates a gather accumulator initialized to the identity.
	NewAccum() M

	// ResetAccum restores *acc to the gather identity so the engine can
	// reuse one accumulator per worker.
	ResetAccum(acc *M)

	// EdgeGather folds one in-edge into the accumulator. dst is the
	// current value of the destination vertex, src the cached source
	// value stored on the edge slot, weight the static edge weight.
	EdgeGather(acc *M, dst V, weight float32, src V)

	// Apply computes the new value of vertex v from its old value and the
	// gathered accumulator. nEdges is the number of in-edges folded (0
	// means acc is still the identity).
	Apply(v uint32, old V, acc *M, nEdges int64, g *graph.Graph) V

	// ScatterValue converts a vertex value into the cached value written
	// to the vertex's out-edge slots (e.g. PageRank scales by 1/out-degree).
	ScatterValue(v uint32, val V, g *graph.Graph) V

	// Delta returns the scalar magnitude of a value change, the gradient
	// estimate driving the active list and Gauss-Southwell priorities
	// (Sec. IV-B). It must be 0 if and only if the update is a no-op.
	Delta(old, new V) float64
}
