package bcd

import (
	"sort"

	"graphabcd/internal/graph"
	"graphabcd/internal/word"
)

// KCore computes k-core decomposition (each vertex's coreness) by the
// distributed h-index fixpoint of Montresor et al.: every vertex starts at
// its degree and repeatedly lowers its estimate to the h-index of its
// neighbours' estimates (the largest h such that at least h neighbours
// claim estimate >= h). Estimates only decrease, so — like SSSP — the
// update is monotone and converges under arbitrary asynchrony, making it
// a natural extra workload for the GraphABCD engine beyond the paper's
// six algorithms.
//
// Run it on a symmetric graph (both edge directions present); coreness is
// an undirected notion.
type KCore struct{}

// KCoreAccum collects the neighbour estimates of one vertex.
type KCoreAccum struct{ ests []uint64 }

// Name implements Program.
func (KCore) Name() string { return "kcore" }

// Codec implements Program.
func (KCore) Codec() word.Codec[uint64] { return word.U64{} }

// Init implements Program: the in-degree (== degree on a symmetric graph)
// upper-bounds the coreness.
func (KCore) Init(v uint32, g *graph.Graph) uint64 { return uint64(g.InDegree(v)) }

// InitEdge implements Program.
func (k KCore) InitEdge(src uint32, g *graph.Graph) uint64 { return k.Init(src, g) }

// NewAccum implements Program.
func (KCore) NewAccum() KCoreAccum { return KCoreAccum{ests: make([]uint64, 0, 64)} }

// ResetAccum implements Program.
func (KCore) ResetAccum(acc *KCoreAccum) { acc.ests = acc.ests[:0] }

// EdgeGather implements Program.
func (KCore) EdgeGather(acc *KCoreAccum, _ uint64, _ float32, src uint64) {
	acc.ests = append(acc.ests, src) //abcdlint:ignore hotalloc,hotpath -- amortized: ResetAccum keeps the capacity across vertices
}

// Apply implements Program: min(old, h-index of the gathered estimates).
func (KCore) Apply(_ uint32, old uint64, acc *KCoreAccum, nEdges int64, _ *graph.Graph) uint64 {
	if nEdges == 0 {
		return 0 // an isolated vertex has coreness 0
	}
	ests := acc.ests
	sort.Slice(ests, func(a, b int) bool { return ests[a] > ests[b] })
	h := uint64(0)
	for i, e := range ests {
		if e >= uint64(i+1) {
			h = uint64(i + 1)
		} else {
			break
		}
	}
	if h < old {
		return h
	}
	return old
}

// ScatterValue implements Program.
func (KCore) ScatterValue(_ uint32, val uint64, _ *graph.Graph) uint64 { return val }

// Delta implements Program: estimates only decrease; each drop is mass.
func (KCore) Delta(old, new uint64) float64 {
	if new >= old {
		return 0
	}
	return float64(old - new)
}

// RefKCore computes exact core numbers by peeling (repeatedly removing the
// minimum-degree vertex), the standard O(|E|) reference algorithm. The
// graph must be symmetric.
func RefKCore(g *graph.Graph) []uint64 {
	n := g.NumVertices()
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = int(g.InDegree(uint32(v)))
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// Bucket sort vertices by degree for linear peeling.
	buckets := make([][]uint32, maxDeg+1)
	for v := 0; v < n; v++ {
		buckets[deg[v]] = append(buckets[deg[v]], uint32(v))
	}
	core := make([]uint64, n)
	removed := make([]bool, n)
	k := 0
	for d := 0; d <= maxDeg; d++ {
		queue := buckets[d]
		buckets[d] = nil
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			if removed[v] || deg[v] > d {
				// Stale entry: the vertex was re-bucketed at a lower
				// degree or already peeled.
				if !removed[v] && deg[v] > d {
					buckets[deg[v]] = append(buckets[deg[v]], v)
				}
				continue
			}
			if deg[v] > k {
				k = deg[v]
			}
			core[v] = uint64(k)
			removed[v] = true
			for i := g.OutOffset(int(v)); i < g.OutOffset(int(v)+1); i++ {
				u := g.OutDst(i)
				if !removed[u] {
					deg[u]--
					if deg[u] <= d {
						queue = append(queue, u)
					} else {
						buckets[deg[u]] = append(buckets[deg[u]], u)
					}
				}
			}
		}
	}
	return core
}
