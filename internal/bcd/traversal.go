package bcd

import (
	"math"

	"graphabcd/internal/graph"
	"graphabcd/internal/word"
)

// Unreached marks a vertex not yet touched by BFS / CC label propagation.
const Unreached = math.MaxUint64

// BFS computes breadth-first levels from a source vertex as min-plus BCD
// over unit weights. Like SSSP, the update is monotone, so it tolerates
// arbitrary asynchrony.
type BFS struct {
	// Source is the root vertex (level 0).
	Source uint32
}

// Name implements Program.
func (BFS) Name() string { return "bfs" }

// Codec implements Program.
func (BFS) Codec() word.Codec[uint64] { return word.U64{} }

// Init implements Program.
func (b BFS) Init(v uint32, _ *graph.Graph) uint64 {
	if v == b.Source {
		return 0
	}
	return Unreached
}

// InitEdge implements Program.
func (b BFS) InitEdge(src uint32, g *graph.Graph) uint64 { return b.Init(src, g) }

// NewAccum implements Program.
func (BFS) NewAccum() uint64 { return Unreached }

// ResetAccum implements Program.
func (BFS) ResetAccum(acc *uint64) { *acc = Unreached }

// EdgeGather implements Program.
func (BFS) EdgeGather(acc *uint64, _ uint64, _ float32, src uint64) {
	if src != Unreached && src+1 < *acc {
		*acc = src + 1
	}
}

// Apply implements Program.
func (BFS) Apply(_ uint32, old uint64, acc *uint64, _ int64, _ *graph.Graph) uint64 {
	if *acc < old {
		return *acc
	}
	return old
}

// ScatterValue implements Program.
func (BFS) ScatterValue(_ uint32, val uint64, _ *graph.Graph) uint64 { return val }

// Delta implements Program: shallower levels carry more gradient mass so
// the priority scheduler expands the frontier closest to the root first.
func (BFS) Delta(old, new uint64) float64 {
	if new >= old {
		return 0
	}
	return 1 / (1 + float64(new))
}

// CC computes connected components by minimum-label propagation. On a
// directed graph it yields the components of the *directed reachability*
// closure along edges; build a symmetric graph (both edge directions) for
// undirected connected components.
type CC struct{}

// Name implements Program.
func (CC) Name() string { return "cc" }

// Codec implements Program.
func (CC) Codec() word.Codec[uint64] { return word.U64{} }

// Init implements Program: every vertex starts in its own component.
func (CC) Init(v uint32, _ *graph.Graph) uint64 { return uint64(v) }

// InitEdge implements Program.
func (c CC) InitEdge(src uint32, g *graph.Graph) uint64 { return c.Init(src, g) }

// NewAccum implements Program.
func (CC) NewAccum() uint64 { return Unreached }

// ResetAccum implements Program.
func (CC) ResetAccum(acc *uint64) { *acc = Unreached }

// EdgeGather implements Program.
func (CC) EdgeGather(acc *uint64, _ uint64, _ float32, src uint64) {
	if src < *acc {
		*acc = src
	}
}

// Apply implements Program.
func (CC) Apply(_ uint32, old uint64, acc *uint64, _ int64, _ *graph.Graph) uint64 {
	if *acc < old {
		return *acc
	}
	return old
}

// ScatterValue implements Program.
func (CC) ScatterValue(_ uint32, val uint64, _ *graph.Graph) uint64 { return val }

// Delta implements Program: any label decrease is one unit of mass.
func (CC) Delta(old, new uint64) float64 {
	if new < old {
		return 1
	}
	return 0
}
