package bcd

import (
	"math"

	"graphabcd/internal/graph"
	"graphabcd/internal/word"
)

// OpBased marks an operation-based program (Sec. IV-A3): instead of
// copying the updated vertex *value* onto out-edges (state-based), SCATTER
// sends the value *change*, which destinations must accumulate exactly
// once. Correctness under asynchrony therefore requires read-modify-write
// edge slots: the engine atomically adds outgoing deltas into slots
// (AccumulateDelta) and atomically swaps slots to ZeroDelta when GATHER
// consumes them. This is precisely the extra synchronization the paper
// avoids by choosing state-based updates; the implementation exists to
// make that trade-off measurable (see the core engine's ablation tests).
//
// Operation-based programs are restricted to single-word codecs, where a
// compare-and-swap covers the whole value.
type OpBased[V, M any] interface {
	Program[V, M]
	// ZeroDelta is the slot value meaning "no pending update".
	ZeroDelta() V
	// AccumulateDelta merges a newly scattered delta into a slot's
	// pending value. Must be commutative and associative.
	AccumulateDelta(pending, delta V) V
	// OutDelta converts a vertex's value change into the delta scattered
	// to its out-edges (e.g. PageRank-Delta scales by damping/outdeg).
	OutDelta(v uint32, old, new V, g *graph.Graph) V
}

// PageRankDelta is the operation-based variant of PageRank the paper uses
// as its state-vs-operation example: edges carry rank *changes*, each
// vertex accumulates incoming changes into its rank, and scatters its own
// change scaled by damping/outdeg. The fixpoint is identical to PageRank.
type PageRankDelta struct {
	// Damping is the damping factor; zero value means 0.85.
	Damping float64
}

func (p PageRankDelta) damping() float64 {
	if p.Damping == 0 {
		return 0.85
	}
	return p.Damping
}

// Name implements Program.
func (PageRankDelta) Name() string { return "pagerank-delta" }

// Codec implements Program.
func (PageRankDelta) Codec() word.Codec[float64] { return word.F64{} }

// Init implements Program: ranks start at the teleport mass; incoming
// deltas accumulate the damped contributions on top.
func (p PageRankDelta) Init(_ uint32, g *graph.Graph) float64 {
	return (1 - p.damping()) / float64(g.NumVertices())
}

// InitEdge implements Program: the initial pending delta is the first
// iteration's contribution from the source's initial rank.
func (p PageRankDelta) InitEdge(src uint32, g *graph.Graph) float64 {
	return p.OutDelta(src, 0, p.Init(src, g), g)
}

// NewAccum implements Program.
func (PageRankDelta) NewAccum() float64 { return 0 }

// ResetAccum implements Program.
func (PageRankDelta) ResetAccum(acc *float64) { *acc = 0 }

// EdgeGather implements Program: sum the consumed pending deltas.
func (PageRankDelta) EdgeGather(acc *float64, _ float64, _ float32, src float64) {
	*acc += src
}

// Apply implements Program: fold the accumulated incoming change into the
// rank.
func (PageRankDelta) Apply(_ uint32, old float64, acc *float64, _ int64, _ *graph.Graph) float64 {
	return old + *acc
}

// ScatterValue implements Program. Unused by the operation-based engine
// path (OutDelta is used instead) but required by the interface; returns
// the value unchanged so a state-based engine run is well-defined (and
// wrong — see the ablation test).
func (PageRankDelta) ScatterValue(_ uint32, val float64, _ *graph.Graph) float64 { return val }

// Delta implements Program.
func (PageRankDelta) Delta(old, new float64) float64 { return math.Abs(new - old) }

// ZeroDelta implements OpBased.
func (PageRankDelta) ZeroDelta() float64 { return 0 }

// AccumulateDelta implements OpBased.
func (PageRankDelta) AccumulateDelta(pending, delta float64) float64 { return pending + delta }

// OutDelta implements OpBased: damping * change / outdeg.
func (p PageRankDelta) OutDelta(v uint32, old, new float64, g *graph.Graph) float64 {
	if deg := g.OutDegree(v); deg > 0 {
		return p.damping() * (new - old) / float64(deg)
	}
	return 0
}

var _ OpBased[float64, float64] = PageRankDelta{}
