package bcd

import (
	"math"

	"graphabcd/internal/graph"
	"graphabcd/internal/word"
)

// PageRank is the paper's running example (Sec. III-A2): the stationary
// point of x = Px + b with P = d*(G^-1 A)^T and b = (1-d)/|V|, solved by
// coordinate descent on F(x) = ||Px + b - x||^2 / 2.
//
// Edge caches hold the scatter image x_src / outdeg(src), so GATHER is a
// plain streaming sum — exactly the reduction the paper's FPGA pipeline
// implements.
type PageRank struct {
	// Damping is the damping factor d (paper: alpha). Zero value means 0.85.
	Damping float64
}

func (p PageRank) damping() float64 {
	if p.Damping == 0 {
		return 0.85
	}
	return p.Damping
}

// Name implements Program.
func (PageRank) Name() string { return "pagerank" }

// Codec implements Program.
func (PageRank) Codec() word.Codec[float64] { return word.F64{} }

// Init implements Program: uniform initial rank 1/|V|.
func (PageRank) Init(_ uint32, g *graph.Graph) float64 {
	return 1 / float64(g.NumVertices())
}

// InitEdge implements Program.
func (p PageRank) InitEdge(src uint32, g *graph.Graph) float64 {
	return p.ScatterValue(src, p.Init(src, g), g)
}

// NewAccum implements Program.
func (PageRank) NewAccum() float64 { return 0 }

// ResetAccum implements Program.
func (PageRank) ResetAccum(acc *float64) { *acc = 0 }

// EdgeGather implements Program: sum of cached src/outdeg contributions.
func (PageRank) EdgeGather(acc *float64, _ float64, _ float32, src float64) {
	*acc += src
}

// Apply implements Program.
func (p PageRank) Apply(_ uint32, _ float64, acc *float64, _ int64, g *graph.Graph) float64 {
	d := p.damping()
	return (1-d)/float64(g.NumVertices()) + d**acc
}

// ScatterValue implements Program: out-edges carry val / outdeg.
func (PageRank) ScatterValue(v uint32, val float64, g *graph.Graph) float64 {
	if deg := g.OutDegree(v); deg > 0 {
		return val / float64(deg)
	}
	return val // dangling vertex: no out-edges exist, value unused
}

// Delta implements Program.
func (PageRank) Delta(old, new float64) float64 { return math.Abs(new - old) }

// L1Residual returns sum_v |x_v - nextIteration(x)_v| for a full Jacobi
// sweep — the standard PageRank convergence metric, used by tests and the
// experiment harness to compare engines at equal accuracy.
func (p PageRank) L1Residual(g *graph.Graph, x []float64) float64 {
	d := p.damping()
	n := g.NumVertices()
	res := 0.0
	for v := 0; v < n; v++ {
		sum := 0.0
		for s := g.InOffset(v); s < g.InOffset(v+1); s++ {
			src := g.InSrc(s)
			sum += x[src] / float64(g.OutDegree(src))
		}
		next := (1-d)/float64(n) + d*sum
		res += math.Abs(next - x[v])
	}
	return res
}
