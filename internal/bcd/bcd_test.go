package bcd

import (
	"math"
	"testing"

	"graphabcd/internal/gen"
	"graphabcd/internal/graph"
)

// E builds an edge literal tersely for tests.
func E(src, dst uint32, w float32) graph.Edge {
	return graph.Edge{Src: src, Dst: dst, Weight: w}
}

func mustGraph(t *testing.T, n int, edges []graph.Edge) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// cycle4 is 0->1->2->3->0.
func cycle4(t *testing.T) *graph.Graph {
	t.Helper()
	return mustGraph(t, 4, []graph.Edge{E(0, 1, 1), E(1, 2, 1), E(2, 3, 1), E(3, 0, 1)})
}

func TestPageRankDefaults(t *testing.T) {
	p := PageRank{}
	if p.damping() != 0.85 {
		t.Fatalf("default damping = %g", p.damping())
	}
	if (PageRank{Damping: 0.5}).damping() != 0.5 {
		t.Fatal("explicit damping ignored")
	}
	if p.Name() != "pagerank" || p.Codec().Words() != 1 {
		t.Fatal("identity wrong")
	}
}

func TestPageRankStepOnCycle(t *testing.T) {
	g := cycle4(t)
	p := PageRank{}
	// Uniform rank on a cycle is the stationary point: apply must be a
	// fixed point.
	old := p.Init(0, g)
	acc := p.NewAccum()
	p.ResetAccum(&acc)
	p.EdgeGather(&acc, old, 1, p.InitEdge(3, g))
	got := p.Apply(0, old, &acc, 1, g)
	if math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("Apply on stationary cycle = %g, want 0.25", got)
	}
	if p.Delta(old, got) > 1e-12 {
		t.Fatal("Delta at fixed point should be ~0")
	}
}

func TestPageRankScatterScaling(t *testing.T) {
	g := mustGraph(t, 3, []graph.Edge{E(0, 1, 1), E(0, 2, 1)})
	p := PageRank{}
	if got := p.ScatterValue(0, 0.6, g); got != 0.3 {
		t.Fatalf("ScatterValue = %g, want 0.3", got)
	}
	// Dangling vertex: value returned unscaled (never read).
	if got := p.ScatterValue(1, 0.6, g); got != 0.6 {
		t.Fatalf("dangling ScatterValue = %g", got)
	}
}

func TestPageRankL1ResidualAtSolution(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(7, 4, 11))
	if err != nil {
		t.Fatal(err)
	}
	p := PageRank{}
	x := RefPageRank(g, 0.85, 1e-12, 500)
	if res := p.L1Residual(g, x); res > 1e-9 {
		t.Fatalf("residual at converged solution = %g", res)
	}
	// Residual at the uniform start must be positive on a skewed graph.
	x0 := make([]float64, g.NumVertices())
	for i := range x0 {
		x0[i] = 1 / float64(g.NumVertices())
	}
	if res := p.L1Residual(g, x0); res <= 0 {
		t.Fatalf("residual at start = %g, want > 0", res)
	}
}

func TestSSSPGatherApply(t *testing.T) {
	g := cycle4(t)
	s := SSSP{Source: 0}
	if s.Init(0, g) != 0 || !math.IsInf(s.Init(1, g), 1) {
		t.Fatal("Init wrong")
	}
	acc := s.NewAccum()
	s.ResetAccum(&acc)
	s.EdgeGather(&acc, math.Inf(1), 2.5, 1.0) // src dist 1, weight 2.5
	s.EdgeGather(&acc, math.Inf(1), 9, 0.5)
	if acc != 3.5 {
		t.Fatalf("gather min = %g, want 3.5", acc)
	}
	if got := s.Apply(2, 3.0, &acc, 2, g); got != 3.0 {
		t.Fatalf("Apply must keep smaller old value, got %g", got)
	}
	if got := s.Apply(2, 10.0, &acc, 2, g); got != 3.5 {
		t.Fatalf("Apply = %g, want 3.5", got)
	}
}

func TestSSSPDelta(t *testing.T) {
	s := SSSP{}
	if s.Delta(5, 5) != 0 || s.Delta(5, 6) != 0 {
		t.Fatal("non-improving delta must be 0")
	}
	if s.Delta(math.Inf(1), 4) <= 0 {
		t.Fatal("frontier expansion must carry positive mass")
	}
	// Nearer vertices carry more mass (delta-stepping flavour).
	if s.Delta(math.Inf(1), 1) <= s.Delta(math.Inf(1), 10) {
		t.Fatal("near-source mass should exceed far mass")
	}
	if s.Delta(10, 9) <= 0 {
		t.Fatal("finite improvement must be positive")
	}
}

func TestBFSProgram(t *testing.T) {
	g := cycle4(t)
	b := BFS{Source: 2}
	if b.Init(2, g) != 0 || b.Init(0, g) != Unreached {
		t.Fatal("Init wrong")
	}
	acc := b.NewAccum()
	b.ResetAccum(&acc)
	b.EdgeGather(&acc, Unreached, 1, Unreached) // unreached src ignored
	if acc != Unreached {
		t.Fatal("unreached source must not relax")
	}
	b.EdgeGather(&acc, Unreached, 1, 3)
	if acc != 4 {
		t.Fatalf("gather = %d, want 4", acc)
	}
	if got := b.Apply(0, Unreached, &acc, 1, g); got != 4 {
		t.Fatalf("Apply = %d", got)
	}
	if b.Delta(Unreached, 4) <= 0 || b.Delta(4, 4) != 0 {
		t.Fatal("Delta wrong")
	}
	if b.Delta(Unreached, 0) <= b.Delta(Unreached, 5) {
		t.Fatal("shallow levels should carry more mass")
	}
}

func TestCCProgram(t *testing.T) {
	g := cycle4(t)
	c := CC{}
	if c.Init(3, g) != 3 {
		t.Fatal("Init wrong")
	}
	acc := c.NewAccum()
	c.ResetAccum(&acc)
	c.EdgeGather(&acc, 3, 1, 7)
	c.EdgeGather(&acc, 3, 1, 2)
	if acc != 2 {
		t.Fatalf("gather min = %d", acc)
	}
	if got := c.Apply(3, 3, &acc, 2, g); got != 2 {
		t.Fatalf("Apply = %d", got)
	}
	if c.Delta(3, 2) != 1 || c.Delta(2, 2) != 0 {
		t.Fatal("Delta wrong")
	}
}

func TestLabelPropMajority(t *testing.T) {
	g := cycle4(t)
	l := LabelProp{}
	acc := l.NewAccum()
	l.ResetAccum(&acc)
	l.EdgeGather(&acc, 9, 1.0, 5)
	l.EdgeGather(&acc, 9, 2.0, 7)
	l.EdgeGather(&acc, 9, 0.5, 5)
	// 7 has weight 2.0, 5 has 1.5.
	if got := l.Apply(0, 9, &acc, 3, g); got != 7 {
		t.Fatalf("majority label = %d, want 7", got)
	}
	// Tie breaks toward smaller label.
	l.ResetAccum(&acc)
	l.EdgeGather(&acc, 9, 1.0, 8)
	l.EdgeGather(&acc, 9, 1.0, 3)
	if got := l.Apply(0, 9, &acc, 2, g); got != 3 {
		t.Fatalf("tie-break label = %d, want 3", got)
	}
	// No votes: keep old label.
	l.ResetAccum(&acc)
	if got := l.Apply(0, 9, &acc, 0, g); got != 9 {
		t.Fatalf("isolated vertex label = %d, want 9", got)
	}
	if l.Delta(9, 7) != 1 || l.Delta(7, 7) != 0 {
		t.Fatal("Delta wrong")
	}
}

func TestCFDefaultsAndInitDeterminism(t *testing.T) {
	c := CF{}
	if c.rank() != 8 || c.learnRate() != 0.2 || c.lambda() != 0.01 {
		t.Fatal("defaults wrong")
	}
	g := cycle4(t)
	a := c.Init(3, g)
	b := c.Init(3, g)
	if len(a) != 8 {
		t.Fatalf("rank = %d", len(a))
	}
	for k := range a {
		if a[k] != b[k] {
			t.Fatal("Init not deterministic")
		}
		if math.Abs(float64(a[k])) > 1/math.Sqrt(8)+1e-6 {
			t.Fatalf("init lane %d = %g outside scale", k, a[k])
		}
	}
	d := c.Init(4, g)
	same := true
	for k := range a {
		if a[k] != d[k] {
			same = false
		}
	}
	if same {
		t.Fatal("different vertices got identical factors")
	}
}

func TestCFGradientStepReducesError(t *testing.T) {
	// One user (vertex 0), one item (vertex 1), rating 4. Repeated
	// alternating updates must drive the predicted rating toward 4.
	g := mustGraph(t, 2, []graph.Edge{E(0, 1, 4), E(1, 0, 4)})
	c := CF{Rank: 4, LearnRate: 0.5, Lambda: 0.001}
	x := [][]float32{c.Init(0, g), c.Init(1, g)}
	pred := func() float64 {
		dot := 0.0
		for k := range x[0] {
			dot += float64(x[0][k]) * float64(x[1][k])
		}
		return dot
	}
	update := func(v, other int) {
		acc := c.NewAccum()
		c.ResetAccum(&acc)
		c.EdgeGather(&acc, x[v], 4, x[other])
		x[v] = c.Apply(uint32(v), x[v], &acc, 1, g)
	}
	before := math.Abs(4 - pred())
	for i := 0; i < 200; i++ {
		update(0, 1)
		update(1, 0)
	}
	after := math.Abs(4 - pred())
	if after > before/10 || after > 0.5 {
		t.Fatalf("error %g -> %g: gradient steps did not converge", before, after)
	}
}

func TestCFApplyZeroEdgesKeepsValue(t *testing.T) {
	g := cycle4(t)
	c := CF{Rank: 2}
	old := []float32{1, 2}
	acc := c.NewAccum()
	got := c.Apply(0, old, &acc, 0, g)
	if got[0] != 1 || got[1] != 2 {
		t.Fatalf("Apply(0 edges) = %v", got)
	}
	got[0] = 99 // must be a copy, not an alias of old
	if old[0] != 1 {
		t.Fatal("Apply aliased its input")
	}
}

func TestCFDeltaAndRMSE(t *testing.T) {
	c := CF{Rank: 2}
	if d := c.Delta([]float32{1, 1}, []float32{2, 0.5}); math.Abs(d-1.5) > 1e-9 {
		t.Fatalf("Delta = %g", d)
	}
	// RMSE with perfect factors is 0.
	g := mustGraph(t, 2, []graph.Edge{E(0, 1, 2), E(1, 0, 2)})
	x := [][]float32{{1, 1}, {1, 1}} // dot = 2 = rating
	if r := c.RMSE(g, x); r != 0 {
		t.Fatalf("RMSE at exact factors = %g", r)
	}
	x[1] = []float32{0, 0} // prediction 0, err 2 on both edges
	if r := c.RMSE(g, x); math.Abs(r-2) > 1e-9 {
		t.Fatalf("RMSE = %g, want 2", r)
	}
	empty := mustGraph(t, 1, nil)
	if r := c.RMSE(empty, [][]float32{{0, 0}}); r != 0 {
		t.Fatalf("RMSE on empty graph = %g", r)
	}
}

func TestRefSSSPAgainstHand(t *testing.T) {
	//     0 -1-> 1 -1-> 2
	//      \--------3-----^  (0->2 weight 3)
	g := mustGraph(t, 3, []graph.Edge{E(0, 1, 1), E(1, 2, 1), E(0, 2, 3)})
	d := RefSSSP(g, 0)
	want := []float64{0, 1, 2}
	for v := range want {
		if d[v] != want[v] {
			t.Fatalf("dist[%d] = %g, want %g", v, d[v], want[v])
		}
	}
	d = RefSSSP(g, 2)
	if d[2] != 0 || !math.IsInf(d[0], 1) || !math.IsInf(d[1], 1) {
		t.Fatal("unreachable distances wrong")
	}
}

func TestRefBFSAndCC(t *testing.T) {
	g := mustGraph(t, 5, []graph.Edge{E(0, 1, 1), E(1, 2, 1), E(0, 3, 1)})
	lv := RefBFS(g, 0)
	want := []uint64{0, 1, 2, 1, Unreached}
	for v := range want {
		if lv[v] != want[v] {
			t.Fatalf("level[%d] = %d, want %d", v, lv[v], want[v])
		}
	}
	// Symmetric two-component graph for CC.
	g2 := mustGraph(t, 5, []graph.Edge{
		E(0, 1, 1), E(1, 0, 1), E(1, 2, 1), E(2, 1, 1), E(3, 4, 1), E(4, 3, 1),
	})
	cc := RefCC(g2)
	if cc[0] != 0 || cc[1] != 0 || cc[2] != 0 || cc[3] != 3 || cc[4] != 3 {
		t.Fatalf("components = %v", cc)
	}
}

func TestRefPageRankSumsToOne(t *testing.T) {
	// On a graph with no dangling vertices, ranks must sum to 1.
	g := cycle4(t)
	x := RefPageRank(g, 0.85, 1e-14, 200)
	sum := 0.0
	for _, v := range x {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("ranks sum to %g", sum)
	}
	// Cycle symmetry: all equal.
	for v := 1; v < 4; v++ {
		if math.Abs(x[v]-x[0]) > 1e-12 {
			t.Fatalf("cycle ranks differ: %v", x)
		}
	}
}
