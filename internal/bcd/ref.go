package bcd

import (
	"container/heap"
	"math"

	"graphabcd/internal/graph"
)

// This file holds straightforward reference implementations used by tests
// and the experiment harness to validate every engine's output. They favour
// clarity over speed.

// RefPageRank runs Jacobi power iteration until the L1 residual drops
// below eps (or maxIters sweeps) and returns the rank vector.
func RefPageRank(g *graph.Graph, damping, eps float64, maxIters int) []float64 {
	n := g.NumVertices()
	x := make([]float64, n)
	next := make([]float64, n)
	for v := range x {
		x[v] = 1 / float64(n)
	}
	for it := 0; it < maxIters; it++ {
		res := 0.0
		for v := 0; v < n; v++ {
			sum := 0.0
			for s := g.InOffset(v); s < g.InOffset(v+1); s++ {
				src := g.InSrc(s)
				sum += x[src] / float64(g.OutDegree(src))
			}
			next[v] = (1-damping)/float64(n) + damping*sum
			res += math.Abs(next[v] - x[v])
		}
		x, next = next, x
		if res < eps {
			break
		}
	}
	return x
}

// RefSSSP computes exact shortest-path distances with Dijkstra's algorithm.
func RefSSSP(g *graph.Graph, source uint32) []float64 {
	n := g.NumVertices()
	dist := make([]float64, n)
	for v := range dist {
		dist[v] = math.Inf(1)
	}
	if int(source) >= n {
		return dist
	}
	dist[source] = 0
	pq := &distHeap{{v: source, d: 0}}
	for pq.Len() > 0 {
		top := heap.Pop(pq).(distEntry)
		if top.d > dist[top.v] {
			continue
		}
		for i := g.OutOffset(int(top.v)); i < g.OutOffset(int(top.v)+1); i++ {
			u := g.OutDst(i)
			slot := g.OutPos(i)
			if nd := top.d + float64(g.InWeight(slot)); nd < dist[u] {
				dist[u] = nd
				heap.Push(pq, distEntry{v: u, d: nd})
			}
		}
	}
	return dist
}

type distEntry struct {
	v uint32
	d float64
}

type distHeap []distEntry

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distEntry)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// RefBFS computes breadth-first levels from source; Unreached for
// unreachable vertices.
func RefBFS(g *graph.Graph, source uint32) []uint64 {
	n := g.NumVertices()
	level := make([]uint64, n)
	for v := range level {
		level[v] = Unreached
	}
	if int(source) >= n {
		return level
	}
	level[source] = 0
	queue := []uint32{source}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for i := g.OutOffset(int(v)); i < g.OutOffset(int(v)+1); i++ {
			u := g.OutDst(i)
			if level[u] == Unreached {
				level[u] = level[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return level
}

// RefCC computes the fixpoint of directed min-label propagation (labels
// flow along edge direction), matching the CC program's semantics. On a
// symmetric graph this is undirected connected components.
func RefCC(g *graph.Graph) []uint64 {
	n := g.NumVertices()
	label := make([]uint64, n)
	for v := range label {
		label[v] = uint64(v)
	}
	for changed := true; changed; {
		changed = false
		for v := 0; v < n; v++ {
			for s := g.InOffset(v); s < g.InOffset(v+1); s++ {
				if l := label[g.InSrc(s)]; l < label[v] {
					label[v] = l
					changed = true
				}
			}
		}
	}
	return label
}
