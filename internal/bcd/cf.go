package bcd

import (
	"math"

	"graphabcd/internal/graph"
	"graphabcd/internal/word"
)

// CF is Collaborative Filtering by low-rank matrix factorization
// (Sec. III-A1): minimize sum over ratings (r_ij - x_i . x_j)^2 plus L2
// regularization. Vertex values are rank-K feature vectors; the bipartite
// graph carries each rating on both edge directions so users and items
// take symmetric gradient steps.
//
// The per-vertex update is the block gradient step of the paper,
// x_i <- x_i + lr * (mean over ratings of err_ij * x_j - lambda * x_i),
// with the gather normalized by degree so that the step size is stable
// across the skewed popularity distribution of real rating data.
type CF struct {
	// Rank is the factor dimension K. Zero value means 8.
	Rank int
	// LearnRate is the gradient step size. Zero value means 0.2.
	LearnRate float64
	// Lambda is the L2 regularization weight. Zero value means 0.01.
	Lambda float64
	// Seed perturbs the deterministic factor initialization.
	Seed uint64
}

func (c CF) rank() int {
	if c.Rank == 0 {
		return 8
	}
	return c.Rank
}

func (c CF) learnRate() float64 {
	if c.LearnRate == 0 {
		return 0.2
	}
	return c.LearnRate
}

func (c CF) lambda() float64 {
	if c.Lambda == 0 {
		return 0.01
	}
	return c.Lambda
}

// Name implements Program.
func (CF) Name() string { return "cf" }

// Codec implements Program.
func (c CF) Codec() word.Codec[[]float32] { return word.Vec32{Dim: c.rank()} }

// Init implements Program: a deterministic pseudo-random vector with
// entries in [-1/sqrt(K), 1/sqrt(K)], derived from (Seed, v, lane) so
// every engine and baseline starts from identical factors.
func (c CF) Init(v uint32, _ *graph.Graph) []float32 {
	k := c.rank()
	scale := 1 / math.Sqrt(float64(k))
	vec := make([]float32, k)
	state := c.Seed ^ (uint64(v)+1)*0x9e3779b97f4a7c15
	for lane := range vec {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		u := float64(z>>11)/float64(1<<53) - 0.5
		vec[lane] = float32(2 * u * scale)
	}
	return vec
}

// InitEdge implements Program.
func (c CF) InitEdge(src uint32, g *graph.Graph) []float32 { return c.Init(src, g) }

// NewAccum implements Program.
func (c CF) NewAccum() []float64 { return make([]float64, c.rank()) }

// ResetAccum implements Program.
func (CF) ResetAccum(acc *[]float64) {
	for i := range *acc {
		(*acc)[i] = 0
	}
}

// EdgeGather implements Program: accumulate err * x_src.
func (CF) EdgeGather(acc *[]float64, dst []float32, weight float32, src []float32) {
	dot := 0.0
	for k := range dst {
		dot += float64(dst[k]) * float64(src[k])
	}
	err := float64(weight) - dot
	a := *acc
	for k := range a {
		a[k] += err * float64(src[k])
	}
}

// Apply implements Program.
func (c CF) Apply(_ uint32, old []float32, acc *[]float64, nEdges int64, _ *graph.Graph) []float32 {
	if nEdges == 0 {
		//abcdlint:ignore hotalloc,hotpath -- Apply must return a fresh slice: the engine still reads old to compute Delta
		return append([]float32(nil), old...)
	}
	lr, lam := c.learnRate(), c.lambda()
	inv := 1 / float64(nEdges)
	//abcdlint:ignore hotalloc,hotpath -- fresh per-vertex value; the engine still reads old to compute Delta
	out := make([]float32, len(old))
	for k := range old {
		out[k] = float32(float64(old[k]) + lr*((*acc)[k]*inv-lam*float64(old[k])))
	}
	return out
}

// ScatterValue implements Program.
func (CF) ScatterValue(_ uint32, val []float32, _ *graph.Graph) []float32 { return val }

// Delta implements Program: L1 norm of the factor change.
func (CF) Delta(old, new []float32) float64 {
	d := 0.0
	for k := range old {
		d += math.Abs(float64(new[k]) - float64(old[k]))
	}
	return d
}

// RMSE returns the root-mean-square rating error of the factors x over all
// edges of g — the paper's Fig. 5 convergence metric. Each rating appears
// on both edge directions, which leaves the RMSE unchanged.
func (CF) RMSE(g *graph.Graph, x [][]float32) float64 {
	if g.NumEdges() == 0 {
		return 0
	}
	sum := 0.0
	for v := 0; v < g.NumVertices(); v++ {
		xv := x[v]
		for s := g.InOffset(v); s < g.InOffset(v+1); s++ {
			xs := x[g.InSrc(s)]
			dot := 0.0
			for k := range xv {
				dot += float64(xv[k]) * float64(xs[k])
			}
			err := float64(g.InWeight(s)) - dot
			sum += err * err
		}
	}
	return math.Sqrt(sum / float64(g.NumEdges()))
}
