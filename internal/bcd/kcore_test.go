package bcd

import (
	"testing"

	"graphabcd/internal/gen"
	"graphabcd/internal/graph"
)

// simpleSymmetric builds a simple (no self-loops, no duplicates) symmetric
// graph from an R-MAT sample — the domain where coreness is defined.
func simpleSymmetric(t *testing.T, scale, ef int, seed uint64) *graph.Graph {
	t.Helper()
	base, err := gen.RMAT(gen.DefaultRMAT(scale, ef, seed))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[[2]uint32]bool{}
	var edges []graph.Edge
	for _, e := range base.Edges() {
		a, b := e.Src, e.Dst
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		if seen[[2]uint32{a, b}] {
			continue
		}
		seen[[2]uint32{a, b}] = true
		edges = append(edges,
			graph.Edge{Src: a, Dst: b, Weight: 1},
			graph.Edge{Src: b, Dst: a, Weight: 1})
	}
	g, err := graph.FromEdges(base.NumVertices(), edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestKCoreProgramBasics(t *testing.T) {
	// Triangle + pendant: triangle vertices have coreness 2, pendant 1.
	g := mustGraph(t, 4, []graph.Edge{
		E(0, 1, 1), E(1, 0, 1), E(1, 2, 1), E(2, 1, 1),
		E(0, 2, 1), E(2, 0, 1), E(2, 3, 1), E(3, 2, 1),
	})
	k := KCore{}
	if k.Init(2, g) != 3 { // degree of the triangle vertex with the pendant
		t.Fatalf("Init = %d", k.Init(2, g))
	}
	acc := k.NewAccum()
	k.ResetAccum(&acc)
	// Vertex 2's neighbours claim estimates 2, 2, 1 -> h-index 2.
	k.EdgeGather(&acc, 3, 1, 2)
	k.EdgeGather(&acc, 3, 1, 2)
	k.EdgeGather(&acc, 3, 1, 1)
	if got := k.Apply(2, 3, &acc, 3, g); got != 2 {
		t.Fatalf("Apply = %d, want h-index 2", got)
	}
	// Apply never raises an estimate.
	k.ResetAccum(&acc)
	k.EdgeGather(&acc, 1, 1, 9)
	k.EdgeGather(&acc, 1, 1, 9)
	if got := k.Apply(0, 1, &acc, 2, g); got != 1 {
		t.Fatalf("Apply raised the estimate to %d", got)
	}
	// Isolated vertex: coreness 0.
	if got := k.Apply(0, 5, &acc, 0, g); got != 0 {
		t.Fatalf("isolated vertex coreness = %d", got)
	}
	if k.Delta(3, 2) != 1 || k.Delta(2, 2) != 0 || k.Delta(2, 3) != 0 {
		t.Fatal("Delta wrong")
	}
}

func TestRefKCoreHandGraph(t *testing.T) {
	// A 4-clique with a tail: clique coreness 3, tail 1.
	var edges []graph.Edge
	for a := uint32(0); a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			edges = append(edges, E(a, b, 1), E(b, a, 1))
		}
	}
	edges = append(edges, E(3, 4, 1), E(4, 3, 1), E(4, 5, 1), E(5, 4, 1))
	g := mustGraph(t, 6, edges)
	core := RefKCore(g)
	want := []uint64{3, 3, 3, 3, 1, 1}
	for v := range want {
		if core[v] != want[v] {
			t.Fatalf("core[%d] = %d, want %d (all %v)", v, core[v], want[v], core)
		}
	}
}

// The h-index fixpoint equals exact peeling on a realistic graph. The
// fixpoint is computed synchronously here; the engine integration test in
// core exercises the asynchronous path.
func TestKCoreFixpointMatchesPeeling(t *testing.T) {
	g := simpleSymmetric(t, 8, 4, 13)
	want := RefKCore(g)
	k := KCore{}
	n := g.NumVertices()
	est := make([]uint64, n)
	for v := range est {
		est[v] = k.Init(uint32(v), g)
	}
	for changed := true; changed; {
		changed = false
		for v := 0; v < n; v++ {
			acc := k.NewAccum()
			for s := g.InOffset(v); s < g.InOffset(v+1); s++ {
				k.EdgeGather(&acc, est[v], 1, est[g.InSrc(s)])
			}
			nv := k.Apply(uint32(v), est[v], &acc, g.InOffset(v+1)-g.InOffset(v), g)
			if nv != est[v] {
				est[v] = nv
				changed = true
			}
		}
	}
	for v := 0; v < n; v++ {
		if est[v] != want[v] {
			t.Fatalf("core[%d] = %d, want %d", v, est[v], want[v])
		}
	}
}
