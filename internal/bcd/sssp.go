package bcd

import (
	"math"

	"graphabcd/internal/graph"
	"graphabcd/internal/word"
)

// SSSP is single-source shortest path in BCD form (Sec. III-A discussion):
// coordinate descent on F(x) = 1/2 sum_i (x_i - min_j (x_j + a_ji))^2,
// whose per-vertex update is the Bellman-Ford relaxation
// x_i <- min(x_i, min over in-edges (x_src + w)). Updates are monotone
// non-increasing, so asynchronous stale reads can only delay, never break,
// convergence.
type SSSP struct {
	// Source is the source vertex (distance 0).
	Source uint32
}

// Name implements Program.
func (SSSP) Name() string { return "sssp" }

// Codec implements Program.
func (SSSP) Codec() word.Codec[float64] { return word.F64{} }

// Init implements Program.
func (s SSSP) Init(v uint32, _ *graph.Graph) float64 {
	if v == s.Source {
		return 0
	}
	return math.Inf(1)
}

// InitEdge implements Program.
func (s SSSP) InitEdge(src uint32, g *graph.Graph) float64 { return s.Init(src, g) }

// NewAccum implements Program.
func (SSSP) NewAccum() float64 { return math.Inf(1) }

// ResetAccum implements Program.
func (SSSP) ResetAccum(acc *float64) { *acc = math.Inf(1) }

// EdgeGather implements Program: min-plus relaxation.
func (SSSP) EdgeGather(acc *float64, _ float64, weight float32, src float64) {
	if cand := src + float64(weight); cand < *acc {
		*acc = cand
	}
}

// Apply implements Program.
func (SSSP) Apply(_ uint32, old float64, acc *float64, _ int64, _ *graph.Graph) float64 {
	if *acc < old {
		return *acc
	}
	return old
}

// ScatterValue implements Program.
func (SSSP) ScatterValue(_ uint32, val float64, _ *graph.Graph) float64 { return val }

// Delta implements Program. Distances only decrease. The gradient mass is
// scaled by 1/(1+dist) so that blocks near the source are prioritized, the
// Δ-stepping-flavoured rule the paper cites as the canonical SSSP priority
// (Sec. III-B); a transition from unreached (+Inf) contributes unit mass
// before scaling so priorities stay finite.
func (SSSP) Delta(old, new float64) float64 {
	if new >= old {
		return 0
	}
	if math.IsInf(old, 1) {
		return 1 / (1 + new)
	}
	return (old - new) / (1 + new)
}
