package bcd

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"graphabcd/internal/graph"
	"graphabcd/internal/word"
)

// PPR is personalized PageRank: the stationary point of
// x = d*P x + (1-d)*e where e is the teleport distribution concentrated
// uniformly on a seed set instead of spread over all of |V|. It is the
// point-query form of PageRank — "rank the graph from the perspective of
// these vertices" — and the workload the serving layer's seed queries
// dispatch. Everything except the teleport term is shared with PageRank:
// edge caches hold x_src/outdeg(src) and GATHER is the same streaming sum.
//
// Construct values with NewPPR so the seed-membership set is built once;
// the zero value is not runnable.
type PPR struct {
	// Damping is the damping factor d. Zero value means 0.85.
	Damping float64
	// Seeds is the personalization set, deduplicated and sorted.
	Seeds []uint32

	// seedSet answers membership in Apply without scanning Seeds. Built
	// once by NewPPR and shared read-only by every worker.
	seedSet map[uint32]struct{}
}

// NewPPR builds a personalized-PageRank program over the given seed set.
// Seeds are deduplicated; at least one is required.
func NewPPR(damping float64, seeds []uint32) (PPR, error) {
	if len(seeds) == 0 {
		return PPR{}, fmt.Errorf("bcd: ppr needs at least one seed vertex")
	}
	if damping < 0 || damping >= 1 {
		return PPR{}, fmt.Errorf("bcd: ppr damping %g outside [0, 1); 0 means the 0.85 default", damping)
	}
	set := make(map[uint32]struct{}, len(seeds))
	for _, s := range seeds {
		set[s] = struct{}{}
	}
	uniq := make([]uint32, 0, len(set))
	for s := range set {
		uniq = append(uniq, s)
	}
	sort.Slice(uniq, func(i, j int) bool { return uniq[i] < uniq[j] })
	return PPR{Damping: damping, Seeds: uniq, seedSet: set}, nil
}

func (p PPR) damping() float64 {
	if p.Damping == 0 {
		return 0.85
	}
	return p.Damping
}

// teleport returns e(v): 1/|S| on seeds, 0 elsewhere.
func (p PPR) teleport(v uint32) float64 {
	if _, ok := p.seedSet[v]; ok {
		return 1 / float64(len(p.Seeds))
	}
	return 0
}

// Name implements Program. The seed set and damping are folded into the
// name so two PPR runs with different personalizations never share a
// checkpoint identity (checkpoint.ConfigHash hashes the program name).
func (p PPR) Name() string {
	h := fnv.New64a()
	_, _ = fmt.Fprintf(h, "d=%g", p.damping())
	for _, s := range p.Seeds {
		_, _ = fmt.Fprintf(h, ",%d", s)
	}
	return fmt.Sprintf("ppr-%016x", h.Sum64())
}

// Codec implements Program.
func (PPR) Codec() word.Codec[float64] { return word.F64{} }

// Init implements Program: start at the teleport distribution.
func (p PPR) Init(v uint32, _ *graph.Graph) float64 { return p.teleport(v) }

// InitEdge implements Program.
func (p PPR) InitEdge(src uint32, g *graph.Graph) float64 {
	return p.ScatterValue(src, p.Init(src, g), g)
}

// NewAccum implements Program.
func (PPR) NewAccum() float64 { return 0 }

// ResetAccum implements Program.
func (PPR) ResetAccum(acc *float64) { *acc = 0 }

// EdgeGather implements Program: sum of cached src/outdeg contributions.
func (PPR) EdgeGather(acc *float64, _ float64, _ float32, src float64) {
	*acc += src
}

// Apply implements Program.
func (p PPR) Apply(v uint32, _ float64, acc *float64, _ int64, _ *graph.Graph) float64 {
	return (1-p.damping())*p.teleport(v) + p.damping()**acc
}

// ScatterValue implements Program: out-edges carry val / outdeg.
func (PPR) ScatterValue(v uint32, val float64, g *graph.Graph) float64 {
	if deg := g.OutDegree(v); deg > 0 {
		return val / float64(deg)
	}
	return val // dangling vertex: no out-edges exist, value unused
}

// Delta implements Program.
func (PPR) Delta(old, new float64) float64 { return math.Abs(new - old) }

// L1Residual returns sum_v |x_v - nextIteration(x)_v| for a full Jacobi
// sweep, the personalized analogue of PageRank.L1Residual.
func (p PPR) L1Residual(g *graph.Graph, x []float64) float64 {
	d := p.damping()
	n := g.NumVertices()
	res := 0.0
	for v := 0; v < n; v++ {
		sum := 0.0
		for s := g.InOffset(v); s < g.InOffset(v+1); s++ {
			src := g.InSrc(s)
			sum += x[src] / float64(g.OutDegree(src))
		}
		next := (1-d)*p.teleport(uint32(v)) + d*sum
		res += math.Abs(next - x[v])
	}
	return res
}
