package bcd

import (
	"graphabcd/internal/graph"
	"graphabcd/internal/word"
)

// LabelProp is weighted majority label propagation for community
// detection, one of the graph-ML workloads the GAS model covers (Sec.
// II-A). Each vertex adopts the label with the largest total in-edge
// weight among its neighbours' cached labels (ties break toward the
// smaller label; an unconnected vertex keeps its own label).
//
// Unlike the monotone traversal programs, label propagation can oscillate
// under synchronous execution on bipartite-like structures; run it with a
// MaxEpochs bound. Asynchronous execution typically breaks the symmetry
// and converges — which makes it a useful asynchrony stress test.
type LabelProp struct{}

// LPAccum collects weighted label votes for one vertex.
type LPAccum struct {
	votes map[uint64]float64
}

// Name implements Program.
func (LabelProp) Name() string { return "labelprop" }

// Codec implements Program.
func (LabelProp) Codec() word.Codec[uint64] { return word.U64{} }

// Init implements Program: every vertex starts with its own label.
func (LabelProp) Init(v uint32, _ *graph.Graph) uint64 { return uint64(v) }

// InitEdge implements Program.
func (l LabelProp) InitEdge(src uint32, g *graph.Graph) uint64 { return l.Init(src, g) }

// NewAccum implements Program.
func (LabelProp) NewAccum() LPAccum { return LPAccum{votes: make(map[uint64]float64)} }

// ResetAccum implements Program.
func (LabelProp) ResetAccum(acc *LPAccum) { clear(acc.votes) }

// EdgeGather implements Program.
func (LabelProp) EdgeGather(acc *LPAccum, _ uint64, weight float32, src uint64) {
	acc.votes[src] += float64(weight)
}

// Apply implements Program.
func (LabelProp) Apply(_ uint32, old uint64, acc *LPAccum, nEdges int64, _ *graph.Graph) uint64 {
	if nEdges == 0 || len(acc.votes) == 0 {
		return old
	}
	best, bestW := old, -1.0
	for label, w := range acc.votes {
		if w > bestW || (w == bestW && label < best) {
			best, bestW = label, w
		}
	}
	return best
}

// ScatterValue implements Program.
func (LabelProp) ScatterValue(_ uint32, val uint64, _ *graph.Graph) uint64 { return val }

// Delta implements Program.
func (LabelProp) Delta(old, new uint64) float64 {
	if old != new {
		return 1
	}
	return 0
}
