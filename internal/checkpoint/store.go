package checkpoint

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"graphabcd/internal/obslog"
)

// Manifest is the commit record of one checkpoint epoch. It is written
// last, atomically, and only after every node's state file is durable —
// the commit rule that makes a torn checkpoint unresumable: a crash
// mid-checkpoint leaves the previous manifest in place, so resume always
// lands on a fully acked epoch.
//
// The identity triple (GraphDigest, Program, ConfigHash) pins the state
// files to the exact run shape that wrote them; resume refuses a manifest
// whose triple does not match the restarting run.
type Manifest struct {
	RunID       string `json:"run_id"`
	Epoch       uint64 `json:"epoch"`
	Nodes       int    `json:"nodes"`
	Program     string `json:"program"`
	GraphDigest string `json:"graph_digest"`
	ConfigHash  string `json:"config_hash"`
	NumVertices int64  `json:"num_vertices"`
	NumBlocks   int64  `json:"num_blocks"`
	SavedUnixMs int64  `json:"saved_unix_ms"`
}

// validate bounds a decoded manifest the same way the state decoder
// bounds its header: a hostile manifest must fail loudly.
func (m *Manifest) validate() error {
	switch {
	case !ValidRunID(m.RunID):
		return fmt.Errorf("checkpoint: manifest run id %q invalid", m.RunID)
	case m.Nodes < 1 || m.Nodes > maxCkptNodes:
		return fmt.Errorf("checkpoint: manifest nodes %d out of range", m.Nodes)
	case m.NumVertices < 0 || m.NumVertices > maxCkptVertices:
		return fmt.Errorf("checkpoint: manifest vertex count %d out of range", m.NumVertices)
	case m.NumBlocks < 0 || m.NumBlocks > maxCkptVertices:
		return fmt.Errorf("checkpoint: manifest block count %d out of range", m.NumBlocks)
	case m.Program == "":
		return errors.New("checkpoint: manifest has no program")
	}
	return nil
}

// Store persists checkpoint epochs. WriteState streams one node's state
// file for an epoch; Commit publishes the epoch's manifest after every
// state file is durable; Load/ReadState serve a resume. Implementations
// must make WriteState and Commit atomic (no reader may observe a partial
// file), which DirStore gets from temp+rename on one filesystem.
type Store interface {
	WriteState(runID string, epoch uint64, node int, write func(io.Writer) error) error
	Commit(m *Manifest) error
	Load(runID string) (*Manifest, error)
	ReadState(runID string, epoch uint64, node int) (io.ReadCloser, error)
	// Latest returns the most recently committed manifest across all run
	// ids, or an error when the store holds none; it backs -resume latest.
	Latest() (*Manifest, error)
}

// maxManifestBytes bounds the manifest read; a manifest is a few hundred
// bytes, so anything near the cap is garbage.
const maxManifestBytes = 1 << 20

// ValidRunID accepts filesystem-safe run ids: no separators, no dot
// prefixes, nothing a hostile id could use to escape the store directory.
// Engine configs validate ids with it before a run starts.
func ValidRunID(id string) bool {
	if id == "" || len(id) > 128 || id[0] == '.' {
		return false
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '-' || r == '_' || r == '.':
		default:
			return false
		}
	}
	return true
}

// DirStore is the filesystem Store: one directory per run id holding
// `ep<epoch>-n<node>.gabc` state files and a `MANIFEST.json` commit
// record, all placed by temp+rename so a crash never leaves a partial
// file under a committed name.
type DirStore struct {
	dir string
}

// NewDirStore opens (creating if needed) a checkpoint directory.
func NewDirStore(dir string) (*DirStore, error) {
	if dir == "" {
		return nil, errors.New("checkpoint: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: store dir: %w", err)
	}
	return &DirStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (d *DirStore) Dir() string { return d.dir }

func stateFileName(epoch uint64, node int) string {
	return fmt.Sprintf("ep%016d-n%04d.gabc", epoch, node)
}

func (d *DirStore) runDir(runID string) (string, error) {
	if !ValidRunID(runID) {
		return "", fmt.Errorf("checkpoint: run id %q invalid (want [A-Za-z0-9._-], no leading dot)", runID)
	}
	return filepath.Join(d.dir, runID), nil
}

// WriteState atomically writes one node's state file for an epoch.
func (d *DirStore) WriteState(runID string, epoch uint64, node int, write func(io.Writer) error) error {
	rd, err := d.runDir(runID)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(rd, 0o755); err != nil {
		return fmt.Errorf("checkpoint: run dir: %w", err)
	}
	return AtomicWriteFile(filepath.Join(rd, stateFileName(epoch, node)), write)
}

// Commit atomically publishes the epoch's manifest. The caller must have
// completed every node's WriteState for the epoch first.
func (d *DirStore) Commit(m *Manifest) error {
	if err := m.validate(); err != nil {
		obslog.L().Warn("manifest commit refused",
			"event", "ckpt.commit_refused", "runID", m.RunID, "epoch", m.Epoch, "err", err)
		return err
	}
	rd, err := d.runDir(m.RunID)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(rd, 0o755); err != nil {
		return fmt.Errorf("checkpoint: run dir: %w", err)
	}
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return AtomicWriteFile(filepath.Join(rd, "MANIFEST.json"), func(w io.Writer) error {
		_, err := w.Write(raw)
		return err
	})
}

// Load reads and validates a run's committed manifest.
func (d *DirStore) Load(runID string) (*Manifest, error) {
	rd, err := d.runDir(runID)
	if err != nil {
		return nil, err
	}
	return loadManifest(filepath.Join(rd, "MANIFEST.json"))
}

func loadManifest(path string) (*Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: no committed checkpoint: %w", err)
	}
	defer func() { _ = f.Close() }()
	m, err := DecodeManifest(io.LimitReader(f, maxManifestBytes))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: manifest %s: %w", path, err)
	}
	return m, nil
}

// DecodeManifest parses and validates a manifest from r.
func DecodeManifest(r io.Reader) (*Manifest, error) {
	m := &Manifest{}
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(m); err != nil {
		return nil, err
	}
	if err := m.validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// ReadState opens one node's committed state file.
func (d *DirStore) ReadState(runID string, epoch uint64, node int) (io.ReadCloser, error) {
	rd, err := d.runDir(runID)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(filepath.Join(rd, stateFileName(epoch, node)))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: state file for epoch %d node %d: %w", epoch, node, err)
	}
	return f, nil
}

// Latest scans the store for the most recently committed manifest.
func (d *DirStore) Latest() (*Manifest, error) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: store dir: %w", err)
	}
	// Deterministic tie-break: sort by name, keep the newest timestamp.
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name() < entries[j].Name() })
	var best *Manifest
	for _, e := range entries {
		if !e.IsDir() || !ValidRunID(e.Name()) {
			continue
		}
		m, err := loadManifest(filepath.Join(d.dir, e.Name(), "MANIFEST.json"))
		if err != nil {
			// An uncommitted or torn run dir is not a candidate, but a
			// human debugging "-resume latest picked the wrong run" wants
			// to see what was skipped and why.
			obslog.L().Debug("skipping uncommitted run dir",
				"event", "ckpt.skip_torn", "run", e.Name(), "err", err)
			continue
		}
		if best == nil || m.SavedUnixMs > best.SavedUnixMs {
			best = m
		}
	}
	if best == nil {
		return nil, fmt.Errorf("checkpoint: no committed checkpoint under %s", d.dir)
	}
	return best, nil
}

// AtomicWriteFile writes a file so that a crash at any point leaves
// either the previous content or the new content at path, never a
// truncated mix: the payload streams into a same-directory temp file,
// is synced to stable storage, and only then renamed over the target.
// The -values-out writer and every store write share this discipline.
func AtomicWriteFile(path string, write func(io.Writer) error) (err error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, "."+strings.TrimSuffix(base, filepath.Ext(base))+".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			_ = tmp.Close()
			_ = os.Remove(tmp.Name())
		}
	}()
	bw := bufio.NewWriterSize(tmp, 1<<20)
	if err = write(bw); err != nil {
		return err
	}
	if err = bw.Flush(); err != nil {
		return err
	}
	// Sync before rename: the rename must never become visible ahead of
	// the bytes it names (the classic zero-length-file crash artifact).
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
