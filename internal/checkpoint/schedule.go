package checkpoint

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"runtime"
	"sync/atomic"
	"time"
)

// Schedule recording for deterministic replay: the scheduler appends each
// issued block id; core.ReplaySchedule re-executes the sequence
// single-threaded with fused gather-apply-scatter, so every update reads
// exactly the values the previous recorded step published.
//
// Format ("GABR", version 1, little-endian):
//
//	magic[4] "GABR" | version u32
//	block ids, u32 each, in issue order
//	trailer: count u64 | crc u32 (IEEE CRC-32 of the id bytes)
//
// The trailer makes truncation detectable: a crash mid-write loses the
// trailer, and ReadSchedule refuses the file rather than replaying a
// silently shortened schedule.
const (
	schedMagic   = "GABR"
	schedVersion = 1
	schedHdrLen  = 4 + 4
	schedTrlLen  = 8 + 4
)

// schedRingCap is the recorder's ring capacity (power of two). The
// producer is the scheduler goroutine; unlike the tracer's ring a full
// ring blocks instead of dropping — a dropped id would corrupt the
// replay — so the capacity only has to cover flusher latency.
const schedRingCap = 1 << 14

// ScheduleRecorder captures the issued block schedule through the same
// single-producer single-consumer ring shape as the telemetry tracer:
// the scheduler writes ids with two atomic cursors and no locks, a
// background flusher drains to the writer on a fixed cadence, and Close
// drains the tail and seals the trailer.
type ScheduleRecorder struct {
	ids  []uint32
	head atomic.Int64 // producer cursor
	tail atomic.Int64 // consumer cursor

	w     *bufio.Writer
	crc   hash.Hash32
	count uint64
	err   atomic.Pointer[error]

	stop chan struct{}
	done chan struct{}
}

// NewScheduleRecorder starts a recorder writing to w. The caller must
// Close it after the run to seal the trailer; an unsealed file will not
// replay.
func NewScheduleRecorder(w io.Writer) *ScheduleRecorder {
	r := &ScheduleRecorder{
		ids:  make([]uint32, schedRingCap),
		w:    bufio.NewWriterSize(w, 1<<16),
		crc:  crc32.NewIEEE(),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	var hdr [schedHdrLen]byte
	copy(hdr[:4], schedMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], schedVersion)
	if _, err := r.w.Write(hdr[:]); err != nil {
		r.err.CompareAndSwap(nil, &err)
	}
	go r.flushLoop()
	return r
}

// Record appends one issued block id. Called by the single scheduler
// goroutine; when the ring is full it yields until the flusher catches
// up rather than dropping.
func (r *ScheduleRecorder) Record(b int) {
	v := uint32(b)
	for {
		h, t := r.head.Load(), r.tail.Load()
		if h-t < int64(len(r.ids)) {
			r.ids[h%int64(len(r.ids))] = v
			r.head.Store(h + 1)
			return
		}
		if r.err.Load() != nil {
			return // sink failed; Close will surface the error
		}
		runtime.Gosched()
	}
}

// flushLoop drains the ring on a fixed cadence, off the scheduling loop.
func (r *ScheduleRecorder) flushLoop() {
	defer close(r.done)
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-tick.C:
			r.flush()
		}
	}
}

// flush drains buffered ids to the writer. Called only from the flusher
// goroutine and, after it has stopped, from Close.
func (r *ScheduleRecorder) flush() {
	h, t := r.head.Load(), r.tail.Load()
	var b [4]byte
	for ; t < h; t++ {
		binary.LittleEndian.PutUint32(b[:], r.ids[t%int64(len(r.ids))])
		_, _ = r.crc.Write(b[:]) // hash.Hash.Write never fails
		if _, err := r.w.Write(b[:]); err != nil {
			r.err.CompareAndSwap(nil, &err)
		}
		r.count++
	}
	r.tail.Store(t)
}

// Close stops the flusher, drains the tail, and seals the trailer. The
// recorder must not receive ids after Close; stop the run first.
func (r *ScheduleRecorder) Close() error {
	close(r.stop)
	<-r.done
	r.flush()
	var trl [schedTrlLen]byte
	binary.LittleEndian.PutUint64(trl[0:8], r.count)
	binary.LittleEndian.PutUint32(trl[8:12], r.crc.Sum32())
	if _, err := r.w.Write(trl[:]); err != nil {
		r.err.CompareAndSwap(nil, &err)
	}
	if err := r.w.Flush(); err != nil {
		r.err.CompareAndSwap(nil, &err)
	}
	if errp := r.err.Load(); errp != nil {
		return *errp
	}
	return nil
}

// ReadSchedule decodes a sealed schedule recording and verifies the
// trailer: id count and CRC must both match, so truncated or bit-flipped
// recordings are refused. Block ids are validated against numBlocks.
func ReadSchedule(r io.Reader, numBlocks int) ([]uint32, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: schedule: %w", err)
	}
	if len(raw) < schedHdrLen+schedTrlLen {
		return nil, fmt.Errorf("checkpoint: schedule truncated at %d bytes", len(raw))
	}
	if string(raw[:4]) != schedMagic {
		return nil, fmt.Errorf("checkpoint: bad schedule magic %q", raw[:4])
	}
	if v := binary.LittleEndian.Uint32(raw[4:8]); v != schedVersion {
		return nil, fmt.Errorf("checkpoint: unsupported schedule version %d (have %d)", v, schedVersion)
	}
	body := raw[schedHdrLen : len(raw)-schedTrlLen]
	trl := raw[len(raw)-schedTrlLen:]
	if len(body)%4 != 0 {
		return nil, fmt.Errorf("checkpoint: schedule body of %d bytes is not whole ids", len(body))
	}
	count := binary.LittleEndian.Uint64(trl[0:8])
	if count != uint64(len(body)/4) {
		return nil, fmt.Errorf("checkpoint: schedule trailer claims %d ids, body has %d (truncated recording?)", count, len(body)/4)
	}
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(trl[8:12]); got != want {
		return nil, fmt.Errorf("checkpoint: schedule checksum mismatch (file %08x, data %08x)", want, got)
	}
	out := make([]uint32, 0, presizeCap(len(body)/4, 4))
	for i := 0; i+4 <= len(body); i += 4 {
		b := binary.LittleEndian.Uint32(body[i:])
		if int64(b) >= int64(numBlocks) {
			return nil, fmt.Errorf("checkpoint: schedule id %d outside %d blocks", b, numBlocks)
		}
		out = append(out, b)
	}
	return out, nil
}
