// Package checkpoint implements crash-safe engine-state snapshots and
// deterministic schedule replay for GraphABCD runs (DESIGN.md §12).
//
// Asynchronous BCD converges from any intermediate iterate, so a fuzzy
// snapshot of (vertex values, scheduler priorities, progress counters,
// per-slot write stamps) taken while workers keep running is a valid
// restart point: the captured state is just another member of the bounded
// staleness family the convergence analysis already tolerates. The format
// reuses the GABS snapshot discipline from internal/graph: a fixed
// little-endian header, fixed-order CRC-trailed sections, and a decoder
// that never sizes an allocation from a header claim alone
// (presizeCap/growEarned).
//
// State file layout ("GABC", version 1):
//
//	header (44 bytes, little-endian):
//	    magic[4]  "GABC"
//	    version   u32 currently 1
//	    n         u64 total vertex count of the run
//	    nb        u64 total block count of the run
//	    words     u32 codec words per vertex value
//	    reserved  u32 zero
//	    node      u32 writing node id (0 for single-process runs)
//	    nodes     u32 cluster size (1 for single-process runs)
//	    crc       u32 IEEE CRC-32 of the preceding 40 bytes
//	sections, in fixed order, each:
//	    tag        u32   1 meta, 2 values, 3 priority, 4 active, 5 stamps
//	    payloadLen u64   bytes of payload
//	    payload    [payloadLen]byte
//	    crc        u32   IEEE CRC-32 of the payload
//
// The meta section fixes the node's owned ranges and progress counters
// (ten u64 fields); values are raw vertex-value words for [VertexLo,
// VertexHi); priority is float64 bits and active one byte per block in
// [BlockLo, BlockHi); stamps are the per-slot envelope write stamps for
// SlotCount in-edge slots starting at SlotBase (empty for single-process
// runs). Every cross-field invariant is validated on decode, so a torn or
// bit-flipped file yields an error, never a bad resume.
package checkpoint

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

const (
	ckptMagic     = "GABC"
	ckptVersion   = 1
	ckptHeaderLen = 4 + 4 + 8 + 8 + 4 + 4 + 4 + 4 + 4
	ckptSecHdrLen = 4 + 8
	ckptCRCLen    = 4
)

// Section tags, in file order.
const (
	secMeta uint32 = 1 + iota
	secValues
	secPriority
	secActive
	secStamps
)

// metaFields is the fixed u64 field count of the meta section.
const metaFields = 10

// Decoder sanity bounds, mirroring the cluster transport's limits: a
// checkpoint describing a larger run than the engine could ever host is
// corrupt by definition.
const (
	maxCkptVertices = 1 << 31
	maxCkptSlots    = 1 << 35
	maxCkptNodes    = 1 << 12
	maxCkptWords    = 1 << 10
)

// Counters carries the progress counters a resume re-seeds so epoch
// budgets and statistics continue across the restart instead of resetting.
type Counters struct {
	VertexUpdates  int64
	BlockUpdates   int64
	EdgesTraversed int64
	// Seq is the distributed node's envelope send sequence at capture
	// time. The resume coordinator restarts every node's sequence above
	// the cluster-wide maximum so restored per-slot stamps can never
	// reject post-resume writes as stale. Zero for single-process runs.
	Seq uint64
}

// State is one node's decoded engine state. A single-process run is the
// Node=0, Nodes=1 case owning every vertex, block, and no slot stamps.
type State struct {
	NumVertices int64 // total vertices of the run
	NumBlocks   int64 // total blocks of the run
	Words       int   // codec words per vertex value
	Node, Nodes int

	VertexLo, VertexHi int64 // owned vertex range [lo, hi)
	BlockLo, BlockHi   int64 // owned block range [lo, hi)
	SlotBase           int64 // first owned in-edge slot (stamps)

	Values   []uint64 // (VertexHi-VertexLo)*Words raw value words
	Priority []uint64 // (BlockHi-BlockLo) float64 bit patterns
	Active   []byte   // (BlockHi-BlockLo) 0/1 active flags
	Stamps   []uint64 // per-slot write stamps, may be empty

	Counters Counters
}

// validate checks every invariant the encoder relies on and the decoder
// re-checks; sharing it keeps a hand-built State from writing a file the
// reader would refuse.
func (st *State) validate() error {
	switch {
	case st.NumVertices < 0 || st.NumVertices > maxCkptVertices:
		return fmt.Errorf("checkpoint: vertex count %d out of range", st.NumVertices)
	case st.NumBlocks < 0 || st.NumBlocks > maxCkptVertices:
		return fmt.Errorf("checkpoint: block count %d out of range", st.NumBlocks)
	case st.Words < 1 || st.Words > maxCkptWords:
		return fmt.Errorf("checkpoint: %d words per value out of range", st.Words)
	case st.Nodes < 1 || st.Nodes > maxCkptNodes || st.Node < 0 || st.Node >= st.Nodes:
		return fmt.Errorf("checkpoint: node %d of %d out of range", st.Node, st.Nodes)
	case st.VertexLo < 0 || st.VertexLo > st.VertexHi || st.VertexHi > st.NumVertices:
		return fmt.Errorf("checkpoint: vertex range [%d,%d) outside [0,%d)", st.VertexLo, st.VertexHi, st.NumVertices)
	case st.BlockLo < 0 || st.BlockLo > st.BlockHi || st.BlockHi > st.NumBlocks:
		return fmt.Errorf("checkpoint: block range [%d,%d) outside [0,%d)", st.BlockLo, st.BlockHi, st.NumBlocks)
	case st.SlotBase < 0 || st.SlotBase > maxCkptSlots:
		return fmt.Errorf("checkpoint: slot base %d out of range", st.SlotBase)
	case int64(len(st.Stamps)) > maxCkptSlots:
		return fmt.Errorf("checkpoint: %d slot stamps out of range", len(st.Stamps))
	case int64(len(st.Values)) != (st.VertexHi-st.VertexLo)*int64(st.Words):
		return fmt.Errorf("checkpoint: %d value words, want %d", len(st.Values), (st.VertexHi-st.VertexLo)*int64(st.Words))
	case int64(len(st.Priority)) != st.BlockHi-st.BlockLo:
		return fmt.Errorf("checkpoint: %d priorities, want %d", len(st.Priority), st.BlockHi-st.BlockLo)
	case int64(len(st.Active)) != st.BlockHi-st.BlockLo:
		return fmt.Errorf("checkpoint: %d active flags, want %d", len(st.Active), st.BlockHi-st.BlockLo)
	case st.Counters.VertexUpdates < 0 || st.Counters.BlockUpdates < 0 || st.Counters.EdgesTraversed < 0:
		return fmt.Errorf("checkpoint: negative progress counters")
	}
	for i, a := range st.Active {
		if a > 1 {
			return fmt.Errorf("checkpoint: active flag %d is %d, want 0 or 1", i, a)
		}
	}
	// Priorities feed the scheduler directly; refuse bit patterns the
	// priority rule cannot order (a NaN would also have poisoned the run
	// that wrote them).
	for i, p := range st.Priority {
		f := math.Float64frombits(p)
		if math.IsNaN(f) || f < 0 {
			return fmt.Errorf("checkpoint: block %d priority %g invalid", st.BlockLo+int64(i), f)
		}
	}
	return nil
}

// Encode writes st in the GABC format. The writer is buffered internally;
// callers pair it with Store.WriteState for atomic temp+rename placement.
func Encode(w io.Writer, st *State) error {
	if err := st.validate(); err != nil {
		return err
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	var hdr [ckptHeaderLen]byte
	copy(hdr[:4], ckptMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], ckptVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(st.NumVertices))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(st.NumBlocks))
	binary.LittleEndian.PutUint32(hdr[24:28], uint32(st.Words))
	binary.LittleEndian.PutUint32(hdr[28:32], 0)
	binary.LittleEndian.PutUint32(hdr[32:36], uint32(st.Node))
	binary.LittleEndian.PutUint32(hdr[36:40], uint32(st.Nodes))
	// The header gets its own CRC so that, unlike GABS (whose reader
	// cross-checks counts against section lengths), no flipped size field
	// can survive into a structurally plausible decode.
	binary.LittleEndian.PutUint32(hdr[40:44], crc32.ChecksumIEEE(hdr[:40]))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	cw := &ckptWriter{bw: bw}
	cw.u64Section(secMeta, []uint64{
		uint64(st.VertexLo), uint64(st.VertexHi),
		uint64(st.BlockLo), uint64(st.BlockHi),
		uint64(st.SlotBase), uint64(len(st.Stamps)),
		uint64(st.Counters.VertexUpdates), uint64(st.Counters.BlockUpdates),
		uint64(st.Counters.EdgesTraversed), st.Counters.Seq,
	})
	cw.u64Section(secValues, st.Values)
	cw.u64Section(secPriority, st.Priority)
	cw.byteSection(secActive, st.Active)
	cw.u64Section(secStamps, st.Stamps)
	if cw.err != nil {
		return cw.err
	}
	return bw.Flush()
}

// ckptWriter emits sections, accumulating the first write error — the
// GABS snapWriter shape.
type ckptWriter struct {
	bw  *bufio.Writer
	err error
	blk []byte
}

func (cw *ckptWriter) write(b []byte) {
	if cw.err == nil {
		_, cw.err = cw.bw.Write(b)
	}
}

func (cw *ckptWriter) sectionHeader(tag uint32, payloadLen int64) {
	var h [ckptSecHdrLen]byte
	binary.LittleEndian.PutUint32(h[0:4], tag)
	binary.LittleEndian.PutUint64(h[4:12], uint64(payloadLen))
	cw.write(h[:])
}

func (cw *ckptWriter) crc(sum uint32) {
	var b [ckptCRCLen]byte
	binary.LittleEndian.PutUint32(b[:], sum)
	cw.write(b[:])
}

// encodeBlockSize is the staging-block size for streaming sections: each
// full block takes one CRC update and one buffered write.
const encodeBlockSize = 64 << 10

func (cw *ckptWriter) block() []byte {
	if cw.blk == nil {
		cw.blk = make([]byte, encodeBlockSize)
	}
	return cw.blk
}

// u64Section streams vals as little-endian u64, block-buffered.
func (cw *ckptWriter) u64Section(tag uint32, vals []uint64) {
	cw.sectionHeader(tag, int64(len(vals))*8)
	crc := crc32.NewIEEE()
	blk := cw.block()
	fill := 0
	for _, v := range vals {
		if fill == len(blk) {
			_, _ = crc.Write(blk) // hash.Hash.Write never fails
			cw.write(blk)
			fill = 0
		}
		binary.LittleEndian.PutUint64(blk[fill:], v)
		fill += 8
	}
	_, _ = crc.Write(blk[:fill])
	cw.write(blk[:fill])
	cw.crc(crc.Sum32())
}

// byteSection emits a raw byte payload (the active flags).
func (cw *ckptWriter) byteSection(tag uint32, b []byte) {
	cw.sectionHeader(tag, int64(len(b)))
	cw.write(b)
	cw.crc(crc32.ChecksumIEEE(b))
}

// Decode reads a GABC state file, verifying every section CRC and every
// cross-field invariant. Allocation follows delivered bytes, never the
// header's claims.
func Decode(r io.Reader) (*State, error) {
	br := bufio.NewReaderSize(r, 1<<14)
	var hdr [ckptHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("checkpoint: header: %w", err)
	}
	if string(hdr[:4]) != ckptMagic {
		return nil, fmt.Errorf("checkpoint: bad magic %q", hdr[:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != ckptVersion {
		return nil, fmt.Errorf("checkpoint: unsupported version %d (have %d)", v, ckptVersion)
	}
	if got := binary.LittleEndian.Uint32(hdr[40:44]); got != crc32.ChecksumIEEE(hdr[:40]) {
		return nil, fmt.Errorf("checkpoint: header checksum mismatch (file %08x, data %08x)", got, crc32.ChecksumIEEE(hdr[:40]))
	}
	st := &State{}
	n := binary.LittleEndian.Uint64(hdr[8:16])
	nb := binary.LittleEndian.Uint64(hdr[16:24])
	words := binary.LittleEndian.Uint32(hdr[24:28])
	node := binary.LittleEndian.Uint32(hdr[32:36])
	nodes := binary.LittleEndian.Uint32(hdr[36:40])
	if n > maxCkptVertices || nb > maxCkptVertices {
		return nil, fmt.Errorf("checkpoint: sizes V=%d blocks=%d out of range", n, nb)
	}
	if words < 1 || words > maxCkptWords {
		return nil, fmt.Errorf("checkpoint: %d words per value out of range", words)
	}
	if nodes < 1 || nodes > maxCkptNodes || node >= nodes {
		return nil, fmt.Errorf("checkpoint: node %d of %d out of range", node, nodes)
	}
	st.NumVertices, st.NumBlocks = int64(n), int64(nb)
	st.Words, st.Node, st.Nodes = int(words), int(node), int(nodes)

	cr := ckptReader{br: br}
	meta, err := cr.u64s(secMeta, metaFields)
	if err != nil {
		return nil, err
	}
	// Bound the range fields before any section length derives from them:
	// a lying meta section must fail here, not size an allocation.
	for i, f := range meta[:6] {
		if f > maxCkptSlots {
			return nil, fmt.Errorf("checkpoint: meta field %d = %d out of range", i, f)
		}
	}
	st.VertexLo, st.VertexHi = int64(meta[0]), int64(meta[1])
	st.BlockLo, st.BlockHi = int64(meta[2]), int64(meta[3])
	st.SlotBase = int64(meta[4])
	slotCount := int64(meta[5])
	if st.VertexLo > st.VertexHi || st.VertexHi > st.NumVertices {
		return nil, fmt.Errorf("checkpoint: vertex range [%d,%d) outside [0,%d)", st.VertexLo, st.VertexHi, st.NumVertices)
	}
	if st.BlockLo > st.BlockHi || st.BlockHi > st.NumBlocks {
		return nil, fmt.Errorf("checkpoint: block range [%d,%d) outside [0,%d)", st.BlockLo, st.BlockHi, st.NumBlocks)
	}
	for _, c := range meta[6:9] {
		if c > math.MaxInt64 {
			return nil, fmt.Errorf("checkpoint: progress counter %d out of range", c)
		}
	}
	st.Counters = Counters{
		VertexUpdates:  int64(meta[6]),
		BlockUpdates:   int64(meta[7]),
		EdgesTraversed: int64(meta[8]),
		Seq:            meta[9],
	}

	valueWords := (st.VertexHi - st.VertexLo) * int64(st.Words)
	if st.Values, err = cr.u64s(secValues, valueWords); err != nil {
		return nil, err
	}
	ownedBlocks := st.BlockHi - st.BlockLo
	if st.Priority, err = cr.u64s(secPriority, ownedBlocks); err != nil {
		return nil, err
	}
	if st.Active, err = cr.bytes(secActive, ownedBlocks); err != nil {
		return nil, err
	}
	if st.Stamps, err = cr.u64s(secStamps, slotCount); err != nil {
		return nil, err
	}
	if err := st.validate(); err != nil {
		return nil, err
	}
	return st, nil
}

// ckptReader decodes consecutive sections, verifying tag, exact payload
// length, and CRC.
type ckptReader struct {
	br      *bufio.Reader
	scratch []byte
}

// presizeCap bounds a decoded array's initial capacity: enough for want
// entries, capped so a hostile header can cost at most a few megabytes
// before real payload bytes must arrive.
func presizeCap(want, entryBytes int) int {
	const maxUpfront = 4 << 20
	if want < 0 {
		return 0
	}
	if want > maxUpfront/entryBytes {
		return maxUpfront / entryBytes
	}
	return want
}

// growEarned makes room for need more entries without trusting the
// header: capacity quadruples from what delivered payload bytes have
// already earned, capped at the claimed want.
func growEarned[T any](s []T, need, want int) []T {
	if len(s)+need <= cap(s) {
		return s
	}
	newCap := 4 * cap(s)
	if newCap < len(s)+need {
		newCap = len(s) + need
	}
	if want > len(s)+need && newCap > want {
		newCap = want
	}
	out := make([]T, len(s), newCap)
	copy(out, s)
	return out
}

// section reads one section header, checks the tag, and enforces the
// exact payload length the already-validated meta fields dictate.
func (cr *ckptReader) section(tag uint32, wantLen int64) error {
	var h [ckptSecHdrLen]byte
	if _, err := io.ReadFull(cr.br, h[:]); err != nil {
		return fmt.Errorf("checkpoint: section %d header: %w", tag, err)
	}
	if got := binary.LittleEndian.Uint32(h[0:4]); got != tag {
		return fmt.Errorf("checkpoint: section tag %d, want %d", got, tag)
	}
	if l := binary.LittleEndian.Uint64(h[4:12]); l != uint64(wantLen) {
		return fmt.Errorf("checkpoint: section %d is %d bytes, want %d", tag, l, wantLen)
	}
	return nil
}

// payload reads exactly l payload bytes in bounded chunks and verifies
// the trailing CRC.
func (cr *ckptReader) payload(tag uint32, l int64, consume func([]byte)) error {
	crc := crc32.NewIEEE()
	if cr.scratch == nil {
		cr.scratch = make([]byte, 1<<20)
	}
	for remaining := l; remaining > 0; {
		k := int64(len(cr.scratch))
		if k > remaining {
			k = remaining
		}
		if _, err := io.ReadFull(cr.br, cr.scratch[:k]); err != nil {
			return fmt.Errorf("checkpoint: section %d payload: %w", tag, err)
		}
		_, _ = crc.Write(cr.scratch[:k]) // hash.Hash.Write never fails
		consume(cr.scratch[:k])
		remaining -= k
	}
	var c [ckptCRCLen]byte
	if _, err := io.ReadFull(cr.br, c[:]); err != nil {
		return fmt.Errorf("checkpoint: section %d checksum: %w", tag, err)
	}
	if got := binary.LittleEndian.Uint32(c[:]); got != crc.Sum32() {
		return fmt.Errorf("checkpoint: section %d checksum mismatch (file %08x, data %08x)", tag, got, crc.Sum32())
	}
	return nil
}

// u64s decodes a u64 section of exactly count entries.
func (cr *ckptReader) u64s(tag uint32, count int64) ([]uint64, error) {
	if count < 0 || count > maxCkptSlots {
		return nil, fmt.Errorf("checkpoint: section %d wants %d entries, out of range", tag, count)
	}
	if err := cr.section(tag, count*8); err != nil {
		return nil, err
	}
	out := make([]uint64, 0, presizeCap(int(count), 8))
	if err := cr.payload(tag, count*8, func(chunk []byte) {
		out = growEarned(out, len(chunk)/8, int(count))
		for i := 0; i+8 <= len(chunk); i += 8 {
			out = append(out, binary.LittleEndian.Uint64(chunk[i:]))
		}
	}); err != nil {
		return nil, err
	}
	if int64(len(out)) != count {
		return nil, fmt.Errorf("checkpoint: section %d has %d entries, want %d", tag, len(out), count)
	}
	return out, nil
}

// bytes decodes a raw byte section of exactly count bytes.
func (cr *ckptReader) bytes(tag uint32, count int64) ([]byte, error) {
	if count < 0 || count > maxCkptSlots {
		return nil, fmt.Errorf("checkpoint: section %d wants %d bytes, out of range", tag, count)
	}
	if err := cr.section(tag, count); err != nil {
		return nil, err
	}
	out := make([]byte, 0, presizeCap(int(count), 1))
	if err := cr.payload(tag, count, func(chunk []byte) {
		out = growEarned(out, len(chunk), int(count))
		out = append(out, chunk...)
	}); err != nil {
		return nil, err
	}
	if int64(len(out)) != count {
		return nil, fmt.Errorf("checkpoint: section %d has %d bytes, want %d", tag, len(out), count)
	}
	return out, nil
}
