package checkpoint

import (
	"bytes"
	"testing"
)

// FuzzCheckpointDecode throws arbitrary bytes at every decoder a resume
// trusts: the GABC state decoder, the manifest parser, and the schedule
// reader. None may panic or over-allocate; a state that survives Decode
// must satisfy the same invariants Encode enforces (round-trip clean).
func FuzzCheckpointDecode(f *testing.F) {
	st := testState()
	var buf bytes.Buffer
	if err := Encode(&buf, st); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	// Truncation sweep seeds.
	for _, l := range []int{0, 4, ckptHeaderLen, ckptHeaderLen + 12, len(valid) / 2, len(valid) - 1} {
		if l <= len(valid) {
			f.Add(bytes.Clone(valid[:l]))
		}
	}
	// Bitflip seeds across the regions: header, meta, values, trailer.
	for _, pos := range []int{0, 8, 30, ckptHeaderLen + 20, len(valid) / 2, len(valid) - 2} {
		mut := bytes.Clone(valid)
		mut[pos] ^= 0x80
		f.Add(mut)
	}
	var sbuf bytes.Buffer
	rec := NewScheduleRecorder(&sbuf)
	for i := 0; i < 100; i++ {
		rec.Record(i % 7)
	}
	if err := rec.Close(); err != nil {
		f.Fatal(err)
	}
	f.Add(sbuf.Bytes())
	f.Add([]byte(`{"run_id":"r1","epoch":2,"nodes":1,"program":"pr","graph_digest":"d","config_hash":"c","num_vertices":10,"num_blocks":2,"saved_unix_ms":5}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		if st, err := Decode(bytes.NewReader(data)); err == nil {
			if err := st.validate(); err != nil {
				t.Fatalf("decoded state violates its own invariants: %v", err)
			}
			var re bytes.Buffer
			if err := Encode(&re, st); err != nil {
				t.Fatalf("decoded state does not re-encode: %v", err)
			}
		}
		if m, err := DecodeManifest(bytes.NewReader(data)); err == nil {
			if err := m.validate(); err != nil {
				t.Fatalf("decoded manifest violates its own invariants: %v", err)
			}
		}
		_, _ = ReadSchedule(bytes.NewReader(data), 1024)
	})
}
