package checkpoint

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testState builds a plausible two-node shard's state.
func testState() *State {
	st := &State{
		NumVertices: 100, NumBlocks: 10, Words: 1,
		Node: 1, Nodes: 2,
		VertexLo: 50, VertexHi: 100,
		BlockLo: 5, BlockHi: 10,
		SlotBase: 333,
		Values:   make([]uint64, 50),
		Priority: make([]uint64, 5),
		Active:   []byte{1, 0, 1, 1, 0},
		Stamps:   make([]uint64, 17),
		Counters: Counters{VertexUpdates: 12345, BlockUpdates: 67, EdgesTraversed: 89012, Seq: 999},
	}
	for i := range st.Values {
		st.Values[i] = uint64(i) * 0x9e3779b97f4a7c15
	}
	for i := range st.Priority {
		st.Priority[i] = math.Float64bits(float64(i) * 1.5)
	}
	for i := range st.Stamps {
		st.Stamps[i] = uint64(1000 + i)
	}
	return st
}

func encodeState(t *testing.T, st *State) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, st); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestCheckpointRoundTrip(t *testing.T) {
	want := testState()
	raw := encodeState(t, want)
	got, err := Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVertices != want.NumVertices || got.NumBlocks != want.NumBlocks ||
		got.Words != want.Words || got.Node != want.Node || got.Nodes != want.Nodes {
		t.Fatalf("header mismatch: %+v", got)
	}
	if got.VertexLo != want.VertexLo || got.VertexHi != want.VertexHi ||
		got.BlockLo != want.BlockLo || got.BlockHi != want.BlockHi || got.SlotBase != want.SlotBase {
		t.Fatalf("ranges mismatch: %+v", got)
	}
	if got.Counters != want.Counters {
		t.Fatalf("counters = %+v, want %+v", got.Counters, want.Counters)
	}
	if !bytes.Equal(got.Active, want.Active) {
		t.Fatalf("active = %v, want %v", got.Active, want.Active)
	}
	for name, pair := range map[string][2][]uint64{
		"values":   {got.Values, want.Values},
		"priority": {got.Priority, want.Priority},
		"stamps":   {got.Stamps, want.Stamps},
	} {
		if len(pair[0]) != len(pair[1]) {
			t.Fatalf("%s length %d, want %d", name, len(pair[0]), len(pair[1]))
		}
		for i := range pair[0] {
			if pair[0][i] != pair[1][i] {
				t.Fatalf("%s[%d] = %#x, want %#x", name, i, pair[0][i], pair[1][i])
			}
		}
	}
}

// TestCheckpointDecodeBitflips: every single-bit flip of a valid state
// file must either decode to the identical state (flips inside ignored
// reserved bits) or fail — never panic, never return silently different
// state. CRC coverage makes "identical or refused" the only outcomes.
func TestCheckpointDecodeBitflips(t *testing.T) {
	raw := encodeState(t, testState())
	// Flip one bit per byte position; every byte of this small file is
	// covered without a 8x blowup in test time.
	for i := range raw {
		mut := bytes.Clone(raw)
		mut[i] ^= 1 << (i % 8)
		st, err := Decode(bytes.NewReader(mut))
		if err != nil {
			continue
		}
		// A surviving decode must be byte-identical on re-encode.
		var re bytes.Buffer
		if err := Encode(&re, st); err != nil {
			t.Fatalf("flip at %d: re-encode: %v", i, err)
		}
		if !bytes.Equal(re.Bytes(), raw) {
			t.Fatalf("flip at byte %d decoded to different state without an error", i)
		}
	}
}

// TestCheckpointDecodeTruncations: every prefix of a valid file must be
// refused (torn write detection).
func TestCheckpointDecodeTruncations(t *testing.T) {
	raw := encodeState(t, testState())
	for l := 0; l < len(raw); l++ {
		if _, err := Decode(bytes.NewReader(raw[:l])); err == nil {
			t.Fatalf("decode of %d/%d-byte prefix succeeded", l, len(raw))
		}
	}
}

func TestCheckpointEncodeRejectsInvalid(t *testing.T) {
	bad := testState()
	bad.Priority[0] = math.Float64bits(math.NaN())
	if err := Encode(io.Discard, bad); err == nil {
		t.Fatal("encode accepted a NaN priority")
	}
	bad = testState()
	bad.Active[0] = 2
	if err := Encode(io.Discard, bad); err == nil {
		t.Fatal("encode accepted an active flag of 2")
	}
	bad = testState()
	bad.Values = bad.Values[:1]
	if err := Encode(io.Discard, bad); err == nil {
		t.Fatal("encode accepted a short values array")
	}
}

func TestDirStoreCommitAndLatest(t *testing.T) {
	dir := t.TempDir()
	store, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	st := testState()
	manifest := func(run string, epoch uint64, ms int64) *Manifest {
		return &Manifest{
			RunID: run, Epoch: epoch, Nodes: 2, Program: "pr",
			GraphDigest: "abc", ConfigHash: "def",
			NumVertices: 100, NumBlocks: 10, SavedUnixMs: ms,
		}
	}
	for node := 0; node < 2; node++ {
		if err := store.WriteState("run-a", 1, node, func(w io.Writer) error { return Encode(w, st) }); err != nil {
			t.Fatal(err)
		}
	}
	// Before Commit there is nothing to resume.
	if _, err := store.Load("run-a"); err == nil {
		t.Fatal("Load succeeded before Commit")
	}
	if err := store.Commit(manifest("run-a", 1, 100)); err != nil {
		t.Fatal(err)
	}
	m, err := store.Load("run-a")
	if err != nil {
		t.Fatal(err)
	}
	if m.Epoch != 1 || m.Program != "pr" {
		t.Fatalf("manifest = %+v", m)
	}
	rc, err := store.ReadState("run-a", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(rc)
	_ = rc.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got.Counters != st.Counters {
		t.Fatalf("state counters = %+v, want %+v", got.Counters, st.Counters)
	}
	// Latest picks the newest committed run across run ids.
	if err := store.Commit(manifest("run-b", 3, 200)); err != nil {
		t.Fatal(err)
	}
	latest, err := store.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if latest.RunID != "run-b" || latest.Epoch != 3 {
		t.Fatalf("latest = %+v, want run-b epoch 3", latest)
	}
	// Hostile run ids never touch the filesystem.
	if _, err := store.Load("../escape"); err == nil {
		t.Fatal("Load accepted a path-traversal run id")
	}
	if err := store.WriteState("a/b", 1, 0, func(io.Writer) error { return nil }); err == nil {
		t.Fatal("WriteState accepted a separator in the run id")
	}
}

// TestDirStoreRefusesTornState: corrupting a committed state file makes
// the resume read fail, it does not resume garbage.
func TestDirStoreRefusesTornState(t *testing.T) {
	dir := t.TempDir()
	store, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	st := testState()
	if err := store.WriteState("run", 1, 0, func(w io.Writer) error { return Encode(w, st) }); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "run", stateFileName(1, 0))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate mid-values: the classic torn write.
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	rc, err := store.ReadState("run", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = rc.Close() }()
	if _, err := Decode(rc); err == nil {
		t.Fatal("decode of a truncated state file succeeded")
	}
}

// TestAtomicWriteFile: a failed write leaves the previous content intact
// and no temp litter behind.
func TestAtomicWriteFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := AtomicWriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "first\n")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("mid-write crash")
	err := AtomicWriteFile(path, func(w io.Writer) error {
		if _, err := io.WriteString(w, "second, partial"); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the injected failure", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "first\n" {
		t.Fatalf("target holds %q after failed rewrite, want the previous content", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		var names []string
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("temp litter after failed write: %v", names)
	}
}

func TestScheduleRecorderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	rec := NewScheduleRecorder(&buf)
	const nIDs = 100000 // several ring wraps, exercising the flusher race
	for i := 0; i < nIDs; i++ {
		rec.Record(i % 64)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	ids, err := ReadSchedule(bytes.NewReader(buf.Bytes()), 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != nIDs {
		t.Fatalf("read %d ids, want %d", len(ids), nIDs)
	}
	for i, b := range ids {
		if int(b) != i%64 {
			t.Fatalf("ids[%d] = %d, want %d", i, b, i%64)
		}
	}
	// A truncated recording (lost trailer) must be refused.
	if _, err := ReadSchedule(bytes.NewReader(buf.Bytes()[:buf.Len()-4]), 64); err == nil {
		t.Fatal("truncated schedule accepted")
	}
	// Ids outside the block range must be refused.
	if _, err := ReadSchedule(bytes.NewReader(buf.Bytes()), 8); err == nil {
		t.Fatal("schedule with out-of-range ids accepted")
	}
}

func TestManifestValidation(t *testing.T) {
	good := `{"run_id":"r1","epoch":2,"nodes":1,"program":"pr","graph_digest":"d","config_hash":"c","num_vertices":10,"num_blocks":2,"saved_unix_ms":5}`
	if _, err := DecodeManifest(strings.NewReader(good)); err != nil {
		t.Fatal(err)
	}
	for name, bad := range map[string]string{
		"traversal run id": `{"run_id":"../x","epoch":1,"nodes":1,"program":"pr","graph_digest":"d","config_hash":"c","num_vertices":1,"num_blocks":1,"saved_unix_ms":1}`,
		"zero nodes":       `{"run_id":"r","epoch":1,"nodes":0,"program":"pr","graph_digest":"d","config_hash":"c","num_vertices":1,"num_blocks":1,"saved_unix_ms":1}`,
		"no program":       `{"run_id":"r","epoch":1,"nodes":1,"program":"","graph_digest":"d","config_hash":"c","num_vertices":1,"num_blocks":1,"saved_unix_ms":1}`,
		"unknown field":    `{"run_id":"r","epoch":1,"nodes":1,"program":"pr","graph_digest":"d","config_hash":"c","num_vertices":1,"num_blocks":1,"saved_unix_ms":1,"extra":true}`,
		"not json":         `GABC????`,
	} {
		if _, err := DecodeManifest(strings.NewReader(bad)); err == nil {
			t.Fatalf("%s: accepted %s", name, bad)
		}
	}
}

func TestConfigHashAndDigestStability(t *testing.T) {
	a := ConfigHash("pr", 100, 10, 1, 2)
	if b := ConfigHash("pr", 100, 10, 1, 2); a != b {
		t.Fatalf("ConfigHash unstable: %s vs %s", a, b)
	}
	for i, other := range []string{
		ConfigHash("cc", 100, 10, 1, 2),
		ConfigHash("pr", 101, 10, 1, 2),
		ConfigHash("pr", 100, 11, 1, 2),
		ConfigHash("pr", 100, 10, 2, 2),
		ConfigHash("pr", 100, 10, 1, 3),
	} {
		if other == a {
			t.Fatalf("variant %d collides with the base hash", i)
		}
	}
	d1 := DigestOffsets(3, 4, []int64{0, 1, 2, 4}, []int64{0, 2, 3, 4})
	d2 := DigestOffsets(3, 4, []int64{0, 1, 3, 4}, []int64{0, 2, 3, 4})
	if d1 == d2 {
		t.Fatal("offset digest ignores the offset arrays")
	}
	if fmt.Sprintf("%s", d1) == "" || len(d1) != 16 {
		t.Fatalf("digest %q is not 16 hex chars", d1)
	}
}
