package checkpoint

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"graphabcd/internal/graph"
)

// DigestOffsets fingerprints a graph from the quantities every runtime
// already holds: vertex/edge counts plus both full degree sequences (the
// CSC and CSR offset arrays). The distributed coordinator reads exactly
// these arrays from the snapshot header region, so single-process and
// cluster runs compute the same digest without an O(m) edge-list pass.
// Two graphs with identical degree sequences in both directions could
// collide, but the digest is a resume mismatch guard, not an integrity
// check — the state and graph files each carry their own CRCs.
func DigestOffsets(n, m int64, inOff, outOff []int64) string {
	h := fnv.New64a()
	var b [8]byte
	put := func(v int64) {
		binary.LittleEndian.PutUint64(b[:], uint64(v))
		_, _ = h.Write(b[:])
	}
	put(n)
	put(m)
	for _, o := range inOff {
		put(o)
	}
	for _, o := range outOff {
		put(o)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// DigestGraph is DigestOffsets over an in-memory graph.
func DigestGraph(g *graph.Graph) string {
	n, m := g.NumVertices(), g.NumEdges()
	h := fnv.New64a()
	var b [8]byte
	put := func(v int64) {
		binary.LittleEndian.PutUint64(b[:], uint64(v))
		_, _ = h.Write(b[:])
	}
	put(int64(n))
	put(int64(m))
	for v := 0; v <= n; v++ {
		put(g.InOffset(v))
	}
	for v := 0; v <= n; v++ {
		put(g.OutOffset(v))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// ConfigHash fingerprints the run shape a checkpoint's scheduler and
// value sections are only meaningful under: the program, the block
// geometry, the codec width, and the cluster size. Engine knobs that do
// not change state layout (worker counts, epsilon, policy) deliberately
// stay out, so a resume may retune them.
func ConfigHash(program string, numVertices, numBlocks int64, words, nodes int) string {
	h := fnv.New64a()
	_, _ = fmt.Fprintf(h, "prog=%s n=%d nb=%d words=%d nodes=%d", program, numVertices, numBlocks, words, nodes)
	return fmt.Sprintf("%016x", h.Sum64())
}
