package metrics

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("Geomean(2,8) = %g", g)
	}
	if g := Geomean([]float64{3}); math.Abs(g-3) > 1e-12 {
		t.Fatalf("Geomean(3) = %g", g)
	}
	// Non-positive entries are skipped.
	if g := Geomean([]float64{2, 0, -1, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("Geomean with junk = %g", g)
	}
	if Geomean(nil) != 0 || Geomean([]float64{0}) != 0 {
		t.Fatal("empty geomean must be 0")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Name = "pr/lj"
	s.Add(8, 10)
	s.Add(64, 20)
	s.Normalize(10)
	if s.Points[0].Y != 1 || s.Points[1].Y != 2 {
		t.Fatalf("normalized points %v", s.Points)
	}
	before := append([]Point(nil), s.Points...)
	s.Normalize(0) // no-op
	for i := range before {
		if s.Points[i] != before[i] {
			t.Fatal("Normalize(0) must be a no-op")
		}
	}
}

func TestTable(t *testing.T) {
	var buf bytes.Buffer
	tab := NewTable(&buf, "app", "time", "x")
	tab.Row("pr", 1.23456, 7)
	tab.Row("sssp", float32(0.5), "n/a")
	if err := tab.Flush(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"app", "pr", "1.235", "sssp", "0.5", "n/a"} {
		if !strings.Contains(out, frag) {
			t.Errorf("table output missing %q:\n%s", frag, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 lines, got %d", len(lines))
	}
}

func TestFormatDuration(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		-1:      "0",
		500e-9:  "0.5us",
		0.0025:  "2.50ms",
		1.5:     "1.500s",
		0.00005: "50.0us",
	}
	for in, want := range cases {
		if got := FormatDuration(in); got != want {
			t.Errorf("FormatDuration(%g) = %q, want %q", in, got, want)
		}
	}
}

// TestFormatDurationBoundaries pins the unit-switch thresholds: exactly
// 1 ms must render in ms (not us), exactly 1 s in seconds.
func TestFormatDurationBoundaries(t *testing.T) {
	cases := map[float64]string{
		1e-3:     "1.00ms",
		0.000999: "999.0us",
		0.9995:   "999.50ms",
		1.0:      "1.000s",
		3600:     "3600.000s",
	}
	for in, want := range cases {
		if got := FormatDuration(in); got != want {
			t.Errorf("FormatDuration(%g) = %q, want %q", in, got, want)
		}
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil, 10) != "" {
		t.Error("empty series must render empty")
	}
	if Sparkline([]float64{1, 2}, 0) != "" || Sparkline([]float64{1}, -3) != "" {
		t.Error("non-positive width must render empty")
	}
	if Sparkline([]float64{math.NaN(), math.Inf(1), math.Inf(-1)}, 5) != "" {
		t.Error("all-invalid series must render empty")
	}

	// A flat series renders at the floor glyph, full requested width.
	flat := Sparkline([]float64{3, 3, 3, 3}, 4)
	if flat != "▁▁▁▁" {
		t.Errorf("flat sparkline = %q", flat)
	}

	// A monotone ramp starts at the floor and ends at the ceiling.
	ramp := make([]float64, 64)
	for i := range ramp {
		ramp[i] = float64(i)
	}
	s := []rune(Sparkline(ramp, 8))
	if len(s) != 8 {
		t.Fatalf("width = %d, want 8", len(s))
	}
	if s[0] != '▁' || s[7] != '█' {
		t.Errorf("ramp endpoints = %q...%q", s[0], s[7])
	}
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			t.Errorf("ramp not monotone at cell %d: %q", i, string(s))
		}
	}

	// Fewer samples than width: output shrinks to the sample count.
	if got := Sparkline([]float64{1, 9}, 10); len([]rune(got)) != 2 {
		t.Errorf("short series width = %d, want 2", len([]rune(got)))
	}

	// NaN samples are skipped, not treated as zero.
	withNaN := Sparkline([]float64{5, math.NaN(), 5}, 3)
	if withNaN != "▁▁" {
		t.Errorf("NaN-skipping sparkline = %q", withNaN)
	}
}
