// Package metrics provides the small numeric and reporting helpers shared
// by the experiment harness: geometric means (the paper reports geo-mean
// speedups), normalized series for the convergence figures, and aligned
// table rendering for the Table II/III reproductions.
package metrics

import (
	"fmt"
	"io"
	"math"
	"text/tabwriter"
)

// Geomean returns the geometric mean of xs, ignoring non-positive entries
// (a speedup of 0 or below indicates a failed measurement, not a datum).
// It returns 0 if no positive entries exist.
func Geomean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Point is one sample of a named curve.
type Point struct {
	X, Y float64
}

// Series is a named curve, e.g. "priority/PR/LJ" in Fig. 4.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a sample.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{X: x, Y: y}) }

// Normalize divides every Y by base (e.g. the BSP epoch count), matching
// the paper's "normalized to BSP" presentation. Non-positive bases leave
// the series unchanged.
func (s *Series) Normalize(base float64) {
	if base <= 0 {
		return
	}
	for i := range s.Points {
		s.Points[i].Y /= base
	}
}

// Table renders aligned rows. Build with NewTable, emit with Flush.
type Table struct {
	w  *tabwriter.Writer
	ow io.Writer
}

// NewTable starts a table on w with the given header columns.
func NewTable(w io.Writer, header ...string) *Table {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	t := &Table{w: tw, ow: w}
	t.Row(toAny(header)...)
	return t
}

// Row adds one row; cells are formatted with %v (floats with %.4g).
func (t *Table) Row(cells ...any) {
	for i, c := range cells {
		if i > 0 {
			t.print("\t")
		}
		switch v := c.(type) {
		case float64:
			t.print("%.4g", v)
		case float32:
			t.print("%.4g", v)
		default:
			t.print("%v", v)
		}
	}
	t.print("\n")
}

// print writes one cell fragment into the tabwriter; write errors are
// buffered by tabwriter and surface from Flush, which callers check.
func (t *Table) print(format string, args ...any) {
	_, _ = fmt.Fprintf(t.w, format, args...)
}

// Flush writes the accumulated table.
func (t *Table) Flush() error { return t.w.Flush() }

func toAny(ss []string) []any {
	out := make([]any, len(ss))
	for i, s := range ss {
		out[i] = s
	}
	return out
}

// sparkLevels are the eight block glyphs a sparkline is drawn with.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders xs as a fixed-width unicode sparkline, downsampling
// by bucket means when len(xs) > width. Values are scaled linearly
// between the series' min and max; NaN/Inf samples are skipped. It
// returns "" for an empty series or non-positive width — callers can
// print the result unconditionally.
func Sparkline(xs []float64, width int) string {
	if width <= 0 {
		return ""
	}
	clean := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) && !math.IsInf(x, 0) {
			clean = append(clean, x)
		}
	}
	if len(clean) == 0 {
		return ""
	}
	if width > len(clean) {
		width = len(clean)
	}
	// Bucket means: cell i covers clean[i*n/width : (i+1)*n/width).
	cells := make([]float64, width)
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < width; i++ {
		a, b := i*len(clean)/width, (i+1)*len(clean)/width
		if b == a {
			b = a + 1
		}
		sum := 0.0
		for _, x := range clean[a:b] {
			sum += x
		}
		cells[i] = sum / float64(b-a)
		lo, hi = math.Min(lo, cells[i]), math.Max(hi, cells[i])
	}
	out := make([]rune, width)
	for i, c := range cells {
		level := 0
		if hi > lo {
			level = int((c - lo) / (hi - lo) * float64(len(sparkLevels)-1))
		}
		out[i] = sparkLevels[level]
	}
	return string(out)
}

// FormatDuration renders seconds compactly for report tables.
func FormatDuration(sec float64) string {
	switch {
	case sec <= 0:
		return "0"
	case sec < 1e-3:
		return fmt.Sprintf("%.1fus", sec*1e6)
	case sec < 1:
		return fmt.Sprintf("%.2fms", sec*1e3)
	default:
		return fmt.Sprintf("%.3fs", sec)
	}
}
