package accel

import "fmt"

// ResourceReport is the reproduction's substitute for the paper's Table IV
// (FPGA resource utilization): since there is no FPGA, we report the
// modeled accelerator's buffer footprints, which are the quantities the
// paper's Table IV discussion actually compares against Graphicionado's
// 64-256 MB scratchpad (GraphABCD needs only small streaming buffers
// because of the pull-push operator).
type ResourceReport struct {
	Algorithm string
	NumPEs    int
	// InputBufBytes is the per-PE streaming input FIFO (double-buffered
	// fixed-size chunks — edge blocks are streamed, never staged whole,
	// which is why the paper's whole-design BRAM stays at 2.69 MB).
	InputBufBytes int64
	// OutputBufBytes is the per-PE output buffer sized to one vertex
	// value block.
	OutputBufBytes int64
	// ScratchpadBytes is the per-PE dataflow-tag scratchpad for unpaired
	// partial sums (one slot per in-flight destination vertex).
	ScratchpadBytes int64
	// TotalOnChipBytes is the summed on-chip footprint across PEs — the
	// analog of the paper's 2.69 MB BRAM figure.
	TotalOnChipBytes int64
	// SharedBufferBytes is the host-side shared memory buffer holding the
	// vertex values and edge caches (the analog of the 35 MB LLC figure).
	SharedBufferBytes int64
}

// streamChunkBytes is the per-buffer size of the PE input FIFO. Edge
// blocks stream through two of these regardless of block size.
const streamChunkBytes = 32 << 10

// Resources computes the modeled footprint for a run over a graph with the
// given block geometry and value width.
//
// blockVertices is the vertices per block; valueBytes is the encoded
// vertex value width; edgeBytes the streamed per-edge payload (weight +
// cached value); totalVertices/totalEdges size the shared host buffer.
func Resources(algorithm string, numPEs int, blockVertices int,
	valueBytes, edgeBytes int64, totalVertices int, totalEdges int64) ResourceReport {
	in := int64(2 * streamChunkBytes) // double-buffered streaming input
	out := int64(blockVertices) * valueBytes
	scratch := int64(blockVertices) * (valueBytes + 4) // value + tag per slot
	return ResourceReport{
		Algorithm:         algorithm,
		NumPEs:            numPEs,
		InputBufBytes:     in,
		OutputBufBytes:    out,
		ScratchpadBytes:   scratch,
		TotalOnChipBytes:  int64(numPEs) * (in + out + scratch),
		SharedBufferBytes: int64(totalVertices)*valueBytes + totalEdges*edgeBytes,
	}
}

// String formats the report as a Table-IV-style row.
func (r ResourceReport) String() string {
	return fmt.Sprintf("%-10s PEs=%d inBuf=%s outBuf=%s scratch=%s onChip=%s shared=%s",
		r.Algorithm, r.NumPEs, fmtBytes(r.InputBufBytes), fmtBytes(r.OutputBufBytes),
		fmtBytes(r.ScratchpadBytes), fmtBytes(r.TotalOnChipBytes), fmtBytes(r.SharedBufferBytes))
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}
