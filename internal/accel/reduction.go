package accel

import "container/heap"

// This file is a cycle-level functional model of the GATHER reduction
// microarchitecture of Sec. IV-C (right side of the paper's Fig. 2).
//
// The GATHER stage is a reduction over a vertex's in-edges. A naive
// pipeline stalls whenever consecutive edges target the same destination:
// the accumulator for that destination is busy for the combine latency L,
// so a hub vertex serializes at one edge per L cycles — the dependency
// stall the paper attributes to Graphicionado's atomic GATHER.
//
// GraphABCD's unit instead treats destination indices as dataflow tags:
// any two ready items with the same tag (edges or partial sums) may pair
// and issue to the reduction tree, out of order; unpaired items wait in an
// on-chip scratchpad, and finished partial sums merge back into the input
// stream. As long as some tag has two ready items, the unit issues one
// combine per cycle, so throughput is one edge per cycle regardless of
// the combine operator's latency.
//
// Both models compute the real reduction (they are functional), so tests
// can check the results agree while comparing cycle counts.

// Contribution is one tagged input to a reduction (an edge's value for
// destination tag Tag).
type Contribution struct {
	Tag   uint32
	Value float64
}

// ReductionResult is a completed per-tag reduction.
type ReductionResult struct {
	Tag   uint32
	Value float64
}

// NaiveReduce models the stalling in-order pipeline: contributions issue
// in order, at most one per cycle, and a contribution whose tag's
// accumulator is still busy (for latencyCycles after its last combine)
// stalls the whole pipeline. It returns the per-tag results and the total
// cycle count.
func NaiveReduce(in []Contribution, counts map[uint32]int, combine func(a, b float64) float64, latencyCycles int) ([]ReductionResult, int64) {
	type acc struct {
		value    float64
		seen     int
		busyTill int64
	}
	accs := make(map[uint32]*acc, len(counts))
	cycle := int64(0)
	for _, c := range in {
		cycle++ // issue slot
		a := accs[c.Tag]
		if a == nil {
			a = &acc{}
			accs[c.Tag] = a
		}
		if a.busyTill > cycle {
			// In-order pipeline: stall until the accumulator frees.
			cycle = a.busyTill
		}
		if a.seen == 0 {
			a.value = c.Value
		} else {
			a.value = combine(a.value, c.Value)
			a.busyTill = cycle + int64(latencyCycles)
		}
		a.seen++
	}
	// Drain: results are ready when their last combine finishes.
	var out []ReductionResult
	for tag, a := range accs {
		if a.busyTill > cycle {
			cycle = a.busyTill
		}
		if a.seen != counts[tag] {
			// Functional guard; callers supply consistent counts.
			continue
		}
		out = append(out, ReductionResult{Tag: tag, Value: a.value})
	}
	return out, cycle
}

// DataflowReduce models the paper's tag-matched out-of-order unit: one
// combine issues per cycle whenever any tag holds two ready items; combine
// results become ready again latencyCycles later and merge back into the
// stream. Input contribution i arrives (becomes ready) at cycle i+1 —
// one edge streams in per cycle, the DMA rate. It returns the per-tag
// results, the total cycle count, and the high-water mark of the
// scratchpad holding unpaired items.
func DataflowReduce(in []Contribution, counts map[uint32]int, combine func(a, b float64) float64, latencyCycles int) ([]ReductionResult, int64, int) {
	// Ready items per tag, plus a min-heap of future arrivals (input
	// stream and in-flight combine results).
	ready := make(map[uint32][]float64, len(counts))
	remaining := make(map[uint32]int, len(counts)) // combines left per tag
	for tag, n := range counts {
		if n > 0 {
			remaining[tag] = n - 1
		}
	}
	arrivals := &arrivalHeap{}
	for i, c := range in {
		heap.Push(arrivals, arrival{at: int64(i + 1), tag: c.Tag, value: c.Value})
	}

	var out []ReductionResult
	cycle := int64(0)
	maxScratch, scratch := 0, 0
	pending := len(in) // items not yet retired into results or combines
	for pending > 0 {
		cycle++
		// Absorb everything that has arrived by this cycle.
		for arrivals.Len() > 0 && (*arrivals)[0].at <= cycle {
			a := heap.Pop(arrivals).(arrival)
			if remaining[a.tag] == 0 && len(ready[a.tag]) == 0 {
				// Fully reduced: retire.
				out = append(out, ReductionResult{Tag: a.tag, Value: a.value})
				pending--
				continue
			}
			ready[a.tag] = append(ready[a.tag], a.value)
			scratch++
			if scratch > maxScratch {
				maxScratch = scratch
			}
		}
		// Issue at most one combine per cycle: any tag with two ready items.
		for tag, items := range ready {
			if len(items) < 2 {
				continue
			}
			v := combine(items[len(items)-1], items[len(items)-2])
			items = items[:len(items)-2]
			if len(items) == 0 {
				delete(ready, tag)
			} else {
				ready[tag] = items
			}
			scratch -= 2
			remaining[tag]--
			pending-- // two items became one
			heap.Push(arrivals, arrival{at: cycle + int64(latencyCycles), tag: tag, value: v})
			break
		}
		// A lone ready item whose tag has no combines left retires freely.
		for tag, items := range ready {
			if remaining[tag] == 0 && len(items) == 1 {
				out = append(out, ReductionResult{Tag: tag, Value: items[0]})
				delete(ready, tag)
				scratch--
				pending--
			}
		}
	}
	return out, cycle, maxScratch
}

type arrival struct {
	at    int64
	tag   uint32
	value float64
}

type arrivalHeap []arrival

func (h arrivalHeap) Len() int            { return len(h) }
func (h arrivalHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h arrivalHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *arrivalHeap) Push(x interface{}) { *h = append(*h, x.(arrival)) }
func (h *arrivalHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
