// Package accel is the discrete-event model of the hardware accelerator
// side of GraphABCD — the substitute for the paper's Intel HARPv2 CPU-FPGA
// platform (Sec. IV-C), which this reproduction does not have.
//
// The model captures exactly the quantities the paper's evaluation reasons
// about: a shared CPU-accelerator bus with a fixed bandwidth budget
// (12.8 GB/s on HARPv2), a pool of processing elements each streaming one
// edge per clock cycle through the GATHER-APPLY pipeline, per-task offload
// latency (the LogCA invocation cost of Sec. IV-A1), and a classified
// memory-traffic ledger (sequential reads / sequential writes / random
// writes) for the Fig. 9 breakdown. The algorithmic results are always
// computed for real by the Go engine; the model only accounts simulated
// time, so PE utilization (Fig. 8), bus utilization (Fig. 9b) and scaling
// knees (Fig. 10) emerge from the same bandwidth arithmetic as on the real
// system.
package accel

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// AccessKind classifies a modeled memory transfer.
type AccessKind int

const (
	// SeqRead is the accelerator streaming an edge block (GATHER input).
	SeqRead AccessKind = iota
	// SeqWrite is the accelerator writing back a vertex value block.
	SeqWrite
	// RandWrite is the CPU's SCATTER writing out-edge cache slots.
	RandWrite
	// RandRead is a CPU-side random read (used by baseline models only;
	// GraphABCD's accelerator accesses are fully sequential).
	RandRead
	numKinds
)

// String names the access kind.
func (k AccessKind) String() string {
	switch k {
	case SeqRead:
		return "seq-read"
	case SeqWrite:
		return "seq-write"
	case RandWrite:
		return "rand-write"
	case RandRead:
		return "rand-read"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Config describes the modeled platform. The zero value is not valid; use
// DefaultHARPv2 or fill every field.
type Config struct {
	// NumPEs is the number of accelerator processing elements.
	NumPEs int
	// BusGBps is the CPU<->accelerator bandwidth in GB/s (HARPv2: two
	// PCIe x8 plus one QPI, 12.8 GB/s total).
	BusGBps float64
	// ClockMHz is the PE clock (HARPv2 prototype: 200 MHz).
	ClockMHz float64
	// EdgesPerCycle is the per-PE GATHER pipeline throughput; the paper's
	// dynamic dataflow reduction sustains 1 edge/cycle regardless of the
	// reduction operator's latency.
	EdgesPerCycle float64
	// InvokeLatencyNs is the per-task offload latency (task dequeue + DMA
	// setup). HARPv2 LLC-to-FPGA round trip is ~300 ns.
	InvokeLatencyNs float64

	// CPUThreads is the number of host worker threads (HARPv2: 14).
	CPUThreads int
	// ScatterNsPerEdge is the host cost of one SCATTER edge write
	// (random access into the edge cache).
	ScatterNsPerEdge float64
	// CPUGatherNsPerEdge is the host cost of one software GATHER edge
	// (used by hybrid execution and the all-software baseline; higher
	// than the PE cost because of cache-missing random reads and the
	// reduction dependency chain the paper's Fig. 6 discussion cites).
	CPUGatherNsPerEdge float64
	// CPUSweepNsPerEdge is the host cost of one edge in a GraphMat-style
	// dense SpMV sweep — lower than CPUGatherNsPerEdge because full
	// sweeps stream the matrix with good locality on the host's 58 GB/s
	// memory system (the asymmetry Sec. V-C notes when GraphMat's raw
	// MTEPS beats the accelerator's).
	CPUSweepNsPerEdge float64
}

// DefaultHARPv2 returns the model of the paper's evaluation platform.
func DefaultHARPv2() Config {
	return Config{
		NumPEs:             16,
		BusGBps:            12.8,
		ClockMHz:           200,
		EdgesPerCycle:      1,
		InvokeLatencyNs:    300,
		CPUThreads:         14,
		ScatterNsPerEdge:   6.0,
		CPUGatherNsPerEdge: 45.0,
		CPUSweepNsPerEdge:  12.0,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.NumPEs <= 0:
		return fmt.Errorf("accel: NumPEs must be positive, got %d", c.NumPEs)
	case c.BusGBps <= 0:
		return fmt.Errorf("accel: BusGBps must be positive, got %g", c.BusGBps)
	case c.ClockMHz <= 0:
		return fmt.Errorf("accel: ClockMHz must be positive, got %g", c.ClockMHz)
	case c.EdgesPerCycle <= 0:
		return fmt.Errorf("accel: EdgesPerCycle must be positive, got %g", c.EdgesPerCycle)
	case c.InvokeLatencyNs < 0:
		return fmt.Errorf("accel: negative InvokeLatencyNs %g", c.InvokeLatencyNs)
	case c.CPUThreads <= 0:
		return fmt.Errorf("accel: CPUThreads must be positive, got %d", c.CPUThreads)
	case c.ScatterNsPerEdge < 0 || c.CPUGatherNsPerEdge < 0 || c.CPUSweepNsPerEdge < 0:
		return fmt.Errorf("accel: negative CPU cost")
	}
	return nil
}

// Simulator is the shared accounting state of one modeled run. All methods
// are safe for concurrent use by the engine's workers; each PE / CPUWorker
// handle must be driven by a single goroutine at a time.
type Simulator struct {
	cfg Config
	bus bus

	trafficBytes [numKinds]atomic.Int64
	trafficOps   [numKinds]atomic.Int64

	pes []PE
	cpu []CPUWorker
}

// New builds a simulator for cfg.
func New(cfg Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Simulator{cfg: cfg}
	s.bus.bytesPerNs = cfg.BusGBps // 1 GB/s == 1 byte/ns
	s.pes = make([]PE, cfg.NumPEs)
	s.cpu = make([]CPUWorker, cfg.CPUThreads)
	for i := range s.pes {
		s.pes[i].sim = s
	}
	for i := range s.cpu {
		s.cpu[i].sim = s
	}
	return s, nil
}

// Config returns the modeled platform.
func (s *Simulator) Config() Config { return s.cfg }

// PE returns processing element i.
func (s *Simulator) PE(i int) *PE { return &s.pes[i] }

// CPU returns host worker thread i.
func (s *Simulator) CPU(i int) *CPUWorker { return &s.cpu[i] }

// LeastLoadedPE returns the PE with the earliest local clock — the unit an
// idle-PE-pulls-next-task queue would hand the next block to. Using this
// instead of a fixed goroutine-to-PE binding keeps the model independent
// of how the Go scheduler interleaves the real worker goroutines (on a
// single-core host one goroutine can otherwise absorb most tasks and
// distort the modeled makespan).
func (s *Simulator) LeastLoadedPE() *PE {
	best := &s.pes[0]
	for i := 1; i < len(s.pes); i++ {
		if s.pes[i].doneNs.load() < best.doneNs.load() {
			best = &s.pes[i]
		}
	}
	return best
}

// LeastLoadedCPU returns the host worker with the earliest local clock.
func (s *Simulator) LeastLoadedCPU() *CPUWorker {
	best := &s.cpu[0]
	for i := 1; i < len(s.cpu); i++ {
		if s.cpu[i].localNs.load() < best.localNs.load() {
			best = &s.cpu[i]
		}
	}
	return best
}

func (s *Simulator) addTraffic(kind AccessKind, bytes int64) {
	s.trafficBytes[kind].Add(bytes)
	s.trafficOps[kind].Add(1)
}

// TrafficBytes returns the bytes transferred with the given kind.
func (s *Simulator) TrafficBytes(kind AccessKind) int64 { return s.trafficBytes[kind].Load() }

// TrafficOps returns the number of transfers of the given kind.
func (s *Simulator) TrafficOps(kind AccessKind) int64 { return s.trafficOps[kind].Load() }

// BusBytes returns the total bytes moved over the CPU-accelerator bus
// (sequential reads plus sequential writes; SCATTER stays host-side).
func (s *Simulator) BusBytes() int64 {
	return s.TrafficBytes(SeqRead) + s.TrafficBytes(SeqWrite)
}

// SimTimeNs returns the modeled makespan: the latest local clock of any PE
// or CPU worker.
func (s *Simulator) SimTimeNs() float64 {
	end := 0.0
	for i := range s.pes {
		end = math.Max(end, s.pes[i].localNs.load())
	}
	for i := range s.cpu {
		end = math.Max(end, s.cpu[i].localNs.load())
	}
	return end
}

// BusBusyNs returns the total time the bus spent transferring.
func (s *Simulator) BusBusyNs() float64 { return s.bus.busyNs.load() }

// BusUtilization returns bus busy time over makespan, in [0, 1].
func (s *Simulator) BusUtilization() float64 {
	t := s.SimTimeNs()
	if t == 0 {
		return 0
	}
	return math.Min(1, s.BusBusyNs()/t)
}

// PEUtilization returns the mean fraction of the makespan the PEs spent
// computing (as opposed to stalled on the bus or idle), the Fig. 8 metric.
func (s *Simulator) PEUtilization() float64 {
	t := s.SimTimeNs()
	if t == 0 || len(s.pes) == 0 {
		return 0
	}
	busy := 0.0
	for i := range s.pes {
		busy += s.pes[i].busyNs.load()
	}
	return math.Min(1, busy/(t*float64(len(s.pes))))
}

// CPUUtilization returns the mean busy fraction of the host workers.
func (s *Simulator) CPUUtilization() float64 {
	t := s.SimTimeNs()
	if t == 0 || len(s.cpu) == 0 {
		return 0
	}
	busy := 0.0
	for i := range s.cpu {
		busy += s.cpu[i].busyNs.load()
	}
	return math.Min(1, busy/(t*float64(len(s.cpu))))
}

// Barrier aligns every PE and CPU worker clock to the current makespan,
// modeling a synchronization barrier: all units idle until the slowest
// finishes. The Barrier and BSP engine modes call this at each wave/sweep
// boundary so that barrier-induced idle time shows up in PE utilization
// (the Fig. 8 async-vs-sync contrast). Call only from a quiescent point
// (no PE or worker mid-task).
func (s *Simulator) Barrier() {
	t := s.SimTimeNs()
	for i := range s.pes {
		pe := &s.pes[i]
		pe.fetchNs.store(t)
		pe.prevDone.store(t)
		pe.doneNs.store(t)
		pe.localNs.store(t)
	}
	for i := range s.cpu {
		s.cpu[i].localNs.store(t)
	}
}

// bus models the shared CPU-accelerator link as a work-conserving FIFO
// queue with a fixed service rate: each request sees a delay equal to the
// backlog of queued work, and backlog drains whenever simulated time
// advances past it. Unlike a single "free horizon", an early-arriving
// request is not forced behind a transfer that was merely *issued* at a
// later simulated time, so one fast PE cannot ratchet every other unit's
// clock forward.
type bus struct {
	mu         sync.Mutex
	bytesPerNs float64
	lastNs     float64 // simulated time of the newest request seen
	backlogNs  float64 // queued service time remaining as of lastNs
	busyNs     atomicFloat
}

// acquire requests a transfer of bytes at simulated time nowNs and returns
// the transfer's start and end times.
func (b *bus) acquire(bytes int64, nowNs float64) (startNs, endNs float64) {
	if bytes <= 0 {
		return nowNs, nowNs // nothing to move
	}
	dur := float64(bytes) / b.bytesPerNs
	b.mu.Lock()
	if nowNs > b.lastNs {
		// Idle time since the last request drains the backlog.
		b.backlogNs -= nowNs - b.lastNs
		if b.backlogNs < 0 {
			b.backlogNs = 0
		}
		b.lastNs = nowNs
	}
	start := nowNs + b.backlogNs
	b.backlogNs += dur
	b.mu.Unlock()
	b.busyNs.add(dur)
	return start, start + dur
}

// PE models one accelerator processing element with the double-buffered
// input of the paper's customized DMA unit: the DMA fetch for block n+1
// may be issued while block n is still computing (bounded to one block of
// lookahead by the two input buffers), so compute and transfer pipeline
// across consecutive tasks. Drive each PE from a single goroutine.
type PE struct {
	sim      *Simulator
	mu       sync.Mutex  // serializes concurrent RunBlock calls on one PE
	fetchNs  atomicFloat // when the DMA engine is free to issue a fetch
	prevDone atomicFloat // compute-end of the block before the last one
	doneNs   atomicFloat // compute-end of the last block
	localNs  atomicFloat // end of the last write-back (makespan clock)
	busyNs   atomicFloat
	blocks   atomic.Int64
}

// RunBlock advances the PE's clocks across one block task: offload
// latency, streaming the edge block over the bus (double-buffered, so it
// overlaps the previous block's compute), the GATHER-APPLY pipeline, and
// the vertex-block write-back. It returns the PE's new local time.
// Safe for concurrent use; concurrent callers serialize on the PE.
func (pe *PE) RunBlock(edges, edgeBytes, writeBytes int64) float64 {
	pe.mu.Lock()
	defer pe.mu.Unlock()
	cfg := pe.sim.cfg
	// The fetch may issue once the DMA engine is free and the buffer the
	// block two tasks ago used has drained.
	issue := math.Max(pe.fetchNs.load(), pe.prevDone.load()) + cfg.InvokeLatencyNs
	readStart, readEnd := pe.sim.bus.acquire(edgeBytes, issue)
	pe.sim.addTraffic(SeqRead, edgeBytes)
	pe.fetchNs.store(readEnd)

	computeNs := float64(edges) / (cfg.ClockMHz * 1e6 * cfg.EdgesPerCycle) * 1e9
	// The pipeline starts once the previous block finished and data begins
	// arriving; it cannot finish before the data has fully arrived.
	computeStart := math.Max(pe.doneNs.load(), readStart)
	computeEnd := math.Max(readEnd, computeStart+computeNs)
	pe.prevDone.store(pe.doneNs.load())
	pe.doneNs.store(computeEnd)

	_, writeEnd := pe.sim.bus.acquire(writeBytes, computeEnd)
	pe.sim.addTraffic(SeqWrite, writeBytes)
	pe.localNs.store(writeEnd)
	pe.busyNs.add(computeNs)
	pe.blocks.Add(1)
	return writeEnd
}

// Blocks returns the number of block tasks this PE has executed.
func (pe *PE) Blocks() int64 { return pe.blocks.Load() }

// LocalTimeNs returns the PE's local clock.
func (pe *PE) LocalTimeNs() float64 { return pe.localNs.load() }

// CPUWorker models one host thread executing SCATTER (and, under hybrid
// execution, software GATHER-APPLY). Drive each worker from a single
// goroutine.
type CPUWorker struct {
	sim     *Simulator
	mu      sync.Mutex // serializes concurrent task accounting
	localNs atomicFloat
	busyNs  atomicFloat
}

// RunScatter advances the worker across a SCATTER task of the given edge
// count, accounting the random cache-slot writes.
func (w *CPUWorker) RunScatter(edges, bytes int64) float64 {
	dur := float64(edges) * w.sim.cfg.ScatterNsPerEdge
	w.sim.addTraffic(RandWrite, bytes)
	return w.advance(dur)
}

// RunGather advances the worker across a software GATHER-APPLY task
// (hybrid execution or the all-software baseline).
func (w *CPUWorker) RunGather(edges, bytes int64) float64 {
	dur := float64(edges) * w.sim.cfg.CPUGatherNsPerEdge
	w.sim.addTraffic(RandRead, bytes)
	return w.advance(dur)
}

func (w *CPUWorker) advance(durNs float64) float64 {
	w.mu.Lock() //abcdlint:ignore hotpath -- simulator clock: advance serializes simulated-time accounting in -sim runs, not the measured data path
	defer w.mu.Unlock()
	end := w.localNs.load() + durNs
	w.localNs.store(end)
	w.busyNs.add(durNs)
	return end
}

// LocalTimeNs returns the worker's local clock.
func (w *CPUWorker) LocalTimeNs() float64 { return w.localNs.load() }

// atomicFloat is a float64 with atomic load/store/add/cas via uint64 bits.
type atomicFloat struct{ bits atomic.Uint64 }

func (a *atomicFloat) load() float64   { return math.Float64frombits(a.bits.Load()) }
func (a *atomicFloat) store(v float64) { a.bits.Store(math.Float64bits(v)) }
func (a *atomicFloat) cas(old, new float64) bool {
	return a.bits.CompareAndSwap(math.Float64bits(old), math.Float64bits(new))
}
func (a *atomicFloat) add(d float64) {
	for {
		old := a.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if a.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// CPUHasSlack reports whether the least-loaded host worker's clock trails
// the least-loaded PE's pipeline — the hybrid-execution steal condition:
// while true, handing a block to a host worker finishes no later than the
// accelerator would get to it, so stealing adds capacity instead of
// stalling the modeled system behind slow software gathers.
func (s *Simulator) CPUHasSlack() bool {
	cpu := s.LeastLoadedCPU().localNs.load()
	pe := s.LeastLoadedPE().doneNs.load()
	return cpu < pe
}
