package accel

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func add(a, b float64) float64 { return a + b }

// expectedSums computes the reference reduction directly.
func expectedSums(in []Contribution) (map[uint32]float64, map[uint32]int) {
	sums := map[uint32]float64{}
	counts := map[uint32]int{}
	for _, c := range in {
		sums[c.Tag] += c.Value
		counts[c.Tag]++
	}
	return sums, counts
}

func checkResults(t *testing.T, got []ReductionResult, want map[uint32]float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for _, r := range got {
		w, ok := want[r.Tag]
		if !ok {
			t.Fatalf("unexpected tag %d", r.Tag)
		}
		if math.Abs(r.Value-w) > 1e-9*math.Max(1, math.Abs(w)) {
			t.Fatalf("tag %d: %g, want %g", r.Tag, r.Value, w)
		}
	}
}

func randomStream(rng *rand.Rand, n, tags int) []Contribution {
	in := make([]Contribution, n)
	for i := range in {
		in[i] = Contribution{Tag: uint32(rng.Intn(tags)), Value: float64(rng.Intn(100)) / 4}
	}
	return in
}

func TestReducersAreFunctionallyEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		in := randomStream(rng, 200+rng.Intn(300), 1+rng.Intn(40))
		want, counts := expectedSums(in)
		for _, lat := range []int{1, 4, 9} {
			naive, _ := NaiveReduce(in, counts, add, lat)
			checkResults(t, naive, want)
			df, _, _ := DataflowReduce(in, counts, add, lat)
			checkResults(t, df, want)
		}
	}
}

// The paper's claim (Sec. IV-C): the dataflow unit's throughput is one
// edge per cycle regardless of the reduction operator's latency, while
// the in-order pipeline degrades toward one edge per L cycles on
// hub-heavy (single-tag) streams.
func TestDataflowSustainsThroughputOnHubs(t *testing.T) {
	const n, lat = 4096, 6
	in := make([]Contribution, n)
	for i := range in {
		in[i] = Contribution{Tag: 0, Value: 1}
	}
	_, counts := expectedSums(in)

	_, naiveCycles := NaiveReduce(in, counts, add, lat)
	df, dfCycles, scratch := DataflowReduce(in, counts, add, lat)
	if df[0].Value != n {
		t.Fatalf("dataflow sum = %g", df[0].Value)
	}
	// Naive: every edge after the first stalls ~lat cycles.
	if naiveCycles < int64(n)*int64(lat)*8/10 {
		t.Fatalf("naive cycles %d suspiciously low (expect ~%d)", naiveCycles, n*lat)
	}
	// Dataflow: ~1 edge/cycle plus a log-depth drain tail.
	if dfCycles > int64(n)+int64(lat)*20 {
		t.Fatalf("dataflow cycles %d, want ~%d (one edge per cycle)", dfCycles, n)
	}
	if naiveCycles < 3*dfCycles {
		t.Fatalf("dataflow should win >=3x on hubs: naive %d vs dataflow %d", naiveCycles, dfCycles)
	}
	// The scratchpad stays small: unpaired items are bounded by the
	// combine latency, not the stream length.
	if scratch > 16*lat {
		t.Fatalf("scratchpad high-water %d, want O(latency)", scratch)
	}
}

// With all-distinct tags there is nothing to combine: both designs run at
// stream rate and agree.
func TestReducersDistinctTags(t *testing.T) {
	const n = 512
	in := make([]Contribution, n)
	for i := range in {
		in[i] = Contribution{Tag: uint32(i), Value: float64(i)}
	}
	want, counts := expectedSums(in)
	naive, naiveCycles := NaiveReduce(in, counts, add, 8)
	df, dfCycles, _ := DataflowReduce(in, counts, add, 8)
	checkResults(t, naive, want)
	checkResults(t, df, want)
	if naiveCycles != n {
		t.Fatalf("naive cycles = %d, want %d (no stalls without shared tags)", naiveCycles, n)
	}
	if dfCycles > n+8 {
		t.Fatalf("dataflow cycles = %d, want ~%d", dfCycles, n)
	}
}

// Property: for random streams and latencies both reducers retire every
// tag exactly once with the correct sum.
func TestPropertyReducersComplete(t *testing.T) {
	f := func(seed int64, latBits uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomStream(rng, 1+rng.Intn(200), 1+rng.Intn(20))
		want, counts := expectedSums(in)
		lat := 1 + int(latBits%8)
		naive, _ := NaiveReduce(in, counts, add, lat)
		df, _, _ := DataflowReduce(in, counts, add, lat)
		ok := func(rs []ReductionResult) bool {
			if len(rs) != len(want) {
				return false
			}
			sort.Slice(rs, func(a, b int) bool { return rs[a].Tag < rs[b].Tag })
			seen := map[uint32]bool{}
			for _, r := range rs {
				if seen[r.Tag] || math.Abs(r.Value-want[r.Tag]) > 1e-9*math.Max(1, math.Abs(want[r.Tag])) {
					return false
				}
				seen[r.Tag] = true
			}
			return true
		}
		return ok(naive) && ok(df)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
