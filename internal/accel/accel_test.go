package accel

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func newSim(t *testing.T, cfg Config) *Simulator {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// smallCfg is a 2-PE, 1 GB/s platform with easy arithmetic: 1 byte/ns bus,
// 1000 edges/us PE compute (1 GHz, 1 edge/cycle), no invoke latency.
func smallCfg() Config {
	return Config{
		NumPEs: 2, BusGBps: 1, ClockMHz: 1000, EdgesPerCycle: 1,
		InvokeLatencyNs: 0, CPUThreads: 2, ScatterNsPerEdge: 1, CPUGatherNsPerEdge: 2,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultHARPv2().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.NumPEs = 0 },
		func(c *Config) { c.BusGBps = 0 },
		func(c *Config) { c.ClockMHz = -1 },
		func(c *Config) { c.EdgesPerCycle = 0 },
		func(c *Config) { c.InvokeLatencyNs = -1 },
		func(c *Config) { c.CPUThreads = 0 },
		func(c *Config) { c.ScatterNsPerEdge = -1 },
	}
	for i, mutate := range bad {
		cfg := DefaultHARPv2()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d: want validation error", i)
		}
		if _, err := New(cfg); err == nil {
			t.Errorf("mutation %d: New accepted invalid config", i)
		}
	}
}

func TestPESingleBlockTiming(t *testing.T) {
	s := newSim(t, smallCfg())
	pe := s.PE(0)
	// 1000 edges, 1000 bytes in, 100 bytes out.
	// read: 1000B @ 1B/ns = 1000ns; compute: 1000 edges @ 1e9 e/s = 1000ns
	// (overlapped, ends at max(1000, 1000) = 1000); write 100ns -> 1100.
	end := pe.RunBlock(1000, 1000, 100)
	if math.Abs(end-1100) > 1e-9 {
		t.Fatalf("end = %g, want 1100", end)
	}
	if pe.Blocks() != 1 {
		t.Fatalf("Blocks = %d", pe.Blocks())
	}
	if got := s.TrafficBytes(SeqRead); got != 1000 {
		t.Fatalf("SeqRead bytes = %d", got)
	}
	if got := s.TrafficBytes(SeqWrite); got != 100 {
		t.Fatalf("SeqWrite bytes = %d", got)
	}
	if got := s.BusBytes(); got != 1100 {
		t.Fatalf("BusBytes = %d", got)
	}
	if got := s.SimTimeNs(); math.Abs(got-1100) > 1e-9 {
		t.Fatalf("SimTimeNs = %g", got)
	}
}

func TestInvokeLatencyAddsOverhead(t *testing.T) {
	cfg := smallCfg()
	cfg.InvokeLatencyNs = 500
	s := newSim(t, cfg)
	end := s.PE(0).RunBlock(100, 100, 0)
	// 500 invoke + max(100 read, 100 compute) = 600.
	if math.Abs(end-600) > 1e-9 {
		t.Fatalf("end = %g, want 600", end)
	}
}

func TestBusContentionSerializes(t *testing.T) {
	s := newSim(t, smallCfg())
	// Two PEs each streaming 1000 bytes with tiny compute: the second
	// transfer must queue behind the first, so the makespan is ~2000ns,
	// not ~1000ns.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.PE(i).RunBlock(1, 1000, 0)
		}(i)
	}
	wg.Wait()
	if got := s.SimTimeNs(); got < 1999 {
		t.Fatalf("SimTimeNs = %g, want ~2000 (bus must serialize)", got)
	}
	if busy := s.BusBusyNs(); math.Abs(busy-2000) > 1e-6 {
		t.Fatalf("BusBusyNs = %g, want 2000", busy)
	}
}

func TestComputeBoundVsBandwidthBound(t *testing.T) {
	// Compute-bound: few bytes, many edges.
	s := newSim(t, smallCfg())
	s.PE(0).RunBlock(10000, 10, 0) // compute 10000ns, read 10ns
	if got := s.SimTimeNs(); math.Abs(got-10000) > 1e-6 {
		t.Fatalf("compute-bound end = %g", got)
	}
	if u := s.PEUtilization(); u < 0.49 { // 1 of 2 PEs busy the whole time
		t.Fatalf("compute-bound PE utilization = %g", u)
	}
	// Bandwidth-bound: many bytes, few edges -> low PE utilization.
	s2 := newSim(t, smallCfg())
	s2.PE(0).RunBlock(10, 10000, 0)
	if u := s2.PEUtilization(); u > 0.01 {
		t.Fatalf("bandwidth-bound PE utilization = %g, want tiny", u)
	}
}

func TestUtilizationKneeWithPECount(t *testing.T) {
	// Fixed per-edge payload such that >2 PEs saturate the bus: each PE
	// computes 1 edge/ns and needs 4 bytes/edge; the 1 GB/s bus feeds
	// 1 byte/ns total, so even a single PE is 4x oversubscribed... scale
	// so the knee lands between 1 and 8: use 8 GB/s bus.
	util := func(pes int) float64 {
		cfg := smallCfg()
		cfg.NumPEs = pes
		cfg.BusGBps = 8 // 8 bytes/ns: with 4B/edge, feeds exactly 2 PEs
		s := newSim(t, cfg)
		// Dispatch blocks in rounds, as the engine's task queue does, so
		// bus arbitration interleaves fairly across PEs.
		for round := 0; round < 4; round++ {
			var wg sync.WaitGroup
			for i := 0; i < pes; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					s.PE(i).RunBlock(100000, 400000, 0)
				}(i)
			}
			wg.Wait()
		}
		return s.PEUtilization()
	}
	u1, u2, u8 := util(1), util(2), util(8)
	if u1 < 0.9 {
		t.Fatalf("1 PE utilization = %g, want ~1 (not bus-bound)", u1)
	}
	if u2 < 0.8 {
		t.Fatalf("2 PE utilization = %g, want high (bus exactly feeds 2)", u2)
	}
	if u8 > 0.5 {
		t.Fatalf("8 PE utilization = %g, want starved (<0.5)", u8)
	}
	if !(u1 >= u2 && u2 > u8) {
		t.Fatalf("utilization must fall with PE count: %g, %g, %g", u1, u2, u8)
	}
}

func TestCPUWorkers(t *testing.T) {
	s := newSim(t, smallCfg())
	w := s.CPU(0)
	end := w.RunScatter(100, 800)
	if math.Abs(end-100) > 1e-9 { // 100 edges * 1 ns
		t.Fatalf("scatter end = %g", end)
	}
	end = w.RunGather(100, 800)
	if math.Abs(end-300) > 1e-9 { // +100 edges * 2 ns
		t.Fatalf("gather end = %g", end)
	}
	if s.TrafficBytes(RandWrite) != 800 || s.TrafficBytes(RandRead) != 800 {
		t.Fatal("CPU traffic not recorded")
	}
	if s.TrafficOps(RandWrite) != 1 {
		t.Fatalf("ops = %d", s.TrafficOps(RandWrite))
	}
	if u := s.CPUUtilization(); u < 0.49 {
		t.Fatalf("CPU utilization = %g", u)
	}
}

func TestBusUtilization(t *testing.T) {
	s := newSim(t, smallCfg())
	s.PE(0).RunBlock(1, 1000, 0) // bus busy 1000ns of ~1000ns makespan
	if u := s.BusUtilization(); u < 0.99 {
		t.Fatalf("bus utilization = %g, want ~1", u)
	}
	empty := newSim(t, smallCfg())
	if empty.BusUtilization() != 0 || empty.PEUtilization() != 0 || empty.CPUUtilization() != 0 {
		t.Fatal("fresh simulator utilizations must be 0")
	}
}

func TestAccessKindString(t *testing.T) {
	want := map[AccessKind]string{SeqRead: "seq-read", SeqWrite: "seq-write", RandWrite: "rand-write", RandRead: "rand-read"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
	if AccessKind(9).String() != "kind(9)" {
		t.Error("unknown kind string wrong")
	}
}

func TestResources(t *testing.T) {
	r := Resources("pagerank", 16, 4096, 8, 12, 1<<20, 1<<24)
	if r.InputBufBytes != 2*32<<10 {
		t.Fatalf("input buf = %d", r.InputBufBytes)
	}
	if r.OutputBufBytes != 4096*8 {
		t.Fatalf("output buf = %d", r.OutputBufBytes)
	}
	if r.TotalOnChipBytes != 16*(r.InputBufBytes+r.OutputBufBytes+r.ScratchpadBytes) {
		t.Fatal("on-chip total inconsistent")
	}
	if r.SharedBufferBytes != int64(1<<20)*8+int64(1<<24)*12 {
		t.Fatalf("shared buffer = %d", r.SharedBufferBytes)
	}
	s := r.String()
	for _, frag := range []string{"pagerank", "PEs=16", "MiB"} {
		if !strings.Contains(s, frag) {
			t.Errorf("report %q missing %q", s, frag)
		}
	}
}

func TestFmtBytes(t *testing.T) {
	cases := map[int64]string{
		512:     "512B",
		2048:    "2.00KiB",
		3 << 20: "3.00MiB",
		5 << 30: "5.00GiB",
	}
	for in, want := range cases {
		if got := fmtBytes(in); got != want {
			t.Errorf("fmtBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestBarrierAlignsClocks(t *testing.T) {
	s := newSim(t, smallCfg())
	s.PE(0).RunBlock(1000, 1000, 0) // makespan ~1100... compute 1000, write 0
	before := s.SimTimeNs()
	s.Barrier()
	if got := s.CPU(1).LocalTimeNs(); got != before {
		t.Fatalf("CPU clock %g not aligned to makespan %g", got, before)
	}
	if got := s.PE(1).LocalTimeNs(); got != before {
		t.Fatalf("idle PE clock %g not aligned to makespan %g", got, before)
	}
	if s.SimTimeNs() != before {
		t.Fatal("Barrier must not advance the makespan")
	}
}

func TestCPUHasSlack(t *testing.T) {
	s := newSim(t, smallCfg())
	if s.CPUHasSlack() {
		t.Fatal("fresh simulator: no PE work yet, no slack")
	}
	s.PE(0).RunBlock(1000, 10, 0)
	s.PE(1).RunBlock(1000, 10, 0)
	if !s.CPUHasSlack() {
		t.Fatal("idle CPUs behind busy PEs must have slack")
	}
	// Load the CPUs past the PEs: slack disappears.
	s.CPU(0).RunGather(10000, 0)
	s.CPU(1).RunGather(10000, 0)
	if s.CPUHasSlack() {
		t.Fatal("overloaded CPUs must not report slack")
	}
}
