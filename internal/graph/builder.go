package graph

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// Builder assembles the dual CSC/CSR layout from edges accumulated in
// independent shards, replacing the comparison sort the original FromEdges
// used with a parallel two-pass counting sort. The pull-push layout is
// precisely a sort by (dst, src), so construction is linear:
//
//	pass 1  counting-sort all shards by src  -> the CSR key order
//	pass 2  stable counting-sort by dst      -> the CSC (dst, src) order
//	pass 3  counting-scatter CSC slots by src -> outDst/outPos
//
// Each pass is per-shard (or per-chunk) histogram -> prefix-sum offsets ->
// parallel scatter into final slots; no comparison sort, no per-edge
// allocations. Stability of the chunked scatter (chunks processed in
// order, per-chunk cursors starting after all earlier chunks) makes the
// final layout deterministic and byte-identical on inOff/inSrc/outOff/
// outDst/outPos to the legacy sort-based builder.
//
// Usage: create shards with NewShard (one per producing goroutine), Add
// edges concurrently, then call Build once from a single goroutine after
// all producers finished. A Builder is single-use.
type Builder struct {
	n   int // fixed vertex count, or -1 for 1 + max vertex id
	min int // minimum vertex count in auto mode (EnsureVertices)

	mu     sync.Mutex
	shards []*Shard
}

// NewBuilder returns a builder over vertices [0, n). A negative n sizes
// the graph automatically to 1 + the maximum vertex id seen (the text
// reader's behaviour); EnsureVertices can raise that minimum.
func NewBuilder(n int) *Builder {
	if n < 0 {
		return &Builder{n: -1}
	}
	return &Builder{n: n}
}

// EnsureVertices raises the minimum vertex count of an auto-sized builder
// (e.g. from a "# vertices=N" header hint). It has no effect on a builder
// with a fixed n. Safe to call concurrently with shard writes.
func (b *Builder) EnsureVertices(n int) {
	b.mu.Lock()
	if n > b.min {
		b.min = n
	}
	b.mu.Unlock()
}

// NewShard registers and returns a fresh edge shard. Creating shards is
// safe from any goroutine; each returned shard must be written by one
// goroutine only. Build memory grows with shards x vertices, so create
// about one shard per producing goroutine, not one per batch.
func (b *Builder) NewShard() *Shard {
	s := &Shard{}
	b.mu.Lock()
	b.shards = append(b.shards, s)
	b.mu.Unlock()
	return s
}

// Shard is a single-producer edge buffer feeding a Builder. Edges are
// stored struct-of-arrays so the counting passes stream each key array
// sequentially.
type Shard struct {
	src, dst []uint32
	w        []float32
	maxID    uint32
}

// Add appends one edge to the shard.
func (s *Shard) Add(src, dst uint32, weight float32) {
	if src > s.maxID {
		s.maxID = src
	}
	if dst > s.maxID {
		s.maxID = dst
	}
	s.src = append(s.src, src)
	s.dst = append(s.dst, dst)
	s.w = append(s.w, weight)
}

// AddEdges appends a batch of edges to the shard.
func (s *Shard) AddEdges(edges []Edge) {
	for _, e := range edges {
		s.Add(e.Src, e.Dst, e.Weight)
	}
}

// Grow pre-sizes the shard for k additional edges.
func (s *Shard) Grow(k int) {
	if k <= 0 {
		return
	}
	if need := len(s.src) + k; need > cap(s.src) {
		src := make([]uint32, len(s.src), need)
		copy(src, s.src)
		s.src = src
		dst := make([]uint32, len(s.dst), need)
		copy(dst, s.dst)
		s.dst = dst
		w := make([]float32, len(s.w), need)
		copy(w, s.w)
		s.w = w
	}
}

// Len returns the number of edges in the shard.
func (s *Shard) Len() int { return len(s.src) }

// Build runs the parallel counting-sort construction and returns the
// graph. It must be called once, after every shard producer has finished.
func (b *Builder) Build() (*Graph, error) {
	b.mu.Lock()
	shards := b.shards
	b.shards = nil
	n, min := b.n, b.min
	b.mu.Unlock()

	m := 0
	maxID := int64(-1)
	for _, s := range shards {
		m += len(s.src)
		if len(s.src) > 0 && int64(s.maxID) > maxID {
			maxID = int64(s.maxID)
		}
	}
	if m > math.MaxInt32 {
		return nil, fmt.Errorf("graph: %d edges exceed the 2^31-1 builder limit", m)
	}
	if n < 0 {
		n = int(maxID + 1)
		if min > n {
			n = min
		}
	} else if maxID >= int64(n) {
		s, d := findOutOfRange(shards, uint32(n))
		return nil, fmt.Errorf("graph: edge (%d->%d) out of range [0,%d)", s, d, n)
	}

	g := &Graph{
		n:      n,
		m:      m,
		inOff:  make([]int64, n+1),
		inSrc:  make([]uint32, m),
		inW:    make([]float32, m),
		outOff: make([]int64, n+1),
		outDst: make([]uint32, m),
		outPos: make([]int64, m),
		outDeg: make([]int32, n),
		inDeg:  make([]int32, n),
	}
	if m == 0 {
		return g, nil
	}

	// Drop empty shards: every remaining shard is one unit of pass-1
	// parallelism and one histogram row.
	live := shards[:0]
	for _, s := range shards {
		if len(s.src) > 0 {
			live = append(live, s)
		}
	}
	shards = live

	workers := runtime.GOMAXPROCS(0)

	// Pass 1: counting sort by src into the intermediate arrays. The src
	// counts are exactly the out-degrees, so the prefix sum doubles as
	// outOff.
	hist := make([][]int32, len(shards))
	parallelDo(len(shards), func(i int) {
		h := make([]int32, n)
		for _, s := range shards[i].src {
			h[s]++
		}
		hist[i] = h
	})
	sumHistInto(g.outDeg, hist, workers)
	for v := 0; v < n; v++ {
		g.outOff[v+1] = g.outOff[v] + int64(g.outDeg[v])
	}
	histToCursors(hist, g.outOff, workers)
	midSrc := make([]uint32, m)
	midDst := make([]uint32, m)
	midW := make([]float32, m)
	parallelDo(len(shards), func(i int) {
		h := hist[i]
		s := shards[i]
		for j, src := range s.src {
			p := h[src]
			h[src] = p + 1
			midSrc[p] = src
			midDst[p] = s.dst[j]
			midW[p] = s.w[j]
		}
	})

	// Pass 2: stable counting sort of the intermediate by dst, writing
	// the CSC arrays. The dst counts are the in-degrees; the scatter also
	// records each final slot's destination for pass 3.
	chunks := chunkBounds(m, workers)
	hist2 := make([][]int32, len(chunks))
	parallelDo(len(chunks), func(c int) {
		h := make([]int32, n)
		for _, d := range midDst[chunks[c].lo:chunks[c].hi] {
			h[d]++
		}
		hist2[c] = h
	})
	sumHistInto(g.inDeg, hist2, workers)
	for v := 0; v < n; v++ {
		g.inOff[v+1] = g.inOff[v] + int64(g.inDeg[v])
	}
	histToCursors(hist2, g.inOff, workers)
	slotDst := make([]uint32, m)
	parallelDo(len(chunks), func(c int) {
		h := hist2[c]
		for i := chunks[c].lo; i < chunks[c].hi; i++ {
			d := midDst[i]
			p := h[d]
			h[d] = p + 1
			g.inSrc[p] = midSrc[i]
			g.inW[p] = midW[i]
			slotDst[p] = d
		}
	})

	// Pass 3: counting-scatter the CSC slots by source to build the CSR
	// view. Slots are streamed in ascending order per chunk, so each
	// source's out-edges land in slot order — identical to the legacy
	// builder's sequential scan.
	hist3 := make([][]int32, len(chunks))
	parallelDo(len(chunks), func(c int) {
		h := make([]int32, n)
		for _, s := range g.inSrc[chunks[c].lo:chunks[c].hi] {
			h[s]++
		}
		hist3[c] = h
	})
	histToCursors(hist3, g.outOff, workers)
	parallelDo(len(chunks), func(c int) {
		h := hist3[c]
		for slot := chunks[c].lo; slot < chunks[c].hi; slot++ {
			s := g.inSrc[slot]
			p := h[s]
			h[s] = p + 1
			g.outDst[p] = slotDst[slot]
			g.outPos[p] = int64(slot)
		}
	})
	return g, nil
}

// findOutOfRange locates one edge referencing a vertex >= n, for the
// Build error message.
func findOutOfRange(shards []*Shard, n uint32) (src, dst uint32) {
	for _, s := range shards {
		for j := range s.src {
			if s.src[j] >= n || s.dst[j] >= n {
				return s.src[j], s.dst[j]
			}
		}
	}
	return 0, 0
}

// span is a half-open index range.
type span struct{ lo, hi int }

// chunkBounds splits [0, m) into up to k contiguous non-empty spans.
func chunkBounds(m, k int) []span {
	if k < 1 {
		k = 1
	}
	if k > m {
		k = m
	}
	out := make([]span, 0, k)
	for c := 0; c < k; c++ {
		lo, hi := c*m/k, (c+1)*m/k
		if lo < hi {
			out = append(out, span{lo, hi})
		}
	}
	return out
}

// parallelDo runs f(0..k-1) across GOMAXPROCS goroutines and waits.
func parallelDo(k int, f func(i int)) {
	if k <= 1 {
		if k == 1 {
			f(0)
		}
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > k {
		workers = k
	}
	if workers <= 1 {
		for i := 0; i < k; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= k {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

// sumHistInto writes the per-vertex sum of the histogram rows into deg,
// parallel over vertex ranges.
func sumHistInto(deg []int32, hist [][]int32, workers int) {
	n := len(deg)
	parts := chunkBounds(n, workers)
	parallelDo(len(parts), func(c int) {
		lo, hi := parts[c].lo, parts[c].hi
		for _, h := range hist {
			for v := lo; v < hi; v++ {
				deg[v] += h[v]
			}
		}
	})
}

// histToCursors converts histogram rows into scatter cursors: row r's
// cursor for vertex v starts at off[v] plus the counts of all earlier
// rows for v. Runs parallel over vertex ranges; afterwards hist[r][v]
// is the first slot row r writes for key v.
func histToCursors(hist [][]int32, off []int64, workers int) {
	n := len(off) - 1
	parts := chunkBounds(n, workers)
	parallelDo(len(parts), func(c int) {
		for v := parts[c].lo; v < parts[c].hi; v++ {
			cur := int32(off[v])
			for _, h := range hist {
				count := h[v]
				h[v] = cur
				cur += count
			}
		}
	})
}
