package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes the graph as a plain-text edge list: a header line
// "# vertices=N edges=M" followed by one "src dst weight" line per edge in
// CSC slot order. The format round-trips through ReadEdgeList.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# vertices=%d edges=%d\n", g.NumVertices(), g.NumEdges()); err != nil {
		return err
	}
	for v := 0; v < g.NumVertices(); v++ {
		for s := g.InOffset(v); s < g.InOffset(v+1); s++ {
			if _, err := fmt.Fprintf(bw, "%d %d %g\n", g.InSrc(s), v, g.InWeight(s)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the edge-list format written by WriteEdgeList. Lines
// beginning with '#' are treated as comments; the optional "vertices=" hint
// in a comment pre-sizes the graph, otherwise the vertex count is
// 1 + max(vertex id). Each data line is "src dst [weight]"; a missing
// weight defaults to 1.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []Edge
	n := 0
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if i := strings.Index(text, "vertices="); i >= 0 {
				rest := text[i+len("vertices="):]
				if j := strings.IndexAny(rest, " \t"); j >= 0 {
					rest = rest[:j]
				}
				if v, err := strconv.Atoi(rest); err == nil && v > n {
					n = v
				}
			}
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want 'src dst [weight]', got %q", line, text)
		}
		src, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad src: %v", line, err)
		}
		dst, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad dst: %v", line, err)
		}
		w := float32(1)
		if len(fields) >= 3 {
			w64, err := strconv.ParseFloat(fields[2], 32)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight: %v", line, err)
			}
			w = float32(w64)
		}
		edges = append(edges, Edge{Src: uint32(src), Dst: uint32(dst), Weight: w})
		if int(src)+1 > n {
			n = int(src) + 1
		}
		if int(dst)+1 > n {
			n = int(dst) + 1
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return FromEdges(n, edges)
}
