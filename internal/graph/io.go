package graph

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// WriteEdgeList writes the graph as a plain-text edge list: a header line
// "# vertices=N edges=M" followed by one "src dst weight" line per edge in
// CSC slot order. The format round-trips through ReadEdgeList.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# vertices=%d edges=%d\n", g.NumVertices(), g.NumEdges()); err != nil {
		return err
	}
	for v := 0; v < g.NumVertices(); v++ {
		for s := g.InOffset(v); s < g.InOffset(v+1); s++ {
			if _, err := fmt.Fprintf(bw, "%d %d %g\n", g.InSrc(s), v, g.InWeight(s)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the edge-list format written by WriteEdgeList. Lines
// beginning with '#' are treated as comments; the optional "vertices=" hint
// in a comment pre-sizes the graph, otherwise the vertex count is
// 1 + max(vertex id). Each data line is "src dst [weight]"; a missing
// weight defaults to 1.
//
// The input is split into chunks at line boundaries and the chunks are
// parsed concurrently, each parser feeding its own Builder shard, so both
// the parse and the layout construction scale with GOMAXPROCS. On a parse
// error the whole read fails with the error of the smallest line number,
// as the sequential reader did.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	return readEdgeList(r, runtime.GOMAXPROCS(0))
}

// readChunkSize is the target text chunk handed to one parser at a time.
const readChunkSize = 1 << 20

// chunk is one line-aligned byte range of the input. buf is the pooled
// backing array, returned to the pool by the parser.
type chunk struct {
	data      []byte
	startLine int // lines fully before this chunk
	buf       *[]byte
}

// parseFail records the first error of one parser, with its global line.
type parseFail struct {
	line int
	err  error
}

func readEdgeList(r io.Reader, workers int) (*Graph, error) {
	if workers < 1 {
		workers = 1
	}
	b := NewBuilder(-1)
	var pool sync.Pool
	pool.New = func() any {
		buf := make([]byte, readChunkSize)
		return &buf
	}
	chunks := make(chan chunk, workers)

	// Workers parse every dispatched chunk even after a failure elsewhere:
	// chunks are dispatched in input order, so the minimum error line over
	// all parsed chunks is exactly the first error the sequential reader
	// would have hit. The stop flag only keeps the chunker from reading
	// further input once any error exists.
	fails := make([]parseFail, workers)
	hints := make([]int, workers)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sh := b.NewShard()
			for c := range chunks {
				if fails[w].err == nil {
					if line, err := parseChunk(c.data, c.startLine, sh, &hints[w]); err != nil {
						fails[w] = parseFail{line: line, err: err}
						stop.Store(true)
					}
				}
				pool.Put(c.buf)
			}
		}(w)
	}

	ioErr := chunkLines(r, &pool, chunks, &stop)
	close(chunks)
	wg.Wait()

	var first *parseFail
	for w := range fails {
		f := &fails[w]
		if f.err != nil && (first == nil || f.line < first.line) {
			first = f
		}
	}
	if first != nil {
		return nil, first.err
	}
	if ioErr != nil {
		return nil, ioErr
	}
	for _, h := range hints {
		b.EnsureVertices(h)
	}
	return b.Build()
}

// chunkLines reads r into pooled buffers, cuts them at the last line
// boundary, and sends the line-aligned chunks with their starting line
// numbers. The remainder after the last newline is carried into the next
// buffer; a chunk with no newline at all grows until one arrives or the
// input ends. Returns the first read error (io.EOF excluded).
func chunkLines(r io.Reader, pool *sync.Pool, out chan<- chunk, stop *atomic.Bool) error {
	line := 0
	var carry []byte // tail of the previous buffer, not yet line-complete
	for !stop.Load() {
		bufp := pool.Get().(*[]byte)
		buf := *bufp
		if len(carry) >= len(buf) {
			buf = make([]byte, 2*len(carry))
			bufp = &buf
		}
		fill := copy(buf, carry)
		eof := false
		for !eof {
			n, err := r.Read(buf[fill:])
			fill += n
			if err == io.EOF {
				eof = true
			} else if err != nil {
				pool.Put(bufp)
				return err
			}
			if fill == len(buf) {
				if cut := bytes.LastIndexByte(buf, '\n'); cut < 0 {
					// One line larger than the buffer: grow and keep reading.
					bigger := make([]byte, 2*len(buf))
					copy(bigger, buf)
					pool.Put(bufp)
					buf = bigger
					bufp = &buf
					continue
				}
				break
			}
		}
		data := buf[:fill]
		cut := bytes.LastIndexByte(data, '\n') + 1 // 0 if none: all carry
		if eof {
			cut = fill
		}
		if cut > 0 {
			carry = append(carry[:0], data[cut:]...)
			out <- chunk{data: data[:cut], startLine: line, buf: bufp}
			line += bytes.Count(data[:cut], nl)
		} else {
			carry = append(carry[:0], data...)
			pool.Put(bufp)
		}
		if eof {
			return nil
		}
	}
	return nil // a parse error elsewhere stopped the read
}

var nl = []byte{'\n'}

// parseChunk parses the line-aligned chunk into sh, returning the global
// line number and error of the first bad line. hint accumulates the
// largest "# vertices=N" header value seen.
func parseChunk(data []byte, startLine int, sh *Shard, hint *int) (int, error) {
	line := startLine
	var fields [][]byte
	for len(data) > 0 {
		line++
		var text []byte
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			text, data = data[:i], data[i+1:]
		} else {
			text, data = data, nil
		}
		text = bytes.TrimSpace(text)
		if len(text) == 0 {
			continue
		}
		if text[0] == '#' {
			if i := bytes.Index(text, verticesKey); i >= 0 {
				rest := text[i+len(verticesKey):]
				if j := bytes.IndexAny(rest, " \t"); j >= 0 {
					rest = rest[:j]
				}
				if v, err := strconv.Atoi(string(rest)); err == nil && v > *hint {
					*hint = v
				}
			}
			continue
		}
		fields = appendFields(fields[:0], text)
		if len(fields) < 2 {
			return line, fmt.Errorf("graph: line %d: want 'src dst [weight]', got %q", line, text)
		}
		src, err := parseU32(fields[0])
		if err != nil {
			return line, fmt.Errorf("graph: line %d: bad src: %v", line, err)
		}
		dst, err := parseU32(fields[1])
		if err != nil {
			return line, fmt.Errorf("graph: line %d: bad dst: %v", line, err)
		}
		w := float32(1)
		if len(fields) >= 3 {
			w, err = parseF32(fields[2])
			if err != nil {
				return line, fmt.Errorf("graph: line %d: bad weight: %v", line, err)
			}
		}
		sh.Add(src, dst, w)
	}
	return 0, nil
}

var verticesKey = []byte("vertices=")

// appendFields splits text into whitespace-separated fields, reusing dst.
// ASCII-only lines (the format's own output, and any real dataset) split
// without allocating; lines with high bytes fall back to the
// unicode-aware bytes.Fields for exact compatibility with the original
// strings.Fields parser.
func appendFields(dst [][]byte, text []byte) [][]byte {
	for _, c := range text {
		if c >= 0x80 {
			return append(dst, bytes.Fields(text)...)
		}
	}
	i := 0
	for i < len(text) {
		for i < len(text) && asciiSpace(text[i]) {
			i++
		}
		start := i
		for i < len(text) && !asciiSpace(text[i]) {
			i++
		}
		if start < i {
			dst = append(dst, text[start:i])
		}
	}
	return dst
}

func asciiSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\v' || c == '\f' || c == '\r'
}

// parseU32 decodes a base-10 uint32. Plain digit runs (every id the
// format writes) decode without allocating; anything else goes through
// strconv for byte-identical acceptance and error text.
func parseU32(f []byte) (uint32, error) {
	if len(f) > 0 && len(f) <= 9 {
		v := uint32(0)
		for _, c := range f {
			if c < '0' || c > '9' {
				goto slow
			}
			v = v*10 + uint32(c-'0')
		}
		return v, nil
	}
slow:
	v, err := strconv.ParseUint(string(f), 10, 32)
	return uint32(v), err
}

// parseF32 decodes a float32 weight. Small plain integers (the common
// unweighted "1" and generator weights) convert exactly without
// allocating; everything else — fractions, exponents, long digit runs —
// uses strconv.ParseFloat so rounding matches the sequential parser
// exactly.
func parseF32(f []byte) (float32, error) {
	if len(f) > 0 && len(f) <= 7 {
		v := uint32(0)
		for _, c := range f {
			if c < '0' || c > '9' {
				goto slow
			}
			v = v*10 + uint32(c-'0')
		}
		return float32(v), nil
	}
slow:
	v, err := strconv.ParseFloat(string(f), 32)
	return float32(v), err
}
