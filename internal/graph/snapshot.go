package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Snapshot format: the dual CSC/CSR layout serialized once so reloading a
// graph is O(m) sequential reads instead of a text parse plus a rebuild.
//
//	header (24 bytes, little-endian):
//	    magic[4]    "GABS" (plain) or "GABZ" (varint-compressed sections)
//	    version u32 currently 1
//	    n       u64 vertex count
//	    m       u64 edge count
//	sections, in fixed order, each:
//	    tag        u32   1 inOff, 2 inSrc, 3 inW, 4 outOff, 5 outDst, 6 outPos
//	    payloadLen u64   bytes of payload
//	    payload    [payloadLen]byte
//	    crc        u32   IEEE CRC-32 of the payload
//
// Plain payloads are the raw little-endian arrays: offsets as u64
// (n+1 entries), inSrc/outDst as u32, inW as f32 bit patterns, outPos as
// u64. Compressed payloads exploit the layout's sort order: offsets are
// encoded as uvarint degree deltas, and inSrc, outDst, and outPos are
// per-vertex ascending sequences (CSC slots sort by (dst, src); a source's
// out-edges sort by slot), so each is delta-uvarint encoded with the delta
// reset at every vertex boundary. Weights are raw f32 either way.
//
// The reader never trusts header-declared sizes for allocation: arrays
// grow with the bytes actually delivered, so a corrupt header yields an
// "unexpected EOF" error, not a huge allocation.
const (
	snapshotMagic     = "GABS"
	snapshotMagicZ    = "GABZ"
	snapshotVersion   = 1
	snapshotHeaderLen = 4 + 4 + 8 + 8
	snapshotSecHdrLen = 4 + 8
	snapshotCRCLen    = 4
)

// Section tags, in file order.
const (
	secInOff uint32 = 1 + iota
	secInSrc
	secInW
	secOutOff
	secOutDst
	secOutPos
)

// IsSnapshotMagic reports whether b begins with a snapshot magic, the
// format sniff used by Load.
func IsSnapshotMagic(b []byte) bool {
	if len(b) < 4 {
		return false
	}
	s := string(b[:4])
	return s == snapshotMagic || s == snapshotMagicZ
}

// ParseSnapshotHeader decodes a snapshot header. It reports the vertex
// and edge counts and whether the sections are varint-compressed.
func ParseSnapshotHeader(hdr []byte) (n, m int64, compressed bool, err error) {
	if len(hdr) < snapshotHeaderLen {
		return 0, 0, false, fmt.Errorf("graph: snapshot header truncated at %d bytes", len(hdr))
	}
	switch string(hdr[:4]) {
	case snapshotMagic:
	case snapshotMagicZ:
		compressed = true
	default:
		return 0, 0, false, fmt.Errorf("graph: bad snapshot magic %q", hdr[:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != snapshotVersion {
		return 0, 0, false, fmt.Errorf("graph: unsupported snapshot version %d (have %d)", v, snapshotVersion)
	}
	un := binary.LittleEndian.Uint64(hdr[8:16])
	um := binary.LittleEndian.Uint64(hdr[16:24])
	if un > math.MaxInt64 || um > math.MaxInt32 {
		return 0, 0, false, fmt.Errorf("graph: snapshot sizes V=%d E=%d out of range", un, um)
	}
	return int64(un), int64(um), compressed, nil
}

// SnapshotLayout holds the absolute byte offset of every section payload
// inside a plain (uncompressed) snapshot. The fixed section order and
// fixed-width plain encoding make all six computable from (V, E) without
// reading the file, which is what lets the snapshot double as a
// positioned-read store: the edge store preads edge ranges, and the
// cluster coordinator sends a joining node only its own blocks' slices of
// each section.
type SnapshotLayout struct {
	InOff  int64 // (n+1) little-endian u64 CSC offsets
	InSrc  int64 // m little-endian u32 in-edge sources
	InW    int64 // m little-endian f32 weights
	OutOff int64 // (n+1) little-endian u64 CSR offsets
	OutDst int64 // m little-endian u32 out-edge destinations
	OutPos int64 // m little-endian u64 out-edge CSC slots
}

// SnapshotSectionLayout computes the plain-snapshot payload offsets for an
// n-vertex, m-edge graph.
func SnapshotSectionLayout(n, m int) SnapshotLayout {
	offLen, idLen, posLen := int64(n+1)*8, int64(m)*4, int64(m)*8
	next := int64(snapshotHeaderLen)
	sec := func(payloadLen int64) int64 {
		off := next + snapshotSecHdrLen
		next = off + payloadLen + snapshotCRCLen
		return off
	}
	return SnapshotLayout{
		InOff:  sec(offLen),
		InSrc:  sec(idLen),
		InW:    sec(idLen),
		OutOff: sec(offLen),
		OutDst: sec(idLen),
		OutPos: sec(posLen),
	}
}

// SnapshotEdgeSections returns the absolute byte offsets of the inSrc and
// inW section payloads inside a plain (uncompressed) snapshot of an
// n-vertex, m-edge graph; the snapshot-backed edge store preads edge
// ranges directly at these offsets.
func SnapshotEdgeSections(n, m int) (srcOff, wOff int64) {
	l := SnapshotSectionLayout(n, m)
	return l.InSrc, l.InW
}

// FromSections assembles a Graph from decoded plain-snapshot section
// arrays, applying the same validation ReadSnapshot performs: array
// lengths, offset monotonicity spanning [0, m], and every cross-array
// invariant a hostile input could break. It exists for engines that
// receive sections over a transport rather than from a file — a cluster
// joiner populates only its owned slices of the edge arrays (the rest
// stay zero, which validates trivially and is never read, because a node
// only gathers and scatters over its own blocks' edges).
func FromSections(n, m int, inOff []int64, inSrc []uint32, inW []float32,
	outOff []int64, outDst []uint32, outPos []int64) (*Graph, error) {
	if n < 0 || m < 0 {
		return nil, fmt.Errorf("graph: sections describe V=%d E=%d", n, m)
	}
	if len(inSrc) != m || len(inW) != m || len(outDst) != m || len(outPos) != m {
		return nil, fmt.Errorf("graph: section lengths inSrc=%d inW=%d outDst=%d outPos=%d, want E=%d",
			len(inSrc), len(inW), len(outDst), len(outPos), m)
	}
	for _, off := range [2][]int64{inOff, outOff} {
		if len(off) != n+1 {
			return nil, fmt.Errorf("graph: offset section has %d entries, want %d", len(off), n+1)
		}
		if off[0] != 0 || off[n] != int64(m) {
			return nil, fmt.Errorf("graph: offsets span [%d,%d], want [0,%d]", off[0], off[n], m)
		}
		for v := 0; v < n; v++ {
			if off[v] > off[v+1] {
				return nil, fmt.Errorf("graph: offsets not monotone at vertex %d", v)
			}
		}
	}
	return newFromArrays(n, m, inOff, inSrc, inW, outOff, outDst, outPos)
}

// WriteSnapshot writes g in the plain snapshot format: fixed-width
// little-endian sections streamed through a bufio writer with a CRC per
// section. ReadSnapshot reloads it in O(m).
func WriteSnapshot(w io.Writer, g *Graph) error {
	return writeSnapshot(w, g, false)
}

// WriteSnapshotCompressed writes g in the varint-compressed snapshot
// format: smaller on disk (delta-uvarint offsets and vertex ids), decoded
// by the same ReadSnapshot.
func WriteSnapshotCompressed(w io.Writer, g *Graph) error {
	return writeSnapshot(w, g, true)
}

func writeSnapshot(w io.Writer, g *Graph, compressed bool) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	var hdr [snapshotHeaderLen]byte
	magic := snapshotMagic
	if compressed {
		magic = snapshotMagicZ
	}
	copy(hdr[:4], magic)
	binary.LittleEndian.PutUint32(hdr[4:8], snapshotVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(g.n))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(g.m))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	sw := &snapWriter{bw: bw}
	if compressed {
		sw.varintSection(secInOff, deltaU64{vals64: g.inOff})
		sw.varintSection(secInSrc, perVertexAscending32(g.inOff, g.inSrc))
		sw.f32Section(secInW, g.inW)
		sw.varintSection(secOutOff, deltaU64{vals64: g.outOff})
		sw.varintSection(secOutDst, perVertexAscending32(g.outOff, g.outDst))
		sw.varintSection(secOutPos, perVertexAscending64(g.outOff, g.outPos))
	} else {
		sw.u64Section(secInOff, g.inOff)
		sw.u32Section(secInSrc, g.inSrc)
		sw.f32Section(secInW, g.inW)
		sw.u64Section(secOutOff, g.outOff)
		sw.u32Section(secOutDst, g.outDst)
		sw.u64Section(secOutPos, g.outPos)
	}
	if sw.err != nil {
		return sw.err
	}
	return bw.Flush()
}

// snapWriter emits sections, accumulating the first write error.
type snapWriter struct {
	bw      *bufio.Writer
	err     error
	scratch [binary.MaxVarintLen64]byte
	payload []byte // reused encode buffer for variable-length sections
}

func (sw *snapWriter) sectionHeader(tag uint32, payloadLen int64) {
	var h [snapshotSecHdrLen]byte
	binary.LittleEndian.PutUint32(h[0:4], tag)
	binary.LittleEndian.PutUint64(h[4:12], uint64(payloadLen))
	sw.write(h[:])
}

func (sw *snapWriter) write(b []byte) {
	if sw.err == nil {
		_, sw.err = sw.bw.Write(b)
	}
}

func (sw *snapWriter) crc(sum uint32) {
	var b [snapshotCRCLen]byte
	binary.LittleEndian.PutUint32(b[:], sum)
	sw.write(b[:])
}

// encodeBlockSize is the staging-block size for streaming plain
// sections: values encode into a block, and each full block takes one
// CRC update and one buffered write (keeping the CRC on its fast
// block path) — no section-sized buffer.
const encodeBlockSize = 64 << 10

// block returns the reusable staging block (shared with varintSection's
// encode buffer, so capacity is re-checked each call).
func (sw *snapWriter) block() []byte {
	if cap(sw.payload) < encodeBlockSize {
		sw.payload = make([]byte, encodeBlockSize)
	}
	return sw.payload[:encodeBlockSize]
}

// u64Section streams vals as little-endian u64, block-buffered.
func (sw *snapWriter) u64Section(tag uint32, vals []int64) {
	sw.sectionHeader(tag, int64(len(vals))*8)
	crc := crc32.NewIEEE()
	blk := sw.block()
	fill := 0
	for _, v := range vals {
		if fill == len(blk) {
			_, _ = crc.Write(blk) // hash.Hash.Write never fails
			sw.write(blk)
			fill = 0
		}
		binary.LittleEndian.PutUint64(blk[fill:], uint64(v))
		fill += 8
	}
	_, _ = crc.Write(blk[:fill])
	sw.write(blk[:fill])
	sw.crc(crc.Sum32())
}

func (sw *snapWriter) u32Section(tag uint32, vals []uint32) {
	sw.sectionHeader(tag, int64(len(vals))*4)
	crc := crc32.NewIEEE()
	blk := sw.block()
	fill := 0
	for _, v := range vals {
		if fill == len(blk) {
			_, _ = crc.Write(blk)
			sw.write(blk)
			fill = 0
		}
		binary.LittleEndian.PutUint32(blk[fill:], v)
		fill += 4
	}
	_, _ = crc.Write(blk[:fill])
	sw.write(blk[:fill])
	sw.crc(crc.Sum32())
}

func (sw *snapWriter) f32Section(tag uint32, vals []float32) {
	sw.sectionHeader(tag, int64(len(vals))*4)
	crc := crc32.NewIEEE()
	blk := sw.block()
	fill := 0
	for _, v := range vals {
		if fill == len(blk) {
			_, _ = crc.Write(blk)
			sw.write(blk)
			fill = 0
		}
		binary.LittleEndian.PutUint32(blk[fill:], math.Float32bits(v))
		fill += 4
	}
	_, _ = crc.Write(blk[:fill])
	sw.write(blk[:fill])
	sw.crc(crc.Sum32())
}

// varintValues enumerates a section's values as uvarint-ready deltas.
type varintValues interface {
	encode(emit func(uint64))
}

// deltaU64 encodes a monotone []int64 (an offset array) as first-value +
// consecutive deltas.
type deltaU64 struct{ vals64 []int64 }

func (d deltaU64) encode(emit func(uint64)) {
	prev := int64(0)
	for _, v := range d.vals64 {
		emit(uint64(v - prev))
		prev = v
	}
}

// ascending32 emits per-vertex ascending u32 runs as deltas that reset at
// each vertex boundary.
type ascending32 struct {
	off  []int64
	vals []uint32
}

func perVertexAscending32(off []int64, vals []uint32) ascending32 {
	return ascending32{off: off, vals: vals}
}

func (a ascending32) encode(emit func(uint64)) {
	for v := 0; v+1 < len(a.off); v++ {
		prev := uint32(0)
		for s := a.off[v]; s < a.off[v+1]; s++ {
			emit(uint64(a.vals[s] - prev))
			prev = a.vals[s]
		}
	}
}

// ascending64 is ascending32 for u64 value arrays (outPos).
type ascending64 struct {
	off  []int64
	vals []int64
}

func perVertexAscending64(off []int64, vals []int64) ascending64 {
	return ascending64{off: off, vals: vals}
}

func (a ascending64) encode(emit func(uint64)) {
	for v := 0; v+1 < len(a.off); v++ {
		prev := int64(0)
		for s := a.off[v]; s < a.off[v+1]; s++ {
			emit(uint64(a.vals[s] - prev))
			prev = a.vals[s]
		}
	}
}

// varintSection buffers the encoded payload (its length is not known up
// front), then emits header, payload, and CRC.
func (sw *snapWriter) varintSection(tag uint32, vals varintValues) {
	buf := sw.payload[:0]
	vals.encode(func(u uint64) {
		k := binary.PutUvarint(sw.scratch[:], u)
		buf = append(buf, sw.scratch[:k]...)
	})
	sw.payload = buf
	sw.sectionHeader(tag, int64(len(buf)))
	sw.write(buf)
	sw.crc(crc32.ChecksumIEEE(buf))
}

// ReadSnapshot reads a snapshot written by WriteSnapshot or
// WriteSnapshotCompressed (distinguished by magic), verifies every
// section's CRC, validates the layout invariants, and returns the graph.
func ReadSnapshot(r io.Reader) (*Graph, error) {
	// The buffer is deliberately small: it serves the 12- and 4-byte
	// section headers, while the large payload ReadFulls exceed it and
	// pass straight through to r with no intermediate copy.
	br := bufio.NewReaderSize(r, 1<<14)
	var hdr [snapshotHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("graph: snapshot header: %w", err)
	}
	n64, m64, compressed, err := ParseSnapshotHeader(hdr[:])
	if err != nil {
		return nil, err
	}
	if n64 > math.MaxInt32 {
		return nil, fmt.Errorf("graph: snapshot vertex count %d out of range", n64)
	}
	n, m := int(n64), int(m64)

	sr := snapReader{br: br, compressed: compressed}
	inOff, err := sr.offsets(secInOff, n, m)
	if err != nil {
		return nil, err
	}
	inSrc, err := sr.vertexIDs(secInSrc, inOff, m)
	if err != nil {
		return nil, err
	}
	inW, err := sr.f32s(secInW, m)
	if err != nil {
		return nil, err
	}
	outOff, err := sr.offsets(secOutOff, n, m)
	if err != nil {
		return nil, err
	}
	outDst, err := sr.vertexIDs(secOutDst, outOff, m)
	if err != nil {
		return nil, err
	}
	outPos, err := sr.slots(secOutPos, outOff, m)
	if err != nil {
		return nil, err
	}
	return newFromArrays(n, m, inOff, inSrc, inW, outOff, outDst, outPos)
}

// newFromArrays assembles a Graph from deserialized layout arrays,
// validating every cross-array invariant a hostile or corrupted snapshot
// could break. Offset monotonicity is already guaranteed by the decoders.
func newFromArrays(n, m int, inOff []int64, inSrc []uint32, inW []float32,
	outOff []int64, outDst []uint32, outPos []int64) (*Graph, error) {
	for i, s := range inSrc {
		if int64(s) >= int64(n) {
			return nil, fmt.Errorf("graph: snapshot in-edge slot %d has source %d >= V=%d", i, s, n)
		}
	}
	for i, d := range outDst {
		if int64(d) >= int64(n) {
			return nil, fmt.Errorf("graph: snapshot out-edge %d has destination %d >= V=%d", i, d, n)
		}
	}
	for i, p := range outPos {
		if p < 0 || p >= int64(m) {
			return nil, fmt.Errorf("graph: snapshot out-edge %d has slot %d outside [0,%d)", i, p, m)
		}
	}
	g := &Graph{
		n: n, m: m,
		inOff: inOff, inSrc: inSrc, inW: inW,
		outOff: outOff, outDst: outDst, outPos: outPos,
		outDeg: make([]int32, n),
		inDeg:  make([]int32, n),
	}
	for v := 0; v < n; v++ {
		g.inDeg[v] = int32(inOff[v+1] - inOff[v])
		g.outDeg[v] = int32(outOff[v+1] - outOff[v])
	}
	return g, nil
}

// snapReader decodes consecutive sections, verifying tag order, payload
// length, and CRC. Allocation always follows delivered bytes, never the
// header's claims.
type snapReader struct {
	br         *bufio.Reader
	compressed bool
	scratch    []byte
}

// presizeCap bounds a decoded array's initial capacity: enough for want
// entries, capped so a hostile header can cost at most a few megabytes
// before real payload bytes must arrive (growth past the cap is paid
// only as data is actually delivered).
func presizeCap(want, entryBytes int) int {
	const maxUpfront = 4 << 20
	if want < 0 {
		return 0
	}
	if want > maxUpfront/entryBytes {
		return maxUpfront / entryBytes
	}
	return want
}

// growEarned makes room for need more entries without trusting the
// header: capacity quadruples from what delivered payload bytes have
// already earned, capped at the claimed want. A lying header therefore
// over-allocates at most 4x the bytes actually read, while an honest
// bulk decode reaches full size in O(1) growth steps instead of
// re-copying the array on append's fine-grained growth schedule.
func growEarned[T any](s []T, need, want int) []T {
	if len(s)+need <= cap(s) {
		return s
	}
	newCap := 4 * cap(s)
	if newCap < len(s)+need {
		newCap = len(s) + need
	}
	if want > len(s)+need && newCap > want {
		newCap = want
	}
	out := make([]T, len(s), newCap)
	copy(out, s)
	return out
}

// section reads one section header and returns its payload length after
// checking the tag.
func (sr *snapReader) section(tag uint32) (int64, error) {
	var h [snapshotSecHdrLen]byte
	if _, err := io.ReadFull(sr.br, h[:]); err != nil {
		return 0, fmt.Errorf("graph: snapshot section %d header: %w", tag, err)
	}
	if got := binary.LittleEndian.Uint32(h[0:4]); got != tag {
		return 0, fmt.Errorf("graph: snapshot section tag %d, want %d", got, tag)
	}
	l := binary.LittleEndian.Uint64(h[4:12])
	if l > math.MaxInt64 {
		return 0, fmt.Errorf("graph: snapshot section %d length %d out of range", tag, l)
	}
	return int64(l), nil
}

// payload reads exactly l payload bytes in bounded chunks (so a lying
// header cannot force a huge allocation) and verifies the trailing CRC.
func (sr *snapReader) payload(tag uint32, l int64, consume func([]byte)) error {
	crc := crc32.NewIEEE()
	if sr.scratch == nil {
		sr.scratch = make([]byte, 1<<20)
	}
	for remaining := l; remaining > 0; {
		k := int64(len(sr.scratch))
		if k > remaining {
			k = remaining
		}
		if _, err := io.ReadFull(sr.br, sr.scratch[:k]); err != nil {
			return fmt.Errorf("graph: snapshot section %d payload: %w", tag, err)
		}
		_, _ = crc.Write(sr.scratch[:k]) // hash.Hash.Write never fails
		consume(sr.scratch[:k])
		remaining -= k
	}
	var c [snapshotCRCLen]byte
	if _, err := io.ReadFull(sr.br, c[:]); err != nil {
		return fmt.Errorf("graph: snapshot section %d checksum: %w", tag, err)
	}
	if got := binary.LittleEndian.Uint32(c[:]); got != crc.Sum32() {
		return fmt.Errorf("graph: snapshot section %d checksum mismatch (file %08x, data %08x)", tag, got, crc.Sum32())
	}
	return nil
}

// wholePayload materializes a variable-length payload (compressed
// sections decode with look-ahead, so chunked decoding is not practical).
func (sr *snapReader) wholePayload(tag uint32, l int64) ([]byte, error) {
	var buf []byte
	err := sr.payload(tag, l, func(chunk []byte) {
		buf = growEarned(buf, len(chunk), int(l))
		buf = append(buf, chunk...)
	})
	return buf, err
}

// offsets decodes an offset section and validates it: n+1 entries,
// starting at 0, monotone, ending at m.
func (sr *snapReader) offsets(tag uint32, n, m int) ([]int64, error) {
	l, err := sr.section(tag)
	if err != nil {
		return nil, err
	}
	out := make([]int64, 0, presizeCap(n+1, 8))
	if sr.compressed {
		raw, err := sr.wholePayload(tag, l)
		if err != nil {
			return nil, err
		}
		// Every varint is at least one byte, so delivered bytes bound the
		// entry count and one growth step reaches final capacity.
		out = growEarned(out, min(n+1, len(raw)), n+1)
		prev := int64(0)
		for len(raw) > 0 {
			d, k := binary.Uvarint(raw)
			if k <= 0 {
				return nil, fmt.Errorf("graph: snapshot section %d: corrupt varint", tag)
			}
			raw = raw[k:]
			prev += int64(d)
			out = append(out, prev)
			if len(out) > n+1 {
				return nil, fmt.Errorf("graph: snapshot section %d: more than %d offsets", tag, n+1)
			}
		}
	} else {
		if l != int64(n+1)*8 {
			return nil, fmt.Errorf("graph: snapshot section %d is %d bytes, want %d", tag, l, int64(n+1)*8)
		}
		if err := sr.payload(tag, l, func(chunk []byte) {
			out = growEarned(out, len(chunk)/8, n+1)
			for i := 0; i+8 <= len(chunk); i += 8 {
				out = append(out, int64(binary.LittleEndian.Uint64(chunk[i:])))
			}
		}); err != nil {
			return nil, err
		}
	}
	if len(out) != n+1 {
		return nil, fmt.Errorf("graph: snapshot section %d has %d offsets, want %d", tag, len(out), n+1)
	}
	if out[0] != 0 || out[n] != int64(m) {
		return nil, fmt.Errorf("graph: snapshot section %d offsets span [%d,%d], want [0,%d]", tag, out[0], out[n], m)
	}
	for v := 0; v < n; v++ {
		if out[v] > out[v+1] {
			return nil, fmt.Errorf("graph: snapshot section %d offsets not monotone at vertex %d", tag, v)
		}
	}
	return out, nil
}

// vertexIDs decodes a u32 id section (inSrc / outDst); compressed runs
// are per-vertex ascending deltas over off.
func (sr *snapReader) vertexIDs(tag uint32, off []int64, m int) ([]uint32, error) {
	l, err := sr.section(tag)
	if err != nil {
		return nil, err
	}
	out := make([]uint32, 0, presizeCap(m, 4))
	if sr.compressed {
		raw, err := sr.wholePayload(tag, l)
		if err != nil {
			return nil, err
		}
		out = growEarned(out, min(m, len(raw)), m)
		for v := 0; v+1 < len(off); v++ {
			prev := uint64(0)
			for s := off[v]; s < off[v+1]; s++ {
				d, k := binary.Uvarint(raw)
				if k <= 0 {
					return nil, fmt.Errorf("graph: snapshot section %d: corrupt varint at vertex %d", tag, v)
				}
				raw = raw[k:]
				prev += d
				if prev > math.MaxUint32 {
					return nil, fmt.Errorf("graph: snapshot section %d: id overflow at vertex %d", tag, v)
				}
				out = append(out, uint32(prev))
			}
		}
		if len(raw) != 0 {
			return nil, fmt.Errorf("graph: snapshot section %d has %d trailing bytes", tag, len(raw))
		}
	} else {
		if l != int64(m)*4 {
			return nil, fmt.Errorf("graph: snapshot section %d is %d bytes, want %d", tag, l, int64(m)*4)
		}
		if err := sr.payload(tag, l, func(chunk []byte) {
			out = growEarned(out, len(chunk)/4, m)
			for i := 0; i+4 <= len(chunk); i += 4 {
				out = append(out, binary.LittleEndian.Uint32(chunk[i:]))
			}
		}); err != nil {
			return nil, err
		}
	}
	if len(out) != m {
		return nil, fmt.Errorf("graph: snapshot section %d has %d entries, want %d", tag, len(out), m)
	}
	return out, nil
}

// f32s decodes the weight section (raw f32 bits in both formats).
func (sr *snapReader) f32s(tag uint32, m int) ([]float32, error) {
	l, err := sr.section(tag)
	if err != nil {
		return nil, err
	}
	if l != int64(m)*4 {
		return nil, fmt.Errorf("graph: snapshot section %d is %d bytes, want %d", tag, l, int64(m)*4)
	}
	out := make([]float32, 0, presizeCap(m, 4))
	if err := sr.payload(tag, l, func(chunk []byte) {
		out = growEarned(out, len(chunk)/4, m)
		for i := 0; i+4 <= len(chunk); i += 4 {
			out = append(out, math.Float32frombits(binary.LittleEndian.Uint32(chunk[i:])))
		}
	}); err != nil {
		return nil, err
	}
	if len(out) != m {
		return nil, fmt.Errorf("graph: snapshot section %d has %d entries, want %d", tag, len(out), m)
	}
	return out, nil
}

// slots decodes the outPos section; compressed runs are per-source
// ascending slot deltas over off.
func (sr *snapReader) slots(tag uint32, off []int64, m int) ([]int64, error) {
	l, err := sr.section(tag)
	if err != nil {
		return nil, err
	}
	out := make([]int64, 0, presizeCap(m, 8))
	if sr.compressed {
		raw, err := sr.wholePayload(tag, l)
		if err != nil {
			return nil, err
		}
		out = growEarned(out, min(m, len(raw)), m)
		for v := 0; v+1 < len(off); v++ {
			prev := uint64(0)
			for s := off[v]; s < off[v+1]; s++ {
				d, k := binary.Uvarint(raw)
				if k <= 0 {
					return nil, fmt.Errorf("graph: snapshot section %d: corrupt varint at vertex %d", tag, v)
				}
				raw = raw[k:]
				prev += d
				if prev > math.MaxInt64 {
					return nil, fmt.Errorf("graph: snapshot section %d: slot overflow at vertex %d", tag, v)
				}
				out = append(out, int64(prev))
			}
		}
		if len(raw) != 0 {
			return nil, fmt.Errorf("graph: snapshot section %d has %d trailing bytes", tag, len(raw))
		}
	} else {
		if l != int64(m)*8 {
			return nil, fmt.Errorf("graph: snapshot section %d is %d bytes, want %d", tag, l, int64(m)*8)
		}
		if err := sr.payload(tag, l, func(chunk []byte) {
			out = growEarned(out, len(chunk)/8, m)
			for i := 0; i+8 <= len(chunk); i += 8 {
				out = append(out, int64(binary.LittleEndian.Uint64(chunk[i:])))
			}
		}); err != nil {
			return nil, err
		}
	}
	if len(out) != m {
		return nil, fmt.Errorf("graph: snapshot section %d has %d entries, want %d", tag, len(out), m)
	}
	return out, nil
}
