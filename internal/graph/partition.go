package graph

import "fmt"

// Partition slices a graph into vertex blocks of a fixed size and the
// matching destination-sliced edge blocks (Fig. 1a of the paper). Block i
// owns vertices [i*B, min((i+1)*B, |V|)) and, by the CSC layout, its edge
// block [InOffset(lo), InOffset(hi)) is contiguous in memory.
type Partition struct {
	g         *Graph
	blockSize int
	numBlocks int
}

// NewPartition partitions g into blocks of blockSize vertices. A blockSize
// of 0 or >= |V| yields a single block (the BSP / full-gradient extreme).
func NewPartition(g *Graph, blockSize int) (*Partition, error) {
	if blockSize < 0 {
		return nil, fmt.Errorf("graph: negative block size %d", blockSize)
	}
	n := g.NumVertices()
	if blockSize == 0 || blockSize > n {
		blockSize = n
	}
	if blockSize == 0 { // empty graph: one empty block keeps callers simple
		blockSize = 1
	}
	nb := (n + blockSize - 1) / blockSize
	if nb == 0 {
		nb = 1
	}
	return &Partition{g: g, blockSize: blockSize, numBlocks: nb}, nil
}

// Graph returns the partitioned graph.
func (p *Partition) Graph() *Graph { return p.g }

// BlockSize returns the nominal vertices-per-block.
func (p *Partition) BlockSize() int { return p.blockSize }

// NumBlocks returns the number of vertex blocks.
func (p *Partition) NumBlocks() int { return p.numBlocks }

// VertexRange returns the half-open vertex range [lo, hi) of block b.
func (p *Partition) VertexRange(b int) (lo, hi int) {
	lo = b * p.blockSize
	hi = lo + p.blockSize
	if n := p.g.NumVertices(); hi > n {
		hi = n
	}
	return lo, hi
}

// EdgeRange returns the half-open CSC slot range [lo, hi) of block b's edge
// block — contiguous by construction.
func (p *Partition) EdgeRange(b int) (lo, hi int64) {
	vlo, vhi := p.VertexRange(b)
	return p.g.InOffset(vlo), p.g.InOffset(vhi)
}

// BlockOf returns the block owning vertex v.
func (p *Partition) BlockOf(v uint32) int { return int(v) / p.blockSize }

// NumBlockVertices returns the number of vertices in block b (the last
// block may be short).
func (p *Partition) NumBlockVertices(b int) int {
	lo, hi := p.VertexRange(b)
	return hi - lo
}

// EdgeBytes returns the number of bytes the GATHER stage streams for block
// b, given bytesPerEdge (weight + cached value words).
func (p *Partition) EdgeBytes(b int, bytesPerEdge int64) int64 {
	lo, hi := p.EdgeRange(b)
	return (hi - lo) * bytesPerEdge
}
