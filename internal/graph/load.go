package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Format identifies an on-disk graph encoding.
type Format int

const (
	// FormatAuto selects the format automatically: on load by sniffing the
	// magic bytes, on save by the path's extension (".gabs" plain
	// snapshot, ".gabz" compressed snapshot, anything else text).
	FormatAuto Format = iota
	// FormatText is the "src dst [weight]" edge-list text format of
	// ReadEdgeList / WriteEdgeList.
	FormatText
	// FormatSnapshot is the plain binary snapshot of WriteSnapshot.
	FormatSnapshot
	// FormatSnapshotCompressed is the varint-compressed snapshot of
	// WriteSnapshotCompressed.
	FormatSnapshotCompressed
)

// String names the format for error messages and logs.
func (f Format) String() string {
	switch f {
	case FormatAuto:
		return "auto"
	case FormatText:
		return "text"
	case FormatSnapshot:
		return "snapshot"
	case FormatSnapshotCompressed:
		return "snapshot-compressed"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// DetectSaveFormat resolves FormatAuto for a save path by extension:
// ".gabs" is a plain snapshot, ".gabz" a compressed one, anything else
// the text edge list. Non-auto formats pass through.
func DetectSaveFormat(path string, f Format) Format {
	if f != FormatAuto {
		return f
	}
	switch strings.ToLower(filepath.Ext(path)) {
	case ".gabs":
		return FormatSnapshot
	case ".gabz":
		return FormatSnapshotCompressed
	default:
		return FormatText
	}
}

// Load reads a graph from path, auto-detecting the format from the
// file's magic bytes (snapshot) or falling back to the text edge list.
func Load(path string) (*Graph, error) {
	return LoadFormat(path, FormatAuto)
}

// LoadFormat reads a graph from path in the given format; FormatAuto
// sniffs the magic bytes.
func LoadFormat(path string, f Format) (*Graph, error) {
	file, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer file.Close() //abcdlint:ignore errcheck -- read-only close
	g, err := ReadFormat(file, f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, nil
}

// ReadFormat reads a graph from r in the given format; FormatAuto peeks
// at the first bytes to distinguish a snapshot from text.
func ReadFormat(r io.Reader, f Format) (*Graph, error) {
	if f == FormatAuto {
		br := bufio.NewReaderSize(r, 1<<20)
		head, err := br.Peek(4)
		if err != nil && err != io.EOF {
			return nil, err
		}
		if IsSnapshotMagic(head) {
			return ReadSnapshot(br)
		}
		return ReadEdgeList(br)
	}
	switch f {
	case FormatText:
		return ReadEdgeList(r)
	case FormatSnapshot, FormatSnapshotCompressed:
		return ReadSnapshot(r)
	default:
		return nil, fmt.Errorf("graph: unknown load format %v", f)
	}
}

// Save writes g to path, choosing the format from the extension (see
// DetectSaveFormat). The file is written to a temporary sibling and
// renamed into place so a crashed save never leaves a torn file.
func Save(path string, g *Graph) error {
	return SaveFormat(path, g, FormatAuto)
}

// SaveFormat writes g to path in the given format (FormatAuto resolves
// by extension), atomically via a temporary sibling file.
func SaveFormat(path string, g *Graph, f Format) error {
	f = DetectSaveFormat(path, f)
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if err := WriteFormat(tmp, g, f); err != nil {
		tmp.Close()           //abcdlint:ignore errcheck -- already failing
		os.Remove(tmp.Name()) //abcdlint:ignore errcheck -- already failing
		return fmt.Errorf("%s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name()) //abcdlint:ignore errcheck -- already failing
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name()) //abcdlint:ignore errcheck -- already failing
		return err
	}
	return nil
}

// WriteFormat writes g to w in the given format. FormatAuto here means
// the text edge list (a writer has no path to take an extension from).
func WriteFormat(w io.Writer, g *Graph, f Format) error {
	switch f {
	case FormatAuto, FormatText:
		return WriteEdgeList(w, g)
	case FormatSnapshot:
		return WriteSnapshot(w, g)
	case FormatSnapshotCompressed:
		return WriteSnapshotCompressed(w, g)
	default:
		return fmt.Errorf("graph: unknown save format %v", f)
	}
}
