package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestEdgeListRoundTrip(t *testing.T) {
	g := diamond(t)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip: V=%d E=%d, want V=%d E=%d",
			g2.NumVertices(), g2.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	a, b := g.Edges(), g2.Edges()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("edge %d: got %+v want %+v", i, b[i], a[i])
		}
	}
}

func TestReadEdgeListDefaults(t *testing.T) {
	in := "0 1\n1 2 2.5\n\n# a comment\n2 0\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
	// Default weight 1 for "0 1".
	slot := g.InOffset(1)
	if g.InSrc(slot) != 0 || g.InWeight(slot) != 1 {
		t.Fatalf("default weight edge wrong: src=%d w=%g", g.InSrc(slot), g.InWeight(slot))
	}
}

func TestReadEdgeListVerticesHint(t *testing.T) {
	// Hint adds isolated trailing vertices not mentioned in any edge.
	in := "# vertices=10 edges=1\n0 1\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 10 {
		t.Fatalf("NumVertices = %d, want 10", g.NumVertices())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	for _, in := range []string{"0\n", "x 1\n", "1 y\n", "1 2 zzz\n"} {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("input %q: want parse error", in)
		}
	}
}
