package graph

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// snapshotFixture builds a small irregular graph: duplicates, a
// self-loop, an isolated vertex, non-trivial weights.
func snapshotFixture(t *testing.T) *Graph {
	t.Helper()
	g, err := FromEdges(6, []Edge{
		{0, 1, 0.5}, {1, 2, 2}, {2, 0, 1}, {0, 1, 0.25},
		{3, 3, -7.5}, {4, 2, float32(math.Pi)}, {1, 4, 1e-9},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func sameLayout(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.n != b.n || a.m != b.m {
		t.Fatalf("size mismatch: V=%d/%d E=%d/%d", a.n, b.n, a.m, b.m)
	}
	for v := 0; v <= a.n; v++ {
		if a.inOff[v] != b.inOff[v] || a.outOff[v] != b.outOff[v] {
			t.Fatalf("offset mismatch at vertex %d", v)
		}
	}
	for i := 0; i < a.m; i++ {
		if a.inSrc[i] != b.inSrc[i] || a.inW[i] != b.inW[i] {
			t.Fatalf("CSC slot %d mismatch: (%d,%g) vs (%d,%g)", i, a.inSrc[i], a.inW[i], b.inSrc[i], b.inW[i])
		}
		if a.outDst[i] != b.outDst[i] || a.outPos[i] != b.outPos[i] {
			t.Fatalf("CSR edge %d mismatch: (%d,%d) vs (%d,%d)", i, a.outDst[i], a.outPos[i], b.outDst[i], b.outPos[i])
		}
	}
	for v := 0; v < a.n; v++ {
		if a.inDeg[v] != b.inDeg[v] || a.outDeg[v] != b.outDeg[v] {
			t.Fatalf("degree mismatch at vertex %d", v)
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	g := snapshotFixture(t)
	for _, tc := range []struct {
		name  string
		write func(*bytes.Buffer) error
	}{
		{"plain", func(b *bytes.Buffer) error { return WriteSnapshot(b, g) }},
		{"compressed", func(b *bytes.Buffer) error { return WriteSnapshotCompressed(b, g) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := tc.write(&buf); err != nil {
				t.Fatal(err)
			}
			got, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			sameLayout(t, g, got)
		})
	}
}

func TestSnapshotRoundTripEmpty(t *testing.T) {
	g, err := FromEdges(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sameLayout(t, g, got)
}

func TestSnapshotCompressedIsSmaller(t *testing.T) {
	edges := make([]Edge, 0, 4096)
	rng := uint64(1)
	for i := 0; i < 4096; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		edges = append(edges, Edge{Src: uint32(rng>>33) % 512, Dst: uint32(rng>>13) % 512, Weight: 1})
	}
	g, err := FromEdges(512, edges)
	if err != nil {
		t.Fatal(err)
	}
	var plain, comp bytes.Buffer
	if err := WriteSnapshot(&plain, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapshotCompressed(&comp, g); err != nil {
		t.Fatal(err)
	}
	if comp.Len() >= plain.Len() {
		t.Fatalf("compressed %d bytes >= plain %d bytes", comp.Len(), plain.Len())
	}
}

func TestSnapshotTruncation(t *testing.T) {
	g := snapshotFixture(t)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, g); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every strict prefix must fail cleanly, never panic or succeed.
	for cut := 0; cut < len(full); cut++ {
		if _, err := ReadSnapshot(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d bytes read successfully", cut, len(full))
		}
	}
}

func TestSnapshotCorruption(t *testing.T) {
	g := snapshotFixture(t)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, g); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	t.Run("bad-magic", func(t *testing.T) {
		b := append([]byte(nil), full...)
		b[0] = 'X'
		if _, err := ReadSnapshot(bytes.NewReader(b)); err == nil || !strings.Contains(err.Error(), "magic") {
			t.Fatalf("want magic error, got %v", err)
		}
	})
	t.Run("bad-version", func(t *testing.T) {
		b := append([]byte(nil), full...)
		b[4] = 99
		if _, err := ReadSnapshot(bytes.NewReader(b)); err == nil || !strings.Contains(err.Error(), "version") {
			t.Fatalf("want version error, got %v", err)
		}
	})
	t.Run("payload-bitflip", func(t *testing.T) {
		// Flip one byte in each section payload region; the CRC (or a
		// validation check) must reject every one of them.
		for pos := snapshotHeaderLen; pos < len(full); pos++ {
			b := append([]byte(nil), full...)
			b[pos] ^= 0x40
			if _, err := ReadSnapshot(bytes.NewReader(b)); err == nil {
				t.Fatalf("bit flip at byte %d read successfully", pos)
			}
		}
	})
	t.Run("huge-claimed-sizes", func(t *testing.T) {
		// A header claiming absurd n/m must fail on missing data, not
		// allocate terabytes.
		b := append([]byte(nil), full...)
		b[8], b[9], b[10] = 0xff, 0xff, 0xff
		if _, err := ReadSnapshot(bytes.NewReader(b)); err == nil {
			t.Fatal("huge header read successfully")
		}
	})
}

func TestSnapshotEdgeSections(t *testing.T) {
	g := snapshotFixture(t)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, g); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	srcOff, wOff := SnapshotEdgeSections(g.NumVertices(), g.NumEdges())
	for i := 0; i < g.NumEdges(); i++ {
		src := leU32(full[srcOff+int64(i)*4:])
		if src != g.inSrc[i] {
			t.Fatalf("slot %d: pread src %d, want %d", i, src, g.inSrc[i])
		}
		w := math.Float32frombits(leU32(full[wOff+int64(i)*4:]))
		if w != g.inW[i] {
			t.Fatalf("slot %d: pread weight %g, want %g", i, w, g.inW[i])
		}
	}
}

func leU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func leU64(b []byte) uint64 {
	return uint64(leU32(b)) | uint64(leU32(b[4:]))<<32
}

// TestSnapshotSectionLayout cross-checks every computed payload offset
// against the bytes an actual WriteSnapshot produced: each section decoded
// straight out of the buffer at its claimed offset must equal the
// in-memory array.
func TestSnapshotSectionLayout(t *testing.T) {
	g := snapshotFixture(t)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, g); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	l := SnapshotSectionLayout(g.NumVertices(), g.NumEdges())
	for v := 0; v <= g.NumVertices(); v++ {
		if got := int64(leU64(full[l.InOff+int64(v)*8:])); got != g.inOff[v] {
			t.Fatalf("inOff[%d] pread %d, want %d", v, got, g.inOff[v])
		}
		if got := int64(leU64(full[l.OutOff+int64(v)*8:])); got != g.outOff[v] {
			t.Fatalf("outOff[%d] pread %d, want %d", v, got, g.outOff[v])
		}
	}
	for i := 0; i < g.NumEdges(); i++ {
		if got := leU32(full[l.InSrc+int64(i)*4:]); got != g.inSrc[i] {
			t.Fatalf("inSrc[%d] pread %d, want %d", i, got, g.inSrc[i])
		}
		if got := math.Float32frombits(leU32(full[l.InW+int64(i)*4:])); got != g.inW[i] {
			t.Fatalf("inW[%d] pread %g, want %g", i, got, g.inW[i])
		}
		if got := leU32(full[l.OutDst+int64(i)*4:]); got != g.outDst[i] {
			t.Fatalf("outDst[%d] pread %d, want %d", i, got, g.outDst[i])
		}
		if got := int64(leU64(full[l.OutPos+int64(i)*8:])); got != g.outPos[i] {
			t.Fatalf("outPos[%d] pread %d, want %d", i, got, g.outPos[i])
		}
	}
	srcOff, wOff := SnapshotEdgeSections(g.NumVertices(), g.NumEdges())
	if srcOff != l.InSrc || wOff != l.InW {
		t.Fatalf("SnapshotEdgeSections (%d,%d) disagrees with layout (%d,%d)", srcOff, wOff, l.InSrc, l.InW)
	}
}

// TestFromSections rebuilds the fixture from its own section arrays and
// checks the validation rejects inconsistent inputs.
func TestFromSections(t *testing.T) {
	g := snapshotFixture(t)
	got, err := FromSections(g.n, g.m, g.inOff, g.inSrc, g.inW, g.outOff, g.outDst, g.outPos)
	if err != nil {
		t.Fatal(err)
	}
	sameLayout(t, g, got)

	short := g.inOff[:g.n] // wrong length
	if _, err := FromSections(g.n, g.m, short, g.inSrc, g.inW, g.outOff, g.outDst, g.outPos); err == nil {
		t.Fatal("short offset array accepted")
	}
	bad := append([]int64(nil), g.inOff...)
	bad[1], bad[2] = bad[2]+1, bad[1] // non-monotone
	if _, err := FromSections(g.n, g.m, bad, g.inSrc, g.inW, g.outOff, g.outDst, g.outPos); err == nil {
		t.Fatal("non-monotone offsets accepted")
	}
	badSrc := append([]uint32(nil), g.inSrc...)
	badSrc[0] = uint32(g.n)
	if _, err := FromSections(g.n, g.m, g.inOff, badSrc, g.inW, g.outOff, g.outDst, g.outPos); err == nil {
		t.Fatal("out-of-range source accepted")
	}
}

func TestLoadSaveFormats(t *testing.T) {
	g := snapshotFixture(t)
	dir := t.TempDir()
	for _, tc := range []struct {
		file   string
		format Format
	}{
		{"graph.txt", FormatText},
		{"graph.gabs", FormatSnapshot},
		{"graph.gabz", FormatSnapshotCompressed},
	} {
		t.Run(tc.format.String(), func(t *testing.T) {
			path := filepath.Join(dir, tc.file)
			if err := Save(path, g); err != nil {
				t.Fatal(err)
			}
			if got := DetectSaveFormat(path, FormatAuto); got != tc.format {
				t.Fatalf("DetectSaveFormat = %v, want %v", got, tc.format)
			}
			got, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			// Text re-derives the layout from parsed edges; snapshots
			// restore it verbatim. Engine-visible arrays match either way.
			sameLayout(t, g, got)
		})
	}
}

func TestLoadFormatMismatch(t *testing.T) {
	g := snapshotFixture(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "graph.gabs")
	if err := Save(path, g); err != nil {
		t.Fatal(err)
	}
	// Forcing the text parser onto a binary snapshot must error.
	if _, err := LoadFormat(path, FormatText); err == nil {
		t.Fatal("text parse of a binary snapshot succeeded")
	}
	// Auto-detect must still work regardless of the extension.
	odd := filepath.Join(dir, "graph.bin")
	if err := SaveFormat(odd, g, FormatSnapshotCompressed); err != nil {
		t.Fatal(err)
	}
	got, err := Load(odd)
	if err != nil {
		t.Fatal(err)
	}
	sameLayout(t, g, got)
}

func TestSaveIsAtomic(t *testing.T) {
	g := snapshotFixture(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "graph.gabs")
	if err := Save(path, g); err != nil {
		t.Fatal(err)
	}
	// Overwrite with a different graph; no temp files may linger.
	g2, err := FromEdges(3, []Edge{{0, 1, 1}, {1, 2, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := Save(path, g2); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	sameLayout(t, g2, got)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries after save, want 1", len(entries))
	}
}
