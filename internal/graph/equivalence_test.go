package graph_test

import (
	"sort"
	"testing"

	"graphabcd/internal/gen"
	"graphabcd/internal/graph"
)

// TestBuilderEquivalence checks the counting-sort builder against the
// seed comparison-sort builder on the three generator families the
// benchmarks use. The engine-visible layout (inOff/inSrc/outOff/outDst/
// outPos) must be byte-identical; weights are compared as multisets
// within each (dst, src) duplicate run, the only place the legacy
// unstable sort's order was unspecified.
func TestBuilderEquivalence(t *testing.T) {
	graphs := map[string]*graph.Graph{}

	rmat, err := gen.RMAT(gen.RMATConfig{Scale: 10, EdgeFactor: 8, A: 0.57, B: 0.19, C: 0.19, Seed: 11, MaxWeight: 9})
	if err != nil {
		t.Fatal(err)
	}
	graphs["rmat"] = rmat

	uni, err := gen.Uniform(700, 9000, 5, 12)
	if err != nil {
		t.Fatal(err)
	}
	graphs["uniform"] = uni

	grid, err := gen.Grid(24, 31, 3, 13)
	if err != nil {
		t.Fatal(err)
	}
	graphs["grid"] = grid

	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			edges := g.Edges()
			shuffleEdges(edges, 0xabcd^uint64(len(edges)))
			n := g.NumVertices()
			want, err := graph.FromEdgesSort(n, edges)
			if err != nil {
				t.Fatal(err)
			}
			got, err := graph.FromEdges(n, edges)
			if err != nil {
				t.Fatal(err)
			}
			compareLayouts(t, want, got)
		})
	}
}

// shuffleEdges deterministically permutes the slot-ordered edge list so
// the builders see an adversarially unsorted input.
func shuffleEdges(edges []graph.Edge, seed uint64) {
	s := seed
	next := func() uint64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return s
	}
	for i := len(edges) - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		edges[i], edges[j] = edges[j], edges[i]
	}
}

func compareLayouts(t *testing.T, want, got *graph.Graph) {
	t.Helper()
	if want.NumVertices() != got.NumVertices() || want.NumEdges() != got.NumEdges() {
		t.Fatalf("size: V=%d E=%d, want V=%d E=%d",
			got.NumVertices(), got.NumEdges(), want.NumVertices(), want.NumEdges())
	}
	n, m := want.NumVertices(), int64(want.NumEdges())
	for v := 0; v <= n; v++ {
		if want.InOffset(v) != got.InOffset(v) {
			t.Fatalf("inOff[%d] = %d, want %d", v, got.InOffset(v), want.InOffset(v))
		}
		if want.OutOffset(v) != got.OutOffset(v) {
			t.Fatalf("outOff[%d] = %d, want %d", v, got.OutOffset(v), want.OutOffset(v))
		}
	}
	for i := int64(0); i < m; i++ {
		if want.InSrc(i) != got.InSrc(i) {
			t.Fatalf("inSrc[%d] = %d, want %d", i, got.InSrc(i), want.InSrc(i))
		}
		if want.OutDst(i) != got.OutDst(i) {
			t.Fatalf("outDst[%d] = %d, want %d", i, got.OutDst(i), want.OutDst(i))
		}
		if want.OutPos(i) != got.OutPos(i) {
			t.Fatalf("outPos[%d] = %d, want %d", i, got.OutPos(i), want.OutPos(i))
		}
	}
	for v := 0; v < n; v++ {
		if want.InDegree(uint32(v)) != got.InDegree(uint32(v)) || want.OutDegree(uint32(v)) != got.OutDegree(uint32(v)) {
			t.Fatalf("degrees of %d differ", v)
		}
	}
	// Weights: within each run of identical (dst, src) slots the legacy
	// sort's order was arbitrary, so compare sorted runs.
	for v := 0; v < n; v++ {
		lo, hi := want.InOffset(v), want.InOffset(v+1)
		for s := lo; s < hi; {
			e := s + 1
			for e < hi && want.InSrc(e) == want.InSrc(s) {
				e++
			}
			a := weightsOf(want, s, e)
			b := weightsOf(got, s, e)
			for k := range a {
				if a[k] != b[k] {
					t.Fatalf("weight multiset of dst=%d src=%d differs: %v vs %v", v, want.InSrc(s), a, b)
				}
			}
			s = e
		}
	}
}

func weightsOf(g *graph.Graph, lo, hi int64) []float64 {
	out := make([]float64, 0, hi-lo)
	for s := lo; s < hi; s++ {
		out = append(out, float64(g.InWeight(s)))
	}
	sort.Float64s(out)
	return out
}
