package graph

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func mustGraph(t *testing.T, n int, edges []Edge) *Graph {
	t.Helper()
	g, err := FromEdges(n, edges)
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	return g
}

// diamond returns a small fixed graph used across tests:
// 0->1, 0->2, 1->3, 2->3, 3->0 with weights 1..5.
func diamond(t *testing.T) *Graph {
	t.Helper()
	return mustGraph(t, 4, []Edge{
		{0, 1, 1}, {0, 2, 2}, {1, 3, 3}, {2, 3, 4}, {3, 0, 5},
	})
}

func TestFromEdgesEmpty(t *testing.T) {
	g := mustGraph(t, 0, nil)
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph: got V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
	g = mustGraph(t, 5, nil)
	if g.NumVertices() != 5 || g.NumEdges() != 0 {
		t.Fatalf("edgeless graph: got V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
	if g.InOffset(5) != 0 {
		t.Fatalf("InOffset(5) = %d, want 0", g.InOffset(5))
	}
}

func TestFromEdgesOutOfRange(t *testing.T) {
	if _, err := FromEdges(2, []Edge{{0, 2, 1}}); err == nil {
		t.Fatal("want error for dst out of range")
	}
	if _, err := FromEdges(2, []Edge{{5, 0, 1}}); err == nil {
		t.Fatal("want error for src out of range")
	}
	if _, err := FromEdges(-1, nil); err == nil {
		t.Fatal("want error for negative n")
	}
}

func TestDegrees(t *testing.T) {
	g := diamond(t)
	wantOut := []int32{2, 1, 1, 1}
	wantIn := []int32{1, 1, 1, 2}
	for v := uint32(0); v < 4; v++ {
		if g.OutDegree(v) != wantOut[v] {
			t.Errorf("OutDegree(%d) = %d, want %d", v, g.OutDegree(v), wantOut[v])
		}
		if g.InDegree(v) != wantIn[v] {
			t.Errorf("InDegree(%d) = %d, want %d", v, g.InDegree(v), wantIn[v])
		}
	}
}

func TestCSCLayoutSortedByDstThenSrc(t *testing.T) {
	g := diamond(t)
	// In-edge slots must be grouped by destination with sources ascending.
	for v := 0; v < g.NumVertices(); v++ {
		var prev uint32
		for s := g.InOffset(v); s < g.InOffset(v+1); s++ {
			if s > g.InOffset(v) && g.InSrc(s) < prev {
				t.Errorf("vertex %d: in-edge sources not ascending", v)
			}
			prev = g.InSrc(s)
		}
	}
	// Spot-check vertex 3: in-edges from 1 (w=3) and 2 (w=4).
	lo, hi := g.InOffset(3), g.InOffset(4)
	if hi-lo != 2 || g.InSrc(lo) != 1 || g.InSrc(lo+1) != 2 {
		t.Fatalf("vertex 3 in-edges wrong: slots [%d,%d) srcs %d,%d", lo, hi, g.InSrc(lo), g.InSrc(lo+1))
	}
	if g.InWeight(lo) != 3 || g.InWeight(lo+1) != 4 {
		t.Fatalf("vertex 3 in-weights wrong: %g,%g", g.InWeight(lo), g.InWeight(lo+1))
	}
}

func TestOutPosPointsAtMatchingSlot(t *testing.T) {
	g := diamond(t)
	for v := 0; v < g.NumVertices(); v++ {
		for i := g.OutOffset(v); i < g.OutOffset(v+1); i++ {
			dst := g.OutDst(i)
			slot := g.OutPos(i)
			if slot < g.InOffset(int(dst)) || slot >= g.InOffset(int(dst)+1) {
				t.Errorf("out-edge %d->%d: slot %d outside dst range [%d,%d)",
					v, dst, slot, g.InOffset(int(dst)), g.InOffset(int(dst)+1))
			}
			if g.InSrc(slot) != uint32(v) {
				t.Errorf("out-edge %d->%d: slot %d has src %d", v, dst, slot, g.InSrc(slot))
			}
		}
	}
}

func TestEdgesRoundTripsMultiset(t *testing.T) {
	in := []Edge{{1, 0, 9}, {0, 1, 1}, {0, 1, 2}, {1, 1, 3}} // dup + self-loop
	g := mustGraph(t, 2, in)
	out := g.Edges()
	if len(out) != len(in) {
		t.Fatalf("Edges() len = %d, want %d", len(out), len(in))
	}
	key := func(e Edge) [3]float32 { return [3]float32{float32(e.Src), float32(e.Dst), e.Weight} }
	sortEdges := func(es []Edge) {
		sort.Slice(es, func(a, b int) bool {
			ka, kb := key(es[a]), key(es[b])
			for i := range ka {
				if ka[i] != kb[i] {
					return ka[i] < kb[i]
				}
			}
			return false
		})
	}
	sortEdges(in)
	sortEdges(out)
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("edge %d: got %+v want %+v", i, out[i], in[i])
		}
	}
}

func randomEdges(rng *rand.Rand, n, m int) []Edge {
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{
			Src:    uint32(rng.Intn(n)),
			Dst:    uint32(rng.Intn(n)),
			Weight: float32(rng.Intn(100)) / 10,
		}
	}
	return edges
}

// Property: for any random edge list, the dual-layout invariants hold.
func TestPropertyDualLayoutInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(64)
		m := rng.Intn(256)
		g, err := FromEdges(n, randomEdges(rng, n, m))
		if err != nil {
			return false
		}
		// Offsets monotone and bounded.
		for v := 0; v < n; v++ {
			if g.InOffset(v) > g.InOffset(v+1) || g.OutOffset(v) > g.OutOffset(v+1) {
				return false
			}
		}
		if g.InOffset(n) != int64(m) || g.OutOffset(n) != int64(m) {
			return false
		}
		// Every CSC slot is referenced by exactly one out-edge.
		seen := make([]bool, m)
		for v := 0; v < n; v++ {
			for i := g.OutOffset(v); i < g.OutOffset(v+1); i++ {
				s := g.OutPos(i)
				if s < 0 || s >= int64(m) || seen[s] {
					return false
				}
				seen[s] = true
				if g.InSrc(s) != uint32(v) {
					return false
				}
			}
		}
		// Degree sums equal |E|.
		var din, dout int64
		for v := uint32(0); int(v) < n; v++ {
			din += int64(g.InDegree(v))
			dout += int64(g.OutDegree(v))
		}
		return din == int64(m) && dout == int64(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFromEdgesDoesNotMutateInput(t *testing.T) {
	in := []Edge{{3, 0, 1}, {2, 0, 1}, {1, 0, 1}}
	want := append([]Edge(nil), in...)
	mustGraph(t, 4, in)
	for i := range in {
		if in[i] != want[i] {
			t.Fatalf("input edge %d mutated: %+v", i, in[i])
		}
	}
}

func TestString(t *testing.T) {
	if s := diamond(t).String(); s != "graph{V=4 E=5}" {
		t.Fatalf("String() = %q", s)
	}
}
