package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList: arbitrary text must never panic the parser, and any
// successfully parsed graph must survive a write/read round trip.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2 2.5\n# c\n")
	f.Add("# vertices=10\n0 1 1\n")
	f.Add("")
	f.Add("9 9 9\n9 9\n")
	f.Add("0 1\n\n\n2 0 0.5")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadEdgeList(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("write of parsed graph failed: %v", err)
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("round trip parse failed: %v", err)
		}
		if g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip: %d edges, want %d", g2.NumEdges(), g.NumEdges())
		}
		a, b := g.Edges(), g2.Edges()
		for i := range a {
			if a[i].Src != b[i].Src || a[i].Dst != b[i].Dst {
				t.Fatalf("edge %d: %+v vs %+v", i, a[i], b[i])
			}
		}
	})
}
