package graph

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// FuzzReadEdgeList: arbitrary text must never panic the parser, and any
// successfully parsed graph must survive a write/read round trip.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2 2.5\n# c\n")
	f.Add("# vertices=10\n0 1 1\n")
	f.Add("")
	f.Add("9 9 9\n9 9\n")
	f.Add("0 1\n\n\n2 0 0.5")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadEdgeList(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("write of parsed graph failed: %v", err)
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("round trip parse failed: %v", err)
		}
		if g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip: %d edges, want %d", g2.NumEdges(), g.NumEdges())
		}
		a, b := g.Edges(), g2.Edges()
		for i := range a {
			if a[i].Src != b[i].Src || a[i].Dst != b[i].Dst {
				t.Fatalf("edge %d: %+v vs %+v", i, a[i], b[i])
			}
		}
	})
}

// FuzzSnapshotRoundTrip: any graph the text parser accepts must survive
// text -> Graph -> snapshot -> Graph with the engine-visible layout
// (inOff/inSrc/inW/outOff/outDst/outPos) byte-identical, through both
// the plain and the compressed snapshot encodings.
func FuzzSnapshotRoundTrip(f *testing.F) {
	f.Add("0 1\n1 2 2.5\n# c\n")
	f.Add("# vertices=10\n0 1 1\n")
	f.Add("")
	f.Add("9 9 9\n9 9\n3 1 0.125\n9 3\n")
	f.Add("0 1 -4\n0 1 3e-9\n0 1 -4\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadEdgeList(strings.NewReader(in))
		if err != nil {
			return
		}
		for _, enc := range []struct {
			name  string
			write func(*bytes.Buffer) error
		}{
			{"plain", func(b *bytes.Buffer) error { return WriteSnapshot(b, g) }},
			{"compressed", func(b *bytes.Buffer) error { return WriteSnapshotCompressed(b, g) }},
		} {
			var buf bytes.Buffer
			if err := enc.write(&buf); err != nil {
				t.Fatalf("%s write failed: %v", enc.name, err)
			}
			got, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("%s read failed: %v", enc.name, err)
			}
			assertIdenticalLayout(t, enc.name, g, got)
		}
	})
}

// FuzzReadSnapshot: arbitrary bytes must never panic the snapshot
// decoder or make it allocate past the input size, and anything it does
// accept must re-encode to an equivalent graph.
func FuzzReadSnapshot(f *testing.F) {
	seed, err := FromEdges(4, []Edge{{0, 1, 1}, {2, 1, 0.5}, {3, 3, 2}})
	if err != nil {
		f.Fatal(err)
	}
	var plain, comp bytes.Buffer
	if err := WriteSnapshot(&plain, seed); err != nil {
		f.Fatal(err)
	}
	if err := WriteSnapshotCompressed(&comp, seed); err != nil {
		f.Fatal(err)
	}
	f.Add(plain.Bytes())
	f.Add(comp.Bytes())
	f.Add([]byte("GABS garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteSnapshot(&buf, g); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		g2, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		assertIdenticalLayout(t, "reencode", g, g2)
	})
}

// assertIdenticalLayout compares every engine-visible array exactly.
func assertIdenticalLayout(t *testing.T, label string, want, got *Graph) {
	t.Helper()
	if want.n != got.n || want.m != got.m {
		t.Fatalf("%s: V=%d E=%d, want V=%d E=%d", label, got.n, got.m, want.n, want.m)
	}
	for v := 0; v <= want.n; v++ {
		if want.inOff[v] != got.inOff[v] || want.outOff[v] != got.outOff[v] {
			t.Fatalf("%s: offsets differ at vertex %d", label, v)
		}
	}
	for i := 0; i < want.m; i++ {
		// Weights compare as bit patterns so NaN payloads round-trip too.
		if want.inSrc[i] != got.inSrc[i] ||
			math.Float32bits(want.inW[i]) != math.Float32bits(got.inW[i]) ||
			want.outDst[i] != got.outDst[i] || want.outPos[i] != got.outPos[i] {
			t.Fatalf("%s: edge arrays differ at slot %d", label, i)
		}
	}
}
