// Package graph provides the in-memory graph representation used by
// GraphABCD: a dual CSC/CSR layout designed for the pull-push vertex
// operator of the paper (Sec. IV-A2).
//
// The in-coming edges of each vertex are stored contiguously ("edge blocks"
// sliced by destination vertex, Fig. 1a), so the GATHER-APPLY stage streams
// them sequentially. Each out-edge additionally records the index of its
// in-edge slot (the position SCATTER must write the updated source value
// to), making scatter writes random but disjoint per source block.
package graph

import (
	"fmt"
	"runtime"
	"sort"
)

// Edge is a directed, weighted input edge.
type Edge struct {
	Src, Dst uint32
	Weight   float32
}

// Graph is an immutable directed multigraph in dual CSC/CSR form.
//
// The CSC ("in") view groups edges by destination vertex: the in-edges of
// vertex v occupy the half-open slot range [InOffset(v), InOffset(v+1)).
// Slot indices into this range identify the per-edge cache entries that the
// engine's SCATTER stage writes source values into.
//
// The CSR ("out") view groups edges by source vertex and stores, for every
// out-edge, the destination vertex and the CSC slot index of that same edge.
type Graph struct {
	n int // number of vertices
	m int // number of edges

	// CSC view (gather side): in-edges sorted by (dst, src).
	inOff []int64   // len n+1; inOff[v]..inOff[v+1] are v's in-edge slots
	inSrc []uint32  // len m; source vertex of each in-edge slot
	inW   []float32 // len m; static weight of each in-edge slot

	// CSR view (scatter side): out-edges sorted by src.
	outOff []int64  // len n+1
	outDst []uint32 // len m; destination of each out-edge
	outPos []int64  // len m; CSC slot index of the same edge

	outDeg []int32 // len n; out-degree of each vertex
	inDeg  []int32 // len n; in-degree of each vertex
}

// FromEdges builds a Graph over vertices [0, n) from an arbitrary edge list.
// Edges referencing vertices outside [0, n) yield an error. The input slice
// is not modified. Duplicate edges and self-loops are preserved.
//
// Construction is the Builder's parallel counting sort — linear in |E|
// rather than the O(|E| log |E|) comparison sort of FromEdgesSort, and
// parallel across GOMAXPROCS. The resulting inOff/inSrc/outOff/outDst/
// outPos arrays are identical to FromEdgesSort's; only the order of
// weights among exact duplicate (src, dst) pairs may differ (the legacy
// sort was unstable there, the counting sort is stable).
func FromEdges(n int, edges []Edge) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	for i, e := range edges {
		if int(e.Src) >= n || int(e.Dst) >= n {
			return nil, fmt.Errorf("graph: edge %d (%d->%d) out of range [0,%d)", i, e.Src, e.Dst, n)
		}
	}
	b := NewBuilder(n)
	chunks := chunkBounds(len(edges), runtime.GOMAXPROCS(0))
	shards := make([]*Shard, len(chunks))
	for i := range chunks {
		shards[i] = b.NewShard()
	}
	parallelDo(len(chunks), func(i int) {
		sh := shards[i]
		sh.Grow(chunks[i].hi - chunks[i].lo)
		sh.AddEdges(edges[chunks[i].lo:chunks[i].hi])
	})
	return b.Build()
}

// FromEdgesSort is the original single-threaded sort-based builder,
// retained as the reference implementation for equivalence tests and the
// build benchmarks. New code should use FromEdges or a Builder.
func FromEdgesSort(n int, edges []Edge) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	for i, e := range edges {
		if int(e.Src) >= n || int(e.Dst) >= n {
			return nil, fmt.Errorf("graph: edge %d (%d->%d) out of range [0,%d)", i, e.Src, e.Dst, n)
		}
	}
	m := len(edges)
	g := &Graph{
		n:      n,
		m:      m,
		inOff:  make([]int64, n+1),
		inSrc:  make([]uint32, m),
		inW:    make([]float32, m),
		outOff: make([]int64, n+1),
		outDst: make([]uint32, m),
		outPos: make([]int64, m),
		outDeg: make([]int32, n),
		inDeg:  make([]int32, n),
	}

	// Order in-edge slots by (dst, src) without mutating the caller's slice.
	order := make([]int32, m)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		ea, eb := edges[order[a]], edges[order[b]]
		if ea.Dst != eb.Dst {
			return ea.Dst < eb.Dst
		}
		return ea.Src < eb.Src
	})

	// CSC arrays + degree counts.
	for i, idx := range order {
		e := edges[idx]
		g.inSrc[i] = e.Src
		g.inW[i] = e.Weight
		g.inDeg[e.Dst]++
		g.outDeg[e.Src]++
	}
	for v := 0; v < n; v++ {
		g.inOff[v+1] = g.inOff[v] + int64(g.inDeg[v])
		g.outOff[v+1] = g.outOff[v] + int64(g.outDeg[v])
	}

	// CSR arrays: scan CSC slots and bucket each edge under its source,
	// recording the CSC slot index for scatter.
	next := make([]int64, n)
	copy(next, g.outOff[:n])
	for slot := 0; slot < m; slot++ {
		src := g.inSrc[slot]
		dst := dstOfSlot(g, int64(slot))
		p := next[src]
		g.outDst[p] = dst
		g.outPos[p] = int64(slot)
		next[src] = p + 1
	}
	return g, nil
}

// dstOfSlot recovers the destination vertex of a CSC slot via binary search
// over the offset array. Used only during construction.
func dstOfSlot(g *Graph, slot int64) uint32 {
	lo, hi := 0, g.n // invariant: inOff[lo] <= slot < inOff[hi]
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if g.inOff[mid] <= slot {
			lo = mid
		} else {
			hi = mid
		}
	}
	return uint32(lo)
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return g.n }

// MemoryBytes returns the resident size of the dual CSC/CSR layout: the
// backing arrays of both views plus the degree caches. The serving
// layer's warm graph pool charges loaded graphs against its memory
// budget with exactly this figure.
func (g *Graph) MemoryBytes() int64 {
	perVertex := int64(8+8+4+4) * int64(g.n) // inOff + outOff + outDeg + inDeg
	perEdge := int64(4+4+4+8) * int64(g.m)   // inSrc + inW + outDst + outPos
	return perVertex + perEdge + 16          // offset sentinels inOff[n], outOff[n]
}

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return g.m }

// InOffset returns the first in-edge slot of vertex v; InOffset(n) == |E|.
func (g *Graph) InOffset(v int) int64 { return g.inOff[v] }

// InSrc returns the source vertex of in-edge slot i.
func (g *Graph) InSrc(i int64) uint32 { return g.inSrc[i] }

// InWeight returns the static weight of in-edge slot i.
func (g *Graph) InWeight(i int64) float32 { return g.inW[i] }

// OutOffset returns the first out-edge index of vertex v.
func (g *Graph) OutOffset(v int) int64 { return g.outOff[v] }

// OutDst returns the destination vertex of out-edge i.
func (g *Graph) OutDst(i int64) uint32 { return g.outDst[i] }

// OutPos returns the CSC slot that out-edge i writes to during SCATTER.
func (g *Graph) OutPos(i int64) int64 { return g.outPos[i] }

// OutDegree returns the out-degree of vertex v.
func (g *Graph) OutDegree(v uint32) int32 { return g.outDeg[v] }

// InDegree returns the in-degree of vertex v.
func (g *Graph) InDegree(v uint32) int32 { return g.inDeg[v] }

// Edges reconstructs the edge list in CSC slot order. Intended for tests
// and tooling, not hot paths.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.m)
	for v := 0; v < g.n; v++ {
		for s := g.inOff[v]; s < g.inOff[v+1]; s++ {
			out = append(out, Edge{Src: g.inSrc[s], Dst: uint32(v), Weight: g.inW[s]})
		}
	}
	return out
}

// String summarizes the graph for logging.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{V=%d E=%d}", g.n, g.m)
}

// InSrcs returns the source-vertex array of the CSC slot range [lo, hi).
// The returned slice aliases the graph's internal storage: callers must
// treat it as read-only.
func (g *Graph) InSrcs(lo, hi int64) []uint32 { return g.inSrc[lo:hi] }

// InWeightsRange returns the weight array of the CSC slot range [lo, hi),
// aliasing internal storage; read-only.
func (g *Graph) InWeightsRange(lo, hi int64) []float32 { return g.inW[lo:hi] }
