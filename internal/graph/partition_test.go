package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPartitionBasic(t *testing.T) {
	g := diamond(t)
	p, err := NewPartition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumBlocks() != 2 || p.BlockSize() != 2 {
		t.Fatalf("got blocks=%d size=%d", p.NumBlocks(), p.BlockSize())
	}
	if lo, hi := p.VertexRange(0); lo != 0 || hi != 2 {
		t.Fatalf("block 0 range [%d,%d)", lo, hi)
	}
	if lo, hi := p.VertexRange(1); lo != 2 || hi != 4 {
		t.Fatalf("block 1 range [%d,%d)", lo, hi)
	}
	for v := uint32(0); v < 4; v++ {
		if got, want := p.BlockOf(v), int(v)/2; got != want {
			t.Errorf("BlockOf(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestPartitionSingleBlockExtremes(t *testing.T) {
	g := diamond(t)
	for _, bs := range []int{0, 4, 100} {
		p, err := NewPartition(g, bs)
		if err != nil {
			t.Fatal(err)
		}
		if p.NumBlocks() != 1 {
			t.Fatalf("blockSize=%d: NumBlocks=%d, want 1", bs, p.NumBlocks())
		}
		lo, hi := p.VertexRange(0)
		if lo != 0 || hi != 4 {
			t.Fatalf("blockSize=%d: range [%d,%d)", bs, lo, hi)
		}
	}
	if _, err := NewPartition(g, -1); err == nil {
		t.Fatal("want error for negative block size")
	}
}

func TestPartitionEmptyGraph(t *testing.T) {
	g := mustGraph(t, 0, nil)
	p, err := NewPartition(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumBlocks() != 1 {
		t.Fatalf("NumBlocks = %d, want 1", p.NumBlocks())
	}
	if lo, hi := p.VertexRange(0); lo != 0 || hi != 0 {
		t.Fatalf("range [%d,%d), want empty", lo, hi)
	}
	if lo, hi := p.EdgeRange(0); lo != 0 || hi != 0 {
		t.Fatalf("edge range [%d,%d), want empty", lo, hi)
	}
}

func TestPartitionEdgeRangesContiguous(t *testing.T) {
	g := diamond(t)
	p, _ := NewPartition(g, 3)
	var total int64
	prevHi := int64(0)
	for b := 0; b < p.NumBlocks(); b++ {
		lo, hi := p.EdgeRange(b)
		if lo != prevHi {
			t.Fatalf("block %d edge range starts at %d, want %d", b, lo, prevHi)
		}
		prevHi = hi
		total += hi - lo
	}
	if total != int64(g.NumEdges()) {
		t.Fatalf("edge ranges cover %d edges, want %d", total, g.NumEdges())
	}
}

func TestEdgeBytes(t *testing.T) {
	g := diamond(t)
	p, _ := NewPartition(g, 4)
	if got := p.EdgeBytes(0, 16); got != int64(g.NumEdges())*16 {
		t.Fatalf("EdgeBytes = %d", got)
	}
}

// Property: blocks tile [0,|V|) exactly once and edge ranges tile [0,|E|).
func TestPropertyPartitionTiles(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		m := rng.Intn(500)
		g, err := FromEdges(n, randomEdges(rng, n, m))
		if err != nil {
			return false
		}
		bs := 1 + rng.Intn(n+3)
		p, err := NewPartition(g, bs)
		if err != nil {
			return false
		}
		covered := 0
		prevHi := 0
		for b := 0; b < p.NumBlocks(); b++ {
			lo, hi := p.VertexRange(b)
			if lo != prevHi || hi < lo {
				return false
			}
			if p.NumBlockVertices(b) != hi-lo {
				return false
			}
			for v := lo; v < hi; v++ {
				if p.BlockOf(uint32(v)) != b {
					return false
				}
			}
			covered += hi - lo
			prevHi = hi
		}
		return covered == n && prevHi == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
