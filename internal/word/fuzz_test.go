package word

import (
	"math"
	"testing"
)

// FuzzCodecRoundtrip drives all three codecs from one input: any value
// must encode, decode, and re-encode to bit-identical words. Comparing at
// the word level makes the check NaN-safe (the engine stores raw bits;
// F64 and Vec32 must preserve every payload, including NaN payloads and
// negative zero).
func FuzzCodecRoundtrip(f *testing.F) {
	f.Add(uint64(0), uint64(0), 1)
	f.Add(uint64(math.MaxUint64), math.Float64bits(-0.0), 3)
	f.Add(uint64(1)<<40, math.Float64bits(math.Inf(-1)), 8)
	f.Add(uint64(7), math.Float64bits(math.NaN()), 5)

	f.Fuzz(func(t *testing.T, u, fbits uint64, dim int) {
		// U64: identity on words.
		var uc U64
		ubuf := make([]uint64, uc.Words())
		uc.Encode(u, ubuf)
		var uout uint64
		uc.DecodeInto(ubuf, &uout)
		if uout != u {
			t.Fatalf("U64: %d decoded to %d", u, uout)
		}

		// F64: bit-level roundtrip, NaN payloads included.
		var fc F64
		fv := math.Float64frombits(fbits)
		fbuf := make([]uint64, fc.Words())
		fc.Encode(fv, fbuf)
		var fout float64
		fc.DecodeInto(fbuf, &fout)
		fbuf2 := make([]uint64, fc.Words())
		fc.Encode(fout, fbuf2)
		if fbuf[0] != fbuf2[0] {
			t.Fatalf("F64: bits %#x re-encoded to %#x", fbuf[0], fbuf2[0])
		}

		// Vec32: lanes synthesized from the two inputs, odd and even dims.
		if dim < 1 {
			dim = 1
		}
		dim = dim%9 + 1
		vc := Vec32{Dim: dim}
		vec := make([]float32, dim)
		for i := range vec {
			bits := uint32(u>>(i%4)*8) ^ uint32(fbits>>(i%8)*4) ^ uint32(i)
			vec[i] = math.Float32frombits(bits)
		}
		vbuf := make([]uint64, vc.Words())
		vc.Encode(vec, vbuf)
		var vout []float32
		vc.DecodeInto(vbuf, &vout)
		if len(vout) != dim {
			t.Fatalf("Vec32 dim %d: decoded %d lanes", dim, len(vout))
		}
		vbuf2 := make([]uint64, vc.Words())
		vc.Encode(vout, vbuf2)
		for w := range vbuf {
			if vbuf[w] != vbuf2[w] {
				t.Fatalf("Vec32 dim %d word %d: %#x re-encoded to %#x", dim, w, vbuf[w], vbuf2[w])
			}
		}
	})
}
