package word

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestF64Roundtrip(t *testing.T) {
	c := F64{}
	if c.Words() != 1 {
		t.Fatalf("Words = %d", c.Words())
	}
	for _, v := range []float64{0, 1.5, -3.25, math.Inf(1), math.Inf(-1), math.MaxFloat64, math.SmallestNonzeroFloat64} {
		buf := make([]uint64, 1)
		c.Encode(v, buf)
		var out float64
		c.DecodeInto(buf, &out)
		if out != v {
			t.Errorf("roundtrip %g -> %g", v, out)
		}
	}
	// NaN round-trips as NaN.
	buf := make([]uint64, 1)
	c.Encode(math.NaN(), buf)
	var out float64
	c.DecodeInto(buf, &out)
	if !math.IsNaN(out) {
		t.Error("NaN did not round-trip")
	}
}

func TestU64Roundtrip(t *testing.T) {
	c := U64{}
	buf := make([]uint64, 1)
	for _, v := range []uint64{0, 1, math.MaxUint64, 1 << 40} {
		c.Encode(v, buf)
		var out uint64
		c.DecodeInto(buf, &out)
		if out != v {
			t.Errorf("roundtrip %d -> %d", v, out)
		}
	}
}

func TestVec32Roundtrip(t *testing.T) {
	for _, dim := range []int{1, 2, 3, 7, 8, 16} {
		c := Vec32{Dim: dim}
		if got, want := c.Words(), (dim+1)/2; got != want {
			t.Fatalf("dim %d: Words = %d, want %d", dim, got, want)
		}
		v := make([]float32, dim)
		for i := range v {
			v[i] = float32(i)*1.5 - 3
		}
		buf := make([]uint64, c.Words())
		c.Encode(v, buf)
		var out []float32
		c.DecodeInto(buf, &out)
		for i := range v {
			if out[i] != v[i] {
				t.Errorf("dim %d lane %d: %g != %g", dim, i, out[i], v[i])
			}
		}
		// DecodeInto must reuse a correctly sized destination.
		prev := &out[0]
		c.DecodeInto(buf, &out)
		if &out[0] != prev {
			t.Errorf("dim %d: DecodeInto reallocated", dim)
		}
	}
}

func TestVec32EncodeDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on dimension mismatch")
		}
	}()
	Vec32{Dim: 4}.Encode([]float32{1}, make([]uint64, 2))
}

func TestArrayLoadStore(t *testing.T) {
	a := NewArray[float64](F64{}, 10)
	if a.Len() != 10 || a.Words() != 1 {
		t.Fatalf("Len=%d Words=%d", a.Len(), a.Words())
	}
	a.Store(3, 42.5)
	var v float64
	a.Load(3, &v)
	if v != 42.5 {
		t.Fatalf("Load = %g", v)
	}
	a.Load(0, &v)
	if v != 0 {
		t.Fatalf("zero value = %g", v)
	}
	a.Fill(7)
	for i := int64(0); i < 10; i++ {
		a.Load(i, &v)
		if v != 7 {
			t.Fatalf("Fill: slot %d = %g", i, v)
		}
	}
	if a.Bytes() != 80 {
		t.Fatalf("Bytes = %d", a.Bytes())
	}
}

func TestArrayVectors(t *testing.T) {
	c := Vec32{Dim: 5}
	a := NewArray[[]float32](c, 4)
	in := []float32{1, 2, 3, 4, 5}
	a.Store(2, in)
	var out []float32
	a.Load(2, &out)
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("lane %d: %g != %g", i, out[i], in[i])
		}
	}
}

// Concurrent single-word stores must never tear: readers always observe a
// value some writer stored.
func TestArrayConcurrentNoTear(t *testing.T) {
	a := NewArray[float64](F64{}, 1)
	valid := map[float64]bool{0: true}
	vals := []float64{1.25, -9.5, 3e300, 0.001}
	for _, v := range vals {
		valid[v] = true
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for _, v := range vals {
		wg.Add(1)
		go func(v float64) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					a.Store(0, v)
				}
			}
		}(v)
	}
	for i := 0; i < 10000; i++ {
		var got float64
		a.Load(0, &got)
		if !valid[got] {
			t.Fatalf("torn read: %g", got)
		}
	}
	close(stop)
	wg.Wait()
}

func TestFloatArray(t *testing.T) {
	f := NewFloatArray(3)
	if f.Len() != 3 {
		t.Fatalf("Len = %d", f.Len())
	}
	f.Store(1, 2.5)
	if f.Load(1) != 2.5 {
		t.Fatalf("Load = %g", f.Load(1))
	}
	if got := f.Add(1, 1.5); got != 4 {
		t.Fatalf("Add returned %g", got)
	}
	if got := f.Swap(1, 0); got != 4 {
		t.Fatalf("Swap returned %g", got)
	}
	if f.Load(1) != 0 {
		t.Fatalf("after Swap: %g", f.Load(1))
	}
}

func TestFloatArrayConcurrentAdd(t *testing.T) {
	f := NewFloatArray(1)
	const workers, adds = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < adds; i++ {
				f.Add(0, 1)
			}
		}()
	}
	wg.Wait()
	if got := f.Load(0); got != workers*adds {
		t.Fatalf("concurrent Add lost updates: %g != %d", got, workers*adds)
	}
}

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(130)
	if b.Len() != 130 || b.Any() || b.Count() != 0 {
		t.Fatal("fresh bitset not empty")
	}
	if !b.Set(0) || !b.Set(64) || !b.Set(129) {
		t.Fatal("Set on clear bit returned false")
	}
	if b.Set(64) {
		t.Fatal("Set on set bit returned true")
	}
	if !b.Get(129) || b.Get(1) {
		t.Fatal("Get wrong")
	}
	if b.Count() != 3 || !b.Any() {
		t.Fatalf("Count = %d", b.Count())
	}
	if !b.Clear(64) || b.Clear(64) {
		t.Fatal("Clear semantics wrong")
	}
	if b.Count() != 2 {
		t.Fatalf("Count after clear = %d", b.Count())
	}
	b.SetAll()
	if b.Count() != 130 {
		t.Fatalf("SetAll: Count = %d", b.Count())
	}
}

func TestBitsetConcurrentSetClear(t *testing.T) {
	b := NewBitset(256)
	var set, cleared int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s, c := int64(0), int64(0)
			for i := 0; i < 256; i++ {
				if b.Set(i) {
					s++
				}
				if w%2 == 0 && b.Clear(i) {
					c++
				}
			}
			mu.Lock()
			set += s
			cleared += c
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	// Successful sets = successful clears + bits left standing.
	if int(set-cleared) != b.Count() {
		t.Fatalf("set=%d cleared=%d count=%d", set, cleared, b.Count())
	}
}

// Property: any []float32 of bounded dim round-trips through Vec32.
func TestPropertyVec32Roundtrip(t *testing.T) {
	f := func(raw []float32) bool {
		if len(raw) == 0 {
			return true
		}
		c := Vec32{Dim: len(raw)}
		buf := make([]uint64, c.Words())
		c.Encode(raw, buf)
		var out []float32
		c.DecodeInto(buf, &out)
		for i := range raw {
			a, b := raw[i], out[i]
			if a != b && !(a != a && b != b) { // NaN-tolerant compare
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSwapValueAndRMW(t *testing.T) {
	a := NewArray[float64](F64{}, 4)
	a.Store(1, 5)
	buf := make([]uint64, 2)
	var old float64
	a.SwapValue(1, 9, buf, &old)
	if old != 5 {
		t.Fatalf("SwapValue old = %g", old)
	}
	var cur float64
	a.Load(1, &cur)
	if cur != 9 {
		t.Fatalf("after swap: %g", cur)
	}
	a.RMW(1, buf, &cur, func(v float64) float64 { return v + 0.5 })
	a.Load(1, &cur)
	if cur != 9.5 {
		t.Fatalf("after RMW: %g", cur)
	}
	if !a.SingleWord() {
		t.Fatal("F64 array must be single-word")
	}
}

func TestRMWConcurrentAccumulation(t *testing.T) {
	a := NewArray[float64](F64{}, 1)
	const workers, adds = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]uint64, 2)
			var cur float64
			for i := 0; i < adds; i++ {
				a.RMW(0, buf, &cur, func(v float64) float64 { return v + 1 })
			}
		}()
	}
	wg.Wait()
	var got float64
	a.Load(0, &got)
	if got != workers*adds {
		t.Fatalf("RMW lost updates: %g != %d", got, workers*adds)
	}
}

func TestRMWPanicsOnMultiWord(t *testing.T) {
	a := NewArray[[]float32](Vec32{Dim: 4}, 2)
	if a.SingleWord() {
		t.Fatal("Vec32 dim 4 should be multi-word")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on multi-word RMW")
		}
	}()
	var cur []float32
	a.RMW(0, make([]uint64, 2), &cur, func(v []float32) []float32 { return v })
}

func TestArraySnapshotRestoreWords(t *testing.T) {
	a := NewArray[[]float32](Vec32{Dim: 3}, 10) // 2 words per value
	for i := int64(0); i < 10; i++ {
		a.Store(i, []float32{float32(i), float32(i) * 2, float32(i) * 3})
	}
	words := a.Words()
	dst := make([]uint64, 4*words)
	if n := a.SnapshotWords(3, 7, dst); n != 4*words {
		t.Fatalf("SnapshotWords wrote %d words, want %d", n, 4*words)
	}
	b := NewArray[[]float32](Vec32{Dim: 3}, 10)
	b.RestoreWords(3, dst)
	var got []float32
	for i := int64(3); i < 7; i++ {
		b.Load(i, &got)
		for k, w := range []float32{float32(i), float32(i) * 2, float32(i) * 3} {
			if got[k] != w {
				t.Fatalf("restored[%d][%d] = %g, want %g", i, k, got[k], w)
			}
		}
	}
	// Values outside the restored range stay zero.
	b.Load(0, &got)
	if got[0] != 0 || got[1] != 0 || got[2] != 0 {
		t.Fatalf("restore touched value 0: %v", got)
	}
}

func TestFloatArraySnapshotRestoreBits(t *testing.T) {
	f := NewFloatArray(8)
	for i := 0; i < 8; i++ {
		f.Store(i, float64(i)*0.5)
	}
	bits := make([]uint64, 5)
	f.SnapshotBits(2, 7, bits)
	g := NewFloatArray(8)
	g.RestoreBits(2, bits)
	for i := 2; i < 7; i++ {
		if got, want := g.Load(i), float64(i)*0.5; got != want {
			t.Fatalf("restored[%d] = %g, want %g", i, got, want)
		}
	}
	if g.Load(0) != 0 || g.Load(7) != 0 {
		t.Fatal("restore touched elements outside the range")
	}
}

// TestSnapshotWordsConcurrent pins the fuzzy-capture contract: a snapshot
// taken while writers run contains, for every single-word value, some
// value that was actually stored — never a torn word.
func TestSnapshotWordsConcurrent(t *testing.T) {
	const n = 1024
	a := NewArray[uint64](U64{}, n)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]uint64, 1)
		for round := uint64(1); ; round++ {
			select {
			case <-stop:
				return
			default:
			}
			for i := int64(0); i < n; i++ {
				a.StoreBuf(i, round<<32|uint64(i), buf)
			}
		}
	}()
	dst := make([]uint64, n)
	for k := 0; k < 100; k++ {
		a.SnapshotWords(0, n, dst)
		for i, w := range dst {
			if w != 0 && uint32(w) != uint32(i) {
				t.Fatalf("snapshot[%d] = %#x: low half does not match any stored value", i, w)
			}
		}
	}
	close(stop)
	wg.Wait()
}
