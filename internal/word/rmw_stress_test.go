package word

import (
	"runtime"
	"sync"
	"testing"
)

// TestRMWContentionStress hammers one Array with every worker the host
// offers, all CAS-incrementing a handful of shared slots. The final sum
// must be exact: RMW's CAS loop may retry but must never lose or double
// an update. Run under -race this also exercises the claim that the CAS
// loop is the only synchronization the operation-based SCATTER mode needs
// (paper Sec. IV-A3).
func TestRMWContentionStress(t *testing.T) {
	const slots = 4
	workers := 2 * runtime.GOMAXPROCS(0)
	if workers < 8 {
		workers = 8
	}
	iters := 2000
	if testing.Short() {
		iters = 200
	}

	a := NewArray[uint64](U64{}, slots)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]uint64, 2)
			var cur uint64
			for i := 0; i < iters; i++ {
				// Stride so every worker visits every slot, keeping all
				// slots contended rather than partitioned.
				slot := int64((w + i) % slots)
				a.RMW(slot, buf, &cur, func(v uint64) uint64 { return v + 1 })
			}
		}(w)
	}
	wg.Wait()

	var total, v uint64
	for s := int64(0); s < slots; s++ {
		a.Load(s, &v)
		total += v
	}
	if want := uint64(workers * iters); total != want {
		t.Fatalf("RMW dropped updates under contention: total %d, want %d", total, want)
	}
}

// TestSwapValueContentionStress checks the exchange invariant of
// SwapValue under contention: every value ever stored in the slot is
// observed exactly once — either as some later swap's old value or as the
// final slot content. With each worker writing distinct values, the sum
// of all observed old values plus the final value must equal the sum of
// all values written.
func TestSwapValueContentionStress(t *testing.T) {
	workers := 2 * runtime.GOMAXPROCS(0)
	if workers < 8 {
		workers = 8
	}
	iters := 2000
	if testing.Short() {
		iters = 200
	}

	a := NewArray[uint64](U64{}, 1)
	observed := make([]uint64, workers) // per-worker sum of old values seen
	var written uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]uint64, 1)
			var old uint64
			base := uint64(w*iters) + 1 // distinct nonzero values per worker
			var sum uint64
			for i := 0; i < iters; i++ {
				a.SwapValue(0, base+uint64(i), buf, &old)
				sum += old
			}
			observed[w] = sum
		}(w)
	}
	for w := 0; w < workers; w++ {
		base := uint64(w*iters) + 1
		for i := 0; i < iters; i++ {
			written += base + uint64(i)
		}
	}
	wg.Wait()

	var final uint64
	a.Load(0, &final)
	var drained uint64
	for _, s := range observed {
		drained += s
	}
	if drained+final != written {
		t.Fatalf("SwapValue lost or duplicated a value: observed %d + final %d != written %d",
			drained, final, written)
	}
}
