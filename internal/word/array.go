package word

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Array is a fixed-length array of values of type V backed by atomically
// accessed uint64 words. Loads and stores of individual words are atomic;
// multi-word values are not read or written as a unit (bounded-staleness
// semantics, see the package comment).
type Array[V any] struct {
	codec Codec[V]
	words int
	data  []uint64 //abcd:stamped
}

// NewArray allocates an n-value array; all values decode from zero words.
func NewArray[V any](codec Codec[V], n int) *Array[V] {
	w := codec.Words()
	return &Array[V]{codec: codec, words: w, data: make([]uint64, n*w)}
}

// Len returns the number of values.
func (a *Array[V]) Len() int { return len(a.data) / a.words }

// Words returns the words-per-value of the array's codec.
func (a *Array[V]) Words() int { return a.words }

// Load reads value i into *v with per-word atomic loads. It allocates a
// transfer buffer per call; hot paths should use LoadBuf with a reused
// buffer instead.
func (a *Array[V]) Load(i int64, v *V) {
	a.LoadBuf(i, v, make([]uint64, a.words))
}

// Store writes v into value i with per-word atomic stores. Hot paths
// should use StoreBuf with a reused buffer.
func (a *Array[V]) Store(i int64, v V) {
	a.StoreBuf(i, v, make([]uint64, a.words))
}

// LoadBuf is Load with a caller-provided transfer buffer of at least
// Words() entries, avoiding the per-call allocation (the buffer escapes
// through the codec interface, so a stack buffer cannot be used).
func (a *Array[V]) LoadBuf(i int64, v *V, buf []uint64) {
	base := i * int64(a.words)
	src := buf[:a.words]
	for w := range src {
		src[w] = atomic.LoadUint64(&a.data[base+int64(w)])
	}
	a.codec.DecodeInto(src, v)
}

// StoreBuf is Store with a caller-provided transfer buffer.
func (a *Array[V]) StoreBuf(i int64, v V, buf []uint64) {
	base := i * int64(a.words)
	dst := buf[:a.words]
	a.codec.Encode(v, dst)
	for w := range dst {
		atomic.StoreUint64(&a.data[base+int64(w)], dst[w])
	}
}

// Fill stores v into every slot. Not atomic with respect to concurrent
// writers; intended for initialization.
func (a *Array[V]) Fill(v V) {
	buf := make([]uint64, a.words)
	for i := int64(0); i < int64(a.Len()); i++ {
		a.StoreBuf(i, v, buf)
	}
}

// Bytes returns the backing storage size in bytes, used by the accelerator
// model's traffic accounting.
func (a *Array[V]) Bytes() int64 { return int64(len(a.data)) * 8 }

// SnapshotWords copies the raw words of values [lo, hi) into dst with
// per-word atomic loads, returning the words written. Safe to call while
// writers run: each word is a consistent atomic read, so the copy is a
// valid bounded-staleness iterate (multi-word values may mix words from
// adjacent writes, the same semantics concurrent readers already see).
// dst must hold at least (hi-lo)*Words() entries.
func (a *Array[V]) SnapshotWords(lo, hi int64, dst []uint64) int {
	base := lo * int64(a.words)
	n := (hi - lo) * int64(a.words)
	for w := int64(0); w < n; w++ {
		dst[w] = atomic.LoadUint64(&a.data[base+w])
	}
	return int(n)
}

// RestoreWords stores src's raw words into values [lo, lo+len/words) with
// per-word atomic stores — the checkpoint-resume inverse of SnapshotWords.
func (a *Array[V]) RestoreWords(lo int64, src []uint64) {
	base := lo * int64(a.words)
	for w := range src {
		atomic.StoreUint64(&a.data[base+int64(w)], src[w])
	}
}

// FloatArray is an array of float64 supporting atomic CAS accumulation,
// used for block priorities (Gauss-Southwell gradient mass, Sec. IV-B).
type FloatArray struct {
	bits []uint64 //abcd:stamped
}

// NewFloatArray allocates an n-element zeroed float array.
func NewFloatArray(n int) *FloatArray { return &FloatArray{bits: make([]uint64, n)} }

// Len returns the element count.
func (f *FloatArray) Len() int { return len(f.bits) }

// Load atomically reads element i.
func (f *FloatArray) Load(i int) float64 {
	return math.Float64frombits(atomic.LoadUint64(&f.bits[i]))
}

// Store atomically writes element i.
func (f *FloatArray) Store(i int, v float64) {
	atomic.StoreUint64(&f.bits[i], math.Float64bits(v))
}

// Add atomically adds delta to element i via a CAS loop and returns the
// new value.
func (f *FloatArray) Add(i int, delta float64) float64 {
	for {
		old := atomic.LoadUint64(&f.bits[i])
		next := math.Float64frombits(old) + delta
		if atomic.CompareAndSwapUint64(&f.bits[i], old, math.Float64bits(next)) {
			return next
		}
	}
}

// Swap atomically replaces element i and returns the previous value.
func (f *FloatArray) Swap(i int, v float64) float64 {
	return math.Float64frombits(atomic.SwapUint64(&f.bits[i], math.Float64bits(v)))
}

// SnapshotBits copies the raw float64 bit patterns of elements [lo, hi)
// into dst with atomic loads; used by the checkpoint writer to capture
// scheduler priorities while workers keep accumulating.
func (f *FloatArray) SnapshotBits(lo, hi int, dst []uint64) {
	for i := lo; i < hi; i++ {
		dst[i-lo] = atomic.LoadUint64(&f.bits[i])
	}
}

// RestoreBits stores raw bit patterns into elements [lo, lo+len) — the
// resume inverse of SnapshotBits.
func (f *FloatArray) RestoreBits(lo int, src []uint64) {
	for i, v := range src {
		atomic.StoreUint64(&f.bits[lo+i], v)
	}
}

// Bitset is an atomic bitvector used for the active list and the in-flight
// block flags of the termination unit.
type Bitset struct {
	n     int
	words []uint64 //abcd:stamped
}

// NewBitset allocates an n-bit zeroed bitset.
func NewBitset(n int) *Bitset {
	return &Bitset{n: n, words: make([]uint64, (n+63)/64)}
}

// Len returns the number of bits.
func (b *Bitset) Len() int { return b.n }

// Set atomically sets bit i, returning whether it was previously clear.
func (b *Bitset) Set(i int) bool {
	w, mask := i/64, uint64(1)<<uint(i%64)
	for {
		old := atomic.LoadUint64(&b.words[w])
		if old&mask != 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(&b.words[w], old, old|mask) {
			return true
		}
	}
}

// Clear atomically clears bit i, returning whether it was previously set.
func (b *Bitset) Clear(i int) bool {
	w, mask := i/64, uint64(1)<<uint(i%64)
	for {
		old := atomic.LoadUint64(&b.words[w])
		if old&mask == 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(&b.words[w], old, old&^mask) {
			return true
		}
	}
}

// Get atomically reads bit i.
func (b *Bitset) Get(i int) bool {
	return atomic.LoadUint64(&b.words[i/64])&(uint64(1)<<uint(i%64)) != 0
}

// Any reports whether any bit is set.
func (b *Bitset) Any() bool {
	for w := range b.words {
		if atomic.LoadUint64(&b.words[w]) != 0 {
			return true
		}
	}
	return false
}

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	c := 0
	for w := range b.words {
		c += bits.OnesCount64(atomic.LoadUint64(&b.words[w]))
	}
	return c
}

// SetAll sets every bit. Not atomic as a whole; intended for initialization.
func (b *Bitset) SetAll() {
	for i := 0; i < b.n; i++ {
		b.Set(i)
	}
}
