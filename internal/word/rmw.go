package word

import "sync/atomic"

// This file provides single-word read-modify-write operations used by the
// engine's operation-based update mode (PageRank-Delta and friends):
// SCATTER must *accumulate* deltas into edge slots and GATHER must
// *consume* them, or concurrent updates overwrite each other — the exact
// hazard Sec. IV-A3 of the paper gives for preferring state-based updates.
// These operations are only defined for single-word codecs, where a CAS
// covers the whole value.

// SingleWord reports whether the array's values fit one word, the
// precondition for SwapValue and RMW.
func (a *Array[V]) SingleWord() bool { return a.words == 1 }

// SwapValue atomically replaces value i with v and returns the previous
// value, decoding through buf (len >= 1). Panics on multi-word arrays.
func (a *Array[V]) SwapValue(i int64, v V, buf []uint64, old *V) {
	a.mustSingle()
	a.codec.Encode(v, buf[:1])
	prev := atomic.SwapUint64(&a.data[i], buf[0])
	buf[0] = prev
	a.codec.DecodeInto(buf[:1], old)
}

// RMW atomically applies f to value i via a CAS loop, decoding and
// encoding through buf (len >= 2). Panics on multi-word arrays. f may be
// called multiple times under contention and must be pure.
func (a *Array[V]) RMW(i int64, buf []uint64, cur *V, f func(V) V) {
	a.mustSingle()
	for {
		old := atomic.LoadUint64(&a.data[i])
		buf[0] = old
		a.codec.DecodeInto(buf[:1], cur)
		a.codec.Encode(f(*cur), buf[1:2])
		if atomic.CompareAndSwapUint64(&a.data[i], old, buf[1]) {
			return
		}
	}
}

func (a *Array[V]) mustSingle() {
	if a.words != 1 {
		panic("word: read-modify-write requires a single-word codec")
	}
}
