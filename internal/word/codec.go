// Package word provides the lock-free shared-state substrate of GraphABCD:
// fixed-width value codecs, atomically accessed word arrays, an atomic
// bitset, and CAS-accumulated float arrays.
//
// Every mutable value shared between the asynchronous engine's stages
// (vertex values, per-edge cached source values, active bits, block
// priorities) lives in one of these structures, accessed exclusively with
// sync/atomic word operations. This realizes the paper's "barrierless and
// lock-free" design (Sec. IV-A3) while remaining data-race-free under the
// Go memory model: readers of multi-word values may observe a mix of old
// and new words, which asynchronous BCD tolerates as bounded staleness
// (Sec. III-D).
package word

import "math"

// Codec translates values of type V to and from a fixed number of uint64
// words. Implementations must be stateless and safe for concurrent use.
type Codec[V any] interface {
	// Words returns the number of uint64 words per value; constant.
	Words() int
	// Encode writes v into dst, which has exactly Words() entries.
	Encode(v V, dst []uint64)
	// DecodeInto reads a value from src into *v, reusing v's storage
	// where possible (slices of the right length are overwritten in
	// place, so hot paths do not allocate).
	DecodeInto(src []uint64, v *V)
}

// F64 encodes a float64 in one word.
type F64 struct{}

// Words implements Codec.
func (F64) Words() int { return 1 }

// Encode implements Codec.
func (F64) Encode(v float64, dst []uint64) { dst[0] = math.Float64bits(v) }

// DecodeInto implements Codec.
func (F64) DecodeInto(src []uint64, v *float64) { *v = math.Float64frombits(src[0]) }

// U64 encodes a uint64 in one word (labels, levels, counters).
type U64 struct{}

// Words implements Codec.
func (U64) Words() int { return 1 }

// Encode implements Codec.
func (U64) Encode(v uint64, dst []uint64) { dst[0] = v }

// DecodeInto implements Codec.
func (U64) DecodeInto(src []uint64, v *uint64) { *v = src[0] }

// Vec32 encodes a fixed-dimension []float32 vector, two lanes per word.
// All values in one array must share the dimension given at construction.
type Vec32 struct{ Dim int }

// Words implements Codec.
func (c Vec32) Words() int { return (c.Dim + 1) / 2 }

// Encode implements Codec. v must have length Dim.
func (c Vec32) Encode(v []float32, dst []uint64) {
	if len(v) != c.Dim {
		panic("word: Vec32.Encode dimension mismatch")
	}
	for w := range dst {
		lo := uint64(math.Float32bits(v[2*w]))
		hi := uint64(0)
		if 2*w+1 < c.Dim {
			hi = uint64(math.Float32bits(v[2*w+1]))
		}
		dst[w] = lo | hi<<32
	}
}

// DecodeInto implements Codec. It reuses *v when it already has length Dim.
func (c Vec32) DecodeInto(src []uint64, v *[]float32) {
	if len(*v) != c.Dim {
		*v = make([]float32, c.Dim) //abcdlint:ignore hotalloc,hotpath -- grow-once: steady state reuses *v, this runs only on first decode
	}
	out := *v
	for w, word := range src {
		out[2*w] = math.Float32frombits(uint32(word))
		if 2*w+1 < c.Dim {
			out[2*w+1] = math.Float32frombits(uint32(word >> 32))
		}
	}
}
