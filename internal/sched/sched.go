// Package sched implements GraphABCD's block scheduling layer (Sec. IV-B):
// the active list, per-block Gauss-Southwell priority accumulation, and the
// block selection rules (cyclic, priority, random).
//
// All state transitions are atomic bit/word operations, so the scheduler,
// the accelerator PEs, and the SCATTER workers coordinate without locks or
// barriers. The outstanding-work counter gives the termination unit a
// single quiescence test that is safe against the classic "empty queue but
// task in flight" race.
package sched

import (
	"fmt"
	"sync/atomic"

	"graphabcd/internal/word"
)

// State tracks the activity, in-flight status, and priority of every block.
//
// A block's priority is the L1 norm of the scatter-image changes that
// arrived on its in-edges since it was last claimed — the estimate of how
// much the block's gradient has moved, following the paper's Sec. IV-B
// approximation of the Gauss-Southwell rule (gradients estimated from
// vertex value differences, L1-normed per block, maintained by the
// SCATTER stage). Claiming a block consumes its priority: the gradient
// mass is about to be acted upon.
type State struct {
	active   *word.Bitset     // block has pending incoming updates
	inflight *word.Bitset     // block currently owned by a PE / worker
	priority *word.FloatArray // pending incoming gradient mass

	// outstanding counts set bits in active plus set bits in inflight.
	// Zero means the system is quiescent (algorithm converged).
	outstanding atomic.Int64
}

// NewState creates scheduling state for numBlocks blocks, all inactive.
func NewState(numBlocks int) *State {
	return &State{
		active:   word.NewBitset(numBlocks),
		inflight: word.NewBitset(numBlocks),
		priority: word.NewFloatArray(numBlocks),
	}
}

// NumBlocks returns the number of blocks tracked.
func (s *State) NumBlocks() int { return s.active.Len() }

// Activate adds incoming gradient mass to block b and marks it active.
// Safe to call from any worker at any time, including while b is in
// flight (it will be rescheduled after completion).
func (s *State) Activate(b int, mass float64) {
	s.priority.Add(b, mass)
	if s.active.Set(b) {
		s.outstanding.Add(1)
	}
}

// ActivateAll marks every block active with the given uniform mass, the
// initial condition of every run.
func (s *State) ActivateAll(mass float64) {
	for b := 0; b < s.NumBlocks(); b++ {
		s.Activate(b, mass)
	}
}

// Claim attempts to transition block b from active to in-flight,
// consuming its accumulated gradient mass. It returns false if b is
// already in flight.
func (s *State) Claim(b int) bool {
	if !s.inflight.Set(b) {
		return false
	}
	s.outstanding.Add(1)
	if s.active.Clear(b) {
		s.outstanding.Add(-1)
	}
	s.priority.Swap(b, 0)
	return true
}

// Done marks block b's processing (gather-apply-scatter chain) complete.
func (s *State) Done(b int) {
	if s.inflight.Clear(b) {
		s.outstanding.Add(-1)
	}
}

// Active reports whether block b has pending mass.
func (s *State) Active(b int) bool { return s.active.Get(b) }

// InFlight reports whether block b is currently owned by a worker.
func (s *State) InFlight(b int) bool { return s.inflight.Get(b) }

// Priority returns block b's pending gradient mass.
func (s *State) Priority(b int) float64 { return s.priority.Load(b) }

// Quiescent reports whether no block is active or in flight — the
// termination unit's convergence test (step 1 of the Sec. IV-C flow).
func (s *State) Quiescent() bool { return s.outstanding.Load() == 0 }

// PendingMass returns the total accumulated gradient mass across all
// blocks — the global residual whose decay toward zero is the run's
// convergence signal. The sum is a racy-but-monotone-ish sample (blocks
// claim and refill mass concurrently), which is exactly what a monitoring
// time series needs; do not use it for termination decisions.
func (s *State) PendingMass() float64 {
	var sum float64
	for b := 0; b < s.NumBlocks(); b++ {
		sum += s.priority.Load(b)
	}
	return sum
}

// NumActive returns the number of active blocks.
func (s *State) NumActive() int { return s.active.Count() }

// SnapshotBlocks copies the priorities (as float64 bit patterns) and
// active flags of blocks [lo, hi) into pri and active, each sized hi-lo,
// with atomic loads. Safe to call while workers keep activating: the
// copy is a fuzzy-but-valid sample of the pending gradient mass, which
// is all a checkpoint resume needs (it re-activates every block anyway,
// the captured mass only seeds the priority order).
func (s *State) SnapshotBlocks(lo, hi int, pri []uint64, active []byte) {
	s.priority.SnapshotBits(lo, hi, pri)
	for b := lo; b < hi; b++ {
		if s.active.Get(b) {
			active[b-lo] = 1
		} else {
			active[b-lo] = 0
		}
	}
}

// Scheduler selects the next block to process. Implementations must be
// safe for concurrent use; a successful Next has claimed the block (the
// caller must call State.Done when the block's processing chain finishes).
type Scheduler interface {
	// Name identifies the selection rule in reports.
	Name() string
	// Next claims an active block, or returns ok=false if no block is
	// currently claimable (which does not imply convergence — blocks may
	// be in flight; poll State.Quiescent for termination).
	Next() (block int, ok bool)
}

// Policy names a block selection rule.
type Policy int

const (
	// Cyclic selects blocks in round-robin id order (Sec. III-B).
	Cyclic Policy = iota
	// Priority selects the block with the largest accumulated gradient
	// mass — the Gauss-Southwell rule (Sec. IV-B).
	Priority
	// Random selects uniformly among active blocks, the classic randomized
	// BCD rule; included as an ablation between cyclic and priority.
	Random
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case Cyclic:
		return "cyclic"
	case Priority:
		return "priority"
	case Random:
		return "random"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// New constructs a scheduler with the given policy over st.
func New(p Policy, st *State, seed uint64) (Scheduler, error) {
	switch p {
	case Cyclic:
		return &cyclic{st: st}, nil
	case Priority:
		return &priority{st: st}, nil
	case Random:
		return &random{st: st, state: seed | 1}, nil
	}
	return nil, fmt.Errorf("sched: unknown policy %v", p)
}

// cyclic scans from a rotating cursor for the next active block.
type cyclic struct {
	st     *State
	cursor atomic.Int64
}

func (c *cyclic) Name() string { return "cyclic" }

func (c *cyclic) Next() (int, bool) {
	n := c.st.NumBlocks()
	if n == 0 {
		return 0, false
	}
	start := int(c.cursor.Load())
	for i := 0; i < n; i++ {
		b := (start + i) % n
		if c.st.Active(b) && !c.st.InFlight(b) && c.st.Claim(b) {
			c.cursor.Store(int64((b + 1) % n))
			return b, true
		}
	}
	return 0, false
}

// priority scans for the maximum-mass active block (Gauss-Southwell).
type priority struct{ st *State }

func (p *priority) Name() string { return "priority" }

func (p *priority) Next() (int, bool) {
	n := p.st.NumBlocks()
	for attempt := 0; attempt < 4; attempt++ {
		best, bestMass, found := 0, -1.0, false
		for b := 0; b < n; b++ {
			if !p.st.Active(b) || p.st.InFlight(b) {
				continue
			}
			// The first candidate is always taken so that non-comparable
			// masses (NaN from a diverging program) cannot starve the
			// scheduler of progress.
			if m := p.st.Priority(b); !found || m > bestMass {
				best, bestMass, found = b, m, true
			}
		}
		if !found {
			return 0, false
		}
		if p.st.Claim(best) {
			return best, true
		}
		// Lost a race for the best block; rescan.
	}
	return 0, false
}

// random picks a uniform active block via reservoir sampling over the scan.
type random struct {
	st    *State
	state uint64 // SplitMix64, mutated under CAS-free single-owner use
}

func (r *random) Name() string { return "random" }

func (r *random) next64() uint64 {
	// Scheduler instances are driven by one goroutine; plain state is fine.
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *random) Next() (int, bool) {
	n := r.st.NumBlocks()
	for attempt := 0; attempt < 4; attempt++ {
		chosen, seen := 0, 0
		for b := 0; b < n; b++ {
			if !r.st.Active(b) || r.st.InFlight(b) {
				continue
			}
			seen++
			if r.next64()%uint64(seen) == 0 {
				chosen = b
			}
		}
		if seen == 0 {
			return 0, false
		}
		if r.st.Claim(chosen) {
			return chosen, true
		}
	}
	return 0, false
}
