package sched

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestStateLifecycle(t *testing.T) {
	st := NewState(4)
	if !st.Quiescent() || st.NumActive() != 0 {
		t.Fatal("fresh state not quiescent")
	}
	st.Activate(2, 1.5)
	if st.Quiescent() || !st.Active(2) || st.NumActive() != 1 {
		t.Fatal("activation not reflected")
	}
	if st.Priority(2) != 1.5 {
		t.Fatalf("priority = %g", st.Priority(2))
	}
	st.Activate(2, 0.5) // re-activation accumulates mass, stays 1 block
	if st.Priority(2) != 2 || st.NumActive() != 1 {
		t.Fatal("re-activation wrong")
	}
	if !st.Claim(2) {
		t.Fatal("claim failed")
	}
	if st.Active(2) || !st.InFlight(2) || st.Priority(2) != 0 {
		t.Fatal("claim must consume the active bit and mass")
	}
	if st.Quiescent() {
		t.Fatal("in-flight block must keep state non-quiescent")
	}
	if st.Claim(2) {
		t.Fatal("double claim must fail")
	}
	st.Done(2)
	if !st.Quiescent() {
		t.Fatal("state must be quiescent after Done")
	}
}

func TestReactivationDuringFlight(t *testing.T) {
	st := NewState(2)
	st.Activate(0, 1)
	st.Claim(0)
	st.Activate(0, 3) // scatter from another block re-activates it mid-flight
	st.Done(0)
	if st.Quiescent() {
		t.Fatal("re-activated block lost")
	}
	if !st.Active(0) || st.Priority(0) != 3 {
		t.Fatal("re-activation lost")
	}
	st.Claim(0)
	st.Done(0)
	if !st.Quiescent() {
		t.Fatal("not quiescent after final Done")
	}
}

func TestCyclicOrder(t *testing.T) {
	st := NewState(5)
	st.ActivateAll(1)
	s, err := New(Cyclic, st, 0)
	if err != nil {
		t.Fatal(err)
	}
	var got []int
	for {
		b, ok := s.Next()
		if !ok {
			break
		}
		got = append(got, b)
		st.Done(b)
	}
	want := []int{0, 1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cyclic order %v, want %v", got, want)
		}
	}
	if _, ok := s.Next(); ok {
		t.Fatal("Next on drained state must fail")
	}
}

func TestCyclicSkipsInFlight(t *testing.T) {
	st := NewState(3)
	st.ActivateAll(1)
	s, _ := New(Cyclic, st, 0)
	b0, _ := s.Next() // claims 0, not yet done
	if b0 != 0 {
		t.Fatalf("first = %d", b0)
	}
	b1, ok := s.Next()
	if !ok || b1 != 1 {
		t.Fatalf("second = %d, %v", b1, ok)
	}
	// Re-activate 0 while in flight: must not be claimable until Done.
	st.Activate(0, 1)
	b2, ok := s.Next()
	if !ok || b2 != 2 {
		t.Fatalf("third = %d, %v", b2, ok)
	}
	if _, ok := s.Next(); ok {
		t.Fatal("in-flight block 0 must not be claimable")
	}
	st.Done(0)
	b, ok := s.Next()
	if !ok || b != 0 {
		t.Fatalf("after Done: %d, %v", b, ok)
	}
}

func TestPrioritySelectsMaxMass(t *testing.T) {
	st := NewState(4)
	st.Activate(0, 1)
	st.Activate(1, 5)
	st.Activate(2, 3)
	s, _ := New(Priority, st, 0)
	order := []int{}
	for {
		b, ok := s.Next()
		if !ok {
			break
		}
		order = append(order, b)
		st.Done(b)
	}
	want := []int{1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("priority order %v, want %v", order, want)
		}
	}
}

func TestPriorityDynamicMass(t *testing.T) {
	st := NewState(3)
	st.Activate(0, 1)
	st.Activate(1, 2)
	s, _ := New(Priority, st, 0)
	b, _ := s.Next()
	if b != 1 {
		t.Fatalf("first = %d", b)
	}
	// While 1 is in flight, block 2 gains huge mass.
	st.Activate(2, 100)
	st.Done(1)
	b, _ = s.Next()
	if b != 2 {
		t.Fatalf("second = %d, want 2", b)
	}
}

func TestRandomCoversAllBlocks(t *testing.T) {
	st := NewState(8)
	st.ActivateAll(1)
	s, err := New(Random, st, 42)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for {
		b, ok := s.Next()
		if !ok {
			break
		}
		seen[b] = true
		st.Done(b)
	}
	if len(seen) != 8 {
		t.Fatalf("random scheduler claimed %d blocks, want 8", len(seen))
	}
}

func TestPolicyString(t *testing.T) {
	if Cyclic.String() != "cyclic" || Priority.String() != "priority" || Random.String() != "random" {
		t.Fatal("policy names wrong")
	}
	if Policy(99).String() != "policy(99)" {
		t.Fatal("unknown policy string wrong")
	}
	if _, err := New(Policy(99), NewState(1), 0); err == nil {
		t.Fatal("want error for unknown policy")
	}
}

func TestEmptyState(t *testing.T) {
	st := NewState(0)
	for _, p := range []Policy{Cyclic, Priority, Random} {
		s, err := New(p, st, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Next(); ok {
			t.Fatalf("%v.Next on empty state succeeded", p)
		}
	}
}

// Property: under concurrent activation/claim/done traffic the outstanding
// counter returns to zero exactly when all work is drained.
func TestPropertyOutstandingBalanced(t *testing.T) {
	f := func(seed int64) bool {
		st := NewState(16)
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 200; i++ {
					st.Activate((i*7+w)%16, 1)
				}
			}(w)
		}
		wg.Wait()
		s, _ := New(Cyclic, st, uint64(seed))
		for {
			b, ok := s.Next()
			if !ok {
				break
			}
			st.Done(b)
		}
		return st.Quiescent()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Concurrent schedulers must never claim the same block twice at once.
func TestConcurrentClaimExclusive(t *testing.T) {
	st := NewState(64)
	st.ActivateAll(1)
	s, _ := New(Cyclic, st, 0)
	var mu sync.Mutex
	claims := map[int]int{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				b, ok := s.Next()
				if !ok {
					return
				}
				mu.Lock()
				claims[b]++
				mu.Unlock()
				st.Done(b)
			}
		}()
	}
	wg.Wait()
	total := 0
	for b, c := range claims {
		if c != 1 {
			t.Fatalf("block %d claimed %d times", b, c)
		}
		total++
	}
	if total != 64 {
		t.Fatalf("claimed %d blocks, want 64", total)
	}
}

// A diverging program can poison priorities with NaN; the scheduler must
// still make progress (liveness under non-comparable masses).
func TestPrioritySurvivesNaNMass(t *testing.T) {
	st := NewState(3)
	nan := math.NaN()
	st.Activate(0, nan)
	st.Activate(1, nan)
	st.Activate(2, nan)
	s, _ := New(Priority, st, 0)
	for i := 0; i < 3; i++ {
		b, ok := s.Next()
		if !ok {
			t.Fatalf("claim %d: scheduler starved on NaN priorities", i)
		}
		st.Done(b)
	}
	if !st.Quiescent() {
		t.Fatal("not quiescent after draining")
	}
}
