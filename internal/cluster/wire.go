package cluster

import (
	"encoding/binary"
	"fmt"
	"time"
)

// Wire codec for Envelope. Envelope payload fields are unexported on
// purpose (a Transport moves envelopes, it does not interpret them), so
// the byte-level codec that socket transports need lives here, next to
// the type, rather than leaking field access across packages.
//
// Layout, little-endian throughout:
//
//	kind    u8    envData=0 | envAck=1
//	from    u32   sending node id
//	id      u64   logical batch id / write stamp
//	sentAt  i64   unix nanoseconds, 0 for the zero time
//	nslots  u32   number of slot entries
//	nwords  u32   number of encoded value words
//	slots   nslots x u64   CSC slot indices
//	blocks  nslots x u32   global block id per slot
//	words   nwords x u64   encoded values
//
// A data envelope requires nwords to be a multiple of nslots (the codec
// word width times the slot count); an ack carries no payload. Decoding
// validates the byte length exactly against the declared counts, so a
// header that lies about its counts is rejected before any payload
// allocation happens.

const envelopeHdrLen = 1 + 4 + 8 + 8 + 4 + 4

// maxWireNode bounds the sender id a decoded envelope may claim. Real
// deployments are far smaller; the bound keeps a hostile frame from
// smuggling absurd ids into delivery paths that index by node.
const maxWireNode = 1 << 20

// NewDataEnvelope builds a data-batch envelope for transports and
// distributed runtimes that reimplement the node send path. The slices
// are retained, not copied; the caller must not mutate them afterwards.
// len(words) must be a multiple of len(slots) (codec words per slot).
func NewDataEnvelope(from int, id uint64, sentAt time.Time, slots []int64, blocks []int32, words []uint64) Envelope {
	return Envelope{kind: envData, from: from, id: id, sentAt: sentAt,
		slots: slots, blocks: blocks, words: words}
}

// NewAck builds an acknowledgment for the data envelope with the given
// id, sent by node from.
func NewAck(from int, id uint64) Envelope {
	return Envelope{kind: envAck, from: from, id: id}
}

// From returns the sending node id.
func (e Envelope) From() int { return e.from }

// SentAt returns the send timestamp (zero for acks that never set one).
func (e Envelope) SentAt() time.Time { return e.sentAt }

// Slots returns the CSC slot indices of a data envelope. The slice is
// shared with the envelope; treat it as read-only.
func (e Envelope) Slots() []int64 { return e.slots }

// Blocks returns the global block id per slot, aligned with Slots.
func (e Envelope) Blocks() []int32 { return e.blocks }

// Words returns the encoded values, len(Slots) * codec.Words() entries.
func (e Envelope) Words() []uint64 { return e.words }

// EnvelopeWireSize returns the exact encoded size of e in bytes.
func EnvelopeWireSize(e Envelope) int {
	return envelopeHdrLen + len(e.slots)*12 + len(e.words)*8
}

// AppendEnvelope appends the wire encoding of e to dst and returns the
// extended slice.
func AppendEnvelope(dst []byte, e Envelope) []byte {
	dst = append(dst, byte(e.kind)) //abcdlint:ignore hotalloc -- callers presize dst via EnvelopeWireSize, so these appends never grow
	dst = binary.LittleEndian.AppendUint32(dst, uint32(e.from))
	dst = binary.LittleEndian.AppendUint64(dst, e.id)
	var ns int64
	if !e.sentAt.IsZero() {
		ns = e.sentAt.UnixNano()
	}
	dst = binary.LittleEndian.AppendUint64(dst, uint64(ns))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(e.slots)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(e.words)))
	for _, s := range e.slots {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(s))
	}
	for _, b := range e.blocks {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(b))
	}
	for _, w := range e.words {
		dst = binary.LittleEndian.AppendUint64(dst, w)
	}
	return dst
}

// DecodeEnvelope parses one wire-encoded envelope. The input must be
// exactly one envelope: trailing bytes, truncation, an unknown kind, or
// counts inconsistent with the byte length are all errors. The returned
// envelope owns freshly allocated payload slices.
func DecodeEnvelope(b []byte) (Envelope, error) {
	if len(b) < envelopeHdrLen {
		return Envelope{}, fmt.Errorf("cluster: envelope truncated: %d bytes, header needs %d", len(b), envelopeHdrLen)
	}
	kind := b[0]
	if kind != byte(envData) && kind != byte(envAck) {
		return Envelope{}, fmt.Errorf("cluster: unknown envelope kind %d", kind)
	}
	from := binary.LittleEndian.Uint32(b[1:])
	id := binary.LittleEndian.Uint64(b[5:])
	sentNS := int64(binary.LittleEndian.Uint64(b[13:]))
	nslots := int(binary.LittleEndian.Uint32(b[21:]))
	nwords := int(binary.LittleEndian.Uint32(b[25:]))
	if from >= maxWireNode {
		return Envelope{}, fmt.Errorf("cluster: envelope sender %d out of range", from)
	}
	if kind == byte(envAck) && (nslots != 0 || nwords != 0) {
		return Envelope{}, fmt.Errorf("cluster: ack envelope carries payload (%d slots, %d words)", nslots, nwords)
	}
	if nslots == 0 && nwords != 0 {
		return Envelope{}, fmt.Errorf("cluster: %d words with zero slots", nwords)
	}
	if nslots > 0 && nwords%nslots != 0 {
		return Envelope{}, fmt.Errorf("cluster: %d words not a multiple of %d slots", nwords, nslots)
	}
	want := int64(envelopeHdrLen) + int64(nslots)*12 + int64(nwords)*8
	if int64(len(b)) != want {
		return Envelope{}, fmt.Errorf("cluster: envelope length %d, counts declare %d", len(b), want)
	}
	e := Envelope{kind: envKind(kind), from: int(from), id: id}
	if sentNS != 0 {
		e.sentAt = time.Unix(0, sentNS)
	}
	// The exact-length check above already proved the payload bytes are
	// present, but sizes still flow through the earned-growth clamps so
	// a decoder bug can never turn a decoded count into a huge upfront
	// allocation.
	off := envelopeHdrLen
	e.slots = make([]int64, 0, presizeCap(nslots, 8))
	for i := 0; i < nslots; i++ {
		e.slots = growEarned(e.slots, 1, nslots)
		e.slots = append(e.slots, int64(binary.LittleEndian.Uint64(b[off:])))
		off += 8
	}
	e.blocks = make([]int32, 0, presizeCap(nslots, 4))
	for i := 0; i < nslots; i++ {
		e.blocks = growEarned(e.blocks, 1, nslots)
		e.blocks = append(e.blocks, int32(binary.LittleEndian.Uint32(b[off:])))
		off += 4
	}
	e.words = make([]uint64, 0, presizeCap(nwords, 8))
	for i := 0; i < nwords; i++ {
		e.words = growEarned(e.words, 1, nwords)
		e.words = append(e.words, binary.LittleEndian.Uint64(b[off:]))
		off += 8
	}
	return e, nil
}

// presizeCap clamps an upfront allocation sized by decoded input to a
// fixed byte budget; growEarned quadruples capacity from what delivered
// bytes have earned. Same contract as the internal/graph snapshot
// decoder's clamps (the abcdlint boundalloc rule recognizes the names).
func presizeCap(want, entryBytes int) int {
	const maxUpfront = 4 << 20
	if want < 0 {
		return 0
	}
	if want > maxUpfront/entryBytes {
		return maxUpfront / entryBytes
	}
	return want
}

func growEarned[T any](s []T, need, want int) []T {
	if len(s)+need <= cap(s) {
		return s
	}
	newCap := 4 * cap(s)
	if newCap < len(s)+need {
		newCap = len(s) + need
	}
	if want > len(s)+need && newCap > want {
		newCap = want
	}
	out := make([]T, len(s), newCap)
	copy(out, s)
	return out
}
