package cluster

import (
	"sync/atomic"
	"time"
)

// envKind distinguishes the two message classes on the wire.
type envKind int8

const (
	envData envKind = iota // a batch of state-based edge-cache updates
	envAck                 // acknowledgment that a data envelope was applied
)

// Envelope is one transport message between nodes. Payload fields are
// unexported: a Transport moves envelopes, it does not interpret them.
// The same envelope value may be resent (retries) and received more than
// once (duplication); the cluster's state-based updates and ack-based
// accounting make both safe.
type Envelope struct {
	kind   envKind
	from   int    // sending node
	id     uint64 // logical batch id, also the payload's write stamp
	sentAt time.Time
	slots  []int64  // CSC slot indices on the receiving node
	blocks []int32  // global block id per slot
	words  []uint64 // encoded values, len = len(slots) * codec.Words()
}

// IsAck reports whether the envelope is an acknowledgment rather than a
// data batch; fault injectors may treat the two classes differently.
func (e Envelope) IsAck() bool { return e.kind == envAck }

// ID returns the logical batch id the envelope carries (an ack carries
// the id of the data envelope it acknowledges).
func (e Envelope) ID() uint64 { return e.id }

// Transport moves envelopes between cluster nodes. Implementations may
// drop, duplicate, delay, or reorder envelopes arbitrarily — the cluster
// layers at-least-once delivery (unacked batches are retried with
// backoff) and per-slot write stamps on top, so faults degrade progress,
// never correctness. Send must not block indefinitely and must be safe
// for concurrent use; envelopes handed to deliver after Close are the
// implementation's responsibility to suppress.
type Transport interface {
	// Bind is called once before the run starts: deliver injects an
	// envelope into the destination node's inbox (it may block briefly
	// for backpressure and silently discards traffic to failed nodes).
	Bind(numNodes int, deliver func(to int, e Envelope))
	// Send conveys e from node `from` to node `to`, asynchronously.
	Send(from, to int, e Envelope)
	// Close stops delivery and waits for any in-flight deliver calls.
	Close()
}

// FaultCounter is optionally implemented by fault-injecting transports;
// the cluster folds the counts into Stats.
type FaultCounter interface {
	// FaultCounts returns the number of envelopes the transport dropped
	// and the number it delivered more than once.
	FaultCounts() (dropped, duplicated int64)
}

// directTransport is the default perfect in-process transport: every
// envelope is delivered exactly once, immediately, in send order.
type directTransport struct {
	deliver func(int, Envelope)
	closed  atomic.Bool
}

func (t *directTransport) Bind(numNodes int, deliver func(int, Envelope)) {
	t.deliver = deliver
}

func (t *directTransport) Send(from, to int, e Envelope) {
	if t.closed.Load() {
		return
	}
	t.deliver(to, e)
}

func (t *directTransport) Close() { t.closed.Store(true) }
