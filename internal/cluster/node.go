package cluster

import (
	"sync"
	"sync/atomic"
	"time"

	"graphabcd/internal/bcd"
	"graphabcd/internal/core"
	"graphabcd/internal/graph"
	"graphabcd/internal/sched"
	"graphabcd/internal/word"
)

// clusterRun is the shared state of one distributed execution.
type clusterRun[V, M any] struct {
	g    *graph.Graph
	prog bcd.Program[V, M]
	cfg  Config
	part *graph.Partition

	values *word.Array[V] // vertex values (each owned by one node)
	cache  *word.Array[V] // in-edge cache slots (owned by the dst's node)

	blockOwner []int32 // global block id -> node id
	nodes      []*node[V, M]

	// Distributed-termination accounting (see checkQuiescence).
	totalSent atomic.Int64 // monotone count of batches ever sent
	inflight  atomic.Int64 // batches sent but not yet fully applied

	// Work accounting.
	vertices atomic.Int64
	blocks   atomic.Int64
	edges    atomic.Int64

	msgs    atomic.Int64 // remote slot updates
	batches atomic.Int64
	localW  atomic.Int64 // node-local scatter writes

	budget    int64 // vertex-update budget from MaxEpochs
	stopping  atomic.Bool
	converged atomic.Bool
}

// node is one member of the cluster.
type node[V, M any] struct {
	id       int
	blockLo  int // global id of the node's first block
	numLocal int
	st       *sched.State // indexed by local block id (global - blockLo)
	inbox    chan batch
}

// batch is one network message: a group of state-based edge-cache updates
// destined for blocks of a single node.
type batch struct {
	sentAt time.Time
	slots  []int64  // CSC slot indices on the receiving node
	blocks []int32  // receiving node's local block index per slot
	words  []uint64 // encoded values, len = len(slots) * codec.Words()
}

func newCluster[V, M any](g *graph.Graph, prog bcd.Program[V, M], cfg Config) (*clusterRun[V, M], error) {
	part, err := graph.NewPartition(g, cfg.BlockSize)
	if err != nil {
		return nil, err
	}
	codec := prog.Codec()
	c := &clusterRun[V, M]{
		g:      g,
		prog:   prog,
		cfg:    cfg,
		part:   part,
		values: word.NewArray(codec, g.NumVertices()),
		cache:  word.NewArray(codec, g.NumEdges()),
	}
	nb := part.NumBlocks()
	c.blockOwner = make([]int32, nb)
	c.nodes = make([]*node[V, M], cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		lo, hi := i*nb/cfg.Nodes, (i+1)*nb/cfg.Nodes
		for b := lo; b < hi; b++ {
			c.blockOwner[b] = int32(i)
		}
		c.nodes[i] = &node[V, M]{
			id:       i,
			blockLo:  lo,
			numLocal: hi - lo,
			st:       sched.NewState(hi - lo),
			inbox:    make(chan batch, 1024),
		}
	}
	c.initArrays()
	return c, nil
}

func (c *clusterRun[V, M]) initArrays() {
	buf := make([]uint64, c.values.Words())
	for v := 0; v < c.g.NumVertices(); v++ {
		c.values.StoreBuf(int64(v), c.prog.Init(uint32(v), c.g), buf)
		for s := c.g.InOffset(v); s < c.g.InOffset(v+1); s++ {
			c.cache.StoreBuf(s, c.prog.InitEdge(c.g.InSrc(s), c.g), buf)
		}
	}
}

// run starts every node's workers and appliers, the coordinator, and
// collects the result.
func (c *clusterRun[V, M]) run() (*Result[V], error) {
	start := time.Now()
	c.budget = 1<<63 - 1
	if c.cfg.MaxEpochs > 0 {
		c.budget = int64(c.cfg.MaxEpochs * float64(c.g.NumVertices()))
	}
	for _, n := range c.nodes {
		n.st.ActivateAll(1)
	}
	var workers, appliers sync.WaitGroup
	for _, n := range c.nodes {
		n := n
		appliers.Add(1)
		go func() {
			defer appliers.Done()
			c.applyLoop(n)
		}()
		for w := 0; w < c.cfg.WorkersPerNode; w++ {
			workers.Add(1)
			go func() {
				defer workers.Done()
				c.workerLoop(n)
			}()
		}
	}
	c.coordinate()
	workers.Wait()
	for _, n := range c.nodes {
		close(n.inbox)
	}
	appliers.Wait()

	res := &Result[V]{Values: make([]V, c.g.NumVertices())}
	buf := make([]uint64, c.values.Words())
	for v := range res.Values {
		c.values.LoadBuf(int64(v), &res.Values[v], buf)
	}
	n := c.g.NumVertices()
	res.Stats = Stats{
		Stats: core.Stats{
			BlockUpdates:   c.blocks.Load(),
			VertexUpdates:  c.vertices.Load(),
			EdgesTraversed: c.edges.Load(),
			ScatterWrites:  c.localW.Load() + c.msgs.Load(),
			Converged:      c.converged.Load(),
			WallTime:       time.Since(start),
		},
		Nodes:        c.cfg.Nodes,
		MessagesSent: c.msgs.Load(),
		BatchesSent:  c.batches.Load(),
		LocalWrites:  c.localW.Load(),
	}
	if n > 0 {
		res.Stats.Epochs = float64(res.Stats.VertexUpdates) / float64(n)
	}
	return res, nil
}

// workerLoop is one node-local fused gather-apply-scatter worker, cycling
// over the node's own blocks.
func (c *clusterRun[V, M]) workerLoop(n *node[V, M]) {
	sch, err := sched.New(sched.Cyclic, n.st, uint64(n.id)+1)
	if err != nil {
		panic(err) // cyclic is always constructible
	}
	ws := newWorkerState(c.prog, c.cfg)
	spins := 0
	for !c.stopping.Load() {
		if c.vertices.Load() >= c.budget {
			// Workers police the budget themselves; the coordinator's
			// polling interval would otherwise allow a large overshoot.
			c.stopping.Store(true)
			return
		}
		local, ok := sch.Next()
		if !ok {
			spins++
			if spins < 64 {
				// Another worker may hold every active block; yield.
				time.Sleep(time.Microsecond)
			} else {
				time.Sleep(50 * time.Microsecond)
			}
			continue
		}
		spins = 0
		global := n.blockLo + local
		c.processBlock(n, global, ws)
		n.st.Done(local)
	}
}

// workerState is the per-worker scratch.
type workerState[V, M any] struct {
	acc      M
	old, src V
	buf      []uint64
	enc      []uint64 // encoded scatter value
	deltas   []float64
	pending  []batch // one building batch per destination node
}

func newWorkerState[V, M any](prog bcd.Program[V, M], cfg Config) *workerState[V, M] {
	words := prog.Codec().Words()
	if words < 2 {
		words = 2
	}
	return &workerState[V, M]{
		acc:     prog.NewAccum(),
		buf:     make([]uint64, words),
		enc:     make([]uint64, prog.Codec().Words()),
		pending: make([]batch, cfg.Nodes),
	}
}

// processBlock runs the fused GAS chain for one global block on node n.
func (c *clusterRun[V, M]) processBlock(n *node[V, M], b int, ws *workerState[V, M]) {
	lo, hi := c.part.VertexRange(b)
	if cap(ws.deltas) < hi-lo {
		ws.deltas = make([]float64, hi-lo)
	}
	deltas := ws.deltas[:hi-lo]
	var edges int64

	for v := lo; v < hi; v++ {
		c.values.LoadBuf(int64(v), &ws.old, ws.buf)
		c.prog.ResetAccum(&ws.acc)
		slo, shi := c.g.InOffset(v), c.g.InOffset(v+1)
		for s := slo; s < shi; s++ {
			c.cache.LoadBuf(s, &ws.src, ws.buf)
			c.prog.EdgeGather(&ws.acc, ws.old, c.g.InWeight(s), ws.src)
		}
		edges += shi - slo
		newVal := c.prog.Apply(uint32(v), ws.old, &ws.acc, shi-slo, c.g)
		if c.prog.Delta(ws.old, newVal) == 0 {
			deltas[v-lo] = 0
			continue
		}
		deltas[v-lo] = c.prog.Delta(
			c.prog.ScatterValue(uint32(v), ws.old, c.g),
			c.prog.ScatterValue(uint32(v), newVal, c.g))
		c.values.StoreBuf(int64(v), newVal, ws.buf)
	}
	c.blocks.Add(1)
	c.vertices.Add(int64(hi - lo))
	c.edges.Add(edges)

	// Scatter: local slots store directly; remote slots batch into
	// state-based messages for their owner node.
	codec := c.prog.Codec()
	for v := lo; v < hi; v++ {
		d := deltas[v-lo]
		if d <= c.cfg.Epsilon {
			continue
		}
		c.values.LoadBuf(int64(v), &ws.old, ws.buf)
		sval := c.prog.ScatterValue(uint32(v), ws.old, c.g)
		codec.Encode(sval, ws.enc)
		for i := c.g.OutOffset(v); i < c.g.OutOffset(v+1); i++ {
			slot := c.g.OutPos(i)
			db := c.part.BlockOf(c.g.OutDst(i))
			owner := int(c.blockOwner[db])
			if owner == n.id {
				c.cache.StoreBuf(slot, sval, ws.buf)
				n.st.Activate(db-n.blockLo, d)
				c.localW.Add(1)
				continue
			}
			p := &ws.pending[owner]
			p.slots = append(p.slots, slot)                               //abcdlint:ignore hotalloc -- amortized: flush resets the batch to [:0], capacity is retained
			p.blocks = append(p.blocks, int32(db-c.nodes[owner].blockLo)) //abcdlint:ignore hotalloc -- amortized: flush resets the batch to [:0], capacity is retained
			p.words = append(p.words, ws.enc...)                          //abcdlint:ignore hotalloc -- amortized: flush resets the batch to [:0], capacity is retained
			if len(p.slots) >= c.cfg.batchSize() {
				c.flush(owner, p)
			}
		}
	}
	for owner := range ws.pending {
		if len(ws.pending[owner].slots) > 0 {
			c.flush(owner, &ws.pending[owner])
		}
	}
}

// flush sends the building batch to its owner node. Counter order matters
// for termination: totalSent and inflight rise before the send.
func (c *clusterRun[V, M]) flush(owner int, p *batch) {
	out := batch{
		sentAt: time.Now(),
		slots:  append([]int64(nil), p.slots...),  //abcdlint:ignore hotalloc -- ownership copy: the batch crosses a channel while p is reused
		blocks: append([]int32(nil), p.blocks...), //abcdlint:ignore hotalloc -- ownership copy: the batch crosses a channel while p is reused
		words:  append([]uint64(nil), p.words...), //abcdlint:ignore hotalloc -- ownership copy: the batch crosses a channel while p is reused
	}
	p.slots, p.blocks, p.words = p.slots[:0], p.blocks[:0], p.words[:0]
	c.totalSent.Add(1)
	c.inflight.Add(1)
	c.msgs.Add(int64(len(out.slots)))
	c.batches.Add(1)
	c.nodes[owner].inbox <- out
}

// applyLoop consumes a node's inbox: after the modeled network delay, it
// stores each update into the local edge cache and re-activates the
// affected block with the observed change as Gauss-Southwell mass.
// inflight falls only after the activations are visible.
func (c *clusterRun[V, M]) applyLoop(n *node[V, M]) {
	words := c.cache.Words()
	var old, incoming V
	buf := make([]uint64, max(words, 2))
	for b := range n.inbox {
		if c.cfg.NetDelay > 0 {
			if wait := time.Until(b.sentAt.Add(c.cfg.NetDelay)); wait > 0 {
				time.Sleep(wait)
			}
		}
		for i, slot := range b.slots {
			c.cache.LoadBuf(slot, &old, buf)
			c.prog.Codec().DecodeInto(b.words[i*words:(i+1)*words], &incoming)
			c.cache.StoreBuf(slot, incoming, buf)
			if d := c.prog.Delta(old, incoming); d > c.cfg.Epsilon {
				n.st.Activate(int(b.blocks[i]), d)
			}
		}
		c.inflight.Add(-1)
	}
}

// coordinate is the cluster's termination unit. It stops the run when the
// epoch budget is exhausted or when distributed quiescence is certain.
func (c *clusterRun[V, M]) coordinate() {
	for {
		if c.stopping.Load() {
			return
		}
		if c.vertices.Load() >= c.budget {
			c.stopping.Store(true)
			return
		}
		if c.checkQuiescence() {
			c.converged.Store(true)
			c.stopping.Store(true)
			return
		}
		time.Sleep(20 * time.Microsecond)
	}
}

// checkQuiescence implements the exact distributed termination test.
//
// Order of observation: (1) snapshot the monotone totalSent counter;
// (2) require inflight == 0 — every batch ever sent has been applied, and
// appliers raise the destination's active bit *before* decrementing
// inflight, so all resulting activations are visible; (3) require every
// node quiescent — any worker still processing holds its block in-flight
// and would fail this; (4) require totalSent unchanged — no new batch was
// sent while we looked (a sender's block stays in-flight until its
// scatter completes, but this re-check closes the window between reading
// a sender's state and its sends). If all four hold, no work exists
// anywhere in the system.
func (c *clusterRun[V, M]) checkQuiescence() bool {
	s1 := c.totalSent.Load()
	if c.inflight.Load() != 0 {
		return false
	}
	for _, n := range c.nodes {
		if !n.st.Quiescent() {
			return false
		}
	}
	return c.totalSent.Load() == s1
}
