package cluster

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"graphabcd/internal/bcd"
	"graphabcd/internal/core"
	"graphabcd/internal/graph"
	"graphabcd/internal/sched"
	"graphabcd/internal/telemetry"
	"graphabcd/internal/word"
)

// clusterRun is the shared state of one distributed execution.
type clusterRun[V, M any] struct {
	g    *graph.Graph
	prog bcd.Program[V, M]
	cfg  Config
	part *graph.Partition

	values *word.Array[V] // vertex values (each owned by one node)
	cache  *word.Array[V] // in-edge cache slots (owned by the dst's node)

	// slotSeq holds the write stamp of the last update applied to each
	// cache slot over the transport. Remote applies are guarded by it:
	// a retried or reordered envelope whose stamp is older than the
	// slot's is skipped, so redelivery can never regress a slot to a
	// stale value. Local scatter writes bypass the stamps — a slot's
	// writer is its source vertex's owner, so local and remote writers
	// of one slot never coexist (failover fences the handover).
	slotSeq []atomic.Uint64 //abcd:stamped

	blockOwner []atomic.Int32 // global block id -> current owner node id
	nodes      []*node[V, M]
	transport  Transport

	// fence serializes failover against normal execution: workers hold
	// the read side for each claim-process-done iteration, FailNode
	// holds the write side while it reassigns blocks and rebuilds cache
	// slots, so ownership changes are atomic w.r.t. block processing.
	fence sync.RWMutex

	// Distributed-termination accounting (see checkQuiescence). These
	// stay exact single atomics: the quiescence protocol needs a
	// linearizable counter, not the monotone-but-merged view a sharded
	// sum gives. Only the stats counters below moved into telemetry
	// shards.
	seq        atomic.Uint64 // logical batch ids / write stamps
	totalSent  atomic.Int64  // monotone count of logical batches ever created
	inflight   atomic.Int64  // batches created but neither acked nor abandoned
	recovering atomic.Int64  // FailNode calls currently rebuilding state

	// Work accounting lands in per-worker telemetry shards: shard 0
	// belongs to the run's auxiliary goroutines (retry loop, watchdog,
	// failover), shards 1..Nodes*WorkersPerNode to the workers, and the
	// last Nodes shards to the appliers (which also observe StageApply
	// batch-application latency when timing is on).
	tel    *telemetry.Registry
	shards []telemetry.Shard
	sh0    *telemetry.Shard

	liveNodes atomic.Int64

	budget    int64         // vertex-update budget from MaxEpochs
	done      chan struct{} // closed at teardown; releases appliers
	stopping  atomic.Bool
	stopped   chan struct{} // closed when stopping flips; releases blocked senders
	stopOnce  sync.Once
	converged atomic.Bool
	failure   atomic.Pointer[error]

	failMu sync.Mutex // serializes FailNode calls
}

// node is one member of the cluster.
type node[V, M any] struct {
	id     int
	st     *sched.State // indexed by GLOBAL block id; only owned blocks activate
	inbox  chan Envelope
	down   chan struct{} // closed by FailNode; applier switches to discard mode
	failed atomic.Bool

	// applyMu is held by the applier around each envelope; FailNode
	// acquires every live node's applyMu to park appliers at an
	// envelope boundary while it rebuilds cache slots.
	applyMu sync.Mutex

	// unacked holds this node's sent-but-unacknowledged batches for the
	// at-least-once retry loop.
	unackedMu sync.Mutex
	unacked   map[uint64]*pending

	// sendWindow is the MaxUnacked flow-control semaphore: flush
	// acquires a slot per batch it registers, and every path that
	// retires an unacked entry (first ack, dead-destination abandon,
	// deadline failure, failover orphan sweep) releases one. nil means
	// the window is unbounded. Safe against deadlock because acks are
	// produced by appliers — goroutines that never wait on the window.
	sendWindow chan struct{}
}

// pending is one unacknowledged batch awaiting its ack or retransmission.
type pending struct {
	to        int
	env       Envelope
	attempts  int
	nextRetry time.Time
	deadline  time.Time
}

// batch is a building buffer of state-based edge-cache updates destined
// for blocks of a single node; flush turns it into a data Envelope.
type batch struct {
	slots  []int64
	blocks []int32
	words  []uint64
}

func newCluster[V, M any](g *graph.Graph, prog bcd.Program[V, M], cfg Config) (*clusterRun[V, M], error) {
	part, err := graph.NewPartition(g, cfg.BlockSize)
	if err != nil {
		return nil, err
	}
	nb := part.NumBlocks()
	if cfg.Nodes > nb && nb > 0 {
		// More nodes than blocks would leave zero-block nodes spinning
		// workers against a permanently empty scheduler; clamp so every
		// node owns at least one block.
		cfg.Nodes = nb
	}
	codec := prog.Codec()
	c := &clusterRun[V, M]{
		g:       g,
		prog:    prog,
		cfg:     cfg,
		part:    part,
		values:  word.NewArray(codec, g.NumVertices()),
		cache:   word.NewArray(codec, g.NumEdges()),
		slotSeq: make([]atomic.Uint64, g.NumEdges()),
		done:    make(chan struct{}),
		stopped: make(chan struct{}),
	}
	c.transport = cfg.Transport
	if c.transport == nil {
		c.transport = &directTransport{}
	}
	c.blockOwner = make([]atomic.Int32, nb)
	c.nodes = make([]*node[V, M], cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		lo, hi := i*nb/cfg.Nodes, (i+1)*nb/cfg.Nodes
		for b := lo; b < hi; b++ {
			c.blockOwner[b].Store(int32(i))
		}
		c.nodes[i] = &node[V, M]{
			id:      i,
			st:      sched.NewState(nb),
			inbox:   make(chan Envelope, 1024),
			down:    make(chan struct{}),
			unacked: make(map[uint64]*pending),
		}
		if w := cfg.maxUnacked(); w > 0 {
			c.nodes[i].sendWindow = make(chan struct{}, w)
		}
	}
	c.liveNodes.Store(int64(cfg.Nodes))
	c.tel = cfg.Telemetry
	if c.tel == nil {
		c.tel = telemetry.New(telemetry.Options{})
	}
	c.shards = c.tel.Shards(1 + cfg.Nodes*cfg.WorkersPerNode + cfg.Nodes)
	c.sh0 = &c.shards[0]
	c.tel.SetVertices(g.NumVertices())
	c.tel.RegisterGauge("live_nodes", func() float64 { return float64(c.liveNodes.Load()) })
	c.tel.RegisterGauge("inflight_batches", func() float64 { return float64(c.inflight.Load()) })
	c.initArrays()
	return c, nil
}

// workerShard returns worker w of node n's telemetry shard.
func (c *clusterRun[V, M]) workerShard(nodeID, w int) *telemetry.Shard {
	return &c.shards[1+nodeID*c.cfg.WorkersPerNode+w]
}

// applierShard returns node n's applier shard.
func (c *clusterRun[V, M]) applierShard(nodeID int) *telemetry.Shard {
	return &c.shards[1+c.cfg.Nodes*c.cfg.WorkersPerNode+nodeID]
}

// vertexUpdates is the cross-shard total driving the budget checks and
// the watchdog.
func (c *clusterRun[V, M]) vertexUpdates() int64 {
	return c.tel.Total(telemetry.CtrVertexUpdates)
}

func (c *clusterRun[V, M]) owner(b int) int { return int(c.blockOwner[b].Load()) }

func (c *clusterRun[V, M]) initArrays() {
	buf := make([]uint64, c.values.Words())
	for v := 0; v < c.g.NumVertices(); v++ {
		c.values.StoreBuf(int64(v), c.prog.Init(uint32(v), c.g), buf)
		for s := c.g.InOffset(v); s < c.g.InOffset(v+1); s++ {
			c.cache.StoreBuf(s, c.prog.InitEdge(c.g.InSrc(s), c.g), buf)
		}
	}
}

// stop flips the run into teardown. stopping is the cheap poll the hot
// loops read; stopped is the same fact as a closed channel for
// goroutines parked in a select. Both are needed: when the retry loop
// exits on stopping it strands the window slots of not-yet-due unacked
// batches, so a worker blocked on a full send window (e.g. under a
// partition) must have a teardown escape — done cannot serve, it only
// closes after the workers exit.
func (c *clusterRun[V, M]) stop() {
	c.stopping.Store(true)
	c.stopOnce.Do(func() { close(c.stopped) })
}

// fail records the first failure; the coordinator stops the run and Run
// returns the error.
func (c *clusterRun[V, M]) fail(err error) {
	c.failure.CompareAndSwap(nil, &err)
	c.stop()
}

// recoverToFailure converts a worker or applier panic into a run failure
// instead of a process crash. Deferred at every goroutine boundary.
func (c *clusterRun[V, M]) recoverToFailure() {
	if r := recover(); r != nil {
		c.fail(fmt.Errorf("cluster: worker panic: %v", r))
	}
}

// run starts every node's workers and appliers, the retry and watchdog
// goroutines, the coordinator, and collects the result.
func (c *clusterRun[V, M]) run(ctx context.Context) (*Result[V], error) {
	start := time.Now()
	c.budget = 1<<63 - 1
	if c.cfg.MaxEpochs > 0 {
		c.budget = int64(c.cfg.MaxEpochs * float64(c.g.NumVertices()))
	}
	for b := 0; b < c.part.NumBlocks(); b++ {
		c.nodes[c.owner(b)].st.Activate(b, 1)
	}
	c.transport.Bind(len(c.nodes), c.deliverLocal)

	var workers, appliers, aux sync.WaitGroup
	for _, n := range c.nodes {
		appliers.Add(1)
		go func(n *node[V, M]) {
			defer appliers.Done()
			defer c.recoverToFailure()
			c.applyLoop(n, c.applierShard(n.id))
		}(n)
		for w := 0; w < c.cfg.WorkersPerNode; w++ {
			workers.Add(1)
			go func(n *node[V, M], w int) {
				defer workers.Done()
				defer c.recoverToFailure()
				c.workerLoop(n, c.workerShard(n.id, w))
			}(n, w)
		}
	}
	aux.Add(1)
	go func() {
		defer aux.Done()
		c.retryLoop(ctx)
	}()
	aux.Add(1)
	go func() {
		defer aux.Done()
		c.watchdog(ctx)
	}()
	if c.cfg.OnStart != nil {
		c.cfg.OnStart(c)
	}

	c.coordinate(ctx)
	workers.Wait()
	aux.Wait()
	// Workers and the retry loop are gone, so no new data envelopes can
	// originate. Close the transport (draining its in-flight delayed
	// deliveries) while appliers still consume, then release the appliers
	// via the done channel. Inboxes are never closed — appliers may still
	// be sending acks into each other's inboxes right up to the moment
	// they observe done, and a send racing a close would panic.
	c.transport.Close()
	close(c.done)
	appliers.Wait()

	res := &Result[V]{Values: make([]V, c.g.NumVertices())}
	buf := make([]uint64, c.values.Words())
	for v := range res.Values {
		c.values.LoadBuf(int64(v), &res.Values[v], buf)
	}
	nv := c.g.NumVertices()
	var tDropped, tDuplicated int64
	if fc, ok := c.transport.(FaultCounter); ok {
		tDropped, tDuplicated = fc.FaultCounts()
	}
	// Fold the transport's own fault counts into the registry so a live
	// Snapshot and the final Stats agree.
	c.sh0.Add(telemetry.CtrBatchesDropped, tDropped)
	c.sh0.Add(telemetry.CtrBatchesDuplicated, tDuplicated)
	t := c.tel.CounterTotals()
	res.Stats = Stats{
		Stats: core.Stats{
			BlockUpdates:   t[telemetry.CtrBlockUpdates],
			VertexUpdates:  t[telemetry.CtrVertexUpdates],
			EdgesTraversed: t[telemetry.CtrEdgesTraversed],
			ScatterWrites:  t[telemetry.CtrLocalWrites] + t[telemetry.CtrMessagesSent],
			Converged:      c.converged.Load(),
			StallWindows:   t[telemetry.CtrStallWindows],
			WallTime:       time.Since(start),
		},
		Nodes:             c.cfg.Nodes,
		MessagesSent:      t[telemetry.CtrMessagesSent],
		BatchesSent:       t[telemetry.CtrBatchesSent],
		LocalWrites:       t[telemetry.CtrLocalWrites],
		BatchesRetried:    t[telemetry.CtrBatchesRetried],
		BatchesDropped:    t[telemetry.CtrBatchesDropped],
		BatchesDuplicated: t[telemetry.CtrBatchesDuplicated],
		NodesFailed:       t[telemetry.CtrNodesFailed],
	}
	if nv > 0 {
		res.Stats.Epochs = float64(res.Stats.VertexUpdates) / float64(nv)
	}
	if errp := c.failure.Load(); errp != nil {
		return nil, *errp
	}
	return res, nil
}

// deliverLocal is the transport's injection point into node inboxes. Data
// envelopes queue on the receiver's inbox and apply backpressure; acks
// settle directly on the delivering goroutine — settle only takes the
// receiving node's unacked lock, so it can never block on an applier,
// never competes with data for inbox space, and never deadlocks two
// appliers acking each other. (A transport may still drop or delay the
// ack in flight; the sender's retry of the idempotent batch covers that.)
func (c *clusterRun[V, M]) deliverLocal(to int, e Envelope) {
	n := c.nodes[to]
	if e.kind != envData {
		c.settle(n, e.id)
		return
	}
	// A parked channel send, never a poll loop: under heavy chaos tens of
	// thousands of delayed deliveries can be in flight at once, and
	// spin-waiting on a full inbox melts the scheduler. The two escape
	// hatches are channels too — down unblocks senders to a dead node
	// (the failover rebuild compensates for the batch), done unblocks
	// everything at teardown (the run is over; the batch cannot matter).
	select {
	case n.inbox <- e:
	case <-n.down:
	case <-c.done:
	}
}

// workerLoop is one node-local fused gather-apply-scatter worker, cycling
// over the blocks its node currently owns.
func (c *clusterRun[V, M]) workerLoop(n *node[V, M], sh *telemetry.Shard) {
	sch, err := sched.New(sched.Cyclic, n.st, uint64(n.id)+1)
	if err != nil {
		c.fail(fmt.Errorf("cluster: node %d scheduler: %w", n.id, err))
		return
	}
	ws := newWorkerState(c.prog, c.cfg)
	spins := 0
	for {
		nap := c.workerStep(n, sch, ws, sh, &spins)
		if nap < 0 {
			return
		}
		if nap > 0 {
			// Back off outside the fence so a pending failover is never
			// delayed by an idle worker's nap.
			time.Sleep(nap)
		}
	}
}

// workerStep runs one claim-process-done iteration under the failover
// fence. It returns a backoff duration (0 = progress was made), or a
// negative duration when the worker should exit.
func (c *clusterRun[V, M]) workerStep(n *node[V, M], sch sched.Scheduler, ws *workerState[V, M], sh *telemetry.Shard, spins *int) time.Duration {
	c.fence.RLock()
	defer c.fence.RUnlock()
	if c.stopping.Load() || n.failed.Load() {
		return -1
	}
	if c.vertexUpdates() >= c.budget {
		// Workers police the budget themselves; the coordinator's
		// polling interval would otherwise allow a large overshoot.
		c.stop()
		return -1
	}
	b, ok := sch.Next()
	if !ok {
		*spins++
		if *spins < 64 {
			// Another worker may hold every active block; yield.
			return time.Microsecond
		}
		return 50 * time.Microsecond
	}
	*spins = 0
	c.processBlock(n, b, ws, sh)
	n.st.Done(b)
	return 0
}

// workerState is the per-worker scratch.
type workerState[V, M any] struct {
	acc      M
	old, src V
	buf      []uint64
	enc      []uint64 // encoded scatter value
	deltas   []float64
	pending  []batch // one building batch per destination node
}

func newWorkerState[V, M any](prog bcd.Program[V, M], cfg Config) *workerState[V, M] {
	words := prog.Codec().Words()
	if words < 2 {
		words = 2
	}
	return &workerState[V, M]{
		acc:     prog.NewAccum(),
		buf:     make([]uint64, words),
		enc:     make([]uint64, prog.Codec().Words()),
		pending: make([]batch, cfg.Nodes),
	}
}

// processBlock runs the fused GAS chain for one global block on node n.
// Work counters land in the calling worker's telemetry shard sh.
//
//abcd:hotpath
func (c *clusterRun[V, M]) processBlock(n *node[V, M], b int, ws *workerState[V, M], sh *telemetry.Shard) {
	lo, hi := c.part.VertexRange(b)
	if cap(ws.deltas) < hi-lo {
		ws.deltas = make([]float64, hi-lo) //abcdlint:ignore hotpath -- amortized: grows once to the largest owned block, then reused
	}
	deltas := ws.deltas[:hi-lo]
	var edges int64

	for v := lo; v < hi; v++ {
		c.values.LoadBuf(int64(v), &ws.old, ws.buf)
		c.prog.ResetAccum(&ws.acc)
		slo, shi := c.g.InOffset(v), c.g.InOffset(v+1)
		for s := slo; s < shi; s++ {
			c.cache.LoadBuf(s, &ws.src, ws.buf)
			c.prog.EdgeGather(&ws.acc, ws.old, c.g.InWeight(s), ws.src)
		}
		edges += shi - slo
		newVal := c.prog.Apply(uint32(v), ws.old, &ws.acc, shi-slo, c.g)
		if c.prog.Delta(ws.old, newVal) == 0 {
			deltas[v-lo] = 0
			continue
		}
		deltas[v-lo] = c.prog.Delta(
			c.prog.ScatterValue(uint32(v), ws.old, c.g),
			c.prog.ScatterValue(uint32(v), newVal, c.g))
		c.values.StoreBuf(int64(v), newVal, ws.buf)
	}
	sh.Add(telemetry.CtrBlockUpdates, 1)
	sh.Add(telemetry.CtrVertexUpdates, int64(hi-lo))
	sh.Add(telemetry.CtrEdgesTraversed, edges)

	// Scatter: local slots store directly; remote slots batch into
	// state-based messages for their owner node.
	codec := c.prog.Codec()
	for v := lo; v < hi; v++ {
		d := deltas[v-lo]
		if d <= c.cfg.Epsilon {
			continue
		}
		c.values.LoadBuf(int64(v), &ws.old, ws.buf)
		sval := c.prog.ScatterValue(uint32(v), ws.old, c.g)
		codec.Encode(sval, ws.enc)
		for i := c.g.OutOffset(v); i < c.g.OutOffset(v+1); i++ {
			slot := c.g.OutPos(i)
			db := c.part.BlockOf(c.g.OutDst(i))
			owner := c.owner(db)
			if owner == n.id {
				c.cache.StoreBuf(slot, sval, ws.buf)
				n.st.Activate(db, d)
				sh.Add(telemetry.CtrLocalWrites, 1)
				continue
			}
			p := &ws.pending[owner]
			p.slots = append(p.slots, slot)        //abcdlint:ignore hotalloc,hotpath -- amortized: flush resets the batch to [:0], capacity is retained
			p.blocks = append(p.blocks, int32(db)) //abcdlint:ignore hotalloc,hotpath -- amortized: flush resets the batch to [:0], capacity is retained
			p.words = append(p.words, ws.enc...)   //abcdlint:ignore hotalloc,hotpath -- amortized: flush resets the batch to [:0], capacity is retained
			if len(p.slots) >= c.cfg.batchSize() {
				c.flush(n, owner, p, sh)
			}
		}
	}
	for owner := range ws.pending {
		if len(ws.pending[owner].slots) > 0 {
			c.flush(n, owner, &ws.pending[owner], sh)
		}
	}
}

// flush turns the building batch into a data envelope, registers it for
// at-least-once retry, and hands it to the transport. Counter order
// matters for termination: totalSent and inflight rise before the send,
// and inflight falls only when the ack comes back (or the destination
// dies and the failover rebuild takes over the batch's duty).
func (c *clusterRun[V, M]) flush(n *node[V, M], owner int, p *batch, sh *telemetry.Shard) {
	if n.sendWindow != nil {
		select {
		case n.sendWindow <- struct{}{}: //abcdlint:ignore hotpath -- MaxUnacked flow control: one channel op per batch, amortized over BatchSize slot updates
		case <-c.stopped:
			// Teardown: the batch dies with the run. Waiting on done
			// instead would deadlock — done closes only after the
			// workers exit, and under a partition the window slots held
			// by undeliverable batches are never coming back.
			return
		case <-c.done:
			return // shutdown: the batch dies with the run
		}
	}
	now := time.Now()
	e := Envelope{
		kind:   envData,
		from:   n.id,
		id:     c.seq.Add(1),
		sentAt: now,
		slots:  append([]int64(nil), p.slots...),  //abcdlint:ignore hotalloc,hotpath -- ownership copy: the envelope crosses the transport while p is reused
		blocks: append([]int32(nil), p.blocks...), //abcdlint:ignore hotalloc,hotpath -- ownership copy: the envelope crosses the transport while p is reused
		words:  append([]uint64(nil), p.words...), //abcdlint:ignore hotalloc,hotpath -- ownership copy: the envelope crosses the transport while p is reused
	}
	p.slots, p.blocks, p.words = p.slots[:0], p.blocks[:0], p.words[:0]
	c.totalSent.Add(1)
	c.inflight.Add(1)
	sh.Add(telemetry.CtrMessagesSent, int64(len(e.slots)))
	sh.Add(telemetry.CtrBatchesSent, 1)
	n.unackedMu.Lock()          //abcdlint:ignore hotpath -- at-least-once bookkeeping: one lock per batch, amortized over BatchSize slot updates
	n.unacked[e.id] = &pending{ //abcdlint:ignore hotalloc,hotpath -- at-least-once bookkeeping: one entry per batch, amortized over BatchSize slot updates
		to:        owner,
		env:       e,
		nextRetry: now.Add(c.cfg.retryBase()),
		deadline:  now.Add(c.cfg.retryDeadline()),
	}
	n.unackedMu.Unlock() //abcdlint:ignore hotpath -- at-least-once bookkeeping: see the matching Lock above
	c.transport.Send(n.id, owner, e)
}

// applyLoop consumes a node's inbox until the node fails (after which it
// discards traffic so senders never block on a dead node) or the run's
// done channel closes at shutdown.
func (c *clusterRun[V, M]) applyLoop(n *node[V, M], sh *telemetry.Shard) {
	as := &applyScratch[V]{buf: make([]uint64, max(c.cache.Words(), 2))}
	for {
		select {
		case <-n.down:
			for { // discard traffic until shutdown
				select {
				case <-c.done:
					return
				case <-n.inbox:
				}
			}
		case <-c.done:
			return
		case e := <-n.inbox:
			n.applyMu.Lock()
			if !n.failed.Load() {
				start := c.tel.Stamp()
				c.handleEnvelope(n, e, as)
				sh.Observe(telemetry.StageApply, c.tel.Stamp()-start)
			}
			n.applyMu.Unlock()
		}
	}
}

// applyScratch is the applier's reusable transfer scratch.
type applyScratch[V any] struct {
	old, incoming V
	buf           []uint64
}

// handleEnvelope applies one data batch on node n under the per-slot
// write-stamp guard and acknowledges it — every time, even when every
// slot was stale, because a duplicate usually means the previous ack was
// lost. (Acks themselves never reach here; deliverLocal settles them on
// the delivering goroutine.)
func (c *clusterRun[V, M]) handleEnvelope(n *node[V, M], e Envelope, as *applyScratch[V]) {
	if c.cfg.NetDelay > 0 {
		if wait := time.Until(e.sentAt.Add(c.cfg.NetDelay)); wait > 0 {
			time.Sleep(wait)
		}
	}
	words := c.cache.Words()
	for i, slot := range e.slots {
		if c.slotSeq[slot].Load() > e.id {
			continue // stale redelivery: a newer write already landed
		}
		c.cache.LoadBuf(slot, &as.old, as.buf)
		c.prog.Codec().DecodeInto(e.words[i*words:(i+1)*words], &as.incoming)
		c.cache.StoreBuf(slot, as.incoming, as.buf)
		c.slotSeq[slot].Store(e.id)
		if d := c.prog.Delta(as.old, as.incoming); d > c.cfg.Epsilon {
			n.st.Activate(int(e.blocks[i]), d)
		}
	}
	c.transport.Send(n.id, e.from, Envelope{kind: envAck, from: n.id, id: e.id})
}

// settle clears one unacked batch on first ack; duplicate acks find the
// entry gone and decrement nothing, keeping inflight exact.
func (c *clusterRun[V, M]) settle(n *node[V, M], id uint64) {
	n.unackedMu.Lock()
	_, ok := n.unacked[id]
	if ok {
		delete(n.unacked, id)
	}
	n.unackedMu.Unlock()
	if ok {
		c.inflight.Add(-1)
		n.releaseWindow(1)
	}
}

// releaseWindow returns k MaxUnacked slots after unacked entries retire.
// Acquire and release are one-to-one with the unacked map, so the
// non-blocking receive never actually misses; it only keeps a bookkeeping
// bug from turning into a hang.
func (n *node[V, M]) releaseWindow(k int) {
	if n.sendWindow == nil {
		return
	}
	for i := 0; i < k; i++ {
		select {
		case <-n.sendWindow:
		default:
			return
		}
	}
}

// retrySend is one due retransmission collected under the unacked lock
// and sent after it is released.
type retrySend struct {
	to  int
	env Envelope
}

// retryLoop is the at-least-once delivery engine: it rescans every node's
// unacked batches, retransmits the due ones with exponential backoff,
// abandons batches whose destination died (the failover rebuild is their
// compensation), and fails the run if a batch to a live node outlives its
// delivery deadline.
func (c *clusterRun[V, M]) retryLoop(ctx context.Context) {
	base := c.cfg.retryBase()
	tick := base / 4
	if tick < 200*time.Microsecond {
		tick = 200 * time.Microsecond
	}
	timer := time.NewTimer(tick)
	defer timer.Stop()
	var due []retrySend
	for !c.stopping.Load() {
		select {
		case <-ctx.Done():
			// coordinate flips stopping on cancellation; returning here
			// just skips the rest of the tick.
			return
		case <-timer.C:
		}
		timer.Reset(tick)
		now := time.Now()
		for _, n := range c.nodes {
			due = due[:0]
			abandoned := 0
			n.unackedMu.Lock()
			for id, p := range n.unacked {
				if c.nodes[p.to].failed.Load() {
					delete(n.unacked, id)
					abandoned++
					continue
				}
				if now.Before(p.nextRetry) {
					continue
				}
				if now.After(p.deadline) {
					delete(n.unacked, id)
					abandoned++
					c.fail(fmt.Errorf("cluster: batch %d from node %d to live node %d undelivered after %v (%d attempts): transport partitioned beyond the retry deadline",
						id, n.id, p.to, c.cfg.retryDeadline(), p.attempts))
					continue
				}
				p.attempts++
				backoff := base << uint(p.attempts)
				if backoff > 50*time.Millisecond {
					backoff = 50 * time.Millisecond
				}
				p.nextRetry = now.Add(backoff)
				due = append(due, retrySend{to: p.to, env: p.env})
			}
			n.unackedMu.Unlock()
			if abandoned > 0 {
				c.sh0.Add(telemetry.CtrBatchesDropped, int64(abandoned))
				c.inflight.Add(int64(-abandoned))
				n.releaseWindow(abandoned)
			}
			for _, r := range due {
				c.sh0.Add(telemetry.CtrBatchesRetried, 1)
				c.transport.Send(n.id, r.to, r.env)
			}
		}
	}
}

// watchdog samples run progress once per watchdog period and counts the
// periods in which nothing moved — neither a vertex update nor a batch
// application. The count surfaces as Stats.StallWindows so a hung or
// partitioned run is visible even when it eventually completes.
func (c *clusterRun[V, M]) watchdog(ctx context.Context) {
	period := c.cfg.watchdogPeriod()
	if period <= 0 {
		return
	}
	step := period / 8
	if step < time.Millisecond {
		step = time.Millisecond
	}
	timer := time.NewTimer(step)
	defer timer.Stop()
	last := int64(-1)
	for {
		deadline := time.Now().Add(period)
		for time.Now().Before(deadline) {
			if c.stopping.Load() {
				return
			}
			select {
			case <-ctx.Done():
				return
			case <-timer.C:
			}
			timer.Reset(step)
		}
		progress := c.vertexUpdates() + c.totalSent.Load() - c.inflight.Load()
		if progress == last {
			c.sh0.Add(telemetry.CtrStallWindows, 1)
		}
		last = progress
	}
}

// coordinate is the cluster's termination unit. It stops the run when the
// context is cancelled, a failure is recorded, the epoch budget is
// exhausted, or distributed quiescence is certain.
func (c *clusterRun[V, M]) coordinate(ctx context.Context) {
	done := ctx.Done()
	for {
		if c.stopping.Load() {
			return
		}
		select {
		case <-done:
			// Graceful cancellation: stop scheduling, keep the partial
			// result. Converged stays false.
			c.stop()
			return
		default:
		}
		if c.vertexUpdates() >= c.budget {
			c.stop()
			return
		}
		if c.checkQuiescence() {
			c.converged.Store(true)
			c.stop()
			return
		}
		time.Sleep(20 * time.Microsecond)
	}
}

// checkQuiescence implements the exact distributed termination test,
// ack-based so it stays exact under retries, duplicates, and node death.
//
// Order of observation: (1) snapshot the monotone totalSent counter;
// (2) require no failover rebuild in progress — a rebuild is about to
// re-activate blocks, so the system is not quiet; (3) require
// inflight == 0 — every logical batch ever created has either been acked
// (the receiver raised the destination's active bit *before* sending the
// ack, and the sender decremented inflight only after processing the
// ack, so all resulting activations are visible) or been abandoned at a
// failed node *after* the rebuild that compensates for it started, which
// step (2) covers; retries and duplicate deliveries never touch the
// counter, and duplicate acks find the unacked entry already gone;
// (4) require every live node quiescent — any worker still processing
// holds its block in-flight and would fail this (dead nodes' scheduler
// state is orphaned by reassignment and excluded); (5) require totalSent
// unchanged and still no rebuild — no new batch was created and no node
// died while we looked. If all five hold, no work exists anywhere.
func (c *clusterRun[V, M]) checkQuiescence() bool {
	s1 := c.totalSent.Load()
	if c.recovering.Load() != 0 {
		return false
	}
	if c.inflight.Load() != 0 {
		return false
	}
	for _, n := range c.nodes {
		if n.failed.Load() {
			continue
		}
		if !n.st.Quiescent() {
			return false
		}
	}
	return c.totalSent.Load() == s1 && c.recovering.Load() == 0
}
