package tcp

import (
	"bytes"
	"encoding/hex"
	"io"
	"strings"
	"testing"
)

func frameFixture() []byte {
	b := newFrame(fSection)
	b = append(b, []byte("payload-bytes")...)
	return sealFrame(b)
}

// TestFrameGolden pins the byte-level frame format: length prefix, type
// byte, body, IEEE CRC of the body. A format change must update this
// string knowingly.
func TestFrameGolden(t *testing.T) {
	const golden = "0e000000" + // body length: 1 type byte + 13 payload
		"04" + // fSection
		"7061796c6f61642d6279746573" + // "payload-bytes"
		"2a064ba3" // crc32("\x04payload-bytes")
	if got := hex.EncodeToString(frameFixture()); got != golden {
		t.Fatalf("frame encoding drifted:\n got  %s\n want %s", got, golden)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	// A stream of several frames, including a minimal one-byte body and
	// a large body, must come back intact and in order.
	big := newFrame(fValues)
	for i := 0; i < 100000; i++ {
		big = append(big, byte(i), byte(i>>8))
	}
	var stream bytes.Buffer
	frames := [][]byte{frameFixture(), sealFrame(newFrame(fDone)), sealFrame(big)}
	for _, f := range frames {
		stream.Write(f)
	}
	r := bytes.NewReader(stream.Bytes())
	for i, f := range frames {
		body, err := readFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if want := f[frameLenSize : len(f)-frameCRCSize]; !bytes.Equal(body, want) {
			t.Fatalf("frame %d body mismatch", i)
		}
	}
	if _, err := readFrame(r); err != io.EOF {
		t.Fatalf("exhausted stream should yield io.EOF, got %v", err)
	}
}

// TestFrameTruncation feeds every strict prefix of a valid frame to the
// reader; all of them must error, none may panic or hang.
func TestFrameTruncation(t *testing.T) {
	f := frameFixture()
	for n := 0; n < len(f); n++ {
		if _, err := readFrame(bytes.NewReader(f[:n])); err == nil {
			t.Fatalf("prefix of %d/%d bytes read without error", n, len(f))
		}
	}
}

// TestFrameBitflip flips one bit in every CRC-protected byte (body and
// trailing checksum); CRC32 detects all single-bit errors, so each flip
// must be rejected.
func TestFrameBitflip(t *testing.T) {
	f := frameFixture()
	for pos := frameLenSize; pos < len(f); pos++ {
		m := bytes.Clone(f)
		m[pos] ^= 0x40
		if _, err := readFrame(bytes.NewReader(m)); err == nil {
			t.Fatalf("bitflip at byte %d read without error", pos)
		} else if !strings.Contains(err.Error(), "crc") {
			t.Fatalf("bitflip at byte %d: want a crc error, got %v", pos, err)
		}
	}
}

func TestFrameRejectsHostileLength(t *testing.T) {
	for _, n := range []uint32{0, maxFrameBody + 1, 1 << 31, 0xffffffff} {
		hdr := []byte{byte(n), byte(n >> 8), byte(n >> 16), byte(n >> 24)}
		in := append(hdr, bytes.Repeat([]byte{0xab}, 64)...)
		if _, err := readFrame(bytes.NewReader(in)); err == nil {
			t.Fatalf("claimed length %d accepted", n)
		}
	}
}
