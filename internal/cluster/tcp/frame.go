// Package tcp is the stdlib-net socket implementation of
// cluster.Transport plus the coordinator/joiner runtime behind the CLI's
// -listen/-join mode. Everything on the wire travels in one frame format
// borrowed from the GABS snapshot sections:
//
//	length u32 | body | crc32(body) u32      (little-endian, IEEE CRC)
//
// body[0] is the frame type; the rest is type-specific. The length
// counts the body only, is bounded by maxFrameBody, and the CRC lets a
// receiver reject corruption before interpreting a single payload byte —
// a corrupted frame kills the connection and the sender's retry/backoff
// path re-establishes it, exactly the failure mode the engine's
// at-least-once accounting is built for.
package tcp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// errCRCMismatch marks a frame whose body arrived intact in length but
// failed its checksum. The stream is still frame-aligned after it — the
// length prefix was consumed before the damage was detected — so a
// receiver may drop just this frame and keep reading, where any other
// frame error means desync and must kill the connection.
var errCRCMismatch = errors.New("tcp: frame crc mismatch")

// Frame types. Transport data connections carry only fEnvelope; the
// coordinator's control connections carry the join/assign/section
// handshake and the termination protocol.
const (
	fEnvelope   byte = 1  // one wire-encoded cluster.Envelope
	fJoin       byte = 2  // joiner -> coordinator: here is my data address
	fAssign     byte = 3  // coordinator -> joiner: node id, run config, peers
	fSection    byte = 4  // coordinator -> joiner: one graph section chunk
	fReady      byte = 5  // joiner -> coordinator: graph assembled
	fStart      byte = 6  // coordinator -> joiner: begin the run
	fProbe      byte = 7  // coordinator -> joiner: report quiescence stats
	fProbeReply byte = 8  // joiner -> coordinator: stats vector
	fStop       byte = 9  // coordinator -> joiner: converged, send values
	fValues     byte = 10 // joiner -> coordinator: owned value chunk
	fDone       byte = 11 // either direction: clean end of protocol
	fError      byte = 12 // either direction: fatal error, utf-8 message
	fCkpt       byte = 13 // coordinator -> joiner: capture checkpoint epoch (u64)
	fCkptAck    byte = 14 // joiner -> coordinator: epoch (u64) state file durable
	fStats      byte = 15 // coordinator -> joiner: ship your telemetry delta
	fStatsReply byte = 16 // joiner -> coordinator: one NodeStats delta record
)

const (
	frameLenSize = 4
	frameCRCSize = 4
	// maxFrameBody bounds what a length prefix may claim. Envelope
	// batches and section chunks are sized well below this; anything
	// larger is hostile or corrupt.
	maxFrameBody = 1 << 20
)

// newFrame starts a frame body for the given type with room for the
// length prefix that sealFrame will fill in.
func newFrame(typ byte) []byte {
	b := make([]byte, frameLenSize, 256)
	return append(b, typ)
}

// sealFrame completes a frame started by newFrame (or any slice whose
// first frameLenSize bytes are reserved): it writes the length prefix
// and appends the body CRC, returning the ready-to-write frame.
func sealFrame(b []byte) []byte {
	body := b[frameLenSize:]
	binary.LittleEndian.PutUint32(b[:frameLenSize], uint32(len(body)))
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(body))
}

// readFrame reads one frame and returns its body (type byte included).
// The length prefix is bounds-checked before any allocation, the buffer
// grows only as payload bytes actually arrive, and a CRC mismatch is an
// error wrapping errCRCMismatch — recoverable by reading on, unlike
// every other error, on which the caller must kill the connection.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [frameLenSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	if n < 1 || n > maxFrameBody {
		return nil, fmt.Errorf("tcp: frame length %d outside [1, %d]", n, maxFrameBody)
	}
	body := make([]byte, 0, presizeCap(n, 1))
	for len(body) < n {
		body = growEarned(body, 1, n)
		take := cap(body) - len(body)
		if take > n-len(body) {
			take = n - len(body)
		}
		k, err := io.ReadFull(r, body[len(body):len(body)+take])
		body = body[:len(body)+k]
		if err != nil {
			return nil, fmt.Errorf("tcp: frame body truncated at %d/%d bytes: %w", len(body), n, err)
		}
	}
	var crc [frameCRCSize]byte
	if _, err := io.ReadFull(r, crc[:]); err != nil {
		return nil, fmt.Errorf("tcp: frame crc truncated: %w", err)
	}
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(crc[:]); got != want {
		return nil, fmt.Errorf("%w: computed %#x, wire says %#x", errCRCMismatch, got, want)
	}
	return body, nil
}

// presizeCap and growEarned are the repo-wide hostile-length allocation
// clamps (see internal/graph's snapshot decoder for the contract): an
// upfront allocation from a decoded size is capped at a fixed byte
// budget, and growth beyond it is earned by bytes actually delivered.
func presizeCap(want, entryBytes int) int {
	const maxUpfront = 4 << 20
	if want < 0 {
		return 0
	}
	if want > maxUpfront/entryBytes {
		return maxUpfront / entryBytes
	}
	return want
}

func growEarned[T any](s []T, need, want int) []T {
	if len(s)+need <= cap(s) {
		return s
	}
	newCap := 4 * cap(s)
	if newCap < len(s)+need {
		newCap = len(s) + need
	}
	if want > len(s)+need && newCap > want {
		newCap = want
	}
	out := make([]T, len(s), newCap)
	copy(out, s)
	return out
}
