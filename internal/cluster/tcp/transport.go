package tcp

import (
	"bufio"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"graphabcd/internal/cluster"
	"graphabcd/internal/obslog"
	"graphabcd/internal/telemetry"
)

// Options tunes a Transport. The zero value is usable.
type Options struct {
	// Telemetry, when non-nil, gets live wire gauges registered on Bind:
	// wire_bytes_sent, wire_frames_sent, wire_bytes_recv,
	// wire_frames_recv, wire_reconnects, wire_drops.
	Telemetry *telemetry.Registry
	// DialBackoff is the initial redial delay after a failed connect;
	// it doubles per attempt up to 64x. Default 2ms.
	DialBackoff time.Duration
	// QueueDepth is the per-destination outbound frame queue. A full
	// queue drops the frame (the engine's retry loop re-sends).
	// Default 256.
	QueueDepth int
	// CoalesceMax caps how many queued frames one writer flush batches
	// into a single syscall. Default 64.
	CoalesceMax int
	// SocketBuffer, when positive, caps the kernel send/receive
	// buffers on every connection. Backpressure can only pace the
	// engine as far as the kernel lets it: on a lossy path where
	// connections die (and their buffered bytes with them), large
	// autotuned buffers let senders run megabytes ahead of what the
	// receiver will ever apply. 0 keeps the OS default.
	SocketBuffer int

	// The fields below tune the dist node runtime riding on this
	// transport (Serve/Join), not the sockets themselves; the transport
	// ignores them. They live here so a joiner can opt into the
	// observability plane through Join's existing Options parameter.

	// Cluster is the coordinator's merged telemetry sink; nil disables
	// fStats aggregation rounds. Joiners leave it nil — they only ship
	// deltas when asked.
	Cluster *telemetry.ClusterStats
	// StatsEvery is the coordinator's aggregation period (default 500ms
	// when Cluster is set).
	StatsEvery time.Duration
	// Health, when non-nil, tracks the node's readiness transitions for
	// the /readyz endpoint.
	Health *telemetry.Health
}

func (o Options) statsEvery() time.Duration {
	if o.StatsEvery <= 0 {
		return 500 * time.Millisecond
	}
	return o.StatsEvery
}

func (o Options) dialBackoff() time.Duration {
	if o.DialBackoff <= 0 {
		return 2 * time.Millisecond
	}
	return o.DialBackoff
}

func (o Options) queueDepth() int {
	if o.QueueDepth <= 0 {
		return 256
	}
	return o.QueueDepth
}

func (o Options) coalesceMax() int {
	if o.CoalesceMax <= 0 {
		return 64
	}
	return o.CoalesceMax
}

// WireStats is a point-in-time snapshot of a Transport's socket-level
// counters.
type WireStats struct {
	BytesSent, FramesSent int64
	BytesRecv, FramesRecv int64
	// Reconnects counts successful dials that replaced an earlier
	// connection to the same peer (initial connects are not reconnects).
	Reconnects int64
	// Drops counts envelopes abandoned at this layer: queue overflow
	// plus batches discarded on a write error. The engine's unacked
	// retry path re-sends every one of them.
	Drops int64
	// CRCDrops counts frames discarded for a checksum mismatch. The
	// stream stays frame-aligned through these, so only the damaged
	// frame is lost, not the connection.
	CRCDrops int64
	// DecodeErrors counts connections killed by stream desync: a
	// framing error or an envelope that failed to decode.
	DecodeErrors int64
	// QueueHighWater is the deepest outbound data queue observed at
	// enqueue time across all links — a watermark, not a counter. A
	// value near QueueDepth means workers spent time blocked on wire
	// backpressure.
	QueueHighWater int64
}

// link is the outbound side toward one destination node, drained by a
// dedicated writer goroutine that owns the connection and its
// redial/backoff state. Data and acks travel in separate queues: data
// enqueues with blocking backpressure so workers pace themselves to
// wire speed, while acks enqueue without ever blocking — an applier
// that had to wait for its own outbound queue while that queue's drain
// depended on the peer's applier doing the same would deadlock the
// ring, so acks get a reserved, drop-on-full lane with writer priority.
type link struct {
	addr      string
	dataQ     chan []byte
	ackQ      chan []byte
	everConn  bool // a connection has succeeded before (writer-local use)
	writeConn atomic.Pointer[net.TCPConn]
}

// Transport is a real-socket cluster.Transport. Each node of the cluster
// has a TCP address; the processes hosting a node pass its listener, and
// every process dials the full address list. Envelopes are length-prefix
// framed with a CRC over the body, coalesced into batched writes, and
// dropped (never blocked on) when a peer is unreachable — the engine's
// at-least-once retry layer turns those drops into delayed delivery.
type Transport struct {
	addrs     []string
	listeners []net.Listener // sparse: non-nil where this process hosts the node
	opts      Options

	deliver  func(int, cluster.Envelope)
	numNodes int
	links    []*link

	done  chan struct{}
	shut  atomic.Bool
	bound atomic.Bool
	wg    sync.WaitGroup

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	bytesSent, framesSent atomic.Int64
	bytesRecv, framesRecv atomic.Int64
	reconnects            atomic.Int64
	drops                 atomic.Int64
	crcDrops              atomic.Int64
	decodeErrors          atomic.Int64
	queueHighWater        atomic.Int64
}

var _ cluster.Transport = (*Transport)(nil)
var _ cluster.FaultCounter = (*Transport)(nil)

// New builds a Transport over an address list (one entry per cluster
// node, in node-id order) and the listeners this process hosts, sparse
// in the same order. Ownership of the listeners passes to the Transport;
// Close closes them.
func New(listeners []net.Listener, addrs []string, opts Options) *Transport {
	t := &Transport{
		addrs:     addrs,
		listeners: listeners,
		opts:      opts,
		done:      make(chan struct{}),
		conns:     make(map[net.Conn]struct{}),
	}
	t.links = make([]*link, len(addrs))
	for i, a := range addrs {
		t.links[i] = &link{addr: a,
			dataQ: make(chan []byte, opts.queueDepth()),
			ackQ:  make(chan []byte, 4*opts.queueDepth()),
		}
	}
	return t
}

// NewLoopback hosts all n nodes in this process on 127.0.0.1 ephemeral
// ports: every envelope still crosses a real TCP socket. Intended for
// tests and single-machine experiments.
func NewLoopback(n int, opts Options) (*Transport, error) {
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range listeners[:i] {
				_ = l.Close()
			}
			return nil, err
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	return New(listeners, addrs, opts), nil
}

// Addrs returns the cluster's address list, in node-id order.
func (t *Transport) Addrs() []string { return t.addrs }

// Bind starts the accept loops and one writer per destination. numNodes
// must match the address list the Transport was built with.
func (t *Transport) Bind(numNodes int, deliver func(int, cluster.Envelope)) {
	if numNodes != len(t.addrs) {
		panic("tcp: Bind numNodes does not match the transport's address list")
	}
	if !t.bound.CompareAndSwap(false, true) {
		panic("tcp: Bind called twice")
	}
	t.numNodes = numNodes
	t.deliver = deliver
	for node, ln := range t.listeners {
		if ln == nil {
			continue
		}
		t.wg.Add(1)
		go t.acceptLoop(node, ln)
	}
	for _, l := range t.links {
		t.wg.Add(1)
		go t.writer(l)
	}
	if reg := t.opts.Telemetry; reg != nil {
		gauge := func(c *atomic.Int64) func() float64 {
			return func() float64 { return float64(c.Load()) }
		}
		reg.RegisterGauge("wire_bytes_sent", gauge(&t.bytesSent))
		reg.RegisterGauge("wire_frames_sent", gauge(&t.framesSent))
		reg.RegisterGauge("wire_bytes_recv", gauge(&t.bytesRecv))
		reg.RegisterGauge("wire_frames_recv", gauge(&t.framesRecv))
		reg.RegisterGauge("wire_reconnects", gauge(&t.reconnects))
		reg.RegisterGauge("wire_drops", gauge(&t.drops))
		reg.RegisterGauge("wire_queue_high_water", gauge(&t.queueHighWater))
	}
}

// Send frames e and enqueues it toward node to. A data envelope meeting
// a full destination queue blocks until the writer frees a slot — that
// wait is the backpressure pacing workers (and the retry loop) to wire
// speed. The wait cannot become a hang: the writer drains its queue
// even while the peer is unreachable, discarding frames for the
// engine's retry accounting to re-send. An ack never blocks: it rides
// the reserved ack lane, and on the rare overflow is dropped (the
// peer's retry of the data batch re-earns it).
func (t *Transport) Send(from, to int, e cluster.Envelope) {
	if t.shut.Load() || to < 0 || to >= len(t.links) {
		return
	}
	b := make([]byte, frameLenSize, frameLenSize+1+cluster.EnvelopeWireSize(e)+frameCRCSize) //abcdlint:ignore hotalloc,hotpath -- one frame buffer per envelope batch, amortized over BatchSize slot updates
	b = append(b, fEnvelope)
	b = cluster.AppendEnvelope(b, e) //abcdlint:ignore hotpath -- marshal into the per-batch frame buffer, amortized over BatchSize slot updates
	b = sealFrame(b)                 //abcdlint:ignore hotpath -- crc + length fixup once per batch frame
	l := t.links[to]
	if e.IsAck() {
		select {
		case l.ackQ <- b:
		default:
			t.drops.Add(1)
		}
		return
	}
	if depth := int64(len(l.dataQ)) + 1; depth > t.queueHighWater.Load() {
		// Racy max (two senders may both store), but the watermark only
		// ever moves up and an off-by-one-frame reading is harmless.
		t.queueHighWater.Store(depth)
	}
	select {
	case l.dataQ <- b:
	case <-t.done:
	}
}

// Close stops delivery: listeners and connections are shut down, writer
// and reader goroutines are joined, and any in-flight deliver call has
// returned by the time Close does.
func (t *Transport) Close() {
	if !t.shut.CompareAndSwap(false, true) {
		return
	}
	close(t.done)
	for _, ln := range t.listeners {
		if ln != nil {
			_ = ln.Close()
		}
	}
	for _, l := range t.links {
		if c := l.writeConn.Load(); c != nil {
			_ = c.Close()
		}
	}
	t.connMu.Lock()
	for c := range t.conns {
		_ = c.Close()
	}
	t.connMu.Unlock()
	if t.bound.Load() {
		t.wg.Wait()
	}
}

// FaultCounts folds this layer's losses into cluster.Stats: everything
// dropped here is re-sent by the engine, and TCP never duplicates.
func (t *Transport) FaultCounts() (dropped, duplicated int64) {
	return t.drops.Load(), 0
}

// WireStats snapshots the socket-level counters.
func (t *Transport) WireStats() WireStats {
	return WireStats{
		BytesSent: t.bytesSent.Load(), FramesSent: t.framesSent.Load(),
		BytesRecv: t.bytesRecv.Load(), FramesRecv: t.framesRecv.Load(),
		Reconnects:     t.reconnects.Load(),
		Drops:          t.drops.Load(),
		CRCDrops:       t.crcDrops.Load(),
		DecodeErrors:   t.decodeErrors.Load(),
		QueueHighWater: t.queueHighWater.Load(),
	}
}

// CutConns force-closes every currently established connection, send and
// receive side, without stopping the transport — the reconnect path must
// bring the cluster back. Test hook for the reconnect suite.
func (t *Transport) CutConns() {
	for _, l := range t.links {
		if c := l.writeConn.Load(); c != nil {
			_ = c.Close()
		}
	}
	t.connMu.Lock()
	for c := range t.conns {
		_ = c.Close()
	}
	t.connMu.Unlock()
}

// track registers conn for Close-time teardown. It reports false when
// the transport already shut down, in which case the caller must close
// conn itself.
func (t *Transport) track(conn net.Conn) bool {
	t.connMu.Lock()
	defer t.connMu.Unlock()
	if t.shut.Load() {
		return false
	}
	t.conns[conn] = struct{}{}
	return true
}

func (t *Transport) acceptLoop(node int, ln net.Listener) {
	defer t.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed by Close
		}
		if !t.track(conn) { // Close raced the accept
			_ = conn.Close()
			return
		}
		if sb := t.opts.SocketBuffer; sb > 0 {
			if tc, ok := conn.(*net.TCPConn); ok {
				_ = tc.SetReadBuffer(sb)
			}
		}
		t.wg.Add(1)
		go t.readLoop(node, conn)
	}
}

// readLoop decodes envelope frames off one accepted connection and
// injects them into node's inbox. Any framing, CRC, or decode error
// kills the connection; the peer's writer redials.
func (t *Transport) readLoop(node int, conn net.Conn) {
	defer func() {
		_ = conn.Close()
		t.connMu.Lock()
		delete(t.conns, conn)
		t.connMu.Unlock()
		t.wg.Done()
	}()
	br := bufio.NewReaderSize(conn, 64<<10)
	for {
		body, err := readFrame(br)
		if errors.Is(err, errCRCMismatch) {
			// Damaged but frame-aligned: lose the frame, keep the
			// connection (and everything buffered behind it). The
			// sender's retry accounting re-earns the lost envelope.
			t.crcDrops.Add(1)
			obslog.L().Warn("frame dropped on crc mismatch",
				"event", "wire.crc_drop", "node", node, "err", err)
			continue
		}
		if err != nil {
			if !errors.Is(err, io.EOF) && !t.shut.Load() {
				t.decodeErrors.Add(1)
				obslog.L().Warn("connection killed on stream desync",
					"event", "wire.desync", "node", node, "err", err)
			}
			return
		}
		t.bytesRecv.Add(int64(len(body) + frameLenSize + frameCRCSize))
		t.framesRecv.Add(1)
		if body[0] != fEnvelope {
			t.decodeErrors.Add(1)
			return
		}
		e, err := cluster.DecodeEnvelope(body[1:])
		if err != nil || e.From() < 0 || e.From() >= t.numNodes {
			t.decodeErrors.Add(1)
			return
		}
		if t.shut.Load() {
			return
		}
		t.deliver(node, e)
	}
}

// writer drains one link's queue into its connection, coalescing every
// queued frame at flush time into a single buffered write. It owns the
// dial/redial lifecycle for the link — and it never stops draining:
// while the peer is unreachable (dial failing, next attempt gated by
// the backoff) queued frames are discarded so that Send's blocking
// backpressure can never turn into a hang on a dead peer. The engine's
// retry accounting re-sends everything discarded here.
func (t *Transport) writer(l *link) {
	defer t.wg.Done()
	var conn *net.TCPConn
	var bw *bufio.Writer
	var nextDial time.Time
	backoff := t.opts.dialBackoff()
	maxBackoff := 64 * t.opts.dialBackoff()
	batch := make([][]byte, 0, t.opts.coalesceMax())
	for {
		batch = batch[:0]
		select {
		case <-t.done:
			return
		case f := <-l.ackQ:
			batch = append(batch, f)
		case f := <-l.dataQ:
			batch = append(batch, f)
		}
		// Coalesce whatever else is queued, acks first: they unblock the
		// peer's retry accounting and must never sit behind bulk data.
	ackDrain:
		for len(batch) < cap(batch) {
			select {
			case f := <-l.ackQ:
				batch = append(batch, f)
			default:
				break ackDrain
			}
		}
	coalesce:
		for len(batch) < cap(batch) {
			select {
			case f := <-l.dataQ:
				batch = append(batch, f)
			default:
				break coalesce
			}
		}
		if conn == nil {
			if !nextDial.IsZero() && time.Now().Before(nextDial) {
				t.drops.Add(int64(len(batch)))
				continue
			}
			conn = t.dialLink(l)
			if conn == nil {
				if t.shut.Load() {
					return
				}
				nextDial = time.Now().Add(backoff)
				if backoff < maxBackoff {
					backoff *= 2
				}
				t.drops.Add(int64(len(batch)))
				continue
			}
			backoff = t.opts.dialBackoff()
			nextDial = time.Time{}
			bw = bufio.NewWriterSize(conn, 64<<10)
		}
		var err error
		var nb int
		for _, f := range batch {
			if _, err = bw.Write(f); err != nil {
				break
			}
			nb += len(f)
		}
		if err == nil {
			err = bw.Flush()
		}
		if err != nil {
			_ = conn.Close()
			l.writeConn.Store(nil)
			conn = nil
			// The batch is gone; the engine's unacked bookkeeping
			// re-sends every envelope in it after its retry backoff.
			t.drops.Add(int64(len(batch)))
			continue
		}
		t.bytesSent.Add(int64(nb))
		t.framesSent.Add(int64(len(batch)))
	}
}

// dialLink makes one connection attempt to l's peer. A success that
// follows any earlier established connection counts as a reconnect; a
// failure returns nil and leaves the backoff pacing to the writer.
func (t *Transport) dialLink(l *link) *net.TCPConn {
	d := net.Dialer{Timeout: time.Second}
	conn, err := d.Dial("tcp", l.addr)
	if err != nil {
		return nil
	}
	if l.everConn {
		t.reconnects.Add(1)
		obslog.L().Info("peer connection re-established",
			"event", "wire.reconnect", "peer", l.addr)
	}
	l.everConn = true
	tc := conn.(*net.TCPConn)
	if sb := t.opts.SocketBuffer; sb > 0 {
		_ = tc.SetWriteBuffer(sb)
	}
	l.writeConn.Store(tc)
	if t.shut.Load() { // Close raced the dial
		_ = tc.Close()
		return nil
	}
	return tc //abcdlint:ignore publish -- the store only exposes Close to the shutdown path; this writer goroutine stays the sole user of the conn's write side
}
