// Distributed checkpoint/resume: a cluster interrupted mid-run must
// restart from its last committed epoch and land on the same fixed
// point an uninterrupted run reaches, and a manifest that does not
// match the restarting cluster must be refused before any joiner is
// assigned.
package tcp_test

import (
	"bufio"
	"context"
	"math"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"graphabcd/internal/bcd"
	"graphabcd/internal/checkpoint"
	"graphabcd/internal/cluster/tcp"
)

// TestDistCheckpointResumePageRank interrupts a two-node PageRank run
// as soon as its first checkpoint epoch commits, then resumes a fresh
// cluster from that epoch and requires convergence to the reference
// ranks — the distributed edition of the single-process kill-and-resume
// equivalence test.
func TestDistCheckpointResumePageRank(t *testing.T) {
	if testing.Short() {
		t.Skip("PageRank over loopback is the slow dist run; the refusal test covers the plan layer in -short")
	}
	g, snap := distGraphFile(t, 97)
	ckdir := filepath.Join(t.TempDir(), "ckpt")
	cfg := distConfig(2, "pr")
	cfg.Epsilon = 1e-12
	cfg.CheckpointDir = ckdir
	cfg.CheckpointInterval = 2 * time.Millisecond

	// Segment 1: run until one checkpoint commits, then cancel the whole
	// cluster. The cancellation may land mid-checkpoint-round, leaving a
	// newer torn epoch alongside the committed one — resume must land on
	// the committed manifest regardless.
	ctrl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	serveCh := make(chan error, 1)
	joinCh := make(chan error, 1)
	go func() {
		_, err := tcp.Serve(ctx, ctrl, snap, cfg)
		serveCh <- err
	}()
	go func() {
		joinCh <- tcp.Join(ctx, ctrl.Addr().String(), tcp.Options{})
	}()
	store, err := checkpoint.NewDirStore(ckdir)
	if err != nil {
		t.Fatal(err)
	}
	var committed *checkpoint.Manifest
	for deadline := time.Now().Add(time.Minute); time.Now().Before(deadline); {
		if m, err := store.Latest(); err == nil {
			committed = m
			break
		}
		time.Sleep(time.Millisecond)
	}
	if committed == nil {
		t.Fatal("no checkpoint epoch committed within a minute")
	}
	cancel()
	// Both processes die however the cancellation caught them; only the
	// committed epoch matters from here on.
	<-serveCh
	<-joinCh
	_ = ctrl.Close()

	// Segment 2: a fresh cluster resumed from the committed epoch must
	// converge to the reference fixed point.
	resumed := cfg
	resumed.Resume = "latest"
	res := runDistLoopback(t, snap, resumed)
	want := bcd.RefPageRank(g, 0.85, 1e-13, 1000)
	for v := range want {
		if d := math.Abs(res.Float[v] - want[v]); d > 1e-7 {
			t.Fatalf("resumed rank[%d] off by %g", v, d)
		}
	}
	// The resumed run keeps checkpointing under the adopted run id, so
	// the store's newest manifest must now be a later epoch of the same
	// run — or at minimum the original commit must still be loadable.
	m, err := store.Load(committed.RunID)
	if err != nil {
		t.Fatalf("committed run id vanished after resume: %v", err)
	}
	if m.Epoch < committed.Epoch {
		t.Fatalf("manifest epoch went backwards: %d after resuming from %d", m.Epoch, committed.Epoch)
	}
}

// startCoordProcess launches the built binary as a two-node PageRank
// coordinator and scrapes the control address it announces.
func startCoordProcess(t *testing.T, bin, snap, ckdir, valuesPath string, resume bool) (*exec.Cmd, string) {
	t.Helper()
	args := []string{
		"-algo", "pr", "-graph", snap, "-nodes", "2", "-eps", "1e-12",
		"-listen", "127.0.0.1:0", "-values-out", valuesPath,
		"-ckpt-dir", ckdir, "-ckpt-interval", "5ms",
		"-timeout", "2m",
	}
	if resume {
		args = append(args, "-resume", "latest")
	}
	coord := exec.Command(bin, args...)
	stdout, err := coord.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	coord.Stderr = os.Stderr
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = coord.Process.Kill() })
	var addr string
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, " nodes on "); strings.HasPrefix(line, "coordinating") && i >= 0 {
			addr = strings.Fields(line[i+len(" nodes on "):])[0]
			break
		}
	}
	if addr == "" {
		t.Fatalf("coordinator never announced its address: %v", sc.Err())
	}
	go func() { // drain so the coordinator never blocks on a full pipe
		for sc.Scan() {
		}
	}()
	return coord, addr
}

// TestDistTwoProcessKillAndResume is the acceptance crash: a real
// two-process -listen/-join run is SIGKILLed once its first checkpoint
// epoch commits, then a fresh two-process cluster with -resume latest
// must pick the run up and converge to the reference ranks.
func TestDistTwoProcessKillAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the full binary four times; the loopback suite covers the protocol in -short")
	}
	root, err := filepath.Abs("../../..")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "graphabcd")
	build := exec.Command("go", "build", "-o", bin, "./cmd/graphabcd")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building binary: %v\n%s", err, out)
	}
	g, snap := distGraphFile(t, 99)
	ckdir := filepath.Join(dir, "ckpt")
	valuesPath := filepath.Join(dir, "values.txt")

	// Crash segment: SIGKILL both processes the moment a checkpoint epoch
	// commits — mid-flight batches, possibly mid-checkpoint-round.
	coord, addr := startCoordProcess(t, bin, snap, ckdir, valuesPath, false)
	joiner := exec.Command(bin, "-join", addr, "-timeout", "2m")
	joiner.Stdout, joiner.Stderr = os.Stderr, os.Stderr
	if err := joiner.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = joiner.Process.Kill() })
	store, err := checkpoint.NewDirStore(ckdir)
	if err != nil {
		t.Fatal(err)
	}
	var committed *checkpoint.Manifest
	for deadline := time.Now().Add(time.Minute); time.Now().Before(deadline); {
		if m, err := store.Latest(); err == nil {
			committed = m
			break
		}
		time.Sleep(time.Millisecond)
	}
	if committed == nil {
		t.Fatal("no checkpoint epoch committed within a minute")
	}
	_ = coord.Process.Kill() // SIGKILL: no shutdown path runs
	_ = joiner.Process.Kill()
	_ = coord.Wait()
	_ = joiner.Wait()

	// Resume segment: a fresh cluster restarts from the committed epoch.
	coord2, addr2 := startCoordProcess(t, bin, snap, ckdir, valuesPath, true)
	join2, err := exec.Command(bin, "-join", addr2, "-timeout", "2m").CombinedOutput()
	if err != nil {
		t.Fatalf("resumed joiner: %v\n%s", err, join2)
	}
	if err := coord2.Wait(); err != nil {
		t.Fatalf("resumed coordinator: %v", err)
	}
	raw, err := os.ReadFile(valuesPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	want := bcd.RefPageRank(g, 0.85, 1e-13, 1000)
	if len(lines) != len(want) {
		t.Fatalf("values file has %d lines, want %d", len(lines), len(want))
	}
	for v, line := range lines {
		got, err := strconv.ParseFloat(line, 64)
		if err != nil {
			t.Fatalf("values line %d %q: %v", v, line, err)
		}
		if d := math.Abs(got - want[v]); d > 1e-7 {
			t.Fatalf("rank[%d] from the resumed run off by %g", v, d)
		}
	}
}

// TestDistResumeRefusesMismatchedManifest fabricates committed manifests
// whose identity does not match the restarting cluster and requires
// Serve to refuse each before accepting a single joiner.
func TestDistResumeRefusesMismatchedManifest(t *testing.T) {
	_, snap := distGraphFile(t, 98)
	ckdir := t.TempDir()
	store, err := checkpoint.NewDirStore(ckdir)
	if err != nil {
		t.Fatal(err)
	}
	// A manifest claiming a different program, node count, and graph than
	// this snapshot's two-node cc run.
	if err := store.Commit(&checkpoint.Manifest{
		RunID: "other", Epoch: 3, Nodes: 2, Program: "pr",
		GraphDigest: "deadbeefdeadbeef", ConfigHash: "feedfacefeedface",
		NumVertices: 512, NumBlocks: 16, SavedUnixMs: 1,
	}); err != nil {
		t.Fatal(err)
	}
	ctrl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ctrl.Close() }()
	serve := func(mutate func(*tcp.DistConfig)) error {
		cfg := distConfig(2, "cc")
		cfg.CheckpointDir = ckdir
		cfg.Resume = "other"
		mutate(&cfg)
		_, err := tcp.Serve(context.Background(), ctrl, snap, cfg)
		return err
	}
	cases := []struct {
		name   string
		mutate func(*tcp.DistConfig)
		want   string
	}{
		{"program", func(c *tcp.DistConfig) {}, "program mismatch"},
		{"nodes", func(c *tcp.DistConfig) { c.Algo = "pr"; c.Nodes = 3 }, "nodes"},
		{"shape", func(c *tcp.DistConfig) { c.Algo = "pr"; c.BlockSize = 64 }, "shape"},
		{"digest", func(c *tcp.DistConfig) { c.Algo = "pr"; c.BlockSize = 32 }, "digest"},
		{"no dir", func(c *tcp.DistConfig) { c.CheckpointDir = "" }, "CheckpointDir"},
		{"unknown run", func(c *tcp.DistConfig) { c.Resume = "no-such-run" }, "no committed checkpoint"},
	}
	for _, tc := range cases {
		err := serve(tc.mutate)
		if err == nil {
			t.Fatalf("%s: Serve accepted a mismatched resume", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}
