// Control-plane protocol for the -listen/-join distributed runtime: the
// coordinator accepts one control connection per joiner and drives the
// whole run over it — join, assignment, graph section distribution,
// start, quiescence probing, and value collection. Every message is one
// frame (frame.go); payload layouts are fixed-width little-endian like
// the envelope codec in internal/cluster/wire.go.
package tcp

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"math"
	"net"
	"time"

	"graphabcd/internal/checkpoint"
)

// Distributed-graph sanity bounds: a coordinator is operator-provided,
// not hostile, but its header still caps what a joiner will allocate.
const (
	maxDistVertices = 1 << 31
	maxDistEdges    = 1 << 35
	maxDistNodes    = 1 << 12
	maxCtrlAddr     = 256
)

// Section ids carried in fSection frames, in coordinator send order.
const (
	secDistInOff byte = iota
	secDistInSrc
	secDistInW
	secDistOutOff
	secDistOutDst
	secDistOutPos
	numDistSections
)

// Algorithm codes carried in fAssign.
const (
	algoPR byte = iota + 1
	algoSSSP
	algoBFS
	algoCC
)

func algoCode(name string) (byte, error) {
	switch name {
	case "pr":
		return algoPR, nil
	case "sssp":
		return algoSSSP, nil
	case "bfs":
		return algoBFS, nil
	case "cc":
		return algoCC, nil
	}
	return 0, fmt.Errorf("tcp: algorithm %q does not support distributed mode (pick pr, sssp, bfs, or cc)", name)
}

func algoName(code byte) string {
	switch code {
	case algoPR:
		return "pr"
	case algoSSSP:
		return "sssp"
	case algoBFS:
		return "bfs"
	case algoCC:
		return "cc"
	}
	return fmt.Sprintf("algo%d", code)
}

// ctrlConn is one buffered control connection; reads and writes are
// whole frames.
type ctrlConn struct {
	c  net.Conn
	br *bufio.Reader
	bw *bufio.Writer
}

func newCtrlConn(c net.Conn) *ctrlConn {
	return &ctrlConn{c: c, br: bufio.NewReaderSize(c, 64<<10), bw: bufio.NewWriterSize(c, 64<<10)}
}

func (cc *ctrlConn) write(frame []byte) error {
	if _, err := cc.bw.Write(sealFrame(frame)); err != nil {
		return err
	}
	return cc.bw.Flush()
}

// read returns the next frame body. An fError frame is surfaced as an
// error carrying the peer's message — the protocol's failure channel.
func (cc *ctrlConn) read() ([]byte, error) {
	body, err := readFrame(cc.br)
	if err != nil {
		return nil, err
	}
	if body[0] == fError {
		return nil, fmt.Errorf("tcp: peer failed: %s", string(body[1:]))
	}
	return body, nil
}

// expect reads the next frame and requires the given type.
func (cc *ctrlConn) expect(typ byte) ([]byte, error) {
	body, err := cc.read()
	if err != nil {
		return nil, err
	}
	if body[0] != typ {
		return nil, fmt.Errorf("tcp: control protocol desync: frame type %d, want %d", body[0], typ)
	}
	return body, nil
}

// sendError best-effort reports a fatal error to the peer before the
// connection dies.
func (cc *ctrlConn) sendError(err error) {
	f := newFrame(fError)
	f = append(f, err.Error()...)
	_ = cc.write(f)
}

// distAssign is the coordinator's complete run description for one
// joiner: identity, topology, algorithm, engine tuning, and the data
// addresses of every node.
type distAssign struct {
	node, nodes    int
	n, m           int
	blockSize      int
	workersPerNode int
	batchSize      int
	maxUnacked     int
	algo           byte
	source         uint32
	epsilon        float64
	retryBase      time.Duration
	retryDeadline  time.Duration
	// Checkpoint plan. ckptDir names a store directory every node can
	// reach (the protocol assumes a shared filesystem); empty disables
	// checkpointing. resumeEpoch > 0 restores that committed epoch before
	// the run starts, and seqBase then seeds every node's envelope
	// sequence above every stamp the restored state can hold, so the
	// staleness filter never drops a fresh post-resume write.
	ckptDir      string
	ckptRunID    string
	ckptInterval time.Duration
	resumeEpoch  uint64
	seqBase      uint64
	addrs        []string
}

// maxCtrlDir bounds the checkpoint directory path in an assignment.
const maxCtrlDir = 4096

func appendAssign(f []byte, a distAssign) []byte {
	f = binary.LittleEndian.AppendUint32(f, uint32(a.node))
	f = binary.LittleEndian.AppendUint32(f, uint32(a.nodes))
	f = binary.LittleEndian.AppendUint64(f, uint64(a.n))
	f = binary.LittleEndian.AppendUint64(f, uint64(a.m))
	f = binary.LittleEndian.AppendUint32(f, uint32(a.blockSize))
	f = binary.LittleEndian.AppendUint32(f, uint32(a.workersPerNode))
	f = binary.LittleEndian.AppendUint32(f, uint32(a.batchSize))
	f = binary.LittleEndian.AppendUint32(f, uint32(int32(a.maxUnacked)))
	f = append(f, a.algo)
	f = binary.LittleEndian.AppendUint32(f, a.source)
	f = binary.LittleEndian.AppendUint64(f, uint64(int64(a.retryBase)))
	f = binary.LittleEndian.AppendUint64(f, uint64(int64(a.retryDeadline)))
	f = binary.LittleEndian.AppendUint64(f, floatBits(a.epsilon))
	f = binary.LittleEndian.AppendUint64(f, uint64(int64(a.ckptInterval)))
	f = binary.LittleEndian.AppendUint64(f, a.resumeEpoch)
	f = binary.LittleEndian.AppendUint64(f, a.seqBase)
	f = binary.LittleEndian.AppendUint16(f, uint16(len(a.ckptDir)))
	f = append(f, a.ckptDir...)
	f = binary.LittleEndian.AppendUint16(f, uint16(len(a.ckptRunID)))
	f = append(f, a.ckptRunID...)
	for _, addr := range a.addrs {
		f = binary.LittleEndian.AppendUint16(f, uint16(len(addr)))
		f = append(f, addr...)
	}
	return f
}

func floatBits(v float64) uint64 { return math.Float64bits(v) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }

// decodeAssign parses and validates an fAssign body (type byte removed).
// Every decoded size is range-checked here, at the boundary, before any
// downstream code allocates from it.
func decodeAssign(b []byte) (distAssign, error) {
	var a distAssign
	const fixed = 4 + 4 + 8 + 8 + 4 + 4 + 4 + 4 + 1 + 4 + 8 + 8 + 8 + 8 + 8 + 8
	if len(b) < fixed {
		return a, fmt.Errorf("tcp: assign frame %d bytes, want at least %d", len(b), fixed)
	}
	a.node = int(binary.LittleEndian.Uint32(b[0:]))
	a.nodes = int(binary.LittleEndian.Uint32(b[4:]))
	a.n = int(binary.LittleEndian.Uint64(b[8:]))
	a.m = int(binary.LittleEndian.Uint64(b[16:]))
	a.blockSize = int(binary.LittleEndian.Uint32(b[24:]))
	a.workersPerNode = int(binary.LittleEndian.Uint32(b[28:]))
	a.batchSize = int(binary.LittleEndian.Uint32(b[32:]))
	a.maxUnacked = int(int32(binary.LittleEndian.Uint32(b[36:]))) // signed: negative means unbounded
	a.algo = b[40]
	a.source = binary.LittleEndian.Uint32(b[41:])
	a.retryBase = time.Duration(binary.LittleEndian.Uint64(b[45:]))
	a.retryDeadline = time.Duration(binary.LittleEndian.Uint64(b[53:]))
	a.epsilon = bitsFloat(binary.LittleEndian.Uint64(b[61:]))
	a.ckptInterval = time.Duration(binary.LittleEndian.Uint64(b[69:]))
	a.resumeEpoch = binary.LittleEndian.Uint64(b[77:])
	a.seqBase = binary.LittleEndian.Uint64(b[85:])
	switch {
	case a.nodes < 1 || a.nodes > maxDistNodes:
		return a, fmt.Errorf("tcp: assign nodes %d outside [1, %d]", a.nodes, maxDistNodes)
	case a.node < 0 || a.node >= a.nodes:
		return a, fmt.Errorf("tcp: assign node id %d outside [0, %d)", a.node, a.nodes)
	case a.n < 1 || a.n > maxDistVertices:
		return a, fmt.Errorf("tcp: assign vertex count %d outside [1, %d]", a.n, maxDistVertices)
	case a.m < 0 || a.m > maxDistEdges:
		return a, fmt.Errorf("tcp: assign edge count %d outside [0, %d]", a.m, maxDistEdges)
	case a.blockSize < 1 || a.blockSize > a.n:
		return a, fmt.Errorf("tcp: assign block size %d outside [1, %d]", a.blockSize, a.n)
	case a.workersPerNode < 1 || a.workersPerNode > 1024:
		return a, fmt.Errorf("tcp: assign workers per node %d outside [1, 1024]", a.workersPerNode)
	case a.batchSize < 1 || a.batchSize > 1<<20:
		return a, fmt.Errorf("tcp: assign batch size %d outside [1, 1<<20]", a.batchSize)
	case a.maxUnacked < -1 || a.maxUnacked > 1<<20:
		return a, fmt.Errorf("tcp: assign send window %d outside [-1, 1<<20]", a.maxUnacked)
	case a.retryBase < 0 || a.retryDeadline < 0:
		return a, fmt.Errorf("tcp: assign negative retry timing %v/%v", a.retryBase, a.retryDeadline)
	case !(a.epsilon >= 0):
		return a, fmt.Errorf("tcp: assign epsilon %g is negative or NaN", a.epsilon)
	case a.ckptInterval < 0:
		return a, fmt.Errorf("tcp: assign negative checkpoint interval %v", a.ckptInterval)
	}
	rest := b[fixed:]
	var err error
	if a.ckptDir, rest, err = takeString(rest, maxCtrlDir, "checkpoint dir"); err != nil {
		return a, err
	}
	if a.ckptRunID, rest, err = takeString(rest, 128, "checkpoint run id"); err != nil {
		return a, err
	}
	switch {
	case a.ckptRunID != "" && !checkpoint.ValidRunID(a.ckptRunID):
		return a, fmt.Errorf("tcp: assign checkpoint run id %q invalid", a.ckptRunID)
	case a.ckptDir == "" && (a.ckptRunID != "" || a.ckptInterval > 0 || a.resumeEpoch > 0):
		return a, fmt.Errorf("tcp: assign has checkpoint plan but no store directory")
	case a.resumeEpoch > 0 && a.ckptRunID == "":
		return a, fmt.Errorf("tcp: assign resumes epoch %d without a run id", a.resumeEpoch)
	}
	a.addrs = make([]string, 0, presizeCap(a.nodes, 16))
	for len(a.addrs) < a.nodes {
		if len(rest) < 2 {
			return a, fmt.Errorf("tcp: assign truncated at address %d/%d", len(a.addrs), a.nodes)
		}
		alen := int(binary.LittleEndian.Uint16(rest))
		if alen < 1 || alen > maxCtrlAddr || len(rest) < 2+alen {
			return a, fmt.Errorf("tcp: assign address %d length %d invalid", len(a.addrs), alen)
		}
		a.addrs = growEarned(a.addrs, 1, a.nodes)
		a.addrs = append(a.addrs, string(rest[2:2+alen]))
		rest = rest[2+alen:]
	}
	if len(rest) != 0 {
		return a, fmt.Errorf("tcp: assign has %d trailing bytes", len(rest))
	}
	return a, nil
}

// takeString consumes one u16-length-prefixed string from rest; empty is
// allowed, anything over maxLen is refused at the boundary.
func takeString(rest []byte, maxLen int, what string) (string, []byte, error) {
	if len(rest) < 2 {
		return "", nil, fmt.Errorf("tcp: assign truncated before %s", what)
	}
	n := int(binary.LittleEndian.Uint16(rest))
	if n > maxLen || len(rest) < 2+n {
		return "", nil, fmt.Errorf("tcp: assign %s length %d invalid", what, n)
	}
	return string(rest[2 : 2+n]), rest[2+n:], nil
}

// appendEpoch / decodeEpoch carry the u64 checkpoint epoch of fCkpt and
// fCkptAck frames.
func appendEpoch(f []byte, epoch uint64) []byte {
	return binary.LittleEndian.AppendUint64(f, epoch)
}

func decodeEpoch(b []byte) (uint64, error) {
	if len(b) != 8 {
		return 0, fmt.Errorf("tcp: checkpoint frame %d bytes, want 8", len(b))
	}
	return binary.LittleEndian.Uint64(b), nil
}

// sectionChunk is one fSection payload: a byte range of one snapshot
// section, addressed by element index so the receiver can place slices
// of the edge arrays at their owned offsets.
type sectionChunk struct {
	sec      byte
	elemBase int64
	payload  []byte
}

func appendSectionChunk(f []byte, c sectionChunk) []byte {
	f = append(f, c.sec)
	f = binary.LittleEndian.AppendUint64(f, uint64(c.elemBase))
	return append(f, c.payload...)
}

func decodeSectionChunk(b []byte) (sectionChunk, error) {
	var c sectionChunk
	if len(b) < 9 {
		return c, fmt.Errorf("tcp: section frame %d bytes, want at least 9", len(b))
	}
	c.sec = b[0]
	if c.sec >= numDistSections {
		return c, fmt.Errorf("tcp: unknown section id %d", c.sec)
	}
	c.elemBase = int64(binary.LittleEndian.Uint64(b[1:]))
	if c.elemBase < 0 {
		return c, fmt.Errorf("tcp: negative section base %d", c.elemBase)
	}
	c.payload = b[9:]
	return c, nil
}

// probeReply is one node's termination accounting snapshot: monotone
// sent/applied counters, exact inflight, and scheduler quiescence.
type probeReply struct {
	sent, applied uint64
	inflight      int64
	quiescent     bool
}

func appendProbeReply(f []byte, r probeReply) []byte {
	f = binary.LittleEndian.AppendUint64(f, r.sent)
	f = binary.LittleEndian.AppendUint64(f, r.applied)
	f = binary.LittleEndian.AppendUint64(f, uint64(r.inflight))
	q := byte(0)
	if r.quiescent {
		q = 1
	}
	return append(f, q)
}

func decodeProbeReply(b []byte) (probeReply, error) {
	var r probeReply
	if len(b) != 25 {
		return r, fmt.Errorf("tcp: probe reply %d bytes, want 25", len(b))
	}
	r.sent = binary.LittleEndian.Uint64(b[0:])
	r.applied = binary.LittleEndian.Uint64(b[8:])
	r.inflight = int64(binary.LittleEndian.Uint64(b[16:]))
	r.quiescent = b[24] == 1
	return r, nil
}

// valuesChunk is one fValues payload: a contiguous run of vertex values
// as raw codec words.
type valuesChunk struct {
	vlo   int64
	words []byte // count*codecWords little-endian u64s
}

func appendValuesChunk(f []byte, c valuesChunk) []byte {
	f = binary.LittleEndian.AppendUint64(f, uint64(c.vlo))
	return append(f, c.words...)
}

func decodeValuesChunk(b []byte) (valuesChunk, error) {
	var c valuesChunk
	if len(b) < 8 {
		return c, fmt.Errorf("tcp: values frame %d bytes, want at least 8", len(b))
	}
	c.vlo = int64(binary.LittleEndian.Uint64(b[0:]))
	if c.vlo < 0 {
		return c, fmt.Errorf("tcp: negative values base %d", c.vlo)
	}
	if len(b[8:])%8 != 0 {
		return c, fmt.Errorf("tcp: values payload %d bytes, not word-aligned", len(b[8:]))
	}
	c.words = b[8:]
	return c, nil
}
