// Convergence equivalence with every envelope crossing a real TCP
// socket: the loopback transport hosts all nodes in-process but routes
// batches and acks through the kernel's network stack, so framing, CRC,
// coalescing, and reconnect all run under the race detector here.
package tcp_test

import (
	"context"
	"math"
	"testing"
	"time"

	"graphabcd/internal/bcd"
	"graphabcd/internal/cluster"
	"graphabcd/internal/cluster/tcp"
	"graphabcd/internal/gen"
	"graphabcd/internal/graph"
	"graphabcd/internal/telemetry"
)

func tcpGraph(t *testing.T, seed uint64) *graph.Graph {
	t.Helper()
	cfg := gen.DefaultRMAT(9, 6, seed)
	cfg.MaxWeight = 16
	g, err := gen.RMAT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func tcpCfg(t *testing.T, nodes int, opts tcp.Options) (cluster.Config, *tcp.Transport) {
	t.Helper()
	tr, err := tcp.NewLoopback(nodes, opts)
	if err != nil {
		t.Fatal(err)
	}
	return cluster.Config{
		Nodes:          nodes,
		BlockSize:      32,
		WorkersPerNode: 2,
		Epsilon:        1e-12,
		BatchSize:      8,
		RetryBase:      20 * time.Millisecond,
		Transport:      tr,
	}, tr
}

func TestTCPPageRankEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("PageRank over sockets runs ~1min under the race detector; the dedicated full-suite gate step covers it")
	}
	g := tcpGraph(t, 77)
	want := bcd.RefPageRank(g, 0.85, 1e-13, 1000)
	reg := telemetry.New(telemetry.Options{})
	cfg, tr := tcpCfg(t, 3, tcp.Options{Telemetry: reg})
	cfg.Telemetry = reg
	res, err := cluster.Run[float64, float64](context.Background(), g, bcd.PageRank{}, cfg)
	if err != nil {
		t.Fatalf("%v (wire: %+v)", err, tr.WireStats())
	}
	if !res.Stats.Converged {
		t.Fatal("did not converge over TCP")
	}
	for v := range want {
		if d := math.Abs(res.Values[v] - want[v]); d > 1e-7 {
			t.Fatalf("rank[%d] off by %g over TCP", v, d)
		}
	}
	ws := tr.WireStats()
	t.Logf("wire: %+v stats: %+v", ws, res.Stats)
	if ws.FramesSent == 0 || ws.FramesRecv == 0 || ws.BytesSent == 0 {
		t.Fatalf("wire counters empty: %+v", ws)
	}
	gauges := reg.Snapshot().Gauges
	for _, name := range []string{"wire_bytes_sent", "wire_frames_sent", "wire_bytes_recv", "wire_frames_recv"} {
		if gauges[name] <= 0 {
			t.Fatalf("gauge %s = %g, want > 0 (gauges: %v)", name, gauges[name], gauges)
		}
	}
}

func TestTCPSSSPEquivalence(t *testing.T) {
	g := tcpGraph(t, 78)
	src := uint32(3)
	want := bcd.RefSSSP(g, src)
	cfg, _ := tcpCfg(t, 3, tcp.Options{})
	cfg.Epsilon = 0
	res, err := cluster.Run[float64, float64](context.Background(), g, bcd.SSSP{Source: src}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		got := res.Values[v]
		if got != want[v] && !(math.IsInf(got, 1) && math.IsInf(want[v], 1)) {
			t.Fatalf("dist[%d] = %g, want %g over TCP", v, got, want[v])
		}
	}
}

func TestTCPCCEquivalence(t *testing.T) {
	g := tcpGraph(t, 79)
	want := bcd.RefCC(g)
	cfg, _ := tcpCfg(t, 4, tcp.Options{})
	cfg.Epsilon = 0
	res, err := cluster.Run[uint64, uint64](context.Background(), g, bcd.CC{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if res.Values[v] != want[v] {
			t.Fatalf("cc[%d] = %d, want %d over TCP", v, res.Values[v], want[v])
		}
	}
}

// TestTCPReconnect kills every established connection once traffic is
// flowing; the writers' backoff path must redial, the engine's retries
// must re-deliver whatever died with the sockets, and the fixed point
// must come out identical to the no-fault reference.
func TestTCPReconnect(t *testing.T) {
	if testing.Short() {
		t.Skip("PageRank over sockets runs ~1min under the race detector; the dedicated full-suite gate step covers it")
	}
	g := tcpGraph(t, 80)
	want := bcd.RefPageRank(g, 0.85, 1e-13, 1000)
	cfg, tr := tcpCfg(t, 3, tcp.Options{DialBackoff: 200 * time.Microsecond})
	cfg.RetryDeadline = 30 * time.Second

	// Cut from a side goroutine as soon as frames are moving, twice, so
	// at least one cut lands while the run is mid-flight.
	stop := make(chan struct{})
	cutDone := make(chan struct{})
	go func() {
		defer close(cutDone)
		cuts := 0
		for cuts < 2 {
			select {
			case <-stop:
				return
			case <-time.After(200 * time.Microsecond):
			}
			if tr.WireStats().FramesSent >= int64(20*(cuts+1)) {
				tr.CutConns()
				cuts++
			}
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := cluster.Run[float64, float64](ctx, g, bcd.PageRank{}, cfg)
	close(stop)
	<-cutDone
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Converged {
		t.Fatal("did not converge after connection cuts")
	}
	for v := range want {
		if d := math.Abs(res.Values[v] - want[v]); d > 1e-7 {
			t.Fatalf("rank[%d] off by %g after reconnect", v, d)
		}
	}
	if ws := tr.WireStats(); ws.Reconnects == 0 {
		t.Fatalf("cut connections produced no reconnects: %+v", ws)
	}
}
