// Distributed-runtime equivalence: a coordinator plus joiners, each
// hosting one node over real sockets with only its own partition's edge
// sections, must land on the same fixed points as the single-process
// engine and the reference implementations.
package tcp_test

import (
	"bufio"
	"context"
	"encoding/binary"
	"hash/crc32"
	"math"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"graphabcd/internal/bcd"
	"graphabcd/internal/cluster"
	"graphabcd/internal/cluster/tcp"
	"graphabcd/internal/gen"
	"graphabcd/internal/graph"
)

// distGraphFile generates the standard test graph and stages it as the
// plain snapshot the section server requires.
func distGraphFile(t *testing.T, seed uint64) (*graph.Graph, string) {
	t.Helper()
	cfg := gen.DefaultRMAT(9, 6, seed)
	cfg.MaxWeight = 16
	g, err := gen.RMAT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "graph.gabs")
	if err := graph.SaveFormat(path, g, graph.FormatSnapshot); err != nil {
		t.Fatal(err)
	}
	return g, path
}

// runDistLoopback drives one full coordinator+joiners run inside the
// test process: Serve on an ephemeral control listener, nodes-1 Join
// calls against it, everything over real loopback TCP.
func runDistLoopback(t *testing.T, snapPath string, cfg tcp.DistConfig) *tcp.DistResult {
	t.Helper()
	ctrl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	type serveOut struct {
		res *tcp.DistResult
		err error
	}
	serveCh := make(chan serveOut, 1)
	go func() {
		res, err := tcp.Serve(ctx, ctrl, snapPath, cfg)
		serveCh <- serveOut{res, err}
	}()
	joinCh := make(chan error, cfg.Nodes-1)
	for i := 1; i < cfg.Nodes; i++ {
		go func() {
			joinCh <- tcp.Join(ctx, ctrl.Addr().String(), tcp.Options{})
		}()
	}

	out := <-serveCh
	if out.err != nil {
		t.Fatalf("serve: %v", out.err)
	}
	for i := 1; i < cfg.Nodes; i++ {
		if err := <-joinCh; err != nil {
			t.Fatalf("join: %v", err)
		}
	}
	return out.res
}

// distConfig is the suite's engine tuning: the same sizing the loopback
// transport tests use, with a retry base above the socket round trip.
func distConfig(nodes int, algo string) tcp.DistConfig {
	return tcp.DistConfig{
		Nodes:          nodes,
		Algo:           algo,
		BlockSize:      32,
		WorkersPerNode: 2,
		BatchSize:      8,
		MaxUnacked:     256,
		RetryBase:      20 * time.Millisecond,
		RetryDeadline:  60 * time.Second,
		ProbeEvery:     time.Millisecond,
	}
}

// TestDistLoopbackCC is the identical-to-in-process check: three
// processes' worth of nodes in one test binary, each holding only its
// partition's sections, must produce component labels bit-identical to
// the in-process cluster engine and the reference.
func TestDistLoopbackCC(t *testing.T) {
	g, snap := distGraphFile(t, 91)
	res := runDistLoopback(t, snap, distConfig(3, "cc"))
	if res.Uint == nil {
		t.Fatal("cc run returned no uint values")
	}
	want := bcd.RefCC(g)
	direct, err := cluster.Run[uint64, uint64](context.Background(), g, bcd.CC{}, cluster.Config{
		Nodes: 3, BlockSize: 32, WorkersPerNode: 2, BatchSize: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if res.Uint[v] != want[v] {
			t.Fatalf("cc[%d] = %d, want %d", v, res.Uint[v], want[v])
		}
		if res.Uint[v] != direct.Values[v] {
			t.Fatalf("cc[%d]: distributed %d != in-process %d", v, res.Uint[v], direct.Values[v])
		}
	}
	if res.BatchesSent == 0 {
		t.Fatal("three nodes converged without exchanging a single batch")
	}
}

func TestDistLoopbackSSSP(t *testing.T) {
	g, snap := distGraphFile(t, 92)
	cfg := distConfig(3, "sssp")
	cfg.Source = 3
	res := runDistLoopback(t, snap, cfg)
	want := bcd.RefSSSP(g, 3)
	for v := range want {
		got := res.Float[v]
		if got != want[v] && !(math.IsInf(got, 1) && math.IsInf(want[v], 1)) {
			t.Fatalf("dist[%d] = %g, want %g", v, got, want[v])
		}
	}
}

func TestDistLoopbackPageRank(t *testing.T) {
	if testing.Short() {
		t.Skip("PageRank to 1e-12 epsilon is the slow dist run; CC/SSSP cover the protocol in -short")
	}
	g, snap := distGraphFile(t, 93)
	cfg := distConfig(3, "pr")
	cfg.Epsilon = 1e-12
	res := runDistLoopback(t, snap, cfg)
	want := bcd.RefPageRank(g, 0.85, 1e-13, 1000)
	for v := range want {
		if d := math.Abs(res.Float[v] - want[v]); d > 1e-7 {
			t.Fatalf("rank[%d] off by %g", v, d)
		}
	}
}

// TestDistTwoProcess is the acceptance run: a real two-process
// -listen/-join invocation of the built binary over loopback must write
// values identical to the reference fixed point.
func TestDistTwoProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the full binary twice; the loopback suite covers the protocol in -short")
	}
	root, err := filepath.Abs("../../..")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "graphabcd")
	build := exec.Command("go", "build", "-o", bin, "./cmd/graphabcd")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building binary: %v\n%s", err, out)
	}

	g, snap := distGraphFile(t, 94)
	valuesPath := filepath.Join(dir, "values.txt")
	coord := exec.Command(bin,
		"-algo", "cc", "-graph", snap, "-nodes", "2",
		"-listen", "127.0.0.1:0", "-values-out", valuesPath,
		"-timeout", "2m")
	stdout, err := coord.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	coord.Stderr = os.Stderr
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = coord.Process.Kill() })

	// The coordinator prints its bound control address; scrape it so the
	// test never races another suite for a fixed port.
	var addr string
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, " nodes on "); strings.HasPrefix(line, "coordinating") && i >= 0 {
			addr = strings.Fields(line[i+len(" nodes on "):])[0]
			break
		}
	}
	if addr == "" {
		t.Fatalf("coordinator never announced its address: %v", sc.Err())
	}
	go func() { // drain so the coordinator never blocks on a full pipe
		for sc.Scan() {
		}
	}()

	joiner := exec.Command(bin, "-join", addr, "-timeout", "2m")
	joinOut, err := joiner.CombinedOutput()
	if err != nil {
		t.Fatalf("joiner: %v\n%s", err, joinOut)
	}
	if err := coord.Wait(); err != nil {
		t.Fatalf("coordinator: %v", err)
	}

	raw, err := os.ReadFile(valuesPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	want := bcd.RefCC(g)
	if len(lines) != len(want) {
		t.Fatalf("values file has %d lines, want %d", len(lines), len(want))
	}
	for v, line := range lines {
		got, err := strconv.ParseUint(line, 10, 64)
		if err != nil {
			t.Fatalf("values line %d %q: %v", v, line, err)
		}
		if got != want[v] {
			t.Fatalf("cc[%d] = %d from the two-process run, want %d", v, got, want[v])
		}
	}
	if !strings.Contains(string(joinOut), "join run complete") {
		t.Fatalf("joiner output missing completion line:\n%s", joinOut)
	}
}

// TestJoinRejectsProtocolViolation: a joiner handed a well-formed frame
// of the wrong type instead of its assignment must error out, not hang
// or panic.
func TestJoinRejectsProtocolViolation(t *testing.T) {
	ctrl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ctrl.Close() }()
	done := make(chan struct{})
	go func() {
		defer close(done)
		c, err := ctrl.Accept()
		if err != nil {
			return
		}
		// A legal frame (valid length prefix and CRC) that is not the
		// assignment the joiner expects: a bare start signal.
		body := []byte{6}
		frame := binary.LittleEndian.AppendUint32(nil, uint32(len(body)))
		frame = append(frame, body...)
		frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(body))
		_, _ = c.Write(frame)
		_ = c.Close()
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := tcp.Join(ctx, ctrl.Addr().String(), tcp.Options{}); err == nil {
		t.Fatal("join against a protocol-violating coordinator succeeded")
	}
	<-done
}

// TestServeRejectsBadInput locks the coordinator's argument validation.
func TestServeRejectsBadInput(t *testing.T) {
	ctrl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ctrl.Close() }()
	_, snap := distGraphFile(t, 95)
	if _, err := tcp.Serve(context.Background(), ctrl, snap, tcp.DistConfig{Nodes: 1, Algo: "lp"}); err == nil {
		t.Fatal("lp is not a distributed algorithm, Serve accepted it")
	}
	if _, err := tcp.Serve(context.Background(), ctrl, filepath.Join(t.TempDir(), "missing.gabs"),
		tcp.DistConfig{Nodes: 1, Algo: "cc"}); err == nil {
		t.Fatal("Serve accepted a missing snapshot")
	}
	// A single-node Serve needs no joiners and must still converge.
	g, snap2 := distGraphFile(t, 96)
	res, err := tcp.Serve(context.Background(), ctrl, snap2, distConfig(1, "cc"))
	if err != nil {
		t.Fatal(err)
	}
	want := bcd.RefCC(g)
	for v := range want {
		if res.Uint[v] != want[v] {
			t.Fatalf("single-node cc[%d] = %d, want %d", v, res.Uint[v], want[v])
		}
	}
}
