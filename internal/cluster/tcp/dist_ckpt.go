// Distributed fuzzy checkpointing for the -listen/-join runtime
// (DESIGN.md §12). The coordinator drives cluster-wide checkpoint epochs
// over the control lane: on each tick it captures its own node state,
// sends fCkpt to every joiner, and commits the epoch's manifest only
// after every joiner has acked its state file durable — so a crash at
// any point leaves either the previous fully-acked epoch or nothing, and
// a torn checkpoint is never resumable.
//
// The capture is fuzzy: no node pauses its workers, and the nodes
// capture at slightly different moments, so a batch in flight between
// two capture points may be present in the sender's values and absent
// from the receiver's cache. That is safe for the state-based programs
// the dist runtime serves, because resume does not restore caches at
// all: every node re-derives its owned in-edge cache slots from the
// restored global values array (each node's state file carries its owned
// vertex range; the store is a shared filesystem, so every node reads
// all of them), which reconstructs exactly the updates any lost batch
// would have delivered. Missed activations are covered the same way the
// single-process resume covers them — every owned block restarts active.
package tcp

import (
	"fmt"
	"io"
	"math"
	"time"

	"graphabcd/internal/checkpoint"
	"graphabcd/internal/obslog"
	"graphabcd/internal/telemetry"
)

// countingWriter counts the bytes an encode pushes through it, so the
// checkpoint cost counters reflect actual state file sizes.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// distCheckpointer is one node's view of the cluster checkpoint plan.
type distCheckpointer[V, M any] struct {
	d        *distNode[V, M]
	store    *checkpoint.DirStore
	runID    string
	digest   string
	confHash string
	epoch    uint64 // last locally written epoch (committed only on node 0)
}

func newDistCheckpointer[V, M any](d *distNode[V, M]) (*distCheckpointer[V, M], error) {
	store, err := checkpoint.NewDirStore(d.a.ckptDir)
	if err != nil {
		return nil, err
	}
	return &distCheckpointer[V, M]{
		d:     d,
		store: store,
		runID: d.a.ckptRunID,
		// The partial graphs carry both full offset arrays, so every node
		// computes the same digest the coordinator computed from the
		// snapshot file — and the same one a single-process run computes.
		digest:   checkpoint.DigestGraph(d.g),
		confHash: checkpoint.ConfigHash(algoName(d.a.algo), int64(d.g.NumVertices()), int64(d.part.NumBlocks()), d.values.Words(), d.a.nodes),
		epoch:    d.a.resumeEpoch,
	}, nil
}

// ownedSlotRange returns the in-edge slot span of the node's owned
// vertex range — the only cache and stamp slots this node ever writes.
func (d *distNode[V, M]) ownedSlotRange() (int64, int64) {
	vlo, vhi := d.ownedVertexRange()
	return d.g.InOffset(vlo), d.g.InOffset(vhi)
}

// captureNode writes this node's state file for the given epoch: owned
// vertex values, owned block priorities and active flags, owned slot
// stamps, and the envelope sequence — all read with the same atomics the
// workers use, while the workers keep running.
func (dc *distCheckpointer[V, M]) captureNode(epoch uint64) error {
	d := dc.d
	ckStart := d.tel.Stamp()
	vlo, vhi := d.ownedVertexRange()
	slo, shi := d.ownedSlotRange()
	words := d.values.Words()
	st := &checkpoint.State{
		NumVertices: int64(d.g.NumVertices()),
		NumBlocks:   int64(d.part.NumBlocks()),
		Words:       words,
		Node:        d.a.node,
		Nodes:       d.a.nodes,
		VertexLo:    int64(vlo), VertexHi: int64(vhi),
		BlockLo: int64(d.blockLo), BlockHi: int64(d.blockHi),
		SlotBase: slo,
		Values:   make([]uint64, (vhi-vlo)*words),
		Priority: make([]uint64, d.blockHi-d.blockLo),
		Active:   make([]byte, d.blockHi-d.blockLo),
		Stamps:   make([]uint64, shi-slo),
		Counters: checkpoint.Counters{Seq: d.seq.Load()},
	}
	d.values.SnapshotWords(int64(vlo), int64(vhi), st.Values)
	d.st.SnapshotBlocks(d.blockLo, d.blockHi, st.Priority, st.Active)
	for s := slo; s < shi; s++ {
		st.Stamps[s-slo] = d.slotSeq[s].Load()
	}
	var written int64
	if err := dc.store.WriteState(dc.runID, epoch, d.a.node, func(w io.Writer) error {
		cw := &countingWriter{w: w}
		err := checkpoint.Encode(cw, st)
		written = cw.n
		return err
	}); err != nil {
		return err
	}
	// The durability cost of this epoch, on the control-plane shard: the
	// capture runs on the control goroutine, never a worker.
	d.shC.Add(telemetry.CtrCkptEpochs, 1)
	d.shC.Add(telemetry.CtrCkptBytes, written)
	d.shC.Observe(telemetry.StageCkpt, d.tel.Stamp()-ckStart)
	dc.epoch = epoch
	return nil
}

// resumeNode restores this node from the assignment's committed epoch.
// Every node's state file contributes its owned vertex values (the full
// global iterate); only this node's file contributes scheduler mass and
// slot stamps. The owned cache is then rebuilt from the restored values,
// and the envelope sequence restarts above every stamp in the cluster
// (assign.seqBase, computed by the coordinator from all state files).
func (dc *distCheckpointer[V, M]) resumeNode() error {
	d := dc.d
	epoch := d.a.resumeEpoch
	// A scrape mid-restore would read a half-restored iterate: the node
	// is explicitly not ready until the rebuild below completes (start()
	// flips it back).
	if h := d.tr.opts.Health; h != nil {
		h.SetReady(false, "checkpoint resume")
	}
	obslog.L().Info("resuming from checkpoint",
		"event", "ckpt.resume", "node", d.a.node, "runID", dc.runID, "epoch", epoch)
	n := int64(d.g.NumVertices())
	nb := int64(d.part.NumBlocks())
	words := d.values.Words()
	for node := 0; node < d.a.nodes; node++ {
		st, err := dc.readState(epoch, node)
		if err != nil {
			return err
		}
		if st.NumVertices != n || st.NumBlocks != nb || st.Words != words {
			return fmt.Errorf("tcp: resume epoch %d node %d: state shape %dx%dx%d does not match the run (%dx%dx%d)",
				epoch, node, st.NumVertices, st.NumBlocks, st.Words, n, nb, words)
		}
		wantVlo, wantVhi, wantSlo, _, _, _ := dc.nodeSpans(node)
		if st.VertexLo != wantVlo || st.VertexHi != wantVhi {
			return fmt.Errorf("tcp: resume epoch %d node %d: vertex range [%d,%d), want [%d,%d)",
				epoch, node, st.VertexLo, st.VertexHi, wantVlo, wantVhi)
		}
		d.values.RestoreWords(st.VertexLo, st.Values)
		if node != d.a.node {
			continue
		}
		if st.SlotBase != wantSlo || int64(len(st.Stamps)) != dc.ownedSlotCount() {
			return fmt.Errorf("tcp: resume epoch %d node %d: slot range [%d,+%d), want [%d,+%d)",
				epoch, node, st.SlotBase, len(st.Stamps), wantSlo, dc.ownedSlotCount())
		}
		for i, stamp := range st.Stamps {
			d.slotSeq[st.SlotBase+int64(i)].Store(stamp)
		}
		// Add the captured Gauss-Southwell mass on top of the baseline
		// activation newDistNode seeded: every owned block restarts
		// active (a fuzzy capture may have missed an activation), and
		// the restored priorities preserve the scheduling order.
		for b := d.blockLo; b < d.blockHi; b++ {
			d.st.Activate(b, math.Float64frombits(st.Priority[b-d.blockLo]))
		}
	}
	d.rebuildOwnedCache()
	d.seq.Store(d.a.seqBase)
	return nil
}

func (dc *distCheckpointer[V, M]) ownedSlotCount() int64 {
	slo, shi := dc.d.ownedSlotRange()
	return shi - slo
}

// nodeSpans mirrors the owned ranges any node computes for itself.
func (dc *distCheckpointer[V, M]) nodeSpans(node int) (vlo, vhi, slo, shi int64, blo, bhi int) {
	d := dc.d
	nb := d.part.NumBlocks()
	blo, bhi = distBlockRange(nb, d.a.nodes, node)
	if blo >= bhi {
		return 0, 0, 0, 0, blo, bhi
	}
	lo, _ := d.part.VertexRange(blo)
	_, hi := d.part.VertexRange(bhi - 1)
	return int64(lo), int64(hi), d.g.InOffset(lo), d.g.InOffset(hi), blo, bhi
}

func (dc *distCheckpointer[V, M]) readState(epoch uint64, node int) (*checkpoint.State, error) {
	rc, err := dc.store.ReadState(dc.runID, epoch, node)
	if err != nil {
		return nil, err
	}
	st, err := checkpoint.Decode(rc)
	_ = rc.Close()
	if err != nil {
		return nil, fmt.Errorf("tcp: resume epoch %d node %d: %w", epoch, node, err)
	}
	if st.Node != node || st.Nodes != dc.d.a.nodes {
		return nil, fmt.Errorf("tcp: resume epoch %d: state file claims node %d/%d, want %d/%d",
			epoch, st.Node, st.Nodes, node, dc.d.a.nodes)
	}
	return st, nil
}

// rebuildOwnedCache re-derives every owned in-edge cache slot from the
// restored global values: slot s caches ScatterValue of its source
// vertex, whatever node owns that source. This is what reconstructs any
// update batch the fuzzy capture lost in flight.
func (d *distNode[V, M]) rebuildOwnedCache() {
	vlo, vhi := d.ownedVertexRange()
	buf := make([]uint64, d.values.Words())
	var val V
	for v := vlo; v < vhi; v++ {
		for s := d.g.InOffset(v); s < d.g.InOffset(v+1); s++ {
			src := d.g.InSrc(s)
			d.values.LoadBuf(int64(src), &val, buf)
			d.cache.StoreBuf(s, d.prog.ScatterValue(src, val, d.g), buf)
		}
	}
}

// checkpointRound drives one cluster-wide checkpoint epoch from the
// coordinator: own capture, fCkpt to every joiner, all acks, then — and
// only then — the manifest commit. The control lane is lockstep, so the
// acks arrive in joiner order; the fuzziness is in when each node's
// capture samples its live state, not in the commit.
func (d *distNode[V, M]) checkpointRound(joiners []*ctrlConn) error {
	dc := d.ckpt
	epoch := dc.epoch + 1
	for _, j := range joiners {
		if err := j.write(appendEpoch(newFrame(fCkpt), epoch)); err != nil {
			return fmt.Errorf("tcp: checkpoint epoch %d: %w", epoch, err)
		}
	}
	if err := dc.captureNode(epoch); err != nil {
		return err
	}
	for i, j := range joiners {
		body, err := j.expect(fCkptAck)
		if err != nil {
			return fmt.Errorf("tcp: checkpoint ack from node %d: %w", i+1, err)
		}
		got, err := decodeEpoch(body[1:])
		if err != nil {
			return err
		}
		if got != epoch {
			return fmt.Errorf("tcp: node %d acked checkpoint epoch %d, want %d", i+1, got, epoch)
		}
	}
	if err := dc.store.Commit(&checkpoint.Manifest{
		RunID:       dc.runID,
		Epoch:       epoch,
		Nodes:       d.a.nodes,
		Program:     algoName(d.a.algo),
		GraphDigest: dc.digest,
		ConfigHash:  dc.confHash,
		NumVertices: int64(d.g.NumVertices()),
		NumBlocks:   int64(d.part.NumBlocks()),
		SavedUnixMs: time.Now().UnixMilli(),
	}); err != nil {
		return err
	}
	obslog.L().Info("checkpoint epoch committed",
		"event", "ckpt.commit", "runID", dc.runID, "epoch", epoch, "nodes", d.a.nodes)
	return nil
}
