// The -listen/-join distributed runtime: Serve runs the coordinator
// (node 0) against a plain GABS snapshot file and Join runs one joiner
// process. Unlike cluster.Run, which simulates every node inside one
// process, each process here hosts exactly one node: it receives only
// its own blocks' slices of the snapshot's edge sections (positioned
// reads at SnapshotSectionLayout offsets — a joiner never sees the rest
// of the graph's edges), runs the same fused gather-apply-scatter chain
// over its owned blocks, and exchanges state-based update batches with
// its peers over the TCP transport under the engine's at-least-once
// retry/stamp discipline. The coordinator detects global quiescence
// with a two-round probe over the control connections and collects the
// converged values.
package tcp

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"graphabcd/internal/bcd"
	"graphabcd/internal/checkpoint"
	"graphabcd/internal/cluster"
	"graphabcd/internal/graph"
	"graphabcd/internal/obslog"
	"graphabcd/internal/sched"
	"graphabcd/internal/telemetry"
	"graphabcd/internal/word"
)

// DistConfig tunes a distributed run. Only Nodes and Algo are required.
type DistConfig struct {
	// Nodes is the total node count: one coordinator plus Nodes-1
	// joiners. The coordinator blocks until every joiner has arrived.
	Nodes int
	// Algo is the algorithm name: pr | sssp | bfs | cc.
	Algo string
	// Source is the source vertex for sssp/bfs.
	Source uint32
	// BlockSize, WorkersPerNode, BatchSize, Epsilon, MaxUnacked,
	// RetryBase, and RetryDeadline mean exactly what they mean in
	// cluster.Config; zero values take the same defaults.
	BlockSize      int
	WorkersPerNode int
	BatchSize      int
	Epsilon        float64
	MaxUnacked     int
	RetryBase      time.Duration
	RetryDeadline  time.Duration
	// ProbeEvery is the coordinator's quiescence probe period (default
	// 2ms). Termination needs two consecutive all-quiet rounds, so it
	// bounds the detection latency at roughly twice this.
	ProbeEvery time.Duration
	// CheckpointDir enables cluster-wide fuzzy checkpoints (DESIGN.md
	// §12): the coordinator periodically has every node write its owned
	// state into this directory and commits a manifest once all nodes
	// ack. The path must resolve to the same shared filesystem on every
	// node — each node writes its own state file there, and a resuming
	// node reads all of them.
	CheckpointDir string
	// CheckpointInterval is the coordinator's checkpoint period (default
	// 1s when CheckpointDir is set).
	CheckpointInterval time.Duration
	// RunID names the checkpoint run; empty derives a stable id from the
	// algorithm and the identity triple, so re-serving the same snapshot
	// with the same shape overwrites the same run.
	RunID string
	// Resume restarts the whole cluster from a committed checkpoint: a
	// run id, or "latest" for the newest committed manifest in
	// CheckpointDir. The manifest's identity triple and node count must
	// match this run exactly.
	Resume string
	// Transport tunes the coordinator's data-plane sockets.
	Transport Options
	// Telemetry, when non-nil, receives the wire gauges.
	Telemetry *telemetry.Registry
	// Cluster, when non-nil, receives the merged cluster telemetry: the
	// coordinator interleaves fStats rounds with its probe rounds and
	// folds every node's shipped delta into this snapshot (DESIGN.md
	// §13).
	Cluster *telemetry.ClusterStats
	// StatsEvery is the coordinator's telemetry aggregation period
	// (default 500ms when Cluster is set). A final round always runs
	// before termination, so the merged snapshot is complete even for
	// runs shorter than one period.
	StatsEvery time.Duration
	// Health, when non-nil, is driven through the run's readiness
	// transitions: ready once the node has joined and started, not-ready
	// while a checkpoint resume rewrites state, not-ready again at
	// shutdown.
	Health *telemetry.Health
}

func (c DistConfig) probeEvery() time.Duration {
	if c.ProbeEvery <= 0 {
		return 2 * time.Millisecond
	}
	return c.ProbeEvery
}

func (c DistConfig) checkpointInterval() time.Duration {
	if c.CheckpointInterval <= 0 {
		return time.Second
	}
	return c.CheckpointInterval
}

func (c DistConfig) transportOptions() Options {
	o := c.Transport
	if o.Telemetry == nil {
		o.Telemetry = c.Telemetry
	}
	if o.Cluster == nil {
		o.Cluster = c.Cluster
	}
	if o.StatsEvery <= 0 {
		o.StatsEvery = c.StatsEvery
	}
	if o.Health == nil {
		o.Health = c.Health
	}
	return o
}

// DistResult is a completed distributed run. Exactly one of Float/Uint
// is populated, matching the algorithm's value type.
type DistResult struct {
	Algo  string
	Float []float64 // pr, sssp
	Uint  []uint64  // bfs, cc
	// BatchesSent totals the whole cluster's data batches (from the
	// final probe round).
	BatchesSent int64
	WallTime    time.Duration
	// Wire is the coordinator's own transport counter snapshot at run
	// end. Per-node wire stats for the whole cluster live in the
	// DistConfig.Cluster snapshot when aggregation is enabled.
	Wire WireStats
}

// Serve runs the coordinator: it accepts cfg.Nodes-1 joiners on ctrl,
// distributes to each its blocks' snapshot sections read positioned out
// of the plain snapshot at snapshotPath, participates as node 0, probes
// for global quiescence, and returns the collected values.
func Serve(ctx context.Context, ctrl net.Listener, snapshotPath string, cfg DistConfig) (*DistResult, error) {
	start := time.Now()
	if cfg.Nodes < 1 || cfg.Nodes > maxDistNodes {
		return nil, fmt.Errorf("tcp: serve needs Nodes in [1, %d], got %d", maxDistNodes, cfg.Nodes)
	}
	algo, err := algoCode(cfg.Algo)
	if err != nil {
		return nil, err
	}
	snap, err := openSnapshotSections(snapshotPath)
	if err != nil {
		return nil, err
	}
	defer snap.close()

	ccfg := cluster.Config{
		Nodes:          cfg.Nodes,
		BlockSize:      cfg.BlockSize,
		WorkersPerNode: cfg.WorkersPerNode,
		Epsilon:        cfg.Epsilon,
		BatchSize:      cfg.BatchSize,
		RetryBase:      cfg.RetryBase,
		RetryDeadline:  cfg.RetryDeadline,
		MaxUnacked:     cfg.MaxUnacked,
	}
	if ccfg.BlockSize == 0 {
		ccfg.BlockSize = max(16, snap.n/256)
	}
	if ccfg.WorkersPerNode == 0 {
		ccfg.WorkersPerNode = 2
	}
	if ccfg.BatchSize == 0 {
		ccfg.BatchSize = 64
	}
	if err := ccfg.Validate(); err != nil {
		return nil, err
	}
	plan, err := resolveCheckpointPlan(cfg, snap, ccfg.BlockSize)
	if err != nil {
		return nil, err
	}

	// Phase 1: collect joiners. Accept deadlines keep the wait
	// responsive to cancellation.
	joiners := make([]*ctrlConn, 0, cfg.Nodes-1)
	defer func() {
		for _, j := range joiners {
			_ = j.c.Close()
		}
	}()
	dataAddrs := make([]string, cfg.Nodes)
	for len(joiners) < cfg.Nodes-1 {
		if d, ok := ctrl.(*net.TCPListener); ok {
			_ = d.SetDeadline(time.Now().Add(200 * time.Millisecond))
		}
		c, err := ctrl.Accept()
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				if ctx.Err() != nil {
					return nil, ctx.Err()
				}
				continue
			}
			return nil, fmt.Errorf("tcp: waiting for joiner %d/%d: %w", len(joiners)+1, cfg.Nodes-1, err)
		}
		cc := newCtrlConn(c)
		body, err := cc.expect(fJoin)
		if err != nil {
			_ = c.Close()
			return nil, fmt.Errorf("tcp: joiner handshake: %w", err)
		}
		addr := string(body[1:])
		if len(addr) == 0 || len(addr) > maxCtrlAddr {
			_ = c.Close()
			return nil, fmt.Errorf("tcp: joiner advertised %d-byte data address", len(addr))
		}
		joiners = append(joiners, cc)
		dataAddrs[len(joiners)] = addr
		obslog.L().Info("joiner accepted",
			"event", "cluster.join", "node", len(joiners), "dataAddr", addr,
			"joined", len(joiners), "want", cfg.Nodes-1)
	}

	// Phase 2: the coordinator's own data listener, on the same host the
	// control listener is bound to so joiners can reach it.
	dataLn, selfAddr, err := listenSameHost(ctrl.Addr())
	if err != nil {
		return nil, err
	}
	dataAddrs[0] = selfAddr

	// Phase 3: assignment and section distribution.
	assign := distAssign{
		nodes:          cfg.Nodes,
		n:              snap.n,
		m:              snap.m,
		blockSize:      ccfg.BlockSize,
		workersPerNode: ccfg.WorkersPerNode,
		batchSize:      ccfg.BatchSize,
		maxUnacked:     cfg.MaxUnacked,
		algo:           algo,
		source:         cfg.Source,
		epsilon:        cfg.Epsilon,
		retryBase:      cfg.RetryBase,
		retryDeadline:  cfg.RetryDeadline,
		ckptDir:        plan.dir,
		ckptRunID:      plan.runID,
		ckptInterval:   plan.interval,
		resumeEpoch:    plan.resumeEpoch,
		seqBase:        plan.seqBase,
		addrs:          dataAddrs,
	}
	fail := func(err error) (*DistResult, error) {
		for _, j := range joiners {
			j.sendError(err)
		}
		_ = dataLn.Close()
		return nil, err
	}
	for i, j := range joiners {
		a := assign
		a.node = i + 1
		if err := j.write(appendAssign(newFrame(fAssign), a)); err != nil {
			return fail(fmt.Errorf("tcp: assigning node %d: %w", i+1, err))
		}
		if err := snap.sendSections(j, assign, i+1); err != nil {
			return fail(fmt.Errorf("tcp: sections for node %d: %w", i+1, err))
		}
	}
	selfAssign := assign
	selfAssign.node = 0
	g, err := snap.ownedGraph(selfAssign)
	if err != nil {
		return fail(err)
	}
	for i, j := range joiners {
		if _, err := j.expect(fReady); err != nil {
			return fail(fmt.Errorf("tcp: node %d never became ready: %w", i+1, err))
		}
	}

	// Phase 4: run. The coordinator is node 0 of the same data plane.
	listeners := make([]net.Listener, cfg.Nodes)
	listeners[0] = dataLn
	tr := New(listeners, dataAddrs, cfg.transportOptions())
	for _, j := range joiners {
		if err := j.write(newFrame(fStart)); err != nil {
			return fail(fmt.Errorf("tcp: start: %w", err))
		}
	}
	obslog.L().Info("cluster assembled, starting run",
		"event", "cluster.start", "nodes", cfg.Nodes, "algo", cfg.Algo,
		"vertices", snap.n, "edges", snap.m)
	res, err := runDist(ctx, g, selfAssign, tr, joiners, nil, cfg.probeEvery(), start)
	if err != nil {
		return fail(err)
	}
	return res, nil
}

// Join runs one joiner process: dial the coordinator, receive an
// assignment and this node's graph sections, participate until the
// coordinator declares quiescence, and ship the owned values back. It
// returns when the run completes (the coordinator holds the results).
func Join(ctx context.Context, coordAddr string, opts Options) error {
	c, err := (&net.Dialer{Timeout: 10 * time.Second}).DialContext(ctx, "tcp", coordAddr)
	if err != nil {
		return fmt.Errorf("tcp: joining %s: %w", coordAddr, err)
	}
	cc := newCtrlConn(c)
	defer func() { _ = c.Close() }()

	// The data listener binds the same interface the control connection
	// runs over, so the advertised address is reachable by every peer
	// that can reach the coordinator.
	dataLn, dataAddr, err := listenSameHost(c.LocalAddr())
	if err != nil {
		return err
	}
	join := newFrame(fJoin)
	join = append(join, dataAddr...)
	if err := cc.write(join); err != nil {
		_ = dataLn.Close()
		return fmt.Errorf("tcp: join handshake: %w", err)
	}

	body, err := cc.expect(fAssign)
	if err != nil {
		_ = dataLn.Close()
		return fmt.Errorf("tcp: waiting for assignment: %w", err)
	}
	assign, err := decodeAssign(body[1:])
	if err != nil {
		_ = dataLn.Close()
		cc.sendError(err)
		return err
	}
	obslog.L().Info("assignment received",
		"event", "cluster.assign", "node", assign.node, "nodes", assign.nodes,
		"vertices", assign.n, "edges", assign.m)
	g, err := receiveSections(cc, assign)
	if err != nil {
		_ = dataLn.Close()
		cc.sendError(err)
		return err
	}
	if err := cc.write(newFrame(fReady)); err != nil {
		_ = dataLn.Close()
		return err
	}
	if _, err := cc.expect(fStart); err != nil {
		_ = dataLn.Close()
		return fmt.Errorf("tcp: waiting for start: %w", err)
	}

	listeners := make([]net.Listener, assign.nodes)
	listeners[assign.node] = dataLn
	tr := New(listeners, assign.addrs, opts)
	_, err = runDist(ctx, g, assign, tr, nil, cc, 0, time.Now())
	return err
}

// ckptPlan is the coordinator's resolved checkpoint/resume decision,
// broadcast to every node through the assignment.
type ckptPlan struct {
	dir         string
	runID       string
	interval    time.Duration
	resumeEpoch uint64
	seqBase     uint64
}

// resolveCheckpointPlan turns the serve config into the cluster's
// checkpoint plan, validating a requested resume against the snapshot
// before any joiner is assigned: the manifest's identity triple
// (program, graph digest, config hash) and node count must match this
// run exactly, and every node's state file of the committed epoch must
// decode. The files' maximum envelope sequence/stamp seeds seqBase so
// no post-resume envelope id ever loses a staleness race against a
// restored write stamp.
func resolveCheckpointPlan(cfg DistConfig, snap *snapshotSections, blockSize int) (ckptPlan, error) {
	var p ckptPlan
	if cfg.CheckpointDir == "" {
		if cfg.Resume != "" {
			return p, errors.New("tcp: Resume needs CheckpointDir")
		}
		if cfg.RunID != "" {
			return p, errors.New("tcp: RunID needs CheckpointDir")
		}
		return p, nil
	}
	code, err := algoCode(cfg.Algo)
	if err != nil {
		return p, err
	}
	program := algoName(code)
	words, err := algoWords(code)
	if err != nil {
		return p, err
	}
	nb := int64((snap.n + blockSize - 1) / blockSize)
	digest := checkpoint.DigestOffsets(int64(snap.n), int64(snap.m), snap.inOff, snap.outOff)
	confHash := checkpoint.ConfigHash(program, int64(snap.n), nb, words, cfg.Nodes)
	p.dir = cfg.CheckpointDir
	p.interval = cfg.checkpointInterval()
	p.runID = cfg.RunID
	if p.runID == "" {
		p.runID = fmt.Sprintf("%s-%.8s%.8s", program, digest, confHash)
	}
	if !checkpoint.ValidRunID(p.runID) {
		return p, fmt.Errorf("tcp: checkpoint run id %q invalid (want [A-Za-z0-9._-], no leading dot)", p.runID)
	}
	if cfg.Resume == "" {
		return p, nil
	}
	store, err := checkpoint.NewDirStore(cfg.CheckpointDir)
	if err != nil {
		return p, err
	}
	var m *checkpoint.Manifest
	if cfg.Resume == "latest" {
		m, err = store.Latest()
	} else {
		m, err = store.Load(cfg.Resume)
	}
	if err != nil {
		return p, err
	}
	switch {
	case m.Program != program:
		return p, fmt.Errorf("tcp: checkpoint %s is a %s run, this cluster runs %s (program mismatch)", m.RunID, m.Program, program)
	case m.Nodes != cfg.Nodes:
		return p, fmt.Errorf("tcp: checkpoint %s was written by %d nodes, this cluster has %d", m.RunID, m.Nodes, cfg.Nodes)
	case m.NumVertices != int64(snap.n) || m.NumBlocks != nb:
		return p, fmt.Errorf("tcp: checkpoint %s shape %dx%d does not match this run (%dx%d)", m.RunID, m.NumVertices, m.NumBlocks, snap.n, nb)
	case m.GraphDigest != digest:
		return p, fmt.Errorf("tcp: checkpoint %s graph digest %s does not match this snapshot (%s)", m.RunID, m.GraphDigest, digest)
	case m.ConfigHash != confHash:
		return p, fmt.Errorf("tcp: checkpoint %s config hash %s does not match this run (%s)", m.RunID, m.ConfigHash, confHash)
	}
	p.runID = m.RunID
	p.resumeEpoch = m.Epoch
	for node := 0; node < m.Nodes; node++ {
		rc, err := store.ReadState(m.RunID, m.Epoch, node)
		if err != nil {
			return p, err
		}
		st, err := checkpoint.Decode(rc)
		_ = rc.Close()
		if err != nil {
			return p, fmt.Errorf("tcp: resume epoch %d node %d: %w", m.Epoch, node, err)
		}
		hi := st.Counters.Seq
		for _, s := range st.Stamps {
			if s > hi {
				hi = s
			}
		}
		// A fuzzy capture may stamp a receiver's slot with an envelope id
		// above the sender's own captured sequence (the batch was in
		// flight between the two capture points), so the base takes the
		// max over stamps as well as sequences, cluster-wide.
		if hi+1 > p.seqBase {
			p.seqBase = hi + 1
		}
	}
	return p, nil
}

// algoWords is the codec width each dist algorithm's program uses —
// part of the config hash, needed before the generic dispatch picks a
// concrete program type.
func algoWords(code byte) (int, error) {
	switch code {
	case algoPR:
		return bcd.PageRank{}.Codec().Words(), nil
	case algoSSSP:
		return bcd.SSSP{}.Codec().Words(), nil
	case algoBFS:
		return bcd.BFS{}.Codec().Words(), nil
	case algoCC:
		return bcd.CC{}.Codec().Words(), nil
	}
	return 0, fmt.Errorf("tcp: unknown algorithm code %d", code)
}

// listenSameHost opens an ephemeral TCP listener on the host part of
// addr and returns it with its advertisable address.
func listenSameHost(addr net.Addr) (net.Listener, string, error) {
	host, _, err := net.SplitHostPort(addr.String())
	if err != nil {
		return nil, "", fmt.Errorf("tcp: data listener host from %q: %w", addr, err)
	}
	ln, err := net.Listen("tcp", net.JoinHostPort(host, "0"))
	if err != nil {
		return nil, "", fmt.Errorf("tcp: data listener: %w", err)
	}
	_, port, err := net.SplitHostPort(ln.Addr().String())
	if err != nil {
		_ = ln.Close()
		return nil, "", err
	}
	return ln, net.JoinHostPort(host, port), nil
}

// runDist dispatches on the assignment's algorithm code to the generic
// node runtime. Exactly one of joiners (coordinator) and cc (joiner) is
// non-nil.
func runDist(ctx context.Context, g *graph.Graph, a distAssign, tr *Transport, joiners []*ctrlConn, cc *ctrlConn, probeEvery time.Duration, start time.Time) (*DistResult, error) {
	switch a.algo {
	case algoPR:
		return runDistProg[float64, float64](ctx, g, a, bcd.PageRank{}, tr, joiners, cc, probeEvery, start)
	case algoSSSP:
		return runDistProg[float64, float64](ctx, g, a, bcd.SSSP{Source: a.source}, tr, joiners, cc, probeEvery, start)
	case algoBFS:
		return runDistProg[uint64, uint64](ctx, g, a, bcd.BFS{Source: a.source}, tr, joiners, cc, probeEvery, start)
	case algoCC:
		return runDistProg[uint64, uint64](ctx, g, a, bcd.CC{}, tr, joiners, cc, probeEvery, start)
	}
	return nil, fmt.Errorf("tcp: unknown algorithm code %d", a.algo)
}

func runDistProg[V, M any](ctx context.Context, g *graph.Graph, a distAssign, prog bcd.Program[V, M], tr *Transport, joiners []*ctrlConn, cc *ctrlConn, probeEvery time.Duration, start time.Time) (*DistResult, error) {
	d, err := newDistNode(g, a, prog, tr)
	if err != nil {
		return nil, err
	}
	if a.ckptDir != "" {
		if d.ckpt, err = newDistCheckpointer(d); err == nil && a.resumeEpoch > 0 {
			err = d.ckpt.resumeNode()
		}
		if err != nil {
			if cc != nil {
				cc.sendError(err)
			}
			d.tr.Close()
			return nil, err
		}
	}
	d.start()
	defer d.shutdown()
	if cc == nil {
		return d.coordinate(ctx, joiners, probeEvery, start)
	}
	return nil, d.follow(ctx, cc)
}

// distNode is one process's node: the owned slice of the global engine
// state plus the at-least-once delivery bookkeeping that the in-process
// engine keeps per node.
type distNode[V, M any] struct {
	g    *graph.Graph
	prog bcd.Program[V, M]
	a    distAssign
	part *graph.Partition
	tr   *Transport

	values     *word.Array[V]
	cache      *word.Array[V]
	slotSeq    []atomic.Uint64
	st         *sched.State
	blockOwner []int32 // static contiguous split; no failover in dist mode
	blockLo    int     // owned global blocks: [blockLo, blockHi)
	blockHi    int

	seq       atomic.Uint64
	totalSent atomic.Uint64
	applied   atomic.Uint64
	inflight  atomic.Int64

	unackedMu sync.Mutex
	unacked   map[uint64]*distPending
	window    chan struct{}

	applyMu  sync.Mutex
	stopping atomic.Bool
	done     chan struct{}
	failure  atomic.Pointer[error]
	wg       sync.WaitGroup

	// tel is never nil (a bare no-op registry when the caller passed
	// none), mirroring the in-process engine, so the hot path takes no
	// nil checks. shards[w] belongs to worker w; shC is the shared
	// control-plane shard (appliers on the transport read loops, the
	// retry loop, the checkpointer) — safe because Shard slots are
	// atomics.
	tel    *telemetry.Registry
	shards []telemetry.Shard
	shC    *telemetry.Shard

	// lastShipped is the cumulative NodeStats snapshot as of the last
	// fStats delta this node shipped (or, on the coordinator, folded into
	// its own sink). Only the control goroutine (follow/coordinate)
	// touches it.
	lastShipped telemetry.NodeStats

	// ckpt is non-nil when the assignment carries a checkpoint plan; see
	// dist_ckpt.go for the capture/resume protocol.
	ckpt *distCheckpointer[V, M]
}

type distPending struct {
	to        int
	env       cluster.Envelope
	attempts  int
	nextRetry time.Time
	deadline  time.Time
}

// distBlockRange computes the contiguous global block span node i owns —
// the same formula the in-process engine seeds its owner table with.
func distBlockRange(nb, nodes, i int) (lo, hi int) {
	return i * nb / nodes, (i + 1) * nb / nodes
}

func newDistNode[V, M any](g *graph.Graph, a distAssign, prog bcd.Program[V, M], tr *Transport) (*distNode[V, M], error) {
	part, err := graph.NewPartition(g, a.blockSize)
	if err != nil {
		return nil, err
	}
	nb := part.NumBlocks()
	lo, hi := distBlockRange(nb, a.nodes, a.node)
	d := &distNode[V, M]{
		g: g, prog: prog, a: a, part: part, tr: tr,
		values:     word.NewArray(prog.Codec(), g.NumVertices()),
		cache:      word.NewArray(prog.Codec(), g.NumEdges()),
		slotSeq:    make([]atomic.Uint64, g.NumEdges()),
		st:         sched.NewState(nb),
		blockOwner: make([]int32, nb),
		blockLo:    lo, blockHi: hi,
		unacked: make(map[uint64]*distPending),
		done:    make(chan struct{}),
	}
	for i := 0; i < a.nodes; i++ {
		blo, bhi := distBlockRange(nb, a.nodes, i)
		for b := blo; b < bhi; b++ {
			d.blockOwner[b] = int32(i)
		}
	}
	if w := a.maxUnackedOrDefault(); w > 0 {
		d.window = make(chan struct{}, w)
	}
	d.tel = tr.opts.Telemetry
	if d.tel == nil {
		d.tel = telemetry.New(telemetry.Options{})
	}
	d.shards = d.tel.Shards(a.workersPerNode + 1)
	d.shC = &d.shards[a.workersPerNode]
	d.tel.SetVertices(g.NumVertices())
	if t := d.tel.Tracer(); t != nil {
		// Node id as the Perfetto pid: merged per-node trace shards show
		// up as distinct process tracks, and the flow ids below encode the
		// sending node the same way.
		t.SetProcess(a.node, fmt.Sprintf("graphabcd-node%d", a.node))
	}
	// Initialize owned state exactly like the in-process engine: vertex
	// values everywhere (cheap, deterministic, needs only degrees), edge
	// cache slots only in the owned in-edge ranges — the only slots this
	// node ever gathers from.
	buf := make([]uint64, d.values.Words())
	for v := 0; v < g.NumVertices(); v++ {
		d.values.StoreBuf(int64(v), prog.Init(uint32(v), g), buf)
	}
	vlo, vhi := d.ownedVertexRange()
	for v := vlo; v < vhi; v++ {
		for s := g.InOffset(v); s < g.InOffset(v+1); s++ {
			d.cache.StoreBuf(s, prog.InitEdge(g.InSrc(s), g), buf)
		}
	}
	for b := lo; b < hi; b++ {
		d.st.Activate(b, 1)
	}
	return d, nil
}

func (a distAssign) maxUnackedOrDefault() int {
	if a.maxUnacked == 0 {
		return 1024
	}
	if a.maxUnacked < 0 {
		return 0 // unbounded
	}
	return a.maxUnacked
}

func (a distAssign) retryBaseOrDefault() time.Duration {
	if a.retryBase == 0 {
		return 2 * time.Millisecond
	}
	return a.retryBase
}

func (a distAssign) retryDeadlineOrDefault() time.Duration {
	if a.retryDeadline == 0 {
		return 30 * time.Second
	}
	return a.retryDeadline
}

func (d *distNode[V, M]) ownedVertexRange() (int, int) {
	if d.blockLo >= d.blockHi {
		return 0, 0
	}
	vlo, _ := d.part.VertexRange(d.blockLo)
	_, vhi := d.part.VertexRange(d.blockHi - 1)
	return vlo, vhi
}

func (d *distNode[V, M]) owner(b int) int { return int(d.blockOwner[b]) }

func (d *distNode[V, M]) fail(err error) {
	d.failure.CompareAndSwap(nil, &err)
	d.stopping.Store(true)
}

// start binds the transport and launches the workers and retry loop.
// The node is ready — joined, assigned, state initialized or restored —
// once start returns.
func (d *distNode[V, M]) start() {
	d.tr.Bind(d.a.nodes, d.deliver)
	for w := 0; w < d.a.workersPerNode; w++ {
		d.wg.Add(1)
		go func(w int, seed uint64) {
			defer d.wg.Done()
			d.workerLoop(w, seed)
		}(w, uint64(d.a.node*d.a.workersPerNode+w+1))
	}
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		d.retryLoop()
	}()
	if h := d.tr.opts.Health; h != nil {
		h.SetReady(true, "running")
	}
	obslog.L().Info("dist node running",
		"event", "dist.start", "node", d.a.node,
		"blocks", d.blockHi-d.blockLo, "workers", d.a.workersPerNode)
}

// shutdown stops the workers and closes the transport; safe to call
// more than once.
func (d *distNode[V, M]) shutdown() {
	if h := d.tr.opts.Health; h != nil {
		h.SetReady(false, "stopped")
	}
	d.stopping.Store(true)
	select {
	case <-d.done:
	default:
		close(d.done)
	}
	d.wg.Wait()
	d.tr.Close()
}

// deliver is the transport's entry point. Data envelopes apply inline on
// the read loop (TCP backpressure is the inbox) and ack back; acks
// settle the sender's bookkeeping.
func (d *distNode[V, M]) deliver(to int, e cluster.Envelope) {
	if to != d.a.node {
		return // misrouted frame: a peer dialed the wrong address
	}
	if e.IsAck() {
		d.settle(e.ID())
		return
	}
	d.applyEnvelope(e)
	d.tr.Send(d.a.node, e.From(), cluster.NewAck(d.a.node, e.ID()))
}

// applyEnvelope installs a remote scatter batch under the write stamps,
// mirroring the in-process engine's handleEnvelope: a slot never
// regresses past a newer write, and every effective change re-activates
// its destination block. Each cache slot has exactly one writing node
// (the owner of its in-edge's source vertex), so per-sender envelope
// ids are a total order per slot.
func (d *distNode[V, M]) applyEnvelope(e cluster.Envelope) {
	d.applyMu.Lock()
	defer d.applyMu.Unlock()
	aStart := d.tel.Stamp()
	d.shC.FlowRecv(e.From(), e.ID(), aStart)
	words := d.cache.Words()
	slots, blocks, wordsIn := e.Slots(), e.Blocks(), e.Words()
	if len(blocks) != len(slots) || len(wordsIn) != len(slots)*words {
		return // malformed batch: drop; the sender's retry re-delivers
	}
	buf := make([]uint64, words)
	var old, incoming V
	for i, slot := range slots {
		if slot < 0 || slot >= int64(d.g.NumEdges()) {
			continue // out-of-range slot in a decoded batch: skip defensively
		}
		b := int(blocks[i])
		if b < d.blockLo || b >= d.blockHi {
			continue // not ours: a stale assignment or corrupt batch
		}
		if d.slotSeq[slot].Load() > e.ID() {
			continue // stale redelivery: a newer write already landed
		}
		d.cache.LoadBuf(slot, &old, buf)
		d.prog.Codec().DecodeInto(wordsIn[i*words:(i+1)*words], &incoming)
		d.cache.StoreBuf(slot, incoming, buf)
		d.slotSeq[slot].Store(e.ID())
		if delta := d.prog.Delta(old, incoming); delta > d.a.epsilon {
			d.st.Activate(b, delta)
		}
	}
	d.applied.Add(1)
	if end := d.tel.Stamp(); end > 0 {
		d.shC.Observe(telemetry.StageApply, end-aStart)
		// Cross-node propagation delay stands in for the staleness the
		// in-process engine measures in milli-epochs: how long this batch's
		// values were in flight (sender's scatter to this apply), in ms —
		// the bounded-delay quantity async-BCD convergence reasons about.
		if sentAt := e.SentAt(); !sentAt.IsZero() {
			d.shC.Observe(telemetry.StageStaleness, int64(time.Since(sentAt)/time.Millisecond))
		}
	}
}

// settle clears one unacked batch on first ack; duplicate acks find the
// entry gone and release nothing, keeping inflight and the window exact.
func (d *distNode[V, M]) settle(id uint64) {
	d.unackedMu.Lock()
	_, ok := d.unacked[id]
	if ok {
		delete(d.unacked, id)
	}
	d.unackedMu.Unlock()
	if ok {
		d.inflight.Add(-1)
		if d.window != nil {
			select {
			case <-d.window:
			default:
			}
		}
	}
}

// workerLoop mirrors the in-process engine's worker for a single node.
func (d *distNode[V, M]) workerLoop(w int, seed uint64) {
	defer func() {
		if r := recover(); r != nil {
			d.fail(fmt.Errorf("tcp: dist worker panic: %v", r))
		}
	}()
	sch, err := sched.New(sched.Cyclic, d.st, seed)
	if err != nil {
		d.fail(err)
		return
	}
	ws := newDistWorkerState(d.prog, d.a)
	ws.sh = &d.shards[w]
	spins := 0
	for !d.stopping.Load() {
		b, ok := sch.Next()
		if !ok {
			spins++
			nap := time.Microsecond
			if spins >= 64 {
				nap = 50 * time.Microsecond
			}
			time.Sleep(nap)
			continue
		}
		spins = 0
		d.processBlock(b, ws)
		d.st.Done(b)
	}
}

// distWorkerState is the per-worker scratch, mirroring the in-process
// engine's workerState.
type distWorkerState[V, M any] struct {
	acc      M
	old, src V
	buf      []uint64
	enc      []uint64 // encoded scatter value
	deltas   []float64
	pending  []distBatch      // one building batch per destination node
	sh       *telemetry.Shard // this worker's telemetry shard
}

type distBatch struct {
	slots  []int64
	blocks []int32
	words  []uint64
}

func newDistWorkerState[V, M any](prog bcd.Program[V, M], a distAssign) *distWorkerState[V, M] {
	words := prog.Codec().Words()
	if words < 2 {
		words = 2
	}
	return &distWorkerState[V, M]{
		acc:     prog.NewAccum(),
		buf:     make([]uint64, words),
		enc:     make([]uint64, prog.Codec().Words()),
		pending: make([]distBatch, a.nodes),
	}
}

// processBlock runs the fused GAS chain for one owned block, batching
// remote scatter writes per destination node.
//
//abcd:hotpath
func (d *distNode[V, M]) processBlock(b int, ws *distWorkerState[V, M]) {
	lo, hi := d.part.VertexRange(b)
	if cap(ws.deltas) < hi-lo {
		ws.deltas = make([]float64, hi-lo) //abcdlint:ignore hotpath -- amortized: grows once to the largest owned block, then reused
	}
	deltas := ws.deltas[:hi-lo]
	gStart := d.tel.Stamp()
	var edges int64
	for v := lo; v < hi; v++ {
		d.values.LoadBuf(int64(v), &ws.old, ws.buf)
		d.prog.ResetAccum(&ws.acc)
		slo, shi := d.g.InOffset(v), d.g.InOffset(v+1)
		for s := slo; s < shi; s++ {
			d.cache.LoadBuf(s, &ws.src, ws.buf)
			d.prog.EdgeGather(&ws.acc, ws.old, d.g.InWeight(s), ws.src)
		}
		edges += shi - slo
		newVal := d.prog.Apply(uint32(v), ws.old, &ws.acc, shi-slo, d.g)
		if d.prog.Delta(ws.old, newVal) == 0 {
			deltas[v-lo] = 0
			continue
		}
		deltas[v-lo] = d.prog.Delta(
			d.prog.ScatterValue(uint32(v), ws.old, d.g),
			d.prog.ScatterValue(uint32(v), newVal, d.g))
		d.values.StoreBuf(int64(v), newVal, ws.buf)
	}
	ws.sh.Add(telemetry.CtrBlockUpdates, 1)
	ws.sh.Add(telemetry.CtrVertexUpdates, int64(hi-lo))
	ws.sh.Add(telemetry.CtrEdgesTraversed, edges)
	sStart := d.tel.Stamp()
	ws.sh.Observe(telemetry.StageGather, sStart-gStart)
	ws.sh.Trace(telemetry.StageGather, b, gStart, sStart-gStart)

	// Scatter: local slots store directly; remote slots batch into
	// state-based messages for their owner node.
	codec := d.prog.Codec()
	var writes, locals int64
	for v := lo; v < hi; v++ {
		delta := deltas[v-lo]
		if delta <= d.a.epsilon {
			continue
		}
		d.values.LoadBuf(int64(v), &ws.old, ws.buf)
		sval := d.prog.ScatterValue(uint32(v), ws.old, d.g)
		codec.Encode(sval, ws.enc)
		for i := d.g.OutOffset(v); i < d.g.OutOffset(v+1); i++ {
			slot := d.g.OutPos(i)
			db := d.part.BlockOf(d.g.OutDst(i))
			owner := d.owner(db)
			writes++
			if owner == d.a.node {
				d.cache.StoreBuf(slot, sval, ws.buf)
				d.st.Activate(db, delta)
				locals++
				continue
			}
			p := &ws.pending[owner]
			p.slots = append(p.slots, slot)        //abcdlint:ignore hotalloc,hotpath -- amortized: flush resets the batch to [:0], capacity is retained
			p.blocks = append(p.blocks, int32(db)) //abcdlint:ignore hotalloc,hotpath -- amortized: flush resets the batch to [:0], capacity is retained
			p.words = append(p.words, ws.enc...)   //abcdlint:ignore hotalloc,hotpath -- amortized: flush resets the batch to [:0], capacity is retained
			if len(p.slots) >= d.a.batchSize {
				d.flush(owner, p, ws.sh)
			}
		}
	}
	for owner := range ws.pending {
		if len(ws.pending[owner].slots) > 0 {
			d.flush(owner, &ws.pending[owner], ws.sh)
		}
	}
	ws.sh.Add(telemetry.CtrScatterWrites, writes)
	ws.sh.Add(telemetry.CtrLocalWrites, locals)
	if end := d.tel.Stamp(); end > 0 {
		ws.sh.Observe(telemetry.StageScatter, end-sStart)
		ws.sh.Trace(telemetry.StageScatter, b, sStart, end-sStart)
	}
}

// flush turns the building batch into a data envelope, registers it for
// at-least-once retry, and hands it to the transport, honoring the
// MaxUnacked send window.
func (d *distNode[V, M]) flush(owner int, p *distBatch, sh *telemetry.Shard) {
	if d.window != nil {
		select {
		case d.window <- struct{}{}: //abcdlint:ignore hotpath -- MaxUnacked flow control: one channel op per batch, amortized over BatchSize slot updates
		case <-d.done:
			return // shutdown: the batch dies with the run
		}
	}
	now := time.Now()
	e := cluster.NewDataEnvelope(d.a.node, d.seq.Add(1), now,
		append([]int64(nil), p.slots...),  //abcdlint:ignore hotalloc,hotpath -- ownership copy: the envelope crosses the transport while p is reused
		append([]int32(nil), p.blocks...), //abcdlint:ignore hotalloc,hotpath -- ownership copy: the envelope crosses the transport while p is reused
		append([]uint64(nil), p.words...)) //abcdlint:ignore hotalloc,hotpath -- ownership copy: the envelope crosses the transport while p is reused
	p.slots, p.blocks, p.words = p.slots[:0], p.blocks[:0], p.words[:0]
	d.totalSent.Add(1)
	d.inflight.Add(1)
	sh.Add(telemetry.CtrMessagesSent, int64(len(e.Slots())))
	sh.Add(telemetry.CtrBatchesSent, 1)
	sh.FlowSend(owner, e.ID(), d.tel.Stamp())
	d.unackedMu.Lock()                //abcdlint:ignore hotpath -- at-least-once bookkeeping: one lock per batch, amortized over BatchSize slot updates
	d.unacked[e.ID()] = &distPending{ //abcdlint:ignore hotalloc,hotpath -- at-least-once bookkeeping: one entry per batch, amortized over BatchSize slot updates
		to:        owner,
		env:       e,
		nextRetry: now.Add(d.a.retryBaseOrDefault()),
		deadline:  now.Add(d.a.retryDeadlineOrDefault()),
	}
	d.unackedMu.Unlock() //abcdlint:ignore hotpath -- at-least-once bookkeeping: see the matching Lock above
	d.tr.Send(d.a.node, owner, e)
}

// retryLoop is the single-node edition of the in-process engine's retry
// loop: scan under the lock, send outside it.
func (d *distNode[V, M]) retryLoop() {
	base := d.a.retryBaseOrDefault()
	tick := base / 4
	if tick < 200*time.Microsecond {
		tick = 200 * time.Microsecond
	}
	var due []*distPending
	for !d.stopping.Load() {
		select {
		case <-d.done:
			return
		case <-time.After(tick):
		}
		now := time.Now()
		due = due[:0]
		var expired *distPending
		d.unackedMu.Lock()
		for _, p := range d.unacked {
			if now.Before(p.nextRetry) {
				continue
			}
			if now.After(p.deadline) {
				expired = p
				break
			}
			p.attempts++
			backoff := base << uint(p.attempts)
			if backoff > 50*time.Millisecond {
				backoff = 50 * time.Millisecond
			}
			p.nextRetry = now.Add(backoff)
			due = append(due, p)
		}
		d.unackedMu.Unlock()
		if expired != nil {
			d.fail(fmt.Errorf("tcp: batch %d to node %d undelivered after %v (%d attempts): transport partitioned beyond the retry deadline",
				expired.env.ID(), expired.to, d.a.retryDeadlineOrDefault(), expired.attempts))
			return
		}
		for _, p := range due {
			if d.stopping.Load() {
				return
			}
			d.shC.Add(telemetry.CtrBatchesRetried, 1)
			d.tr.Send(d.a.node, p.to, p.env)
		}
	}
}

func (d *distNode[V, M]) probe() probeReply {
	return probeReply{
		sent:      d.totalSent.Load(),
		applied:   d.applied.Load(),
		inflight:  d.inflight.Load(),
		quiescent: d.st.Quiescent(),
	}
}

// collectStats snapshots this node's cumulative telemetry — registry
// counters and histograms plus the transport's socket counters.
func (d *distNode[V, M]) collectStats() telemetry.NodeStats {
	s := d.tel.CollectNodeStats(d.a.node)
	w := d.tr.WireStats()
	s.Wire = telemetry.WireCounters{
		BytesSent: w.BytesSent, FramesSent: w.FramesSent,
		BytesRecv: w.BytesRecv, FramesRecv: w.FramesRecv,
		Reconnects: w.Reconnects, Drops: w.Drops,
		CRCDrops: w.CRCDrops, DecodeErrors: w.DecodeErrors,
		QueueHighWater: w.QueueHighWater,
	}
	return s
}

// shipStatsDelta returns the delta since the last shipped snapshot and
// advances the watermark. Only the control goroutine calls it.
func (d *distNode[V, M]) shipStatsDelta() telemetry.NodeStats {
	cur := d.collectStats()
	delta := cur.DeltaFrom(&d.lastShipped)
	d.lastShipped = cur
	return delta
}

// statsRound is one control-lane telemetry aggregation round: the
// coordinator folds its own delta into the sink, then asks every joiner
// for theirs. Rounds interleave with probe and checkpoint rounds on the
// same lockstep control lane; a round reads counters without mutating
// engine state, so it cannot disturb quiescence detection.
func (d *distNode[V, M]) statsRound(joiners []*ctrlConn) error {
	sink := d.tr.opts.Cluster
	if sink == nil {
		return nil
	}
	begin := time.Now()
	var waited time.Duration
	defer func() {
		span := time.Since(begin)
		sink.NoteRound(span-waited, span)
	}()
	own := d.shipStatsDelta()
	sink.Apply(&own)
	for _, j := range joiners {
		if err := j.write(newFrame(fStats)); err != nil {
			return fmt.Errorf("tcp: stats round: %w", err)
		}
		w0 := time.Now()
		body, err := j.expect(fStatsReply)
		waited += time.Since(w0)
		if err != nil {
			return fmt.Errorf("tcp: stats reply: %w", err)
		}
		ns, err := telemetry.DecodeNodeStats(body[1:])
		if err != nil {
			return err
		}
		sink.Apply(&ns)
	}
	obslog.L().Debug("cluster telemetry round merged",
		"event", "dist.stats_round", "nodes", sink.Len())
	return nil
}

// coordinate runs the coordinator's probe/terminate protocol over the
// joiner control connections while this process's own node works.
// Termination: two consecutive probe rounds in which every node is
// scheduler-quiescent with zero unacked batches and identical monotone
// sent/applied counters — nothing moved between the observations, so no
// update exists anywhere in the system.
func (d *distNode[V, M]) coordinate(ctx context.Context, joiners []*ctrlConn, probeEvery time.Duration, start time.Time) (*DistResult, error) {
	var prev []probeReply
	quietRounds := 0
	var nextCkpt time.Time
	if d.ckpt != nil {
		nextCkpt = time.Now().Add(d.a.ckptInterval)
	}
	var nextStats time.Time
	if d.tr.opts.Cluster != nil {
		nextStats = time.Now().Add(d.tr.opts.statsEvery())
	}
	for quietRounds < 2 {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(probeEvery):
		}
		if errp := d.failure.Load(); errp != nil {
			return nil, *errp
		}
		// Checkpoint rounds interleave with probe rounds on the same
		// lockstep control lane. A capture reads counters and state
		// without mutating either, so it cannot disturb the two-round
		// quiescence detection below.
		if d.ckpt != nil && !time.Now().Before(nextCkpt) {
			if err := d.checkpointRound(joiners); err != nil {
				return nil, err
			}
			nextCkpt = time.Now().Add(d.a.ckptInterval)
		}
		// Telemetry aggregation rounds interleave the same way.
		if !nextStats.IsZero() && !time.Now().Before(nextStats) {
			if err := d.statsRound(joiners); err != nil {
				return nil, err
			}
			nextStats = time.Now().Add(d.tr.opts.statsEvery())
		}
		round := make([]probeReply, 0, len(joiners)+1)
		round = append(round, d.probe())
		for _, j := range joiners {
			if err := j.write(newFrame(fProbe)); err != nil {
				return nil, fmt.Errorf("tcp: probe: %w", err)
			}
			body, err := j.expect(fProbeReply)
			if err != nil {
				return nil, fmt.Errorf("tcp: probe reply: %w", err)
			}
			r, err := decodeProbeReply(body[1:])
			if err != nil {
				return nil, err
			}
			round = append(round, r)
		}
		ok := prev != nil
		for _, r := range round {
			if !r.quiescent || r.inflight != 0 {
				ok = false
			}
		}
		if ok {
			for i := range round {
				if round[i].sent != prev[i].sent || round[i].applied != prev[i].applied {
					ok = false
					break
				}
			}
		}
		if ok {
			quietRounds++
		} else {
			quietRounds = 0
		}
		prev = round
	}

	// Quiesced: run one final stats round so the merged snapshot covers
	// the tail interval, then stop everyone and collect values.
	if err := d.statsRound(joiners); err != nil {
		return nil, err
	}
	obslog.L().Info("cluster quiescent, collecting values",
		"event", "dist.quiesce", "nodes", d.a.nodes)
	var sent int64
	for _, r := range prev {
		sent += int64(r.sent)
	}
	d.stopping.Store(true)
	res := &DistResult{Algo: algoName(d.a.algo), BatchesSent: sent}
	vals := word.NewArray(d.prog.Codec(), d.g.NumVertices())
	vlo, vhi := d.ownedVertexRange()
	d.copyValues(vals, vlo, vhi)
	for _, j := range joiners {
		if err := j.write(newFrame(fStop)); err != nil {
			return nil, fmt.Errorf("tcp: stop: %w", err)
		}
	}
	for i, j := range joiners {
		if err := d.receiveValues(j, vals, i+1); err != nil {
			return nil, err
		}
		if err := j.write(newFrame(fDone)); err != nil {
			return nil, fmt.Errorf("tcp: done: %w", err)
		}
	}
	res.WallTime = time.Since(start)
	res.Wire = d.tr.WireStats()
	fillResult(res, vals)
	return res, nil
}

// follow is the joiner side of coordinate: answer probes until fStop,
// then ship the owned values and wait for fDone. The read deadline
// keeps the loop responsive to cancellation and local engine failure;
// control frames are small single-segment writes, so a deadline firing
// mid-frame (which would desync the stream) needs the kernel to split a
// tens-of-bytes loopback write — treated as the connection loss it
// effectively is.
func (d *distNode[V, M]) follow(ctx context.Context, cc *ctrlConn) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if errp := d.failure.Load(); errp != nil {
			cc.sendError(*errp)
			return *errp
		}
		_ = cc.c.SetReadDeadline(time.Now().Add(time.Second))
		body, err := cc.read()
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return fmt.Errorf("tcp: control connection: %w", err)
		}
		switch body[0] {
		case fProbe:
			if err := cc.write(appendProbeReply(newFrame(fProbeReply), d.probe())); err != nil {
				return err
			}
		case fStats:
			delta := d.shipStatsDelta()
			if err := cc.write(telemetry.AppendNodeStats(newFrame(fStatsReply), &delta)); err != nil {
				return err
			}
		case fCkpt:
			epoch, err := decodeEpoch(body[1:])
			if err != nil {
				cc.sendError(err)
				return err
			}
			if d.ckpt == nil {
				err := errors.New("tcp: coordinator requested a checkpoint but the assignment carried no checkpoint plan")
				cc.sendError(err)
				return err
			}
			// Capture on the control goroutine while the workers run —
			// that concurrency is the fuzziness. The ack promises only
			// that this node's state file is durable; the coordinator
			// commits the manifest once every node has promised.
			if err := d.ckpt.captureNode(epoch); err != nil {
				cc.sendError(err)
				return err
			}
			if err := cc.write(appendEpoch(newFrame(fCkptAck), epoch)); err != nil {
				return err
			}
		case fStop:
			d.stopping.Store(true)
			_ = cc.c.SetReadDeadline(time.Time{})
			if err := d.sendValues(cc); err != nil {
				return err
			}
			if _, err := cc.expect(fDone); err != nil {
				return fmt.Errorf("tcp: waiting for done: %w", err)
			}
			return nil
		default:
			return fmt.Errorf("tcp: unexpected control frame %d mid-run", body[0])
		}
	}
}

// copyValues copies this node's owned vertex range out of its live
// array. Only called after global quiescence, when no worker writes.
func (d *distNode[V, M]) copyValues(dst *word.Array[V], vlo, vhi int) {
	buf := make([]uint64, d.values.Words())
	var v V
	for i := vlo; i < vhi; i++ {
		d.values.LoadBuf(int64(i), &v, buf)
		dst.StoreBuf(int64(i), v, buf)
	}
}

// sendValues streams the owned vertex values as fValues chunks followed
// by an fDone terminator.
func (d *distNode[V, M]) sendValues(cc *ctrlConn) error {
	words := d.values.Words()
	vlo, vhi := d.ownedVertexRange()
	const chunkVerts = 32 << 10
	buf := make([]uint64, words)
	var v V
	for base := vlo; base < vhi; base += chunkVerts {
		end := min(base+chunkVerts, vhi)
		f := newFrame(fValues)
		f = binary.LittleEndian.AppendUint64(f, uint64(base))
		for i := base; i < end; i++ {
			d.values.LoadBuf(int64(i), &v, buf)
			d.prog.Codec().Encode(v, buf)
			for _, w := range buf[:words] {
				f = binary.LittleEndian.AppendUint64(f, w)
			}
		}
		if err := cc.write(f); err != nil {
			return err
		}
	}
	return cc.write(newFrame(fDone))
}

// receiveValues installs one joiner's owned range from its fValues
// stream into dst.
func (d *distNode[V, M]) receiveValues(cc *ctrlConn, dst *word.Array[V], node int) error {
	words := d.values.Words()
	nb := d.part.NumBlocks()
	blo, bhi := distBlockRange(nb, d.a.nodes, node)
	vlo, vhi := 0, 0
	if blo < bhi {
		vlo, _ = d.part.VertexRange(blo)
		_, vhi = d.part.VertexRange(bhi - 1)
	}
	buf := make([]uint64, words)
	var v V
	for {
		body, err := cc.read()
		if err != nil {
			return fmt.Errorf("tcp: values from node %d: %w", node, err)
		}
		if body[0] == fDone {
			return nil
		}
		if body[0] != fValues {
			return fmt.Errorf("tcp: unexpected frame %d in node %d's value stream", body[0], node)
		}
		c, err := decodeValuesChunk(body[1:])
		if err != nil {
			return err
		}
		if len(c.words)%(words*8) != 0 {
			return fmt.Errorf("tcp: node %d values chunk %d bytes, not a multiple of %d", node, len(c.words), words*8)
		}
		count := len(c.words) / (words * 8)
		if c.vlo < int64(vlo) || c.vlo+int64(count) > int64(vhi) {
			return fmt.Errorf("tcp: node %d values [%d,%d) outside its owned range [%d,%d)",
				node, c.vlo, c.vlo+int64(count), vlo, vhi)
		}
		for i := 0; i < count; i++ {
			for w := 0; w < words; w++ {
				buf[w] = binary.LittleEndian.Uint64(c.words[(i*words+w)*8:])
			}
			d.prog.Codec().DecodeInto(buf[:words], &v)
			dst.StoreBuf(c.vlo+int64(i), v, buf)
		}
	}
}

// fillResult converts the assembled value array into the concrete
// result slice for the algorithm's value type.
func fillResult[V any](res *DistResult, vals *word.Array[V]) {
	n := vals.Len()
	buf := make([]uint64, vals.Words())
	var v V
	switch any(v).(type) {
	case float64:
		res.Float = make([]float64, n)
		for i := 0; i < n; i++ {
			vals.LoadBuf(int64(i), &v, buf)
			res.Float[i] = any(v).(float64)
		}
	case uint64:
		res.Uint = make([]uint64, n)
		for i := 0; i < n; i++ {
			vals.LoadBuf(int64(i), &v, buf)
			res.Uint[i] = any(v).(uint64)
		}
	}
}

// snapshotSections is the coordinator's positioned-read view of a plain
// snapshot file.
type snapshotSections struct {
	f      *os.File
	n, m   int
	layout graph.SnapshotLayout
	inOff  []int64
	outOff []int64
}

func openSnapshotSections(path string) (*snapshotSections, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var hdr [24]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("tcp: snapshot header: %w", err)
	}
	n64, m64, compressed, err := graph.ParseSnapshotHeader(hdr[:])
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	if compressed {
		_ = f.Close()
		return nil, fmt.Errorf("tcp: %s is a compressed snapshot; section distribution needs the plain format (re-save as .gabs)", path)
	}
	if n64 < 1 || n64 > maxDistVertices || m64 < 0 || m64 > maxDistEdges {
		_ = f.Close()
		return nil, fmt.Errorf("tcp: snapshot dimensions V=%d E=%d out of range", n64, m64)
	}
	s := &snapshotSections{f: f, n: int(n64), m: int(m64)}
	s.layout = graph.SnapshotSectionLayout(s.n, s.m)
	if s.inOff, err = s.readOffsets(s.layout.InOff); err != nil {
		_ = f.Close()
		return nil, err
	}
	if s.outOff, err = s.readOffsets(s.layout.OutOff); err != nil {
		_ = f.Close()
		return nil, err
	}
	return s, nil
}

func (s *snapshotSections) close() { _ = s.f.Close() }

// readOffsets preads one (n+1)-entry u64 offset section and validates
// the monotone [0, m] span FromSections will re-check on the far side.
func (s *snapshotSections) readOffsets(off int64) ([]int64, error) {
	raw := make([]byte, (s.n+1)*8)
	if _, err := s.f.ReadAt(raw, off); err != nil {
		return nil, fmt.Errorf("tcp: snapshot offsets at %d: %w", off, err)
	}
	out := make([]int64, s.n+1)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(raw[i*8:]))
	}
	if out[0] != 0 || out[s.n] != int64(s.m) {
		return nil, fmt.Errorf("tcp: snapshot offsets span [%d,%d], want [0,%d]", out[0], out[s.n], s.m)
	}
	for i := 0; i < s.n; i++ {
		if out[i] > out[i+1] {
			return nil, fmt.Errorf("tcp: snapshot offsets not monotone at %d", i)
		}
	}
	return out, nil
}

// nodeRanges computes one node's owned vertex and edge ranges under the
// assignment's partition.
func (s *snapshotSections) nodeRanges(a distAssign, node int) (vlo, vhi int, inLo, inHi, outLo, outHi int64) {
	nb := (s.n + a.blockSize - 1) / a.blockSize
	blo, bhi := distBlockRange(nb, a.nodes, node)
	if blo >= bhi {
		return 0, 0, 0, 0, 0, 0
	}
	vlo = blo * a.blockSize
	vhi = min(bhi*a.blockSize, s.n)
	return vlo, vhi, s.inOff[vlo], s.inOff[vhi], s.outOff[vlo], s.outOff[vhi]
}

// forEachSection walks the six per-node section slices in wire order:
// both offset arrays whole (the partial graph needs full CSR/CSC
// shape), then the owned in-edge slice of inSrc/inW and the owned
// out-edge slice of outDst/outPos.
func (s *snapshotSections) forEachSection(a distAssign, node int, fn func(sec byte, fileOff int64, elemSize int, elemBase, elemCount int64) error) error {
	_, _, inLo, inHi, outLo, outHi := s.nodeRanges(a, node)
	walk := []struct {
		sec       byte
		fileOff   int64
		elemSize  int
		base, cnt int64
	}{
		{secDistInOff, s.layout.InOff, 8, 0, int64(s.n + 1)},
		{secDistInSrc, s.layout.InSrc, 4, inLo, inHi - inLo},
		{secDistInW, s.layout.InW, 4, inLo, inHi - inLo},
		{secDistOutOff, s.layout.OutOff, 8, 0, int64(s.n + 1)},
		{secDistOutDst, s.layout.OutDst, 4, outLo, outHi - outLo},
		{secDistOutPos, s.layout.OutPos, 8, outLo, outHi - outLo},
	}
	for _, w := range walk {
		if err := fn(w.sec, w.fileOff, w.elemSize, w.base, w.cnt); err != nil {
			return err
		}
	}
	return nil
}

// sendSections streams one node's owned section slices to a joiner,
// chunked under the frame size cap and terminated by fDone.
func (s *snapshotSections) sendSections(cc *ctrlConn, a distAssign, node int) error {
	buf := make([]byte, maxFrameBody-64)
	err := s.forEachSection(a, node, func(sec byte, fileOff int64, elemSize int, elemBase, elemCount int64) error {
		bytesLeft := elemCount * int64(elemSize)
		pos := fileOff + elemBase*int64(elemSize)
		elem := elemBase
		for bytesLeft > 0 {
			take := min(bytesLeft, int64(len(buf)))
			take -= take % int64(elemSize)
			if _, err := s.f.ReadAt(buf[:take], pos); err != nil {
				return fmt.Errorf("tcp: snapshot section %d at %d: %w", sec, pos, err)
			}
			f := appendSectionChunk(newFrame(fSection), sectionChunk{sec: sec, elemBase: elem, payload: buf[:take]})
			if err := cc.write(f); err != nil {
				return err
			}
			pos += take
			elem += take / int64(elemSize)
			bytesLeft -= take
		}
		return nil
	})
	if err != nil {
		return err
	}
	return cc.write(newFrame(fDone))
}

// ownedGraph assembles the coordinator's own partial graph straight
// from the file — the same slices a joiner receives over the wire, via
// the same installer.
func (s *snapshotSections) ownedGraph(a distAssign) (*graph.Graph, error) {
	asm := newSectionAssembly(a)
	err := s.forEachSection(a, a.node, func(sec byte, fileOff int64, elemSize int, elemBase, elemCount int64) error {
		if elemCount == 0 {
			return nil
		}
		raw := make([]byte, elemCount*int64(elemSize))
		if _, err := s.f.ReadAt(raw, fileOff+elemBase*int64(elemSize)); err != nil {
			return fmt.Errorf("tcp: snapshot section %d: %w", sec, err)
		}
		return asm.install(sectionChunk{sec: sec, elemBase: elemBase, payload: raw})
	})
	if err != nil {
		return nil, err
	}
	return asm.assemble()
}

// sectionAssembly accumulates fSection chunks into the six section
// arrays and assembles the validated partial graph. Array sizes come
// from the assignment, whose dimensions decodeAssign range-checked at
// the protocol boundary.
type sectionAssembly struct {
	a      distAssign
	inOff  []int64
	inSrc  []uint32
	inW    []float32
	outOff []int64
	outDst []uint32
	outPos []int64
}

func newSectionAssembly(a distAssign) *sectionAssembly {
	return &sectionAssembly{
		a:      a,
		inOff:  make([]int64, a.n+1),
		inSrc:  make([]uint32, a.m),
		inW:    make([]float32, a.m),
		outOff: make([]int64, a.n+1),
		outDst: make([]uint32, a.m),
		outPos: make([]int64, a.m),
	}
}

// install places one chunk, bounds-checked against the declared
// dimensions.
func (asm *sectionAssembly) install(c sectionChunk) error {
	checkAligned := func(elemSize int, dstLen int) (int64, error) {
		if len(c.payload)%elemSize != 0 {
			return 0, fmt.Errorf("tcp: section %d chunk %d bytes, not %d-byte aligned", c.sec, len(c.payload), elemSize)
		}
		count := int64(len(c.payload) / elemSize)
		if c.elemBase+count > int64(dstLen) {
			return 0, fmt.Errorf("tcp: section %d chunk [%d,%d) exceeds %d entries", c.sec, c.elemBase, c.elemBase+count, dstLen)
		}
		return count, nil
	}
	switch c.sec {
	case secDistInOff, secDistOutOff, secDistOutPos:
		dst := asm.inOff
		if c.sec == secDistOutOff {
			dst = asm.outOff
		} else if c.sec == secDistOutPos {
			dst = asm.outPos
		}
		count, err := checkAligned(8, len(dst))
		if err != nil {
			return err
		}
		for i := int64(0); i < count; i++ {
			dst[c.elemBase+i] = int64(binary.LittleEndian.Uint64(c.payload[i*8:]))
		}
	case secDistInSrc, secDistOutDst:
		dst := asm.inSrc
		if c.sec == secDistOutDst {
			dst = asm.outDst
		}
		count, err := checkAligned(4, len(dst))
		if err != nil {
			return err
		}
		for i := int64(0); i < count; i++ {
			dst[c.elemBase+i] = binary.LittleEndian.Uint32(c.payload[i*4:])
		}
	case secDistInW:
		count, err := checkAligned(4, len(asm.inW))
		if err != nil {
			return err
		}
		for i := int64(0); i < count; i++ {
			asm.inW[c.elemBase+i] = math.Float32frombits(binary.LittleEndian.Uint32(c.payload[i*4:]))
		}
	default:
		return fmt.Errorf("tcp: unknown section id %d", c.sec)
	}
	return nil
}

func (asm *sectionAssembly) assemble() (*graph.Graph, error) {
	return graph.FromSections(asm.a.n, asm.a.m, asm.inOff, asm.inSrc, asm.inW, asm.outOff, asm.outDst, asm.outPos)
}

// receiveSections drains the coordinator's fSection stream (terminated
// by fDone) into an assembled partial graph.
func receiveSections(cc *ctrlConn, a distAssign) (*graph.Graph, error) {
	asm := newSectionAssembly(a)
	for {
		body, err := cc.read()
		if err != nil {
			return nil, fmt.Errorf("tcp: receiving sections: %w", err)
		}
		if body[0] == fDone {
			return asm.assemble()
		}
		if body[0] != fSection {
			return nil, fmt.Errorf("tcp: unexpected frame %d in section stream", body[0])
		}
		c, err := decodeSectionChunk(body[1:])
		if err != nil {
			return nil, err
		}
		if err := asm.install(c); err != nil {
			return nil, err
		}
	}
}
