package tcp

import (
	"bytes"
	"testing"

	"graphabcd/internal/cluster"
)

// FuzzFrameDecode throws hostile bytes at the frame reader and, when a
// frame survives the CRC, at the envelope decoder behind it. Neither may
// panic, and an accepted frame must re-seal to the exact bytes consumed
// — which also proves the reader never fabricates payload it was not
// given.
func FuzzFrameDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(frameFixture())
	f.Add(bytes.Repeat([]byte{0xff}, 32))
	env := newFrame(fEnvelope)
	env = cluster.AppendEnvelope(env, cluster.NewAck(1, 42))
	f.Add(sealFrame(env))
	// A frame claiming the maximum body with almost no bytes behind it:
	// the reader must fail on truncation without allocating the claim.
	f.Add([]byte{0x00, 0x00, 0x10, 0x00, 0x01, 0x02})
	f.Fuzz(func(t *testing.T, b []byte) {
		r := bytes.NewReader(b)
		body, err := readFrame(r)
		if err != nil {
			return
		}
		if len(body) < 1 || len(body) > maxFrameBody {
			t.Fatalf("accepted body of %d bytes", len(body))
		}
		consumed := len(b) - r.Len()
		resealed := sealFrame(append(make([]byte, frameLenSize, frameLenSize+len(body)+frameCRCSize), body...))
		if !bytes.Equal(resealed, b[:consumed]) {
			t.Fatalf("re-seal mismatch:\n in  %x\n out %x", b[:consumed], resealed)
		}
		if body[0] == fEnvelope {
			if _, err := cluster.DecodeEnvelope(body[1:]); err != nil {
				return
			}
		}
	})
}
