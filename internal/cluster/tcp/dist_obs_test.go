// Observability-plane tests for the -listen/-join runtime: fStats
// aggregation over the control lane and the /readyz readiness dance
// around a checkpoint resume (DESIGN.md §13).
package tcp_test

import (
	"context"
	"net"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"graphabcd/internal/bcd"
	"graphabcd/internal/checkpoint"
	"graphabcd/internal/cluster/tcp"
	"graphabcd/internal/telemetry"
)

// runDistLoopbackOpts is runDistLoopback with per-joiner transport
// options, for wiring joiner-side registries and health into the run.
func runDistLoopbackOpts(t *testing.T, snapPath string, cfg tcp.DistConfig, joinOpts []tcp.Options) *tcp.DistResult {
	t.Helper()
	ctrl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	type serveOut struct {
		res *tcp.DistResult
		err error
	}
	serveCh := make(chan serveOut, 1)
	go func() {
		res, err := tcp.Serve(ctx, ctrl, snapPath, cfg)
		serveCh <- serveOut{res, err}
	}()
	joinCh := make(chan error, cfg.Nodes-1)
	for i := 1; i < cfg.Nodes; i++ {
		go func(i int) {
			joinCh <- tcp.Join(ctx, ctrl.Addr().String(), joinOpts[i-1])
		}(i)
	}

	out := <-serveCh
	if out.err != nil {
		t.Fatalf("serve: %v", out.err)
	}
	for i := 1; i < cfg.Nodes; i++ {
		if err := <-joinCh; err != nil {
			t.Fatalf("join: %v", err)
		}
	}
	return out.res
}

// TestDistStatsAggregation runs a three-node loopback cluster with the
// aggregation plane on and requires the coordinator's merged snapshot to
// cover every node: per-node progress counters, wire counters, and stage
// histograms, all shipped as deltas over fStats rounds and folded into
// one ClusterStats — without disturbing the run's fixed point.
func TestDistStatsAggregation(t *testing.T) {
	g, snap := distGraphFile(t, 98)
	cfg := distConfig(3, "cc")
	cfg.Telemetry = telemetry.New(telemetry.Options{Histograms: true})
	cfg.Cluster = telemetry.NewClusterStats()
	cfg.StatsEvery = 2 * time.Millisecond

	joinRegs := []*telemetry.Registry{
		telemetry.New(telemetry.Options{Histograms: true}),
		telemetry.New(telemetry.Options{Histograms: true}),
	}
	res := runDistLoopbackOpts(t, snap, cfg, []tcp.Options{
		{Telemetry: joinRegs[0]},
		{Telemetry: joinRegs[1]},
	})

	// The run's correctness is untouched by aggregation rounds.
	want := bcd.RefCC(g)
	for v := range want {
		if res.Uint[v] != want[v] {
			t.Fatalf("cc[%d] = %d, want %d (stats rounds disturbed the run)", v, res.Uint[v], want[v])
		}
	}

	nodes := cfg.Cluster.Nodes()
	if len(nodes) != 3 {
		t.Fatalf("merged snapshot covers %d nodes, want 3", len(nodes))
	}
	for i, n := range nodes {
		if n.Node != i {
			t.Fatalf("nodes[%d].Node = %d, want %d", i, n.Node, i)
		}
		if n.Counters[telemetry.CtrVertexUpdates] == 0 {
			t.Errorf("node %d reported no vertex updates", i)
		}
		if n.Stages[telemetry.StageGather].Count() == 0 {
			t.Errorf("node %d reported no gather observations", i)
		}
		if n.Wire.FramesSent == 0 {
			t.Errorf("node %d reported no frames sent", i)
		}
	}

	// The final stats round runs after quiescence, so the merged counters
	// are complete: every registry's cumulative total must appear in the
	// coordinator's accumulated deltas. The coordinator is always node 0;
	// joiners are assigned ids in connection order, which the test does
	// not control, so their totals are compared as a multiset.
	if got, want := nodes[0].Counters[telemetry.CtrVertexUpdates], cfg.Telemetry.Total(telemetry.CtrVertexUpdates); got != want {
		t.Errorf("node 0 merged vertex updates = %d, registry says %d", got, want)
	}
	merged := []int64{nodes[1].Counters[telemetry.CtrVertexUpdates], nodes[2].Counters[telemetry.CtrVertexUpdates]}
	local := []int64{joinRegs[0].Total(telemetry.CtrVertexUpdates), joinRegs[1].Total(telemetry.CtrVertexUpdates)}
	sort.Slice(merged, func(a, b int) bool { return merged[a] < merged[b] })
	sort.Slice(local, func(a, b int) bool { return local[a] < local[b] })
	if merged[0] != local[0] || merged[1] != local[1] {
		t.Errorf("joiner merged vertex updates %v, registries say %v", merged, local)
	}

	total := cfg.Cluster.Total()
	if total.Counters[telemetry.CtrMessagesSent] == 0 || total.Counters[telemetry.CtrBatchesSent] == 0 {
		t.Error("cluster total shows no cross-node traffic")
	}
	// The plane times its own rounds (at least the final post-quiescence
	// one ran), so its cost is an answerable question.
	if rounds, work, span := cfg.Cluster.RoundCost(); rounds < 1 || work <= 0 || span < work {
		t.Errorf("RoundCost() = %d rounds, work %v, span %v — the plane did not measure itself", rounds, work, span)
	}
	if res.Wire.FramesSent == 0 {
		t.Error("DistResult carries no coordinator wire snapshot")
	}
}

// TestDistStatsDisabledByDefault: with no Cluster sink configured, no
// fStats round runs and the result is unchanged — the plane is pay-as-
// you-go.
func TestDistStatsDisabledByDefault(t *testing.T) {
	g, snap := distGraphFile(t, 99)
	res := runDistLoopback(t, snap, distConfig(2, "cc"))
	want := bcd.RefCC(g)
	for v := range want {
		if res.Uint[v] != want[v] {
			t.Fatalf("cc[%d] = %d, want %d", v, res.Uint[v], want[v])
		}
	}
}

// TestDistReadyzFlipsOnResume drives the full readiness dance: a run is
// interrupted after its first committed checkpoint epoch, then resumed
// with Health wired on both nodes. Both nodes must pass through
// not-ready("checkpoint resume") before ready("running") — the /readyz
// contract that keeps scrapers away from a half-restored iterate — and
// end not-ready("stopped").
func TestDistReadyzFlipsOnResume(t *testing.T) {
	if testing.Short() {
		t.Skip("interrupt-and-resume over loopback is a slow dist run; health unit tests cover the endpoint in -short")
	}
	_, snap := distGraphFile(t, 100)
	ckdir := filepath.Join(t.TempDir(), "ckpt")
	cfg := distConfig(2, "pr")
	cfg.Epsilon = 1e-12
	cfg.CheckpointDir = ckdir
	cfg.CheckpointInterval = 2 * time.Millisecond

	// Segment 1: run until one epoch commits, then cancel the cluster.
	ctrl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	serveCh := make(chan error, 1)
	joinCh := make(chan error, 1)
	go func() {
		_, err := tcp.Serve(ctx, ctrl, snap, cfg)
		serveCh <- err
	}()
	go func() {
		joinCh <- tcp.Join(ctx, ctrl.Addr().String(), tcp.Options{})
	}()
	store, err := checkpoint.NewDirStore(ckdir)
	if err != nil {
		t.Fatal(err)
	}
	committed := false
	for deadline := time.Now().Add(time.Minute); time.Now().Before(deadline); {
		if _, err := store.Latest(); err == nil {
			committed = true
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !committed {
		t.Fatal("no checkpoint epoch committed within a minute")
	}
	cancel()
	<-serveCh
	<-joinCh
	_ = ctrl.Close()

	// Segment 2: resume with Health attached to both nodes.
	coordHealth := telemetry.NewHealth("starting")
	joinHealth := telemetry.NewHealth("starting")
	resumed := cfg
	resumed.Resume = "latest"
	resumed.Health = coordHealth
	if res := runDistLoopbackOpts(t, snap, resumed, []tcp.Options{{Health: joinHealth}}); res.Float == nil {
		t.Fatal("resumed pr run returned no values")
	}

	for name, h := range map[string]*telemetry.Health{"coordinator": coordHealth, "joiner": joinHealth} {
		want := []telemetry.HealthTransition{
			{Ready: false, Reason: "starting"},
			{Ready: false, Reason: "checkpoint resume"},
			{Ready: true, Reason: "running"},
			{Ready: false, Reason: "stopped"},
		}
		got := h.History()
		if len(got) != len(want) {
			t.Fatalf("%s readiness history = %v, want %v", name, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s readiness[%d] = %v, want %v", name, i, got[i], want[i])
			}
		}
		// The endpoint view of the final state: 503, run stopped.
		rec := httptest.NewRecorder()
		telemetry.ReadyzHandler(h).ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
		if rec.Code != 503 || rec.Body.String() != "not ready: stopped\n" {
			t.Errorf("%s post-run readyz = %d %q", name, rec.Code, rec.Body.String())
		}
	}
}
