// Package cluster scales GraphABCD out across multiple nodes — the
// distributed deployment the paper's asynchronous design argues for
// (Sec. IV-A3: "the whole system can scale out to more heterogeneous
// platforms without further coordination logic") but only prototypes on a
// single CPU-FPGA pair.
//
// Each node owns a set of vertex blocks: its vertex values, the
// edge-cache slots of its vertices' in-edges, and a private scheduler
// and worker set. SCATTER updates whose destination block lives on
// another node travel as state-based messages through a pluggable
// Transport. Because updates are state-based, messages are idempotent
// and tolerate delay and redelivery — the bounded-staleness condition of
// asynchronous BCD is the only correctness requirement, so there are
// still no locks and no barriers on the steady-state path, only channels
// and atomics.
//
// The transport contract is deliberately weak: messages may be dropped,
// duplicated, delayed, or reordered (internal/chaos injects exactly
// those faults). The cluster compensates with at-least-once delivery —
// unacked batches are retried with exponential backoff — and per-slot
// write stamps that discard stale redeliveries. Nodes may also be killed
// mid-run (Control.FailNode): the dead node's blocks are reassigned to
// survivors and the orphaned edge-cache state is rebuilt by
// re-scattering current owner values, which is exactly the idempotent
// write the normal path performs.
//
// Termination uses an exact, ack-based distributed-quiescence check: a
// monotone created-batch counter, an in-flight counter decremented only
// after the receiving node has applied (and re-activated from) a batch
// and its acknowledgment has come back, and a coordinator that accepts
// termination only when no rebuild is in progress, no batch is
// unsettled, every live node is quiescent, and nothing changed while it
// looked. See checkQuiescence in node.go for the argument.
package cluster

import (
	"context"
	"fmt"
	"time"

	"graphabcd/internal/bcd"
	"graphabcd/internal/core"
	"graphabcd/internal/graph"
	"graphabcd/internal/telemetry"
)

// Config parameterizes a distributed run.
type Config struct {
	// Nodes is the number of nodes the blocks are partitioned across.
	// If Nodes exceeds the block count it is clamped down so every node
	// owns at least one block (Stats.Nodes reports the effective count).
	Nodes int
	// BlockSize is the BCD block size within each node.
	BlockSize int
	// WorkersPerNode is the number of gather-apply workers per node.
	WorkersPerNode int
	// Epsilon is the activation threshold, as in core.Config.
	Epsilon float64
	// MaxEpochs bounds total work at MaxEpochs * |V| vertex updates
	// across the cluster; 0 means run to convergence.
	MaxEpochs float64
	// NetDelay delays every inter-node data message by this duration,
	// modeling network latency. Asynchronous BCD requires only that the
	// delay is bounded; correctness tests inject it.
	NetDelay time.Duration
	// BatchSize groups remote updates per message (amortizes the
	// per-message cost, increases staleness). 0 means 64.
	BatchSize int

	// Transport overrides how envelopes move between nodes. nil means
	// the perfect in-process transport; chaos.New builds a seeded faulty
	// one (drops, duplicates, delay jitter, partitions).
	Transport Transport
	// RetryBase is the initial at-least-once retransmission backoff for
	// unacked batches; it doubles per attempt (capped at 50ms). 0 means
	// 2ms. Retries are idempotent by the state-based update discipline.
	RetryBase time.Duration
	// RetryDeadline bounds how long one batch may stay undelivered to a
	// live node before the run fails (an unbounded partition is the one
	// fault the cluster does not tolerate — see DESIGN.md §8). 0 means
	// 30s.
	RetryDeadline time.Duration
	// MaxUnacked caps each node's sent-but-unacknowledged batches: a
	// worker flushing past the cap waits for acks before creating more.
	// The window keeps the retry scan bounded when the transport is
	// slower than the workers — without it a lossy, backpressured wire
	// lets the unacked set (and with it the retransmission backlog)
	// grow until retries arrive too late to beat RetryDeadline. 0 means
	// 1024; negative means unbounded (the pre-window behavior, which
	// perfect in-process transports never notice).
	MaxUnacked int
	// Watchdog is the stall-watchdog sampling period: every period with
	// zero progress (no vertex update, no batch settled) increments
	// Stats.StallWindows. 0 means 500ms; negative disables the watchdog.
	Watchdog time.Duration
	// OnStart, when non-nil, receives the run's Control handle right
	// after the workers start — the hook from which tests and chaos
	// harnesses schedule mid-run node failures.
	OnStart func(Control)
	// Telemetry, when non-nil, is the live instrumentation registry the
	// run emits into (internal/telemetry): the same registry the single-
	// node engine uses, extended with the cluster counters (messages,
	// batches, retries, drops, node failures) and per-batch StageApply
	// latency. The caller may read Registry.Snapshot concurrently while
	// the run executes. When nil the cluster uses a private bare-counter
	// registry that only feeds Stats.
	Telemetry *telemetry.Registry
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Nodes <= 0:
		return fmt.Errorf("cluster: Nodes must be positive, got %d", c.Nodes)
	case c.BlockSize < 0:
		return fmt.Errorf("cluster: negative block size %d", c.BlockSize)
	case c.WorkersPerNode <= 0:
		return fmt.Errorf("cluster: WorkersPerNode must be positive, got %d", c.WorkersPerNode)
	case c.Epsilon < 0:
		return fmt.Errorf("cluster: negative epsilon %g", c.Epsilon)
	case c.MaxEpochs < 0:
		return fmt.Errorf("cluster: negative MaxEpochs %g", c.MaxEpochs)
	case c.NetDelay < 0:
		return fmt.Errorf("cluster: negative NetDelay %v", c.NetDelay)
	case c.BatchSize < 0:
		return fmt.Errorf("cluster: negative BatchSize %d", c.BatchSize)
	case c.RetryBase < 0:
		return fmt.Errorf("cluster: negative RetryBase %v", c.RetryBase)
	case c.RetryDeadline < 0:
		return fmt.Errorf("cluster: negative RetryDeadline %v", c.RetryDeadline)
	}
	return nil
}

func (c Config) batchSize() int {
	if c.BatchSize == 0 {
		return 64
	}
	return c.BatchSize
}

func (c Config) maxUnacked() int {
	if c.MaxUnacked == 0 {
		return 1024
	}
	if c.MaxUnacked < 0 {
		return 0 // unbounded
	}
	return c.MaxUnacked
}

func (c Config) retryBase() time.Duration {
	if c.RetryBase == 0 {
		return 2 * time.Millisecond
	}
	return c.RetryBase
}

func (c Config) retryDeadline() time.Duration {
	if c.RetryDeadline == 0 {
		return 30 * time.Second
	}
	return c.RetryDeadline
}

func (c Config) watchdogPeriod() time.Duration {
	if c.Watchdog == 0 {
		return 500 * time.Millisecond
	}
	return c.Watchdog
}

// Stats summarizes a distributed run.
type Stats struct {
	core.Stats
	// Nodes is the effective node count the run used (after clamping to
	// the block count).
	Nodes int
	// MessagesSent counts individual remote slot updates.
	MessagesSent int64
	// BatchesSent counts logical network messages (batches of updates);
	// retransmissions of the same batch are counted in BatchesRetried.
	BatchesSent int64
	// LocalWrites counts scatter writes that stayed node-local.
	LocalWrites int64
	// BatchesRetried counts at-least-once retransmissions of unacked
	// batches.
	BatchesRetried int64
	// BatchesDropped counts envelopes lost in the transport (injected
	// faults) plus batches abandoned because their destination failed.
	BatchesDropped int64
	// BatchesDuplicated counts envelopes the transport delivered more
	// than once (injected faults).
	BatchesDuplicated int64
	// NodesFailed counts nodes killed mid-run via Control.FailNode.
	NodesFailed int64
}

// Result bundles final values with statistics.
type Result[V any] struct {
	Values []V
	Stats  Stats
}

// Run executes prog over g partitioned across cfg.Nodes nodes. Cancelling
// ctx stops the run gracefully: the partial result is returned with
// Stats.Converged == false and a nil error.
func Run[V, M any](ctx context.Context, g *graph.Graph, prog bcd.Program[V, M], cfg Config) (*Result[V], error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if _, ok := prog.(bcd.OpBased[V, M]); ok {
		return nil, fmt.Errorf("cluster: operation-based program %q is not supported: "+
			"delta messages are not idempotent under the cluster's at-least-once channel semantics",
			prog.Name())
	}
	c, err := newCluster(g, prog, cfg)
	if err != nil {
		return nil, err
	}
	return c.run(ctx)
}
