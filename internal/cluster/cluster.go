// Package cluster scales GraphABCD out across multiple nodes — the
// distributed deployment the paper's asynchronous design argues for
// (Sec. IV-A3: "the whole system can scale out to more heterogeneous
// platforms without further coordination logic") but only prototypes on a
// single CPU-FPGA pair.
//
// Each node owns a contiguous range of vertex blocks: its vertex values,
// the edge-cache slots of its vertices' in-edges, and a private scheduler
// and worker set. SCATTER updates whose destination block lives on
// another node travel as state-based messages through that node's inbox
// channel (optionally delayed to model network latency). Because updates
// are state-based, messages are idempotent and tolerate reordering and
// delay — the bounded-staleness condition of asynchronous BCD is the only
// correctness requirement, so there are still no locks and no barriers,
// only channels.
//
// Termination uses an exact distributed-quiescence check: a monotone
// sent-message counter, an in-flight counter decremented only after the
// receiving node has applied (and re-activated from) a message, and a
// coordinator that accepts termination only when (1) no message is in
// flight, then (2) every node is quiescent, and finally (3) no message
// was sent while it looked. See termination.go for the argument.
package cluster

import (
	"fmt"
	"time"

	"graphabcd/internal/bcd"
	"graphabcd/internal/core"
	"graphabcd/internal/graph"
)

// Config parameterizes a distributed run.
type Config struct {
	// Nodes is the number of nodes the blocks are partitioned across.
	Nodes int
	// BlockSize is the BCD block size within each node.
	BlockSize int
	// WorkersPerNode is the number of gather-apply workers per node.
	WorkersPerNode int
	// Epsilon is the activation threshold, as in core.Config.
	Epsilon float64
	// MaxEpochs bounds total work at MaxEpochs * |V| vertex updates
	// across the cluster; 0 means run to convergence.
	MaxEpochs float64
	// NetDelay delays every inter-node message by this duration,
	// modeling network latency. Asynchronous BCD requires only that the
	// delay is bounded; correctness tests inject it.
	NetDelay time.Duration
	// BatchSize groups remote updates per message (amortizes the
	// per-message cost, increases staleness). 0 means 64.
	BatchSize int
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Nodes <= 0:
		return fmt.Errorf("cluster: Nodes must be positive, got %d", c.Nodes)
	case c.BlockSize < 0:
		return fmt.Errorf("cluster: negative block size %d", c.BlockSize)
	case c.WorkersPerNode <= 0:
		return fmt.Errorf("cluster: WorkersPerNode must be positive, got %d", c.WorkersPerNode)
	case c.Epsilon < 0:
		return fmt.Errorf("cluster: negative epsilon %g", c.Epsilon)
	case c.MaxEpochs < 0:
		return fmt.Errorf("cluster: negative MaxEpochs %g", c.MaxEpochs)
	case c.NetDelay < 0:
		return fmt.Errorf("cluster: negative NetDelay %v", c.NetDelay)
	case c.BatchSize < 0:
		return fmt.Errorf("cluster: negative BatchSize %d", c.BatchSize)
	}
	return nil
}

func (c Config) batchSize() int {
	if c.BatchSize == 0 {
		return 64
	}
	return c.BatchSize
}

// Stats summarizes a distributed run.
type Stats struct {
	core.Stats
	// Nodes is the node count the run used.
	Nodes int
	// MessagesSent counts individual remote slot updates.
	MessagesSent int64
	// BatchesSent counts network messages (batches of updates).
	BatchesSent int64
	// LocalWrites counts scatter writes that stayed node-local.
	LocalWrites int64
}

// Result bundles final values with statistics.
type Result[V any] struct {
	Values []V
	Stats  Stats
}

// Run executes prog over g partitioned across cfg.Nodes nodes.
func Run[V, M any](g *graph.Graph, prog bcd.Program[V, M], cfg Config) (*Result[V], error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if _, ok := prog.(bcd.OpBased[V, M]); ok {
		return nil, fmt.Errorf("cluster: operation-based program %q is not supported: "+
			"delta messages are not idempotent under the cluster's at-least-once channel semantics",
			prog.Name())
	}
	c, err := newCluster(g, prog, cfg)
	if err != nil {
		return nil, err
	}
	return c.run()
}
