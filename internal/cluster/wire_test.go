package cluster

import (
	"bytes"
	"encoding/hex"
	"math/rand"
	"testing"
	"time"
)

func wireFixture() Envelope {
	return NewDataEnvelope(3, 0x0102030405060708, time.Unix(0, 0x11223344),
		[]int64{7, 42}, []int32{1, 5}, []uint64{0xdeadbeef, 0xcafe, 1, 0})
}

// TestEnvelopeGolden pins the byte-level encoding: a codec change that
// alters the wire format must consciously update this hex string.
func TestEnvelopeGolden(t *testing.T) {
	const golden = "00" + // kind: data
		"03000000" + // from: 3
		"0807060504030201" + // id
		"4433221100000000" + // sentAt unix nanos
		"02000000" + // nslots
		"04000000" + // nwords
		"0700000000000000" + "2a00000000000000" + // slots
		"01000000" + "05000000" + // blocks
		"efbeadde00000000" + "feca000000000000" +
		"0100000000000000" + "0000000000000000" // words
	enc := AppendEnvelope(nil, wireFixture())
	if got := hex.EncodeToString(enc); got != golden {
		t.Fatalf("encoding drifted:\n got  %s\n want %s", got, golden)
	}
	if len(enc) != EnvelopeWireSize(wireFixture()) {
		t.Fatalf("EnvelopeWireSize %d, encoded %d", EnvelopeWireSize(wireFixture()), len(enc))
	}
}

func sameEnvelope(t *testing.T, a, b Envelope) {
	t.Helper()
	if a.kind != b.kind || a.from != b.from || a.id != b.id || !a.sentAt.Equal(b.sentAt) {
		t.Fatalf("header mismatch: %+v vs %+v", a, b)
	}
	if len(a.slots) != len(b.slots) || len(a.blocks) != len(b.blocks) || len(a.words) != len(b.words) {
		t.Fatalf("payload length mismatch: %+v vs %+v", a, b)
	}
	for i := range a.slots {
		if a.slots[i] != b.slots[i] || a.blocks[i] != b.blocks[i] {
			t.Fatalf("slot %d mismatch", i)
		}
	}
	for i := range a.words {
		if a.words[i] != b.words[i] {
			t.Fatalf("word %d mismatch", i)
		}
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	envs := []Envelope{
		wireFixture(),
		NewAck(12, 99),
		NewDataEnvelope(0, 0, time.Time{}, nil, nil, nil),
	}
	for i := 0; i < 50; i++ {
		ns := rng.Intn(20)
		words := ns * (1 + rng.Intn(3))
		e := Envelope{kind: envData, from: rng.Intn(64), id: rng.Uint64(),
			slots: make([]int64, ns), blocks: make([]int32, ns), words: make([]uint64, words)}
		for j := range e.slots {
			e.slots[j] = int64(rng.Uint32())
			e.blocks[j] = int32(rng.Intn(1 << 16))
		}
		for j := range e.words {
			e.words[j] = rng.Uint64()
		}
		if rng.Intn(2) == 0 {
			e.sentAt = time.Unix(0, int64(rng.Uint32())+1)
		}
		envs = append(envs, e)
	}
	for i, e := range envs {
		enc := AppendEnvelope(nil, e)
		dec, err := DecodeEnvelope(enc)
		if err != nil {
			t.Fatalf("env %d: %v", i, err)
		}
		sameEnvelope(t, e, dec)
	}
}

// TestEnvelopeTruncation checks every strict prefix of a valid encoding
// is rejected: the declared counts must match the byte length exactly.
func TestEnvelopeTruncation(t *testing.T) {
	enc := AppendEnvelope(nil, wireFixture())
	for n := 0; n < len(enc); n++ {
		if _, err := DecodeEnvelope(enc[:n]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", n, len(enc))
		}
	}
	if _, err := DecodeEnvelope(append(bytes.Clone(enc), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestEnvelopeRejectsMalformed(t *testing.T) {
	mangle := func(f func(b []byte)) []byte {
		b := AppendEnvelope(nil, wireFixture())
		f(b)
		return b
	}
	cases := map[string][]byte{
		"unknown kind":  mangle(func(b []byte) { b[0] = 9 }),
		"sender range":  mangle(func(b []byte) { b[3] = 0xff }),
		"count forgery": mangle(func(b []byte) { b[21] = 3 }),
		"orphan words": func() []byte {
			b := AppendEnvelope(nil, NewAck(1, 2))
			b[25] = 4 // claim words on a payload-free ack
			return b
		}(),
	}
	for name, b := range cases {
		if _, err := DecodeEnvelope(b); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// An ack whose kind byte says data must fail the multiple-of check
	// or the length check, never panic.
	b := AppendEnvelope(nil, NewAck(1, 2))
	b[0] = byte(envData)
	if _, err := DecodeEnvelope(b); err != nil {
		t.Fatalf("payload-free data envelope should be legal: %v", err)
	}
}

func FuzzEnvelopeDecode(f *testing.F) {
	f.Add(AppendEnvelope(nil, wireFixture()))
	f.Add(AppendEnvelope(nil, NewAck(2, 77)))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, envelopeHdrLen))
	f.Fuzz(func(t *testing.T, b []byte) {
		e, err := DecodeEnvelope(b)
		if err != nil {
			return
		}
		// Anything that decodes must re-encode to the identical bytes.
		if got := AppendEnvelope(nil, e); !bytes.Equal(got, b) {
			t.Fatalf("re-encode mismatch:\n in  %x\n out %x", b, got)
		}
	})
}
