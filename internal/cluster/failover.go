package cluster

import (
	"fmt"

	"graphabcd/internal/telemetry"
)

// Control is the live handle Config.OnStart receives once the run's
// workers are started. It lets tests, chaos harnesses, and operators
// inject node failures into a running cluster. All methods are safe for
// concurrent use and safe to call after the run has finished (they
// become errors or no-ops).
type Control interface {
	// FailNode kills node id mid-run: its workers and applier stop, its
	// unacked outgoing batches are abandoned, its blocks are reassigned
	// to the surviving nodes, and the orphaned edge-cache state is
	// rebuilt by re-scattering current owner values. The last live node
	// cannot be failed.
	FailNode(id int) error
	// LiveNodes returns the number of nodes still alive.
	LiveNodes() int
	// BatchesSent returns the number of logical batches created so far,
	// a convenient progress probe for scheduling mid-run faults.
	BatchesSent() int64
}

func (c *clusterRun[V, M]) LiveNodes() int     { return int(c.liveNodes.Load()) }
func (c *clusterRun[V, M]) BatchesSent() int64 { return c.tel.Total(telemetry.CtrBatchesSent) }

// FailNode implements Control. The recovery argument mirrors the paper's
// correctness story: vertex values are the ground truth of a state-based
// program, so every cache slot and every lost in-flight batch can be
// reconstructed by re-scattering ScatterValue(src, values[src]) — the
// same idempotent write the normal path performs. The rebuild runs with
// the world paused (workers parked at the fence, appliers parked at an
// envelope boundary) and fences the rebuilt slots with a fresh write
// stamp so stale in-flight envelopes that surface later are discarded.
func (c *clusterRun[V, M]) FailNode(id int) error {
	c.failMu.Lock()
	defer c.failMu.Unlock()
	if id < 0 || id >= len(c.nodes) {
		return fmt.Errorf("cluster: FailNode(%d): no such node", id)
	}
	n := c.nodes[id]
	if n.failed.Load() {
		return fmt.Errorf("cluster: FailNode(%d): node already failed", id)
	}
	if c.liveNodes.Load() <= 1 {
		return fmt.Errorf("cluster: FailNode(%d): cannot fail the last live node", id)
	}
	if c.stopping.Load() {
		return fmt.Errorf("cluster: FailNode(%d): run already stopping", id)
	}

	// Gate quiescence for the whole recovery: the termination detector
	// must not accept a snapshot taken between "batches to the dead node
	// abandoned" and "compensating re-activations registered".
	c.recovering.Add(1)
	defer c.recovering.Add(-1)
	c.sh0.Add(telemetry.CtrNodesFailed, 1)
	c.liveNodes.Add(-1)

	// 1. Kill: the node's workers observe the flag and exit; its applier
	// switches to discard mode so senders never block on the dead inbox.
	n.failed.Store(true)
	close(n.down)

	// 2. Pause the world. The fence write lock waits for every worker's
	// in-progress claim-process-done iteration (so no scatter is mid-
	// flight and ownership reads are stable); the appliers' per-envelope
	// locks park them at an envelope boundary (so no cache slot is being
	// written while we rebuild it).
	c.fence.Lock()
	defer c.fence.Unlock()
	for _, m := range c.nodes {
		m.applyMu.Lock()
		defer m.applyMu.Unlock()
	}

	// 3. Abandon the dead node's own unacked batches: nobody will retry
	// them. Their payloads are re-derived in step 5b from values[].
	n.unackedMu.Lock()
	orphans := len(n.unacked)
	for bid := range n.unacked {
		delete(n.unacked, bid)
	}
	n.unackedMu.Unlock()
	n.releaseWindow(orphans)
	if orphans > 0 {
		c.sh0.Add(telemetry.CtrBatchesDropped, int64(orphans))
		c.inflight.Add(int64(-orphans))
	}

	// 4. Reassign the dead node's blocks round-robin across survivors.
	survivors := make([]*node[V, M], 0, len(c.nodes)-1)
	for _, m := range c.nodes {
		if !m.failed.Load() {
			survivors = append(survivors, m)
		}
	}
	adopted := make(map[int]*node[V, M])
	next := 0
	for b := 0; b < c.part.NumBlocks(); b++ {
		if c.owner(b) != id {
			continue
		}
		heir := survivors[next%len(survivors)]
		next++
		c.blockOwner[b].Store(int32(heir.id))
		adopted[b] = heir
	}

	// 5. Rebuild, fencing every rewritten slot with a stamp newer than
	// any envelope created before this pause (retries keep their
	// original id, so late redeliveries lose against the fence).
	fenceSeq := c.seq.Add(1)
	buf := make([]uint64, max(c.values.Words(), 2))
	var val V

	// 5a. In-edge slots of adopted blocks: batches in flight *to* the
	// dead node died with its inbox; recompute every slot from the
	// source vertex's current value and re-activate the block on its
	// heir so the refreshed inputs are re-processed.
	for b, heir := range adopted {
		lo, hi := c.part.VertexRange(b)
		for v := lo; v < hi; v++ {
			for s := c.g.InOffset(v); s < c.g.InOffset(v+1); s++ {
				src := c.g.InSrc(s)
				c.values.LoadBuf(int64(src), &val, buf)
				c.cache.StoreBuf(s, c.prog.ScatterValue(src, val, c.g), buf)
				c.slotSeq[s].Store(fenceSeq)
			}
		}
		heir.st.Activate(b, 1)
	}

	// 5b. Out-edges of the dead node's vertices: batches in flight
	// *from* the dead node (step 3) carried scatter images of these
	// vertices; rewrite every out-slot from the current value and
	// re-activate the destination blocks on their owners.
	for b := range adopted {
		lo, hi := c.part.VertexRange(b)
		for v := lo; v < hi; v++ {
			c.values.LoadBuf(int64(v), &val, buf)
			sval := c.prog.ScatterValue(uint32(v), val, c.g)
			for i := c.g.OutOffset(v); i < c.g.OutOffset(v+1); i++ {
				slot := c.g.OutPos(i)
				c.cache.StoreBuf(slot, sval, buf)
				c.slotSeq[slot].Store(fenceSeq)
				db := c.part.BlockOf(c.g.OutDst(i))
				c.nodes[c.owner(db)].st.Activate(db, 1)
			}
		}
	}
	return nil
}
