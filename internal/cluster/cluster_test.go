package cluster

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"graphabcd/internal/bcd"
	"graphabcd/internal/gen"
	"graphabcd/internal/graph"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.RMAT(gen.DefaultRMAT(9, 6, 77))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func baseCfg(nodes int) Config {
	return Config{Nodes: nodes, BlockSize: 32, WorkersPerNode: 2, Epsilon: 1e-12}
}

func TestConfigValidate(t *testing.T) {
	if err := baseCfg(2).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Nodes: 0, WorkersPerNode: 1},
		{Nodes: 1, WorkersPerNode: 0},
		{Nodes: 1, WorkersPerNode: 1, BlockSize: -1},
		{Nodes: 1, WorkersPerNode: 1, Epsilon: -1},
		{Nodes: 1, WorkersPerNode: 1, MaxEpochs: -1},
		{Nodes: 1, WorkersPerNode: 1, NetDelay: -time.Second},
		{Nodes: 1, WorkersPerNode: 1, BatchSize: -1},
	}
	for i, cfg := range bad {
		if cfg.Validate() == nil {
			t.Errorf("config %d accepted", i)
		}
		if _, err := Run[float64, float64](context.Background(), testGraph(t), bcd.PageRank{}, cfg); err == nil {
			t.Errorf("config %d: Run accepted invalid config", i)
		}
	}
}

func TestDistributedPageRankMatchesReference(t *testing.T) {
	g := testGraph(t)
	want := bcd.RefPageRank(g, 0.85, 1e-13, 1000)
	for _, nodes := range []int{1, 2, 4, 7} {
		res, err := Run[float64, float64](context.Background(), g, bcd.PageRank{}, baseCfg(nodes))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Stats.Converged {
			t.Fatalf("%d nodes: did not converge", nodes)
		}
		for v := range want {
			if d := math.Abs(res.Values[v] - want[v]); d > 1e-7 {
				t.Fatalf("%d nodes: rank[%d] off by %g", nodes, v, d)
			}
		}
		if nodes == 1 && res.Stats.MessagesSent != 0 {
			t.Fatalf("single node sent %d messages", res.Stats.MessagesSent)
		}
		if nodes > 1 && res.Stats.MessagesSent == 0 {
			t.Fatalf("%d nodes exchanged no messages", nodes)
		}
		if res.Stats.Nodes != nodes {
			t.Fatalf("stats report %d nodes", res.Stats.Nodes)
		}
	}
}

func TestDistributedSSSPExact(t *testing.T) {
	cfgG := gen.DefaultRMAT(9, 6, 78)
	cfgG.MaxWeight = 16
	g, err := gen.RMAT(cfgG)
	if err != nil {
		t.Fatal(err)
	}
	src := uint32(3)
	want := bcd.RefSSSP(g, src)
	cfg := baseCfg(3)
	cfg.Epsilon = 0
	res, err := Run[float64, float64](context.Background(), g, bcd.SSSP{Source: src}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		got := res.Values[v]
		if got != want[v] && !(math.IsInf(got, 1) && math.IsInf(want[v], 1)) {
			t.Fatalf("dist[%d] = %g, want %g", v, got, want[v])
		}
	}
}

// Injected network latency must not affect the fixpoint — the bounded
// delay of asynchronous BCD in action across nodes.
func TestDistributedToleratesNetworkDelay(t *testing.T) {
	g := testGraph(t)
	want := bcd.RefPageRank(g, 0.85, 1e-13, 1000)
	cfg := baseCfg(4)
	cfg.NetDelay = 2 * time.Millisecond
	cfg.BatchSize = 16
	res, err := Run[float64, float64](context.Background(), g, bcd.PageRank{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Converged {
		t.Fatal("did not converge under network delay")
	}
	for v := range want {
		if d := math.Abs(res.Values[v] - want[v]); d > 1e-7 {
			t.Fatalf("rank[%d] off by %g under delay", v, d)
		}
	}
}

func TestDistributedBudgetStops(t *testing.T) {
	g := testGraph(t)
	cfg := baseCfg(2)
	cfg.Epsilon = 0 // never naturally quiescent within the budget
	cfg.MaxEpochs = 2
	res, err := Run[float64, float64](context.Background(), g, bcd.PageRank{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Converged {
		t.Fatal("budget-stopped run must not report convergence")
	}
	if res.Stats.Epochs > 4 {
		t.Fatalf("epochs %.1f far beyond budget 2", res.Stats.Epochs)
	}
}

func TestDistributedMoreNodesThanBlocks(t *testing.T) {
	g, err := gen.Uniform(40, 200, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Nodes: 8, BlockSize: 16, WorkersPerNode: 1, Epsilon: 1e-12}
	// 40 vertices / 16 = 3 blocks across 8 nodes: most nodes own nothing.
	res, err := Run[float64, float64](context.Background(), g, bcd.PageRank{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Converged {
		t.Fatal("did not converge with idle nodes")
	}
	if res.Stats.Nodes != 3 {
		t.Fatalf("8 requested nodes over 3 blocks must clamp to 3, got %d", res.Stats.Nodes)
	}
	want := bcd.RefPageRank(g, 0.85, 1e-13, 1000)
	for v := range want {
		if d := math.Abs(res.Values[v] - want[v]); d > 1e-7 {
			t.Fatalf("rank[%d] off by %g", v, d)
		}
	}
}

func TestDistributedRejectsOpBased(t *testing.T) {
	if _, err := Run[float64, float64](context.Background(), testGraph(t), bcd.PageRankDelta{}, baseCfg(2)); err == nil {
		t.Fatal("operation-based programs must be rejected")
	}
}

func TestDistributedMessageAccounting(t *testing.T) {
	g := testGraph(t)
	cfg := baseCfg(4)
	cfg.BatchSize = 8
	res, err := Run[float64, float64](context.Background(), g, bcd.PageRank{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.BatchesSent == 0 || res.Stats.MessagesSent < res.Stats.BatchesSent {
		t.Fatalf("accounting wrong: %d messages in %d batches",
			res.Stats.MessagesSent, res.Stats.BatchesSent)
	}
	if res.Stats.LocalWrites+res.Stats.MessagesSent != res.Stats.ScatterWrites {
		t.Fatal("local+remote writes must equal total scatter writes")
	}
}

// panicky injects a vertex-program panic so tests can prove worker
// panics surface as an error from Run instead of crashing the process.
type panicky struct{ bcd.PageRank }

func (panicky) Apply(v uint32, old float64, acc *float64, nEdges int64, g *graph.Graph) float64 {
	if v == 7 {
		panic("injected vertex fault")
	}
	return bcd.PageRank{}.Apply(v, old, acc, nEdges, g)
}

func TestDistributedWorkerPanicReturnsError(t *testing.T) {
	g := testGraph(t)
	res, err := Run[float64, float64](context.Background(), g, panicky{}, baseCfg(3))
	if err == nil {
		t.Fatal("worker panic must surface as an error from Run")
	}
	if res != nil {
		t.Fatal("failed run must not return a result")
	}
	if !strings.Contains(err.Error(), "panic") {
		t.Fatalf("error should identify the panic, got: %v", err)
	}
}

func TestDistributedCancellation(t *testing.T) {
	g := testGraph(t)

	// A context cancelled before the run starts must still yield a
	// graceful partial result, not an error.
	pre, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := baseCfg(2)
	res, err := Run[float64, float64](pre, g, bcd.PageRank{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Converged {
		t.Fatal("cancelled run must not report convergence")
	}
	if len(res.Values) != g.NumVertices() {
		t.Fatal("cancelled run must still return the partial values")
	}

	// Mid-run cancellation: network delay keeps the run alive well past
	// the cancellation point; Run must come back promptly regardless.
	ctx, cancel2 := context.WithCancel(context.Background())
	cfg = baseCfg(4)
	cfg.Epsilon = 0
	cfg.NetDelay = time.Millisecond
	cfg.BatchSize = 4
	go func() {
		time.Sleep(25 * time.Millisecond)
		cancel2()
	}()
	start := time.Now()
	res, err = Run[float64, float64](ctx, g, bcd.PageRank{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Converged {
		t.Fatal("cancelled run must not report convergence")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v to unwind", elapsed)
	}
}

// BatchSize 1 sends one message per remote slot update — the worst-case
// message pattern must still be exact.
func TestDistributedUnbatchedMessages(t *testing.T) {
	g := testGraph(t)
	want := bcd.RefPageRank(g, 0.85, 1e-13, 1000)
	cfg := baseCfg(3)
	cfg.BatchSize = 1
	res, err := Run[float64, float64](context.Background(), g, bcd.PageRank{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Converged {
		t.Fatal("did not converge")
	}
	if res.Stats.BatchesSent != res.Stats.MessagesSent {
		t.Fatalf("batch size 1: %d batches for %d messages",
			res.Stats.BatchesSent, res.Stats.MessagesSent)
	}
	for v := range want {
		if d := math.Abs(res.Values[v] - want[v]); d > 1e-7 {
			t.Fatalf("rank[%d] off by %g", v, d)
		}
	}
}
