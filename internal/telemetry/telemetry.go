// Package telemetry is the engine's live instrumentation layer: per-worker
// padded shards of atomic counters and fixed-bucket latency histograms, a
// sampled block-lifecycle tracer emitting Chrome trace-event JSON, and a
// convergence monitor — all merged on demand into a JSON-marshalable
// Snapshot served by cmd/graphabcd's -metrics-addr endpoint.
//
// The design constraint is the same one the engine itself lives under
// (DESIGN.md §7): the hot path must stay lock-free and allocation-free.
// Every hot-path write lands in a shard owned by exactly one worker —
// an uncontended atomic add on a cache line no other worker touches —
// and every aggregation (Snapshot, Total) is a read-side merge across
// shards. Shards are padded so adjacent workers never share a cache
// line; this same layout replaces the engine's old single-struct counter
// block, whose eight adjacent atomics were a measurable false-sharing
// hotspot (see BenchmarkCounters* and DESIGN.md §9).
//
// Cost discipline: with a Registry created without Options (the engine's
// private default), Stamp returns 0 without reading the clock, Observe
// and Trace return on a nil-pointer check, and the only residual cost is
// the sharded counter adds the engine needs anyway for Stats. With
// histograms or tracing enabled the added cost is two clock reads and a
// handful of uncontended atomic adds per *block* (never per edge or per
// vertex) — see BenchmarkEngineTelemetry in the repo root.
package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// Counter identifies one sharded run counter.
type Counter uint8

// The counter set covers the single-node engine, the cluster layer, and
// the tracer's own drop accounting, so every execution mode reports
// through one registry.
const (
	CtrBlockUpdates Counter = iota
	CtrVertexUpdates
	CtrEdgesTraversed
	CtrScatterWrites
	CtrHybridBlocks
	CtrTasksIssued
	CtrTasksFinished
	CtrStallWindows
	CtrMessagesSent
	CtrBatchesSent
	CtrLocalWrites
	CtrBatchesRetried
	CtrBatchesDropped
	CtrBatchesDuplicated
	CtrNodesFailed
	CtrTraceDropped
	// CtrCkptEpochs counts locally captured checkpoint epochs and
	// CtrCkptBytes the state bytes they wrote — the durability cost that
	// was previously computed and dropped (ISSUE 9 satellite).
	CtrCkptEpochs
	CtrCkptBytes
	NumCounters
)

// counterNames are the Snapshot/expvar keys, index-aligned with the
// Counter constants.
var counterNames = [NumCounters]string{
	"block_updates",
	"vertex_updates",
	"edges_traversed",
	"scatter_writes",
	"hybrid_blocks",
	"tasks_issued",
	"tasks_finished",
	"stall_windows",
	"messages_sent",
	"batches_sent",
	"local_writes",
	"batches_retried",
	"batches_dropped",
	"batches_duplicated",
	"nodes_failed",
	"trace_dropped",
	"ckpt_epochs",
	"ckpt_bytes",
}

// Name returns the snapshot key of c.
func (c Counter) Name() string { return counterNames[c] }

// Stage identifies one instrumented pipeline stage for histograms and
// trace events.
type Stage uint8

const (
	// StageGather is one block's GATHER-APPLY pass (ns).
	StageGather Stage = iota
	// StageScatter is one block's SCATTER pass (ns).
	StageScatter
	// StageAccelWait is a block's wait in the accelerator task queue (ns).
	StageAccelWait
	// StageCPUWait is a finished gather's wait in the CPU task queue (ns).
	StageCPUWait
	// StageApply is one remote batch's application on a cluster node (ns).
	StageApply
	// StageStaleness is a block's read-to-publish staleness in
	// milli-epochs: how many thousandths of an epoch-equivalent of global
	// progress happened between the block's gather reading cached values
	// and its scatter publishing the results — the bounded-delay quantity
	// async-BCD convergence theory reasons about.
	StageStaleness
	// StageCkpt is one checkpoint epoch's capture latency (ns): the time
	// from starting the fuzzy state snapshot to the state file being
	// durable. Observed on the checkpoint goroutine, never a worker.
	StageCkpt
	NumStages
)

var stageNames = [NumStages]string{
	"gather", "scatter", "accel-wait", "cpu-wait", "apply", "staleness", "checkpoint",
}

// Name returns the snapshot/trace name of s.
func (s Stage) Name() string { return stageNames[s] }

// shardHist is one shard's private histogram block; nil when histograms
// are disabled.
type shardHist struct {
	counts [int(NumStages) * NumBuckets]atomic.Int64
	sums   [NumStages]atomic.Int64
	maxs   [NumStages]atomic.Int64
}

// Shard is one worker's private telemetry block. Exactly one goroutine
// writes a shard; any goroutine may read it (the snapshot merge), which
// is why the slots are atomics — uncontended, so the add costs the same
// as a plain store plus a lock prefix. The trailing pad keeps adjacent
// shards in a contiguous slice on distinct cache lines.
type Shard struct {
	counters [NumCounters]atomic.Int64
	hist     *shardHist
	ring     *ring
	_        [96]byte // pad Shard to 256 B: no false sharing between neighbors
}

// Add increments counter c by n.
//
//abcd:hotpath
func (s *Shard) Add(c Counter, n int64) { s.counters[c].Add(n) }

// Observe records value v (ns for duration stages, milli-epochs for
// StageStaleness) into stage st's histogram. No-op when histograms are
// disabled.
//
//abcd:hotpath
func (s *Shard) Observe(st Stage, v int64) {
	h := s.hist
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.counts[int(st)*NumBuckets+bucketOf(v)].Add(1)
	h.sums[st].Add(v)
	for {
		cur := h.maxs[st].Load()
		if v <= cur || h.maxs[st].CompareAndSwap(cur, v) {
			return
		}
	}
}

// Trace records one sampled block-lifecycle event into the shard's trace
// ring. start is a Stamp value; dur is in ns. No-op when tracing is
// disabled.
//
//abcd:hotpath
func (s *Shard) Trace(st Stage, block int, start, dur int64) {
	r := s.ring
	if r == nil {
		return
	}
	r.record(st, block, start, dur)
}

// FlowSend records the send endpoint of a cross-node message flow: this
// node shipped envelope seq to peer at ts (a Stamp value). Sampled by
// seq, so the matching FlowRecv on the peer keeps or drops the same
// flows. No-op when tracing is disabled.
//
//abcd:hotpath
func (s *Shard) FlowSend(peer int, seq uint64, ts int64) {
	r := s.ring
	if r == nil {
		return
	}
	r.recordFlow(kindFlowSend, peer, seq, ts)
}

// FlowRecv records the receive endpoint of a cross-node message flow:
// envelope seq from peer arrived at ts. See FlowSend.
//
//abcd:hotpath
func (s *Shard) FlowRecv(peer int, seq uint64, ts int64) {
	r := s.ring
	if r == nil {
		return
	}
	r.recordFlow(kindFlowRecv, peer, seq, ts)
}

// Options configures a Registry. The zero value is the bare counter mode
// the engine uses when the caller did not ask for telemetry.
type Options struct {
	// Histograms enables per-stage latency/staleness histograms and the
	// clock behind Stamp.
	Histograms bool
	// Tracer, when non-nil, receives sampled block-lifecycle events from
	// every shard. Enabling a tracer also enables the clock.
	Tracer *Tracer
}

// Registry is the run-wide telemetry hub: it owns the shard set, the
// convergence series, and the named gauges, and merges them all in
// Snapshot. Create one per run; pass it to core.Config.Telemetry or
// cluster.Config.Telemetry and keep a reference for live reads.
type Registry struct {
	start  time.Time
	timing bool
	tracer *Tracer

	shards atomic.Pointer[[]Shard]

	mu       sync.Mutex // guards gauges and conv (cold paths only)
	gauges   []gauge
	conv     []ConvSample
	vertices int64
}

type gauge struct {
	name string
	fn   func() float64
}

// New creates a registry. With zero Options only the sharded counters are
// live: Stamp returns 0, Observe and Trace no-op.
func New(opt Options) *Registry {
	return &Registry{
		start:  time.Now(),
		timing: opt.Histograms || opt.Tracer != nil,
		tracer: opt.Tracer,
	}
}

// Live reports whether the registry records timings (histograms or
// tracing enabled). Callers use it to skip computing inputs that Observe
// would discard anyway.
func (r *Registry) Live() bool { return r.timing }

// Tracer returns the attached tracer, or nil.
func (r *Registry) Tracer() *Tracer { return r.tracer }

// Stamp returns the current time as ns since the registry was created, or
// 0 when timing is disabled. Subtraction of two stamps is a duration.
//
//abcd:hotpath
func (r *Registry) Stamp() int64 {
	if !r.timing {
		return 0
	}
	return int64(time.Since(r.start))
}

// Shards allocates and publishes the run's shard set: one shard per
// worker, plus however many the engine wants for its scheduler and
// housekeeping goroutines. It replaces any previous set (a registry
// serves one run at a time); workers hold their *Shard for the whole run,
// so the indirection is paid once at startup.
func (r *Registry) Shards(n int) []Shard {
	if n < 1 {
		n = 1
	}
	set := make([]Shard, n)
	if r.timing {
		for i := range set {
			set[i].hist = &shardHist{}
		}
	}
	if r.tracer != nil {
		for i := range set {
			set[i].ring = r.tracer.newRing(int32(i))
		}
	}
	r.shards.Store(&set)
	//abcdlint:ignore publish -- deliberate handout: each caller owns exactly the shards it asked for and is the only writer to them; concurrent readers go through the shards' atomic counters
	return set
}

// Total returns the sum of counter c across all shards. The sum is exact
// once writers are quiescent and monotone while they run, which is all
// the engine's budget checks and the watchdog need.
func (r *Registry) Total(c Counter) int64 {
	set := r.shards.Load()
	if set == nil {
		return 0
	}
	var sum int64
	for i := range *set {
		sum += (*set)[i].counters[c].Load()
	}
	return sum
}

// CounterTotals returns every counter's cross-shard sum.
func (r *Registry) CounterTotals() [NumCounters]int64 {
	var out [NumCounters]int64
	set := r.shards.Load()
	if set == nil {
		return out
	}
	for i := range *set {
		for c := range out {
			out[c] += (*set)[i].counters[c].Load()
		}
	}
	return out
}

// SetVertices records |V| so Snapshot can derive epochs and epochs/sec.
func (r *Registry) SetVertices(n int) {
	r.mu.Lock()
	r.vertices = int64(n)
	r.mu.Unlock()
}

// RegisterGauge installs (or replaces, by name) a live gauge sampled at
// every Snapshot. Gauge functions must be safe for concurrent use; the
// engine registers closures over queue lengths and scheduler state.
func (r *Registry) RegisterGauge(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.gauges {
		if r.gauges[i].name == name {
			r.gauges[i].fn = fn
			return
		}
	}
	r.gauges = append(r.gauges, gauge{name, fn})
}

// ConvSample is one point of the convergence time series.
type ConvSample struct {
	Epoch      int     `json:"epoch"`
	ElapsedSec float64 `json:"elapsed_sec"`
	// Residual is the global pending gradient mass — the L1 norm of
	// scatter-image changes not yet consumed by a gather, the quantity
	// whose decay is the run's convergence signal.
	Residual float64 `json:"residual"`
	// ActiveBlocks is the active-list population at the sample.
	ActiveBlocks int `json:"active_blocks"`
}

// RecordConvergence appends one sample; called at epoch boundaries from
// the scheduler goroutine, never from a worker's hot loop. No-op when
// timing is disabled so the bare-counter mode stays free.
func (r *Registry) RecordConvergence(epoch int, residual float64, activeBlocks int) {
	if !r.timing {
		return
	}
	s := ConvSample{
		Epoch:        epoch,
		ElapsedSec:   time.Since(r.start).Seconds(),
		Residual:     residual,
		ActiveBlocks: activeBlocks,
	}
	r.mu.Lock()
	r.conv = append(r.conv, s)
	r.mu.Unlock()
}

// Convergence returns a copy of the convergence series so far.
func (r *Registry) Convergence() []ConvSample {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]ConvSample, len(r.conv))
	copy(out, r.conv)
	return out
}
