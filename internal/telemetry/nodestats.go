// Cluster-wide telemetry aggregation (DESIGN.md §13): NodeStats is one
// node's compact wire snapshot of its registry — counters, per-stage
// histograms, and the transport's socket counters — and ClusterStats is
// the coordinator's merge of every node's deltas, keyed by node id.
//
// Nodes ship *deltas*, not absolutes: each fStats round a node encodes
// the difference between its current cumulative snapshot and the last
// one it shipped. Monotone fields (counters, bucket counts, sums, wire
// byte/frame counters) subtract cleanly and the coordinator adds them
// back, so the merge is commutative and order-independent — replaying
// the same deltas in any interleaving yields the same cluster snapshot
// (the merge-determinism test pins this). Watermark fields (histogram
// Max, queue high-water) are not differences of anything; they ship
// cumulative and merge by max, which is equally order-free.
package telemetry

import (
	"encoding/binary"
	"fmt"
)

// WireCounters is the transport's socket-level counter block as carried
// in a NodeStats snapshot. All fields but QueueHighWater are monotone;
// QueueHighWater is a watermark (the deepest outbound data queue ever
// observed at enqueue time) and merges by max.
type WireCounters struct {
	BytesSent, FramesSent int64
	BytesRecv, FramesRecv int64
	Reconnects            int64
	Drops                 int64
	CRCDrops              int64
	DecodeErrors          int64
	QueueHighWater        int64
}

// numWireCounters is the wire field count of WireCounters; keep in sync
// with appendWire/decodeWire below.
const numWireCounters = 9

// StageSnapshot is one stage's cumulative histogram in a NodeStats
// record: bucket counts and sum are monotone, Max is a watermark.
type StageSnapshot struct {
	Sum     int64
	Max     int64
	Buckets [NumBuckets]int64
}

// Count returns the total observation count (the bucket sum).
func (s *StageSnapshot) Count() int64 {
	var n int64
	for _, b := range s.Buckets {
		n += b
	}
	return n
}

// Histogram converts the snapshot to the read-side Histogram type so
// the merged cluster view reuses Mean/Quantile.
func (s *StageSnapshot) Histogram() Histogram {
	h := Histogram{Sum: s.Sum, Max: s.Max, Buckets: s.Buckets}
	h.Count = s.Count()
	return h
}

// NodeStats is one node's telemetry snapshot (or snapshot delta) as
// shipped over the control lane's fStats round.
type NodeStats struct {
	Node     int
	Counters [NumCounters]int64
	Stages   [NumStages]StageSnapshot
	Wire     WireCounters
}

// nodeStatsVersion guards the fixed-layout codec: a peer built with a
// different counter or stage set fails loudly instead of misaligning.
const nodeStatsVersion = 1

// NodeStatsWireSize is the exact encoded size of one NodeStats record.
const NodeStatsWireSize = 1 + 4 +
	int(NumCounters)*8 +
	int(NumStages)*(2+NumBuckets)*8 +
	numWireCounters*8

// CollectNodeStats snapshots the registry's cumulative counters and
// stage histograms for node id. The wire block is the transport's to
// fill in; a registry knows nothing about sockets.
func (r *Registry) CollectNodeStats(node int) NodeStats {
	s := NodeStats{Node: node, Counters: r.CounterTotals()}
	if r.timing {
		for st := Stage(0); st < NumStages; st++ {
			h := r.StageHistogram(st)
			s.Stages[st] = StageSnapshot{Sum: h.Sum, Max: h.Max, Buckets: h.Buckets}
		}
	}
	return s
}

// DeltaFrom returns the delta to ship given the last shipped cumulative
// snapshot: monotone fields subtracted, watermark fields passed through
// cumulative (the receiver max-merges them).
func (s *NodeStats) DeltaFrom(last *NodeStats) NodeStats {
	d := NodeStats{Node: s.Node}
	for c := range s.Counters {
		d.Counters[c] = s.Counters[c] - last.Counters[c]
	}
	for st := range s.Stages {
		d.Stages[st].Sum = s.Stages[st].Sum - last.Stages[st].Sum
		d.Stages[st].Max = s.Stages[st].Max // watermark: cumulative
		for b := range s.Stages[st].Buckets {
			d.Stages[st].Buckets[b] = s.Stages[st].Buckets[b] - last.Stages[st].Buckets[b]
		}
	}
	d.Wire = WireCounters{
		BytesSent:      s.Wire.BytesSent - last.Wire.BytesSent,
		FramesSent:     s.Wire.FramesSent - last.Wire.FramesSent,
		BytesRecv:      s.Wire.BytesRecv - last.Wire.BytesRecv,
		FramesRecv:     s.Wire.FramesRecv - last.Wire.FramesRecv,
		Reconnects:     s.Wire.Reconnects - last.Wire.Reconnects,
		Drops:          s.Wire.Drops - last.Wire.Drops,
		CRCDrops:       s.Wire.CRCDrops - last.Wire.CRCDrops,
		DecodeErrors:   s.Wire.DecodeErrors - last.Wire.DecodeErrors,
		QueueHighWater: s.Wire.QueueHighWater, // watermark: cumulative
	}
	return d
}

// merge folds one delta into the accumulated per-node record.
func (s *NodeStats) merge(d *NodeStats) {
	for c := range s.Counters {
		s.Counters[c] += d.Counters[c]
	}
	for st := range s.Stages {
		s.Stages[st].Sum += d.Stages[st].Sum
		if d.Stages[st].Max > s.Stages[st].Max {
			s.Stages[st].Max = d.Stages[st].Max
		}
		for b := range s.Stages[st].Buckets {
			s.Stages[st].Buckets[b] += d.Stages[st].Buckets[b]
		}
	}
	s.Wire.BytesSent += d.Wire.BytesSent
	s.Wire.FramesSent += d.Wire.FramesSent
	s.Wire.BytesRecv += d.Wire.BytesRecv
	s.Wire.FramesRecv += d.Wire.FramesRecv
	s.Wire.Reconnects += d.Wire.Reconnects
	s.Wire.Drops += d.Wire.Drops
	s.Wire.CRCDrops += d.Wire.CRCDrops
	s.Wire.DecodeErrors += d.Wire.DecodeErrors
	if d.Wire.QueueHighWater > s.Wire.QueueHighWater {
		s.Wire.QueueHighWater = d.Wire.QueueHighWater
	}
}

// AppendNodeStats encodes s little-endian onto b. The layout is fixed
// width — version, node id, then every counter, stage block, and wire
// counter in declaration order — so the decoder can demand the exact
// size before touching a byte.
func AppendNodeStats(b []byte, s *NodeStats) []byte {
	b = append(b, nodeStatsVersion)
	b = binary.LittleEndian.AppendUint32(b, uint32(s.Node))
	for _, c := range s.Counters {
		b = binary.LittleEndian.AppendUint64(b, uint64(c))
	}
	for st := range s.Stages {
		b = binary.LittleEndian.AppendUint64(b, uint64(s.Stages[st].Sum))
		b = binary.LittleEndian.AppendUint64(b, uint64(s.Stages[st].Max))
		for _, cnt := range s.Stages[st].Buckets {
			b = binary.LittleEndian.AppendUint64(b, uint64(cnt))
		}
	}
	for _, w := range []int64{
		s.Wire.BytesSent, s.Wire.FramesSent, s.Wire.BytesRecv, s.Wire.FramesRecv,
		s.Wire.Reconnects, s.Wire.Drops, s.Wire.CRCDrops, s.Wire.DecodeErrors,
		s.Wire.QueueHighWater,
	} {
		b = binary.LittleEndian.AppendUint64(b, uint64(w))
	}
	return b
}

// DecodeNodeStats parses one record. The payload is fixed-size into
// fixed-size value arrays — no allocation is derived from wire bytes —
// and anything but the exact expected length or version is refused at
// the boundary.
func DecodeNodeStats(b []byte) (NodeStats, error) {
	var s NodeStats
	if len(b) != NodeStatsWireSize {
		return s, fmt.Errorf("telemetry: node stats record %d bytes, want %d", len(b), NodeStatsWireSize)
	}
	if b[0] != nodeStatsVersion {
		return s, fmt.Errorf("telemetry: node stats version %d, want %d", b[0], nodeStatsVersion)
	}
	s.Node = int(binary.LittleEndian.Uint32(b[1:]))
	if s.Node < 0 || s.Node > 1<<20 {
		return s, fmt.Errorf("telemetry: node stats node id %d out of range", s.Node)
	}
	off := 5
	next := func() int64 {
		v := int64(binary.LittleEndian.Uint64(b[off:]))
		off += 8
		return v
	}
	for c := range s.Counters {
		s.Counters[c] = next()
	}
	for st := range s.Stages {
		s.Stages[st].Sum = next()
		s.Stages[st].Max = next()
		for bk := range s.Stages[st].Buckets {
			s.Stages[st].Buckets[bk] = next()
		}
	}
	s.Wire.BytesSent = next()
	s.Wire.FramesSent = next()
	s.Wire.BytesRecv = next()
	s.Wire.FramesRecv = next()
	s.Wire.Reconnects = next()
	s.Wire.Drops = next()
	s.Wire.CRCDrops = next()
	s.Wire.DecodeErrors = next()
	s.Wire.QueueHighWater = next()
	return s, nil
}
