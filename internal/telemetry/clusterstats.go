package telemetry

import (
	"sort"
	"sync"
	"time"
)

// ClusterStats is the coordinator's merged cluster telemetry: one
// accumulated NodeStats per node id, built by folding in the deltas the
// fStats rounds collect. Safe for concurrent use — the aggregation
// round writes while the metrics endpoint and the post-run report read.
type ClusterStats struct {
	mu        sync.Mutex
	nodes     map[int]*NodeStats
	rounds    int64
	workNanos int64
	spanNanos int64
}

// NewClusterStats returns an empty cluster snapshot.
func NewClusterStats() *ClusterStats {
	return &ClusterStats{nodes: make(map[int]*NodeStats)}
}

// Apply folds one node delta into the cluster snapshot. Deltas from the
// same node must arrive in ship order (the control lane is lockstep per
// node); deltas from different nodes commute, so round interleaving
// across nodes cannot change the result.
func (c *ClusterStats) Apply(d *NodeStats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	acc, ok := c.nodes[d.Node]
	if !ok {
		acc = &NodeStats{Node: d.Node}
		c.nodes[d.Node] = acc
	}
	acc.merge(d)
}

// Nodes returns a copy of every node's accumulated stats, sorted by
// node id.
func (c *ClusterStats) Nodes() []NodeStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]NodeStats, 0, len(c.nodes))
	for _, s := range c.nodes {
		out = append(out, *s)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Node < out[b].Node })
	return out
}

// Node returns one node's accumulated stats.
func (c *ClusterStats) Node(id int) (NodeStats, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.nodes[id]
	if !ok {
		return NodeStats{}, false
	}
	return *s, true
}

// Total merges every node into one cluster-wide NodeStats (Node = -1):
// counters and histograms sum, watermarks take the cluster max.
func (c *ClusterStats) Total() NodeStats {
	total := NodeStats{Node: -1}
	for _, s := range c.Nodes() {
		total.merge(&s)
	}
	return total
}

// Len returns how many nodes have reported.
func (c *ClusterStats) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.nodes)
}

// NoteRound records one completed aggregation round — the plane
// measures its own cost, so "what is aggregation costing this run" is
// an answerable question (and the quantity scripts/bench.sh records as
// dist_stats_overhead_pct). work is the time the coordinator spent
// computing: snapshotting its registry, encoding, decoding replies,
// merging. span is the round's full wall duration including the waits
// for every joiner's reply; the gap between the two is idle time the
// workers keep for themselves, which on an oversubscribed machine
// (goroutine scheduling latency) dwarfs the work.
func (c *ClusterStats) NoteRound(work, span time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rounds++
	c.workNanos += int64(work)
	c.spanNanos += int64(span)
}

// RoundCost returns how many aggregation rounds have run, the total
// coordinator compute time they consumed (work), and their total wall
// duration (span). Rounds execute serially on the control goroutine,
// so span bounds from above how much the rounds can have delayed probe
// rounds — and therefore termination; work is the CPU actually spent
// aggregating.
func (c *ClusterStats) RoundCost() (rounds int64, work, span time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rounds, time.Duration(c.workNanos), time.Duration(c.spanNanos)
}
