// Prometheus text exposition (format 0.0.4), written by hand on the
// standard library — the repo takes no client_golang dependency. The
// output is deterministic in *shape*: metric families appear in a fixed
// order, counters in declaration order, gauges sorted by name, stages in
// enum order, and no derived rates (which would embed wall-clock reads)
// are exposed — rate() is the scraper's job. The golden exposition test
// pins this shape.
package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
)

// promName sanitizes a snapshot key into a Prometheus metric name
// component: anything outside [a-zA-Z0-9_] becomes '_'.
func promName(s string) string {
	out := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			out[i] = c
		default:
			out[i] = '_'
		}
	}
	return string(out)
}

// promWriter accumulates exposition lines; the first write error sticks
// so call sites stay linear.
type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// writeStageHistogram emits one histogram family series set (buckets,
// sum, count) for prefix{labels}. scale divides raw observed values into
// the exposed unit (1e9 for ns→seconds, 1 for milli-epochs).
func (p *promWriter) writeStageHistogram(name, labels string, h Histogram, scale float64) {
	bucketLabels := func(le string) string {
		if labels == "" {
			return `{le="` + le + `"}`
		}
		return "{" + labels + `,le="` + le + `"}`
	}
	plain := ""
	if labels != "" {
		plain = "{" + labels + "}"
	}
	var cum int64
	for b := 0; b < NumBuckets; b++ {
		cum += h.Buckets[b]
		if h.Buckets[b] == 0 {
			continue // sparse: emit only occupied boundaries plus +Inf
		}
		le := float64(BucketUpper(b)) / scale
		p.printf("%s_bucket%s %d\n", name, bucketLabels(fmtFloat(le)), cum)
	}
	p.printf("%s_bucket%s %d\n", name, bucketLabels("+Inf"), h.Count)
	p.printf("%s_sum%s %s\n", name, plain, fmtFloat(float64(h.Sum)/scale))
	p.printf("%s_count%s %d\n", name, plain, h.Count)
}

// WritePrometheus renders the registry (and, when non-nil, the merged
// cluster snapshot) as Prometheus text format 0.0.4.
func WritePrometheus(w io.Writer, r *Registry, cluster *ClusterStats) error {
	p := &promWriter{w: w}

	totals := r.CounterTotals()
	if t := r.tracer; t != nil {
		totals[CtrTraceDropped] += t.Dropped()
	}
	p.printf("# HELP graphabcd_counter_total Sharded run counters, cross-shard totals.\n")
	p.printf("# TYPE graphabcd_counter_total counter\n")
	for c := Counter(0); c < NumCounters; c++ {
		p.printf("graphabcd_counter_total{name=%q} %d\n", promName(c.Name()), totals[c])
	}

	r.mu.Lock()
	gauges := make([]gauge, len(r.gauges))
	copy(gauges, r.gauges)
	nv := r.vertices
	var residual float64
	var active int
	if n := len(r.conv); n > 0 {
		residual = r.conv[n-1].Residual
		active = r.conv[n-1].ActiveBlocks
	}
	r.mu.Unlock()

	p.printf("# HELP graphabcd_gauge Live engine gauges, sampled at scrape time.\n")
	p.printf("# TYPE graphabcd_gauge gauge\n")
	sort.Slice(gauges, func(a, b int) bool { return gauges[a].name < gauges[b].name })
	for _, g := range gauges {
		p.printf("graphabcd_gauge{name=%q} %s\n", promName(g.name), fmtFloat(g.fn()))
	}
	p.printf("graphabcd_gauge{name=\"vertices\"} %d\n", nv)
	p.printf("graphabcd_gauge{name=\"residual\"} %s\n", fmtFloat(residual))
	p.printf("graphabcd_gauge{name=\"active_blocks\"} %d\n", active)

	if r.timing {
		p.printf("# HELP graphabcd_stage_duration_seconds Per-stage latency histograms (power-of-two ns buckets).\n")
		p.printf("# TYPE graphabcd_stage_duration_seconds histogram\n")
		for st := Stage(0); st < NumStages; st++ {
			if st == StageStaleness {
				continue // milli-epochs, not seconds: its own family below
			}
			h := r.StageHistogram(st)
			if h.Count == 0 {
				continue
			}
			p.writeStageHistogram("graphabcd_stage_duration_seconds",
				fmt.Sprintf("stage=%q", promName(st.Name())), h, 1e9)
		}
		if h := r.StageHistogram(StageStaleness); h.Count > 0 {
			p.printf("# HELP graphabcd_staleness_milliepochs Block read-to-publish staleness in milli-epochs.\n")
			p.printf("# TYPE graphabcd_staleness_milliepochs histogram\n")
			p.writeStageHistogram("graphabcd_staleness_milliepochs", "", h, 1)
		}
	}

	if cluster != nil {
		writeClusterProm(p, cluster)
	}
	return p.err
}

// writeClusterProm emits the coordinator's merged per-node series: every
// counter and wire counter labeled by node, plus per-node stage
// histograms — the cluster-wide view a dashboard needs to see which node
// is the straggler.
func writeClusterProm(p *promWriter, cluster *ClusterStats) {
	nodes := cluster.Nodes()
	p.printf("# HELP graphabcd_cluster_nodes Nodes that have reported telemetry this run.\n")
	p.printf("# TYPE graphabcd_cluster_nodes gauge\n")
	p.printf("graphabcd_cluster_nodes %d\n", len(nodes))
	if len(nodes) == 0 {
		return
	}
	p.printf("# HELP graphabcd_cluster_counter_total Per-node run counters aggregated over the control lane.\n")
	p.printf("# TYPE graphabcd_cluster_counter_total counter\n")
	for _, n := range nodes {
		for c := Counter(0); c < NumCounters; c++ {
			p.printf("graphabcd_cluster_counter_total{node=\"%d\",name=%q} %d\n", n.Node, promName(c.Name()), n.Counters[c])
		}
	}
	p.printf("# HELP graphabcd_cluster_wire_total Per-node transport socket counters.\n")
	p.printf("# TYPE graphabcd_cluster_wire_total counter\n")
	for _, n := range nodes {
		for _, wc := range []struct {
			name string
			v    int64
		}{
			{"bytes_sent", n.Wire.BytesSent}, {"frames_sent", n.Wire.FramesSent},
			{"bytes_recv", n.Wire.BytesRecv}, {"frames_recv", n.Wire.FramesRecv},
			{"reconnects", n.Wire.Reconnects}, {"drops", n.Wire.Drops},
			{"crc_drops", n.Wire.CRCDrops}, {"decode_errors", n.Wire.DecodeErrors},
		} {
			p.printf("graphabcd_cluster_wire_total{node=\"%d\",name=%q} %d\n", n.Node, wc.name, wc.v)
		}
	}
	p.printf("# HELP graphabcd_cluster_wire_queue_high_water Per-node deepest outbound data queue observed.\n")
	p.printf("# TYPE graphabcd_cluster_wire_queue_high_water gauge\n")
	for _, n := range nodes {
		p.printf("graphabcd_cluster_wire_queue_high_water{node=\"%d\"} %d\n", n.Node, n.Wire.QueueHighWater)
	}
	p.printf("# HELP graphabcd_cluster_stage_duration_seconds Per-node stage latency histograms.\n")
	p.printf("# TYPE graphabcd_cluster_stage_duration_seconds histogram\n")
	for _, n := range nodes {
		for st := Stage(0); st < NumStages; st++ {
			if st == StageStaleness {
				continue
			}
			h := n.Stages[st].Histogram()
			if h.Count == 0 {
				continue
			}
			p.writeStageHistogram("graphabcd_cluster_stage_duration_seconds",
				fmt.Sprintf("node=\"%d\",stage=%q", n.Node, promName(st.Name())), h, 1e9)
		}
	}
	p.printf("# HELP graphabcd_cluster_staleness_milliepochs Per-node staleness histograms.\n")
	p.printf("# TYPE graphabcd_cluster_staleness_milliepochs histogram\n")
	for _, n := range nodes {
		h := n.Stages[StageStaleness].Histogram()
		if h.Count == 0 {
			continue
		}
		p.writeStageHistogram("graphabcd_cluster_staleness_milliepochs",
			fmt.Sprintf("node=\"%d\"", n.Node), h, 1)
	}
}

// PromHandler serves WritePrometheus over HTTP with the 0.0.4 content
// type. cluster may be nil (single-process runs and joiners).
func PromHandler(r *Registry, cluster *ClusterStats) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, r, cluster)
	})
}
