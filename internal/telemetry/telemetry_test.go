package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"unsafe"
)

// TestShardSize pins the padding invariant the whole design rests on:
// adjacent shards in the contiguous slice Shards returns must not share a
// cache line, which the trailing pad guarantees by rounding the struct to
// 256 B (two lines on x86, one on Apple-class 128 B-line parts).
func TestShardSize(t *testing.T) {
	if got := unsafe.Sizeof(Shard{}); got != 256 {
		t.Fatalf("Shard size = %d B, want 256 B; adjust the pad after layout changes", got)
	}
	if got := unsafe.Sizeof(Shard{}) % 64; got != 0 {
		t.Fatalf("Shard size not cache-line aligned: %d B", unsafe.Sizeof(Shard{}))
	}
}

func TestCounterTotals(t *testing.T) {
	r := New(Options{})
	if r.Total(CtrBlockUpdates) != 0 {
		t.Fatal("Total before Shards should be 0")
	}
	shards := r.Shards(3)
	shards[0].Add(CtrBlockUpdates, 5)
	shards[1].Add(CtrBlockUpdates, 7)
	shards[2].Add(CtrBlockUpdates, 1)
	shards[2].Add(CtrEdgesTraversed, 100)
	if got := r.Total(CtrBlockUpdates); got != 13 {
		t.Errorf("Total(CtrBlockUpdates) = %d, want 13", got)
	}
	totals := r.CounterTotals()
	if totals[CtrBlockUpdates] != 13 || totals[CtrEdgesTraversed] != 100 {
		t.Errorf("CounterTotals = %v", totals)
	}
	if totals[CtrVertexUpdates] != 0 {
		t.Errorf("untouched counter nonzero: %d", totals[CtrVertexUpdates])
	}
}

func TestShardsMinimumOne(t *testing.T) {
	r := New(Options{})
	if got := len(r.Shards(0)); got != 1 {
		t.Errorf("Shards(0) len = %d, want 1", got)
	}
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {1023, 10}, {1024, 11},
		{1 << 39, NumBuckets}, // clamped below
		{1 << 62, NumBuckets},
	}
	for _, c := range cases {
		want := c.want
		if want >= NumBuckets {
			want = NumBuckets - 1
		}
		if got := bucketOf(c.v); got != want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, want)
		}
	}
	// Every value must land in a bucket whose upper bound exceeds it
	// (within the clamp range).
	for _, v := range []int64{0, 1, 5, 100, 4096, 1 << 30} {
		b := bucketOf(v)
		if BucketUpper(b) <= v {
			t.Errorf("value %d above its bucket bound %d", v, BucketUpper(b))
		}
	}
}

func TestHistogramMeanAndQuantile(t *testing.T) {
	r := New(Options{Histograms: true})
	sh := r.Shards(1)
	// 100 observations of 1000 ns and one outlier of 1e6 ns.
	for i := 0; i < 100; i++ {
		sh[0].Observe(StageGather, 1000)
	}
	sh[0].Observe(StageGather, 1_000_000)
	h := r.StageHistogram(StageGather)
	if h.Count != 101 {
		t.Fatalf("Count = %d, want 101", h.Count)
	}
	wantMean := (100*1000.0 + 1e6) / 101
	if math.Abs(h.Mean()-wantMean) > 1e-9 {
		t.Errorf("Mean = %g, want %g", h.Mean(), wantMean)
	}
	if h.Max != 1_000_000 {
		t.Errorf("Max = %d, want 1000000", h.Max)
	}
	// p50 lands in the 1000-ns bucket: bound within 2x above the true value.
	if p50 := h.Quantile(0.50); p50 < 1000 || p50 > 2000 {
		t.Errorf("p50 = %d, want within [1000, 2000]", p50)
	}
	// The max quantile's rank hits the outlier bucket, whose power-of-two
	// bound overshoots the true max — it must clamp to Max instead.
	if p100 := h.Quantile(1.0); p100 != 1_000_000 {
		t.Errorf("p100 = %d, want clamped to Max 1000000", p100)
	}
	// Negative observations clamp to 0 rather than corrupting a bucket.
	sh[0].Observe(StageScatter, -5)
	if hs := r.StageHistogram(StageScatter); hs.Count != 1 || hs.Sum != 0 {
		t.Errorf("negative observe: count=%d sum=%d, want 1, 0", hs.Count, hs.Sum)
	}
}

func TestHistogramEmpty(t *testing.T) {
	r := New(Options{Histograms: true})
	r.Shards(2)
	h := r.StageHistogram(StageApply)
	if h.Count != 0 || h.Mean() != 0 || h.Quantile(0.99) != 0 {
		t.Errorf("empty histogram not zero: %+v", h)
	}
}

// TestHistogramConcurrentMerge exercises the snapshot-on-read merge while
// writers run (the race detector verifies the atomicity claims): per-shard
// single writers observe continuously, a reader merges concurrently, and
// the final merged histogram must account for every observation exactly.
func TestHistogramConcurrentMerge(t *testing.T) {
	const workers, perWorker = 8, 5000
	r := New(Options{Histograms: true})
	shards := r.Shards(workers)
	var wg sync.WaitGroup
	stopRead := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent reader: merged count must be monotone
		defer wg.Done()
		var last int64
		for {
			select {
			case <-stopRead:
				return
			default:
			}
			h := r.StageHistogram(StageGather)
			if h.Count < last {
				t.Errorf("merged count decreased: %d -> %d", last, h.Count)
				return
			}
			last = h.Count
		}
	}()
	var writers sync.WaitGroup
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(sh *Shard, seed int64) {
			defer writers.Done()
			for i := int64(0); i < perWorker; i++ {
				sh.Observe(StageGather, seed+i%977)
				sh.Add(CtrVertexUpdates, 1)
			}
		}(&shards[w], int64(w+1))
	}
	writers.Wait()
	close(stopRead)
	wg.Wait()

	h := r.StageHistogram(StageGather)
	if h.Count != workers*perWorker {
		t.Errorf("merged count = %d, want %d", h.Count, workers*perWorker)
	}
	var bucketSum int64
	for _, b := range h.Buckets {
		bucketSum += b
	}
	if bucketSum != h.Count {
		t.Errorf("bucket sum %d != count %d", bucketSum, h.Count)
	}
	if got := r.Total(CtrVertexUpdates); got != workers*perWorker {
		t.Errorf("counter total = %d, want %d", got, workers*perWorker)
	}
}

func TestDisabledModeIsInert(t *testing.T) {
	r := New(Options{})
	sh := r.Shards(1)
	if r.Live() {
		t.Error("bare registry reports Live")
	}
	if r.Stamp() != 0 {
		t.Error("Stamp should be 0 with timing disabled")
	}
	sh[0].Observe(StageGather, 123) // must not panic, must not record
	sh[0].Trace(StageGather, 0, 0, 123)
	if h := r.StageHistogram(StageGather); h.Count != 0 {
		t.Errorf("disabled histogram recorded %d observations", h.Count)
	}
	r.RecordConvergence(1, 0.5, 3)
	if len(r.Convergence()) != 0 {
		t.Error("disabled RecordConvergence stored a sample")
	}
}

func TestConvergenceSeries(t *testing.T) {
	r := New(Options{Histograms: true})
	r.RecordConvergence(1, 0.5, 10)
	r.RecordConvergence(2, 0.25, 4)
	conv := r.Convergence()
	if len(conv) != 2 || conv[1].Epoch != 2 || conv[1].Residual != 0.25 || conv[1].ActiveBlocks != 4 {
		t.Errorf("Convergence = %+v", conv)
	}
	// The returned slice is a copy: mutating it must not affect the registry.
	conv[0].Residual = 99
	if r.Convergence()[0].Residual != 0.5 {
		t.Error("Convergence returned aliased storage")
	}
}

func TestSnapshot(t *testing.T) {
	r := New(Options{Histograms: true})
	r.SetVertices(100)
	sh := r.Shards(2)
	sh[0].Add(CtrVertexUpdates, 250)
	sh[1].Add(CtrEdgesTraversed, 1000)
	sh[1].Observe(StageScatter, 500)
	r.RegisterGauge("queue", func() float64 { return 7 })
	r.RegisterGauge("queue", func() float64 { return 8 }) // replaces by name
	r.RecordConvergence(2, 0.125, 6)

	s := r.Snapshot()
	if s.Counters["vertex_updates"] != 250 || s.Counters["edges_traversed"] != 1000 {
		t.Errorf("snapshot counters = %v", s.Counters)
	}
	if s.Epochs != 2.5 {
		t.Errorf("Epochs = %g, want 2.5", s.Epochs)
	}
	if s.Gauges["queue"] != 8 {
		t.Errorf("gauge = %g, want 8 (replacement by name)", s.Gauges["queue"])
	}
	if s.Residual != 0.125 || s.ActiveBlocks != 6 {
		t.Errorf("conv tail: residual=%g active=%d", s.Residual, s.ActiveBlocks)
	}
	st, ok := s.Stages["scatter"]
	if !ok || st.Count != 1 || st.Max != 500 {
		t.Errorf("scatter stage = %+v (ok=%v)", st, ok)
	}
	if _, ok := s.Stages["gather"]; ok {
		t.Error("empty stage should be omitted from snapshot")
	}
	if _, err := json.Marshal(s); err != nil {
		t.Errorf("snapshot does not marshal: %v", err)
	}
}

// TestTraceJSON runs events through the full ring → flusher → writer path
// and verifies the output is valid Chrome trace-event JSON with block-id
// sampling applied.
func TestTraceJSON(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf, 2) // trace every 2nd block id
	r := New(Options{Histograms: true, Tracer: tr})
	sh := r.Shards(2)
	sh[0].Trace(StageGather, 0, 1500, 2500)
	sh[0].Trace(StageGather, 1, 1000, 1000) // odd block: sampled out
	sh[1].Trace(StageScatter, 4, 10_000, 500)
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, buf.String())
	}
	// Metadata record + exactly the two sampled events.
	if len(events) != 3 {
		t.Fatalf("got %d records, want 3: %v", len(events), events)
	}
	if events[0]["ph"] != "M" {
		t.Errorf("first record should be process metadata, got %v", events[0])
	}
	e := events[1]
	if e["name"] != "gather" || e["ph"] != "X" || e["tid"] != 0.0 {
		t.Errorf("event 1 = %v", e)
	}
	if ts := e["ts"].(float64); math.Abs(ts-1.5) > 1e-9 { // 1500 ns = 1.5 us
		t.Errorf("ts = %v us, want 1.5", ts)
	}
	if dur := e["dur"].(float64); math.Abs(dur-2.5) > 1e-9 {
		t.Errorf("dur = %v us, want 2.5", dur)
	}
	if block := e["args"].(map[string]any)["block"]; block != 0.0 {
		t.Errorf("block = %v, want 0", block)
	}
	if events[2]["name"] != "scatter" || events[2]["tid"] != 1.0 {
		t.Errorf("event 2 = %v", events[2])
	}
}

// TestRingDropOnFull constructs a tiny ring directly (no flusher) and
// verifies the no-backpressure contract: overflow drops and counts, never
// blocks or overwrites unread events.
func TestRingDropOnFull(t *testing.T) {
	r := &ring{worker: 0, sample: 1, events: make([]traceEvent, 4)}
	for i := 0; i < 6; i++ {
		r.record(StageGather, i, int64(i), 1)
	}
	if got := r.dropped.Load(); got != 2 {
		t.Errorf("dropped = %d, want 2", got)
	}
	if h := r.head.Load(); h != 4 {
		t.Errorf("head = %d, want 4", h)
	}
	// The four retained events are the first four, in order.
	for i := 0; i < 4; i++ {
		if r.events[i].block != int32(i) {
			t.Errorf("slot %d holds block %d", i, r.events[i].block)
		}
	}
}

func TestTracerDropAccounting(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf, 1)
	r := New(Options{Tracer: tr})
	sh := r.Shards(1)
	// Overflow the real ring before the 50 ms flush cadence can drain it.
	for i := 0; i < ringCap+100; i++ {
		sh[0].Trace(StageGather, i, int64(i), 1)
	}
	if tr.Dropped() == 0 {
		t.Error("expected drops after overfilling the ring")
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("post-drop trace invalid: %v", err)
	}
}

// --- the false-sharing fix, measured ------------------------------------
//
// BenchmarkCountersShared is the old design: every worker hammers the same
// counter block, so each add bounces the cache line between cores.
// BenchmarkCountersSharded is the shipped design: one padded shard per
// worker. Run with -cpu matching real worker counts to see the gap; on an
// 8-way box the sharded form is typically 5-20x faster per add.

func BenchmarkCountersShared(b *testing.B) {
	r := New(Options{})
	sh := r.Shards(1)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			sh[0].Add(CtrVertexUpdates, 1)
		}
	})
}

func BenchmarkCountersSharded(b *testing.B) {
	r := New(Options{})
	sh := r.Shards(runtime.GOMAXPROCS(0))
	var next atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		mine := &sh[int(next.Add(1)-1)%len(sh)]
		for pb.Next() {
			mine.Add(CtrVertexUpdates, 1)
		}
	})
}

func BenchmarkObserve(b *testing.B) {
	r := New(Options{Histograms: true})
	sh := r.Shards(1)
	b.RunParallel(func(pb *testing.PB) {
		var v int64
		for pb.Next() {
			sh[0].Observe(StageGather, v%100_000)
			v += 997
		}
	})
}
