package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// --- node stats codec ----------------------------------------------------

func sampleNodeStats(node int, seed int64) NodeStats {
	rng := rand.New(rand.NewSource(seed))
	s := NodeStats{Node: node}
	for c := range s.Counters {
		s.Counters[c] = rng.Int63n(1 << 40)
	}
	for st := range s.Stages {
		s.Stages[st].Sum = rng.Int63n(1 << 40)
		s.Stages[st].Max = rng.Int63n(1 << 40)
		for b := range s.Stages[st].Buckets {
			s.Stages[st].Buckets[b] = rng.Int63n(1 << 20)
		}
	}
	s.Wire = WireCounters{
		BytesSent: rng.Int63n(1 << 40), FramesSent: rng.Int63n(1 << 30),
		BytesRecv: rng.Int63n(1 << 40), FramesRecv: rng.Int63n(1 << 30),
		Reconnects: rng.Int63n(100), Drops: rng.Int63n(100),
		CRCDrops: rng.Int63n(100), DecodeErrors: rng.Int63n(100),
		QueueHighWater: rng.Int63n(1 << 10),
	}
	return s
}

func TestNodeStatsCodecRoundTrip(t *testing.T) {
	for node := 0; node < 4; node++ {
		want := sampleNodeStats(node, int64(node)+7)
		b := AppendNodeStats(nil, &want)
		if len(b) != NodeStatsWireSize {
			t.Fatalf("encoded %d bytes, want NodeStatsWireSize=%d", len(b), NodeStatsWireSize)
		}
		got, err := DecodeNodeStats(b)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got != want {
			t.Fatalf("node %d round trip mismatch", node)
		}
	}
}

func TestNodeStatsDecodeRejects(t *testing.T) {
	s := sampleNodeStats(1, 42)
	b := AppendNodeStats(nil, &s)

	if _, err := DecodeNodeStats(b[:len(b)-1]); err == nil {
		t.Error("short record accepted")
	}
	if _, err := DecodeNodeStats(append(append([]byte(nil), b...), 0)); err == nil {
		t.Error("long record accepted")
	}
	bad := append([]byte(nil), b...)
	bad[0] = nodeStatsVersion + 1
	if _, err := DecodeNodeStats(bad); err == nil {
		t.Error("wrong version accepted")
	}
	huge := s
	huge.Node = 1 << 21
	if _, err := DecodeNodeStats(AppendNodeStats(nil, &huge)); err == nil {
		t.Error("out-of-range node id accepted")
	}
}

// --- delta / merge semantics ---------------------------------------------

func TestNodeStatsDeltaFrom(t *testing.T) {
	last := sampleNodeStats(2, 1)
	cur := last
	cur.Counters[CtrMessagesSent] += 10
	cur.Stages[StageApply].Sum += 100
	cur.Stages[StageApply].Buckets[3] += 4
	cur.Stages[StageApply].Max = last.Stages[StageApply].Max + 5
	cur.Wire.BytesSent += 1000
	cur.Wire.QueueHighWater = last.Wire.QueueHighWater + 2

	d := cur.DeltaFrom(&last)
	if d.Counters[CtrMessagesSent] != 10 {
		t.Errorf("counter delta = %d, want 10", d.Counters[CtrMessagesSent])
	}
	if d.Counters[CtrBlockUpdates] != 0 {
		t.Errorf("unchanged counter delta = %d, want 0", d.Counters[CtrBlockUpdates])
	}
	if d.Stages[StageApply].Sum != 100 || d.Stages[StageApply].Buckets[3] != 4 {
		t.Errorf("stage delta = sum %d buckets[3] %d, want 100/4",
			d.Stages[StageApply].Sum, d.Stages[StageApply].Buckets[3])
	}
	// Watermarks ship cumulative, not subtracted.
	if d.Stages[StageApply].Max != cur.Stages[StageApply].Max {
		t.Errorf("stage max delta = %d, want cumulative %d", d.Stages[StageApply].Max, cur.Stages[StageApply].Max)
	}
	if d.Wire.BytesSent != 1000 {
		t.Errorf("wire delta = %d, want 1000", d.Wire.BytesSent)
	}
	if d.Wire.QueueHighWater != cur.Wire.QueueHighWater {
		t.Errorf("queue high water delta = %d, want cumulative %d", d.Wire.QueueHighWater, cur.Wire.QueueHighWater)
	}
}

// TestClusterStatsMergeDeterminism feeds the same per-node delta
// sequences into two sinks — one in ship order, one with rounds
// interleaved across nodes in a shuffled order, applied from concurrent
// goroutines — and requires identical accumulated snapshots. This is the
// property that lets fStats rounds interleave freely with probe and
// checkpoint rounds: per-node order is preserved by the lockstep lane,
// and cross-node order must not matter.
func TestClusterStatsMergeDeterminism(t *testing.T) {
	const nodes, rounds = 4, 8
	deltas := make([][]NodeStats, nodes)
	for n := 0; n < nodes; n++ {
		var last NodeStats
		last.Node = n
		for r := 0; r < rounds; r++ {
			cur := sampleNodeStats(n, int64(n*1000+r))
			// Make the monotone fields actually monotone across rounds.
			for c := range cur.Counters {
				cur.Counters[c] += last.Counters[c]
			}
			for st := range cur.Stages {
				cur.Stages[st].Sum += last.Stages[st].Sum
				for b := range cur.Stages[st].Buckets {
					cur.Stages[st].Buckets[b] += last.Stages[st].Buckets[b]
				}
			}
			deltas[n] = append(deltas[n], cur.DeltaFrom(&last))
			last = cur
		}
	}

	ordered := NewClusterStats()
	for n := 0; n < nodes; n++ {
		for r := 0; r < rounds; r++ {
			ordered.Apply(&deltas[n][r])
		}
	}

	shuffled := NewClusterStats()
	var wg sync.WaitGroup
	for n := 0; n < nodes; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			// Per-node ship order preserved; cross-node interleaving is
			// whatever the scheduler does.
			for r := 0; r < rounds; r++ {
				shuffled.Apply(&deltas[n][r])
			}
		}(n)
	}
	wg.Wait()

	a, b := ordered.Nodes(), shuffled.Nodes()
	if len(a) != nodes || len(b) != nodes {
		t.Fatalf("node counts %d/%d, want %d", len(a), len(b), nodes)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("node %d: interleaved merge diverged from ordered merge", a[i].Node)
		}
	}
	if ta, tb := ordered.Total(), shuffled.Total(); ta != tb {
		t.Error("cluster totals diverged")
	}
}

func TestClusterStatsTotal(t *testing.T) {
	c := NewClusterStats()
	d0 := NodeStats{Node: 0}
	d0.Counters[CtrVertexUpdates] = 5
	d0.Wire.QueueHighWater = 3
	d1 := NodeStats{Node: 1}
	d1.Counters[CtrVertexUpdates] = 7
	d1.Wire.QueueHighWater = 9
	c.Apply(&d0)
	c.Apply(&d1)
	tot := c.Total()
	if tot.Counters[CtrVertexUpdates] != 12 {
		t.Errorf("total vertex updates = %d, want 12", tot.Counters[CtrVertexUpdates])
	}
	if tot.Wire.QueueHighWater != 9 {
		t.Errorf("total queue high water = %d, want max 9", tot.Wire.QueueHighWater)
	}
	if _, ok := c.Node(2); ok {
		t.Error("unknown node reported present")
	}
}

// --- health / readiness --------------------------------------------------

func TestHealthHandlers(t *testing.T) {
	h := NewHealth("starting")

	rec := httptest.NewRecorder()
	HealthzHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 || rec.Body.String() != "ok\n" {
		t.Errorf("healthz = %d %q", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	ReadyzHandler(h).ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != 503 || rec.Body.String() != "not ready: starting\n" {
		t.Errorf("readyz not-ready = %d %q", rec.Code, rec.Body.String())
	}

	h.SetReady(true, "running")
	rec = httptest.NewRecorder()
	ReadyzHandler(h).ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != 200 || rec.Body.String() != "ok\n" {
		t.Errorf("readyz ready = %d %q", rec.Code, rec.Body.String())
	}

	// A nil Health is permanently ready (single-process runs).
	rec = httptest.NewRecorder()
	ReadyzHandler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != 200 {
		t.Errorf("nil readyz = %d, want 200", rec.Code)
	}
}

func TestHealthHistory(t *testing.T) {
	h := NewHealth("starting")
	h.SetReady(true, "running")
	h.SetReady(true, "running") // idempotent: not re-recorded
	h.SetReady(false, "checkpoint resume")
	h.SetReady(true, "running")
	want := []HealthTransition{
		{false, "starting"},
		{true, "running"},
		{false, "checkpoint resume"},
		{true, "running"},
	}
	got := h.History()
	if len(got) != len(want) {
		t.Fatalf("history %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("history[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// --- Prometheus exposition ----------------------------------------------

// TestPromExpositionGolden pins the exposition's shape: family order,
// label formats, sparse cumulative buckets, and the exact rendering of a
// small fixed input. The counter family iterates the enum so adding a
// counter extends, rather than breaks, the golden.
func TestPromExpositionGolden(t *testing.T) {
	r := New(Options{}) // histograms off: no node-local stage families
	sh := r.Shards(1)
	sh[0].Add(CtrBlockUpdates, 7)
	sh[0].Add(CtrMessagesSent, 3)
	r.SetVertices(100)

	cluster := NewClusterStats()
	d := NodeStats{Node: 1}
	d.Counters[CtrVertexUpdates] = 42
	d.Wire = WireCounters{BytesSent: 1000, FramesSent: 10, QueueHighWater: 5}
	d.Stages[StageApply] = StageSnapshot{Sum: 20, Max: 12, Buckets: func() [NumBuckets]int64 {
		var b [NumBuckets]int64
		b[4] = 2 // two observations in [8,16) ns
		return b
	}()}
	d.Stages[StageStaleness] = StageSnapshot{Sum: 3, Max: 2, Buckets: func() [NumBuckets]int64 {
		var b [NumBuckets]int64
		b[1] = 1 // one observation of 1 milli-epoch
		return b
	}()}
	cluster.Apply(&d)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r, cluster); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}

	var want bytes.Buffer
	want.WriteString("# HELP graphabcd_counter_total Sharded run counters, cross-shard totals.\n")
	want.WriteString("# TYPE graphabcd_counter_total counter\n")
	nodeVals := map[Counter]int64{CtrBlockUpdates: 7, CtrMessagesSent: 3}
	for c := Counter(0); c < NumCounters; c++ {
		fmt.Fprintf(&want, "graphabcd_counter_total{name=%q} %d\n", c.Name(), nodeVals[c])
	}
	want.WriteString("# HELP graphabcd_gauge Live engine gauges, sampled at scrape time.\n")
	want.WriteString("# TYPE graphabcd_gauge gauge\n")
	want.WriteString("graphabcd_gauge{name=\"vertices\"} 100\n")
	want.WriteString("graphabcd_gauge{name=\"residual\"} 0\n")
	want.WriteString("graphabcd_gauge{name=\"active_blocks\"} 0\n")
	want.WriteString("# HELP graphabcd_cluster_nodes Nodes that have reported telemetry this run.\n")
	want.WriteString("# TYPE graphabcd_cluster_nodes gauge\n")
	want.WriteString("graphabcd_cluster_nodes 1\n")
	want.WriteString("# HELP graphabcd_cluster_counter_total Per-node run counters aggregated over the control lane.\n")
	want.WriteString("# TYPE graphabcd_cluster_counter_total counter\n")
	clusterVals := map[Counter]int64{CtrVertexUpdates: 42}
	for c := Counter(0); c < NumCounters; c++ {
		fmt.Fprintf(&want, "graphabcd_cluster_counter_total{node=\"1\",name=%q} %d\n", c.Name(), clusterVals[c])
	}
	want.WriteString("# HELP graphabcd_cluster_wire_total Per-node transport socket counters.\n")
	want.WriteString("# TYPE graphabcd_cluster_wire_total counter\n")
	want.WriteString("graphabcd_cluster_wire_total{node=\"1\",name=\"bytes_sent\"} 1000\n")
	want.WriteString("graphabcd_cluster_wire_total{node=\"1\",name=\"frames_sent\"} 10\n")
	want.WriteString("graphabcd_cluster_wire_total{node=\"1\",name=\"bytes_recv\"} 0\n")
	want.WriteString("graphabcd_cluster_wire_total{node=\"1\",name=\"frames_recv\"} 0\n")
	want.WriteString("graphabcd_cluster_wire_total{node=\"1\",name=\"reconnects\"} 0\n")
	want.WriteString("graphabcd_cluster_wire_total{node=\"1\",name=\"drops\"} 0\n")
	want.WriteString("graphabcd_cluster_wire_total{node=\"1\",name=\"crc_drops\"} 0\n")
	want.WriteString("graphabcd_cluster_wire_total{node=\"1\",name=\"decode_errors\"} 0\n")
	want.WriteString("# HELP graphabcd_cluster_wire_queue_high_water Per-node deepest outbound data queue observed.\n")
	want.WriteString("# TYPE graphabcd_cluster_wire_queue_high_water gauge\n")
	want.WriteString("graphabcd_cluster_wire_queue_high_water{node=\"1\"} 5\n")
	want.WriteString("# HELP graphabcd_cluster_stage_duration_seconds Per-node stage latency histograms.\n")
	want.WriteString("# TYPE graphabcd_cluster_stage_duration_seconds histogram\n")
	want.WriteString("graphabcd_cluster_stage_duration_seconds_bucket{node=\"1\",stage=\"apply\",le=\"1.6e-08\"} 2\n")
	want.WriteString("graphabcd_cluster_stage_duration_seconds_bucket{node=\"1\",stage=\"apply\",le=\"+Inf\"} 2\n")
	want.WriteString("graphabcd_cluster_stage_duration_seconds_sum{node=\"1\",stage=\"apply\"} 2e-08\n")
	want.WriteString("graphabcd_cluster_stage_duration_seconds_count{node=\"1\",stage=\"apply\"} 2\n")
	want.WriteString("# HELP graphabcd_cluster_staleness_milliepochs Per-node staleness histograms.\n")
	want.WriteString("# TYPE graphabcd_cluster_staleness_milliepochs histogram\n")
	want.WriteString("graphabcd_cluster_staleness_milliepochs_bucket{node=\"1\",le=\"2\"} 1\n")
	want.WriteString("graphabcd_cluster_staleness_milliepochs_bucket{node=\"1\",le=\"+Inf\"} 1\n")
	want.WriteString("graphabcd_cluster_staleness_milliepochs_sum{node=\"1\"} 3\n")
	want.WriteString("graphabcd_cluster_staleness_milliepochs_count{node=\"1\"} 1\n")

	if buf.String() != want.String() {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", buf.String(), want.String())
	}
	if strings.Contains(buf.String(), "{}") {
		t.Error("exposition contains an empty label set")
	}
}

// TestPromNodeHistograms covers the node-local stage families (timing
// on) without pinning timing-dependent bucket positions: shape only.
func TestPromNodeHistograms(t *testing.T) {
	r := New(Options{Histograms: true})
	sh := r.Shards(1)
	sh[0].Observe(StageGather, 1000)
	sh[0].Observe(StageStaleness, 3)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r, nil); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()
	for _, line := range []string{
		"# TYPE graphabcd_stage_duration_seconds histogram\n",
		"graphabcd_stage_duration_seconds_bucket{stage=\"gather\",le=\"+Inf\"} 1\n",
		"graphabcd_stage_duration_seconds_count{stage=\"gather\"} 1\n",
		"# TYPE graphabcd_staleness_milliepochs histogram\n",
		"graphabcd_staleness_milliepochs_bucket{le=\"4\"} 1\n",
		"graphabcd_staleness_milliepochs_count 1\n",
	} {
		if !strings.Contains(out, line) {
			t.Errorf("exposition missing %q\n%s", line, out)
		}
	}
	if strings.Contains(out, "graphabcd_cluster_nodes") {
		t.Error("nil cluster produced cluster families")
	}
}

func TestPromHandlerContentType(t *testing.T) {
	r := New(Options{})
	rec := httptest.NewRecorder()
	PromHandler(r, nil).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("content type = %q", ct)
	}
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "graphabcd_counter_total") {
		t.Errorf("metrics response %d: %q", rec.Code, rec.Body.String())
	}
}

// --- cross-node flow events ----------------------------------------------

// TestTraceFlowEvents verifies the Perfetto flow pairing: a send on node
// 3 and the matching recv on another node carry the same numeric flow id
// (srcNode<<32 | seq), each anchored in a 1µs slice, with the finish
// side bound to the enclosing slice ("bp":"e").
func TestTraceFlowEvents(t *testing.T) {
	var sendBuf, recvBuf bytes.Buffer

	sendTr := NewTracer(&sendBuf, 1)
	sendTr.SetProcess(3, "graphabcd-node3")
	sendReg := New(Options{Tracer: sendTr})
	ssh := sendReg.Shards(1)
	ssh[0].FlowSend(1, 77, 2000) // to node 1, seq 77, at t=2µs
	if err := sendTr.Close(); err != nil {
		t.Fatalf("send close: %v", err)
	}

	recvTr := NewTracer(&recvBuf, 1)
	recvTr.SetProcess(1, "graphabcd-node1")
	recvReg := New(Options{Tracer: recvTr})
	rsh := recvReg.Shards(1)
	rsh[0].FlowRecv(3, 77, 5000) // from node 3, seq 77, at t=5µs
	if err := recvTr.Close(); err != nil {
		t.Fatalf("recv close: %v", err)
	}

	wantID := float64(int64(3)<<32 | 77)
	sendEvents := decodeTrace(t, sendBuf.Bytes())
	recvEvents := decodeTrace(t, recvBuf.Bytes())

	s := findEvent(t, sendEvents, "batch", "s")
	if s["id"] != wantID || s["pid"] != 3.0 {
		t.Errorf("send flow = %v, want id %v pid 3", s, wantID)
	}
	anchor := findEvent(t, sendEvents, "send", "X")
	if anchor["args"].(map[string]any)["seq"] != 77.0 || anchor["args"].(map[string]any)["peer"] != 1.0 {
		t.Errorf("send anchor args = %v", anchor["args"])
	}

	f := findEvent(t, recvEvents, "batch", "f")
	if f["id"] != wantID || f["pid"] != 1.0 {
		t.Errorf("recv flow = %v, want id %v pid 1", f, wantID)
	}
	if f["bp"] != "e" {
		t.Errorf(`recv flow missing "bp":"e": %v`, f)
	}
	findEvent(t, recvEvents, "recv", "X")

	// Each shard's metadata record names its node as the Perfetto process.
	for _, evs := range [][]map[string]any{sendEvents, recvEvents} {
		if evs[0]["ph"] != "M" || evs[0]["name"] != "process_name" {
			t.Errorf("first record is not process metadata: %v", evs[0])
		}
	}
}

// TestTraceFlowSampling checks flows sample by sequence number on both
// ends — the same seq is kept or dropped identically, so a sampled trace
// never shows a dangling arrow.
func TestTraceFlowSampling(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf, 4)
	r := New(Options{Tracer: tr})
	sh := r.Shards(1)
	for seq := uint64(0); seq < 8; seq++ {
		sh[0].FlowSend(1, seq, int64(seq)*1000)
		sh[0].FlowRecv(2, seq, int64(seq)*1000+500)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	events := decodeTrace(t, buf.Bytes())
	var sends, recvs int
	for _, e := range events {
		switch e["ph"] {
		case "s":
			sends++
		case "f":
			recvs++
		}
	}
	// seq 0 and 4 survive the 1-in-4 sampling, on both ends.
	if sends != 2 || recvs != 2 {
		t.Errorf("sampled %d sends, %d recvs, want 2/2", sends, recvs)
	}
}

func decodeTrace(t *testing.T, raw []byte) []map[string]any {
	t.Helper()
	var events []map[string]any
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, raw)
	}
	return events
}

func findEvent(t *testing.T, events []map[string]any, name, ph string) map[string]any {
	t.Helper()
	for _, e := range events {
		if e["name"] == name && e["ph"] == ph {
			return e
		}
	}
	t.Fatalf("no event name=%q ph=%q in %v", name, ph, events)
	return nil
}
