package telemetry

import "time"

// StageStats is one stage's merged histogram summary, ns-valued for
// duration stages and milli-epoch-valued for staleness.
type StageStats struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P95   int64   `json:"p95"`
	P99   int64   `json:"p99"`
	Max   int64   `json:"max"`
}

// Snapshot is one consistent-enough merged view of the registry: counter
// totals, live gauges, stage summaries, derived rates, and the latest
// convergence sample. It marshals to JSON as-is; cmd/graphabcd publishes
// it through expvar at /debug/vars.
type Snapshot struct {
	ElapsedSec   float64               `json:"elapsed_sec"`
	Counters     map[string]int64      `json:"counters"`
	Gauges       map[string]float64    `json:"gauges,omitempty"`
	Stages       map[string]StageStats `json:"stages,omitempty"`
	Epochs       float64               `json:"epochs"`
	EpochsPerSec float64               `json:"epochs_per_sec"`
	MTEPS        float64               `json:"mteps"`
	Residual     float64               `json:"residual"`
	ActiveBlocks int                   `json:"active_blocks"`
}

// Snapshot merges every shard, samples every gauge, and derives the
// headline rates. It allocates and may take gauge locks — call it from
// monitoring paths (the metrics endpoint, the progress printer, the final
// Stats build), never from a worker.
func (r *Registry) Snapshot() Snapshot {
	elapsed := time.Since(r.start).Seconds()
	totals := r.CounterTotals()
	s := Snapshot{
		ElapsedSec: elapsed,
		Counters:   make(map[string]int64, NumCounters),
	}
	for c := Counter(0); c < NumCounters; c++ {
		s.Counters[c.Name()] = totals[c]
	}
	if t := r.tracer; t != nil {
		s.Counters[CtrTraceDropped.Name()] += t.Dropped()
	}

	r.mu.Lock()
	nv := r.vertices
	gauges := make([]gauge, len(r.gauges))
	copy(gauges, r.gauges)
	if n := len(r.conv); n > 0 {
		s.Residual = r.conv[n-1].Residual
		s.ActiveBlocks = r.conv[n-1].ActiveBlocks
	}
	r.mu.Unlock()

	if len(gauges) > 0 {
		s.Gauges = make(map[string]float64, len(gauges))
		for _, g := range gauges {
			s.Gauges[g.name] = g.fn()
		}
	}
	if nv > 0 {
		s.Epochs = float64(totals[CtrVertexUpdates]) / float64(nv)
	}
	if elapsed > 0 {
		s.EpochsPerSec = s.Epochs / elapsed
		s.MTEPS = float64(totals[CtrEdgesTraversed]) / elapsed / 1e6
	}
	if r.timing {
		s.Stages = make(map[string]StageStats, NumStages)
		for st := Stage(0); st < NumStages; st++ {
			h := r.StageHistogram(st)
			if h.Count == 0 {
				continue
			}
			s.Stages[st.Name()] = StageStats{
				Count: h.Count,
				Mean:  h.Mean(),
				P50:   h.Quantile(0.50),
				P95:   h.Quantile(0.95),
				P99:   h.Quantile(0.99),
				Max:   h.Max,
			}
		}
	}
	return s
}
