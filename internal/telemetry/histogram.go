package telemetry

import "math/bits"

// NumBuckets is the fixed bucket count of every stage histogram. Buckets
// are powers of two: bucket b holds values in [2^(b-1), 2^b), so 40
// buckets cover 1 ns up to ~9 minutes of ns-scale durations (and the
// whole useful milli-epoch staleness range) with ≤2x relative error —
// the precision/footprint point that keeps a shard's histogram block
// small enough to stay resident in cache.
const NumBuckets = 40

// bucketOf maps a non-negative value to its power-of-two bucket.
//
//abcd:hotpath
func bucketOf(v int64) int {
	b := bits.Len64(uint64(v))
	if b >= NumBuckets {
		return NumBuckets - 1
	}
	return b
}

// BucketUpper returns the exclusive upper bound of bucket b, the value
// reported for quantiles that land in it.
func BucketUpper(b int) int64 {
	if b >= 63 {
		return 1<<63 - 1
	}
	return 1 << b
}

// Histogram is one stage's merged (cross-shard) histogram snapshot.
type Histogram struct {
	Count   int64
	Sum     int64
	Max     int64
	Buckets [NumBuckets]int64
}

// Mean returns the exact mean of observed values (the sum is tracked
// alongside the buckets, so the mean does not suffer bucket rounding).
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1) from
// the bucket boundaries: the true value is within 2x below the returned
// one. Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	rank := int64(q * float64(h.Count))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for b := 0; b < NumBuckets; b++ {
		cum += h.Buckets[b]
		if cum >= rank {
			u := BucketUpper(b)
			if u > h.Max && h.Max > 0 {
				return h.Max // the last occupied bucket's bound can overshoot the true max
			}
			return u
		}
	}
	return h.Max
}

// StageHistogram merges stage st across all shards into one Histogram.
// Safe to call while writers run: each slot is read atomically, so the
// result is a consistent-enough snapshot (counts never decrease).
func (r *Registry) StageHistogram(st Stage) Histogram {
	var h Histogram
	set := r.shards.Load()
	if set == nil {
		return h
	}
	for i := range *set {
		sh := (*set)[i].hist
		if sh == nil {
			continue
		}
		for b := 0; b < NumBuckets; b++ {
			h.Buckets[b] += sh.counts[int(st)*NumBuckets+b].Load()
		}
		h.Sum += sh.sums[st].Load()
		if m := sh.maxs[st].Load(); m > h.Max {
			h.Max = m
		}
	}
	for b := 0; b < NumBuckets; b++ {
		h.Count += h.Buckets[b]
	}
	return h
}
