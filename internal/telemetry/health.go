package telemetry

import (
	"net/http"
	"sync"
)

// Health tracks one node's liveness/readiness for the /healthz and
// /readyz endpoints (DESIGN.md §13). Liveness is trivial — the process
// answering HTTP is alive. Readiness means the node has joined its
// cluster and started its workers, and goes false again while a
// checkpoint resume rewrites the node's state (a scrape mid-restore
// would read a half-restored iterate). Every transition records a
// reason; History exposes the transition log so tests can assert the
// readiness dance deterministically instead of racing a poll loop.
type Health struct {
	mu      sync.Mutex
	ready   bool
	reason  string
	history []HealthTransition
}

// HealthTransition is one recorded readiness change.
type HealthTransition struct {
	Ready  bool
	Reason string
}

// NewHealth returns a not-ready Health with the given initial reason
// (e.g. "starting").
func NewHealth(reason string) *Health {
	h := &Health{}
	h.SetReady(false, reason)
	return h
}

// SetReady records a readiness transition. Idempotent sets (same state,
// same reason) are not re-recorded.
func (h *Health) SetReady(ready bool, reason string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.history) > 0 && h.ready == ready && h.reason == reason {
		return
	}
	h.ready = ready
	h.reason = reason
	h.history = append(h.history, HealthTransition{Ready: ready, Reason: reason})
}

// Ready returns the current readiness and its reason.
func (h *Health) Ready() (bool, string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ready, h.reason
}

// History returns a copy of every recorded transition, oldest first.
func (h *Health) History() []HealthTransition {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]HealthTransition, len(h.history))
	copy(out, h.history)
	return out
}

// HealthzHandler serves liveness: always 200 while the process answers.
func HealthzHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok\n"))
	})
}

// ReadyzHandler serves readiness: 200 with "ok" when ready, 503 with
// the not-ready reason otherwise. A nil Health is permanently ready —
// single-process runs have no join/resume dance to gate on.
func ReadyzHandler(h *Health) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if h == nil {
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write([]byte("ok\n"))
			return
		}
		ready, reason := h.Ready()
		if ready {
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write([]byte("ok\n"))
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte("not ready: " + reason + "\n"))
	})
}
