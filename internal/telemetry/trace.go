package telemetry

import (
	"bufio"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Event kinds in a ring record. Slices are the PR 3 block-lifecycle
// events; flows are the cross-node message correlation events of
// DESIGN.md §13: a send on one node and the matching recv on another
// share a flow id derived from (source node, envelope seq), so a merged
// multi-node trace draws an arrow between them in Perfetto.
const (
	kindSlice byte = iota
	kindFlowSend
	kindFlowRecv
)

// traceEvent is one fixed-size record in a worker's ring buffer; the hot
// path writes these, never strings or JSON.
type traceEvent struct {
	kind  byte
	stage Stage
	block int32 // slice: block id; flow: peer node id
	start int64 // ns since trace start
	dur   int64 // slice: duration ns; flow: envelope sequence
}

// ring is a single-producer single-consumer event buffer. The producer is
// the shard's worker; the consumer is the tracer's flusher goroutine.
// head and tail are atomic, so the producer's event write happens-before
// the consumer's read (publish via head), and slot reuse happens-after
// the consumer's tail advance — lock-free in both directions. A full
// ring drops the event and counts the drop: tracing must never apply
// backpressure to the engine.
type ring struct {
	worker  int32
	sample  int64
	events  []traceEvent
	head    atomic.Int64 // producer cursor
	tail    atomic.Int64 // consumer cursor
	dropped atomic.Int64
}

// ringCap is each worker's event capacity between flushes. At the 50ms
// flush cadence a worker would need >80k traced events/sec to overflow;
// sampled tracing stays orders of magnitude below that.
const ringCap = 4096

// record appends one event if the block is in the trace sample.
//
//abcd:hotpath
func (r *ring) record(st Stage, block int, start, dur int64) {
	if r.sample > 1 && int64(block)%r.sample != 0 {
		return
	}
	r.push(traceEvent{kind: kindSlice, stage: st, block: int32(block), start: start, dur: dur})
}

// recordFlow appends one flow endpoint, sampled by envelope sequence so
// the send side and the recv side of the same message make the same
// keep/drop decision from their own local state.
//
//abcd:hotpath
func (r *ring) recordFlow(kind byte, peer int, seq uint64, ts int64) {
	if r.sample > 1 && int64(seq)%r.sample != 0 {
		return
	}
	r.push(traceEvent{kind: kind, block: int32(peer), start: ts, dur: int64(seq)})
}

//abcd:hotpath
func (r *ring) push(e traceEvent) {
	h, t := r.head.Load(), r.tail.Load()
	if h-t >= int64(len(r.events)) {
		r.dropped.Add(1)
		return
	}
	r.events[h%int64(len(r.events))] = e
	r.head.Store(h + 1)
}

// Tracer collects sampled block-lifecycle events from every shard's ring
// and writes them as Chrome trace-event JSON — loadable in
// chrome://tracing or https://ui.perfetto.dev. One trace event is
// emitted per (stage, block) occurrence: "X" complete events with the
// worker as tid, so the timeline shows each worker's gather/scatter/wait
// interleaving and each sampled block can be followed across stages.
// Flow records additionally emit Perfetto flow-arrow pairs (ph "s"/"f")
// anchored to tiny marker slices.
type Tracer struct {
	sample int64

	mu       sync.Mutex // guards everything below (flusher + Close + SetProcess)
	w        *bufio.Writer
	buf      []byte
	rings    []*ring
	wrote    bool // at least one event emitted (comma management)
	started  bool // header + process metadata emitted
	procPid  int64
	procName string

	stop chan struct{}
	done chan struct{}
}

// NewTracer starts a tracer writing to w. sampleEvery selects every Nth
// block id for tracing (1 traces every block); sampling is by block id,
// so a sampled block's whole lifecycle — queue wait, gather, queue wait,
// scatter — appears in the trace, not a random subset of stages. The
// caller must Close the tracer after the run to flush the tail and
// terminate the JSON.
//
// The JSON header (and the process metadata record) is written lazily at
// the first flush, so SetProcess can rename the process after creation —
// a distributed joiner learns its node id only at assignment time.
func NewTracer(w io.Writer, sampleEvery int) *Tracer {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	t := &Tracer{
		sample:   int64(sampleEvery),
		w:        bufio.NewWriterSize(w, 1<<16),
		procPid:  1,
		procName: "graphabcd",
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go t.flushLoop()
	return t
}

// SetProcess names this trace shard's Perfetto process. In distributed
// runs every node passes its node id as pid, so merged per-node shards
// show up as distinct process tracks (-trace-merge relies on this).
// Effective only before the first flush writes the header; call it right
// after the tracer is created, before the run starts.
func (t *Tracer) SetProcess(pid int, name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.started {
		return
	}
	t.procPid = int64(pid)
	t.procName = name
}

// newRing attaches one worker ring; called from Registry.Shards.
func (t *Tracer) newRing(worker int32) *ring {
	r := &ring{worker: worker, sample: t.sample, events: make([]traceEvent, ringCap)}
	t.mu.Lock()
	t.rings = append(t.rings, r)
	t.mu.Unlock()
	return r
}

// flushLoop drains every ring on a fixed cadence, off the hot path.
func (t *Tracer) flushLoop() {
	defer close(t.done)
	tick := time.NewTicker(50 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-t.stop:
			return
		case <-tick.C:
			t.flush()
		}
	}
}

// flush drains all rings and writes their events.
func (t *Tracer) flush() {
	t.mu.Lock()
	defer t.mu.Unlock()
	// Defer the header until the first event is actually pending: an idle
	// pre-run flush must not latch the process identity while SetProcess
	// has yet to run — a distributed coordinator can sit for seconds
	// waiting on joiners before its node id reaches the tracer.
	if !t.started {
		pending := false
		for _, r := range t.rings {
			if r.tail.Load() < r.head.Load() {
				pending = true
				break
			}
		}
		if !pending {
			return
		}
	}
	t.ensureHeader()
	for _, r := range t.rings {
		h, tl := r.head.Load(), r.tail.Load()
		for ; tl < h; tl++ {
			t.writeEvent(r.worker, &r.events[tl%int64(len(r.events))])
		}
		r.tail.Store(tl)
	}
}

// ensureHeader writes the JSON array opener and the process metadata
// record once; callers hold mu.
func (t *Tracer) ensureHeader() {
	if t.started {
		return
	}
	t.started = true
	b := t.buf[:0]
	b = append(b, `[{"name":"process_name","ph":"M","pid":`...)
	b = strconv.AppendInt(b, t.procPid, 10)
	b = append(b, `,"args":{"name":"`...)
	b = append(b, t.procName...)
	b = append(b, `"}}`...)
	t.buf = b
	_, _ = t.w.Write(b)
	t.wrote = true
}

// writeEvent appends one Chrome trace event. Timestamps and durations are
// microseconds (the trace-event spec's unit), written with strconv into a
// reused buffer.
func (t *Tracer) writeEvent(worker int32, e *traceEvent) {
	if e.kind != kindSlice {
		t.writeFlow(worker, e)
		return
	}
	b := t.buf[:0]
	if t.wrote {
		b = append(b, ',', '\n')
	}
	b = append(b, `{"name":"`...)
	b = append(b, e.stage.Name()...)
	b = append(b, `","cat":"block","ph":"X","ts":`...)
	b = appendMicros(b, e.start)
	b = append(b, `,"dur":`...)
	b = appendMicros(b, e.dur)
	b = append(b, `,"pid":`...)
	b = strconv.AppendInt(b, t.procPid, 10)
	b = append(b, `,"tid":`...)
	b = strconv.AppendInt(b, int64(worker), 10)
	b = append(b, `,"args":{"block":`...)
	b = strconv.AppendInt(b, int64(e.block), 10)
	b = append(b, `}}`...)
	t.buf = b
	_, _ = t.w.Write(b)
	t.wrote = true
}

// writeFlow renders one flow endpoint as a 1µs anchor slice plus the
// Perfetto flow event bound to it. The flow id is the same on both ends:
// (source node << 32) | (envelope seq & 0xffffffff) — the source node is
// this process for sends and the peer for recvs, so the arrow connects
// sender to receiver across merged shards.
func (t *Tracer) writeFlow(worker int32, e *traceEvent) {
	seq := uint64(e.dur)
	var srcNode, name string
	var flowPh byte
	if e.kind == kindFlowSend {
		srcNode, name, flowPh = "self", "send", 's'
	} else {
		srcNode, name, flowPh = "peer", "recv", 'f'
	}
	var src int64
	if srcNode == "self" {
		src = t.procPid
	} else {
		src = int64(e.block)
	}
	id := src<<32 | int64(seq&0xffffffff)

	b := t.buf[:0]
	if t.wrote {
		b = append(b, ',', '\n')
	}
	// Anchor slice: flows must begin and end inside a slice on the track.
	b = append(b, `{"name":"`...)
	b = append(b, name...)
	b = append(b, `","cat":"net","ph":"X","ts":`...)
	b = appendMicros(b, e.start)
	b = append(b, `,"dur":1,"pid":`...)
	b = strconv.AppendInt(b, t.procPid, 10)
	b = append(b, `,"tid":`...)
	b = strconv.AppendInt(b, int64(worker), 10)
	b = append(b, `,"args":{"peer":`...)
	b = strconv.AppendInt(b, int64(e.block), 10)
	b = append(b, `,"seq":`...)
	b = strconv.AppendUint(b, seq, 10)
	b = append(b, `}},`...)
	b = append(b, '\n')
	// Flow event at the same instant, bound to the enclosing slice.
	b = append(b, `{"name":"batch","cat":"net","ph":"`...)
	b = append(b, flowPh)
	b = append(b, '"')
	if flowPh == 'f' {
		b = append(b, `,"bp":"e"`...)
	}
	b = append(b, `,"id":`...)
	b = strconv.AppendInt(b, id, 10)
	b = append(b, `,"ts":`...)
	b = appendMicros(b, e.start)
	b = append(b, `,"pid":`...)
	b = strconv.AppendInt(b, t.procPid, 10)
	b = append(b, `,"tid":`...)
	b = strconv.AppendInt(b, int64(worker), 10)
	b = append(b, '}')
	t.buf = b
	_, _ = t.w.Write(b)
	t.wrote = true
}

// appendMicros renders ns as fractional microseconds with ns precision.
func appendMicros(b []byte, ns int64) []byte {
	b = strconv.AppendInt(b, ns/1e3, 10)
	frac := ns % 1e3
	if frac < 0 {
		frac = 0
	}
	b = append(b, '.')
	b = append(b, byte('0'+frac/100), byte('0'+frac/10%10), byte('0'+frac%10))
	return b
}

// Dropped returns how many events were lost to full rings.
func (t *Tracer) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var n int64
	for _, r := range t.rings {
		n += r.dropped.Load()
	}
	return n
}

// Close stops the flusher, drains the rings one final time, terminates
// the JSON array, and flushes the buffered writer. The tracer must not
// receive events after Close; stop the run first.
func (t *Tracer) Close() error {
	close(t.stop)
	<-t.done
	t.flush()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ensureHeader() // an event-free shard still terminates as valid JSON
	_, _ = t.w.WriteString("]\n")
	return t.w.Flush()
}
