package telemetry

import (
	"bufio"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// traceEvent is one fixed-size record in a worker's ring buffer; the hot
// path writes these, never strings or JSON.
type traceEvent struct {
	stage Stage
	block int32
	start int64 // ns since trace start
	dur   int64 // ns
}

// ring is a single-producer single-consumer event buffer. The producer is
// the shard's worker; the consumer is the tracer's flusher goroutine.
// head and tail are atomic, so the producer's event write happens-before
// the consumer's read (publish via head), and slot reuse happens-after
// the consumer's tail advance — lock-free in both directions. A full
// ring drops the event and counts the drop: tracing must never apply
// backpressure to the engine.
type ring struct {
	worker  int32
	sample  int64
	events  []traceEvent
	head    atomic.Int64 // producer cursor
	tail    atomic.Int64 // consumer cursor
	dropped atomic.Int64
}

// ringCap is each worker's event capacity between flushes. At the 50ms
// flush cadence a worker would need >80k traced events/sec to overflow;
// sampled tracing stays orders of magnitude below that.
const ringCap = 4096

// record appends one event if the block is in the trace sample.
//
//abcd:hotpath
func (r *ring) record(st Stage, block int, start, dur int64) {
	if r.sample > 1 && int64(block)%r.sample != 0 {
		return
	}
	h, t := r.head.Load(), r.tail.Load()
	if h-t >= int64(len(r.events)) {
		r.dropped.Add(1)
		return
	}
	e := &r.events[h%int64(len(r.events))]
	e.stage, e.block, e.start, e.dur = st, int32(block), start, dur
	r.head.Store(h + 1)
}

// Tracer collects sampled block-lifecycle events from every shard's ring
// and writes them as Chrome trace-event JSON — loadable in
// chrome://tracing or https://ui.perfetto.dev. One trace event is
// emitted per (stage, block) occurrence: "X" complete events with the
// worker as tid, so the timeline shows each worker's gather/scatter/wait
// interleaving and each sampled block can be followed across stages.
type Tracer struct {
	sample int64

	mu    sync.Mutex // guards w, buf, rings, wrote (flusher + Close only)
	w     *bufio.Writer
	buf   []byte
	rings []*ring
	wrote bool

	stop chan struct{}
	done chan struct{}
}

// NewTracer starts a tracer writing to w. sampleEvery selects every Nth
// block id for tracing (1 traces every block); sampling is by block id,
// so a sampled block's whole lifecycle — queue wait, gather, queue wait,
// scatter — appears in the trace, not a random subset of stages. The
// caller must Close the tracer after the run to flush the tail and
// terminate the JSON.
func NewTracer(w io.Writer, sampleEvery int) *Tracer {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	t := &Tracer{
		sample: int64(sampleEvery),
		w:      bufio.NewWriterSize(w, 1<<16),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	_, _ = t.w.WriteString(`[{"name":"process_name","ph":"M","pid":1,"args":{"name":"graphabcd"}}`)
	t.wrote = true
	go t.flushLoop()
	return t
}

// newRing attaches one worker ring; called from Registry.Shards.
func (t *Tracer) newRing(worker int32) *ring {
	r := &ring{worker: worker, sample: t.sample, events: make([]traceEvent, ringCap)}
	t.mu.Lock()
	t.rings = append(t.rings, r)
	t.mu.Unlock()
	return r
}

// flushLoop drains every ring on a fixed cadence, off the hot path.
func (t *Tracer) flushLoop() {
	defer close(t.done)
	tick := time.NewTicker(50 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-t.stop:
			return
		case <-tick.C:
			t.flush()
		}
	}
}

// flush drains all rings and writes their events.
func (t *Tracer) flush() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, r := range t.rings {
		h, tl := r.head.Load(), r.tail.Load()
		for ; tl < h; tl++ {
			t.writeEvent(r.worker, &r.events[tl%int64(len(r.events))])
		}
		r.tail.Store(tl)
	}
}

// writeEvent appends one Chrome trace event. Timestamps and durations are
// microseconds (the trace-event spec's unit), written with strconv into a
// reused buffer.
func (t *Tracer) writeEvent(worker int32, e *traceEvent) {
	b := t.buf[:0]
	if t.wrote {
		b = append(b, ',', '\n')
	}
	b = append(b, `{"name":"`...)
	b = append(b, e.stage.Name()...)
	b = append(b, `","cat":"block","ph":"X","ts":`...)
	b = appendMicros(b, e.start)
	b = append(b, `,"dur":`...)
	b = appendMicros(b, e.dur)
	b = append(b, `,"pid":1,"tid":`...)
	b = strconv.AppendInt(b, int64(worker), 10)
	b = append(b, `,"args":{"block":`...)
	b = strconv.AppendInt(b, int64(e.block), 10)
	b = append(b, `}}`...)
	t.buf = b
	_, _ = t.w.Write(b)
	t.wrote = true
}

// appendMicros renders ns as fractional microseconds with ns precision.
func appendMicros(b []byte, ns int64) []byte {
	b = strconv.AppendInt(b, ns/1e3, 10)
	frac := ns % 1e3
	if frac < 0 {
		frac = 0
	}
	b = append(b, '.')
	b = append(b, byte('0'+frac/100), byte('0'+frac/10%10), byte('0'+frac%10))
	return b
}

// Dropped returns how many events were lost to full rings.
func (t *Tracer) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var n int64
	for _, r := range t.rings {
		n += r.dropped.Load()
	}
	return n
}

// Close stops the flusher, drains the rings one final time, terminates
// the JSON array, and flushes the buffered writer. The tracer must not
// receive events after Close; stop the run first.
func (t *Tracer) Close() error {
	close(t.stop)
	<-t.done
	t.flush()
	t.mu.Lock()
	defer t.mu.Unlock()
	_, _ = t.w.WriteString("]\n")
	return t.w.Flush()
}
