// Package gen provides deterministic synthetic graph generators used as
// substitutes for the paper's seven real-world datasets (Table I), which
// are not redistributable here. The R-MAT generator reproduces the degree
// skew of the social graphs (Wikipedia-Talk, Pokec, LiveJournal, Twitter);
// the bipartite rating generator plants a low-rank factor structure that
// gives Collaborative Filtering the same convergence behaviour as the
// SAC18 / MovieLens / Netflix rating matrices.
package gen

// rng is a SplitMix64 generator: tiny, fast, and fully deterministic across
// platforms, so every test, example, and benchmark sees identical graphs.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed} }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform integer in [0, n). n must be positive.
func (r *rng) intn(n int) int {
	return int(r.next() % uint64(n))
}

// float64 returns a uniform float in [0, 1).
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// norm returns an approximately standard-normal variate (Irwin–Hall sum of
// 12 uniforms), sufficient for planting CF factors.
func (r *rng) norm() float64 {
	s := 0.0
	for i := 0; i < 12; i++ {
		s += r.float64()
	}
	return s - 6
}
