package gen

import (
	"fmt"
	"math"

	"graphabcd/internal/graph"
)

// RatingConfig parameterizes a bipartite user-item rating graph with a
// planted low-rank structure, the synthetic analog of the SAC18 /
// MovieLens / Netflix datasets used by the paper's CF experiments.
type RatingConfig struct {
	Users, Items int
	Ratings      int     // number of (user,item) ratings
	Rank         int     // rank of the planted factor model
	Noise        float64 // std-dev of additive rating noise
	Skew         float64 // item-popularity skew exponent (0 = uniform)
	Seed         uint64
}

// DefaultRating returns a MovieLens-like configuration scaled to the given
// sizes: rank-8 planted factors, mild noise, zipf-ish item popularity.
func DefaultRating(users, items, ratings int, seed uint64) RatingConfig {
	return RatingConfig{
		Users: users, Items: items, Ratings: ratings,
		Rank: 8, Noise: 0.25, Skew: 0.8, Seed: seed,
	}
}

// RatingGraph is a bipartite graph plus CF metadata. Vertices [0, Users)
// are users; [Users, Users+Items) are items. Every rating contributes two
// directed edges (user->item and item->user) carrying the rating as
// weight, so the pull-push GATHER of either side streams its ratings
// sequentially.
type RatingGraph struct {
	Graph        *graph.Graph
	Users, Items int
	NumRatings   int // rating count (Graph has 2x edges)
}

// ItemVertex converts an item index to its vertex id.
func (rg *RatingGraph) ItemVertex(item int) uint32 { return uint32(rg.Users + item) }

// IsUser reports whether vertex v is on the user side.
func (rg *RatingGraph) IsUser(v uint32) bool { return int(v) < rg.Users }

// Rating generates the bipartite rating graph. Ratings are
// clamp(dot(u_p, v_q) + noise, 1, 5) for planted gaussian factors u, v.
func Rating(cfg RatingConfig) (*RatingGraph, error) {
	if cfg.Users <= 0 || cfg.Items <= 0 {
		return nil, fmt.Errorf("gen: rating graph needs users, items > 0 (got %d, %d)", cfg.Users, cfg.Items)
	}
	if cfg.Ratings < 0 || cfg.Rank <= 0 {
		return nil, fmt.Errorf("gen: rating graph needs ratings >= 0, rank > 0 (got %d, %d)", cfg.Ratings, cfg.Rank)
	}
	r := newRNG(cfg.Seed)

	// Planted factors, scaled so dot products land around the 1-5 range.
	scale := math.Sqrt(3.0 / float64(cfg.Rank))
	uf := make([][]float64, cfg.Users)
	vf := make([][]float64, cfg.Items)
	for p := range uf {
		uf[p] = factor(r, cfg.Rank, scale)
	}
	for q := range vf {
		vf[q] = factor(r, cfg.Rank, scale)
	}

	// Item popularity: index^-skew sampling via cumulative weights.
	cum := make([]float64, cfg.Items+1)
	for q := 0; q < cfg.Items; q++ {
		cum[q+1] = cum[q] + math.Pow(float64(q+1), -cfg.Skew)
	}
	pickItem := func() int {
		x := r.float64() * cum[cfg.Items]
		lo, hi := 0, cfg.Items
		for hi-lo > 1 {
			mid := (lo + hi) / 2
			if cum[mid] <= x {
				lo = mid
			} else {
				hi = mid
			}
		}
		return lo
	}

	n := cfg.Users + cfg.Items
	b := graph.NewBuilder(n)
	sh := b.NewShard()
	sh.Grow(2 * cfg.Ratings)
	for i := 0; i < cfg.Ratings; i++ {
		p := r.intn(cfg.Users)
		q := pickItem()
		dot := 0.0
		for k := 0; k < cfg.Rank; k++ {
			dot += uf[p][k] * vf[q][k]
		}
		rating := 3 + dot + cfg.Noise*r.norm()
		if rating < 1 {
			rating = 1
		}
		if rating > 5 {
			rating = 5
		}
		u, it := uint32(p), uint32(cfg.Users+q)
		w := float32(rating)
		sh.Add(u, it, w)
		sh.Add(it, u, w)
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &RatingGraph{Graph: g, Users: cfg.Users, Items: cfg.Items, NumRatings: cfg.Ratings}, nil
}

func factor(r *rng, rank int, scale float64) []float64 {
	f := make([]float64, rank)
	for k := range f {
		f[k] = scale * r.norm()
	}
	return f
}
