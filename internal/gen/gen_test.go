package gen

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestRMATDeterministic(t *testing.T) {
	cfg := DefaultRMAT(8, 4, 42)
	g1, err := RMAT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := RMAT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumVertices() != g2.NumVertices() || g1.NumEdges() != g2.NumEdges() {
		t.Fatal("same config produced different sizes")
	}
	a, b := g1.Edges(), g2.Edges()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("edge %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// A different seed must change the graph.
	cfg.Seed = 43
	g3, _ := RMAT(cfg)
	c := g3.Edges()
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestRMATSizesAndSkew(t *testing.T) {
	g, err := RMAT(DefaultRMAT(10, 8, 7))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1024 || g.NumEdges() != 8192 {
		t.Fatalf("got V=%d E=%d, want 1024, 8192", g.NumVertices(), g.NumEdges())
	}
	// Power-law check: the top 1% of vertices by in-degree should hold far
	// more than 1% of the edges (R-MAT produces hubs).
	degs := make([]int, g.NumVertices())
	for v := range degs {
		degs[v] = int(g.InDegree(uint32(v)))
	}
	sort.Sort(sort.Reverse(sort.IntSlice(degs)))
	top := 0
	for _, d := range degs[:len(degs)/100] {
		top += d
	}
	if frac := float64(top) / float64(g.NumEdges()); frac < 0.05 {
		t.Errorf("top-1%% in-degree share %.3f too small for a skewed graph", frac)
	}
}

func TestRMATWeights(t *testing.T) {
	cfg := DefaultRMAT(8, 4, 1)
	cfg.MaxWeight = 16
	g, err := RMAT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[float32]bool{}
	for _, e := range g.Edges() {
		if e.Weight < 1 || e.Weight > 16 || e.Weight != float32(math.Trunc(float64(e.Weight))) {
			t.Fatalf("weight %g outside [1,16] or non-integer", e.Weight)
		}
		seen[e.Weight] = true
	}
	if len(seen) < 4 {
		t.Errorf("only %d distinct weights, want variety", len(seen))
	}
}

func TestRMATValidation(t *testing.T) {
	bad := []RMATConfig{
		{Scale: -1, EdgeFactor: 1, A: 0.25, B: 0.25, C: 0.25},
		{Scale: 31, EdgeFactor: 1, A: 0.25, B: 0.25, C: 0.25},
		{Scale: 4, EdgeFactor: -1, A: 0.25, B: 0.25, C: 0.25},
		{Scale: 4, EdgeFactor: 1, A: 0.9, B: 0.9, C: 0.9},
		{Scale: 4, EdgeFactor: 1, A: -0.1, B: 0.5, C: 0.5},
	}
	for i, cfg := range bad {
		if _, err := RMAT(cfg); err == nil {
			t.Errorf("config %d: want error", i)
		}
	}
}

func TestUniform(t *testing.T) {
	g, err := Uniform(100, 500, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 100 || g.NumEdges() != 500 {
		t.Fatalf("got V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
	if _, err := Uniform(0, 5, 0, 1); err == nil {
		t.Error("want error for n=0")
	}
	if _, err := Uniform(5, -1, 0, 1); err == nil {
		t.Error("want error for m<0")
	}
}

func TestGrid(t *testing.T) {
	g, err := Grid(4, 5, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 20 {
		t.Fatalf("V=%d, want 20", g.NumVertices())
	}
	// 4x5 mesh: horizontal 4*4=16, vertical 3*5=15, both directions.
	if g.NumEdges() != 2*(16+15) {
		t.Fatalf("E=%d, want %d", g.NumEdges(), 2*(16+15))
	}
	if _, err := Grid(0, 5, 0, 1); err == nil {
		t.Error("want error for zero dims")
	}
}

func TestChain(t *testing.T) {
	g, err := Chain(10)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 9 {
		t.Fatalf("E=%d, want 9", g.NumEdges())
	}
	for v := uint32(1); v < 9; v++ {
		if g.InDegree(v) != 1 || g.OutDegree(v) != 1 {
			t.Fatalf("vertex %d degrees wrong", v)
		}
	}
	if _, err := Chain(0); err == nil {
		t.Error("want error for n=0")
	}
}

func TestRatingGraphShape(t *testing.T) {
	rg, err := Rating(DefaultRating(50, 20, 400, 9))
	if err != nil {
		t.Fatal(err)
	}
	g := rg.Graph
	if g.NumVertices() != 70 {
		t.Fatalf("V=%d, want 70", g.NumVertices())
	}
	if g.NumEdges() != 800 { // two directed edges per rating
		t.Fatalf("E=%d, want 800", g.NumEdges())
	}
	// Bipartiteness: user edges must point at items and vice versa.
	for _, e := range g.Edges() {
		su, du := rg.IsUser(e.Src), rg.IsUser(e.Dst)
		if su == du {
			t.Fatalf("edge %d->%d not bipartite", e.Src, e.Dst)
		}
		if e.Weight < 1 || e.Weight > 5 {
			t.Fatalf("rating %g outside [1,5]", e.Weight)
		}
	}
	if rg.ItemVertex(0) != 50 || rg.ItemVertex(19) != 69 {
		t.Fatal("ItemVertex mapping wrong")
	}
}

func TestRatingValidation(t *testing.T) {
	if _, err := Rating(RatingConfig{Users: 0, Items: 1, Ratings: 1, Rank: 2}); err == nil {
		t.Error("want error for zero users")
	}
	if _, err := Rating(RatingConfig{Users: 1, Items: 1, Ratings: 1, Rank: 0}); err == nil {
		t.Error("want error for zero rank")
	}
	if _, err := Rating(RatingConfig{Users: 1, Items: 1, Ratings: -1, Rank: 2}); err == nil {
		t.Error("want error for negative ratings")
	}
}

func TestCatalogBuilds(t *testing.T) {
	for _, d := range Catalog {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			switch d.Kind {
			case Social:
				g, err := d.BuildSocial(6, true) // heavily shrunk for test speed
				if err != nil {
					t.Fatal(err)
				}
				if g.NumEdges() == 0 {
					t.Fatal("empty social graph")
				}
				if _, err := d.BuildRating(6); err == nil {
					t.Error("BuildRating on social dataset should fail")
				}
			case RatingKind:
				rg, err := d.BuildRating(6)
				if err != nil {
					t.Fatal(err)
				}
				if rg.NumRatings == 0 {
					t.Fatal("empty rating graph")
				}
				if _, err := d.BuildSocial(6, false); err == nil {
					t.Error("BuildSocial on rating dataset should fail")
				}
			}
		})
	}
}

func TestLookup(t *testing.T) {
	d, err := Lookup("LJ")
	if err != nil || d.Name != "LJ" {
		t.Fatalf("Lookup(LJ) = %v, %v", d, err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("want error for unknown dataset")
	}
}

// Property: the SplitMix RNG's float64 stays in [0,1) and intn in range.
func TestPropertyRNGRanges(t *testing.T) {
	f := func(seed uint64, span uint8) bool {
		r := newRNG(seed)
		n := int(span)%100 + 1
		for i := 0; i < 50; i++ {
			if f := r.float64(); f < 0 || f >= 1 {
				return false
			}
			if v := r.intn(n); v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestNormRoughlyCentered(t *testing.T) {
	r := newRNG(123)
	sum, sumSq := 0.0, 0.0
	const k = 20000
	for i := 0; i < k; i++ {
		x := r.norm()
		sum += x
		sumSq += x * x
	}
	mean := sum / k
	variance := sumSq/k - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("norm mean %.4f too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Errorf("norm variance %.4f too far from 1", variance)
	}
}
