package gen

import (
	"fmt"

	"graphabcd/internal/graph"
)

// RMATConfig parameterizes a Kronecker (R-MAT) graph. The default
// probabilities (0.57, 0.19, 0.19, 0.05) follow the Graph500 reference and
// produce the heavy-tailed degree distribution of real social graphs.
type RMATConfig struct {
	Scale      int     // |V| = 2^Scale
	EdgeFactor int     // |E| = EdgeFactor * |V|
	A, B, C    float64 // quadrant probabilities; D = 1-A-B-C
	Seed       uint64
	// MaxWeight > 0 assigns uniform integer weights in [1, MaxWeight];
	// otherwise all weights are 1. SSSP experiments use MaxWeight.
	MaxWeight int
}

// DefaultRMAT returns the Graph500-style configuration for the given scale
// and edge factor.
func DefaultRMAT(scale, edgeFactor int, seed uint64) RMATConfig {
	return RMATConfig{Scale: scale, EdgeFactor: edgeFactor, A: 0.57, B: 0.19, C: 0.19, Seed: seed}
}

// RMAT generates a directed R-MAT graph. Vertex ids are scrambled so that
// block partitions do not accidentally align with the recursive structure.
func RMAT(cfg RMATConfig) (*graph.Graph, error) {
	if cfg.Scale < 0 || cfg.Scale > 30 {
		return nil, fmt.Errorf("gen: rmat scale %d out of range [0,30]", cfg.Scale)
	}
	if cfg.EdgeFactor < 0 {
		return nil, fmt.Errorf("gen: negative edge factor %d", cfg.EdgeFactor)
	}
	d := 1 - cfg.A - cfg.B - cfg.C
	if cfg.A < 0 || cfg.B < 0 || cfg.C < 0 || d < 0 {
		return nil, fmt.Errorf("gen: rmat probabilities (%g,%g,%g) invalid", cfg.A, cfg.B, cfg.C)
	}
	n := 1 << cfg.Scale
	m := cfg.EdgeFactor * n
	r := newRNG(cfg.Seed)
	perm := scramble(n, r)

	// Edges stream straight into a builder shard: generation stays a
	// single sequential RNG stream (deterministic for a given seed) while
	// Build runs the parallel counting sort, with no intermediate edge
	// slice.
	b := graph.NewBuilder(n)
	sh := b.NewShard()
	sh.Grow(m)
	for i := 0; i < m; i++ {
		src, dst := 0, 0
		for bit := 0; bit < cfg.Scale; bit++ {
			p := r.float64()
			switch {
			case p < cfg.A:
				// top-left: neither bit set
			case p < cfg.A+cfg.B:
				dst |= 1 << bit
			case p < cfg.A+cfg.B+cfg.C:
				src |= 1 << bit
			default:
				src |= 1 << bit
				dst |= 1 << bit
			}
		}
		w := float32(1)
		if cfg.MaxWeight > 0 {
			w = float32(1 + r.intn(cfg.MaxWeight))
		}
		sh.Add(perm[src], perm[dst], w)
	}
	return b.Build()
}

// scramble returns a pseudo-random permutation of [0, n).
func scramble(n int, r *rng) []uint32 {
	perm := make([]uint32, n)
	for i := range perm {
		perm[i] = uint32(i)
	}
	for i := n - 1; i > 0; i-- {
		j := r.intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}
