package gen

import (
	"fmt"
	"sort"

	"graphabcd/internal/graph"
)

// Dataset describes one synthetic analog of a Table-I dataset. Social
// graphs are R-MAT; rating datasets are planted-factor bipartite graphs.
// Sizes are scaled down from the paper (documented per entry) so the whole
// evaluation runs on a laptop; vertex:edge ratios are preserved.
type Dataset struct {
	Name  string // short code used by the paper (WT, PS, LJ, TW, SAC, MOL, NF)
	Full  string // descriptive name
	Kind  Kind
	Paper string // the paper's original size, for reporting

	scale      int // R-MAT scale at shrink=1
	edgeFactor int
	maxWeight  int // weighted variant for SSSP
	users      int // bipartite sizes at shrink=1
	items      int
	ratings    int
}

// Kind distinguishes social graphs from rating bipartite graphs.
type Kind int

const (
	// Social datasets build directed R-MAT graphs (PR / SSSP / BFS / CC).
	Social Kind = iota
	// RatingKind datasets build bipartite graphs (Collaborative Filtering).
	RatingKind
)

// Catalog lists the seven Table-I analogs in the paper's order.
var Catalog = []Dataset{
	{Name: "WT", Full: "wikipedia-talk analog", Kind: Social, Paper: "2.39M v, 5.02M e",
		scale: 15, edgeFactor: 2, maxWeight: 64},
	{Name: "PS", Full: "pokec analog", Kind: Social, Paper: "1.63M v, 30.62M e",
		scale: 14, edgeFactor: 19, maxWeight: 64},
	{Name: "LJ", Full: "livejournal analog", Kind: Social, Paper: "4.85M v, 68.99M e",
		scale: 15, edgeFactor: 14, maxWeight: 64},
	{Name: "TW", Full: "twitter analog", Kind: Social, Paper: "41.65M v, 1.47B e",
		scale: 16, edgeFactor: 35, maxWeight: 64},
	{Name: "SAC", Full: "sac18 analog", Kind: RatingKind, Paper: "105k users, 49k movies, 10.00M ratings",
		users: 3300, items: 1550, ratings: 312000},
	{Name: "MOL", Full: "movielens analog", Kind: RatingKind, Paper: "283k users, 54k movies, 27.75M ratings",
		users: 4400, items: 850, ratings: 434000},
	{Name: "NF", Full: "netflix analog", Kind: RatingKind, Paper: "480k users, 17k movies, 100.48M ratings",
		users: 7500, items: 270, ratings: 1570000},
}

// Lookup returns the catalog entry with the given short name.
func Lookup(name string) (Dataset, error) {
	for _, d := range Catalog {
		if d.Name == name {
			return d, nil
		}
	}
	names := make([]string, len(Catalog))
	for i, d := range Catalog {
		names[i] = d.Name
	}
	sort.Strings(names)
	return Dataset{}, fmt.Errorf("gen: unknown dataset %q (have %v)", name, names)
}

// BuildSocial generates the social graph analog, halving the R-MAT scale
// shrink times (shrink 0 = full analog size). Weighted selects the
// SSSP variant with integer weights.
func (d Dataset) BuildSocial(shrink int, weighted bool) (*graph.Graph, error) {
	if d.Kind != Social {
		return nil, fmt.Errorf("gen: dataset %s is not a social graph", d.Name)
	}
	scale := d.scale - shrink
	if scale < 4 {
		scale = 4
	}
	cfg := DefaultRMAT(scale, d.edgeFactor, seedFor(d.Name))
	if weighted {
		cfg.MaxWeight = d.maxWeight
	}
	return RMAT(cfg)
}

// BuildRating generates the bipartite rating analog, shrinking all three
// dimensions by 2^shrink.
func (d Dataset) BuildRating(shrink int) (*RatingGraph, error) {
	if d.Kind != RatingKind {
		return nil, fmt.Errorf("gen: dataset %s is not a rating graph", d.Name)
	}
	div := 1 << shrink
	cfg := DefaultRating(max(d.users/div, 16), max(d.items/div, 8), max(d.ratings/div, 64), seedFor(d.Name))
	return Rating(cfg)
}

func seedFor(name string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * 1099511628211
	}
	return h
}
