package gen

import (
	"fmt"

	"graphabcd/internal/graph"
)

// Uniform generates an Erdős–Rényi G(n, m) multigraph with m directed
// edges chosen uniformly at random. If maxWeight > 0, weights are uniform
// integers in [1, maxWeight], else 1.
func Uniform(n, m int, maxWeight int, seed uint64) (*graph.Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gen: uniform graph needs n > 0, got %d", n)
	}
	if m < 0 {
		return nil, fmt.Errorf("gen: negative edge count %d", m)
	}
	r := newRNG(seed)
	b := graph.NewBuilder(n)
	sh := b.NewShard()
	sh.Grow(m)
	for i := 0; i < m; i++ {
		w := float32(1)
		if maxWeight > 0 {
			w = float32(1 + r.intn(maxWeight))
		}
		sh.Add(uint32(r.intn(n)), uint32(r.intn(n)), w)
	}
	return b.Build()
}

// Grid generates a rows x cols 4-neighbour mesh with bidirectional edges,
// useful as a high-diameter stress case for SSSP/BFS (the opposite regime
// from R-MAT's low diameter). Weights are 1, or uniform in [1, maxWeight].
func Grid(rows, cols, maxWeight int, seed uint64) (*graph.Graph, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("gen: grid needs positive dims, got %dx%d", rows, cols)
	}
	r := newRNG(seed)
	n := rows * cols
	id := func(i, j int) uint32 { return uint32(i*cols + j) }
	b := graph.NewBuilder(n)
	sh := b.NewShard()
	sh.Grow(2 * (rows*(cols-1) + (rows-1)*cols))
	add := func(a, b uint32) {
		w := float32(1)
		if maxWeight > 0 {
			w = float32(1 + r.intn(maxWeight))
		}
		sh.Add(a, b, w)
		sh.Add(b, a, w)
	}
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if j+1 < cols {
				add(id(i, j), id(i, j+1))
			}
			if i+1 < rows {
				add(id(i, j), id(i+1, j))
			}
		}
	}
	return b.Build()
}

// Chain generates a directed path 0 -> 1 -> ... -> n-1, the worst case for
// propagation-style algorithms; used in convergence tests.
func Chain(n int) (*graph.Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gen: chain needs n > 0, got %d", n)
	}
	b := graph.NewBuilder(n)
	sh := b.NewShard()
	sh.Grow(n - 1)
	for v := 0; v < n-1; v++ {
		sh.Add(uint32(v), uint32(v+1), 1)
	}
	return b.Build()
}
