// Package obslog is the repo's structured logging seam, a thin policy
// layer over log/slog. Library packages (the TCP runtime, the checkpoint
// store, the chaos transports) log through L() and never configure
// anything; the binary decides once — level, format, sink, per-node
// attributes — via Init. Until Init runs, every record is discarded, so
// libraries can log unconditionally and tests stay silent for free.
//
// The event catalog lives in DESIGN.md §13: every log line carries an
// "event" attribute naming the protocol moment (join, assign, reconnect,
// crc_drop, ckpt_commit, ...) so machine consumers filter on one key
// instead of parsing message prose.
package obslog

import (
	"io"
	"log/slog"
	"strings"
	"sync/atomic"
)

// logger holds the process-wide logger. An atomic pointer, not a mutex:
// L() sits on connection-handling paths that must not serialize on a
// lock, and replacement (Init) happens once at startup.
var logger atomic.Pointer[slog.Logger]

func init() {
	logger.Store(slog.New(slog.DiscardHandler))
}

// L returns the process logger. Safe from any goroutine; never nil.
func L() *slog.Logger {
	return logger.Load()
}

// With returns the process logger extended with attrs — the way a
// subsystem stamps every one of its records (e.g. node id, run id)
// without threading a logger through every call.
func With(args ...any) *slog.Logger {
	return L().With(args...)
}

// ParseLevel maps the CLI's -log-level strings onto slog levels. Unknown
// strings report false and leave the caller to refuse the flag.
func ParseLevel(s string) (slog.Level, bool) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, true
	case "info":
		return slog.LevelInfo, true
	case "warn", "warning":
		return slog.LevelWarn, true
	case "error":
		return slog.LevelError, true
	}
	return 0, false
}

// Init installs the process logger: records at or above level go to w in
// the given format ("json" for machine-parseable NDJSON, "text" for
// human-readable key=value), stamped with attrs on every line. Format
// strings other than "json"/"text" report false and install nothing.
// Call once from main before any subsystem starts; calling again
// replaces the logger (tests use this to capture output).
func Init(level slog.Level, format string, w io.Writer, attrs ...slog.Attr) bool {
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	switch format {
	case "json":
		h = slog.NewJSONHandler(w, opts)
	case "text":
		h = slog.NewTextHandler(w, opts)
	default:
		return false
	}
	if len(attrs) > 0 {
		h = h.WithAttrs(attrs)
	}
	logger.Store(slog.New(h))
	return true
}

// Reset restores the silent default logger. Test hook.
func Reset() {
	logger.Store(slog.New(slog.DiscardHandler))
}
