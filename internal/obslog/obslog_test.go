package obslog

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"testing"
)

func TestDefaultIsSilentAndNonNil(t *testing.T) {
	Reset()
	if L() == nil {
		t.Fatal("L() returned nil before Init")
	}
	// Must not panic and must not write anywhere.
	L().Info("dropped", "k", "v")
	With("node", 3).Warn("also dropped")
}

func TestParseLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo,
		"warn": slog.LevelWarn, "warning": slog.LevelWarn,
		"error": slog.LevelError, "INFO": slog.LevelInfo,
	}
	for s, want := range cases {
		got, ok := ParseLevel(s)
		if !ok || got != want {
			t.Fatalf("ParseLevel(%q) = %v,%v want %v,true", s, got, ok, want)
		}
	}
	if _, ok := ParseLevel("verbose"); ok {
		t.Fatal("ParseLevel accepted an unknown level")
	}
}

func TestInitJSONCarriesAttrsAndLevel(t *testing.T) {
	defer Reset()
	var buf bytes.Buffer
	if !Init(slog.LevelInfo, "json", &buf, slog.Int("node", 2), slog.String("runID", "r1")) {
		t.Fatal("Init rejected json format")
	}
	L().Debug("below threshold")
	L().Info("joined", "event", "join", "addr", "127.0.0.1:9")
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("got %d lines, want 1 (debug must be filtered): %q", len(lines), buf.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("log line is not JSON: %v", err)
	}
	if rec["msg"] != "joined" || rec["event"] != "join" || rec["node"] != float64(2) || rec["runID"] != "r1" {
		t.Fatalf("record missing fields: %v", rec)
	}
}

func TestInitRejectsUnknownFormat(t *testing.T) {
	defer Reset()
	var buf bytes.Buffer
	if Init(slog.LevelInfo, "yaml", &buf) {
		t.Fatal("Init accepted an unknown format")
	}
}

func TestConcurrentLogAndInit(t *testing.T) {
	defer Reset()
	var buf bytes.Buffer
	var mu sync.Mutex
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				L().Info("tick")
			}
		}()
	}
	Init(slog.LevelInfo, "text", w)
	wg.Wait()
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
