package core

import (
	"sync/atomic"
	"time"
)

// Stats summarizes one engine run. BlockUpdates counts processed blocks,
// VertexUpdates the vertex-program executions (each vertex of a processed
// block counts once), EdgesTraversed the in-edges streamed through GATHER.
//
// Epochs is VertexUpdates / |V| — the "# of iterations" of the paper's
// Equation (1) in epoch-equivalents, which makes a BSP sweep (1 epoch) and
// small-block executions directly comparable (Fig. 4's normalization).
type Stats struct {
	BlockUpdates   int64
	VertexUpdates  int64
	EdgesTraversed int64
	ScatterWrites  int64 // out-edge cache slots written by SCATTER
	HybridBlocks   int64 // blocks processed by CPU workers (hybrid mode)
	Epochs         float64
	Converged      bool // false when MaxEpochs or cancellation stopped the run
	// StallWindows counts watchdog periods (Config.Watchdog) in which no
	// progress was observed — a liveness signal for hung or partitioned
	// runs that surfaces even when the run eventually completes.
	StallWindows int64
	WallTime     time.Duration
	SimTimeNs    float64 // accelerator-model makespan (0 without Sim)
}

// MTEPS returns millions of traversed edges per second of wall time, the
// throughput metric of Table II.
func (s Stats) MTEPS() float64 {
	if s.WallTime <= 0 {
		return 0
	}
	return float64(s.EdgesTraversed) / s.WallTime.Seconds() / 1e6
}

// counters is the engine's internal atomic tally.
type counters struct {
	blocks   atomic.Int64
	vertices atomic.Int64
	edges    atomic.Int64
	scatter  atomic.Int64
	hybrid   atomic.Int64
	issued   atomic.Int64 // tasks pushed to the accelerator queue
	finished atomic.Int64 // tasks whose scatter completed
	stalls   atomic.Int64 // watchdog periods without progress
}

// Result bundles the final vertex values with the run statistics.
type Result[V any] struct {
	Values []V
	Stats  Stats
}
