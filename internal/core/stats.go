package core

import (
	"time"

	"graphabcd/internal/telemetry"
)

// Stats summarizes one engine run. BlockUpdates counts processed blocks,
// VertexUpdates the vertex-program executions (each vertex of a processed
// block counts once), EdgesTraversed the in-edges streamed through GATHER.
//
// Epochs is VertexUpdates / |V| — the "# of iterations" of the paper's
// Equation (1) in epoch-equivalents, which makes a BSP sweep (1 epoch) and
// small-block executions directly comparable (Fig. 4's normalization).
//
// Stats is the *final* snapshot of the run's telemetry registry
// (internal/telemetry): the engine tallies into per-worker padded shards
// — the old single counter struct put eight adjacent atomics on shared
// cache lines, a measured false-sharing hotspot (DESIGN.md §9) — and
// statsFromTelemetry merges them once at the end. For live visibility
// into the same registry, pass Config.Telemetry and read
// Registry.Snapshot while the run executes.
type Stats struct {
	BlockUpdates   int64
	VertexUpdates  int64
	EdgesTraversed int64
	ScatterWrites  int64 // out-edge cache slots written by SCATTER
	HybridBlocks   int64 // blocks processed by CPU workers (hybrid mode)
	Epochs         float64
	Converged      bool // false when MaxEpochs or cancellation stopped the run
	// StallWindows counts watchdog periods (Config.Watchdog) in which no
	// progress was observed — a liveness signal for hung or partitioned
	// runs that surfaces even when the run eventually completes.
	StallWindows int64
	// CkptEpochs counts checkpoint epochs captured during the run and
	// CkptBytes the state bytes they wrote — the run's durability cost.
	CkptEpochs int64
	CkptBytes  int64
	WallTime   time.Duration
	SimTimeNs  float64 // accelerator-model makespan (0 without Sim)
}

// MTEPS returns millions of traversed edges per second of wall time, the
// throughput metric of Table II. Non-positive wall time (an unfinished or
// corrupt measurement) yields 0, never Inf or a negative rate.
func (s Stats) MTEPS() float64 {
	if s.WallTime <= 0 {
		return 0
	}
	return float64(s.EdgesTraversed) / s.WallTime.Seconds() / 1e6
}

// statsFromTelemetry builds the scalar run summary from the registry's
// cross-shard counter totals.
func statsFromTelemetry(tel *telemetry.Registry, numVertices int, converged bool, wall time.Duration) Stats {
	t := tel.CounterTotals()
	st := Stats{
		BlockUpdates:   t[telemetry.CtrBlockUpdates],
		VertexUpdates:  t[telemetry.CtrVertexUpdates],
		EdgesTraversed: t[telemetry.CtrEdgesTraversed],
		ScatterWrites:  t[telemetry.CtrScatterWrites],
		HybridBlocks:   t[telemetry.CtrHybridBlocks],
		Converged:      converged,
		StallWindows:   t[telemetry.CtrStallWindows],
		CkptEpochs:     t[telemetry.CtrCkptEpochs],
		CkptBytes:      t[telemetry.CtrCkptBytes],
		WallTime:       wall,
	}
	if numVertices > 0 {
		st.Epochs = float64(st.VertexUpdates) / float64(numVertices)
	}
	return st
}

// Result bundles the final vertex values with the run statistics.
type Result[V any] struct {
	Values []V
	Stats  Stats
}
