package core

import (
	"context"
	"fmt"
	"time"

	"graphabcd/internal/bcd"
	"graphabcd/internal/graph"
)

// ReplayResult is a Result plus the per-epoch residual trace the replay
// collected: Residuals[k] is the total pending gradient mass sampled when
// cumulative vertex updates crossed (k+1)*|V|.
type ReplayResult[V any] struct {
	*Result[V]
	Residuals []float64
}

// ReplaySchedule re-executes a recorded block schedule (Config.
// RecordSchedule, decoded with checkpoint.ReadSchedule) deterministically:
// one goroutine runs the fused claim → gather-apply → scatter chain for
// each recorded block id in order, so every floating-point operation
// happens in the same sequence every time and two replays of the same
// schedule produce bit-identical values and residual traces.
//
// The config must describe the same graph, program, and BlockSize as the
// recording run — block ids are meaningless otherwise. Worker counts,
// hybrid stealing, the simulator, and the watchdog are forcibly disabled;
// a Checkpoint.Resume still seeds initial state (replaying the post-resume
// segment of a crashed run), but no periodic checkpoints are written.
//
// Replay exists for debugging divergence: when an async run misbehaves,
// its recorded schedule pins down *which* update ordering produced the
// behaviour, and the replay reproduces it exactly, single-stepped.
func ReplaySchedule[V, M any](ctx context.Context, g *graph.Graph, prog bcd.Program[V, M], cfg Config, schedule []uint32) (*ReplayResult[V], error) {
	// Determinism overrides: exactly one worker-shard is used, nothing
	// races, nothing records, nothing samples wall clocks into decisions.
	cfg.Mode = Async
	cfg.NumPEs, cfg.NumScatter = 1, 1
	cfg.Hybrid = false
	cfg.Sim = nil
	cfg.RecordSchedule = nil
	cfg.StallHook = nil
	cfg.OnEpoch = nil
	cfg.Watchdog = -1
	cfg.Checkpoint.Interval = 0
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e, err := newEngine(g, prog, cfg)
	if err != nil {
		return nil, err
	}
	e.ctx = ctx
	ck, err := newCheckpointer(e, cfg.Checkpoint)
	if err != nil {
		return nil, err
	}
	if ck != nil && cfg.Checkpoint.Resume != "" {
		if err := ck.resume(cfg.Checkpoint.Resume); err != nil {
			return nil, err
		}
	}
	if !e.resumed {
		e.st.ActivateAll(1)
	}
	nb := e.part.NumBlocks()
	sh := &e.shards[1]
	ws := newScratch(e.prog)
	mass := make([]float64, nb)
	touched := make([]int, 0, 64)
	var residuals []float64
	n := int64(g.NumVertices())
	nextEpoch := int64(1)
	start := time.Now()
	for i, id := range schedule {
		if int(id) >= nb {
			return nil, fmt.Errorf("core: replay step %d: block %d out of range (schedule was recorded with a different BlockSize or graph?)", i, id)
		}
		if ctx != nil && ctx.Err() != nil {
			break
		}
		// Claim unconditionally: the recorded run claimed this block at
		// this point, so the replay repeats it whether or not the block
		// looks active now (activation raced differently in the recording).
		e.st.Claim(int(id))
		t, _ := e.gatherApply(int(id), ws, sh)
		e.scatter(t, ws, mass, &touched, sh)
		e.st.Done(int(id))
		if e.failed() {
			break
		}
		for n > 0 && e.vertexUpdates() >= nextEpoch*n {
			residuals = append(residuals, e.st.PendingMass())
			nextEpoch++
		}
	}
	if errp := e.failure.Load(); errp != nil {
		return nil, *errp
	}
	res := e.result(e.st.Quiescent(), time.Since(start))
	return &ReplayResult[V]{Result: res, Residuals: residuals}, nil
}
