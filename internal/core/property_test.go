package core

import (
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"

	"graphabcd/internal/bcd"
	"graphabcd/internal/gen"
	"graphabcd/internal/sched"
)

// Property: on arbitrary random graphs, the async engine's PageRank agrees
// with the Jacobi reference — across random block sizes, policies and
// worker counts.
func TestPropertyAsyncPageRankAgreesWithReference(t *testing.T) {
	f := func(seed uint64, blockBits, peBits uint8) bool {
		n := 64 + int(seed%128)
		m := n * (2 + int(seed%6))
		g, err := gen.Uniform(n, m, 0, seed)
		if err != nil {
			return false
		}
		cfg := Config{
			BlockSize:  1 << (blockBits % 8), // 1..128
			Mode:       Async,
			Policy:     sched.Policy(seed % 3),
			NumPEs:     1 + int(peBits%4),
			NumScatter: 1 + int(peBits%2),
			Epsilon:    1e-12,
			Seed:       seed,
		}
		res, err := Run[float64, float64](g, bcd.PageRank{}, cfg)
		if err != nil || !res.Stats.Converged {
			return false
		}
		want := bcd.RefPageRank(g, 0.85, 1e-13, 2000)
		for v := range want {
			if math.Abs(res.Values[v]-want[v]) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// Property: asynchronous SSSP is exact (equals Dijkstra) on random
// weighted graphs regardless of configuration.
func TestPropertyAsyncSSSPIsExact(t *testing.T) {
	f := func(seed uint64, blockBits uint8) bool {
		n := 32 + int(seed%100)
		m := n * (1 + int(seed%8))
		g, err := gen.Uniform(n, m, 32, seed)
		if err != nil {
			return false
		}
		src := uint32(seed % uint64(n))
		cfg := Config{
			BlockSize:  1 << (blockBits % 7),
			Mode:       Async,
			Policy:     sched.Policy(seed % 3),
			NumPEs:     2,
			NumScatter: 2,
			Seed:       seed,
		}
		res, err := Run[float64, float64](g, bcd.SSSP{Source: src}, cfg)
		if err != nil || !res.Stats.Converged {
			return false
		}
		want := bcd.RefSSSP(g, src)
		for v := range want {
			got := res.Values[v]
			if got != want[v] && !(math.IsInf(got, 1) && math.IsInf(want[v], 1)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// OnEpoch must fire monotonically, once per completed epoch-equivalent.
func TestOnEpochHookFires(t *testing.T) {
	g := testGraph(t)
	var calls atomic.Int64
	var lastEpoch atomic.Int64
	cfg := Config{BlockSize: 32, Mode: Async, Policy: sched.Cyclic,
		NumPEs: 2, NumScatter: 1, Epsilon: 1e-10,
		OnEpoch: func(epoch int) {
			calls.Add(1)
			if int64(epoch) <= lastEpoch.Load() {
				t.Errorf("epoch %d not monotone after %d", epoch, lastEpoch.Load())
			}
			lastEpoch.Store(int64(epoch))
		},
	}
	res := runPR(t, g, cfg)
	if calls.Load() == 0 {
		t.Fatal("OnEpoch never fired")
	}
	// The hook lags the scheduler's view by at most the in-flight work.
	if got := lastEpoch.Load(); float64(got) > res.Stats.Epochs+1 {
		t.Fatalf("hook reported epoch %d beyond run total %.1f", got, res.Stats.Epochs)
	}
	// BSP fires once per sweep.
	var bspCalls atomic.Int64
	bspCfg := Config{Mode: BSP, NumPEs: 2, NumScatter: 1, Epsilon: 1e-10,
		OnEpoch: func(int) { bspCalls.Add(1) }}
	bspRes := runPR(t, g, bspCfg)
	if c := bspCalls.Load(); c == 0 || float64(c) > bspRes.Stats.Epochs+1 {
		t.Fatalf("BSP hook calls = %d for %.0f sweeps", c, bspRes.Stats.Epochs)
	}
}
