package core

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"graphabcd/internal/accel"
	"graphabcd/internal/bcd"
	"graphabcd/internal/gen"
	"graphabcd/internal/graph"
	"graphabcd/internal/sched"
)

// testGraph returns a deterministic skewed graph small enough for -race.
func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.RMAT(gen.DefaultRMAT(9, 6, 77)) // 512 vertices, 3072 edges
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func weightedGraph(t *testing.T) *graph.Graph {
	t.Helper()
	cfg := gen.DefaultRMAT(9, 6, 78)
	cfg.MaxWeight = 16
	g, err := gen.RMAT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func runPR(t *testing.T, g *graph.Graph, cfg Config) *Result[float64] {
	t.Helper()
	res, err := Run[float64, float64](g, bcd.PageRank{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func maxAbsDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m && !(math.IsInf(a[i], 1) && math.IsInf(b[i], 1)) {
			m = d
		}
	}
	return m
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(64).Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{BlockSize: -1, NumPEs: 1, NumScatter: 1},
		{NumPEs: 0, NumScatter: 1},
		{NumPEs: 1, NumScatter: 0},
		{NumPEs: 1, NumScatter: 1, Epsilon: -1},
		{NumPEs: 1, NumScatter: 1, MaxEpochs: -2},
		{NumPEs: 1, NumScatter: 1, Mode: Mode(9)},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d: want error", i)
		}
		if _, err := Run[float64, float64](testGraph(t), bcd.PageRank{}, cfg); err == nil {
			t.Errorf("config %d: Run accepted invalid config", i)
		}
	}
}

func TestModeString(t *testing.T) {
	if Async.String() != "async" || Barrier.String() != "barrier" || BSP.String() != "bsp" {
		t.Fatal("mode names wrong")
	}
	if Mode(7).String() != "mode(7)" {
		t.Fatal("unknown mode name wrong")
	}
}

func TestPageRankMatchesReferenceAcrossConfigs(t *testing.T) {
	g := testGraph(t)
	want := bcd.RefPageRank(g, 0.85, 1e-13, 1000)
	cases := []Config{
		{BlockSize: 64, Mode: Async, Policy: sched.Cyclic, NumPEs: 4, NumScatter: 2, Epsilon: 1e-12},
		{BlockSize: 64, Mode: Async, Policy: sched.Priority, NumPEs: 4, NumScatter: 2, Epsilon: 1e-12},
		{BlockSize: 64, Mode: Async, Policy: sched.Random, NumPEs: 4, NumScatter: 2, Epsilon: 1e-12, Seed: 5},
		{BlockSize: 8, Mode: Async, Policy: sched.Priority, NumPEs: 2, NumScatter: 1, Epsilon: 1e-12},
		{BlockSize: 512, Mode: Async, Policy: sched.Cyclic, NumPEs: 1, NumScatter: 1, Epsilon: 1e-12},
		{BlockSize: 64, Mode: Async, Policy: sched.Cyclic, NumPEs: 4, NumScatter: 2, Epsilon: 1e-12, Hybrid: true},
		{BlockSize: 64, Mode: Barrier, Policy: sched.Cyclic, NumPEs: 4, NumScatter: 2, Epsilon: 1e-12},
		{BlockSize: 0, Mode: BSP, NumPEs: 4, NumScatter: 2, Epsilon: 1e-12},
	}
	for _, cfg := range cases {
		cfg := cfg
		name := cfg.Mode.String() + "/" + cfg.Policy.String()
		if cfg.Hybrid {
			name += "/hybrid"
		}
		t.Run(name, func(t *testing.T) {
			res := runPR(t, g, cfg)
			if !res.Stats.Converged {
				t.Fatal("did not converge")
			}
			if d := maxAbsDiff(res.Values, want); d > 1e-7 {
				t.Fatalf("max diff vs reference = %g", d)
			}
			if res.Stats.VertexUpdates == 0 || res.Stats.EdgesTraversed == 0 {
				t.Fatal("stats empty")
			}
		})
	}
}

func TestSSSPExactAcrossConfigs(t *testing.T) {
	g := weightedGraph(t)
	src := uint32(3)
	want := bcd.RefSSSP(g, src)
	for _, cfg := range []Config{
		{BlockSize: 32, Mode: Async, Policy: sched.Cyclic, NumPEs: 4, NumScatter: 2},
		{BlockSize: 32, Mode: Async, Policy: sched.Priority, NumPEs: 4, NumScatter: 2, Hybrid: true},
		{BlockSize: 128, Mode: Barrier, Policy: sched.Cyclic, NumPEs: 2, NumScatter: 2},
		{Mode: BSP, NumPEs: 4, NumScatter: 2},
	} {
		res, err := Run[float64, float64](g, bcd.SSSP{Source: src}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Stats.Converged {
			t.Fatalf("%v: did not converge", cfg.Mode)
		}
		for v := range want {
			if res.Values[v] != want[v] && !(math.IsInf(res.Values[v], 1) && math.IsInf(want[v], 1)) {
				t.Fatalf("%v/%v: dist[%d] = %g, want %g", cfg.Mode, cfg.Policy, v, res.Values[v], want[v])
			}
		}
	}
}

func TestBFSExact(t *testing.T) {
	g := testGraph(t)
	src := uint32(1)
	want := bcd.RefBFS(g, src)
	cfg := Config{BlockSize: 64, Mode: Async, Policy: sched.Priority, NumPEs: 4, NumScatter: 2}
	res, err := Run[uint64, uint64](g, bcd.BFS{Source: src}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if res.Values[v] != want[v] {
			t.Fatalf("level[%d] = %d, want %d", v, res.Values[v], want[v])
		}
	}
}

func TestCCExactOnSymmetricGraph(t *testing.T) {
	// Build a symmetric version of an R-MAT graph plus isolated vertices.
	base := testGraph(t)
	var edges []graph.Edge
	for _, e := range base.Edges() {
		edges = append(edges,
			graph.Edge{Src: e.Src, Dst: e.Dst, Weight: 1},
			graph.Edge{Src: e.Dst, Dst: e.Src, Weight: 1})
	}
	g, err := graph.FromEdges(base.NumVertices()+8, edges)
	if err != nil {
		t.Fatal(err)
	}
	want := bcd.RefCC(g)
	for _, mode := range []Mode{Async, BSP} {
		cfg := Config{BlockSize: 32, Mode: mode, Policy: sched.Cyclic, NumPEs: 4, NumScatter: 2}
		res, err := Run[uint64, uint64](g, bcd.CC{}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for v := range want {
			if res.Values[v] != want[v] {
				t.Fatalf("%v: label[%d] = %d, want %d", mode, v, res.Values[v], want[v])
			}
		}
	}
}

func TestLabelPropTerminatesUnderBudget(t *testing.T) {
	g := testGraph(t)
	cfg := Config{BlockSize: 64, Mode: Async, Policy: sched.Cyclic, NumPEs: 4, NumScatter: 2, MaxEpochs: 20}
	res, err := Run[uint64, bcd.LPAccum](g, bcd.LabelProp{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Epochs > 21 {
		t.Fatalf("epochs = %g exceeded budget", res.Stats.Epochs)
	}
}

func TestCFRMSEDecreases(t *testing.T) {
	rg, err := gen.Rating(gen.DefaultRating(60, 30, 600, 5))
	if err != nil {
		t.Fatal(err)
	}
	prog := bcd.CF{Rank: 8, LearnRate: 0.3, Lambda: 0.01}
	initRMSE := func() float64 {
		x := make([][]float32, rg.Graph.NumVertices())
		for v := range x {
			x[v] = prog.Init(uint32(v), rg.Graph)
		}
		return prog.RMSE(rg.Graph, x)
	}()
	cfg := Config{BlockSize: 16, Mode: Async, Policy: sched.Cyclic, NumPEs: 4, NumScatter: 2, MaxEpochs: 40, Epsilon: 1e-9}
	res, err := Run[[]float32, []float64](rg.Graph, prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	final := prog.RMSE(rg.Graph, res.Values)
	if final >= initRMSE*0.6 {
		t.Fatalf("RMSE %g -> %g: CF did not learn", initRMSE, final)
	}
}

func TestMaxEpochsStopsNonConverged(t *testing.T) {
	g := testGraph(t)
	cfg := Config{BlockSize: 64, Mode: Async, Policy: sched.Cyclic, NumPEs: 2, NumScatter: 1,
		Epsilon: 0, MaxEpochs: 2} // epsilon 0 keeps PR scattering tiny deltas ~forever
	res := runPR(t, g, cfg)
	if res.Stats.Converged {
		t.Fatal("run must report non-convergence under a tight budget")
	}
	// Budget overshoot is bounded by in-flight blocks.
	slack := float64(g.NumVertices()) * 0.5
	if float64(res.Stats.VertexUpdates) > 2*float64(g.NumVertices())+slack*float64(cfg.NumPEs) {
		t.Fatalf("vertex updates %d far exceeded budget", res.Stats.VertexUpdates)
	}
}

func TestHybridExecutionProcessesBlocks(t *testing.T) {
	g := testGraph(t)
	cfg := Config{BlockSize: 16, Mode: Async, Policy: sched.Cyclic, NumPEs: 1, NumScatter: 4,
		Epsilon: 1e-12, Hybrid: true}
	res := runPR(t, g, cfg)
	if res.Stats.HybridBlocks == 0 {
		t.Fatal("hybrid run processed no blocks on CPU workers")
	}
	want := bcd.RefPageRank(g, 0.85, 1e-13, 1000)
	if d := maxAbsDiff(res.Values, want); d > 1e-7 {
		t.Fatalf("hybrid result off by %g", d)
	}
}

func TestFailureInjectionRandomStalls(t *testing.T) {
	// Randomized delays at every stage boundary must not affect the
	// result (asynchronous BCD tolerates bounded staleness).
	g := testGraph(t)
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(99))
	cfg := Config{BlockSize: 32, Mode: Async, Policy: sched.Priority, NumPEs: 4, NumScatter: 2,
		Epsilon: 1e-12,
		StallHook: func(stage string) {
			mu.Lock()
			var d time.Duration
			if rng.Intn(20) == 0 {
				d = time.Duration(rng.Int63n(int64(200 * time.Microsecond)))
			}
			mu.Unlock()
			if d > 0 {
				time.Sleep(d)
			}
		},
	}
	res := runPR(t, g, cfg)
	if !res.Stats.Converged {
		t.Fatal("stalled run did not converge")
	}
	want := bcd.RefPageRank(g, 0.85, 1e-13, 1000)
	if d := maxAbsDiff(res.Values, want); d > 1e-7 {
		t.Fatalf("stalled result off by %g", d)
	}
}

func TestSmallerBlocksConvergeInFewerEpochs(t *testing.T) {
	// The Fig. 4 headline: small asynchronous blocks beat BSP on epochs.
	g := testGraph(t)
	bspRes := runPR(t, g, Config{Mode: BSP, NumPEs: 4, NumScatter: 2, Epsilon: 1e-10})
	asyncRes := runPR(t, g, Config{BlockSize: 16, Mode: Async, Policy: sched.Priority,
		NumPEs: 4, NumScatter: 2, Epsilon: 1e-10})
	if !bspRes.Stats.Converged || !asyncRes.Stats.Converged {
		t.Fatal("runs did not converge")
	}
	if asyncRes.Stats.Epochs >= bspRes.Stats.Epochs {
		t.Fatalf("async/priority epochs %.2f should beat BSP %.2f",
			asyncRes.Stats.Epochs, bspRes.Stats.Epochs)
	}
}

func TestSimulatorAccounting(t *testing.T) {
	g := testGraph(t)
	sim, err := accel.New(accel.DefaultHARPv2())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{BlockSize: 64, Mode: Async, Policy: sched.Cyclic, NumPEs: 4, NumScatter: 2,
		Epsilon: 1e-10, Sim: sim}
	res := runPR(t, g, cfg)
	// Every gathered edge streams weight (4B) + cached value (8B).
	wantRead := res.Stats.EdgesTraversed * 12
	if got := sim.TrafficBytes(accel.SeqRead); got != wantRead {
		t.Fatalf("SeqRead bytes = %d, want %d", got, wantRead)
	}
	// Every processed vertex writes back an 8B value.
	wantWrite := res.Stats.VertexUpdates * 8
	if got := sim.TrafficBytes(accel.SeqWrite); got != wantWrite {
		t.Fatalf("SeqWrite bytes = %d, want %d", got, wantWrite)
	}
	if got := sim.TrafficBytes(accel.RandWrite); got != res.Stats.ScatterWrites*8 {
		t.Fatalf("RandWrite bytes = %d, want %d", got, res.Stats.ScatterWrites*8)
	}
	if res.Stats.SimTimeNs <= 0 {
		t.Fatal("SimTimeNs not recorded")
	}
	if sim.BusUtilization() <= 0 || sim.PEUtilization() <= 0 {
		t.Fatal("utilizations not recorded")
	}
}

func TestSimulatorWorkerBoundsChecked(t *testing.T) {
	g := testGraph(t)
	sim, _ := accel.New(accel.Config{NumPEs: 2, BusGBps: 1, ClockMHz: 100, EdgesPerCycle: 1,
		CPUThreads: 1, ScatterNsPerEdge: 1, CPUGatherNsPerEdge: 1})
	if _, err := Run[float64, float64](g, bcd.PageRank{},
		Config{BlockSize: 64, NumPEs: 4, NumScatter: 1, Sim: sim}); err == nil {
		t.Fatal("want error: NumPEs exceeds simulator PEs")
	}
	if _, err := Run[float64, float64](g, bcd.PageRank{},
		Config{BlockSize: 64, NumPEs: 2, NumScatter: 3, Sim: sim}); err == nil {
		t.Fatal("want error: NumScatter exceeds simulator CPU threads")
	}
}

func TestEmptyAndTinyGraphs(t *testing.T) {
	empty, err := graph.FromEdges(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := runPR(t, empty, DefaultConfig(8))
	if len(res.Values) != 0 || !res.Stats.Converged {
		t.Fatal("empty graph run wrong")
	}
	res = runPR(t, empty, Config{Mode: BSP, NumPEs: 2, NumScatter: 1})
	if !res.Stats.Converged {
		t.Fatal("empty BSP run wrong")
	}

	single, err := graph.FromEdges(1, []graph.Edge{{Src: 0, Dst: 0, Weight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	res = runPR(t, single, DefaultConfig(8))
	if math.Abs(res.Values[0]-1) > 1e-6 { // self-loop PR: x = 0.15 + 0.85x -> 1
		t.Fatalf("self-loop PR = %g, want 1", res.Values[0])
	}
}

func TestStatsMTEPS(t *testing.T) {
	s := Stats{EdgesTraversed: 2_000_000, WallTime: time.Second}
	if got := s.MTEPS(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("MTEPS = %g", got)
	}
	if (Stats{}).MTEPS() != 0 {
		t.Fatal("zero stats MTEPS must be 0")
	}
	// Corrupt measurements must not produce Inf or negative rates.
	if got := (Stats{EdgesTraversed: 100, WallTime: -time.Second}).MTEPS(); got != 0 {
		t.Fatalf("negative wall time MTEPS = %g, want 0", got)
	}
	if got := (Stats{EdgesTraversed: 1e9, WallTime: time.Nanosecond}).MTEPS(); math.IsInf(got, 0) || got < 0 {
		t.Fatalf("tiny wall time MTEPS = %g, want finite non-negative", got)
	}
}

func TestBarrierModeConvergenceMatchesAsync(t *testing.T) {
	// The paper's observation: 'Barrier' converges like 'Async' (same
	// algorithm design options), only slower in wall time.
	g := testGraph(t)
	async := runPR(t, g, Config{BlockSize: 64, Mode: Async, Policy: sched.Cyclic,
		NumPEs: 4, NumScatter: 2, Epsilon: 1e-10})
	barrier := runPR(t, g, Config{BlockSize: 64, Mode: Barrier, Policy: sched.Cyclic,
		NumPEs: 4, NumScatter: 2, Epsilon: 1e-10})
	ratio := barrier.Stats.Epochs / async.Stats.Epochs
	if ratio < 0.4 || ratio > 2.5 {
		t.Fatalf("barrier/async epoch ratio = %.2f, want comparable", ratio)
	}
}

func TestKCoreExactOnSymmetricGraph(t *testing.T) {
	// Symmetrize and simplify an R-MAT sample (coreness is an undirected,
	// simple-graph notion).
	base := testGraph(t)
	seen := map[[2]uint32]bool{}
	var edges []graph.Edge
	for _, e := range base.Edges() {
		a, b := e.Src, e.Dst
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		if seen[[2]uint32{a, b}] {
			continue
		}
		seen[[2]uint32{a, b}] = true
		edges = append(edges,
			graph.Edge{Src: a, Dst: b, Weight: 1},
			graph.Edge{Src: b, Dst: a, Weight: 1})
	}
	g, err := graph.FromEdges(base.NumVertices(), edges)
	if err != nil {
		t.Fatal(err)
	}
	want := bcd.RefKCore(g)
	for _, policy := range []sched.Policy{sched.Cyclic, sched.Priority} {
		cfg := Config{BlockSize: 32, Mode: Async, Policy: policy, NumPEs: 4, NumScatter: 2}
		res, err := Run[uint64, bcd.KCoreAccum](g, bcd.KCore{}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Stats.Converged {
			t.Fatalf("%v: did not converge", policy)
		}
		for v := range want {
			if res.Values[v] != want[v] {
				t.Fatalf("%v: core[%d] = %d, want %d", policy, v, res.Values[v], want[v])
			}
		}
	}
}
