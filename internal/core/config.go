// Package core implements GraphABCD's execution engines (Sec. IV): the
// asynchronous barrierless engine that is the paper's contribution, plus
// the Barrier and BSP baselines its Fig. 7 ablation compares against.
//
// The async engine mirrors the 11-step flow of Sec. IV-C: a scheduler
// selects vertex blocks from the active list (cyclic or Gauss-Southwell
// priority) and pushes them into the accelerator task queue; PE workers
// dequeue blocks, stream the block's in-edge cache sequentially through
// the program's GATHER-APPLY, and write the new vertex values; finished
// block ids flow through the CPU task queue to SCATTER workers, which copy
// updated values onto out-edge cache slots (random but disjoint writes),
// accumulate Gauss-Southwell mass onto destination blocks, and update the
// active list. The only shared mutable state is atomic words — no locks,
// no barriers — and the termination unit's quiescence test covers blocks
// active, claimed, and in flight.
package core

import (
	"fmt"
	"io"
	"time"

	"graphabcd/internal/accel"
	"graphabcd/internal/checkpoint"
	"graphabcd/internal/edgestore"
	"graphabcd/internal/sched"
	"graphabcd/internal/telemetry"
)

// Mode selects the execution model.
type Mode int

const (
	// Async is the barrierless, lock-free engine (the paper's design).
	Async Mode = iota
	// Barrier adds a memory barrier after each wave of block processing
	// (the 'Barrier' baseline of Fig. 7): blocks are dispatched in rounds
	// and the next round starts only when the previous fully completes.
	Barrier
	// BSP is bulk-synchronous processing with block size |V| (Jacobi):
	// one global barrier per sweep, the GraphMat execution model.
	BSP
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Async:
		return "async"
	case Barrier:
		return "barrier"
	case BSP:
		return "bsp"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Config parameterizes one engine run. The zero value is not runnable; use
// DefaultConfig as a starting point.
type Config struct {
	// BlockSize is the BCD block size n (vertices per block). Ignored in
	// BSP mode, which always uses |V|.
	BlockSize int
	// Mode selects async / barrier / BSP execution.
	Mode Mode
	// Policy selects the block scheduling rule (cyclic / priority /
	// random). BSP ignores it.
	Policy sched.Policy
	// NumPEs is the number of GATHER-APPLY workers (accelerator PEs).
	NumPEs int
	// NumScatter is the number of CPU SCATTER workers.
	NumScatter int
	// Hybrid lets SCATTER workers steal GATHER-APPLY tasks when the CPU
	// side is under-utilized (Sec. IV-B hybrid execution).
	Hybrid bool
	// Epsilon is the activation threshold: a vertex whose update delta is
	// <= Epsilon neither scatters nor activates destination blocks.
	Epsilon float64
	// MaxEpochs bounds the work at MaxEpochs * |V| vertex updates; 0
	// means no bound (run to convergence). Non-convergent workloads such
	// as CF must set it.
	MaxEpochs float64
	// Seed feeds the random scheduler policy.
	Seed uint64
	// QueueDepth overrides the task-queue capacity (per queue). The
	// default 0 means 2x the consuming worker count. The depth is the
	// engine's staleness bound — the number of block-slots a gather may
	// run ahead of the scatter publishing fresh values; deep queues
	// degrade the engine toward Jacobi convergence (see the staleness
	// ablation in internal/exp).
	QueueDepth int
	// Sim, when non-nil, drives the accelerator cost model alongside the
	// real computation (simulated time, PE/bus utilization, traffic).
	Sim *accel.Simulator
	// Edges, when non-nil, overrides where the static edge structure
	// (weights, and source ids during initialization) is streamed from:
	// edgestore.OpenFile for out-of-core execution, edgestore.
	// OpenCompressed for the compact representation of Sec. VI-C. The
	// default streams zero-copy from the in-memory graph. The pull-push
	// layout makes every block's edges one contiguous range, so each
	// block task costs one sequential read regardless of backend.
	Edges edgestore.Source
	// StallHook, when non-nil, is invoked by every worker at each stage
	// boundary with the stage name ("gather", "scatter", "schedule").
	// It exists for failure-injection tests (randomized delays must not
	// affect convergence) and must be safe for concurrent use.
	StallHook func(stage string)
	// OnEpoch, when non-nil, is invoked by the scheduler each time the
	// cumulative vertex updates cross another |V| (one epoch-equivalent),
	// with the epoch count completed so far. Useful for recording
	// convergence curves from a single run. Called from the scheduler
	// goroutine; keep it fast.
	OnEpoch func(epoch int)
	// Watchdog is the stall-watchdog sampling period: every period that
	// passes without a single vertex update increments
	// Stats.StallWindows. 0 means 500ms; negative disables the watchdog.
	Watchdog time.Duration
	// Checkpoint configures crash-safe periodic state snapshots and
	// resume (DESIGN.md §12). The zero value disables checkpointing
	// entirely — no goroutine starts and the hot path is untouched.
	Checkpoint Checkpoint
	// RecordSchedule, when non-nil, receives the issued block schedule in
	// the GABR format for deterministic replay (ReplaySchedule). Async
	// and Barrier modes only; the caller owns closing the underlying
	// file after the run returns.
	RecordSchedule io.Writer
	// Telemetry, when non-nil, is the live instrumentation registry the
	// run emits into: sharded counters, per-stage latency/staleness
	// histograms, sampled trace events, and the convergence series
	// (internal/telemetry). The caller keeps the reference and may read
	// Registry.Snapshot concurrently while the run executes — that is how
	// cmd/graphabcd's -metrics-addr and -progress observe a live run.
	// When nil the engine uses a private bare-counter registry: counters
	// still feed Stats, but no clocks are read and no histograms exist,
	// so the disabled cost is ~0 (see BenchmarkEngineTelemetry).
	Telemetry *telemetry.Registry
}

// DefaultConfig returns an async cyclic configuration with the given block
// size and worker counts sized for the host.
func DefaultConfig(blockSize int) Config {
	return Config{
		BlockSize:  blockSize,
		Mode:       Async,
		Policy:     sched.Cyclic,
		NumPEs:     4,
		NumScatter: 2,
		Epsilon:    1e-9,
	}
}

// Validate reports the first configuration error with an actionable
// message. Every engine entry point (all three Modes route through
// RunContext) calls it before starting any goroutine, so a bad config
// fails fast instead of deadlocking or spinning.
func (c Config) Validate() error {
	switch {
	case c.BlockSize < 0:
		return fmt.Errorf("core: BlockSize %d is negative; use a positive block size (vertices per block), or 0 to default to one block per vertex range — DefaultConfig(256) is a reasonable start", c.BlockSize)
	case c.NumPEs <= 0:
		return fmt.Errorf("core: NumPEs %d leaves no GATHER-APPLY workers; set NumPEs >= 1 (DefaultConfig uses 4)", c.NumPEs)
	case c.NumScatter <= 0:
		return fmt.Errorf("core: NumScatter %d leaves no SCATTER workers, so gathered blocks would never publish; set NumScatter >= 1 (DefaultConfig uses 2)", c.NumScatter)
	case c.Epsilon < 0:
		return fmt.Errorf("core: Epsilon %g is negative; the activation threshold must be >= 0 (0 keeps every update active, 1e-9 is the default)", c.Epsilon)
	case c.MaxEpochs < 0:
		return fmt.Errorf("core: MaxEpochs %g is negative; use 0 to run to convergence or a positive epoch budget", c.MaxEpochs)
	case c.QueueDepth < 0:
		return fmt.Errorf("core: QueueDepth %d is negative; use 0 for the default (2x the consuming workers) or a positive staleness bound", c.QueueDepth)
	case c.Mode != Async && c.Mode != Barrier && c.Mode != BSP:
		return fmt.Errorf("core: unknown mode %v; valid modes are Async, Barrier, and BSP", c.Mode)
	case c.Policy != sched.Cyclic && c.Policy != sched.Priority && c.Policy != sched.Random:
		return fmt.Errorf("core: unknown policy %v; valid policies are Cyclic, Priority, and Random", c.Policy)
	case c.RecordSchedule != nil && c.Mode == BSP:
		return fmt.Errorf("core: RecordSchedule requires Async or Barrier mode; BSP has no block schedule to record")
	case c.Checkpoint.enabled() && c.Mode == BSP:
		return fmt.Errorf("core: Checkpoint requires Async or Barrier mode; BSP restarts cost one sweep, so just rerun it")
	}
	return c.Checkpoint.validate()
}

// Checkpoint configures crash-safe snapshots of engine state: every
// Interval the engine captures a fuzzy snapshot (vertex values, scheduler
// priorities, progress counters) without pausing workers and commits it
// through the Store; Resume restarts a run from the last committed epoch.
// A checkpoint write failure fails the run — silently running without the
// durability the caller asked for is worse than stopping.
type Checkpoint struct {
	// Dir is the checkpoint directory; a checkpoint.DirStore is opened on
	// it when Store is nil.
	Dir string
	// Interval is the capture period. <= 0 writes no periodic checkpoints
	// (a Dir/Store with Resume still restores state, it just never saves).
	Interval time.Duration
	// Store overrides Dir with a custom checkpoint store.
	Store checkpoint.Store
	// RunID names the run in the store; distinct concurrent runs must use
	// distinct ids. Empty derives a stable id from the program, graph
	// digest, and config hash (so a plain rerun of the same job resumes
	// under -resume latest naturally).
	RunID string
	// Resume names the run id to restore before executing: values,
	// priorities, and progress counters seed from the last committed
	// epoch instead of prog.Init. The special value "latest" picks the
	// store's most recently committed run. The restored identity triple
	// (graph digest, program, config hash) must match or the run refuses
	// to start.
	Resume string
}

// enabled reports whether any checkpoint machinery should be set up.
func (c Checkpoint) enabled() bool {
	return c.Dir != "" || c.Store != nil
}

func (c Checkpoint) validate() error {
	switch {
	case !c.enabled() && (c.Interval > 0 || c.Resume != "" || c.RunID != ""):
		return fmt.Errorf("core: Checkpoint.Interval/RunID/Resume need a checkpoint store; set Checkpoint.Dir or Checkpoint.Store")
	case c.RunID != "" && !checkpoint.ValidRunID(c.RunID):
		return fmt.Errorf("core: Checkpoint.RunID %q invalid; use [A-Za-z0-9._-] with no leading dot", c.RunID)
	case c.Resume != "" && c.Resume != "latest" && !checkpoint.ValidRunID(c.Resume):
		return fmt.Errorf("core: Checkpoint.Resume %q invalid; use a run id or \"latest\"", c.Resume)
	}
	return nil
}

// ResumeFrom configures the run to restore state from runID's last
// committed checkpoint ("latest" resumes the store's newest run).
func (c *Config) ResumeFrom(runID string) {
	c.Checkpoint.Resume = runID
}

func (c Config) watchdogPeriod() time.Duration {
	if c.Watchdog == 0 {
		return 500 * time.Millisecond
	}
	return c.Watchdog
}
