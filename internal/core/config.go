// Package core implements GraphABCD's execution engines (Sec. IV): the
// asynchronous barrierless engine that is the paper's contribution, plus
// the Barrier and BSP baselines its Fig. 7 ablation compares against.
//
// The async engine mirrors the 11-step flow of Sec. IV-C: a scheduler
// selects vertex blocks from the active list (cyclic or Gauss-Southwell
// priority) and pushes them into the accelerator task queue; PE workers
// dequeue blocks, stream the block's in-edge cache sequentially through
// the program's GATHER-APPLY, and write the new vertex values; finished
// block ids flow through the CPU task queue to SCATTER workers, which copy
// updated values onto out-edge cache slots (random but disjoint writes),
// accumulate Gauss-Southwell mass onto destination blocks, and update the
// active list. The only shared mutable state is atomic words — no locks,
// no barriers — and the termination unit's quiescence test covers blocks
// active, claimed, and in flight.
package core

import (
	"fmt"
	"time"

	"graphabcd/internal/accel"
	"graphabcd/internal/edgestore"
	"graphabcd/internal/sched"
	"graphabcd/internal/telemetry"
)

// Mode selects the execution model.
type Mode int

const (
	// Async is the barrierless, lock-free engine (the paper's design).
	Async Mode = iota
	// Barrier adds a memory barrier after each wave of block processing
	// (the 'Barrier' baseline of Fig. 7): blocks are dispatched in rounds
	// and the next round starts only when the previous fully completes.
	Barrier
	// BSP is bulk-synchronous processing with block size |V| (Jacobi):
	// one global barrier per sweep, the GraphMat execution model.
	BSP
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Async:
		return "async"
	case Barrier:
		return "barrier"
	case BSP:
		return "bsp"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Config parameterizes one engine run. The zero value is not runnable; use
// DefaultConfig as a starting point.
type Config struct {
	// BlockSize is the BCD block size n (vertices per block). Ignored in
	// BSP mode, which always uses |V|.
	BlockSize int
	// Mode selects async / barrier / BSP execution.
	Mode Mode
	// Policy selects the block scheduling rule (cyclic / priority /
	// random). BSP ignores it.
	Policy sched.Policy
	// NumPEs is the number of GATHER-APPLY workers (accelerator PEs).
	NumPEs int
	// NumScatter is the number of CPU SCATTER workers.
	NumScatter int
	// Hybrid lets SCATTER workers steal GATHER-APPLY tasks when the CPU
	// side is under-utilized (Sec. IV-B hybrid execution).
	Hybrid bool
	// Epsilon is the activation threshold: a vertex whose update delta is
	// <= Epsilon neither scatters nor activates destination blocks.
	Epsilon float64
	// MaxEpochs bounds the work at MaxEpochs * |V| vertex updates; 0
	// means no bound (run to convergence). Non-convergent workloads such
	// as CF must set it.
	MaxEpochs float64
	// Seed feeds the random scheduler policy.
	Seed uint64
	// QueueDepth overrides the task-queue capacity (per queue). The
	// default 0 means 2x the consuming worker count. The depth is the
	// engine's staleness bound — the number of block-slots a gather may
	// run ahead of the scatter publishing fresh values; deep queues
	// degrade the engine toward Jacobi convergence (see the staleness
	// ablation in internal/exp).
	QueueDepth int
	// Sim, when non-nil, drives the accelerator cost model alongside the
	// real computation (simulated time, PE/bus utilization, traffic).
	Sim *accel.Simulator
	// Edges, when non-nil, overrides where the static edge structure
	// (weights, and source ids during initialization) is streamed from:
	// edgestore.OpenFile for out-of-core execution, edgestore.
	// OpenCompressed for the compact representation of Sec. VI-C. The
	// default streams zero-copy from the in-memory graph. The pull-push
	// layout makes every block's edges one contiguous range, so each
	// block task costs one sequential read regardless of backend.
	Edges edgestore.Source
	// StallHook, when non-nil, is invoked by every worker at each stage
	// boundary with the stage name ("gather", "scatter", "schedule").
	// It exists for failure-injection tests (randomized delays must not
	// affect convergence) and must be safe for concurrent use.
	StallHook func(stage string)
	// OnEpoch, when non-nil, is invoked by the scheduler each time the
	// cumulative vertex updates cross another |V| (one epoch-equivalent),
	// with the epoch count completed so far. Useful for recording
	// convergence curves from a single run. Called from the scheduler
	// goroutine; keep it fast.
	OnEpoch func(epoch int)
	// Watchdog is the stall-watchdog sampling period: every period that
	// passes without a single vertex update increments
	// Stats.StallWindows. 0 means 500ms; negative disables the watchdog.
	Watchdog time.Duration
	// Telemetry, when non-nil, is the live instrumentation registry the
	// run emits into: sharded counters, per-stage latency/staleness
	// histograms, sampled trace events, and the convergence series
	// (internal/telemetry). The caller keeps the reference and may read
	// Registry.Snapshot concurrently while the run executes — that is how
	// cmd/graphabcd's -metrics-addr and -progress observe a live run.
	// When nil the engine uses a private bare-counter registry: counters
	// still feed Stats, but no clocks are read and no histograms exist,
	// so the disabled cost is ~0 (see BenchmarkEngineTelemetry).
	Telemetry *telemetry.Registry
}

// DefaultConfig returns an async cyclic configuration with the given block
// size and worker counts sized for the host.
func DefaultConfig(blockSize int) Config {
	return Config{
		BlockSize:  blockSize,
		Mode:       Async,
		Policy:     sched.Cyclic,
		NumPEs:     4,
		NumScatter: 2,
		Epsilon:    1e-9,
	}
}

// Validate reports the first configuration error with an actionable
// message. Every engine entry point (all three Modes route through
// RunContext) calls it before starting any goroutine, so a bad config
// fails fast instead of deadlocking or spinning.
func (c Config) Validate() error {
	switch {
	case c.BlockSize < 0:
		return fmt.Errorf("core: BlockSize %d is negative; use a positive block size (vertices per block), or 0 to default to one block per vertex range — DefaultConfig(256) is a reasonable start", c.BlockSize)
	case c.NumPEs <= 0:
		return fmt.Errorf("core: NumPEs %d leaves no GATHER-APPLY workers; set NumPEs >= 1 (DefaultConfig uses 4)", c.NumPEs)
	case c.NumScatter <= 0:
		return fmt.Errorf("core: NumScatter %d leaves no SCATTER workers, so gathered blocks would never publish; set NumScatter >= 1 (DefaultConfig uses 2)", c.NumScatter)
	case c.Epsilon < 0:
		return fmt.Errorf("core: Epsilon %g is negative; the activation threshold must be >= 0 (0 keeps every update active, 1e-9 is the default)", c.Epsilon)
	case c.MaxEpochs < 0:
		return fmt.Errorf("core: MaxEpochs %g is negative; use 0 to run to convergence or a positive epoch budget", c.MaxEpochs)
	case c.QueueDepth < 0:
		return fmt.Errorf("core: QueueDepth %d is negative; use 0 for the default (2x the consuming workers) or a positive staleness bound", c.QueueDepth)
	case c.Mode != Async && c.Mode != Barrier && c.Mode != BSP:
		return fmt.Errorf("core: unknown mode %v; valid modes are Async, Barrier, and BSP", c.Mode)
	case c.Policy != sched.Cyclic && c.Policy != sched.Priority && c.Policy != sched.Random:
		return fmt.Errorf("core: unknown policy %v; valid policies are Cyclic, Priority, and Random", c.Policy)
	}
	return nil
}

func (c Config) watchdogPeriod() time.Duration {
	if c.Watchdog == 0 {
		return 500 * time.Millisecond
	}
	return c.Watchdog
}
