package core

import (
	"math"
	"testing"

	"graphabcd/internal/bcd"
	"graphabcd/internal/graph"
	"graphabcd/internal/sched"
	"graphabcd/internal/word"
)

// stateWrapped hides the OpBased methods of a program, forcing the engine
// to run it with plain state-based stores — reproducing the overwrite
// hazard of Sec. IV-A3 for the ablation test below.
type stateWrapped struct{ p bcd.PageRankDelta }

func (w stateWrapped) Name() string                          { return w.p.Name() + "-as-state" }
func (w stateWrapped) Codec() word.Codec[float64]            { return w.p.Codec() }
func (w stateWrapped) Init(v uint32, g *graph.Graph) float64 { return w.p.Init(v, g) }
func (w stateWrapped) InitEdge(src uint32, g *graph.Graph) float64 {
	return w.p.InitEdge(src, g)
}
func (w stateWrapped) NewAccum() float64       { return w.p.NewAccum() }
func (w stateWrapped) ResetAccum(acc *float64) { w.p.ResetAccum(acc) }
func (w stateWrapped) EdgeGather(acc *float64, dst float64, wt float32, src float64) {
	w.p.EdgeGather(acc, dst, wt, src)
}
func (w stateWrapped) Apply(v uint32, old float64, acc *float64, n int64, g *graph.Graph) float64 {
	return w.p.Apply(v, old, acc, n, g)
}
func (w stateWrapped) ScatterValue(v uint32, val float64, g *graph.Graph) float64 {
	return w.p.ScatterValue(v, val, g)
}
func (w stateWrapped) Delta(old, new float64) float64 { return w.p.Delta(old, new) }

func prdeltaErr(t *testing.T, vals []float64, want []float64) float64 {
	t.Helper()
	worst := 0.0
	for v := range want {
		if d := math.Abs(vals[v] - want[v]); d > worst {
			worst = d
		}
	}
	return worst
}

// PageRank-Delta with the engine's read-modify-write edge slots must reach
// the same fixpoint as state-based PageRank, in every mode.
func TestOpBasedPRDeltaMatchesReference(t *testing.T) {
	g := testGraph(t)
	want := bcd.RefPageRank(g, 0.85, 1e-13, 1000)
	for _, cfg := range []Config{
		{BlockSize: 32, Mode: Async, Policy: sched.Cyclic, NumPEs: 4, NumScatter: 2, Epsilon: 1e-12},
		{BlockSize: 32, Mode: Async, Policy: sched.Priority, NumPEs: 4, NumScatter: 2, Epsilon: 1e-12},
		{BlockSize: 64, Mode: Barrier, Policy: sched.Cyclic, NumPEs: 2, NumScatter: 2, Epsilon: 1e-12},
		{Mode: BSP, NumPEs: 4, NumScatter: 2, Epsilon: 1e-12},
	} {
		res, err := Run[float64, float64](g, bcd.PageRankDelta{}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Stats.Converged {
			t.Fatalf("%v/%v: did not converge", cfg.Mode, cfg.Policy)
		}
		if worst := prdeltaErr(t, res.Values, want); worst > 1e-6 {
			t.Fatalf("%v/%v: max error vs reference = %g", cfg.Mode, cfg.Policy, worst)
		}
	}
}

// The paper's Sec. IV-A3 claim, demonstrated: running an operation-based
// program with plain state-based stores (no read-modify-write) loses or
// replays deltas and lands far from the fixpoint, while the proper
// op-based run above is accurate. This is the reason GraphABCD chooses
// state-based updates for its lock-free design.
func TestOpBasedOverwriteHazardDemonstrated(t *testing.T) {
	g := testGraph(t)
	want := bcd.RefPageRank(g, 0.85, 1e-13, 1000)
	cfg := Config{BlockSize: 32, Mode: Async, Policy: sched.Priority,
		NumPEs: 4, NumScatter: 2, Epsilon: 1e-12, MaxEpochs: 200}

	proper, err := Run[float64, float64](g, bcd.PageRankDelta{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	broken, err := Run[float64, float64](g, stateWrapped{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	properErr := prdeltaErr(t, proper.Values, want)
	brokenErr := prdeltaErr(t, broken.Values, want)
	if properErr > 1e-6 {
		t.Fatalf("op-based run inaccurate: %g", properErr)
	}
	// The broken run re-reads stale deltas on every gather; its error must
	// be orders of magnitude worse than the proper run's.
	if brokenErr < 1e-4 || brokenErr < properErr*100 {
		t.Fatalf("state-semantics run should be badly wrong: broken=%g proper=%g",
			brokenErr, properErr)
	}
}

// The budget guard still applies to op-based runs.
func TestOpBasedRespectsBudget(t *testing.T) {
	g := testGraph(t)
	cfg := Config{BlockSize: 32, Mode: Async, Policy: sched.Cyclic,
		NumPEs: 2, NumScatter: 1, Epsilon: 0, MaxEpochs: 2}
	res, err := Run[float64, float64](g, bcd.PageRankDelta{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Converged {
		t.Fatal("must report non-convergence under a tight budget")
	}
}

// Operation-based programs require single-word codecs; a multi-word one
// must be rejected up front.
type multiWordOp struct{ bcd.CF }

func (multiWordOp) ZeroDelta() []float32                     { return nil }
func (multiWordOp) AccumulateDelta(p, d []float32) []float32 { return p }
func (multiWordOp) OutDelta(v uint32, old, new []float32, g *graph.Graph) []float32 {
	return nil
}

func TestOpBasedRejectsMultiWordCodec(t *testing.T) {
	g := testGraph(t)
	_, err := Run[[]float32, []float64](g, multiWordOp{bcd.CF{Rank: 4}}, DefaultConfig(32))
	if err == nil {
		t.Fatal("want error for multi-word operation-based program")
	}
}
