package core

import (
	"errors"
	"math"
	"path/filepath"
	"sync/atomic"
	"testing"

	"graphabcd/internal/bcd"
	"graphabcd/internal/edgestore"
	"graphabcd/internal/sched"
)

// The engine must compute identical results whether the static edge
// structure streams from memory, from an out-of-core file, or from the
// compressed file format — across engine modes.
func TestEngineWithEdgeSources(t *testing.T) {
	g := weightedGraph(t)
	src := uint32(3)
	want := bcd.RefSSSP(g, src)
	prWant := bcd.RefPageRank(g, 0.85, 1e-13, 1000)

	dir := t.TempDir()
	rawPath := filepath.Join(dir, "edges.bin")
	compPath := filepath.Join(dir, "edges.gabc")
	if err := edgestore.WriteFile(g, rawPath); err != nil {
		t.Fatal(err)
	}
	if err := edgestore.WriteCompressed(g, compPath); err != nil {
		t.Fatal(err)
	}

	sources := map[string]func() (edgestore.Source, error){
		"inmemory":   func() (edgestore.Source, error) { return edgestore.InMemory(g), nil },
		"file":       func() (edgestore.Source, error) { return edgestore.OpenFile(g, rawPath) },
		"compressed": func() (edgestore.Source, error) { return edgestore.OpenCompressed(g, compPath) },
	}
	for name, open := range sources {
		name, open := name, open
		t.Run(name, func(t *testing.T) {
			es, err := open()
			if err != nil {
				t.Fatal(err)
			}
			defer es.Close()

			for _, mode := range []Mode{Async, BSP} {
				cfg := Config{BlockSize: 32, Mode: mode, Policy: sched.Cyclic,
					NumPEs: 2, NumScatter: 2, Edges: es}
				res, err := Run[float64, float64](g, bcd.SSSP{Source: src}, cfg)
				if err != nil {
					t.Fatal(err)
				}
				for v := range want {
					got := res.Values[v]
					if got != want[v] && !(math.IsInf(got, 1) && math.IsInf(want[v], 1)) {
						t.Fatalf("%v: dist[%d] = %g, want %g", mode, v, got, want[v])
					}
				}
			}
			// Weighted PR sanity on the same source (weights ignored by PR
			// but the source still feeds init and gather).
			cfg := Config{BlockSize: 32, Mode: Async, Policy: sched.Cyclic,
				NumPEs: 2, NumScatter: 1, Epsilon: 1e-12, Edges: es}
			res, err := Run[float64, float64](g, bcd.PageRank{}, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for v := range prWant {
				if math.Abs(res.Values[v]-prWant[v]) > 1e-7 {
					t.Fatalf("pr[%d] off by %g", v, math.Abs(res.Values[v]-prWant[v]))
				}
			}
		})
	}
}

// failingSource returns an error after a few successful blocks; the run
// must abort cleanly and surface the error.
type failingSource struct {
	inner edgestore.Source
	left  atomic.Int64
}

var errInjected = errors.New("injected edge-source failure")

func (f *failingSource) Block(vlo, vhi int, slo, shi int64) ([]uint32, []float32, func(), error) {
	if f.left.Add(-1) < 0 {
		return nil, nil, nil, errInjected
	}
	return f.inner.Block(vlo, vhi, slo, shi)
}

func (f *failingSource) Bytes() int64 { return f.inner.Bytes() }

func (f *failingSource) Close() error { return f.inner.Close() }

func TestEngineSurfacesEdgeSourceErrors(t *testing.T) {
	g := testGraph(t)
	for _, mode := range []Mode{Async, Barrier, BSP} {
		// left=20 survives initialization (NumPEs+NumScatter ranges) and a
		// few block reads, then fails mid-run.
		fs := &failingSource{inner: edgestore.InMemory(g)}
		fs.left.Store(20)
		cfg := Config{BlockSize: 16, Mode: mode, Policy: sched.Cyclic,
			NumPEs: 2, NumScatter: 1, Epsilon: 1e-12, Edges: fs}
		_, err := Run[float64, float64](g, bcd.PageRank{}, cfg)
		if !errors.Is(err, errInjected) {
			t.Fatalf("%v: err = %v, want injected failure", mode, err)
		}
	}
}
