package core

import (
	"bytes"
	"context"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"graphabcd/internal/bcd"
	"graphabcd/internal/checkpoint"
	"graphabcd/internal/graph"
	"graphabcd/internal/sched"
	"graphabcd/internal/telemetry"
)

// partialCheckpoint runs prog under a tight epoch budget — an interrupted
// run — then captures and commits one checkpoint of the mid-convergence
// state. It returns the run id and the partial run's vertex-update count,
// and fails the test if the budget turned out large enough to converge
// (the checkpoint must be genuinely mid-run).
func partialCheckpoint[V, M any](t *testing.T, g *graph.Graph, prog bcd.Program[V, M], cfg Config, dir string) (string, int64) {
	t.Helper()
	cfg.Checkpoint = Checkpoint{Dir: dir}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	e, err := newEngine(g, prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := newCheckpointer(e, cfg.Checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	converged := e.runBlocked()
	if errp := e.failure.Load(); errp != nil {
		t.Fatal(*errp)
	}
	if converged {
		t.Fatalf("partial run converged within MaxEpochs=%g; tighten the budget so the checkpoint is mid-run", cfg.MaxEpochs)
	}
	if err := ck.capture(); err != nil {
		t.Fatal(err)
	}
	return ck.runID, e.vertexUpdates()
}

func TestResumeEquivalencePageRank(t *testing.T) {
	g := testGraph(t)
	want := bcd.RefPageRank(g, 0.85, 1e-13, 1000)
	dir := t.TempDir()
	cfg := Config{BlockSize: 64, Mode: Async, Policy: sched.Cyclic, NumPEs: 4, NumScatter: 2,
		Epsilon: 1e-12, MaxEpochs: 3}
	runID, partialUpdates := partialCheckpoint(t, g, bcd.PageRank{}, cfg, dir)

	cfg.MaxEpochs = 0
	cfg.Checkpoint = Checkpoint{Dir: dir, Resume: runID}
	res, err := Run[float64, float64](g, bcd.PageRank{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Converged {
		t.Fatal("resumed run did not converge")
	}
	if d := maxAbsDiff(res.Values, want); d > 1e-7 {
		t.Fatalf("resumed fixed point differs from reference by %g", d)
	}
	if res.Stats.VertexUpdates <= partialUpdates {
		t.Fatalf("resumed stats did not continue: %d vertex updates <= partial %d",
			res.Stats.VertexUpdates, partialUpdates)
	}
}

func TestResumeEquivalenceSSSP(t *testing.T) {
	g := weightedGraph(t)
	src := uint32(3)
	want := bcd.RefSSSP(g, src)
	dir := t.TempDir()
	cfg := Config{BlockSize: 32, Mode: Async, Policy: sched.Priority, NumPEs: 2, NumScatter: 1,
		MaxEpochs: 1}
	runID, _ := partialCheckpoint(t, g, bcd.SSSP{Source: src}, cfg, dir)

	cfg.MaxEpochs = 0
	cfg.Checkpoint = Checkpoint{Dir: dir, Resume: runID}
	res, err := Run[float64, float64](g, bcd.SSSP{Source: src}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Converged {
		t.Fatal("resumed run did not converge")
	}
	for v := range want {
		if res.Values[v] != want[v] && !(math.IsInf(res.Values[v], 1) && math.IsInf(want[v], 1)) {
			t.Fatalf("dist[%d] = %g, want %g", v, res.Values[v], want[v])
		}
	}
}

func TestResumeEquivalenceCC(t *testing.T) {
	base := testGraph(t)
	var edges []graph.Edge
	for _, e := range base.Edges() {
		edges = append(edges,
			graph.Edge{Src: e.Src, Dst: e.Dst, Weight: 1},
			graph.Edge{Src: e.Dst, Dst: e.Src, Weight: 1})
	}
	g, err := graph.FromEdges(base.NumVertices()+8, edges)
	if err != nil {
		t.Fatal(err)
	}
	want := bcd.RefCC(g)
	dir := t.TempDir()
	cfg := Config{BlockSize: 32, Mode: Async, Policy: sched.Cyclic, NumPEs: 2, NumScatter: 1,
		MaxEpochs: 1}
	runID, _ := partialCheckpoint(t, g, bcd.CC{}, cfg, dir)

	cfg.MaxEpochs = 0
	cfg.Checkpoint = Checkpoint{Dir: dir, Resume: runID}
	res, err := Run[uint64, uint64](g, bcd.CC{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if res.Values[v] != want[v] {
			t.Fatalf("label[%d] = %d, want %d", v, res.Values[v], want[v])
		}
	}
}

// TestKillAndResumePageRank exercises the full public path: a run with
// periodic checkpointing is cancelled mid-flight (the single-process
// stand-in for SIGKILL — its partial result is discarded), and a fresh
// process resumes from the last committed epoch and must still reach the
// reference fixed point.
func TestKillAndResumePageRank(t *testing.T) {
	g := testGraph(t)
	want := bcd.RefPageRank(g, 0.85, 1e-13, 1000)
	dir := t.TempDir()
	store, err := checkpoint.NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { // "kill" the run as soon as one checkpoint commits
		for ctx.Err() == nil {
			if _, err := store.Latest(); err == nil {
				cancel()
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	cfg := Config{BlockSize: 64, Mode: Async, Policy: sched.Cyclic, NumPEs: 2, NumScatter: 1,
		Epsilon: 1e-12, Watchdog: -1,
		// Slow the first run so the 1ms checkpoint interval fires well
		// before convergence; the resumed run drops the brake.
		StallHook:  func(string) { time.Sleep(50 * time.Microsecond) },
		Checkpoint: Checkpoint{Dir: dir, Interval: time.Millisecond, RunID: "kill-test"},
	}
	if _, err := RunContext[float64, float64](ctx, g, bcd.PageRank{}, cfg); err != nil {
		t.Fatal(err)
	}
	m, err := store.Latest()
	if err != nil {
		t.Fatalf("no committed checkpoint after the killed run: %v", err)
	}
	if m.RunID != "kill-test" || m.Epoch == 0 {
		t.Fatalf("unexpected manifest %+v", m)
	}

	cfg.StallHook = nil
	cfg.Checkpoint.Resume = "latest"
	res, err := Run[float64, float64](g, bcd.PageRank{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Converged {
		t.Fatal("resumed run did not converge")
	}
	if d := maxAbsDiff(res.Values, want); d > 1e-7 {
		t.Fatalf("resumed fixed point differs from reference by %g", d)
	}
}

func TestResumeRefusesTornAndMismatched(t *testing.T) {
	g := testGraph(t)
	dir := t.TempDir()
	cfg := Config{BlockSize: 64, Mode: Async, Policy: sched.Cyclic, NumPEs: 2, NumScatter: 1,
		Epsilon: 1e-12, MaxEpochs: 3}
	runID, _ := partialCheckpoint(t, g, bcd.PageRank{}, cfg, dir)

	resume := func(run string, mut func(c *Config)) error {
		c := cfg
		c.MaxEpochs = 0
		c.Checkpoint = Checkpoint{Dir: dir, Resume: run}
		if mut != nil {
			mut(&c)
		}
		_, err := Run[float64, float64](g, bcd.PageRank{}, c)
		return err
	}

	// Wrong program: the manifest identity triple must not match.
	ccfg := cfg
	ccfg.MaxEpochs = 0
	ccfg.Checkpoint = Checkpoint{Dir: dir, Resume: runID}
	if _, err := Run[uint64, uint64](g, bcd.CC{}, ccfg); err == nil ||
		!strings.Contains(err.Error(), "program") {
		t.Fatalf("resume with wrong program: err = %v", err)
	}
	// Wrong block size: a different config hash.
	if err := resume(runID, func(c *Config) { c.BlockSize = 32 }); err == nil ||
		!strings.Contains(err.Error(), "config hash") {
		t.Fatalf("resume with wrong block size: err = %v", err)
	}
	// Unknown run id.
	if err := resume("no-such-run", nil); err == nil {
		t.Fatal("resume of unknown run id succeeded")
	}

	// Torn state file: truncate it and the resume must refuse, even though
	// the manifest still commits the epoch.
	sf, err := filepath.Glob(filepath.Join(dir, runID, "ep*-n0000.gabc"))
	if err != nil || len(sf) != 1 {
		t.Fatalf("state files: %v %v", sf, err)
	}
	info, err := os.Stat(sf[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(sf[0], info.Size()-7); err != nil {
		t.Fatal(err)
	}
	if err := resume(runID, nil); err == nil {
		t.Fatal("resume from a torn state file succeeded")
	}
}

func TestCheckpointRefusesOpBasedProgram(t *testing.T) {
	g := testGraph(t)
	cfg := Config{BlockSize: 64, Mode: Async, Policy: sched.Cyclic, NumPEs: 2, NumScatter: 1,
		Epsilon: 1e-12, Checkpoint: Checkpoint{Dir: t.TempDir()}}
	_, err := Run[float64, float64](g, bcd.PageRankDelta{}, cfg)
	if err == nil || !strings.Contains(err.Error(), "operation-based") {
		t.Fatalf("op-based checkpoint: err = %v", err)
	}
}

// TestWatchdogIgnoresCheckpointWindows is the regression test for the
// stall-accounting satellite: sampling windows that overlap a checkpoint
// capture must not count toward Stats.StallWindows.
func TestWatchdogIgnoresCheckpointWindows(t *testing.T) {
	g := testGraph(t)
	cfg := Config{BlockSize: 64, NumPEs: 1, NumScatter: 1, Watchdog: time.Millisecond}
	e, err := newEngine(g, bcd.PageRank{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	run := func() {
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() { defer close(done); e.watchdog(stop) }()
		time.Sleep(25 * time.Millisecond)
		close(stop)
		<-done
	}
	// A capture spanning every window: zero progress, zero stalls counted.
	e.ckptGen.Store(1)
	run()
	if n := e.tel.Total(telemetry.CtrStallWindows); n != 0 {
		t.Fatalf("windows during a capture counted as %d stalls", n)
	}
	// No capture, no progress: the stalls must be counted again.
	e.ckptGen.Store(2)
	run()
	if n := e.tel.Total(telemetry.CtrStallWindows); n == 0 {
		t.Fatal("genuine stall windows were not counted")
	}
}

func TestReplayDeterminism(t *testing.T) {
	g := testGraph(t)
	want := bcd.RefPageRank(g, 0.85, 1e-13, 1000)
	var rec bytes.Buffer
	cfg := Config{BlockSize: 64, Mode: Async, Policy: sched.Cyclic, NumPEs: 4, NumScatter: 2,
		Epsilon: 1e-12, RecordSchedule: &rec}
	res := runPR(t, g, cfg)
	if !res.Stats.Converged {
		t.Fatal("recording run did not converge")
	}
	nb := (g.NumVertices() + cfg.BlockSize - 1) / cfg.BlockSize
	ids, err := checkpoint.ReadSchedule(bytes.NewReader(rec.Bytes()), nb)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(ids)) != res.Stats.BlockUpdates {
		t.Fatalf("recorded %d ids, run processed %d blocks", len(ids), res.Stats.BlockUpdates)
	}

	cfg.RecordSchedule = nil
	replay := func() *ReplayResult[float64] {
		r, err := ReplaySchedule[float64, float64](context.Background(), g, bcd.PageRank{}, cfg, ids)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	r1, r2 := replay(), replay()
	if len(r1.Residuals) == 0 {
		t.Fatal("replay recorded no per-epoch residuals")
	}
	if len(r1.Residuals) != len(r2.Residuals) {
		t.Fatalf("residual traces differ in length: %d vs %d", len(r1.Residuals), len(r2.Residuals))
	}
	for i := range r1.Residuals {
		if math.Float64bits(r1.Residuals[i]) != math.Float64bits(r2.Residuals[i]) {
			t.Fatalf("residual[%d] not bit-identical: %g vs %g", i, r1.Residuals[i], r2.Residuals[i])
		}
	}
	for v := range r1.Values {
		if math.Float64bits(r1.Values[v]) != math.Float64bits(r2.Values[v]) {
			t.Fatalf("value[%d] not bit-identical across replays", v)
		}
	}
	// The replayed schedule covers the full recorded run, so it lands at
	// the same fixed point (modulo the interleaving the recording had).
	if d := maxAbsDiff(r1.Values, want); d > 1e-7 {
		t.Fatalf("replayed fixed point differs from reference by %g", d)
	}
}
