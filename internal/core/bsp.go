package core

import (
	"sync"

	"graphabcd/internal/telemetry"
)

// runBSP executes the Bulk Synchronous Processing baseline: block size
// |V|, a full Jacobi sweep per iteration, and a global barrier between the
// gather-apply and scatter phases of every sweep (Sec. II-A, the GraphMat
// execution model). All vertices read the edge caches written at the end
// of the previous sweep, so updates within a sweep never see each other.
// It reports whether the run converged within the epoch budget.
func (e *engine[V, M]) runBSP() bool {
	n := e.g.NumVertices()
	if n == 0 {
		return true
	}
	budget := e.maxVertexUpdates()
	deltas := make([]float64, n)
	var dvals []V
	if e.op != nil {
		dvals = make([]V, n)
	}
	workers := e.cfg.NumPEs

	// chunk v-ranges are fixed across sweeps: worker w owns [starts[w], starts[w+1]).
	starts := make([]int, workers+1)
	for w := 0; w <= workers; w++ {
		starts[w] = w * n / workers
	}

	epochsSeen := 0
	for {
		epochsSeen = e.fireEpochHook(epochsSeen)
		if e.failed() || e.cancelled() || e.vertexUpdates() >= budget {
			return false
		}
		e.stall("schedule")

		// Phase 1: gather-apply every vertex against the previous sweep's
		// edge caches.
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				defer e.recoverToFailure()
				e.stall("gather")
				sh := &e.shards[1+w]
				ws := newScratch(e.prog)
				vlo, vhi := starts[w], starts[w+1]
				if vlo == vhi {
					return
				}
				clo, chi := e.g.InOffset(vlo), e.g.InOffset(vhi)
				_, weights, release, err := e.edges.Block(vlo, vhi, clo, chi)
				if err != nil {
					e.fail(err)
					return
				}
				defer release()
				var edges int64
				for v := vlo; v < vhi; v++ {
					e.values.LoadBuf(int64(v), &ws.old, ws.buf)
					e.prog.ResetAccum(&ws.acc)
					slo, shi := e.g.InOffset(v), e.g.InOffset(v+1)
					for s := slo; s < shi; s++ {
						if e.op != nil {
							e.cache.SwapValue(s, e.op.ZeroDelta(), ws.buf, &ws.src)
						} else {
							e.cache.LoadBuf(s, &ws.src, ws.buf)
						}
						e.prog.EdgeGather(&ws.acc, ws.old, weights[s-clo], ws.src)
					}
					edges += shi - slo
					newVal := e.prog.Apply(uint32(v), ws.old, &ws.acc, shi-slo, e.g)
					if e.prog.Delta(ws.old, newVal) == 0 {
						deltas[v] = 0
						continue
					}
					if e.op != nil {
						dvals[v] = e.op.OutDelta(uint32(v), ws.old, newVal, e.g)
						deltas[v] = e.prog.Delta(ws.old, newVal)
					} else {
						// Scatter-image delta, as in the async engine.
						deltas[v] = e.prog.Delta(
							e.prog.ScatterValue(uint32(v), ws.old, e.g),
							e.prog.ScatterValue(uint32(v), newVal, e.g))
					}
					e.values.StoreBuf(int64(v), newVal, ws.buf)
				}
				sh.Add(telemetry.CtrVertexUpdates, int64(starts[w+1]-starts[w]))
				sh.Add(telemetry.CtrEdgesTraversed, edges)
				if sim := e.cfg.Sim; sim != nil {
					sim.LeastLoadedPE().RunBlock(edges, edges*e.edgeBytes,
						int64(starts[w+1]-starts[w])*e.valueBytes)
				}
			}(w)
		}
		wg.Wait() // global memory barrier #1
		e.sh0.Add(telemetry.CtrBlockUpdates, 1)
		if sim := e.cfg.Sim; sim != nil {
			sim.Barrier()
		}

		// Phase 2: commit all updates to the edge caches at once.
		anyActive := false
		var mu sync.Mutex
		scatterWorkers := e.cfg.NumScatter
		sstarts := make([]int, scatterWorkers+1)
		for w := 0; w <= scatterWorkers; w++ {
			sstarts[w] = w * n / scatterWorkers
		}
		for w := 0; w < scatterWorkers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				defer e.recoverToFailure()
				e.stall("scatter")
				sh := &e.shards[1+e.cfg.NumPEs+w]
				ws := newScratch(e.prog)
				var writes int64
				active := false
				for v := sstarts[w]; v < sstarts[w+1]; v++ {
					d := deltas[v]
					if d <= e.cfg.Epsilon && (e.op == nil || d == 0) {
						continue
					}
					if d > e.cfg.Epsilon {
						active = true
					}
					if e.op != nil {
						dval := dvals[v]
						for i := e.g.OutOffset(v); i < e.g.OutOffset(v+1); i++ {
							e.cache.RMW(e.g.OutPos(i), ws.buf, &ws.val, func(cur V) V {
								return e.op.AccumulateDelta(cur, dval)
							})
							writes++
						}
						continue
					}
					e.values.LoadBuf(int64(v), &ws.val, ws.buf)
					sval := e.prog.ScatterValue(uint32(v), ws.val, e.g)
					for i := e.g.OutOffset(v); i < e.g.OutOffset(v+1); i++ {
						e.cache.StoreBuf(e.g.OutPos(i), sval, ws.buf)
						writes++
					}
				}
				sh.Add(telemetry.CtrScatterWrites, writes)
				if sim := e.cfg.Sim; sim != nil && writes > 0 {
					sim.LeastLoadedCPU().RunScatter(writes, writes*e.valueBytes)
				}
				if active {
					mu.Lock()
					anyActive = true
					mu.Unlock()
				}
			}(w)
		}
		wg.Wait() // global memory barrier #2
		if sim := e.cfg.Sim; sim != nil {
			sim.Barrier()
		}

		if !anyActive {
			return true
		}
	}
}
