package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"graphabcd/internal/bcd"
	"graphabcd/internal/checkpoint"
	"graphabcd/internal/edgestore"
	"graphabcd/internal/graph"
	"graphabcd/internal/sched"
	"graphabcd/internal/telemetry"
	"graphabcd/internal/word"
)

// Run executes prog over g under cfg and returns the final vertex values
// with run statistics. Type parameters follow the program's (V, M); Go
// cannot infer them from a concrete program type, so callers instantiate
// explicitly, e.g. core.Run[float64, float64](g, bcd.PageRank{}, cfg).
func Run[V, M any](g *graph.Graph, prog bcd.Program[V, M], cfg Config) (*Result[V], error) {
	return RunContext[V, M](context.Background(), g, prog, cfg)
}

// RunContext is Run with cancellation and deadline support: when ctx is
// cancelled the engine stops scheduling, drains its workers, and returns
// the partial result with Stats.Converged == false and a nil error. A
// stall watchdog samples progress every Config.Watchdog period and
// reports no-progress windows in Stats.StallWindows.
func RunContext[V, M any](ctx context.Context, g *graph.Graph, prog bcd.Program[V, M], cfg Config) (*Result[V], error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e, err := newEngine(g, prog, cfg)
	if err != nil {
		return nil, err
	}
	e.ctx = ctx
	// Checkpoint setup and resume happen before any worker or watchdog
	// goroutine starts: a resume failure must abort the run cleanly, and
	// the restored state must be fully published before anyone reads it.
	ck, err := newCheckpointer(e, cfg.Checkpoint)
	if err != nil {
		return nil, err
	}
	if ck != nil && cfg.Checkpoint.Resume != "" {
		if err := ck.resume(cfg.Checkpoint.Resume); err != nil {
			return nil, err
		}
	}
	if cfg.RecordSchedule != nil {
		e.rec = checkpoint.NewScheduleRecorder(cfg.RecordSchedule)
	}
	start := time.Now()
	stopWatch := make(chan struct{})
	var watch sync.WaitGroup
	watch.Add(1)
	go func() {
		defer watch.Done()
		e.watchdog(stopWatch)
	}()
	if ck != nil && ck.interval > 0 {
		watch.Add(1)
		go func() {
			defer watch.Done()
			ck.loop(stopWatch)
		}()
	}
	var converged bool
	if cfg.Mode == BSP {
		converged = e.runBSP()
	} else {
		converged = e.runBlocked()
	}
	close(stopWatch)
	watch.Wait()
	if e.rec != nil {
		// A lost schedule is a corrupt replay; surface the sink's first
		// error as the run's.
		if err := e.rec.Close(); err != nil {
			e.fail(fmt.Errorf("core: schedule recording: %w", err))
		}
	}
	if errp := e.failure.Load(); errp != nil {
		return nil, *errp
	}
	return e.result(converged, time.Since(start)), nil
}

// engine holds the shared state of one run.
type engine[V, M any] struct {
	g    *graph.Graph
	prog bcd.Program[V, M]
	// op is non-nil when prog is operation-based (bcd.OpBased): edge
	// slots then hold pending deltas that SCATTER accumulates with atomic
	// read-modify-writes and GATHER consumes with atomic swaps.
	op   bcd.OpBased[V, M]
	cfg  Config
	part *graph.Partition
	// ctx carries the run's cancellation signal; the scheduling loops
	// poll it and stop gracefully with a partial result.
	ctx context.Context

	values *word.Array[V] // vertex values, |V| entries
	cache  *word.Array[V] // cached source values per in-edge slot, |E| entries

	st *sched.State
	// tel is the run's telemetry registry (Config.Telemetry, or a private
	// bare-counter one). All work accounting goes through its per-worker
	// shards: shard 0 belongs to the scheduler and the watchdog, shards
	// 1..NumPEs to the PE workers, the rest to the scatter workers. The
	// shard split is what keeps counting off shared cache lines — the old
	// single counter struct false-shared between every worker.
	tel    *telemetry.Registry
	shards []telemetry.Shard
	sh0    *telemetry.Shard // scheduler/watchdog shard
	live   bool             // tel records timings (histograms or tracing)
	nv     int64            // |V|, cached for the staleness observation

	edges edgestore.Source
	// failure holds the first edge-source error; the scheduler aborts the
	// run when it is set and Run returns it. failCh is closed alongside
	// the first fail() so goroutines parked on channel sends can abort
	// without polling.
	failure  atomic.Pointer[error]
	failCh   chan struct{}
	failOnce sync.Once

	deltaPool sync.Pool // *[]float64 buffers of block size
	dvalPool  sync.Pool // *[]V out-delta buffers (operation-based mode)

	// resumed is set when a checkpoint resume seeded values and scheduler
	// state; runBlocked then skips the fresh-run ActivateAll (resume did
	// its own mass-preserving activation).
	resumed bool
	// ckptGen increments at the start and end of every checkpoint capture
	// (odd while one is in progress). The watchdog skips stall windows
	// that overlapped a capture so checkpoint I/O never counts as an
	// engine stall (Stats.StallWindows stays a pure progress signal).
	ckptGen atomic.Int64
	// rec, when non-nil, records every issued block id for deterministic
	// replay. Only the scheduler goroutine writes to it.
	rec *checkpoint.ScheduleRecorder

	// modeled byte widths for the accelerator cost model
	valueBytes int64 // encoded vertex value width
	edgeBytes  int64 // streamed per-edge payload: weight + cached value
}

func newEngine[V, M any](g *graph.Graph, prog bcd.Program[V, M], cfg Config) (*engine[V, M], error) {
	blockSize := cfg.BlockSize
	if cfg.Mode == BSP {
		blockSize = g.NumVertices() // full-gradient Jacobi
	}
	part, err := graph.NewPartition(g, blockSize)
	if err != nil {
		return nil, err
	}
	if cfg.Sim != nil {
		sc := cfg.Sim.Config()
		if cfg.NumPEs > sc.NumPEs {
			return nil, fmt.Errorf("core: NumPEs %d exceeds simulator's %d", cfg.NumPEs, sc.NumPEs)
		}
		if cfg.NumScatter > sc.CPUThreads {
			return nil, fmt.Errorf("core: NumScatter %d exceeds simulator's %d CPU threads", cfg.NumScatter, sc.CPUThreads)
		}
	}
	codec := prog.Codec()
	e := &engine[V, M]{
		g:          g,
		prog:       prog,
		cfg:        cfg,
		part:       part,
		values:     word.NewArray(codec, g.NumVertices()),
		cache:      word.NewArray(codec, g.NumEdges()),
		st:         sched.NewState(part.NumBlocks()),
		failCh:     make(chan struct{}),
		valueBytes: int64(codec.Words()) * 8,
		edgeBytes:  int64(codec.Words())*8 + 4,
	}
	if op, ok := prog.(bcd.OpBased[V, M]); ok {
		if codec.Words() != 1 {
			return nil, fmt.Errorf("core: operation-based program %q needs a single-word codec (got %d words)",
				prog.Name(), codec.Words())
		}
		e.op = op
	}
	e.tel = cfg.Telemetry
	if e.tel == nil {
		e.tel = telemetry.New(telemetry.Options{})
	}
	// Shard 0 is the scheduler's; gather workers take 1..NumPEs and
	// scatter workers the rest (the BSP sweeps reuse the same split).
	e.shards = e.tel.Shards(1 + cfg.NumPEs + cfg.NumScatter)
	e.sh0 = &e.shards[0]
	e.live = e.tel.Live()
	e.nv = int64(g.NumVertices())
	e.tel.SetVertices(g.NumVertices())
	e.tel.RegisterGauge("active_blocks", func() float64 { return float64(e.st.NumActive()) })
	e.tel.RegisterGauge("residual", e.st.PendingMass)
	e.edges = cfg.Edges
	if e.edges == nil {
		e.edges = edgestore.InMemory(g)
	}
	e.deltaPool.New = func() any {
		buf := make([]float64, part.BlockSize())
		return &buf
	}
	e.dvalPool.New = func() any {
		buf := make([]V, part.BlockSize())
		return &buf
	}
	e.initArrays()
	return e, nil
}

// initArrays populates vertex values and edge caches in parallel.
func (e *engine[V, M]) initArrays() {
	n := e.g.NumVertices()
	workers := e.cfg.NumPEs + e.cfg.NumScatter
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			vlo, vhi := w*n/workers, (w+1)*n/workers
			if vlo == vhi {
				return
			}
			slo, shi := e.g.InOffset(vlo), e.g.InOffset(vhi)
			srcs, _, release, err := e.edges.Block(vlo, vhi, slo, shi)
			if err != nil {
				e.fail(err)
				return
			}
			defer release()
			buf := make([]uint64, e.values.Words())
			for v := vlo; v < vhi; v++ {
				e.values.StoreBuf(int64(v), e.prog.Init(uint32(v), e.g), buf)
				for s := e.g.InOffset(v); s < e.g.InOffset(v+1); s++ {
					e.cache.StoreBuf(s, e.prog.InitEdge(srcs[s-slo], e.g), buf)
				}
			}
		}(w)
	}
	wg.Wait()
}

// maxVertexUpdates translates MaxEpochs into a vertex-update budget.
func (e *engine[V, M]) maxVertexUpdates() int64 {
	if e.cfg.MaxEpochs == 0 {
		return math.MaxInt64
	}
	return int64(e.cfg.MaxEpochs * float64(e.g.NumVertices()))
}

// vertexUpdates is the cross-shard total driving the epoch budget, the
// epoch hook, the watchdog, and the staleness observation.
func (e *engine[V, M]) vertexUpdates() int64 {
	return e.tel.Total(telemetry.CtrVertexUpdates)
}

func (e *engine[V, M]) stall(stage string) {
	if e.cfg.StallHook != nil {
		e.cfg.StallHook(stage)
	}
}

// fail records the first edge-source error; the scheduler aborts the run.
func (e *engine[V, M]) fail(err error) {
	e.failure.CompareAndSwap(nil, &err)
	e.failOnce.Do(func() { close(e.failCh) })
}

func (e *engine[V, M]) failed() bool { return e.failure.Load() != nil }

// cancelled reports whether the run's context has been cancelled or has
// passed its deadline.
func (e *engine[V, M]) cancelled() bool {
	return e.ctx != nil && e.ctx.Err() != nil
}

// recoverToFailure converts a worker panic into a run failure instead of
// a process crash. Deferred at every worker-goroutine boundary; the
// panicked worker's in-flight block stays unfinished, so the scheduler
// exits through the failure check rather than quiescence.
func (e *engine[V, M]) recoverToFailure() {
	if r := recover(); r != nil {
		e.fail(fmt.Errorf("core: worker panic: %v", r))
	}
}

// watchdog counts sampling periods in which no vertex update happened,
// surfacing them as Stats.StallWindows.
func (e *engine[V, M]) watchdog(stop <-chan struct{}) {
	period := e.cfg.watchdogPeriod()
	if period <= 0 {
		return
	}
	last := int64(-1)
	lastGen := e.ckptGen.Load()
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		progress := e.vertexUpdates()
		gen := e.ckptGen.Load()
		// A window is a stall only if no vertex updated AND no checkpoint
		// capture overlapped it (gen unchanged and even): pausing for
		// checkpoint I/O is paid-for durability, not an engine stall.
		if progress == last && gen == lastGen && gen%2 == 0 {
			e.sh0.Add(telemetry.CtrStallWindows, 1)
		}
		last, lastGen = progress, gen
	}
}

// blockItem carries one scheduled block into the accelerator queue; enq
// is the issue Stamp, so the consumer can observe the queue wait.
type blockItem struct {
	b   int
	enq int64
}

// task carries one processed block from GATHER-APPLY to SCATTER.
type task struct {
	block  int
	deltas *[]float64 // per-vertex update magnitudes, pooled
	dvals  any        // *[]V per-vertex out-deltas (operation-based only)
	enq    int64      // Stamp at hand-off to the CPU queue
	// gatherV is the global vertex-update count when the gather read its
	// inputs; the scatter end subtracts it to observe per-block staleness
	// in milli-epochs. 0 when timing is disabled.
	gatherV int64
}

// runBlocked executes Async and Barrier modes. It reports whether the run
// converged (as opposed to hitting the MaxEpochs budget).
func (e *engine[V, M]) runBlocked() bool {
	nb := e.part.NumBlocks()
	if !e.resumed {
		e.st.ActivateAll(1)
	}
	scheduler, err := sched.New(e.cfg.Policy, e.st, e.cfg.Seed)
	if err != nil {
		// Config.Validate rejects unknown policies, so this is normally
		// unreachable — but a scheduler failure must surface as an error
		// from Run, never crash the process.
		e.fail(err)
		return false
	}

	// The task queues are small FIFOs, as on the HARPv2 prototype. Their
	// depth is the engine's staleness bound: a gather can run at most
	// ~2xNumPEs block-slots ahead of the scatter that publishes fresh
	// values, which keeps the asynchronous execution inside the bounded
	// delay that asynchronous BCD's convergence guarantee requires
	// (Sec. III-D) and preserves the Gauss-Seidel freshness that makes
	// small blocks converge faster (Sec. III-C). Deep queues would let
	// the gather pipeline race arbitrarily far ahead of scatter and
	// degenerate the engine toward Jacobi.
	qcap := func(workers int) int {
		c := e.cfg.QueueDepth
		if c == 0 {
			c = 2 * workers
		}
		if c > nb {
			c = nb
		}
		if c < 1 {
			c = 1
		}
		return c
	}
	accelQ := make(chan blockItem, qcap(e.cfg.NumPEs))
	cpuQ := make(chan task, qcap(e.cfg.NumScatter))
	e.tel.RegisterGauge("accel_queue_depth", func() float64 { return float64(len(accelQ)) })
	e.tel.RegisterGauge("cpu_queue_depth", func() float64 { return float64(len(cpuQ)) })

	var peWG, scatWG sync.WaitGroup
	for i := 0; i < e.cfg.NumPEs; i++ {
		peWG.Add(1)
		go func(i int) {
			defer peWG.Done()
			e.peWorker(i, accelQ, cpuQ)
		}(i)
	}
	hybridQ := accelQ
	if !e.cfg.Hybrid {
		hybridQ = nil
	}
	for j := 0; j < e.cfg.NumScatter; j++ {
		scatWG.Add(1)
		go func(j int) {
			defer scatWG.Done()
			e.scatterWorker(j, cpuQ, hybridQ)
		}(j)
	}

	converged := e.schedule(scheduler, accelQ)

	close(accelQ)
	peWG.Wait()
	close(cpuQ)
	scatWG.Wait()
	return converged
}

// schedule is the termination unit plus scheduler of the Sec. IV-C flow
// (steps 1-2): it selects blocks until the active list drains (converged)
// or the epoch budget is exhausted.
func (e *engine[V, M]) schedule(s sched.Scheduler, accelQ chan<- blockItem) bool {
	if e.cfg.Mode == Barrier {
		return e.scheduleBarrier(s, accelQ)
	}
	budget := e.maxVertexUpdates()
	spins := 0
	epochsSeen := 0
	for {
		e.stall("schedule")
		epochsSeen = e.fireEpochHook(epochsSeen)
		if e.failed() || e.cancelled() || e.vertexUpdates() >= budget {
			return false
		}
		if e.st.Quiescent() {
			return true
		}
		b, ok := s.Next()
		if !ok {
			// Nothing claimable: blocks are in flight. Yield and re-poll.
			idle(&spins)
			continue
		}
		spins = 0
		e.sh0.Add(telemetry.CtrTasksIssued, 1)
		if e.rec != nil {
			e.rec.Record(b)
		}
		if !e.sendBlock(accelQ, b) {
			return false
		}
	}
}

// sendBlock enqueues a claimed block, aborting if a worker failure or
// cancellation means the queue may never drain (all consumers of a stage
// can die when their panics are converted to run failures). The sender
// parks — no polling — so a full queue costs nothing but a goroutine.
func (e *engine[V, M]) sendBlock(accelQ chan<- blockItem, b int) bool {
	var cancel <-chan struct{}
	if e.ctx != nil {
		cancel = e.ctx.Done()
	}
	select {
	case accelQ <- blockItem{b: b, enq: e.tel.Stamp()}:
		return true
	case <-e.failCh:
		return false
	case <-cancel:
		return false
	}
}

// sendTask hands a finished gather-apply to the scatter stage with the
// same failure-aware discipline as sendBlock. Cancellation does not
// abort it: the scatter stage outlives the gather stage at teardown, so
// the send completes and the block retires cleanly in the partial result.
func (e *engine[V, M]) sendTask(cpuQ chan<- task, t task) bool {
	select {
	case cpuQ <- t:
		return true
	case <-e.failCh:
		return false
	}
}

// fireEpochHook invokes OnEpoch for every freshly completed
// epoch-equivalent, records a convergence sample into the telemetry
// registry, and returns the updated count.
func (e *engine[V, M]) fireEpochHook(seen int) int {
	if e.cfg.OnEpoch == nil && !e.live {
		return seen
	}
	n := int64(e.g.NumVertices())
	if n == 0 {
		return seen
	}
	for done := int(e.vertexUpdates() / n); seen < done; {
		seen++
		if e.cfg.OnEpoch != nil {
			e.cfg.OnEpoch(seen)
		}
		e.tel.RecordConvergence(seen, e.st.PendingMass(), e.st.NumActive())
	}
	return seen
}

// scheduleBarrier is the 'Barrier' baseline of Fig. 7: blocks are
// dispatched in waves and a memory barrier (full drain of the gather-
// apply-scatter chain) separates consecutive waves. Convergence behaviour
// matches Async — the same blocks run with the same update rule — but PEs
// idle at every wave tail.
func (e *engine[V, M]) scheduleBarrier(s sched.Scheduler, accelQ chan<- blockItem) bool {
	budget := e.maxVertexUpdates()
	spins := 0
	epochsSeen := 0
	for {
		e.stall("schedule")
		epochsSeen = e.fireEpochHook(epochsSeen)
		if e.failed() || e.cancelled() || e.vertexUpdates() >= budget {
			return false
		}
		if e.st.Quiescent() {
			return true
		}
		// Snapshot the active set: one wave is the blocks claimable *now*.
		// Blocks activated while the wave runs wait for the next wave —
		// that is what distinguishes synchronized execution from the
		// async engine, where they would be dispatched immediately.
		wave := 0
		for b := 0; b < e.part.NumBlocks(); b++ {
			if e.st.Active(b) && !e.st.InFlight(b) && e.st.Claim(b) {
				e.sh0.Add(telemetry.CtrTasksIssued, 1)
				if e.rec != nil {
					e.rec.Record(b)
				}
				if !e.sendBlock(accelQ, b) {
					return false
				}
				wave++
			}
		}
		if wave == 0 {
			idle(&spins)
			continue
		}
		spins = 0
		e.awaitDrain()
		if e.cfg.Sim != nil {
			e.cfg.Sim.Barrier() // model the wave barrier's idle time
		}
	}
}

// awaitDrain blocks until every issued task has completed its scatter,
// or a worker failure makes completion impossible.
func (e *engine[V, M]) awaitDrain() {
	spins := 0
	for e.tel.Total(telemetry.CtrTasksFinished) < e.tel.Total(telemetry.CtrTasksIssued) {
		if e.failed() {
			return
		}
		idle(&spins)
	}
}

// idle backs off a polling loop: first yields, then sleeps briefly.
func idle(spins *int) {
	*spins++
	if *spins < 64 {
		runtime.Gosched()
	} else {
		time.Sleep(10 * time.Microsecond)
	}
}

// peWorker is one accelerator PE (steps 3-7): dequeue block, gather-apply,
// hand off to the CPU task queue. It observes its queue wait and gather
// latency into its own telemetry shard; both calls are no-ops in the
// bare-counter mode.
func (e *engine[V, M]) peWorker(i int, accelQ <-chan blockItem, cpuQ chan<- task) {
	defer e.recoverToFailure()
	sh := &e.shards[1+i]
	ws := newScratch(e.prog)
	for it := range accelQ {
		e.stall("gather")
		now := e.tel.Stamp()
		sh.Observe(telemetry.StageAccelWait, now-it.enq)
		sh.Trace(telemetry.StageAccelWait, it.b, it.enq, now-it.enq)
		t, edges := e.gatherApply(it.b, ws, sh)
		if sim := e.cfg.Sim; sim != nil {
			lo, hi := e.part.VertexRange(it.b)
			sim.LeastLoadedPE().RunBlock(edges, edges*e.edgeBytes, int64(hi-lo)*e.valueBytes)
		}
		t.enq = e.tel.Stamp()
		sh.Observe(telemetry.StageGather, t.enq-now)
		sh.Trace(telemetry.StageGather, it.b, now, t.enq-now)
		if !e.sendTask(cpuQ, t) {
			return
		}
	}
}

// scatterWorker is one CPU thread (steps 8-11). With hybrid execution it
// also steals gather-apply tasks from the accelerator queue when no
// scatter work is pending (Sec. IV-B).
func (e *engine[V, M]) scatterWorker(j int, cpuQ <-chan task, hybridQ <-chan blockItem) {
	defer e.recoverToFailure()
	sh := &e.shards[1+e.cfg.NumPEs+j]
	ws := newScratch(e.prog)
	mass := make([]float64, e.part.NumBlocks())
	touched := make([]int, 0, 64)
	runHybrid := func(it blockItem, ok bool) bool {
		if !ok {
			return false
		}
		e.stall("gather")
		now := e.tel.Stamp()
		t, edges := e.gatherApply(it.b, ws, sh)
		if sim := e.cfg.Sim; sim != nil {
			sim.LeastLoadedCPU().RunGather(edges, edges*e.edgeBytes)
		}
		sh.Add(telemetry.CtrHybridBlocks, 1)
		t.enq = e.tel.Stamp()
		sh.Observe(telemetry.StageGather, t.enq-now)
		sh.Trace(telemetry.StageGather, it.b, now, t.enq-now)
		e.scatter(t, ws, mass, &touched, sh)
		return true
	}
	for {
		// Scatter work first: it retires in-flight blocks and produces
		// the activations every other stage feeds on.
		select {
		case t, ok := <-cpuQ:
			if !ok {
				return
			}
			e.scatter(t, ws, mass, &touched, sh)
			continue
		default:
		}
		hq := hybridQ
		if hq != nil && e.cfg.Sim != nil && !e.cfg.Sim.CPUHasSlack() {
			// Under the platform model, steal gather work only while the
			// host workers' modeled clocks trail the PEs' — the paper's
			// "runtime detects the CPU is under-utilized" condition
			// (Sec. IV-B). A host gather costs ~CPUGatherNsPerEdge per
			// edge, far more than the streaming PE path, so unconditional
			// stealing would slow the modeled system down.
			hq = nil
		}
		select {
		case t, ok := <-cpuQ:
			if !ok {
				return
			}
			e.scatter(t, ws, mass, &touched, sh)
		case it, ok := <-hq:
			if !runHybrid(it, ok) {
				hybridQ = nil // accelerator queue closed; drain cpuQ only
			}
		}
	}
}

// workerScratch holds per-worker reusable buffers so hot loops do not
// allocate.
type workerScratch[V, M any] struct {
	acc      M
	old, src V
	val      V
	buf      []uint64 // word-array transfer buffer
}

func newScratch[V, M any](prog bcd.Program[V, M]) *workerScratch[V, M] {
	words := prog.Codec().Words()
	if words < 2 {
		words = 2 // word.Array.RMW needs two transfer slots
	}
	return &workerScratch[V, M]{
		acc: prog.NewAccum(),
		buf: make([]uint64, words),
	}
}

// gatherApply processes block b (steps 4-6): stream the block's in-edge
// cache sequentially, run GATHER-APPLY per vertex, store new values, and
// record per-vertex deltas for the scatter stage. Work counters land in
// the calling worker's shard sh.
//
//abcd:hotpath
func (e *engine[V, M]) gatherApply(b int, ws *workerScratch[V, M], sh *telemetry.Shard) (task, int64) {
	lo, hi := e.part.VertexRange(b)
	deltasPtr := e.deltaPool.Get().(*[]float64)
	deltas := (*deltasPtr)[:hi-lo]
	var dvalsPtr *[]V
	var dvals []V
	if e.op != nil {
		dvalsPtr = e.dvalPool.Get().(*[]V)
		dvals = (*dvalsPtr)[:hi-lo]
	}
	var gatherV int64
	if e.live {
		gatherV = e.vertexUpdates()
	}
	// Stream the block's static edge range from the configured source —
	// one contiguous read per block task, by the pull-push layout.
	blo, bhi := e.part.EdgeRange(b)
	_, weights, release, err := e.edges.Block(lo, hi, blo, bhi)
	if err != nil {
		e.fail(err)
		for i := range deltas {
			deltas[i] = 0
		}
		t := task{block: b, deltas: deltasPtr, gatherV: gatherV}
		if dvalsPtr != nil {
			t.dvals = dvalsPtr
		}
		return t, 0
	}
	defer release()
	var edges int64
	for v := lo; v < hi; v++ {
		e.values.LoadBuf(int64(v), &ws.old, ws.buf)
		e.prog.ResetAccum(&ws.acc)
		slo, shi := e.g.InOffset(v), e.g.InOffset(v+1)
		for s := slo; s < shi; s++ {
			if e.op != nil {
				// Consume the pending delta: swap the slot to the zero
				// delta so concurrent scatters can keep accumulating.
				e.cache.SwapValue(s, e.op.ZeroDelta(), ws.buf, &ws.src)
			} else {
				e.cache.LoadBuf(s, &ws.src, ws.buf)
			}
			e.prog.EdgeGather(&ws.acc, ws.old, weights[s-blo], ws.src)
		}
		n := shi - slo
		edges += n
		newVal := e.prog.Apply(uint32(v), ws.old, &ws.acc, n, e.g)
		if e.prog.Delta(ws.old, newVal) == 0 {
			deltas[v-lo] = 0
			continue
		}
		if e.op != nil {
			dvals[v-lo] = e.op.OutDelta(uint32(v), ws.old, newVal, e.g)
			deltas[v-lo] = e.prog.Delta(ws.old, newVal)
		} else {
			// The gradient mass driving activation and Gauss-Southwell
			// priority is the change of the *scatter image* — the value
			// that will actually be written onto out-edges. For PageRank
			// that is delta/outdeg: using the raw vertex delta would
			// overweight hub sources by their out-degree and misguide
			// the priority rule.
			deltas[v-lo] = e.prog.Delta(
				e.prog.ScatterValue(uint32(v), ws.old, e.g),
				e.prog.ScatterValue(uint32(v), newVal, e.g))
		}
		e.values.StoreBuf(int64(v), newVal, ws.buf)
	}
	sh.Add(telemetry.CtrBlockUpdates, 1)
	sh.Add(telemetry.CtrVertexUpdates, int64(hi-lo))
	sh.Add(telemetry.CtrEdgesTraversed, edges)
	t := task{block: b, deltas: deltasPtr, gatherV: gatherV}
	if dvalsPtr != nil {
		t.dvals = dvalsPtr // avoid wrapping a typed nil in the interface
	}
	return t, edges
}

// scatter processes one finished block (steps 9-11): state-based updates
// are copied onto out-edge cache slots, Gauss-Southwell mass accumulates
// onto destination blocks, and the active list is updated. Marking the
// block done last keeps the termination unit's quiescence test sound.
// The CPU-queue wait, the scatter latency, and the block's staleness are
// observed into the calling worker's shard sh.
//
//abcd:hotpath
func (e *engine[V, M]) scatter(t task, ws *workerScratch[V, M], mass []float64, touched *[]int, sh *telemetry.Shard) {
	e.stall("scatter")
	start := e.tel.Stamp()
	sh.Observe(telemetry.StageCPUWait, start-t.enq)
	sh.Trace(telemetry.StageCPUWait, t.block, t.enq, start-t.enq)
	lo, hi := e.part.VertexRange(t.block)
	deltas := (*t.deltas)[:hi-lo]
	var dvals []V
	if t.dvals != nil {
		dvals = (*t.dvals.(*[]V))[:hi-lo]
	}
	var writes int64
	for v := lo; v < hi; v++ {
		d := deltas[v-lo]
		// State-based updates are self-healing, so sub-epsilon changes
		// can be dropped entirely. Operation-based deltas are mass that
		// would leak if dropped: scatter every nonzero change and use
		// epsilon only to gate activation below.
		if d <= e.cfg.Epsilon && (e.op == nil || d == 0) {
			continue
		}
		if e.op != nil {
			dval := dvals[v-lo]
			for i := e.g.OutOffset(v); i < e.g.OutOffset(v+1); i++ {
				e.cache.RMW(e.g.OutPos(i), ws.buf, &ws.val, func(cur V) V {
					return e.op.AccumulateDelta(cur, dval)
				})
				writes++
			}
		} else {
			e.values.LoadBuf(int64(v), &ws.val, ws.buf)
			sval := e.prog.ScatterValue(uint32(v), ws.val, e.g)
			for i := e.g.OutOffset(v); i < e.g.OutOffset(v+1); i++ {
				e.cache.StoreBuf(e.g.OutPos(i), sval, ws.buf)
				writes++
			}
		}
		if d <= e.cfg.Epsilon {
			continue // scattered, but not worth re-activating anyone
		}
		for i := e.g.OutOffset(v); i < e.g.OutOffset(v+1); i++ {
			tb := e.part.BlockOf(e.g.OutDst(i))
			if mass[tb] == 0 {
				*touched = append(*touched, tb) //abcdlint:ignore hotalloc,hotpath -- amortized: per-worker buffer, reset to [:0] below with capacity retained
			}
			mass[tb] += d
		}
	}
	// Step 11: update the destination blocks' active-list entries and
	// their pending gradient mass (the Sec. IV-B priority estimate).
	for _, tb := range *touched {
		e.st.Activate(tb, mass[tb])
		mass[tb] = 0
	}
	*touched = (*touched)[:0]
	sh.Add(telemetry.CtrScatterWrites, writes)
	if sim := e.cfg.Sim; sim != nil && writes > 0 {
		sim.LeastLoadedCPU().RunScatter(writes, writes*e.valueBytes)
	}
	e.deltaPool.Put(t.deltas)
	if t.dvals != nil {
		e.dvalPool.Put(t.dvals.(*[]V))
	}
	e.st.Done(t.block)
	sh.Add(telemetry.CtrTasksFinished, 1)
	if end := e.tel.Stamp(); e.live {
		sh.Observe(telemetry.StageScatter, end-start)
		sh.Trace(telemetry.StageScatter, t.block, start, end-start)
		if e.nv > 0 {
			sh.Observe(telemetry.StageStaleness, (e.vertexUpdates()-t.gatherV)*1000/e.nv)
		}
	}
}

// result decodes the final values and assembles statistics: Stats is the
// final merged snapshot of the run's telemetry registry.
func (e *engine[V, M]) result(converged bool, wall time.Duration) *Result[V] {
	n := e.g.NumVertices()
	vals := make([]V, n)
	buf := make([]uint64, e.values.Words())
	for v := 0; v < n; v++ {
		e.values.LoadBuf(int64(v), &vals[v], buf)
	}
	st := statsFromTelemetry(e.tel, n, converged, wall)
	if e.cfg.Sim != nil {
		st.SimTimeNs = e.cfg.Sim.SimTimeNs()
	}
	return &Result[V]{Values: vals, Stats: st}
}
