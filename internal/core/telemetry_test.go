package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"graphabcd/internal/bcd"
	"graphabcd/internal/sched"
	"graphabcd/internal/telemetry"
)

// TestEngineLiveTelemetry runs PageRank with a caller-owned registry and
// checks the full observability contract: the final Stats equal the
// registry's counter totals, the stage histograms saw every block, the
// convergence series recorded epoch samples, and the engine's gauges are
// present in a Snapshot.
func TestEngineLiveTelemetry(t *testing.T) {
	g := testGraph(t)
	reg := telemetry.New(telemetry.Options{Histograms: true})
	cfg := Config{BlockSize: 64, Mode: Async, Policy: sched.Priority,
		NumPEs: 3, NumScatter: 2, Epsilon: 1e-10, Telemetry: reg}
	res, err := Run[float64, float64](g, bcd.PageRank{}, cfg)
	if err != nil {
		t.Fatal(err)
	}

	totals := reg.CounterTotals()
	if totals[telemetry.CtrBlockUpdates] != res.Stats.BlockUpdates ||
		totals[telemetry.CtrVertexUpdates] != res.Stats.VertexUpdates ||
		totals[telemetry.CtrEdgesTraversed] != res.Stats.EdgesTraversed {
		t.Errorf("registry totals diverge from Stats: reg=%v stats=%+v", totals, res.Stats)
	}
	if res.Stats.BlockUpdates == 0 || res.Stats.EdgesTraversed == 0 {
		t.Fatalf("run did no work: %+v", res.Stats)
	}

	// Every processed block passes through gather and scatter exactly once,
	// so both histograms must count BlockUpdates observations.
	for _, st := range []telemetry.Stage{telemetry.StageGather, telemetry.StageScatter, telemetry.StageStaleness} {
		h := reg.StageHistogram(st)
		if h.Count != res.Stats.BlockUpdates {
			t.Errorf("stage %s count = %d, want %d", st.Name(), h.Count, res.Stats.BlockUpdates)
		}
	}
	// Queue waits: one accel-queue wait per issued block, one CPU-queue
	// wait per scatter task — same block count again.
	if h := reg.StageHistogram(telemetry.StageAccelWait); h.Count != res.Stats.BlockUpdates {
		t.Errorf("accel-wait count = %d, want %d", h.Count, res.Stats.BlockUpdates)
	}

	conv := reg.Convergence()
	if len(conv) == 0 {
		t.Error("live registry recorded no convergence samples")
	} else {
		last := conv[len(conv)-1]
		if last.Epoch < 1 || last.Residual < 0 {
			t.Errorf("suspicious final convergence sample: %+v", last)
		}
	}

	s := reg.Snapshot()
	for _, gauge := range []string{"active_blocks", "residual", "accel_queue_depth", "cpu_queue_depth"} {
		if _, ok := s.Gauges[gauge]; !ok {
			t.Errorf("gauge %q missing from snapshot (have %v)", gauge, s.Gauges)
		}
	}
	if s.Epochs <= 0 {
		t.Errorf("snapshot epochs = %g, want > 0", s.Epochs)
	}
}

// TestEngineTraceEndToEnd drives the sampled tracer through a real run and
// verifies the emitted file is loadable Chrome trace-event JSON containing
// complete events for every instrumented stage.
func TestEngineTraceEndToEnd(t *testing.T) {
	g := testGraph(t)
	var buf bytes.Buffer
	tr := telemetry.NewTracer(&buf, 1) // trace every block
	reg := telemetry.New(telemetry.Options{Histograms: true, Tracer: tr})
	cfg := Config{BlockSize: 64, Mode: Async, Policy: sched.Cyclic,
		NumPEs: 2, NumScatter: 1, Epsilon: 1e-8, Telemetry: reg}
	if _, err := Run[float64, float64](g, bcd.PageRank{}, cfg); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	seen := map[string]int{}
	for _, e := range events {
		if e["ph"] == "X" {
			seen[e["name"].(string)]++
		}
	}
	for _, stage := range []string{"gather", "scatter", "accel-wait", "cpu-wait"} {
		if seen[stage] == 0 && tr.Dropped() == 0 {
			t.Errorf("no %q events in trace (saw %v)", stage, seen)
		}
	}
}

// TestEngineBSPTelemetry checks the Barrier path reports through the same
// registry: sweeps count as block updates and vertex work is attributed.
func TestEngineBSPTelemetry(t *testing.T) {
	g := testGraph(t)
	reg := telemetry.New(telemetry.Options{Histograms: true})
	cfg := Config{BlockSize: 64, Mode: Barrier, Policy: sched.Cyclic,
		NumPEs: 2, NumScatter: 1, Epsilon: 1e-9, Telemetry: reg}
	res, err := Run[float64, float64](g, bcd.PageRank{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	totals := reg.CounterTotals()
	if totals[telemetry.CtrVertexUpdates] != res.Stats.VertexUpdates || res.Stats.VertexUpdates == 0 {
		t.Errorf("BSP vertex updates: reg=%d stats=%d", totals[telemetry.CtrVertexUpdates], res.Stats.VertexUpdates)
	}
}
