package core

import (
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"graphabcd/internal/checkpoint"
	"graphabcd/internal/obslog"
	"graphabcd/internal/telemetry"
)

// countingWriter counts encoded bytes on their way to the store, so the
// checkpoint cost counters reflect actual state file sizes.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// checkpointer drives the single-process crash-safety loop: every
// Config.Checkpoint.Interval it captures a fuzzy snapshot of the engine —
// vertex values, scheduler priorities and active flags, progress counters
// — while the workers keep running, and commits it through the store.
// Asynchronous BCD's convergence analysis is what licenses the fuzziness:
// a snapshot whose words were written at slightly different moments is
// just another bounded-staleness iterate, and resuming from it converges
// to the same fixed point (DESIGN.md §12).
type checkpointer[V, M any] struct {
	e        *engine[V, M]
	store    checkpoint.Store
	interval time.Duration
	runID    string
	epoch    uint64 // last written checkpoint epoch

	digest   string
	confHash string

	// Capture buffers, allocated once: a checkpoint must not grow the
	// engine's allocation footprint every interval.
	valbuf []uint64
	pribuf []uint64
	actbuf []byte
}

// newCheckpointer builds the run's checkpointer, or returns nil when
// Config.Checkpoint is disabled (the zero value) — the nil checkpointer
// costs nothing anywhere.
func newCheckpointer[V, M any](e *engine[V, M], cc Checkpoint) (*checkpointer[V, M], error) {
	if !cc.enabled() {
		return nil, nil
	}
	if e.op != nil {
		// An operation-based program's edge slots hold in-flight delta
		// mass; a fuzzy value snapshot cannot conserve it, so a resumed
		// run would converge to the wrong fixed point. Refuse rather than
		// resume wrong.
		obslog.L().Warn("checkpoint request refused",
			"event", "ckpt.refused", "program", e.prog.Name(),
			"reason", "operation-based program: in-flight delta mass is not capturable")
		return nil, fmt.Errorf("core: checkpointing is not supported for operation-based program %q (in-flight delta mass is not captured); use its state-based form", e.prog.Name())
	}
	store := cc.Store
	if store == nil {
		ds, err := checkpoint.NewDirStore(cc.Dir)
		if err != nil {
			return nil, err
		}
		store = ds
	}
	n := int64(e.g.NumVertices())
	nb := int64(e.part.NumBlocks())
	ck := &checkpointer[V, M]{
		e:        e,
		store:    store,
		interval: cc.Interval,
		digest:   checkpoint.DigestGraph(e.g),
		confHash: checkpoint.ConfigHash(e.prog.Name(), n, nb, e.values.Words(), 1),
		valbuf:   make([]uint64, n*int64(e.values.Words())),
		pribuf:   make([]uint64, nb),
		actbuf:   make([]byte, nb),
	}
	ck.runID = cc.RunID
	if ck.runID == "" {
		// A stable derived id: rerunning the same job on the same graph
		// lands in the same run directory, which is what makes a bare
		// `-resume latest` after a crash do the right thing.
		ck.runID = fmt.Sprintf("%s-%.8s%.8s", e.prog.Name(), ck.digest, ck.confHash)
	}
	return ck, nil
}

// resume restores the engine from the named run's last committed epoch:
// vertex values and progress counters seed from the decoded state, the
// edge caches are rebuilt by re-scattering the restored values (the PR 2
// failover discipline), and every block is activated with its restored
// priority mass. Re-activating even blocks the checkpoint saw inactive is
// the fuzzy-capture correctness rule: an activation racing the capture
// may be missing from the snapshot, and one redundant sweep of a
// self-healing state-based program is cheap insurance against a silently
// premature fixed point.
func (ck *checkpointer[V, M]) resume(resumeID string) error {
	e := ck.e
	var m *checkpoint.Manifest
	var err error
	if resumeID == "latest" {
		m, err = ck.store.Latest()
	} else {
		m, err = ck.store.Load(resumeID)
	}
	if err != nil {
		return err
	}
	n := int64(e.g.NumVertices())
	nb := int64(e.part.NumBlocks())
	switch {
	case m.Program != e.prog.Name():
		return fmt.Errorf("core: resume %s: checkpoint is from program %q, this run is %q", m.RunID, m.Program, e.prog.Name())
	case m.GraphDigest != ck.digest:
		return fmt.Errorf("core: resume %s: checkpoint graph digest %s does not match this graph (%s)", m.RunID, m.GraphDigest, ck.digest)
	case m.ConfigHash != ck.confHash:
		return fmt.Errorf("core: resume %s: checkpoint config hash %s does not match this run (%s); block size, program, and graph must be identical", m.RunID, m.ConfigHash, ck.confHash)
	case m.Nodes != 1:
		return fmt.Errorf("core: resume %s: checkpoint is from a %d-node cluster run; resume it with the distributed runtime", m.RunID, m.Nodes)
	case m.NumVertices != n || m.NumBlocks != nb:
		return fmt.Errorf("core: resume %s: checkpoint shape %dx%d, run is %dx%d", m.RunID, m.NumVertices, m.NumBlocks, n, nb)
	}
	rc, err := ck.store.ReadState(m.RunID, m.Epoch, 0)
	if err != nil {
		return err
	}
	st, err := checkpoint.Decode(rc)
	_ = rc.Close()
	if err != nil {
		return fmt.Errorf("core: resume %s epoch %d: %w", m.RunID, m.Epoch, err)
	}
	if st.Nodes != 1 || st.NumVertices != n || st.NumBlocks != nb || st.Words != e.values.Words() ||
		st.VertexLo != 0 || st.VertexHi != n || st.BlockLo != 0 || st.BlockHi != nb {
		return fmt.Errorf("core: resume %s epoch %d: state shape does not match the manifest", m.RunID, m.Epoch)
	}
	e.values.RestoreWords(0, st.Values)
	ck.rebuildCache()
	if err := e.failure.Load(); err != nil {
		return *err // an edge-source failure during the rebuild
	}
	// Seed the progress counters so Stats and the MaxEpochs budget span
	// the whole logical run, not just the post-resume segment.
	e.sh0.Add(telemetry.CtrVertexUpdates, st.Counters.VertexUpdates)
	e.sh0.Add(telemetry.CtrBlockUpdates, st.Counters.BlockUpdates)
	e.sh0.Add(telemetry.CtrEdgesTraversed, st.Counters.EdgesTraversed)
	for b := 0; b < int(nb); b++ {
		e.st.Activate(b, math.Float64frombits(st.Priority[b]))
	}
	e.resumed = true
	ck.runID = m.RunID
	ck.epoch = m.Epoch
	obslog.L().Info("resumed from checkpoint",
		"event", "ckpt.resume", "runID", m.RunID, "epoch", m.Epoch)
	return nil
}

// rebuildCache re-derives every in-edge cache slot from the restored
// vertex values: slot s caches the scatter image of its source vertex.
// The cache is deliberately not checkpointed — it is |E| derived words
// whose ground truth is the |V| values array, and re-scattering is the
// same O(E) pass initArrays already pays.
func (ck *checkpointer[V, M]) rebuildCache() {
	e := ck.e
	n := e.g.NumVertices()
	workers := e.cfg.NumPEs + e.cfg.NumScatter
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			vlo, vhi := w*n/workers, (w+1)*n/workers
			if vlo == vhi {
				return
			}
			slo, shi := e.g.InOffset(vlo), e.g.InOffset(vhi)
			srcs, _, release, err := e.edges.Block(vlo, vhi, slo, shi)
			if err != nil {
				e.fail(err)
				return
			}
			defer release()
			buf := make([]uint64, e.values.Words())
			var val V
			for s := slo; s < shi; s++ {
				src := srcs[s-slo]
				e.values.LoadBuf(int64(src), &val, buf)
				e.cache.StoreBuf(s, e.prog.ScatterValue(src, val, e.g), buf)
			}
		}(w)
	}
	wg.Wait()
}

// loop runs the periodic capture until the run stops. A capture failure
// fails the run: the caller asked for durability, so losing it silently
// is not an option.
func (ck *checkpointer[V, M]) loop(stop <-chan struct{}) {
	t := time.NewTicker(ck.interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		if err := ck.capture(); err != nil {
			ck.e.fail(fmt.Errorf("core: checkpoint epoch %d: %w", ck.epoch+1, err))
			return
		}
	}
}

// capture writes one checkpoint epoch and commits its manifest. Workers
// are never paused: values, priorities, and flags are read with the same
// atomics the workers use, and the watchdog is told (via ckptGen) not to
// count the capture's I/O time as an engine stall.
func (ck *checkpointer[V, M]) capture() error {
	e := ck.e
	e.ckptGen.Add(1) // odd: capture in progress
	defer e.ckptGen.Add(1)
	ckStart := e.tel.Stamp()
	n := int64(e.g.NumVertices())
	nb := e.part.NumBlocks()
	e.values.SnapshotWords(0, n, ck.valbuf)
	e.st.SnapshotBlocks(0, nb, ck.pribuf, ck.actbuf)
	st := &checkpoint.State{
		NumVertices: n, NumBlocks: int64(nb), Words: e.values.Words(),
		Node: 0, Nodes: 1,
		VertexLo: 0, VertexHi: n,
		BlockLo: 0, BlockHi: int64(nb),
		Values: ck.valbuf, Priority: ck.pribuf, Active: ck.actbuf,
		Counters: checkpoint.Counters{
			VertexUpdates:  e.tel.Total(telemetry.CtrVertexUpdates),
			BlockUpdates:   e.tel.Total(telemetry.CtrBlockUpdates),
			EdgesTraversed: e.tel.Total(telemetry.CtrEdgesTraversed),
		},
	}
	epoch := ck.epoch + 1
	var written int64
	if err := ck.store.WriteState(ck.runID, epoch, 0, func(w io.Writer) error {
		cw := &countingWriter{w: w}
		err := checkpoint.Encode(cw, st)
		written = cw.n
		return err
	}); err != nil {
		return err
	}
	if err := ck.store.Commit(&checkpoint.Manifest{
		RunID: ck.runID, Epoch: epoch, Nodes: 1,
		Program: e.prog.Name(), GraphDigest: ck.digest, ConfigHash: ck.confHash,
		NumVertices: n, NumBlocks: int64(nb),
		SavedUnixMs: time.Now().UnixMilli(),
	}); err != nil {
		return err
	}
	// The epoch's durability cost, observed on the checkpoint goroutine's
	// shard (sh0 belongs to the engine's housekeeping goroutines, whose
	// counter slots are atomics — concurrent adds are safe).
	e.sh0.Add(telemetry.CtrCkptEpochs, 1)
	e.sh0.Add(telemetry.CtrCkptBytes, written)
	e.sh0.Observe(telemetry.StageCkpt, e.tel.Stamp()-ckStart)
	obslog.L().Info("checkpoint epoch committed",
		"event", "ckpt.commit", "runID", ck.runID, "epoch", epoch, "bytes", written)
	ck.epoch = epoch
	return nil
}
