// Package chaos provides a seeded fault-injection transport for the
// cluster layer: a drop-in cluster.Transport that loses, duplicates,
// delays, and thereby reorders messages, and partitions node pairs — the
// fault classes the paper's state-based, idempotent update discipline
// (Sec. III, IV-A3) claims to tolerate by construction. Related theory
// backs the experiment: asynchronous coordinate descent converges under
// stochastic, even unbounded-in-probability delays (Sun, Hannah & Yin
// 2017), and Maiter's state-vs-delta analysis explains why redelivery is
// safe exactly when messages carry state.
//
// All fault decisions draw from one seeded PRNG, so a given seed yields
// a reproducible fault mix (goroutine interleaving still varies — the
// sequence of decisions is deterministic, their assignment to concurrent
// senders is not). The transport never reaches into cluster internals;
// it only moves opaque envelopes, which is what makes it an honest model
// of a faulty network.
package chaos

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"graphabcd/internal/cluster"
	"graphabcd/internal/obslog"
)

// Config parameterizes the injected faults. The zero value injects
// nothing and behaves like a perfect transport.
type Config struct {
	// Seed feeds the fault PRNG; the same seed reproduces the same
	// decision sequence.
	Seed uint64
	// DropRate is the probability an envelope is silently lost.
	DropRate float64
	// DupRate is the probability an envelope is delivered twice.
	DupRate float64
	// MaxDelay is the upper bound of the uniform per-delivery jitter.
	// Because each copy draws its own delay, jitter also reorders
	// messages — two batches sent back-to-back can arrive swapped.
	MaxDelay time.Duration
	// Partitions lists unordered node pairs that cannot exchange any
	// message, in either direction, for the whole run. A partition that
	// separates communicating live nodes is the one fault the cluster
	// does not tolerate: its retries give up at the delivery deadline
	// and the run fails loudly.
	Partitions [][2]int
	// AfterBatches, when positive, fires OnFault (in its own goroutine)
	// once, as soon as this many envelopes have entered the transport —
	// the hook chaos tests use to kill a node mid-run at a reproducible
	// point in the message stream.
	AfterBatches int64
	// OnFault is the callback AfterBatches triggers.
	OnFault func()
}

// Transport implements cluster.Transport with injected faults.
type Transport struct {
	cfg     Config
	deliver func(int, cluster.Envelope)

	mu  sync.Mutex // guards rng only; never held across a delivery
	rng *rand.Rand

	// sendMu fences senders against Close: Send holds it for read, and
	// Close takes the write side before waiting on wg, so every wg.Add
	// is ordered before the Wait (concurrent Add/Wait on a WaitGroup
	// that may be at zero is a race). Uncontended in steady state.
	sendMu     sync.RWMutex
	closed     atomic.Bool
	wg         sync.WaitGroup // in-flight delayed deliveries
	slots      chan struct{}  // bounds in-flight delayed deliveries (backpressure)
	sends      atomic.Int64
	dropped    atomic.Int64
	duplicated atomic.Int64
	fired      atomic.Bool

	partitioned map[[2]int]bool
}

// New builds a faulty transport. Pass it as cluster.Config.Transport.
func New(cfg Config) *Transport {
	t := &Transport{
		cfg:         cfg,
		rng:         rand.New(rand.NewSource(int64(cfg.Seed))),
		partitioned: make(map[[2]int]bool, len(cfg.Partitions)),
		slots:       make(chan struct{}, 2048),
	}
	for _, p := range cfg.Partitions {
		a, b := p[0], p[1]
		if a > b {
			a, b = b, a
		}
		t.partitioned[[2]int{a, b}] = true
	}
	obslog.L().Info("chaos transport armed",
		"event", "chaos.config", "seed", cfg.Seed,
		"dropRate", cfg.DropRate, "dupRate", cfg.DupRate,
		"maxDelay", cfg.MaxDelay, "partitions", len(cfg.Partitions),
		"afterBatches", cfg.AfterBatches)
	return t
}

// Bind implements cluster.Transport.
func (t *Transport) Bind(numNodes int, deliver func(int, cluster.Envelope)) {
	t.deliver = deliver
}

// Send implements cluster.Transport: it rolls the fault dice under the
// seeded PRNG and delivers zero, one, or two copies of e, each after its
// own jitter.
func (t *Transport) Send(from, to int, e cluster.Envelope) {
	t.sendMu.RLock()         //abcdlint:ignore hotpath -- Close fence: uncontended reader lock, write side taken once at teardown
	defer t.sendMu.RUnlock() //abcdlint:ignore hotpath -- Close fence: see the matching RLock above
	if t.closed.Load() {
		return
	}
	if n := t.sends.Add(1); t.cfg.AfterBatches > 0 && n >= t.cfg.AfterBatches &&
		t.cfg.OnFault != nil && t.fired.CompareAndSwap(false, true) {
		// The callback typically calls Control.FailNode, which pauses
		// the world — run it off the sender's goroutine so a worker
		// never deadlocks against its own fault.
		obslog.L().Warn("injected fault fired",
			"event", "chaos.fault_fired", "afterBatches", t.cfg.AfterBatches, "sends", n)
		go t.cfg.OnFault()
	}
	a, b := from, to
	if a > b {
		a, b = b, a
	}
	if t.partitioned[[2]int{a, b}] {
		t.dropped.Add(1)
		return
	}
	t.mu.Lock() //abcdlint:ignore hotpath -- fault injector: the lock guards the shared rng behind deterministic drop/dup/jitter draws; chaos wraps only test transports
	drop := t.rng.Float64() < t.cfg.DropRate
	dup := t.rng.Float64() < t.cfg.DupRate
	d1 := t.jitterLocked()
	d2 := t.jitterLocked()
	t.mu.Unlock() //abcdlint:ignore hotpath -- fault injector: see the matching Lock above
	if drop {
		t.dropped.Add(1)
	} else {
		t.post(to, e, d1)
	}
	if dup {
		t.duplicated.Add(1)
		t.post(to, e, d2)
	}
}

// jitterLocked draws one uniform delivery delay; callers hold mu.
func (t *Transport) jitterLocked() time.Duration {
	if t.cfg.MaxDelay <= 0 {
		return 0
	}
	return time.Duration(t.rng.Int63n(int64(t.cfg.MaxDelay)))
}

// post delivers one copy of e after d, on a fresh goroutine when a delay
// is due so senders do not serialize on injected latency. In-flight
// delayed deliveries are bounded by the slots semaphore: a real network
// has finite buffering, and without this cap a fast sender under a slow
// receiver (e.g. the race detector's slowdown) can park an unbounded
// goroutine population and push apply latency past the retry deadline.
// Blocking the sender here is the backpressure that keeps the producer
// and consumer rates coupled.
//
// Acks are exempt from the cap: they are sent by the appliers — the very
// consumers that drain the inboxes the capped data deliveries wait on —
// so an applier blocking on a slot held by a delivery waiting for that
// applier would deadlock the whole mesh. Ack goroutines are bounded by
// the applied-data rate and live at most one jitter interval.
func (t *Transport) post(to int, e cluster.Envelope, d time.Duration) {
	if d <= 0 {
		t.deliver(to, e)
		return
	}
	if !e.IsAck() {
		t.slots <- struct{}{}
	}
	t.wg.Add(1)
	go func(to int, e cluster.Envelope, d time.Duration) {
		defer t.wg.Done()
		if !e.IsAck() {
			defer func() { <-t.slots }()
		}
		time.Sleep(d)
		if !t.closed.Load() {
			t.deliver(to, e)
		}
	}(to, e, d)
}

// Close implements cluster.Transport: it stops new traffic and waits for
// every delayed delivery goroutine to finish or discard its envelope.
func (t *Transport) Close() {
	// The write side waits out every in-flight Send, so after the store
	// no new delivery goroutine can register; release before Wait so the
	// appliers' late ack Sends (no-ops now) never queue behind it.
	t.sendMu.Lock()
	t.closed.Store(true)
	t.sendMu.Unlock()
	t.wg.Wait()
}

// FaultCounts implements cluster.FaultCounter; the cluster folds the
// counts into Stats.BatchesDropped and Stats.BatchesDuplicated.
func (t *Transport) FaultCounts() (dropped, duplicated int64) {
	return t.dropped.Load(), t.duplicated.Load()
}

// Sends returns how many envelopes have entered the transport.
func (t *Transport) Sends() int64 { return t.sends.Load() }
