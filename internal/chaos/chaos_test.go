// Convergence equivalence under injected faults: the experiments backing
// DESIGN.md §8. State-based programs must reach the same fixed point
// through a transport that drops 20% of messages, duplicates 10%,
// reorders via per-delivery jitter, and loses a node mid-run — because
// every mechanism the cluster layers on top (at-least-once retries,
// write-stamped applies, failover re-scatter) exists to make exactly
// that true.
package chaos_test

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"graphabcd/internal/bcd"
	"graphabcd/internal/chaos"
	"graphabcd/internal/cluster"
	"graphabcd/internal/gen"
	"graphabcd/internal/graph"
)

func chaosGraph(t *testing.T, seed uint64) *graph.Graph {
	t.Helper()
	cfg := gen.DefaultRMAT(9, 6, seed)
	cfg.MaxWeight = 16
	g, err := gen.RMAT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// faultyCfg wires a node cluster to the standard fault mix: 20% drop,
// 10% duplication, and delivery jitter wide enough to reorder batches.
// killNode, when >= 0, is failed after the transport has carried
// afterBatches envelopes.
func faultyCfg(nodes int, seed uint64, killNode int) cluster.Config {
	tcfg := chaos.Config{
		Seed:     seed,
		DropRate: 0.20,
		DupRate:  0.10,
		MaxDelay: 300 * time.Microsecond,
	}
	// The Control handle arrives via OnStart; the fault trigger fires on
	// its own goroutine from inside the transport, so hand the handle
	// over through a buffered channel.
	ctl := make(chan cluster.Control, 1)
	if killNode >= 0 {
		tcfg.AfterBatches = 20
		tcfg.OnFault = func() {
			c := <-ctl
			// An error here means the kill lost a race (run already
			// stopping); the Stats.NodesFailed assertions catch a kill
			// that silently never happened.
			_ = c.FailNode(killNode)
		}
	}
	cfg := cluster.Config{
		Nodes:          nodes,
		BlockSize:      32,
		WorkersPerNode: 2,
		Epsilon:        1e-12,
		BatchSize:      8,
		RetryBase:      500 * time.Microsecond,
		Transport:      chaos.New(tcfg),
	}
	if killNode >= 0 {
		cfg.OnStart = func(c cluster.Control) { ctl <- c }
	}
	return cfg
}

func TestChaosPageRankEquivalence(t *testing.T) {
	g := chaosGraph(t, 77)
	want := bcd.RefPageRank(g, 0.85, 1e-13, 1000)
	cfg := faultyCfg(4, 1, 2)
	res, err := cluster.Run[float64, float64](context.Background(), g, bcd.PageRank{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Converged {
		t.Fatal("did not converge under chaos")
	}
	for v := range want {
		if d := math.Abs(res.Values[v] - want[v]); d > 1e-7 {
			t.Fatalf("rank[%d] off by %g under chaos", v, d)
		}
	}
	if res.Stats.NodesFailed != 1 {
		t.Fatalf("NodesFailed = %d, want 1", res.Stats.NodesFailed)
	}
	if res.Stats.BatchesDropped == 0 || res.Stats.BatchesDuplicated == 0 {
		t.Fatalf("fault counters empty: dropped=%d duplicated=%d",
			res.Stats.BatchesDropped, res.Stats.BatchesDuplicated)
	}
	if res.Stats.BatchesRetried == 0 {
		t.Fatal("20% drop produced no retries")
	}
}

func TestChaosSSSPEquivalence(t *testing.T) {
	g := chaosGraph(t, 78)
	src := uint32(3)
	want := bcd.RefSSSP(g, src)
	cfg := faultyCfg(3, 2, 1)
	cfg.Epsilon = 0
	res, err := cluster.Run[float64, float64](context.Background(), g, bcd.SSSP{Source: src}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		got := res.Values[v]
		if got != want[v] && !(math.IsInf(got, 1) && math.IsInf(want[v], 1)) {
			t.Fatalf("dist[%d] = %g, want %g under chaos", v, got, want[v])
		}
	}
}

func TestChaosCCEquivalence(t *testing.T) {
	g := chaosGraph(t, 79)
	want := bcd.RefCC(g)
	cfg := faultyCfg(3, 3, 0)
	cfg.Epsilon = 0
	res, err := cluster.Run[uint64, uint64](context.Background(), g, bcd.CC{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if res.Values[v] != want[v] {
			t.Fatalf("cc[%d] = %d, want %d under chaos", v, res.Values[v], want[v])
		}
	}
}

// Drop-only chaos isolates the at-least-once machinery: every lost batch
// must be retransmitted until acked, and the fixed point must come out
// exact — no faults papered over by the epsilon threshold.
func TestChaosAtLeastOnceAccounting(t *testing.T) {
	g := chaosGraph(t, 80)
	want := bcd.RefPageRank(g, 0.85, 1e-13, 1000)
	tr := chaos.New(chaos.Config{Seed: 9, DropRate: 0.25})
	cfg := cluster.Config{
		Nodes:          4,
		BlockSize:      32,
		WorkersPerNode: 2,
		Epsilon:        1e-12,
		BatchSize:      8,
		RetryBase:      500 * time.Microsecond,
		Transport:      tr,
	}
	res, err := cluster.Run[float64, float64](context.Background(), g, bcd.PageRank{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Converged {
		t.Fatal("did not converge under drop-only chaos")
	}
	if res.Stats.BatchesRetried < res.Stats.BatchesDropped {
		t.Fatalf("retries (%d) must cover at least the drops (%d)",
			res.Stats.BatchesRetried, res.Stats.BatchesDropped)
	}
	for v := range want {
		if d := math.Abs(res.Values[v] - want[v]); d > 1e-7 {
			t.Fatalf("rank[%d] off by %g", v, d)
		}
	}
}

// A partition separating live nodes is the declared limit of the fault
// model: retries cannot cross it, so the run must fail loudly at the
// retry deadline instead of hanging in a quiescence livelock.
func TestChaosPartitionExceedsDeadline(t *testing.T) {
	g := chaosGraph(t, 81)
	tr := chaos.New(chaos.Config{Seed: 4, Partitions: [][2]int{{0, 1}}})
	cfg := cluster.Config{
		Nodes:          2,
		BlockSize:      32,
		WorkersPerNode: 2,
		Epsilon:        1e-12,
		BatchSize:      8,
		RetryBase:      time.Millisecond,
		RetryDeadline:  50 * time.Millisecond,
		Transport:      tr,
	}
	start := time.Now()
	_, err := cluster.Run[float64, float64](context.Background(), g, bcd.PageRank{}, cfg)
	if err == nil {
		t.Fatal("partitioned run must fail at the retry deadline")
	}
	if !strings.Contains(err.Error(), "undelivered") {
		t.Fatalf("error should name the undelivered batch, got: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Fatalf("partition detection took %v", elapsed)
	}
}
