// Package netproxy is a packet-mangling TCP proxy for torturing the
// socket transport: it forwards length-prefixed frames between a client
// and a fixed target while dropping, duplicating, delaying, splitting,
// and corrupting them mid-stream. Where the chaos transport injects
// faults above the wire, netproxy injects them below it — a corrupted
// frame must die at the receiver's CRC check, a killed connection must
// come back through the dial backoff, and the engine's at-least-once
// accounting must absorb all of it without changing the fixed point.
//
// The proxy understands just enough of the frame format (little-endian
// u32 body length, body, u32 CRC trailer) to mangle on frame boundaries;
// a stream that stops looking like frames is passed through verbatim.
package netproxy

import (
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

const (
	frameLenSize = 4
	frameCRCSize = 4
	maxFrameBody = 1 << 20
)

// Config sets the fault mix. All rates are per-frame probabilities in
// [0, 1]; the zero value forwards everything untouched.
type Config struct {
	// Seed makes the per-connection fault schedule reproducible.
	Seed uint64
	// DropRate silently discards a frame.
	DropRate float64
	// DupRate forwards a frame twice back to back.
	DupRate float64
	// CorruptRate flips one bit anywhere in the frame — length prefix,
	// body, or checksum — before forwarding. A body or checksum hit
	// must die at the receiver's CRC check (frame dropped, stream
	// alive); a length-prefix hit desyncs the stream and must kill the
	// connection through to the reconnect path.
	CorruptRate float64
	// SplitRate writes a frame in two separate segments, forcing the
	// receiver through its partial-read path. Loopback TCP disables
	// Nagle, so the segments arrive as distinct reads without any pause.
	SplitRate float64
	// DelayRate holds a frame for a uniform random duration up to
	// MaxDelay before forwarding it. The delay is head-of-line for the
	// whole stream, and the OS cannot sleep for less than roughly a
	// millisecond, so this must stay a sampled fault — delaying every
	// frame would throttle the wire to under a thousand frames a second
	// and starve the engine rather than stress it.
	DelayRate float64
	// MaxDelay bounds the sampled per-frame delay.
	MaxDelay time.Duration
}

// Counts reports what the proxy has done to the traffic so far.
type Counts struct {
	Frames, Dropped, Duplicated, Corrupted, Split, Delayed int64
	// Conns counts client connections accepted over the proxy's life.
	Conns int64
}

// Proxy is one listening socket fronting one target address. Every
// accepted connection gets an independent mangling pipeline seeded from
// Config.Seed and the connection ordinal.
type Proxy struct {
	target string
	cfg    Config
	ln     net.Listener

	done   chan struct{}
	closed atomic.Bool
	wg     sync.WaitGroup

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	frames, dropped, duplicated atomic.Int64
	corrupted, split, delayed   atomic.Int64
	accepted                    atomic.Int64
}

// New starts a proxy on a loopback ephemeral port forwarding to target.
func New(target string, cfg Config) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		target: target,
		cfg:    cfg,
		ln:     ln,
		done:   make(chan struct{}),
		conns:  make(map[net.Conn]struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the address clients should dial instead of the target.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Counts snapshots the fault counters.
func (p *Proxy) Counts() Counts {
	return Counts{
		Frames: p.frames.Load(), Dropped: p.dropped.Load(),
		Duplicated: p.duplicated.Load(), Corrupted: p.corrupted.Load(),
		Split: p.split.Load(), Delayed: p.delayed.Load(),
		Conns: p.accepted.Load(),
	}
}

// CutConns severs every live proxied connection without stopping the
// proxy; clients reconnect through their backoff path.
func (p *Proxy) CutConns() {
	p.connMu.Lock()
	for c := range p.conns {
		_ = c.Close()
	}
	p.connMu.Unlock()
}

// Close stops accepting, severs everything, and joins the pipelines.
func (p *Proxy) Close() {
	if !p.closed.CompareAndSwap(false, true) {
		return
	}
	close(p.done)
	_ = p.ln.Close()
	p.CutConns()
	p.wg.Wait()
}

func (p *Proxy) track(c net.Conn) bool {
	p.connMu.Lock()
	defer p.connMu.Unlock()
	if p.closed.Load() {
		_ = c.Close()
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	_ = c.Close()
	p.connMu.Lock()
	delete(p.conns, c)
	p.connMu.Unlock()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		id := p.accepted.Add(1)
		if !p.track(client) {
			return
		}
		p.wg.Add(1)
		go p.pipe(client, id)
	}
}

// pipe connects one accepted client to a fresh target connection:
// client-to-target traffic runs through the frame mangler, the return
// direction (idle in the transport's one-way protocol) copies verbatim.
// Either side failing tears down both.
func (p *Proxy) pipe(client net.Conn, id int64) {
	defer p.wg.Done()
	defer p.untrack(client)
	target, err := net.DialTimeout("tcp", p.target, time.Second)
	if err != nil {
		return
	}
	// Keep the kernel windows small on both hops: the proxy exists to
	// make faults observable, and fat autotuned socket buffers would let
	// a fast sender park megabytes of frames that die unseen when a
	// corruption kill severs the connection.
	for _, c := range []net.Conn{client, target} {
		if tc, ok := c.(*net.TCPConn); ok {
			_ = tc.SetReadBuffer(32 << 10)
			_ = tc.SetWriteBuffer(32 << 10)
		}
	}
	if !p.track(target) {
		return
	}
	defer p.untrack(target)
	reverse := make(chan struct{})
	go func() {
		defer close(reverse)
		_, _ = io.Copy(client, target)
		// A dead target must not leave the mangler blocked on a read
		// from a client that is waiting for the target to talk first.
		_ = client.Close()
	}()
	p.mangle(client, target, rand.New(rand.NewSource(int64(p.cfg.Seed)+id)))
	_ = target.Close()
	<-reverse
}

// mangle is the frame pipeline: read one frame from src, roll the fault
// dice, forward to dst. Anything that stops parsing as frames falls back
// to a verbatim copy of the remaining stream.
func (p *Proxy) mangle(src io.Reader, dst io.Writer, rng *rand.Rand) {
	// One fixed-size buffer holds the largest legal frame; the length
	// word is bounds-checked against it before any read, so a hostile
	// or desynced length never drives an allocation.
	buf := make([]byte, frameLenSize+maxFrameBody+frameCRCSize)
	for {
		hdr := buf[:frameLenSize]
		if _, err := io.ReadFull(src, hdr); err != nil {
			return
		}
		n := int(uint32(hdr[0]) | uint32(hdr[1])<<8 | uint32(hdr[2])<<16 | uint32(hdr[3])<<24)
		if n < 1 || n > maxFrameBody {
			// Desync: not our framing. Forward the stream untouched.
			if _, err := dst.Write(hdr); err != nil {
				return
			}
			_, _ = io.Copy(dst, src)
			return
		}
		frame := buf[:frameLenSize+n+frameCRCSize]
		if _, err := io.ReadFull(src, frame[frameLenSize:]); err != nil {
			return
		}
		p.frames.Add(1)

		if p.cfg.MaxDelay > 0 && rng.Float64() < p.cfg.DelayRate {
			p.delayed.Add(1)
			time.Sleep(time.Duration(rng.Int63n(int64(p.cfg.MaxDelay))))
		}
		if rng.Float64() < p.cfg.DropRate {
			p.dropped.Add(1)
			continue
		}
		if rng.Float64() < p.cfg.CorruptRate {
			p.corrupted.Add(1)
			bit := rng.Intn(len(frame) * 8)
			frame[bit/8] ^= 1 << (bit % 8)
		}
		copies := 1
		if rng.Float64() < p.cfg.DupRate {
			p.duplicated.Add(1)
			copies = 2
		}
		for c := 0; c < copies; c++ {
			if rng.Float64() < p.cfg.SplitRate {
				p.split.Add(1)
				cut := 1 + rng.Intn(len(frame)-1)
				if _, err := dst.Write(frame[:cut]); err != nil {
					return
				}
				if _, err := dst.Write(frame[cut:]); err != nil {
					return
				}
				continue
			}
			if _, err := dst.Write(frame); err != nil {
				return
			}
		}
	}
}
