// Socket-level convergence equivalence: the PR/SSSP/CC suite from the
// chaos package, but with the faults injected below the transport — every
// envelope crosses a real TCP connection through a proxy that drops 20%
// of frames, duplicates 10%, corrupts a share of them (which must kill
// the connection at the receiver's CRC check, never reach the engine),
// splits writes, and adds delay. The fixed points must come out identical
// to fault-free single-process runs.
package netproxy_test

import (
	"context"
	"math"
	"net"
	"testing"
	"time"

	"graphabcd/internal/bcd"
	"graphabcd/internal/chaos/netproxy"
	"graphabcd/internal/cluster"
	"graphabcd/internal/cluster/tcp"
	"graphabcd/internal/gen"
	"graphabcd/internal/graph"
)

func proxyGraph(t *testing.T, seed uint64) *graph.Graph {
	t.Helper()
	cfg := gen.DefaultRMAT(9, 6, seed)
	cfg.MaxWeight = 16
	g, err := gen.RMAT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// standardFaults is the suite's fault mix: heavy loss and duplication,
// plus enough corruption and write-splitting to exercise the CRC-kill
// and partial-read paths continuously.
func standardFaults(seed uint64) netproxy.Config {
	return netproxy.Config{
		Seed:        seed,
		DropRate:    0.20,
		DupRate:     0.10,
		CorruptRate: 0.01,
		SplitRate:   0.10,
		DelayRate:   0.01,
		MaxDelay:    2 * time.Millisecond,
	}
}

// proxiedCluster wires an n-node loopback cluster where every node's
// listener is fronted by a mangling proxy: both data and acks cross a
// hostile wire. Cleanup closes the proxies (the transport owns the
// listeners).
func proxiedCluster(t *testing.T, nodes int, pcfg netproxy.Config) (cluster.Config, *tcp.Transport, []*netproxy.Proxy) {
	t.Helper()
	listeners := make([]net.Listener, nodes)
	addrs := make([]string, nodes)
	proxies := make([]*netproxy.Proxy, nodes)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		p, err := netproxy.New(ln.Addr().String(), pcfg)
		if err != nil {
			t.Fatal(err)
		}
		proxies[i] = p
		addrs[i] = p.Addr()
		t.Cleanup(p.Close)
	}
	tr := tcp.New(listeners, addrs, tcp.Options{
		DialBackoff:  200 * time.Microsecond,
		SocketBuffer: 32 << 10,
	})
	cfg := cluster.Config{
		Nodes:          nodes,
		BlockSize:      32,
		WorkersPerNode: 2,
		Epsilon:        1e-12,
		BatchSize:      8,
		// The retry base must exceed the socket path's round trip
		// (queue + proxy + apply + ack, ~10ms here): a base below it
		// re-sends every healthy in-flight batch, and the redundant
		// traffic compounds into a retry spiral under load.
		RetryBase:     20 * time.Millisecond,
		RetryDeadline: 60 * time.Second,
		// A tight window keeps staleness low on the slow, lossy wire:
		// fewer concurrently in-flight batches means less redundant
		// recomputation and a small, fast retry scan.
		MaxUnacked: 256,
		Transport:  tr,
	}
	return cfg, tr, proxies
}

func faultTotals(proxies []*netproxy.Proxy) netproxy.Counts {
	var total netproxy.Counts
	for _, p := range proxies {
		c := p.Counts()
		total.Frames += c.Frames
		total.Dropped += c.Dropped
		total.Duplicated += c.Duplicated
		total.Corrupted += c.Corrupted
		total.Split += c.Split
		total.Delayed += c.Delayed
		total.Conns += c.Conns
	}
	return total
}

func TestNetproxyPageRankEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("PageRank through the mangling proxy is the suite's slowest run; the dedicated full-race gate step covers it")
	}
	g := proxyGraph(t, 77)
	want := bcd.RefPageRank(g, 0.85, 1e-13, 1000)
	cfg, tr, proxies := proxiedCluster(t, 3, standardFaults(1))
	res, err := cluster.Run[float64, float64](context.Background(), g, bcd.PageRank{}, cfg)
	if err != nil {
		t.Fatalf("%v (wire: %+v, faults: %+v)", err, tr.WireStats(), faultTotals(proxies))
	}
	if !res.Stats.Converged {
		t.Fatal("did not converge through the mangling proxy")
	}
	for v := range want {
		if d := math.Abs(res.Values[v] - want[v]); d > 1e-7 {
			t.Fatalf("rank[%d] off by %g through the proxy", v, d)
		}
	}
	faults := faultTotals(proxies)
	if faults.Dropped == 0 || faults.Duplicated == 0 || faults.Corrupted == 0 || faults.Split == 0 {
		t.Fatalf("fault mix did not exercise every mangler: %+v", faults)
	}
	if res.Stats.BatchesRetried == 0 {
		t.Fatal("20% frame drop produced no engine retries")
	}
	ws := tr.WireStats()
	if ws.CRCDrops == 0 {
		t.Fatalf("corruption produced no CRC frame drops: %+v", ws)
	}
}

func TestNetproxySSSPEquivalence(t *testing.T) {
	g := proxyGraph(t, 78)
	src := uint32(3)
	want := bcd.RefSSSP(g, src)
	cfg, tr, proxies := proxiedCluster(t, 3, standardFaults(2))
	cfg.Epsilon = 0
	res, err := cluster.Run[float64, float64](context.Background(), g, bcd.SSSP{Source: src}, cfg)
	if err != nil {
		t.Fatalf("%v (wire: %+v, faults: %+v)", err, tr.WireStats(), faultTotals(proxies))
	}
	for v := range want {
		got := res.Values[v]
		if got != want[v] && !(math.IsInf(got, 1) && math.IsInf(want[v], 1)) {
			t.Fatalf("dist[%d] = %g, want %g through the proxy", v, got, want[v])
		}
	}
}

// TestNetproxyCCEquivalence is the two-runs-one-fixed-point check: the
// same graph solved by a fault-free in-process cluster and by a proxied
// socket cluster under the full fault mix must produce bit-identical
// component labels.
func TestNetproxyCCEquivalence(t *testing.T) {
	g := proxyGraph(t, 79)
	direct, err := cluster.Run[uint64, uint64](context.Background(), g, bcd.CC{}, cluster.Config{
		Nodes:          3,
		BlockSize:      32,
		WorkersPerNode: 2,
		BatchSize:      8,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := bcd.RefCC(g)
	cfg, tr, proxies := proxiedCluster(t, 3, standardFaults(3))
	cfg.Epsilon = 0
	res, err := cluster.Run[uint64, uint64](context.Background(), g, bcd.CC{}, cfg)
	if err != nil {
		t.Fatalf("%v (wire: %+v, faults: %+v)", err, tr.WireStats(), faultTotals(proxies))
	}
	for v := range want {
		if res.Values[v] != want[v] {
			t.Fatalf("cc[%d] = %d, want %d through the proxy", v, res.Values[v], want[v])
		}
		if res.Values[v] != direct.Values[v] {
			t.Fatalf("cc[%d]: proxied %d != direct in-process %d", v, res.Values[v], direct.Values[v])
		}
	}
	if faults := faultTotals(proxies); faults.Dropped == 0 {
		t.Fatalf("fault mix idle during CC run: %+v", faults)
	}
}
