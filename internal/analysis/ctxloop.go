package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// CtxLoop enforces cancellability of blocking loops: in a function that
// takes a context.Context, any for/range loop that blocks — a channel
// receive or send, a select, a time.Sleep, or a call into package net —
// must be cancellable through that context, by selecting on ctx.Done()
// (directly or via a channel variable assigned from it) or checking
// ctx.Err() per iteration. A function that accepts a context promises its
// caller cancellation works; a retry or backoff loop that only polls a
// stop flag breaks that promise exactly when the caller needs it — the
// ROADMAP's real TCP transport will turn every such loop into a hung
// connection that outlives its request.
//
// Loops inside nested function literals are exempt unless the literal
// itself declares a context parameter: a spawned worker's loop is commonly
// cancelled by other means (a stop channel owned by the spawner), which is
// the goroutine analyzer's department.
var CtxLoop = &Analyzer{
	Name: ctxLoopName,
	Doc:  "flags blocking loops in context-taking functions that cannot be cancelled via ctx.Done()/ctx.Err()",
	Run:  runCtxLoop,
}

func runCtxLoop(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil && funcTypeTakesContext(info, n.Type) {
					checkCtxLoops(pass, info, n.Body)
					return false
				}
			case *ast.FuncLit:
				if funcTypeTakesContext(info, n.Type) {
					checkCtxLoops(pass, info, n.Body)
					return false
				}
			}
			return true
		})
	}
}

// funcTypeTakesContext reports whether ft declares a context.Context
// parameter.
func funcTypeTakesContext(info *types.Info, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if isContextType(info.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// checkCtxLoops scans one context-taking function body. It first collects
// the channel variables assigned from ctx.Done() (the `done := ctx.Done()`
// idiom), then flags every blocking loop that neither touches one of them
// nor calls ctx.Done()/ctx.Err() itself.
func checkCtxLoops(pass *Pass, info *types.Info, body *ast.BlockStmt) {
	doneChans := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if !isCtxMethodCall(info, rhs, "Done") {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := info.Defs[id]; obj != nil {
					doneChans[obj] = true
				} else if obj := info.Uses[id]; obj != nil {
					doneChans[obj] = true
				}
			}
		}
		return true
	})

	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.FuncLit:
			// Nested literals get their own judgement in runCtxLoop (only
			// if they take a context themselves).
			return
		case *ast.ForStmt, *ast.RangeStmt:
			var loopBody *ast.BlockStmt
			if fs, ok := n.(*ast.ForStmt); ok {
				loopBody = fs.Body
			} else {
				loopBody = n.(*ast.RangeStmt).Body
			}
			if what := loopBlocks(info, n); what != "" && !loopCancellable(info, n, doneChans) {
				pass.Report(Diagnostic{Pos: n.Pos(), Rule: ctxLoopName,
					Message: fmt.Sprintf("loop blocks (%s) but never checks ctx.Done() or ctx.Err(); a cancelled context cannot stop it — add a ctx.Done() select case or an Err() check per iteration", what)})
			}
			// Nested loops are judged on their own.
			walk(loopBody)
			return
		}
		children(n, walk)
	}
	walk(body)
}

// loopBlocks classifies the first blocking operation lexically inside the
// loop (excluding nested function literals), or returns "".
func loopBlocks(info *types.Info, loop ast.Node) string {
	what := ""
	ast.Inspect(loop, func(n ast.Node) bool {
		if what != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				what = "channel receive"
			}
		case *ast.SendStmt:
			what = "channel send"
		case *ast.SelectStmt:
			what = "select"
		case *ast.CallExpr:
			if fn, ok := calleeFunc(info, n); ok && fn.Pkg() != nil {
				switch {
				case fn.Pkg().Path() == "time" && fn.Name() == "Sleep":
					what = "time.Sleep"
				case fn.Pkg().Path() == "net" || isPathPrefix(fn.Pkg().Path(), "net/"):
					what = "net." + fn.Name()
				}
			}
		}
		return what == ""
	})
	return what
}

// loopCancellable reports whether the loop references the context: a
// ctx.Done()/ctx.Err() call, or any use of a channel variable known to
// hold ctx.Done().
func loopCancellable(info *types.Info, loop ast.Node, doneChans map[types.Object]bool) bool {
	found := false
	ast.Inspect(loop, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if isCtxMethodCall(info, n, "Done") || isCtxMethodCall(info, n, "Err") {
				found = true
			}
		case *ast.Ident:
			if obj := info.Uses[n]; obj != nil && doneChans[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// isCtxMethodCall reports whether e is a call of the named method on a
// context.Context value.
func isCtxMethodCall(info *types.Info, e ast.Expr, method string) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return false
	}
	return isContextType(info.TypeOf(sel.X))
}

// calleeFunc resolves a call's static callee function object.
func calleeFunc(info *types.Info, call *ast.CallExpr) (*types.Func, bool) {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, ok := info.Uses[fun].(*types.Func)
		return fn, ok
	case *ast.SelectorExpr:
		fn, ok := info.Uses[fun.Sel].(*types.Func)
		return fn, ok
	}
	return nil, false
}

// isPathPrefix reports whether path starts with prefix (a "pkg/" string).
func isPathPrefix(path, prefix string) bool {
	return len(path) >= len(prefix) && path[:len(prefix)] == prefix
}
