package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// ErrCheck flags call statements that silently drop an error result. The
// distributed engine's failure model routes every I/O or protocol error
// into the run's failure slot (core.engine.fail); a dropped error anywhere
// in that chain turns a recoverable abort into silent data corruption.
//
// Default exemptions (all of them still suppressible the other way around
// with an explicit `_ =` if the intent is to discard):
//   - fmt.Print/Printf/Println, and fmt.Fprint* writing to os.Stdout or
//     os.Stderr (terminal writes; failure is not actionable),
//   - methods of strings.Builder and bytes.Buffer (documented to never
//     return a non-nil error),
//   - `defer x.Close()` when Config.ErrcheckIgnoreDeferredClose is set.
var ErrCheck = &Analyzer{
	Name: errCheckName,
	Doc:  "flags dropped error return values",
	Run:  runErrCheck,
}

func runErrCheck(pass *Pass) {
	info := pass.Pkg.Info
	check := func(call *ast.CallExpr, deferred bool) {
		if !callReturnsError(info, call) {
			return
		}
		if errcheckExempt(pass.Config, info, call, deferred) {
			return
		}
		pass.Report(Diagnostic{Pos: call.Pos(), Rule: errCheckName,
			Message: fmt.Sprintf("error returned by %s is dropped; handle it or assign it explicitly", types.ExprString(call.Fun))})
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := unparen(s.X).(*ast.CallExpr); ok {
					check(call, false)
				}
			case *ast.GoStmt:
				check(s.Call, false)
			case *ast.DeferStmt:
				check(s.Call, true)
			}
			return true
		})
	}
}

// callReturnsError reports whether the call yields an error (alone or as
// part of a tuple). Type conversions and builtins never do.
func callReturnsError(info *types.Info, call *ast.CallExpr) bool {
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return false
	}
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	errType := types.Universe.Lookup("error").Type()
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errType) {
				return true
			}
		}
		return false
	default:
		return types.Identical(t, errType)
	}
}

// errcheckExempt applies the default exemption list.
func errcheckExempt(cfg *Config, info *types.Info, call *ast.CallExpr, deferred bool) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	sig := fn.Type().(*types.Signature)

	if deferred && cfg.ErrcheckIgnoreDeferredClose && fn.Name() == "Close" {
		return true
	}
	if fn.Pkg().Path() == "fmt" && sig.Recv() == nil {
		switch fn.Name() {
		case "Print", "Printf", "Println":
			return true
		case "Fprint", "Fprintf", "Fprintln":
			return len(call.Args) > 0 && isStdStream(info, call.Args[0])
		}
	}
	if recv := sig.Recv(); recv != nil {
		if named := namedRecvType(recv.Type()); named != nil {
			obj := named.Obj()
			if obj.Pkg() != nil {
				path, name := obj.Pkg().Path(), obj.Name()
				if (path == "strings" && name == "Builder") || (path == "bytes" && name == "Buffer") {
					return true
				}
			}
		}
	}
	return false
}

// isStdStream matches the expressions os.Stdout and os.Stderr.
func isStdStream(info *types.Info, e ast.Expr) bool {
	sel, ok := unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	v, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || v.Pkg() == nil || v.Pkg().Path() != "os" {
		return false
	}
	return v.Name() == "Stdout" || v.Name() == "Stderr"
}
