package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// BoundAlloc guards the decoders against hostile-input allocation: in the
// configured decoder packages (Config.BoundAllocPkgs — edgestore and the
// GABS/GABZ snapshot codecs), a make whose length or capacity derives from
// a value decoded out of the input bytes (encoding/binary fixed-width
// reads, varints) must flow through a recognized clamp
// (Config.BoundAllocClamps: presizeCap, growEarned) before allocating. A
// corrupt or hostile header otherwise turns an 8-byte field into a
// multi-gigabyte upfront allocation — the exact failure mode DESIGN.md §8
// documents presizeCap/growEarned as the defense against.
//
// The analysis is per function: decoded values taint the variables they
// are assigned to, taint propagates through assignments and expressions,
// and a clamp call launders its result. Taint does not flow through
// struct fields or across calls — a size stored into a field and used
// later is assumed validated at the boundary where it was decoded (the
// documented conservatism; the fixture's cross-function case pins it).
var BoundAlloc = &Analyzer{
	Name: boundAllocName,
	Doc:  "flags make sizes derived from decoded header/varint values that bypass the clamp helpers",
	Run:  runBoundAlloc,
}

func runBoundAlloc(pass *Pass) {
	if !pkgMatches(pass.Pkg.ImportPath, pass.Config.BoundAllocPkgs) {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkBoundAlloc(pass, n.Body)
				}
				return false
			case *ast.FuncLit:
				checkBoundAlloc(pass, n.Body)
				return false
			}
			return true
		})
	}
}

// pkgMatches reports whether importPath contains any of the patterns.
func pkgMatches(importPath string, patterns []string) bool {
	for _, p := range patterns {
		if strings.Contains(importPath, p) {
			return true
		}
	}
	return false
}

// checkBoundAlloc runs the taint pass over one function body.
func checkBoundAlloc(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	tainted := make(map[types.Object]bool)

	// taintedExpr reports whether e mentions a decoded value outside any
	// clamp call (a clamp's result is bounded by construction).
	var taintedExpr func(e ast.Expr) bool
	taintedExpr = func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if found {
				return false
			}
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.CallExpr:
				if isClampCall(info, n, pass.Config.BoundAllocClamps) {
					return false // laundered
				}
				if isDecodeCall(info, n) {
					found = true
				}
			case *ast.Ident:
				if obj := info.Uses[n]; obj != nil && tainted[obj] {
					found = true
				}
			}
			return !found
		})
		return found
	}

	// Propagate taint through assignments. Two sweeps reach values that
	// flow backward lexically (a helper variable assigned above its use in
	// a loop); the decoders' straight-line shape needs only one.
	for sweep := 0; sweep < 2; sweep++ {
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			taintLHS := func(lhs ast.Expr) {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					return // field/element stores do not carry taint
				}
				if obj := info.Defs[id]; obj != nil {
					tainted[obj] = true
				} else if obj := info.Uses[id]; obj != nil {
					tainted[obj] = true
				}
			}
			if len(as.Lhs) == len(as.Rhs) {
				for i, rhs := range as.Rhs {
					if taintedExpr(rhs) {
						taintLHS(as.Lhs[i])
					}
				}
			} else if len(as.Rhs) == 1 && taintedExpr(as.Rhs[0]) {
				// Multi-value: n, err := binary.Uvarint(...) taints all.
				for _, lhs := range as.Lhs {
					taintLHS(lhs)
				}
			}
			return true
		})
	}

	// Sink: make with a tainted, unclamped length or capacity.
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := unparen(call.Fun).(*ast.Ident)
		if !ok {
			return true
		}
		if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
			return true
		}
		for _, size := range call.Args[1:] {
			if taintedExpr(size) {
				pass.Report(Diagnostic{Pos: call.Pos(), Rule: boundAllocName,
					Message: fmt.Sprintf("make size %s derives from a decoded header/varint value without a recognized clamp (%s); a hostile input controls this allocation — bound it or derive it from already-validated state",
						types.ExprString(size), strings.Join(pass.Config.BoundAllocClamps, "/"))})
				break
			}
		}
		return true
	})
}

// isDecodeCall reports whether call reads a value out of input bytes: any
// function or method of encoding/binary (fixed-width loads, varints).
func isDecodeCall(info *types.Info, call *ast.CallExpr) bool {
	fn, ok := calleeFunc(info, call)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "encoding/binary"
}

// isClampCall matches a call to one of the configured clamp helpers by
// name (they are unexported helpers of the decoder packages, so a bare
// name comparison is unambiguous within them).
func isClampCall(info *types.Info, call *ast.CallExpr, clamps []string) bool {
	fn, ok := calleeFunc(info, call)
	if !ok {
		return false
	}
	for _, c := range clamps {
		if fn.Name() == c {
			return true
		}
	}
	return false
}
