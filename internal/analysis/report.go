package analysis

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
)

// This file renders analysis results machine-readably: a JSON report for
// scripts/check.sh's baseline diff, SARIF 2.1.0 for code-scanning UIs, and
// the checked-in baseline that grandfathers known findings so only new
// ones fail the gate.

// Finding is one diagnostic resolved to file coordinates.
type Finding struct {
	Rule    string      `json:"rule"`
	File    string      `json:"file"`
	Line    int         `json:"line"`
	Col     int         `json:"col"`
	Message string      `json:"message"`
	Chain   []ChainStep `json:"chain,omitempty"`
	// Grandfathered marks a finding matched by the baseline: tracked, not
	// failing.
	Grandfathered bool `json:"grandfathered,omitempty"`
}

// ChainStep is one resolved hop of an interprocedural finding's call
// chain. The first hop is the analysis root (its call site fields are
// empty).
type ChainStep struct {
	Func string `json:"func"`
	File string `json:"file,omitempty"`
	Line int    `json:"line,omitempty"`
}

// SuppressionEntry is one //abcdlint:ignore comment, for the -ignored
// audit.
type SuppressionEntry struct {
	File   string   `json:"file"`
	Line   int      `json:"line"`
	Rules  []string `json:"rules"`
	Reason string   `json:"reason"`
}

// Report is the machine-readable analysis outcome.
type Report struct {
	Tool         string             `json:"tool"`
	Findings     []Finding          `json:"findings"`
	Suppressions []SuppressionEntry `json:"suppressions"`
}

// BuildReport resolves a Result's positions against base (paths inside
// base are relativized).
func BuildReport(res *Result, base string) *Report {
	rep := &Report{Tool: "abcdlint", Findings: []Finding{}, Suppressions: []SuppressionEntry{}}
	for _, d := range res.Diags {
		pos := res.Fset.Position(d.Pos)
		f := Finding{
			Rule:    d.Rule,
			File:    relPath(base, pos.Filename),
			Line:    pos.Line,
			Col:     pos.Column,
			Message: d.Message,
		}
		for _, hop := range d.Chain {
			step := ChainStep{Func: hop.Func}
			if hop.Pos != token.NoPos {
				hp := res.Fset.Position(hop.Pos)
				step.File = relPath(base, hp.Filename)
				step.Line = hp.Line
			}
			f.Chain = append(f.Chain, step)
		}
		rep.Findings = append(rep.Findings, f)
	}
	for _, s := range res.Suppressions {
		pos := res.Fset.Position(s.Pos)
		rep.Suppressions = append(rep.Suppressions, SuppressionEntry{
			File:   relPath(base, pos.Filename),
			Line:   pos.Line,
			Rules:  s.Rules,
			Reason: s.Reason,
		})
	}
	return rep
}

// WriteJSON renders the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ---- SARIF 2.1.0 ----

// The structs model the subset of SARIF 2.1.0 that GitHub code scanning
// consumes: one run, a tool driver with rule metadata, results with
// physical locations, and codeFlows carrying the call chains.

type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
	CodeFlows []sarifCodeFlow `json:"codeFlows,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
	Message          *sarifMessage         `json:"message,omitempty"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

type sarifCodeFlow struct {
	ThreadFlows []sarifThreadFlow `json:"threadFlows"`
}

type sarifThreadFlow struct {
	Locations []sarifThreadFlowLocation `json:"locations"`
}

type sarifThreadFlowLocation struct {
	Location sarifLocation `json:"location"`
}

// sarifRuleID namespaces a rule name for code-scanning display.
func sarifRuleID(rule string) string { return "abcdlint/" + rule }

// WriteSARIF renders the report's findings as SARIF 2.1.0. analyzers
// supplies the rule metadata; every finding's rule must be among them.
func (r *Report) WriteSARIF(w io.Writer, analyzers []*Analyzer) error {
	ruleIndex := make(map[string]int, len(analyzers))
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		ruleIndex[a.Name] = len(rules)
		rules = append(rules, sarifRule{ID: sarifRuleID(a.Name), ShortDescription: sarifMessage{Text: a.Doc}})
	}
	run := sarifRun{
		Tool: sarifTool{Driver: sarifDriver{
			Name:           "abcdlint",
			InformationURI: "https://example.invalid/graphabcd/abcdlint",
			Rules:          rules,
		}},
		Results: []sarifResult{},
	}
	for _, f := range r.Findings {
		idx, ok := ruleIndex[f.Rule]
		if !ok {
			return fmt.Errorf("sarif: finding with unknown rule %q", f.Rule)
		}
		level := "error"
		if f.Grandfathered {
			level = "warning" // tracked debt, not a gate failure
		}
		res := sarifResult{
			RuleID:    sarifRuleID(f.Rule),
			RuleIndex: idx,
			Level:     level,
			Message:   sarifMessage{Text: f.Message},
			Locations: []sarifLocation{sarifLoc(f.File, f.Line, f.Col, "")},
		}
		if len(f.Chain) > 0 {
			tf := sarifThreadFlow{}
			for _, hop := range f.Chain {
				file, line := hop.File, hop.Line
				if file == "" { // chain root: anchor at the finding
					file, line = f.File, f.Line
				}
				loc := sarifLoc(file, line, 0, hop.Func)
				tf.Locations = append(tf.Locations, sarifThreadFlowLocation{Location: loc})
			}
			res.CodeFlows = []sarifCodeFlow{{ThreadFlows: []sarifThreadFlow{tf}}}
		}
		run.Results = append(run.Results, res)
	}
	log := sarifLog{
		Version: "2.1.0",
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Runs:    []sarifRun{run},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

func sarifLoc(file string, line, col int, msg string) sarifLocation {
	loc := sarifLocation{PhysicalLocation: sarifPhysicalLocation{
		ArtifactLocation: sarifArtifactLocation{URI: file, URIBaseID: "%SRCROOT%"},
		Region:           sarifRegion{StartLine: line, StartColumn: col},
	}}
	if msg != "" {
		loc.Message = &sarifMessage{Text: msg}
	}
	return loc
}

// ---- baseline ----

// BaselineEntry identifies one grandfathered finding. Line numbers are
// deliberately absent so unrelated edits do not churn the baseline; a
// finding matches on (rule, file, message).
type BaselineEntry struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Message string `json:"message"`
}

// Baseline is the checked-in set of known findings.
type Baseline struct {
	Comment  string          `json:"comment,omitempty"`
	Findings []BaselineEntry `json:"findings"`
}

// LoadBaseline reads a baseline file. A missing file is an empty baseline.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{}, nil
	}
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	return &b, nil
}

// BaselineFromReport converts the report's current findings into a
// baseline (the -update-baseline path).
func BaselineFromReport(r *Report) *Baseline {
	b := &Baseline{
		Comment:  "abcdlint grandfathered findings; regenerate with `go run ./cmd/abcdlint -baseline lint_baseline.json -update-baseline ./...`",
		Findings: []BaselineEntry{},
	}
	for _, f := range r.Findings {
		b.Findings = append(b.Findings, BaselineEntry{Rule: f.Rule, File: f.File, Message: f.Message})
	}
	return b
}

// Write saves the baseline.
func (b *Baseline) Write(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Apply marks report findings matched by the baseline as grandfathered
// (multiset semantics: N baseline entries absorb at most N identical
// findings) and returns how many findings remain fresh.
func (b *Baseline) Apply(r *Report) (fresh int) {
	budget := make(map[BaselineEntry]int)
	for _, e := range b.Findings {
		budget[e]++
	}
	for i := range r.Findings {
		key := BaselineEntry{Rule: r.Findings[i].Rule, File: r.Findings[i].File, Message: r.Findings[i].Message}
		if budget[key] > 0 {
			budget[key]--
			r.Findings[i].Grandfathered = true
		} else {
			fresh++
		}
	}
	return fresh
}
