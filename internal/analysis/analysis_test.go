package analysis

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current analyzer output")

// fixtureCases maps one golden file to one analyzer run over one or more
// fixture packages under testdata/src. The suppress case reuses errcheck
// to prove the suppression filter, not the rule itself.
var fixtureCases = []struct {
	name string // golden file stem
	rule string
	cfg  *Config // nil means DefaultConfig
	dirs []string
}{
	{name: "atomicword", rule: "atomicword", dirs: []string{"testdata/src/atomicword"}},
	{
		name: "hotalloc",
		rule: "hotalloc",
		cfg:  &Config{HotRoots: []string{"src/hotalloc:HotLoop"}},
		dirs: []string{"testdata/src/hotalloc"},
	},
	{name: "hotpath", rule: "hotpath", dirs: []string{"testdata/src/hotpath"}},
	{name: "locksafe", rule: "locksafe", dirs: []string{"testdata/src/locksafe"}},
	{name: "errcheck", rule: "errcheck", dirs: []string{"testdata/src/errcheck"}},
	{name: "goroutine", rule: "goroutine", dirs: []string{"testdata/src/goroutine"}},
	{name: "suppress", rule: "errcheck", dirs: []string{"testdata/src/suppress"}},
	{name: "ctxloop", rule: "ctxloop", dirs: []string{"testdata/src/ctxloop"}},
	{name: "publish", rule: "publish", dirs: []string{"testdata/src/publish"}},
	{
		name: "boundalloc",
		rule: "boundalloc",
		cfg:  &Config{BoundAllocPkgs: []string{"src/boundalloc"}, BoundAllocClamps: []string{"presizeCap", "growEarned"}},
		dirs: []string{"testdata/src/boundalloc"},
	},
	{
		name: "goroutinelife",
		rule: "goroutine",
		cfg:  &Config{GoroutineOwnedPkgs: []string{"src/goroutinelife"}},
		dirs: []string{"testdata/src/goroutinelife"},
	},
}

// runFixture loads the named fixture packages and applies one analyzer,
// returning the formatted findings with paths relative to this package.
func runFixture(t *testing.T, rule string, cfg *Config, dirs []string) []string {
	t.Helper()
	a := ByName(rule)
	if a == nil {
		t.Fatalf("unknown rule %q", rule)
	}
	if cfg == nil {
		cfg = DefaultConfig()
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			t.Fatalf("LoadDir(%s): %v", dir, err)
		}
		pkgs = append(pkgs, pkg)
	}
	base, err := filepath.Abs(".")
	if err != nil {
		t.Fatalf("Abs: %v", err)
	}
	var lines []string
	for _, d := range Analyze(loader.Fset, pkgs, []*Analyzer{a}, cfg) {
		lines = append(lines, FormatDiagnostic(loader.Fset, base, d))
	}
	return lines
}

func TestAnalyzersGolden(t *testing.T) {
	for _, tc := range fixtureCases {
		t.Run(tc.name, func(t *testing.T) {
			got := strings.Join(runFixture(t, tc.rule, tc.cfg, tc.dirs), "\n")
			if got != "" {
				got += "\n"
			}
			golden := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatalf("writing golden: %v", err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("reading golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("findings mismatch for %s\n--- got ---\n%s--- want ---\n%s", tc.name, got, want)
			}
		})
	}
}

// TestFixturesFlagAndClean asserts the structural contract of every
// fixture: at least one finding, all findings in flagged files, none in
// clean files.
func TestFixturesFlagAndClean(t *testing.T) {
	for _, tc := range fixtureCases {
		t.Run(tc.name, func(t *testing.T) {
			lines := runFixture(t, tc.rule, tc.cfg, tc.dirs)
			if len(lines) == 0 {
				t.Fatalf("fixture %s produced no findings", tc.name)
			}
			for _, line := range lines {
				if strings.Contains(line, "clean.go") {
					t.Errorf("finding in clean fixture: %s", line)
				}
			}
		})
	}
}

// TestSuppressionParsing pins the comment grammar: rule lists, the
// mandatory reason, and the "all" wildcard.
func TestSuppressionParsing(t *testing.T) {
	cases := []struct {
		text  string
		rules []string
		ok    bool
	}{
		{"//abcdlint:ignore errcheck -- reason", []string{"errcheck"}, true},
		{"// abcdlint:ignore errcheck -- reason", []string{"errcheck"}, true},
		{"//abcdlint:ignore a,b -- why not", []string{"a", "b"}, true},
		{"//abcdlint:ignore all -- everything", []string{"all"}, true},
		{"//abcdlint:ignore errcheck", nil, false},    // no reason
		{"//abcdlint:ignore errcheck --", nil, false}, // empty reason
		{"//abcdlint:ignore -- reason", nil, false},   // no rules
		{"// just a comment -- with dashes", nil, false},
	}
	for _, c := range cases {
		rules, reason, ok := parseSuppression(c.text)
		if ok && reason == "" {
			t.Errorf("parseSuppression(%q) accepted an empty reason", c.text)
		}
		if ok != c.ok {
			t.Errorf("parseSuppression(%q) ok = %v, want %v", c.text, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if len(rules) != len(c.rules) {
			t.Errorf("parseSuppression(%q) = %v, want %v", c.text, rules, c.rules)
			continue
		}
		for i := range rules {
			if rules[i] != c.rules[i] {
				t.Errorf("parseSuppression(%q) = %v, want %v", c.text, rules, c.rules)
				break
			}
		}
	}
}

// TestModuleClean is the acceptance gate in test form: the shipped tree
// must carry zero unsuppressed findings.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	diags, fset, err := Run(loader.ModRoot, []string{"./..."}, All(), DefaultConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", FormatDiagnostic(fset, loader.ModRoot, d))
	}
}
