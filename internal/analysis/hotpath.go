package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// HotPath enforces the `//abcd:hotpath` annotation: a function so marked
// declares itself part of the engine's per-block fast path (the
// GATHER-APPLY and SCATTER chains and the telemetry write paths that ride
// on them), and the contract — no allocation, no mutex — holds not just
// for its own body but for everything it calls. The analyzer walks the
// shared call graph from every annotated function and flags violating
// sites in every reachable callee, reporting the call chain that makes the
// site hot. Allocation sites use the same classification as hotalloc
// (make/new/append, fmt, word.Array's allocating conveniences); lock use
// flags any sync.Mutex / sync.RWMutex method call, because the hot path's
// concurrency discipline is atomics and single-writer shards only
// (DESIGN.md §7, §9).
//
// Two suppression granularities exist. A site suppression
// (`//abcdlint:ignore hotpath -- reason` on the allocation or lock) keeps
// one finding quiet. A boundary suppression — the same comment on a call
// site inside hot code — additionally stops the contract from propagating
// through that edge, for calls that are deliberately amortized off the
// per-edge path (a per-batch flush, pool-refilled scratch).
var HotPath = &Analyzer{
	Name:      hotPathName,
	Doc:       "flags allocations and mutex use in //abcd:hotpath functions and everything they transitively call",
	RunModule: runHotPath,
}

// hotPathDirective is the annotation the rule looks for in a function's
// doc comment group.
const hotPathDirective = "//abcd:hotpath"

func runHotPath(pass *ModulePass) {
	graph := buildCallGraph(pass.Pkgs)

	annotated := make(map[*types.Func]*cgNode)
	var roots []*cgNode
	for _, n := range graph.funcs {
		if isHotPathFunc(n.decl) {
			annotated[n.obj] = n
			roots = append(roots, n)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].decl.Pos() < roots[j].decl.Pos() })

	// Annotated bodies are checked directly, then the contract propagates
	// breadth-first through unsuppressed call edges. A callee reachable
	// from several roots is reported once, with the first (position-order)
	// chain that reaches it.
	for _, root := range roots {
		checkHotPathBody(pass, root, nil)
	}
	visited := make(map[*types.Func]bool)
	for _, root := range roots {
		type item struct {
			node  *cgNode
			chain []ChainHop
		}
		queue := []item{{node: root, chain: []ChainHop{{Func: funcDisplayName(root), Pos: token.NoPos}}}}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, e := range cur.node.edges {
				if pass.suppressedAt(e.site.Pos(), hotPathName) {
					continue // boundary suppression: edge declared amortized
				}
				callee, ok := graph.funcs[e.callee]
				if !ok {
					continue // outside the scanned module
				}
				if annotated[e.callee] != nil || visited[e.callee] {
					continue
				}
				visited[e.callee] = true
				chain := append(append([]ChainHop(nil), cur.chain...),
					ChainHop{Func: funcDisplayName(callee), Pos: e.site.Pos()})
				checkHotPathBody(pass, callee, chain)
				queue = append(queue, item{node: callee, chain: chain})
			}
		}
	}
}

// isHotPathFunc reports whether fd carries the //abcd:hotpath directive.
func isHotPathFunc(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == hotPathDirective {
			return true
		}
	}
	return false
}

// funcDisplayName renders a function for chain reporting: "Type.Name" for
// methods, "Name" otherwise.
func funcDisplayName(n *cgNode) string {
	if sig, ok := n.obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named := namedRecvType(sig.Recv().Type()); named != nil {
			return named.Obj().Name() + "." + n.obj.Name()
		}
	}
	return n.obj.Name()
}

// chainString renders a call chain as "root -> f -> g".
func chainString(chain []ChainHop) string {
	parts := make([]string, len(chain))
	for i, h := range chain {
		parts[i] = h.Func
	}
	return strings.Join(parts, " -> ")
}

// checkHotPathBody flags every allocation site and mutex method call in
// one function's body, including inside deferred calls and function
// literals (they run on the same path). A nil chain means the function
// itself carries the //abcd:hotpath annotation; otherwise chain is the
// call path from the annotated root.
func checkHotPathBody(pass *ModulePass, node *cgNode, chain []ChainHop) {
	info := node.pkg.Info
	name := node.decl.Name.Name
	where := fmt.Sprintf("//abcd:hotpath function %s", name)
	if chain != nil {
		where = fmt.Sprintf("%s, reached from //abcd:hotpath %s (chain: %s)",
			funcDisplayName(node), chain[0].Func, chainString(chain))
	}
	ast.Inspect(node.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if msg := allocMessage(info, call); msg != "" {
			pass.Report(Diagnostic{Pos: call.Pos(), Rule: hotPathName, Chain: chain,
				Message: fmt.Sprintf("%s in %s; %s", msg, where, allocAdvice(msg))})
		}
		if lock := hotPathMutexCall(info, call); lock != "" {
			pass.Report(Diagnostic{Pos: call.Pos(), Rule: hotPathName, Chain: chain,
				Message: fmt.Sprintf("%s in %s; the hot path is lock-free — use atomics or a per-worker telemetry shard", lock, where)})
		}
		return true
	})
}

// hotPathMutexCall classifies a call as a sync.Mutex / sync.RWMutex method,
// returning "sync.Mutex.Lock"-style text or "".
func hotPathMutexCall(info *types.Info, call *ast.CallExpr) string {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	named := namedRecvType(sig.Recv().Type())
	if named == nil {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return ""
	}
	switch obj.Name() {
	case "Mutex", "RWMutex":
		return "sync." + obj.Name() + "." + fn.Name()
	}
	return ""
}
