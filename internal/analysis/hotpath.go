package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// HotPath enforces the `//abcd:hotpath` annotation: a function so marked
// declares itself part of the engine's per-block fast path (the
// GATHER-APPLY and SCATTER chains and the telemetry write paths that ride
// on them), and its body must neither allocate nor touch a mutex. Unlike
// hotalloc — which discovers hot code by call-graph reachability from
// configured roots — hotpath is a lexical contract on the annotated
// function itself: the annotation is documentation the analyzer keeps
// honest. Allocation sites use the same classification as hotalloc
// (make/new/append, fmt, word.Array's allocating conveniences); lock use
// flags any sync.Mutex / sync.RWMutex method call, because the hot path's
// concurrency discipline is atomics and single-writer shards only
// (DESIGN.md §7, §9). Deliberate amortized allocations are suppressed
// with a reason, as everywhere in the suite.
var HotPath = &Analyzer{
	Name: hotPathName,
	Doc:  "flags allocations and mutex use inside //abcd:hotpath functions",
	Run:  runHotPath,
}

// hotPathDirective is the annotation the rule looks for in a function's
// doc comment group.
const hotPathDirective = "//abcd:hotpath"

func runHotPath(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotPathFunc(fd) {
				continue
			}
			checkHotPathBody(pass, fd)
		}
	}
}

// isHotPathFunc reports whether fd carries the //abcd:hotpath directive.
func isHotPathFunc(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == hotPathDirective {
			return true
		}
	}
	return false
}

// checkHotPathBody flags every allocation site and mutex method call in
// the annotated function's body, including inside deferred calls and
// function literals (they run on the same path).
func checkHotPathBody(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if msg := allocMessage(info, call); msg != "" {
			pass.Report(Diagnostic{Pos: call.Pos(), Rule: hotPathName,
				Message: fmt.Sprintf("%s in //abcd:hotpath function %s; %s", msg, name, allocAdvice(msg))})
		}
		if lock := hotPathMutexCall(info, call); lock != "" {
			pass.Report(Diagnostic{Pos: call.Pos(), Rule: hotPathName,
				Message: fmt.Sprintf("%s in //abcd:hotpath function %s; the hot path is lock-free — use atomics or a per-worker telemetry shard", lock, name)})
		}
		return true
	})
}

// hotPathMutexCall classifies a call as a sync.Mutex / sync.RWMutex method,
// returning "sync.Mutex.Lock"-style text or "".
func hotPathMutexCall(info *types.Info, call *ast.CallExpr) string {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	named := namedRecvType(sig.Recv().Type())
	if named == nil {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return ""
	}
	switch obj.Name() {
	case "Mutex", "RWMutex":
		return "sync." + obj.Name() + "." + fn.Name()
	}
	return ""
}
