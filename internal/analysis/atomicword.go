package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicWord enforces the engine's core memory rule (paper Sec. IV-A3):
// once a variable or field is accessed through sync/atomic anywhere in a
// package, every other access to it must also be atomic. The state-based,
// barrierless update scheme is data-race-free only because all shared
// words (word.Array backing slices, FloatArray bits, Bitset words, raw
// counters) go through atomic loads/stores/CAS; a single plain read or
// write silently reintroduces the races the design eliminates.
//
// Allowed non-atomic uses: len/cap, index-only range (no element read),
// composite-literal initialization, and the atomic calls themselves.
var AtomicWord = &Analyzer{
	Name: atomicWordName,
	Doc:  "flags plain reads/writes of variables that are elsewhere accessed via sync/atomic",
	Run:  runAtomicWord,
}

func runAtomicWord(pass *Pass) {
	info := pass.Pkg.Info
	parents := buildParents(pass.Pkg.Files)

	// Phase 1: find every variable/field whose address (or an element's
	// address) is passed to a sync/atomic function, keyed by declaration
	// position so generic instantiations collapse onto their origin field.
	targets := make(map[token.Pos]string)
	sanctioned := make(map[ast.Node]bool) // first-arg subtrees of atomic calls
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicFuncCall(info, call) || len(call.Args) == 0 {
				return true
			}
			addr, ok := unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || addr.Op != token.AND {
				return true
			}
			sanctioned[addr] = true
			base := unparen(addr.X)
			if idx, ok := base.(*ast.IndexExpr); ok {
				base = unparen(idx.X)
			}
			if obj := referencedVar(info, base); obj != nil {
				targets[obj.Pos()] = obj.Name()
			}
			return true
		})
	}
	if len(targets) == 0 {
		return
	}

	// Phase 2: flag any other read or write of those variables.
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if sanctioned[n] {
				return false // inside an atomic call's address argument
			}
			var ref ast.Expr
			switch e := n.(type) {
			case *ast.SelectorExpr:
				if obj := selectedVar(info, e); obj != nil {
					if _, hit := targets[obj.Pos()]; hit {
						ref = e
					}
				}
			case *ast.Ident:
				// Plain (non-selector) identifier use.
				if p, ok := parents[e].(*ast.SelectorExpr); ok && p.Sel == e {
					return true // handled via the SelectorExpr case
				}
				if obj, ok := info.Uses[e].(*types.Var); ok && !obj.IsField() {
					if _, hit := targets[obj.Pos()]; hit {
						ref = e
					}
				}
			}
			if ref == nil {
				return true
			}
			if msg, bad := classifyAtomicUse(info, parents, ref); bad {
				pass.Report(Diagnostic{Pos: ref.Pos(), Rule: atomicWordName, Message: msg})
				return false
			}
			return true
		})
	}
}

// isAtomicFuncCall reports whether call invokes a function of sync/atomic.
func isAtomicFuncCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "sync/atomic" && fn.Type().(*types.Signature).Recv() == nil
}

// referencedVar resolves an expression to the field or variable it names.
func referencedVar(info *types.Info, e ast.Expr) *types.Var {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		return selectedVar(info, e)
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok {
			return v
		}
	}
	return nil
}

func selectedVar(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
	}
	return nil
}

// classifyAtomicUse decides whether a reference to an atomic target is a
// benign use or a plain (racy) access, returning the finding message.
func classifyAtomicUse(info *types.Info, parents parentMap, ref ast.Expr) (string, bool) {
	name := types.ExprString(ref)
	node := ast.Node(ref)
	parent := parents[node]
	for {
		p, ok := parent.(*ast.ParenExpr)
		if !ok {
			break
		}
		node, parent = p, parents[p]
	}

	// Element access: re-classify the surrounding index expression.
	if idx, ok := parent.(*ast.IndexExpr); ok && unparen(idx.X) == node {
		node, parent = idx, parents[idx]
		for {
			p, ok := parent.(*ast.ParenExpr)
			if !ok {
				break
			}
			node, parent = p, parents[p]
		}
		name += "[...]"
	}

	switch p := parent.(type) {
	case *ast.CallExpr:
		if id, ok := unparen(p.Fun).(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok && (b.Name() == "len" || b.Name() == "cap") {
				return "", false
			}
		}
	case *ast.RangeStmt:
		if p.X == node && p.Value == nil {
			return "", false // index-only iteration reads no elements
		}
	case *ast.KeyValueExpr:
		if p.Key == node {
			return "", false // composite-literal initialization
		}
	case *ast.UnaryExpr:
		if p.Op == token.AND {
			return fmt.Sprintf("address of %s escapes the sync/atomic discipline it is accessed with elsewhere", name), true
		}
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if unparen(lhs) == node {
				return fmt.Sprintf("plain write to %s, which is accessed via sync/atomic elsewhere in this package", name), true
			}
		}
	case *ast.IncDecStmt:
		return fmt.Sprintf("plain %s of %s, which is accessed via sync/atomic elsewhere in this package", p.Tok, name), true
	}
	return fmt.Sprintf("plain read of %s, which is accessed via sync/atomic elsewhere in this package", name), true
}
