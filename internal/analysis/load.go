package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
)

// Loader parses and type-checks packages of one module using only the
// standard library. Imports inside the module are resolved by mapping the
// import path onto the module's directory tree; everything else (the
// standard library) is delegated to the compiler's source importer, which
// type-checks GOROOT packages from source. Non-test files only.
type Loader struct {
	Fset    *token.FileSet
	ModRoot string // directory containing go.mod
	ModPath string // module path from go.mod

	std  types.ImporterFrom
	pkgs map[string]*loadEntry // by cleaned absolute directory
}

type loadEntry struct {
	pkg     *Package
	err     error
	loading bool
}

// NewLoader locates the enclosing module of dir (by walking up to go.mod)
// and returns a loader rooted there.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		root = parent
	}
	modPath, err := readModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("analysis: source importer does not implement ImporterFrom")
	}
	return &Loader{
		Fset:    fset,
		ModRoot: root,
		ModPath: modPath,
		std:     std,
		pkgs:    make(map[string]*loadEntry),
	}, nil
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			mod := strings.TrimSpace(rest)
			mod = strings.Trim(mod, `"`)
			if mod != "" {
				return mod, nil
			}
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", path)
}

// LoadDir parses and type-checks the package in dir. Results are memoized;
// import cycles and type errors are reported as errors.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	abs = filepath.Clean(abs)
	if e, ok := l.pkgs[abs]; ok {
		if e.loading {
			return nil, fmt.Errorf("analysis: import cycle through %s", abs)
		}
		return e.pkg, e.err
	}
	entry := &loadEntry{loading: true}
	l.pkgs[abs] = entry
	entry.pkg, entry.err = l.loadDir(abs)
	entry.loading = false
	return entry.pkg, entry.err
}

func (l *Loader) loadDir(abs string) (*Package, error) {
	bp, err := build.Default.ImportDir(abs, 0)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(abs, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	rel, err := filepath.Rel(l.ModRoot, abs)
	if err != nil {
		return nil, err
	}
	importPath := l.ModPath
	if rel != "." {
		importPath = l.ModPath + "/" + filepath.ToSlash(rel)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(importPath, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type errors in %s: %v", importPath, typeErrs[0])
	}
	return &Package{
		Dir:        abs,
		ImportPath: importPath,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModRoot, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths map onto
// the module tree, everything else goes to the source importer.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		dir := l.ModRoot
		if path != l.ModPath {
			dir = filepath.Join(l.ModRoot, filepath.FromSlash(strings.TrimPrefix(path, l.ModPath+"/")))
		}
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, 0)
}

// ExpandPatterns resolves command-line package patterns against the module
// tree. Supported forms: "./..." (every package under dir), a directory
// path, or a module import path. The result is a list of directories.
func (l *Loader) ExpandPatterns(dir string, patterns []string) ([]string, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(d string) {
		d = filepath.Clean(d)
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			walked, err := l.walkPackages(dir)
			if err != nil {
				return nil, err
			}
			for _, d := range walked {
				add(d)
			}
		case strings.HasSuffix(pat, "/..."):
			walked, err := l.walkPackages(filepath.Join(dir, strings.TrimSuffix(pat, "/...")))
			if err != nil {
				return nil, err
			}
			for _, d := range walked {
				add(d)
			}
		case pat == l.ModPath || strings.HasPrefix(pat, l.ModPath+"/"):
			add(filepath.Join(l.ModRoot, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(pat, l.ModPath), "/"))))
		default:
			add(filepath.Join(dir, pat))
		}
	}
	return dirs, nil
}

// walkPackages returns every directory under root holding a buildable
// non-test Go package, skipping testdata, vendor, and hidden directories.
func (l *Loader) walkPackages(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if _, err := build.Default.ImportDir(path, 0); err == nil {
			dirs = append(dirs, path)
		}
		return nil
	})
	return dirs, err
}
