// Package analysis implements abcdlint, GraphABCD's custom static-analysis
// suite. The engine's correctness rests on invariants the Go compiler does
// not check: every shared vertex word must be accessed through sync/atomic
// (the paper's barrierless, lock-free state-based updates of Sec. IV-A3 are
// only race-free under that discipline), the GATHER/APPLY/SCATTER inner
// loops must not allocate per edge, and the scheduler must never hold a
// lock across a task-queue operation. The analyzers in this package
// machine-check those rules over the module's type-checked AST, using only
// the standard library (go/ast, go/parser, go/token, go/types) — no
// golang.org/x/tools dependency.
//
// A finding can be suppressed with a comment on the flagged line or the
// line directly above it:
//
//	//abcdlint:ignore rule1,rule2 -- reason why this is a false positive
//
// The reason after "--" is mandatory; a suppression without one is not
// honored.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Rule names, usable in //abcdlint:ignore suppressions and -rules flags.
const (
	atomicWordName = "atomicword"
	hotAllocName   = "hotalloc"
	hotPathName    = "hotpath"
	lockSafeName   = "locksafe"
	errCheckName   = "errcheck"
	goroutineName  = "goroutine"
	ctxLoopName    = "ctxloop"
	publishName    = "publish"
	boundAllocName = "boundalloc"
)

// ChainHop is one step of an interprocedural finding's call chain: the
// function entered and the call site that entered it.
type ChainHop struct {
	Func string    // package-local function or method name
	Pos  token.Pos // call site in the caller, NoPos for the chain root
}

// Diagnostic is one finding of one analyzer. Chain, when non-nil, is the
// call path from an analysis root (e.g. an //abcd:hotpath function) to the
// function containing Pos, outermost first.
type Diagnostic struct {
	Pos     token.Pos
	Rule    string
	Message string
	Chain   []ChainHop
}

// Package is one loaded, type-checked package.
type Package struct {
	Dir        string
	ImportPath string
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Pass is the per-package unit of work handed to an analyzer's Run.
type Pass struct {
	Fset   *token.FileSet
	Pkg    *Package
	Config *Config
	Report func(Diagnostic)
}

// ModulePass is the module-wide unit of work handed to an analyzer's
// RunModule: every scanned package at once, for analyses that must cross
// package boundaries (call-graph reachability).
type ModulePass struct {
	Fset   *token.FileSet
	Pkgs   []*Package
	Config *Config
	Report func(Diagnostic)

	// SuppressedAt reports whether a suppression for rule covers pos. The
	// driver wires it before analyzers run so interprocedural analyses can
	// honor boundary suppressions: an //abcdlint:ignore on a call site stops
	// contract propagation through that edge, not just the one finding. Nil
	// means no suppression information (treat nothing as suppressed).
	SuppressedAt func(pos token.Pos, rule string) bool
}

// suppressedAt is the nil-safe accessor for SuppressedAt.
func (p *ModulePass) suppressedAt(pos token.Pos, rule string) bool {
	return p.SuppressedAt != nil && p.SuppressedAt(pos, rule)
}

// Analyzer is one named rule. Exactly one of Run (per package) or
// RunModule (whole module) is set.
type Analyzer struct {
	Name      string
	Doc       string
	Run       func(*Pass)
	RunModule func(*ModulePass)
}

// All returns every analyzer in the suite, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{AtomicWord, HotAlloc, HotPath, LockSafe, ErrCheck, GoroutineHygiene, CtxLoop, Publish, BoundAlloc}
}

// ByName returns the analyzer with the given rule name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Config tunes the analyzers. The zero value is not useful; start from
// DefaultConfig.
type Config struct {
	// HotRoots seeds hotalloc's reachability analysis with the functions
	// containing the engine's hot loops. Each entry is "pkg:func": a
	// package import-path suffix and a function or method name. Allocation
	// sites inside a root's loops are flagged, as is any allocation in a
	// function called (transitively) from such a loop.
	HotRoots []string

	// ErrcheckIgnoreDeferredClose makes errcheck accept `defer f.Close()`
	// with a dropped error, the ubiquitous cleanup idiom.
	ErrcheckIgnoreDeferredClose bool

	// BoundAllocPkgs restricts boundalloc to packages whose import path
	// contains one of these substrings — the decoder packages that consume
	// untrusted on-disk or wire bytes.
	BoundAllocPkgs []string

	// BoundAllocClamps names the functions boundalloc recognizes as size
	// clamps: an allocation size expression that flows through one of these
	// calls is considered bounded.
	BoundAllocClamps []string

	// GoroutineOwnedPkgs restricts the goroutine lifetime rule to packages
	// whose import path contains one of these substrings — the long-lived
	// daemon-ish layers where a leaked goroutine outlives the run.
	GoroutineOwnedPkgs []string
}

// DefaultConfig returns the configuration used by cmd/abcdlint: the hot
// roots are the engine's GATHER-APPLY loop, the SCATTER loop, the cluster
// node's fused worker and batch applier, and the accelerator model's
// per-task accounting — the paths a block task traverses on every update.
func DefaultConfig() *Config {
	return &Config{
		HotRoots: []string{
			"internal/core:gatherApply",
			"internal/core:scatter",
			"internal/cluster:processBlock",
			"internal/cluster:applyLoop",
			"internal/accel:RunBlock",
			"internal/accel:RunScatter",
			"internal/accel:RunGather",
		},
		ErrcheckIgnoreDeferredClose: true,
		BoundAllocPkgs:              []string{"internal/edgestore", "internal/graph", "internal/cluster", "internal/chaos/netproxy", "internal/checkpoint", "internal/telemetry", "internal/obslog", "internal/serve"},
		BoundAllocClamps:            []string{"presizeCap", "growEarned"},
		GoroutineOwnedPkgs:          []string{"/cmd/", "internal/telemetry", "internal/obslog", "internal/serve"},
	}
}
