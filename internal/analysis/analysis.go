// Package analysis implements abcdlint, GraphABCD's custom static-analysis
// suite. The engine's correctness rests on invariants the Go compiler does
// not check: every shared vertex word must be accessed through sync/atomic
// (the paper's barrierless, lock-free state-based updates of Sec. IV-A3 are
// only race-free under that discipline), the GATHER/APPLY/SCATTER inner
// loops must not allocate per edge, and the scheduler must never hold a
// lock across a task-queue operation. The analyzers in this package
// machine-check those rules over the module's type-checked AST, using only
// the standard library (go/ast, go/parser, go/token, go/types) — no
// golang.org/x/tools dependency.
//
// A finding can be suppressed with a comment on the flagged line or the
// line directly above it:
//
//	//abcdlint:ignore rule1,rule2 -- reason why this is a false positive
//
// The reason after "--" is mandatory; a suppression without one is not
// honored.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Rule names, usable in //abcdlint:ignore suppressions and -rules flags.
const (
	atomicWordName = "atomicword"
	hotAllocName   = "hotalloc"
	hotPathName    = "hotpath"
	lockSafeName   = "locksafe"
	errCheckName   = "errcheck"
	goroutineName  = "goroutine"
)

// Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	Pos     token.Pos
	Rule    string
	Message string
}

// Package is one loaded, type-checked package.
type Package struct {
	Dir        string
	ImportPath string
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Pass is the per-package unit of work handed to an analyzer's Run.
type Pass struct {
	Fset   *token.FileSet
	Pkg    *Package
	Config *Config
	Report func(Diagnostic)
}

// ModulePass is the module-wide unit of work handed to an analyzer's
// RunModule: every scanned package at once, for analyses that must cross
// package boundaries (call-graph reachability).
type ModulePass struct {
	Fset   *token.FileSet
	Pkgs   []*Package
	Config *Config
	Report func(Diagnostic)
}

// Analyzer is one named rule. Exactly one of Run (per package) or
// RunModule (whole module) is set.
type Analyzer struct {
	Name      string
	Doc       string
	Run       func(*Pass)
	RunModule func(*ModulePass)
}

// All returns every analyzer in the suite, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{AtomicWord, HotAlloc, HotPath, LockSafe, ErrCheck, GoroutineHygiene}
}

// ByName returns the analyzer with the given rule name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Config tunes the analyzers. The zero value is not useful; start from
// DefaultConfig.
type Config struct {
	// HotRoots seeds hotalloc's reachability analysis with the functions
	// containing the engine's hot loops. Each entry is "pkg:func": a
	// package import-path suffix and a function or method name. Allocation
	// sites inside a root's loops are flagged, as is any allocation in a
	// function called (transitively) from such a loop.
	HotRoots []string

	// ErrcheckIgnoreDeferredClose makes errcheck accept `defer f.Close()`
	// with a dropped error, the ubiquitous cleanup idiom.
	ErrcheckIgnoreDeferredClose bool
}

// DefaultConfig returns the configuration used by cmd/abcdlint: the hot
// roots are the engine's GATHER-APPLY loop, the SCATTER loop, the cluster
// node's fused worker and batch applier, and the accelerator model's
// per-task accounting — the paths a block task traverses on every update.
func DefaultConfig() *Config {
	return &Config{
		HotRoots: []string{
			"internal/core:gatherApply",
			"internal/core:scatter",
			"internal/cluster:processBlock",
			"internal/cluster:applyLoop",
			"internal/accel:RunBlock",
			"internal/accel:RunScatter",
			"internal/accel:RunGather",
		},
		ErrcheckIgnoreDeferredClose: true,
	}
}
