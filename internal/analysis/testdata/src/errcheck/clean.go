package errcheck

import (
	"fmt"
	"os"
	"strings"
)

// Clean handles or legitimately discards every error.
func Clean(c closer) (string, error) {
	if err := work(); err != nil {
		return "", err
	}
	defer c.Close()                  // exempt: deferred Close
	fmt.Println("status")            // exempt: fmt to the terminal
	fmt.Fprintf(os.Stderr, "note\n") // exempt: std stream
	var b strings.Builder
	b.WriteString("ok") // exempt: strings.Builder never errors
	_ = work()          // explicit discard
	return b.String(), nil
}
