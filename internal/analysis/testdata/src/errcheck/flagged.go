// Package errcheck is an abcdlint fixture: dropped error results.
package errcheck

import (
	"errors"
	"fmt"
	"io"
)

func work() error { return errors.New("boom") }

type closer struct{}

func (closer) Close() error { return nil }

// Drops ignores errors in every statement position the analyzer checks.
func Drops(w io.Writer) {
	work()              // want: statement drop
	go work()           // want: goroutine drop
	defer work()        // want: deferred non-Close drop
	fmt.Fprintf(w, "x") // want: Fprintf to a non-std writer
	var c closer
	c.Close() // want: non-deferred Close
}
