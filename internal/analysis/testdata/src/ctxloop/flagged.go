// Package ctxloop is an abcdlint fixture: blocking loops in context-taking
// functions must be cancellable through the context.
package ctxloop

import (
	"context"
	"time"
)

// PollSleep retries with a bare sleep: cancelling ctx cannot stop it.
func PollSleep(ctx context.Context, ready func() bool) {
	for !ready() { // want: time.Sleep without ctx
		time.Sleep(time.Millisecond)
	}
}

// DrainNoCtx receives forever without a ctx.Done case.
func DrainNoCtx(ctx context.Context, ch <-chan int) int {
	total := 0
	for { // want: channel receive without ctx
		v, ok := <-ch
		if !ok {
			return total
		}
		total += v
	}
}

// SelectNoDone selects, but never on ctx.Done.
func SelectNoDone(ctx context.Context, a, b <-chan int) {
	for { // want: select without ctx
		select {
		case <-a:
		case <-b:
			return
		}
	}
}

// SuppressedPoll documents why it ignores cancellation and stays quiet.
func SuppressedPoll(ctx context.Context, ready func() bool) {
	//abcdlint:ignore ctxloop -- shutdown drain: the caller bounds it to three ticks
	for !ready() {
		time.Sleep(time.Millisecond)
	}
}
