package ctxloop

import (
	"context"
	"time"
)

// SelectDone selects on ctx.Done directly.
func SelectDone(ctx context.Context, ch <-chan int) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-ch:
		}
	}
}

// DerivedDone receives through a channel variable assigned from ctx.Done,
// the cluster coordinator's idiom.
func DerivedDone(ctx context.Context, ch <-chan int) {
	done := ctx.Done()
	for {
		select {
		case <-done:
			return
		case <-ch:
		}
	}
}

// ErrPoll checks ctx.Err every iteration.
func ErrPoll(ctx context.Context, ready func() bool) error {
	for !ready() {
		if err := ctx.Err(); err != nil {
			return err
		}
		time.Sleep(time.Millisecond)
	}
	return nil
}

// NoCtx takes no context: the rule has no opinion on how it stops.
func NoCtx(ch <-chan int) int {
	total := 0
	for v := range ch {
		total += v
	}
	return total
}

// SpawnedWorker's literal loops without ctx, which is fine: the spawner
// owns the stop channel, and the literal declares no context of its own.
func SpawnedWorker(ctx context.Context, stop <-chan struct{}, ch chan<- int) {
	go func() {
		for {
			select {
			case <-stop:
				return
			case ch <- 1:
			}
		}
	}()
	<-ctx.Done()
}
