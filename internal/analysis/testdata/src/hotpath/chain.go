package hotpath

import "sync"

// helperAlloc allocates. It carries no annotation; it becomes hot only by
// being reached from an //abcd:hotpath root, and the finding must carry
// the full chain.
func helperAlloc(n int) []int {
	return make([]int, n) // want: chain ChainRoot -> helperMid -> helperAlloc
}

// helperMid is the middle hop of the chain.
func helperMid(n int) []int {
	return helperAlloc(n)
}

// lockedSink's add is reached through an interface, exercising the
// conservative dynamic-dispatch fan-out.
type lockedSink struct {
	mu    sync.Mutex
	total int
}

func (s *lockedSink) add(v int) {
	s.mu.Lock() // want: chain ChainRoot -> lockedSink.add
	s.total += v
	s.mu.Unlock() // want: chain ChainRoot -> lockedSink.add
}

type sink interface {
	add(v int)
}

// ChainRoot is clean itself but reaches an allocating helper two hops down
// and a mutex through an interface call.
//
//abcd:hotpath
func ChainRoot(s sink, n int) {
	buf := helperMid(n)
	s.add(len(buf))
}

// helperRefill allocates, but every path to it is boundary-suppressed.
func helperRefill(n int) []int {
	return make([]int, n)
}

// BoundaryRoot cuts propagation at the call edge: the suppression on the
// call site declares the callee amortized, so helperRefill stays quiet.
//
//abcd:hotpath
func BoundaryRoot(n int) int {
	//abcdlint:ignore hotpath -- amortized: refill runs once per batch, never per edge
	buf := helperRefill(n)
	return len(buf)
}
