// Package hotpath is an abcdlint fixture: the //abcd:hotpath contract.
package hotpath

import (
	"fmt"
	"sync"
)

type counters struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	vals []int
}

// AllocInHot allocates inside an annotated function.
//
//abcd:hotpath
func (c *counters) AllocInHot(n int) []int {
	buf := make([]int, n)      // want: make allocates
	c.vals = append(c.vals, n) // want: append may grow
	return buf
}

// LockInHot takes mutexes inside an annotated function.
//
//abcd:hotpath
func (c *counters) LockInHot(v int) {
	c.mu.Lock() // want: sync.Mutex.Lock
	c.vals[0] = v
	c.mu.Unlock() // want: sync.Mutex.Unlock
	c.rw.RLock()  // want: sync.RWMutex.RLock
	_ = c.vals[0]
	c.rw.RUnlock() // want: sync.RWMutex.RUnlock
}

// FormatInHot calls fmt from an annotated function, even inside a defer.
//
//abcd:hotpath
func (c *counters) FormatInHot(v int) {
	defer fmt.Println("done") // want: fmt allocates and reflects
	c.vals[0] = v
}

// SuppressedAmortized carries a justified suppression and stays quiet.
//
//abcd:hotpath
func (c *counters) SuppressedAmortized(v int) {
	c.vals = append(c.vals, v) //abcdlint:ignore hotpath -- amortized: capacity is retained across calls
}
