package hotpath

import "sync/atomic"

type shard struct {
	n atomic.Int64
}

// Add is the shape the annotation exists for: an uncontended atomic write
// with no allocation and no lock.
//
//abcd:hotpath
func (s *shard) Add(delta int64) {
	s.n.Add(delta)
}

// NotAnnotated allocates and locks freely: without the directive the rule
// has no opinion.
func NotAnnotated(n int) []int {
	return make([]int, n)
}
