// Package goroutinelife is an abcdlint fixture: goroutines spawned in the
// daemon-ish layers must have a visible lifetime bound.
package goroutinelife

import (
	"net"
	"net/http"
)

// ServeLeaky spawns a server goroutine nothing can stop.
func ServeLeaky(ln net.Listener) {
	go func() { // want: no lifetime bound
		_ = http.Serve(ln, nil)
	}()
}

// ServeSuppressed documents the listener-close bound and stays quiet.
func ServeSuppressed(ln net.Listener) {
	//abcdlint:ignore goroutine -- http.Serve returns when the caller closes ln
	go func() {
		_ = http.Serve(ln, nil)
	}()
}

type daemon struct{ n int }

// spin runs forever with no shutdown signal.
func (d *daemon) spin() {
	for {
		d.n++
	}
}

// SpawnSpin resolves the method body cross-function and finds no bound.
func SpawnSpin(d *daemon) {
	go d.spin() // want: no lifetime bound
}

// SpawnExternal spawns a function whose body is outside the package:
// nothing visible bounds it.
func SpawnExternal(ln net.Listener) {
	go http.Serve(ln, nil) // want: no visible bound
}
