package goroutinelife

import (
	"context"
	"sync"
)

type pump struct {
	stop chan struct{}
	done chan struct{}
	work func()
}

// StartStopChannel is the tracer-flusher pattern: the literal selects on a
// stop channel.
func (p *pump) StartStopChannel(tick <-chan struct{}) {
	go func() {
		defer close(p.done)
		for {
			select {
			case <-p.stop:
				return
			case <-tick:
				p.work()
			}
		}
	}()
}

// loop is bounded by the stop channel; spawns of it resolve the body.
func (p *pump) loop(tick <-chan struct{}) {
	for {
		select {
		case <-p.stop:
			return
		case <-tick:
			p.work()
		}
	}
}

// SpawnMethod is judged by loop's body, cross-function.
func (p *pump) SpawnMethod(tick <-chan struct{}) {
	go p.loop(tick)
}

// StartWaitGroup registers with a WaitGroup.
func StartWaitGroup(wg *sync.WaitGroup, work func()) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
}

// StartCtx is bounded by the context.
func StartCtx(ctx context.Context, work func()) {
	go func() {
		work()
		<-ctx.Done()
	}()
}

// StartHelperBound finds the bound one same-package call level deep.
func (p *pump) StartHelperBound(tick <-chan struct{}) {
	go func() {
		p.loop(tick)
	}()
}
