// Package boundalloc is an abcdlint fixture: allocation sizes decoded from
// input bytes must flow through a recognized clamp.
package boundalloc

import "encoding/binary"

// presizeCap mirrors the real decoders' clamp helper: upfront capacity is
// bounded no matter what the header claims.
func presizeCap(want, entryBytes int) int {
	const maxBytes = 4 << 20
	if want <= 0 || entryBytes <= 0 {
		return 0
	}
	if want > maxBytes/entryBytes {
		return maxBytes / entryBytes
	}
	return want
}

// DecodeUnclamped sizes allocations straight from the decoded header.
func DecodeUnclamped(hdr []byte) ([]uint64, []byte) {
	n := int(binary.LittleEndian.Uint64(hdr[:8]))
	vals := make([]uint64, n)       // want: unclamped decoded length
	raw := make([]byte, 0, 8*(n+1)) // want: unclamped decoded capacity
	return vals, raw
}

// DecodeVarint taints through a varint result and arithmetic on it.
func DecodeVarint(buf []byte) []byte {
	m, _ := binary.Uvarint(buf)
	size := int(m) * 8
	return make([]byte, size) // want: unclamped varint size
}

// DecodeSuppressed documents an out-of-band bound and stays quiet.
func DecodeSuppressed(hdr []byte) []byte {
	n := int(binary.LittleEndian.Uint64(hdr[:8]))
	//abcdlint:ignore boundalloc -- caller validated the header length against the file size
	return make([]byte, n)
}
