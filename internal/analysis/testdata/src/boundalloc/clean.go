package boundalloc

import (
	"encoding/binary"
	"errors"
)

var errMismatch = errors.New("boundalloc: header mismatch")

// DecodeClamped launders the decoded size through the clamp, both inline
// and via an intermediate variable.
func DecodeClamped(hdr []byte) ([]uint64, []byte) {
	n := int(binary.LittleEndian.Uint64(hdr[:8]))
	vals := make([]uint64, 0, presizeCap(n, 8))
	capped := presizeCap(n, 1)
	raw := make([]byte, capped)
	return vals, raw
}

// DecodeValidated allocates from already-trusted state after checking the
// decoded value against it.
func DecodeValidated(hdr []byte, trusted int) ([]uint64, error) {
	n := int(binary.LittleEndian.Uint64(hdr[:8]))
	if n != trusted {
		return nil, errMismatch
	}
	return make([]uint64, trusted), nil
}

// FixedSize allocations are none of the rule's business.
func FixedSize(hdr []byte) []byte {
	_ = int(binary.LittleEndian.Uint64(hdr[:8]))
	return make([]byte, 64)
}
