package goroutine

import "sync"

// SpawnClean counts workers before spawning and passes the loop variable
// as an argument instead of capturing it.
func SpawnClean(items []int) {
	var wg sync.WaitGroup
	for _, v := range items {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			sink(v)
		}(v)
	}
	wg.Wait()
}
