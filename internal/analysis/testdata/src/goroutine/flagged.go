// Package goroutine is an abcdlint fixture: goroutine spawn hygiene.
package goroutine

import "sync"

// AddInside registers workers from inside the spawned goroutine, racing
// with the Wait below.
func AddInside(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		go func() {
			wg.Add(1) // want: Add races with Wait
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// CaptureLoop spawns closures that read the loop variables directly.
func CaptureLoop(items []int) {
	var wg sync.WaitGroup
	for i, v := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sink(i + v) // want: captures i and v
		}()
	}
	wg.Wait()
}

var sunk int

func sink(v int) { sunk = v }
