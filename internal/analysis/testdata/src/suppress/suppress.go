// Package suppress is an abcdlint fixture for the suppression comment
// syntax: //abcdlint:ignore rule -- reason, on the flagged line or the
// line directly above. A suppression without a reason is not honored.
package suppress

import "errors"

func fail() error { return errors.New("no") }

// Cases exercises every suppression shape.
func Cases() {
	//abcdlint:ignore errcheck -- fixture: suppressed by the line above
	fail()

	fail() //abcdlint:ignore errcheck -- fixture: suppressed on the same line

	//abcdlint:ignore errcheck
	fail() // want: suppression without a reason is not honored

	//abcdlint:ignore hotalloc -- fixture: a different rule does not cover errcheck
	fail() // want: wrong rule

	fail() // want: no suppression at all
}
