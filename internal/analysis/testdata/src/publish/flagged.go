// Package publish is an abcdlint fixture: initialize-then-publish ordering
// and the //abcd:stamped field read contract.
package publish

import "sync/atomic"

type shard struct {
	hits int64
	name string
}

type table struct {
	shards atomic.Pointer[[]shard]
}

// PublishThenMutate writes through and returns the slice after publishing
// it: readers loaded the pointer already.
func (t *table) PublishThenMutate(n int) []shard {
	set := make([]shard, n)
	t.shards.Store(&set)
	set[0].name = "late" // want: write after publish
	return set           // want: escape after publish
}

// PublishHandout documents the alias handout and stays quiet.
func (t *table) PublishHandout(n int) []shard {
	set := make([]shard, n)
	t.shards.Store(&set)
	//abcdlint:ignore publish -- callers only read; every write goes through the atomic element methods
	return set
}

type stamps struct {
	//abcd:stamped
	seq  []atomic.Uint64
	data []uint64 //abcd:stamped
}

// ReadStampedPlain mixes a sanctioned atomic read with a plain one.
func (s *stamps) ReadStampedPlain(i int) uint64 {
	if s.seq[i].Load() > 0 { // ok: atomic element method
		return s.data[i] // want: non-atomic read
	}
	return atomic.LoadUint64(&s.data[i]) // ok: address taken by sync/atomic
}
