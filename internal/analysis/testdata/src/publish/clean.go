package publish

import "sync/atomic"

type cleanTable struct {
	shards atomic.Pointer[[]shard]
}

// PublishLast fully initializes the set before the store and hands out
// nothing afterwards.
func (t *cleanTable) PublishLast(n int) {
	set := make([]shard, n)
	for i := range set {
		set[i].hits = int64(i)
	}
	t.shards.Store(&set)
}

type cleanStamps struct {
	//abcd:stamped
	words []uint64
}

// AtomicAccess goes through sync/atomic, len, and index-only range: all
// sanctioned.
func (s *cleanStamps) AtomicAccess(i int) uint64 {
	if i >= len(s.words) {
		return 0
	}
	for w := range s.words {
		atomic.AddUint64(&s.words[w], 0)
	}
	return atomic.LoadUint64(&s.words[i])
}

// NewCleanStamps initializes by plain assignment before the value is
// shared, which the contract permits.
func NewCleanStamps(n int) *cleanStamps {
	s := &cleanStamps{}
	s.words = make([]uint64, n)
	return s
}
