// Package locksafe is an abcdlint fixture: mutex acquire/release hygiene.
package locksafe

import "sync"

type queue struct {
	mu    sync.Mutex
	wg    sync.WaitGroup
	items []int
	ch    chan int
}

// LeakyLock never releases in this block.
func (q *queue) LeakyLock(v int) {
	q.mu.Lock() // want: no covering unlock
	q.items = append(q.items, v)
}

// SendUnderLock holds the mutex across a channel send.
func (q *queue) SendUnderLock(v int) {
	q.mu.Lock()
	q.ch <- v // want: channel send under lock
	q.mu.Unlock()
}

// WaitUnderLock blocks on a WaitGroup while holding the lock.
func (q *queue) WaitUnderLock() {
	q.mu.Lock()
	q.wg.Wait() // want: sync Wait under lock
	q.mu.Unlock()
}

// EarlyReturn leaves the mutex held on the negative path.
func (q *queue) EarlyReturn(v int) int {
	q.mu.Lock()
	if v < 0 {
		return -1 // want: return between Lock and Unlock
	}
	q.items = append(q.items, v)
	q.mu.Unlock()
	return len(q.items)
}
