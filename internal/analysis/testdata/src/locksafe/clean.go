package locksafe

import "sync"

type cleanQueue struct {
	mu    sync.RWMutex
	items []int
}

// Push uses the canonical defer pairing.
func (q *cleanQueue) Push(v int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.items = append(q.items, v)
}

// Len releases the read lock on the same straight-line path.
func (q *cleanQueue) Len() int {
	q.mu.RLock()
	n := len(q.items)
	q.mu.RUnlock()
	return n
}
