package atomicword

import "sync/atomic"

// cleanCounters sticks to the discipline end to end: atomic accesses,
// len/cap, composite-literal initialization, and index-only iteration are
// all allowed.
type cleanCounters struct {
	done  uint64
	words []uint64
}

func newCleanCounters(n int) *cleanCounters {
	return &cleanCounters{words: make([]uint64, n)}
}

func (c *cleanCounters) Work() uint64 {
	for w := range c.words { // index-only range reads no elements
		atomic.AddUint64(&c.words[w], 1)
	}
	atomic.AddUint64(&c.done, uint64(len(c.words)))
	return atomic.LoadUint64(&c.done)
}
