// Package atomicword is an abcdlint fixture: a variable accessed through
// sync/atomic anywhere in the package must never see a plain read or
// write.
package atomicword

import "sync/atomic"

type counterSet struct {
	hits  uint64
	words []uint64
}

// Bump follows the discipline; these calls make hits and words targets.
func (c *counterSet) Bump(i int) {
	atomic.AddUint64(&c.hits, 1)
	atomic.StoreUint64(&c.words[i], 42)
}

// Race mixes in plain accesses; every one of them is a finding.
func (c *counterSet) Race(i int) uint64 {
	c.hits = 0            // want: plain write
	c.hits++              // want: plain increment
	total := c.words[i]   // want: element read
	return total + c.hits // want: plain read
}

// Escape leaks an address outside the sanctioned atomic calls.
func (c *counterSet) Escape() *uint64 {
	return &c.hits // want: address escape
}
