package hotalloc

// ColdPath allocates freely: it is neither a root nor reachable from one.
func ColdPath(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

type cleanStep struct{ sum int }

// Do is reachable from the hot loop (name+arity dispatch) but
// allocation-free, so it produces no findings.
func (s *cleanStep) Do(n int) int {
	s.sum += n
	return s.sum
}
