// Package hotalloc is an abcdlint fixture: allocation sites reachable
// from the configured hot root (HotLoop, via "src/hotalloc:HotLoop").
package hotalloc

import (
	"fmt"

	"graphabcd/internal/word"
)

type step interface {
	Do(n int) int
}

type allocStep struct{ buf []int }

// Do allocates on every call; it is reached from HotLoop's loop through
// the step interface.
func (s *allocStep) Do(n int) int {
	s.buf = make([]int, n) // want: reached via interface dispatch
	return len(s.buf)
}

// HotLoop is the fixture's configured hot root.
func HotLoop(arr *word.Array[uint64], steps []step, n int) int {
	total := 0
	scratch := make([]int, 0, n) // ok: outside any loop in a root
	for i := 0; i < n; i++ {
		scratch = append(scratch, i)   // want: append in a root's loop
		total += len(fmt.Sprint(i))    // want: fmt in the hot loop
		arr.Store(int64(i), uint64(i)) // want: allocating word.Array method
		total += steps[i%len(steps)].Do(n)
		total += helper(n)
	}
	return total + scratch[0]
}

// helper is reached from the hot loop; allocations anywhere in it count.
func helper(n int) int {
	tmp := new(int) // want: reached function allocates
	*tmp = n
	return *tmp
}
